// Clip extraction: turns a placed design + global route into the 1um x 1um
// routing clips the paper evaluates (Section 4, Figure 7).
//
// For every gcell window:
//   * cell pins whose access points fall inside become clip pins (snapped to
//     the clip track grid, layer M2);
//   * global-route boundary crossings become fixed boundary terminals at
//     their assigned (track, layer) on the window edge;
//   * power/ground rails at row boundaries block their M2 track;
//   * pins of nets not routable in this window (fewer than two terminals)
//     become obstacles -- their metal is present even though the net is not
//     routed here.
// Clips with fewer than `minNets` nets are dropped (nothing to evaluate).
#pragma once

#include <vector>

#include "clip/clip.h"
#include "layout/global_route.h"

namespace optr::layout {

struct ClipExtractOptions {
  int minNets = 2;
  /// Windows with more nets than this are skipped (the ILP would be
  /// intractable; the paper's clips carry a handful of nets).
  int maxNets = 12;
  /// Cap on routing layers per clip (0 = the technology's full stack).
  /// Boundary crossings assigned above the cap are folded down before the
  /// collision check, so clips stay consistent.
  int maxLayers = 0;
};

std::vector<clip::Clip> extractClips(const Design& design,
                                     const CellLibrary& lib,
                                     const GlobalRoute& gr,
                                     ClipExtractOptions options = {});

}  // namespace optr::layout
