#include "layout/global_route.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

namespace optr::layout {

namespace {

/// Boundary-edge usage counters for crossing-slot assignment.
struct EdgeUsage {
  std::vector<int> xEdges;  // edge (gx,gy)->(gx+1,gy): index gy*(nx-1)+gx
  std::vector<int> yEdges;  // edge (gx,gy)->(gx,gy+1): index gy*nx+gx

  void init(const GcellGrid& g) {
    xEdges.assign(std::max(0, (g.nx - 1) * g.ny), 0);
    yEdges.assign(std::max(0, g.nx * (g.ny - 1)), 0);
  }
  int& x(const GcellGrid& g, int gx, int gy) {
    return xEdges[gy * (g.nx - 1) + gx];
  }
  int& y(const GcellGrid& g, int gx, int gy) {
    return yEdges[gy * g.nx + gx];
  }
};

}  // namespace

GlobalRoute globalRoute(const Design& design, const CellLibrary& lib,
                        GlobalRouteOptions options) {
  GlobalRoute gr;
  GcellGrid& grid = gr.grid;
  grid.nx = static_cast<int>(
      (design.widthNm(lib) + grid.windowNm - 1) / grid.windowNm);
  grid.ny = static_cast<int>(
      (design.heightNm(lib) + grid.windowNm - 1) / grid.windowNm);
  grid.nx = std::max(grid.nx, 1);
  grid.ny = std::max(grid.ny, 1);

  EdgeUsage usage;
  usage.init(grid);

  gr.netCells.resize(design.nets.size());

  auto gcellOf = [&](const Point& p) {
    int gx = static_cast<int>(p.x / grid.windowNm);
    int gy = static_cast<int>(p.y / grid.windowNm);
    return std::pair<int, int>(std::clamp(gx, 0, grid.nx - 1),
                               std::clamp(gy, 0, grid.ny - 1));
  };

  for (std::size_t n = 0; n < design.nets.size(); ++n) {
    const DesignNet& net = design.nets[n];
    // Terminal gcells (deduplicated).
    std::set<int> targets;
    for (const Terminal& t : net.terminals) {
      auto [gx, gy] = gcellOf(design.terminalNm(lib, t));
      targets.insert(grid.id(gx, gy));
    }
    std::set<int> tree = {*targets.begin()};
    targets.erase(targets.begin());

    // Sequentially attach each remaining terminal gcell with a
    // congestion-aware BFS/Dijkstra over gcells.
    while (!targets.empty()) {
      std::vector<double> dist(grid.numCells(),
                               std::numeric_limits<double>::infinity());
      std::vector<int> pred(grid.numCells(), -1);
      using E = std::pair<double, int>;
      std::priority_queue<E, std::vector<E>, std::greater<>> pq;
      for (int c : tree) {
        dist[c] = 0;
        pq.emplace(0.0, c);
      }
      int hit = -1;
      while (!pq.empty()) {
        auto [d, c] = pq.top();
        pq.pop();
        if (d > dist[c]) continue;
        if (targets.count(c)) {
          hit = c;
          break;
        }
        int gx = c % grid.nx, gy = c / grid.nx;
        auto relax = [&](int nx2, int ny2, int used) {
          int nc = grid.id(nx2, ny2);
          double w = 1.0 + options.congestionWeight * used;
          if (d + w < dist[nc]) {
            dist[nc] = d + w;
            pred[nc] = c;
            pq.emplace(dist[nc], nc);
          }
        };
        if (gx + 1 < grid.nx) relax(gx + 1, gy, usage.x(grid, gx, gy));
        if (gx > 0) relax(gx - 1, gy, usage.x(grid, gx - 1, gy));
        if (gy + 1 < grid.ny) relax(gx, gy + 1, usage.y(grid, gx, gy));
        if (gy > 0) relax(gx, gy - 1, usage.y(grid, gx, gy - 1));
      }
      if (hit < 0) break;  // disconnected grid cannot happen; safety
      targets.erase(hit);
      for (int c = hit; c >= 0 && !tree.count(c); c = pred[c]) {
        tree.insert(c);
        int p = pred[c];
        if (p < 0) break;
        // Record the crossing on the edge (p -> c) with a fresh slot.
        int pgx = p % grid.nx, pgy = p / grid.nx;
        int cgx = c % grid.nx, cgy = c / grid.nx;
        Crossing cr;
        cr.net = static_cast<int>(n);
        if (pgy == cgy) {
          cr.towardX = true;
          cr.gx = std::min(pgx, cgx);
          cr.gy = pgy;
          int& slot = usage.x(grid, cr.gx, cr.gy);
          // Crossing a vertical boundary: pick a y-track on horizontal
          // layers M4/M6 (z = 2, 4) round-robin; M2 is left for cell pins.
          const int tracksY = lib.technology().clipTracksY;
          cr.track = slot % tracksY;
          cr.layer = 2 + 2 * ((slot / tracksY) % 2);
          ++slot;
        } else {
          cr.towardX = false;
          cr.gx = pgx;
          cr.gy = std::min(pgy, cgy);
          int& slot = usage.y(grid, cr.gx, cr.gy);
          // Horizontal boundary: x-track on vertical layers M3/M5 (1, 3).
          const int tracksX = lib.technology().clipTracksX;
          cr.track = slot % tracksX;
          cr.layer = 1 + 2 * ((slot / tracksX) % 2);
          ++slot;
        }
        gr.crossings.push_back(cr);
      }
    }
    gr.netCells[n].assign(tree.begin(), tree.end());
  }
  return gr;
}

}  // namespace optr::layout
