#include "layout/def_io.h"

#include <fstream>
#include <map>
#include <sstream>

#include "common/strings.h"

namespace optr::layout {

std::string writeLef(const CellLibrary& lib) {
  std::ostringstream out;
  out << "VERSION 5.8 ;\nBUSBITCHARS \"[]\" ;\nDIVIDERCHAR \"/\" ;\n\n";
  out << "UNITS\n  DATABASE MICRONS 1000 ;\nEND UNITS\n\n";
  const double heightUm = lib.cellHeightNm() / 1000.0;
  const double siteUm = lib.siteWidthNm() / 1000.0;
  out << strFormat("SITE core\n  CLASS CORE ;\n  SIZE %.3f BY %.3f ;\nEND core\n\n",
                   siteUm, heightUm);
  for (const CellMaster& m : lib.masters()) {
    out << "MACRO " << m.name << "\n";
    out << "  CLASS CORE ;\n";
    out << strFormat("  SIZE %.3f BY %.3f ;\n", m.widthSites * siteUm,
                     heightUm);
    out << "  SITE core ;\n";
    for (const PinTemplate& p : m.pins) {
      out << "  PIN " << p.name << "\n";
      out << "    DIRECTION " << (p.isOutput ? "OUTPUT" : "INPUT") << " ;\n";
      out << "    PORT\n      LAYER M1 ;\n";
      out << strFormat("        RECT %.3f %.3f %.3f %.3f ;\n",
                       p.shapeNm.lo.x / 1000.0, p.shapeNm.lo.y / 1000.0,
                       p.shapeNm.hi.x / 1000.0, p.shapeNm.hi.y / 1000.0);
      out << "    END\n  END " << p.name << "\n";
    }
    out << "END " << m.name << "\n\n";
  }
  out << "END LIBRARY\n";
  return out.str();
}

std::string writeDef(const Design& design, const CellLibrary& lib) {
  std::ostringstream out;
  out << "VERSION 5.8 ;\nDIVIDERCHAR \"/\" ;\nBUSBITCHARS \"[]\" ;\n";
  out << "DESIGN " << design.name << " ;\n";
  out << "UNITS DISTANCE MICRONS 1000 ;\n";
  out << strFormat("DIEAREA ( 0 0 ) ( %lld %lld ) ;\n",
                   static_cast<long long>(design.widthNm(lib)),
                   static_cast<long long>(design.heightNm(lib)));

  out << "COMPONENTS " << design.instances.size() << " ;\n";
  for (const Instance& inst : design.instances) {
    Point o = inst.originNm(lib);
    out << strFormat("- %s %s + PLACED ( %lld %lld ) N ;\n",
                     inst.name.c_str(), lib.master(inst.master).name.c_str(),
                     static_cast<long long>(o.x),
                     static_cast<long long>(o.y));
  }
  out << "END COMPONENTS\n";

  out << "NETS " << design.nets.size() << " ;\n";
  for (const DesignNet& net : design.nets) {
    out << "- " << net.name;
    for (const Terminal& t : net.terminals) {
      const Instance& inst = design.instances[t.instance];
      out << " ( " << inst.name << " "
          << lib.master(inst.master).pins[t.pin].name << " )";
    }
    out << " ;\n";
  }
  out << "END NETS\nEND DESIGN\n";
  return out.str();
}

StatusOr<Design> readDef(const std::string& defText, const CellLibrary& lib) {
  Design d;
  d.techName = lib.technology().name;
  std::map<std::string, int> instByName;

  enum class Section { kTop, kComponents, kNets };
  Section section = Section::kTop;

  std::istringstream in(defText);
  std::string line;
  while (std::getline(in, line)) {
    auto tokens = splitWhitespace(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "DESIGN" && tokens.size() >= 2) {
      d.name = std::string(tokens[1]);
    } else if (tokens[0] == "DIEAREA" && tokens.size() >= 10) {
      auto w = parseInt(tokens[6]);
      auto h = parseInt(tokens[7]);
      if (!w || !h) return Status::error(ErrorCode::kParse, "DEF: bad DIEAREA");
      d.sitesPerRow = static_cast<int>(*w / lib.siteWidthNm());
      d.rows = static_cast<int>(*h / lib.cellHeightNm());
    } else if (tokens[0] == "COMPONENTS") {
      section = Section::kComponents;
    } else if (tokens[0] == "NETS") {
      section = Section::kNets;
    } else if (tokens[0] == "END") {
      if (tokens.size() >= 2 &&
          (tokens[1] == "COMPONENTS" || tokens[1] == "NETS")) {
        section = Section::kTop;
      }
    } else if (tokens[0] == "-" && section == Section::kComponents) {
      // - <name> <master> + PLACED ( x y ) N ;
      if (tokens.size() < 10) return Status::error(ErrorCode::kParse, "DEF: short component");
      Instance inst;
      inst.name = std::string(tokens[1]);
      const CellMaster* master = lib.byName(std::string(tokens[2]));
      if (master == nullptr)
        return Status::error(ErrorCode::kParse, "DEF: unknown master " + std::string(tokens[2]));
      for (int mi = 0; mi < lib.numMasters(); ++mi) {
        if (&lib.master(mi) == master) inst.master = mi;
      }
      auto x = parseInt(tokens[6]);
      auto y = parseInt(tokens[7]);
      if (!x || !y) return Status::error(ErrorCode::kParse, "DEF: bad placement");
      inst.siteX = static_cast<int>(*x / lib.siteWidthNm());
      inst.row = static_cast<int>(*y / lib.cellHeightNm());
      instByName[inst.name] = static_cast<int>(d.instances.size());
      d.instances.push_back(std::move(inst));
    } else if (tokens[0] == "-" && section == Section::kNets) {
      // - <name> ( inst pin ) ( inst pin ) ... ;
      if (tokens.size() < 2) return Status::error(ErrorCode::kParse, "DEF: short net");
      DesignNet net;
      net.name = std::string(tokens[1]);
      std::size_t i = 2;
      while (i + 3 < tokens.size() && tokens[i] == "(") {
        auto it = instByName.find(std::string(tokens[i + 1]));
        if (it == instByName.end())
          return Status::error(ErrorCode::kParse, "DEF: net references unknown component");
        const CellMaster& m = lib.master(d.instances[it->second].master);
        int pinIdx = -1;
        for (std::size_t p = 0; p < m.pins.size(); ++p) {
          if (m.pins[p].name == tokens[i + 2]) pinIdx = static_cast<int>(p);
        }
        if (pinIdx < 0) return Status::error(ErrorCode::kParse, "DEF: unknown pin");
        net.terminals.push_back({it->second, pinIdx});
        i += 4;
      }
      if (net.terminals.size() >= 2) d.nets.push_back(std::move(net));
    }
  }
  if (d.name.empty()) return Status::error(ErrorCode::kParse, "DEF: missing DESIGN");
  return d;
}

Status saveDesign(const std::string& lefPath, const std::string& defPath,
                  const Design& design, const CellLibrary& lib) {
  {
    std::ofstream out(lefPath);
    if (!out) return Status::error(ErrorCode::kIo, "cannot open " + lefPath);
    out << writeLef(lib);
    if (!out.good()) return Status::error(ErrorCode::kIo, "write failed: " + lefPath);
  }
  {
    std::ofstream out(defPath);
    if (!out) return Status::error(ErrorCode::kIo, "cannot open " + defPath);
    out << writeDef(design, lib);
    if (!out.good()) return Status::error(ErrorCode::kIo, "write failed: " + defPath);
  }
  return Status::ok();
}

}  // namespace optr::layout
