#include "layout/clip_extract.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"

namespace optr::layout {

namespace {

struct WindowCtx {
  std::int64_t x0, y0;  // window origin in nm
  int tracksX, tracksY, numLayers;
  std::int64_t sitePitch, trackPitch;

  bool snap(const Point& nm, int& tx, int& ty) const {
    std::int64_t rx = nm.x - x0, ry = nm.y - y0;
    if (rx < 0 || ry < 0) return false;
    tx = static_cast<int>((rx + sitePitch / 2) / sitePitch);
    ty = static_cast<int>((ry + trackPitch / 2) / trackPitch);
    if (tx >= tracksX) tx = tracksX - 1;
    if (ty >= tracksY) ty = tracksY - 1;
    return true;
  }
};

}  // namespace

std::vector<clip::Clip> extractClips(const Design& design,
                                     const CellLibrary& lib,
                                     const GlobalRoute& gr,
                                     ClipExtractOptions options) {
  std::vector<clip::Clip> clips;
  const tech::Technology& techn = lib.technology();
  const GcellGrid& grid = gr.grid;

  // Index crossings by gcell for fast lookup.
  std::map<std::pair<int, int>, std::vector<Crossing>> crossingsByCell;
  for (const Crossing& c : gr.crossings) {
    crossingsByCell[{c.gx, c.gy}].push_back(c);
    if (c.towardX)
      crossingsByCell[{c.gx + 1, c.gy}].push_back(c);
    else
      crossingsByCell[{c.gx, c.gy + 1}].push_back(c);
  }

  for (int gy = 0; gy < grid.ny; ++gy) {
    for (int gx = 0; gx < grid.nx; ++gx) {
      WindowCtx w;
      w.x0 = static_cast<std::int64_t>(gx) * grid.windowNm;
      w.y0 = static_cast<std::int64_t>(gy) * grid.windowNm;
      w.tracksX = techn.clipTracksX;
      w.tracksY = techn.clipTracksY;
      w.numLayers = (options.maxLayers > 0)
                        ? std::min(options.maxLayers, techn.numLayers())
                        : techn.numLayers();
      w.sitePitch = techn.placementGridNm;
      w.trackPitch = techn.horizontalPitchNm;

      clip::Clip c;
      c.id = design.name + "_" + std::to_string(gx) + "_" + std::to_string(gy);
      c.techName = techn.name;
      c.tracksX = w.tracksX;
      c.tracksY = w.tracksY;
      c.numLayers = w.numLayers;

      // Gather candidate terminals per design net.
      struct PendingPin {
        std::vector<clip::TrackPoint> aps;
        Rect shapeNm;
        bool boundary;
      };
      std::map<int, std::vector<PendingPin>> byNet;
      std::set<clip::TrackPoint> takenVertices;

      // Cell pins inside the window.
      std::map<std::pair<int, int>, int> termNet;  // (inst, pin) -> net
      for (std::size_t n = 0; n < design.nets.size(); ++n) {
        for (const Terminal& t : design.nets[n].terminals)
          termNet[{t.instance, t.pin}] = static_cast<int>(n);
      }
      for (std::size_t i = 0; i < design.instances.size(); ++i) {
        const Instance& inst = design.instances[i];
        const CellMaster& m = lib.master(inst.master);
        Point origin = inst.originNm(lib);
        for (std::size_t p = 0; p < m.pins.size(); ++p) {
          auto it = termNet.find({static_cast<int>(i), static_cast<int>(p)});
          if (it == termNet.end()) continue;  // unconnected pin
          PendingPin pp;
          pp.boundary = false;
          const PinTemplate& pin = m.pins[p];
          for (const Point& ap : pin.accessPointsNm) {
            Point abs{origin.x + ap.x, origin.y + ap.y};
            if (abs.x < w.x0 || abs.x >= w.x0 + grid.windowNm) continue;
            if (abs.y < w.y0 || abs.y >= w.y0 + grid.windowNm) continue;
            int tx, ty;
            if (!w.snap(abs, tx, ty)) continue;
            clip::TrackPoint tp{tx, ty, 0};
            if (takenVertices.count(tp)) continue;  // collision: drop AP
            pp.aps.push_back(tp);
          }
          if (pp.aps.empty()) continue;
          for (const auto& tp : pp.aps) takenVertices.insert(tp);
          pp.shapeNm = pin.shapeNm.shifted(origin.x - w.x0, origin.y - w.y0);
          byNet[it->second].push_back(std::move(pp));
        }
      }

      // Boundary crossings.
      auto itc = crossingsByCell.find({gx, gy});
      if (itc != crossingsByCell.end()) {
        for (const Crossing& cr : itc->second) {
          PendingPin pp;
          pp.boundary = true;
          clip::TrackPoint tp;
          if (cr.towardX) {
            // Vertical boundary between (gx,gy) and (gx+1,gy).
            tp.x = (cr.gx == gx) ? w.tracksX - 1 : 0;
            tp.y = std::min(cr.track, w.tracksY - 1);
          } else {
            tp.y = (cr.gy == gy) ? w.tracksY - 1 : 0;
            tp.x = std::min(cr.track, w.tracksX - 1);
          }
          tp.z = std::min(cr.layer, w.numLayers - 1);
          if (takenVertices.count(tp)) continue;  // slot collision: drop
          takenVertices.insert(tp);
          pp.aps.push_back(tp);
          pp.shapeNm = Rect(tp.x * w.sitePitch, tp.y * w.trackPitch,
                            tp.x * w.sitePitch, tp.y * w.trackPitch);
          byNet[cr.net].push_back(std::move(pp));
        }
      }

      // Assemble nets with >= 2 terminals; everything else becomes blockage.
      for (auto& [netId, pins] : byNet) {
        if (static_cast<int>(pins.size()) >= 2) {
          clip::ClipNet cn;
          cn.name = design.nets[netId].name;
          int clipNetId = static_cast<int>(c.nets.size());
          for (PendingPin& pp : pins) {
            clip::ClipPin cp;
            cp.net = clipNetId;
            cp.accessPoints = pp.aps;
            cp.shapeNm = pp.shapeNm;
            cp.isBoundary = pp.boundary;
            cn.pins.push_back(static_cast<int>(c.pins.size()));
            c.pins.push_back(std::move(cp));
          }
          c.nets.push_back(std::move(cn));
        } else {
          for (const PendingPin& pp : pins)
            for (const auto& ap : pp.aps) c.obstacles.push_back(ap);
        }
      }

      // Power/ground rails: M2 tracks at row boundaries.
      const std::int64_t rowPitch = lib.cellHeightNm();
      for (std::int64_t railY = (w.y0 / rowPitch) * rowPitch;
           railY < w.y0 + grid.windowNm; railY += rowPitch) {
        if (railY < w.y0) continue;
        int ty = static_cast<int>((railY - w.y0 + w.trackPitch / 2) /
                                  w.trackPitch);
        if (ty >= w.tracksY) continue;
        for (int tx = 0; tx < w.tracksX; ++tx) {
          clip::TrackPoint tp{tx, ty, 0};
          if (takenVertices.count(tp)) continue;  // don't bury pins
          c.obstacles.push_back(tp);
        }
      }

      int numNets = static_cast<int>(c.nets.size());
      if (numNets < options.minNets || numNets > options.maxNets) continue;
      if (!c.validate()) continue;
      clips.push_back(std::move(c));
    }
  }
  return clips;
}

}  // namespace optr::layout
