// Automated pin-access analysis (paper Section 4.1 / Figure 9).
//
// The paper excludes five rule configurations on N7-9T because "with eight
// via sites blocked, there is no way to connect two input pins without
// violations". This module turns that argument into an executable check:
// a cell master is placed alone in a clip, every pin becomes a net whose
// sink is an escape to the clip boundary on an upper layer, and OptRouter
// decides -- exactly, not heuristically -- whether all pins can be accessed
// simultaneously under a rule configuration.
//
// bench_pin_access tabulates the verdicts per (cell, technology, rule) and
// cross-checks tech::ruleApplicable against them.
#pragma once

#include "clip/clip.h"
#include "layout/cell_library.h"
#include "tech/rules.h"

namespace optr::layout {

/// Builds the single-cell access clip: the master's pins (snapped to clip
/// tracks, Figure 9 geometry) each drive a net whose sink may land anywhere
/// on the clip's top horizontal-layer boundary (an "escape").
clip::Clip buildAccessClip(const CellLibrary& lib, const CellMaster& master,
                           int escapeLayer = 2);

struct PinAccessResult {
  bool feasible = false;  // all pins simultaneously accessible
  bool proven = false;    // OptRouter reached optimal/infeasible (no limit)
  double cost = 0;        // total escape cost when feasible
};

/// Exact accessibility verdict for one (cell, rule) pair.
PinAccessResult checkPinAccess(const CellLibrary& lib,
                               const CellMaster& master,
                               const tech::RuleConfig& rule,
                               double timeLimitSec = 30.0);

}  // namespace optr::layout
