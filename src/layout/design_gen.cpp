#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "layout/design.h"

namespace optr::layout {

namespace {

/// Master mix: inverters/buffers dominate, flops are common, complex gates
/// rarer -- rough shape of a mapped netlist.
int pickMaster(const CellLibrary& lib, Rng& rng) {
  static const struct {
    const char* name;
    int weight;
  } kMix[] = {
      {"INVX1", 18}, {"INVX2", 10}, {"BUFX2", 10}, {"NAND2X1", 16},
      {"NOR2X1", 12}, {"XOR2X1", 5}, {"AOI21X1", 7}, {"OAI21X1", 6},
      {"MUX2X1", 6}, {"DFFX1", 10},
  };
  int total = 0;
  for (const auto& m : kMix) total += m.weight;
  int pick = static_cast<int>(rng.uniform(total));
  for (const auto& m : kMix) {
    pick -= m.weight;
    if (pick < 0) {
      for (int i = 0; i < lib.numMasters(); ++i)
        if (lib.master(i).name == m.name) return i;
    }
  }
  return 0;
}

}  // namespace

Design generateDesign(const CellLibrary& lib, const DesignSpec& spec) {
  Rng rng(spec.seed);
  Design d;
  d.name = spec.name;
  d.techName = lib.technology().name;

  // Pick masters first so the total area is known, then size the die to hit
  // the target utilization with a roughly square aspect ratio.
  std::vector<int> masters;
  std::int64_t areaSites = 0;
  for (int i = 0; i < spec.targetInstances; ++i) {
    int m = pickMaster(lib, rng);
    masters.push_back(m);
    areaSites += lib.master(m).widthSites;
  }
  double totalSites = static_cast<double>(areaSites) / spec.utilization;
  // Square die: rows * sitesPerRow = totalSites with row height ~
  // cellHeight and site width ~ placementGrid.
  double dieAreaNm2 = totalSites * lib.siteWidthNm() * lib.cellHeightNm();
  double sideNm = std::sqrt(dieAreaNm2);
  d.rows = std::max(2, static_cast<int>(std::lround(sideNm / lib.cellHeightNm())));
  d.sitesPerRow = std::max(
      4, static_cast<int>(std::lround(totalSites / d.rows)));

  // Greedy row fill with random whitespace so rows end up evenly used.
  std::vector<int> rowFill(d.rows, 0);
  int row = 0;
  for (std::size_t i = 0; i < masters.size(); ++i) {
    const CellMaster& m = lib.master(masters[i]);
    // Find a row with space, round robin from the current one.
    int tries = 0;
    while (rowFill[row] + m.widthSites > d.sitesPerRow &&
           tries < d.rows) {
      row = (row + 1) % d.rows;
      ++tries;
    }
    if (rowFill[row] + m.widthSites > d.sitesPerRow) break;  // die is full
    // Whitespace: leave a gap with probability tied to (1 - utilization).
    int gap = 0;
    double wsChance = std::max(0.0, 1.0 - spec.utilization);
    if (rng.chance(wsChance * 2.0))
      gap = static_cast<int>(rng.uniformInt(1, 2));
    if (rowFill[row] + gap + m.widthSites <= d.sitesPerRow)
      rowFill[row] += gap;
    Instance inst;
    inst.master = masters[i];
    inst.row = row;
    inst.siteX = rowFill[row];
    inst.name = "u" + std::to_string(i);
    rowFill[row] += m.widthSites;
    d.instances.push_back(inst);
    row = (row + 1) % d.rows;
  }

  // Netlist: each output pin drives a net whose sinks are unused input pins
  // of nearby cells (locality window), occasionally a far cell.
  struct FreeInput {
    int instance, pin;
  };
  std::vector<std::vector<FreeInput>> inputsByRow(d.rows);
  for (std::size_t i = 0; i < d.instances.size(); ++i) {
    const CellMaster& m = lib.master(d.instances[i].master);
    for (int p : m.inputPins())
      inputsByRow[d.instances[i].row].push_back(
          {static_cast<int>(i), p});
  }

  for (std::size_t i = 0; i < d.instances.size(); ++i) {
    const Instance& inst = d.instances[i];
    const CellMaster& m = lib.master(inst.master);
    for (int outPin : m.outputPins()) {
      int fanout = 1;
      double f = spec.avgFanout - 1.0;
      while (f > 0 && rng.chance(std::min(0.9, f))) {
        ++fanout;
        f -= 1.0;
      }
      DesignNet net;
      net.name = inst.name + "_" + m.pins[outPin].name;
      net.terminals.push_back({static_cast<int>(i), outPin});
      for (int s = 0; s < fanout; ++s) {
        // Local window: same or neighbour rows, near site columns.
        bool farNet = rng.chance(0.08);
        for (int attempt = 0; attempt < 30; ++attempt) {
          int r = farNet ? static_cast<int>(rng.uniform(d.rows))
                         : std::clamp<int>(
                               inst.row + static_cast<int>(rng.uniformInt(-1, 1)),
                               0, d.rows - 1);
          auto& pool = inputsByRow[r];
          if (pool.empty()) continue;
          int j = static_cast<int>(rng.uniform(pool.size()));
          const FreeInput fi = pool[j];
          if (fi.instance == static_cast<int>(i)) continue;
          const Instance& cand = d.instances[fi.instance];
          if (!farNet &&
              std::abs(cand.siteX - inst.siteX) >
                  static_cast<int>(spec.localityWindow)) {
            continue;
          }
          net.terminals.push_back({fi.instance, fi.pin});
          pool.erase(pool.begin() + j);  // each input driven once
          break;
        }
      }
      if (net.terminals.size() >= 2) d.nets.push_back(std::move(net));
    }
  }
  return d;
}

}  // namespace optr::layout
