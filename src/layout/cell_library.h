// Synthetic standard-cell libraries.
//
// The real 28nm foundry and prototype 7nm libraries are proprietary; these
// reconstructions carry exactly what the experiments consume:
//   * cell widths (in placement sites) for the placer / utilization math,
//   * pin geometry (rects in nm, cell-relative) for the pin-cost metric,
//   * pin access points (track-aligned candidate connection locations),
//     following the Figure 9 styles: wide multi-point pins for N28-12T /
//     N28-8T, compact two-point pins for N7-9T.
#pragma once

#include <string>
#include <vector>

#include "common/geometry.h"
#include "tech/technology.h"

namespace optr::layout {

struct PinTemplate {
  std::string name;
  bool isOutput = false;
  /// Pin shape in nm, relative to the cell origin (lower-left).
  Rect shapeNm;
  /// Candidate access points in nm, relative to the cell origin. Each will
  /// be snapped to the clip track grid at extraction time.
  std::vector<Point> accessPointsNm;
};

struct CellMaster {
  std::string name;
  int widthSites = 2;  // width in placement sites (site = vertical pitch)
  std::vector<PinTemplate> pins;

  const PinTemplate* pin(const std::string& pinName) const {
    for (const PinTemplate& p : pins)
      if (p.name == pinName) return &p;
    return nullptr;
  }
  std::vector<int> inputPins() const {
    std::vector<int> out;
    for (std::size_t i = 0; i < pins.size(); ++i)
      if (!pins[i].isOutput) out.push_back(static_cast<int>(i));
    return out;
  }
  std::vector<int> outputPins() const {
    std::vector<int> out;
    for (std::size_t i = 0; i < pins.size(); ++i)
      if (pins[i].isOutput) out.push_back(static_cast<int>(i));
    return out;
  }
};

class CellLibrary {
 public:
  /// Builds the synthetic library for a technology (pin style, cell height
  /// and pitches come from the preset).
  static CellLibrary forTechnology(const tech::Technology& techn);

  const std::vector<CellMaster>& masters() const { return masters_; }
  const CellMaster& master(int i) const { return masters_[i]; }
  int numMasters() const { return static_cast<int>(masters_.size()); }
  const CellMaster* byName(const std::string& name) const {
    for (const CellMaster& m : masters_)
      if (m.name == name) return &m;
    return nullptr;
  }
  const tech::Technology& technology() const { return tech_; }

  /// Cell height in nm (cellHeightTracks x horizontal pitch).
  int cellHeightNm() const {
    return tech_.cellHeightTracks * tech_.horizontalPitchNm;
  }
  int siteWidthNm() const { return tech_.placementGridNm; }

  /// ASCII rendering of a cell's pin shapes (Figure 9 reproduction).
  std::string renderAscii(const CellMaster& master) const;

 private:
  explicit CellLibrary(tech::Technology techn) : tech_(std::move(techn)) {}
  tech::Technology tech_;
  std::vector<CellMaster> masters_;
};

}  // namespace optr::layout
