#include "layout/pin_access.h"

#include <algorithm>

#include "core/opt_router.h"

namespace optr::layout {

clip::Clip buildAccessClip(const CellLibrary& lib, const CellMaster& master,
                           int escapeLayer) {
  const tech::Technology& techn = lib.technology();
  clip::Clip c;
  c.id = master.name + "_access";
  c.techName = techn.name;
  c.tracksX = master.widthSites + 3;  // one site margin each side
  c.tracksY = techn.cellHeightTracks;
  c.numLayers = std::max(escapeLayer + 1, 3);

  // Layer 0 stands in for the pin layer (M1): it is not a routing resource
  // -- every vertex that is not a pin access point is blocked, so accessing
  // a pin means placing a via at one of its access points. That is exactly
  // the geometry the via-adjacency restrictions constrain (Section 4.1).
  std::vector<char> isAp(
      static_cast<std::size_t>(c.tracksX) * c.tracksY, 0);

  for (const PinTemplate& pin : master.pins) {
    clip::ClipNet net;
    net.name = master.name + "/" + pin.name;
    int netId = static_cast<int>(c.nets.size());

    // Source: the pin's access points, snapped to tracks (+1 site margin).
    clip::ClipPin src;
    src.net = netId;
    for (const Point& ap : pin.accessPointsNm) {
      clip::TrackPoint tp;
      tp.x = static_cast<int>(ap.x / techn.placementGridNm) + 1;
      tp.y = static_cast<int>(ap.y / techn.horizontalPitchNm);
      tp.z = 0;
      tp.x = std::clamp(tp.x, 0, c.tracksX - 1);
      tp.y = std::clamp(tp.y, 0, c.tracksY - 1);
      if (std::find(src.accessPoints.begin(), src.accessPoints.end(), tp) ==
          src.accessPoints.end()) {
        src.accessPoints.push_back(tp);
        isAp[static_cast<std::size_t>(tp.y) * c.tracksX + tp.x] = 1;
      }
    }
    src.shapeNm = pin.shapeNm;
    net.pins.push_back(static_cast<int>(c.pins.size()));
    c.pins.push_back(std::move(src));

    // Sink: an escape anywhere on the escape layer (supersink fan-in).
    clip::ClipPin escape;
    escape.net = netId;
    escape.isBoundary = true;
    escape.isVirtual = true;
    for (int y = 0; y < c.tracksY; ++y) {
      for (int x = 0; x < c.tracksX; ++x) {
        escape.accessPoints.push_back({x, y, escapeLayer});
      }
    }
    escape.shapeNm = Rect(0, 0, 0, 0);
    net.pins.push_back(static_cast<int>(c.pins.size()));
    c.pins.push_back(std::move(escape));

    c.nets.push_back(std::move(net));
  }

  // Block the remainder of the pin layer.
  for (int y = 0; y < c.tracksY; ++y) {
    for (int x = 0; x < c.tracksX; ++x) {
      if (!isAp[static_cast<std::size_t>(y) * c.tracksX + x])
        c.obstacles.push_back({x, y, 0});
    }
  }
  return c;
}

PinAccessResult checkPinAccess(const CellLibrary& lib,
                               const CellMaster& master,
                               const tech::RuleConfig& rule,
                               double timeLimitSec) {
  PinAccessResult out;
  clip::Clip c = buildAccessClip(lib, master);
  auto techn = lib.technology();
  core::OptRouterOptions o;
  o.mip.timeLimitSec = timeLimitSec;
  core::OptRouter router(techn, rule, o);
  core::RouteResult r = router.route(c);
  switch (r.status) {
    case core::RouteStatus::kOptimal:
      out.feasible = true;
      out.proven = true;
      out.cost = r.cost;
      break;
    case core::RouteStatus::kFeasible:
      out.feasible = true;
      out.cost = r.cost;
      break;
    case core::RouteStatus::kInfeasible:
      out.proven = true;
      break;
    default:
      break;
  }
  return out;
}

}  // namespace optr::layout
