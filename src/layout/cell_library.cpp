#include "layout/cell_library.h"

#include <algorithm>

#include "common/strings.h"

namespace optr::layout {

namespace {

/// Builds one pin. `siteX` is the site column the pin sits on; `style`
/// decides the vertical extent and access-point count:
///   kWide:    pin spans ~4 horizontal tracks -> 3-4 access points;
///   kCompact: pin spans 2 tracks -> exactly 2 access points (Figure 9(c)).
PinTemplate makePin(const tech::Technology& techn, const std::string& name,
                    bool isOutput, int siteX, int trackLo) {
  PinTemplate p;
  p.name = name;
  p.isOutput = isOutput;
  const int pitch = techn.horizontalPitchNm;
  const int site = techn.placementGridNm;
  const int x = siteX * site;
  const int spanTracks = (techn.pinStyle == tech::PinStyle::kWide) ? 4 : 2;
  const int width = (techn.pinStyle == tech::PinStyle::kWide) ? 64 : 32;
  p.shapeNm = Rect(x - width / 2, trackLo * pitch - 25, x + width / 2,
                   (trackLo + spanTracks - 1) * pitch + 25);
  const int points = (techn.pinStyle == tech::PinStyle::kWide) ? 3 : 2;
  for (int i = 0; i < points; ++i) {
    int track = trackLo + i * (spanTracks - 1) / std::max(1, points - 1);
    p.accessPointsNm.push_back(Point{x, track * pitch});
  }
  return p;
}

CellMaster makeMaster(const tech::Technology& techn, const std::string& name,
                      int widthSites,
                      const std::vector<std::pair<std::string, bool>>& pins) {
  CellMaster m;
  m.name = name;
  m.widthSites = widthSites;
  // Spread pins across interior site columns; inputs low in the cell,
  // outputs higher (mimics real cell pin placement enough for the metric).
  const int h = techn.cellHeightTracks;
  int idx = 0;
  for (const auto& [pinName, isOutput] : pins) {
    int siteX = 1 + (idx % std::max(1, widthSites - 1));
    int trackLo;
    if (techn.pinStyle == tech::PinStyle::kWide) {
      trackLo = isOutput ? (h / 2) : (2 + (idx % 2) * 2);
    } else {
      // Compact 7nm-like (Figure 9(c)): input pins share the same two
      // middle tracks on adjacent columns -- every access-point pair of two
      // neighbouring pins is within one site/track, so 8-neighbor via
      // blocking leaves no simultaneous access.
      trackLo = isOutput ? (h / 2 + 1) : (h / 2 - 1);
    }
    trackLo = std::clamp(trackLo, 1, h - 3);
    m.pins.push_back(makePin(techn, pinName, isOutput, siteX, trackLo));
    ++idx;
  }
  return m;
}

}  // namespace

CellLibrary CellLibrary::forTechnology(const tech::Technology& techn) {
  CellLibrary lib(techn);
  auto add = [&](const std::string& name, int width,
                 const std::vector<std::pair<std::string, bool>>& pins) {
    lib.masters_.push_back(makeMaster(techn, name, width, pins));
  };
  // A representative mix; widths in sites roughly follow commercial ratios.
  add("INVX1", 2, {{"A", false}, {"Y", true}});
  add("INVX2", 2, {{"A", false}, {"Y", true}});
  add("BUFX2", 3, {{"A", false}, {"Y", true}});
  add("NAND2X1", 3, {{"A", false}, {"B", false}, {"Y", true}});
  add("NOR2X1", 3, {{"A", false}, {"B", false}, {"Y", true}});
  add("XOR2X1", 5, {{"A", false}, {"B", false}, {"Y", true}});
  add("AOI21X1", 4, {{"A", false}, {"B", false}, {"C", false}, {"Y", true}});
  add("OAI21X1", 4, {{"A", false}, {"B", false}, {"C", false}, {"Y", true}});
  add("MUX2X1", 5,
      {{"A", false}, {"B", false}, {"S", false}, {"Y", true}});
  add("DFFX1", 8, {{"D", false}, {"CK", false}, {"Q", true}});
  return lib;
}

std::string CellLibrary::renderAscii(const CellMaster& master) const {
  // Track rows from top (highest track) to bottom; site columns across.
  const int h = tech_.cellHeightTracks;
  const int w = master.widthSites + 1;
  std::vector<std::string> canvas(h, std::string(w * 4, '.'));
  for (const PinTemplate& pin : master.pins) {
    for (const Point& ap : pin.accessPointsNm) {
      int col = static_cast<int>(ap.x / tech_.placementGridNm) * 4;
      int row = h - 1 - static_cast<int>(ap.y / tech_.horizontalPitchNm);
      if (row < 0 || row >= h) continue;
      if (col < 0 || col + 1 >= static_cast<int>(canvas[row].size())) continue;
      canvas[row][col] = pin.name[0];
      canvas[row][col + 1] = '*';
    }
  }
  std::string out = master.name + " (" + tech_.name + ", " +
                    std::to_string(master.widthSites) + " sites x " +
                    std::to_string(h) + " tracks; '*' = access point)\n";
  out += "  VDD " + std::string(w * 4 - 4, '=') + "\n";
  for (const std::string& line : canvas) out += "      " + line + "\n";
  out += "  VSS " + std::string(w * 4 - 4, '=') + "\n";
  return out;
}

}  // namespace optr::layout
