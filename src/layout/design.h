// A synthetic placed design: the substrate standing in for the paper's
// AES / Cortex-M0 implementations (Table 2).
//
// Instances sit on a row/site grid (row height = cellHeightTracks x
// horizontal pitch; site width = placement grid). The netlist is generated
// with Rent-style locality by design_gen; the coarse global router
// (global_route.h) then decides which 1um x 1um windows each net crosses,
// and clip_extract turns windows into routing clips.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "layout/cell_library.h"

namespace optr::layout {

struct Instance {
  int master = 0;  // index into CellLibrary
  int row = 0;     // placement row (0 at the bottom)
  int siteX = 0;   // leftmost occupied site
  std::string name;

  Point originNm(const CellLibrary& lib) const {
    return Point{static_cast<std::int64_t>(siteX) * lib.siteWidthNm(),
                 static_cast<std::int64_t>(row) * lib.cellHeightNm()};
  }
};

struct Terminal {
  int instance = -1;
  int pin = -1;  // index into the master's pins; terminal 0 drives the net
};

struct DesignNet {
  std::string name;
  std::vector<Terminal> terminals;
};

struct Design {
  std::string name;       // e.g. "AES" / "M0"
  std::string techName;   // technology preset
  int rows = 0;
  int sitesPerRow = 0;
  std::vector<Instance> instances;
  std::vector<DesignNet> nets;

  /// Placement-area utilization: occupied sites / total sites.
  double utilization(const CellLibrary& lib) const {
    std::int64_t occupied = 0;
    for (const Instance& inst : instances)
      occupied += lib.master(inst.master).widthSites;
    std::int64_t total =
        static_cast<std::int64_t>(rows) * sitesPerRow;
    return total == 0 ? 0.0 : static_cast<double>(occupied) / total;
  }

  /// Die dimensions in nm.
  std::int64_t widthNm(const CellLibrary& lib) const {
    return static_cast<std::int64_t>(sitesPerRow) * lib.siteWidthNm();
  }
  std::int64_t heightNm(const CellLibrary& lib) const {
    return static_cast<std::int64_t>(rows) * lib.cellHeightNm();
  }

  /// Absolute nm location of a terminal's first access point.
  Point terminalNm(const CellLibrary& lib, const Terminal& t) const {
    const Instance& inst = instances[t.instance];
    const PinTemplate& pin = lib.master(inst.master).pins[t.pin];
    Point o = inst.originNm(lib);
    Point ap = pin.accessPointsNm.front();
    return Point{o.x + ap.x, o.y + ap.y};
  }
};

/// Knobs for the synthetic design generator (design_gen.cpp).
struct DesignSpec {
  std::string name = "AES";
  int targetInstances = 600;   // scaled from the paper's 9-15K (DESIGN.md)
  double utilization = 0.90;   // paper sweeps 89-97%
  double avgFanout = 2.2;      // sinks per driven net
  double localityWindow = 8.0; // sink search radius in sites (Rent locality)
  std::uint64_t seed = 1;
};

Design generateDesign(const CellLibrary& lib, const DesignSpec& spec);

}  // namespace optr::layout
