// Coarse global router over 1um x 1um gcells.
//
// The paper extracts clips from fully detail-routed designs; for clip
// construction, what matters is (a) which nets pass through each window and
// (b) where they cross window boundaries (track + layer). A congestion-aware
// gcell-grid router provides exactly that: each net is routed as a Steiner
// tree over gcells, and every boundary crossing is assigned a distinct
// (track, layer) slot on that boundary edge.
#pragma once

#include <cstdint>
#include <vector>

#include "layout/design.h"

namespace optr::layout {

struct GcellGrid {
  int nx = 0, ny = 0;
  std::int64_t windowNm = 1000;  // 1um x 1um clips, as in the paper

  int id(int gx, int gy) const { return gy * nx + gx; }
  int numCells() const { return nx * ny; }
};

/// A net crossing between gcell (gx, gy) and its +x or +y neighbor.
struct Crossing {
  int net = -1;
  int gx = 0, gy = 0;
  bool towardX = true;  // crossing the boundary to (gx+1, gy) vs (gx, gy+1)
  int track = 0;        // track index on the boundary (y-track for towardX)
  int layer = 0;        // routing layer index (0 = M2)
};

struct GlobalRoute {
  GcellGrid grid;
  /// Per net, the sorted gcell ids its tree occupies.
  std::vector<std::vector<int>> netCells;
  std::vector<Crossing> crossings;

  /// Crossings incident to one gcell (on any of its four boundaries).
  std::vector<Crossing> crossingsAt(int gx, int gy) const {
    std::vector<Crossing> out;
    for (const Crossing& c : crossings) {
      bool low = (c.gx == gx && c.gy == gy);
      bool high = c.towardX ? (c.gx + 1 == gx && c.gy == gy)
                            : (c.gx == gx && c.gy + 1 == gy);
      if (low || high) out.push_back(c);
    }
    return out;
  }
};

struct GlobalRouteOptions {
  /// Crossing capacity per boundary edge = tracks x layers used below; the
  /// congestion cost steers nets away once usage approaches it.
  double congestionWeight = 2.0;
};

GlobalRoute globalRoute(const Design& design, const CellLibrary& lib,
                        GlobalRouteOptions options = {});

}  // namespace optr::layout
