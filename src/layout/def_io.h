// LEF/DEF-subset interchange for synthetic designs.
//
// The paper's testbed moves layouts through LEF/DEF (via OpenAccess); this
// module writes the synthetic designs in a conforming subset of those
// formats -- enough for external inspection with standard tooling -- and
// reads the same subset back (round-trip tested). Supported subset:
//   LEF:  MACRO / SIZE / PIN / DIRECTION / PORT RECT
//   DEF:  DESIGN / UNITS / DIEAREA / COMPONENTS (+ PLACED) / NETS
// Coordinates are written in DEF database units of 1000/micron (= nm).
#pragma once

#include <string>

#include "common/status.h"
#include "layout/design.h"

namespace optr::layout {

/// LEF for the cell library (macros with pin ports).
std::string writeLef(const CellLibrary& lib);

/// DEF for a placed design (components placed, nets listed by terminal).
std::string writeDef(const Design& design, const CellLibrary& lib);

/// Parses a DEF produced by writeDef back into a Design. The cell library
/// must match (master names are resolved against it).
StatusOr<Design> readDef(const std::string& defText, const CellLibrary& lib);

/// File helpers.
Status saveDesign(const std::string& lefPath, const std::string& defPath,
                  const Design& design, const CellLibrary& lib);

}  // namespace optr::layout
