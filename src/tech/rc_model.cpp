#include "tech/rc_model.h"

namespace optr::tech {

RcModel RcModel::n28() {
  RcModel m;
  m.techName = "N28";
  // M2..M8 (index 0 = M2). 1x-pitch layers share nominal parasitics; the
  // 2x-pitch top layers (M7, M8) are wider and thicker: ~40% of the
  // resistance at slightly higher capacitance.
  for (int z = 0; z < 7; ++z) {
    LayerRc rc;
    bool fat = z >= 5;  // M7, M8
    rc.rPerTrack = fat ? 0.4 : 1.0;
    rc.cPerTrack = fat ? 1.2 : 1.0;
    m.layers.push_back(rc);
  }
  m.viaR = 2.0;
  m.viaC = 0.05;
  return m;
}

RcModel RcModel::n7FromN28() {
  // Paper Section 4: starting from 28nm values, scale R by 15x for 7nm
  // resistivity, then divide by the 2.5x geometry scaling used to fit the
  // 7nm cells into the 28nm BEOL: R_N7 = 6 x R_N28. Capacitance per unit
  // length is kept and divided by the geometry scale: C_N7 = C_N28 / 2.5.
  RcModel m = n28();
  m.techName = "N7(scaled)";
  for (LayerRc& rc : m.layers) {
    rc.rPerTrack *= 6.0;
    rc.cPerTrack /= 2.5;
  }
  // Via resistance rises even faster than wire R at 7nm; use the same wire
  // factor as a conservative floor.
  m.viaR *= 6.0;
  m.viaC /= 2.5;
  return m;
}

RcModel RcModel::forTechnology(const Technology& techn) {
  if (techn.name == "N7-9T") return n7FromN28();
  RcModel m = n28();
  m.techName = techn.name;
  return m;
}

}  // namespace optr::tech
