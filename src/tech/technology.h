// Technology descriptions: BEOL layer stacks, pitches and clip geometry.
//
// The paper evaluates three enablements -- 28nm FDSOI 12-track (N28-12T),
// 28nm FDSOI 8-track (N28-8T) and a prototype 7nm 9-track (N7-9T, scaled
// into the 28nm BEOL per the paper's Section 4 methodology). Since the real
// PDKs are proprietary, these presets reconstruct exactly the properties the
// experiments consume: track counts per 1um x 1um clip, layer directions,
// pitches, cell height in tracks, and the pin-shape style of Figure 9.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace optr::tech {

/// One routing layer (M2 and up; the paper does not use M1 as a routing
/// resource, so layer index 0 corresponds to M2).
struct LayerInfo {
  std::string name;   // "M2", "M3", ...
  int metal = 2;      // metal number (2..9)
  bool horizontal = true;  // preferred direction: tracks run along x
  int pitchNm = 100;
};

/// Pin-shape style, controls how many access points cell pins expose
/// (Figure 9: wide multi-point pins at 28nm vs two-point pins at 7nm).
enum class PinStyle {
  kWide,     // 28nm-like: pins span several tracks, 3+ access points
  kCompact,  // 7nm-like: two access points, pins close together
};

struct Technology {
  std::string name;
  std::vector<LayerInfo> layers;  // index 0 = M2
  int clipTracksX = 7;    // vertical tracks crossing a 1um clip
  int clipTracksY = 10;   // horizontal tracks crossing a 1um clip
  int cellHeightTracks = 12;  // cell height in horizontal (M2) tracks
  int placementGridNm = 136;  // vertical-layer pitch = site width
  int horizontalPitchNm = 100;
  PinStyle pinStyle = PinStyle::kWide;
  /// Whether diagonal-adjacent via placement is achievable at all for pin
  /// access (false for N7-9T: Section 4.1 excludes the 8-neighbor rules).
  bool supportsDiagonalViaRules = true;

  int numLayers() const { return static_cast<int>(layers.size()); }
  /// Routing-layer index (0-based, M2 = 0) for a metal number, or -1.
  int layerOfMetal(int metal) const {
    for (int z = 0; z < numLayers(); ++z)
      if (layers[z].metal == metal) return z;
    return -1;
  }

  static Technology n28_12t();
  static Technology n28_8t();
  static Technology n7_9t();
  static const std::vector<Technology>& all();
  static StatusOr<Technology> byName(const std::string& name);
};

}  // namespace optr::tech
