// BEOL design-rule configurations (paper Table 3) and via shapes.
//
// A RuleConfig is the unit of the paper's evaluation: OptRouter solves each
// clip once per configuration and reports the cost delta relative to RULE1
// (all-LELE, no via restrictions). Configurations combine:
//   * a via-adjacency restriction (0 / 4 / 8 blocked neighbor sites), and
//   * the lowest metal layer on which SADP end-of-line rules apply.
// All routing layers are unidirectional in the paper's study; the router
// also supports bidirectional layers for validation experiments.
#pragma once

#include <string>
#include <vector>

#include "tech/technology.h"

namespace optr::tech {

/// Via-adjacency restriction (Section 3.2 "Via restrictions").
enum class ViaRestriction : int {
  kNone = 0,        // no neighbor sites blocked
  kOrthogonal = 4,  // N/E/S/W neighbor sites blocked
  kFull = 8,        // orthogonal + diagonal neighbors blocked
};

inline int blockedNeighbors(ViaRestriction v) { return static_cast<int>(v); }

/// A via footprint expressed in routing tracks. 1x1 is the default single
/// vertex via; larger shapes (bars, squares) are modeled with representative
/// vertices per the paper's Figure 2. `costFactor` scales the via cost --
/// the paper uses lower costs for larger vias so the optimizer prefers the
/// more manufacturable shape.
struct ViaShape {
  std::string name;
  int spanX = 1;  // tracks covered along x
  int spanY = 1;  // tracks covered along y
  double costFactor = 1.0;

  bool isUnit() const { return spanX == 1 && spanY == 1; }
};

inline ViaShape unitVia() { return ViaShape{"V1x1", 1, 1, 1.0}; }
inline ViaShape barViaX() { return ViaShape{"V2x1", 2, 1, 0.9}; }
inline ViaShape barViaY() { return ViaShape{"V1x2", 1, 2, 0.9}; }
inline ViaShape squareVia() { return ViaShape{"V2x2", 2, 2, 0.8}; }

struct RuleConfig {
  std::string name = "RULE1";
  ViaRestriction viaRestriction = ViaRestriction::kNone;
  /// Lowest metal number with SADP rules; 0 disables SADP entirely.
  /// Example: sadpFromMetal = 3 means M3..M8 are SADP layers ("SADP >= M3").
  int sadpFromMetal = 0;
  /// When false, off-preferred-direction arcs are kept on every layer.
  bool unidirectional = true;
  /// Via shapes available to the router. Must contain at least one shape.
  std::vector<ViaShape> viaShapes = {unitVia()};
  /// Objective weight of one (unit) via relative to one track of wire.
  double viaCostWeight = 4.0;

  bool sadpOnMetal(int metal) const {
    return sadpFromMetal > 0 && metal >= sadpFromMetal;
  }
  bool hasSadp() const { return sadpFromMetal > 0; }
};

/// The eleven configurations of Table 3.
std::vector<RuleConfig> table3Rules();

/// Looks up a Table 3 rule by name ("RULE1".."RULE11").
StatusOr<RuleConfig> ruleByName(const std::string& name);

/// Section 4.1: rules requiring diagonal via placement (8 blocked neighbors
/// interacts with compact 7nm pins) are not testable on N7-9T.
bool ruleApplicable(const RuleConfig& rule, const Technology& techn);

}  // namespace optr::tech
