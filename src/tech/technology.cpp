#include "tech/technology.h"

namespace optr::tech {
namespace {

std::vector<LayerInfo> standardStack(int numLayers) {
  // M2 horizontal, alternating upward; 1x pitch M2..M6, 2x pitch M7..M8
  // (paper: 7nm pitches 40nm M1-M6 / 80nm M7-M8; the scaled testbed uses the
  // 28nm stack with 100nm horizontal pitch, which is what we mirror).
  std::vector<LayerInfo> layers;
  for (int i = 0; i < numLayers; ++i) {
    LayerInfo li;
    li.metal = i + 2;
    li.name = "M" + std::to_string(li.metal);
    li.horizontal = (i % 2 == 0);
    li.pitchNm = (li.metal >= 7) ? 200 : 100;
    layers.push_back(li);
  }
  return layers;
}

}  // namespace

Technology Technology::n28_12t() {
  Technology t;
  t.name = "N28-12T";
  t.layers = standardStack(7);  // M2..M8
  t.clipTracksX = 7;
  t.clipTracksY = 10;
  t.cellHeightTracks = 12;
  t.placementGridNm = 136;
  t.horizontalPitchNm = 100;
  t.pinStyle = PinStyle::kWide;
  t.supportsDiagonalViaRules = true;
  return t;
}

Technology Technology::n28_8t() {
  Technology t = n28_12t();
  t.name = "N28-8T";
  t.cellHeightTracks = 8;
  return t;
}

Technology Technology::n7_9t() {
  // Prototype 7nm 9-track cells scaled 2.5x into the 28nm BEOL stack
  // (Section 4 of the paper): same clip track counts, compact pins.
  Technology t = n28_12t();
  t.name = "N7-9T";
  t.cellHeightTracks = 9;
  t.pinStyle = PinStyle::kCompact;
  t.supportsDiagonalViaRules = false;
  return t;
}

const std::vector<Technology>& Technology::all() {
  static const std::vector<Technology> kAll = {n28_12t(), n28_8t(), n7_9t()};
  return kAll;
}

StatusOr<Technology> Technology::byName(const std::string& name) {
  for (const Technology& t : all()) {
    if (t.name == name) return t;
  }
  return Status::error(ErrorCode::kUnavailable, "unknown technology: " + name);
}

}  // namespace optr::tech
