// Wire RC models and the paper's cross-technology scaling methodology.
//
// Section 4 of the paper derives missing 7nm BEOL electricals from 28nm
// values: geometries are scaled up 2.5x to fit the 28nm stack, wire R per
// unit length is scaled 15x for the resistivity increase at 7nm and then
// divided by the 2.5x geometry scale inside the P&R tool, giving
//   R_N7 = 6 x R_N28,   C_N7 = C_N28 / 2.5.
// This module reproduces that derivation and provides per-layer RC values
// plus Elmore delay estimation over routed clip solutions (consumed by
// route::estimateNetDelays and bench_rc_scaling).
#pragma once

#include <string>
#include <vector>

#include "tech/technology.h"

namespace optr::tech {

/// Per-unit-length wire parasitics (normalized units: ohm per track pitch,
/// femtofarad per track pitch) and via resistance.
struct LayerRc {
  double rPerTrack = 1.0;
  double cPerTrack = 1.0;
};

struct RcModel {
  std::string techName;
  std::vector<LayerRc> layers;  // index 0 = M2
  double viaR = 2.0;            // per cut
  double viaC = 0.05;

  const LayerRc& layer(int z) const { return layers[z]; }

  /// Baseline 28nm model: 1x-pitch layers at nominal R/C, 2x-pitch top
  /// layers at ~40% R (wider, thicker wires) and slightly higher C.
  static RcModel n28();

  /// The paper's scaled 7nm model: R_N7 = 6 x R_N28, C_N7 = C_N28 / 2.5
  /// per unit length (applied uniformly across the stack).
  static RcModel n7FromN28();

  /// Model for a technology preset by name (N28-* share n28()).
  static RcModel forTechnology(const Technology& techn);
};

}  // namespace optr::tech
