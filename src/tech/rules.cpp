#include "tech/rules.h"

namespace optr::tech {

std::vector<RuleConfig> table3Rules() {
  auto make = [](int number, ViaRestriction vr, int sadpFrom) {
    RuleConfig rc;
    rc.name = "RULE" + std::to_string(number);
    rc.viaRestriction = vr;
    rc.sadpFromMetal = sadpFrom;
    return rc;
  };
  return {
      make(1, ViaRestriction::kNone, 0),
      make(2, ViaRestriction::kNone, 2),
      make(3, ViaRestriction::kNone, 3),
      make(4, ViaRestriction::kNone, 4),
      make(5, ViaRestriction::kNone, 5),
      make(6, ViaRestriction::kOrthogonal, 0),
      make(7, ViaRestriction::kOrthogonal, 2),
      make(8, ViaRestriction::kOrthogonal, 3),
      make(9, ViaRestriction::kFull, 0),
      make(10, ViaRestriction::kFull, 2),
      make(11, ViaRestriction::kFull, 3),
  };
}

StatusOr<RuleConfig> ruleByName(const std::string& name) {
  for (const RuleConfig& rc : table3Rules()) {
    if (rc.name == name) return rc;
  }
  return Status::error(ErrorCode::kUnavailable, "unknown rule configuration: " + name);
}

bool ruleApplicable(const RuleConfig& rule, const Technology& techn) {
  if (techn.supportsDiagonalViaRules) return true;
  // Section 4.1: N7-9T compact pins cannot satisfy rules that depend on
  // diagonal via adjacency -- the paper skips RULE2, 7, 9, 10 and 11 (i.e.
  // every 8-neighbor restriction and every SADP >= M2 configuration).
  if (rule.viaRestriction == ViaRestriction::kFull) return false;
  if (rule.sadpFromMetal == 2) return false;
  return true;
}

}  // namespace optr::tech
