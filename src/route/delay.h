// Elmore delay estimation over routed clip solutions.
//
// Supports the paper's RC-scaling methodology (tech/rc_model.h): once a clip
// is routed, per-net Elmore delays quantify what the BEOL choice costs
// electrically -- the 7nm-in-28nm-stack scaling (R x6, C /2.5) shifts the
// wire-delay balance that bench_rc_scaling reports.
#pragma once

#include <vector>

#include "route/route_solution.h"
#include "tech/rc_model.h"

namespace optr::route {

struct NetDelay {
  int net = -1;
  /// Elmore delay from the source to the slowest connected sink, in
  /// normalized R*C units.
  double worstSinkDelay = 0;
  /// Total wire + via capacitance hanging on the net.
  double totalCapacitance = 0;
  /// Total path resistance to the slowest sink.
  double worstPathResistance = 0;
};

struct DelayOptions {
  /// Driver output resistance added in front of the wire tree.
  double driverR = 1.0;
  /// Sink input capacitance added at each sink access point.
  double sinkC = 0.5;
};

/// Per-net Elmore delays for a routed solution. Nets whose routing is not a
/// source-rooted tree (or is absent) report zeros.
std::vector<NetDelay> estimateNetDelays(const clip::Clip& clip,
                                        const grid::RoutingGraph& graph,
                                        const RouteSolution& solution,
                                        const tech::RcModel& rc,
                                        DelayOptions options = {});

}  // namespace optr::route
