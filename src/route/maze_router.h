// Heuristic baseline detailed router (the reproduction's stand-in for the
// commercial router the paper validates against, footnote 6).
//
// PathFinder-style negotiated congestion:
//   * nets are routed sequentially (shortest half-perimeter first) with
//     multi-source Dijkstra growing a Steiner tree sink by sink;
//   * resources held by other nets are soft-penalized (present cost), rule
//     trouble spots accumulate persistent history cost;
//   * after each full pass the DRC checker audits the solution; nets party
//     to any violation are ripped up and rerouted with increased penalties.
// The router only claims success for DRC-clean solutions, so its results are
// directly comparable with OptRouter's (and seed OptRouter's MIP search).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "route/drc.h"
#include "route/route_solution.h"

namespace optr::route {

struct MazeOptions {
  int maxRipupIterations = 40;
  double presentPenaltyInit = 5.0;
  double presentPenaltyGrowth = 1.5;
  double historyIncrement = 3.0;
  /// Optional per-net arc filter (e.g. OptRouter's region pruning), so the
  /// heuristic solution stays encodable as an ILP warm start. Null = allow.
  std::function<bool(int net, int arc)> arcFilter;
};

struct MazeResult {
  bool success = false;        // DRC-clean and fully connected
  RouteSolution solution;      // best attempt even on failure
  int iterations = 0;          // rip-up rounds executed
  int violationsLeft = 0;      // DRC violations in the final attempt
};

class MazeRouter {
 public:
  MazeRouter(const clip::Clip& clip, const grid::RoutingGraph& graph,
             MazeOptions options = {});

  MazeResult route();

 private:
  /// Routes one net against the current occupancy; returns false when some
  /// sink is unreachable. Appends arcs to sol.usedArcs[net].
  bool routeNet(int net, double presentFactor, RouteSolution& sol) const;

  /// Occupancy snapshots derived from a partial solution.
  void buildOccupancy(const RouteSolution& sol, int exceptNet);

  const clip::Clip* clip_;
  const grid::RoutingGraph* graph_;
  MazeOptions options_;
  DrcChecker drc_;

  std::vector<double> history_;     // per arc, persistent
  std::vector<int> vertexOcc_;      // nets (other than current) on a vertex
  std::vector<char> viaSiteOcc_;    // via instance ids placed by other nets
  std::vector<int> netOrder_;
};

}  // namespace optr::route
