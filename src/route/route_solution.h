// A routed solution over a RoutingGraph: per net, the set of directed arcs
// carrying its flow. Produced by both OptRouter (from ILP arc-usage
// variables) and the heuristic baseline router; consumed by the DRC checker,
// cost reporting, and the benches.
#pragma once

#include <algorithm>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "clip/clip.h"
#include "grid/routing_graph.h"

namespace optr::route {

struct RouteSolution {
  /// usedArcs[net] = sorted, deduplicated arc ids used by that net.
  std::vector<std::vector<int>> usedArcs;

  void normalize() {
    for (auto& arcs : usedArcs) {
      std::sort(arcs.begin(), arcs.end());
      arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
    }
  }

  bool netUsesArc(int net, int arc) const {
    const auto& v = usedArcs[net];
    return std::binary_search(v.begin(), v.end(), arc);
  }

  /// Total objective cost: wirelength + weighted vias, i.e. the sum of arc
  /// costs (the graph already distributes via costs onto enter arcs).
  double totalCost(const grid::RoutingGraph& g) const {
    double c = 0;
    for (const auto& arcs : usedArcs)
      for (int a : arcs) c += g.arc(a).cost;
    return c;
  }

  /// Wirelength in track steps (planar arcs only).
  int wirelength(const grid::RoutingGraph& g) const {
    int wl = 0;
    for (const auto& arcs : usedArcs)
      for (int a : arcs)
        if (g.arc(a).kind == grid::ArcKind::kPlanar) ++wl;
    return wl;
  }

  /// Number of via traversals. Unit vias contribute one directed arc per
  /// traversal; shaped vias contribute exactly one enter arc per traversal.
  int viaCount(const grid::RoutingGraph& g) const {
    int n = 0;
    for (const auto& arcs : usedArcs) {
      for (int a : arcs) {
        grid::ArcKind k = g.arc(a).kind;
        if (k == grid::ArcKind::kVia || k == grid::ArcKind::kViaEnter) ++n;
      }
    }
    return n;
  }
};

/// Canonical text form of a (normalized) solution: "SOL <nets>" then one
/// "NET <n> <arc...>" line per net, arcs sorted ascending. Because arc ids
/// are deterministic for a given clip + rule universe, equal routings always
/// serialize to equal bytes -- which is what lets the service's result cache
/// store solutions content-addressably and the benches compare cached
/// against freshly solved geometry byte-for-byte.
inline std::string solutionToText(const RouteSolution& sol) {
  std::ostringstream os;
  os << "SOL " << sol.usedArcs.size() << "\n";
  for (std::size_t n = 0; n < sol.usedArcs.size(); ++n) {
    os << "NET " << n;
    for (int a : sol.usedArcs[n]) os << " " << a;
    os << "\n";
  }
  return os.str();
}

/// Parses the exact output of solutionToText; nullopt on malformed input
/// (a truncated cache entry must read as "absent", never as a wrong route).
inline std::optional<RouteSolution> solutionFromText(const std::string& text) {
  std::istringstream is(text);
  std::string tag;
  std::size_t nets = 0;
  if (!(is >> tag >> nets) || tag != "SOL") return std::nullopt;
  RouteSolution sol;
  sol.usedArcs.resize(nets);
  std::string line;
  std::getline(is, line);  // rest of the SOL line
  for (std::size_t n = 0; n < nets; ++n) {
    if (!std::getline(is, line)) return std::nullopt;
    std::istringstream ls(line);
    std::size_t idx = 0;
    if (!(ls >> tag >> idx) || tag != "NET" || idx != n) return std::nullopt;
    int arc = 0;
    while (ls >> arc) sol.usedArcs[n].push_back(arc);
    if (!ls.eof()) return std::nullopt;
  }
  return sol;
}

}  // namespace optr::route
