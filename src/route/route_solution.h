// A routed solution over a RoutingGraph: per net, the set of directed arcs
// carrying its flow. Produced by both OptRouter (from ILP arc-usage
// variables) and the heuristic baseline router; consumed by the DRC checker,
// cost reporting, and the benches.
#pragma once

#include <algorithm>
#include <vector>

#include "clip/clip.h"
#include "grid/routing_graph.h"

namespace optr::route {

struct RouteSolution {
  /// usedArcs[net] = sorted, deduplicated arc ids used by that net.
  std::vector<std::vector<int>> usedArcs;

  void normalize() {
    for (auto& arcs : usedArcs) {
      std::sort(arcs.begin(), arcs.end());
      arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
    }
  }

  bool netUsesArc(int net, int arc) const {
    const auto& v = usedArcs[net];
    return std::binary_search(v.begin(), v.end(), arc);
  }

  /// Total objective cost: wirelength + weighted vias, i.e. the sum of arc
  /// costs (the graph already distributes via costs onto enter arcs).
  double totalCost(const grid::RoutingGraph& g) const {
    double c = 0;
    for (const auto& arcs : usedArcs)
      for (int a : arcs) c += g.arc(a).cost;
    return c;
  }

  /// Wirelength in track steps (planar arcs only).
  int wirelength(const grid::RoutingGraph& g) const {
    int wl = 0;
    for (const auto& arcs : usedArcs)
      for (int a : arcs)
        if (g.arc(a).kind == grid::ArcKind::kPlanar) ++wl;
    return wl;
  }

  /// Number of via traversals. Unit vias contribute one directed arc per
  /// traversal; shaped vias contribute exactly one enter arc per traversal.
  int viaCount(const grid::RoutingGraph& g) const {
    int n = 0;
    for (const auto& arcs : usedArcs) {
      for (int a : arcs) {
        grid::ArcKind k = g.arc(a).kind;
        if (k == grid::ArcKind::kVia || k == grid::ArcKind::kViaEnter) ++n;
      }
    }
    return n;
  }
};

}  // namespace optr::route
