#include "route/maze_router.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <set>

namespace optr::route {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

MazeRouter::MazeRouter(const clip::Clip& clip, const grid::RoutingGraph& graph,
                       MazeOptions options)
    : clip_(&clip), graph_(&graph), options_(options), drc_(clip, graph) {
  history_.assign(graph.numArcs(), 0.0);

  // Net order: smallest half-perimeter first (short nets lock in cheap
  // resources; long nets negotiate around them).
  const int numNets = static_cast<int>(clip.nets.size());
  std::vector<std::pair<int, int>> order;
  for (int k = 0; k < numNets; ++k) {
    int loX = 1 << 20, hiX = -1, loY = 1 << 20, hiY = -1;
    for (int p : clip.nets[k].pins) {
      for (const clip::TrackPoint& ap : clip.pins[p].accessPoints) {
        loX = std::min(loX, ap.x);
        hiX = std::max(hiX, ap.x);
        loY = std::min(loY, ap.y);
        hiY = std::max(hiY, ap.y);
      }
    }
    order.emplace_back((hiX - loX) + (hiY - loY), k);
  }
  std::sort(order.begin(), order.end());
  for (auto& [hpwl, k] : order) netOrder_.push_back(k);
}

void MazeRouter::buildOccupancy(const RouteSolution& sol, int exceptNet) {
  const grid::RoutingGraph& g = *graph_;
  vertexOcc_.assign(g.numVertices(), 0);
  viaSiteOcc_.assign(g.viaInstances().size(), 0);
  for (std::size_t k = 0; k < sol.usedArcs.size(); ++k) {
    if (static_cast<int>(k) == exceptNet) continue;
    for (int a : sol.usedArcs[k]) {
      const grid::Arc& arc = g.arc(a);
      if (g.isGridVertex(arc.from)) ++vertexOcc_[arc.from];
      if (g.isGridVertex(arc.to)) ++vertexOcc_[arc.to];
      if (arc.viaInstance >= 0 &&
          (arc.kind == grid::ArcKind::kVia ||
           arc.kind == grid::ArcKind::kViaEnter)) {
        viaSiteOcc_[arc.viaInstance] = 1;
        // Shaped vias also occupy their full footprint.
        const grid::ViaInstance& inst = g.viaInstance(arc.viaInstance);
        for (int cv : inst.coveredLower) ++vertexOcc_[cv];
        for (int cv : inst.coveredUpper) ++vertexOcc_[cv];
      }
    }
  }
}

bool MazeRouter::routeNet(int net, double presentFactor,
                          RouteSolution& sol) const {
  const grid::RoutingGraph& g = *graph_;
  const clip::ClipNet& cn = clip_->nets[net];
  const tech::ViaRestriction restriction = g.rule().viaRestriction;

  // Vias already committed by this net's own partial tree conflict too (the
  // via-adjacency rule is net-blind).
  std::vector<char> ownVias(g.viaInstances().size(), 0);
  auto refreshOwnVias = [&] {
    std::fill(ownVias.begin(), ownVias.end(), 0);
    for (int a : sol.usedArcs[net]) {
      const grid::Arc& arc = g.arc(a);
      if (arc.viaInstance >= 0 &&
          (arc.kind == grid::ArcKind::kVia ||
           arc.kind == grid::ArcKind::kViaEnter)) {
        ownVias[arc.viaInstance] = 1;
      }
    }
  };

  // Via placement against committed resources: conflicting sites are
  // hard-blocked (soft penalties oscillate under negotiation -- both nets
  // keep trading the same pair of sites).
  auto viaBlocked = [&](int instId) {
    const grid::ViaInstance& inst = g.viaInstance(instId);
    const auto& shape = g.viaShape(inst.shape);
    for (std::size_t j = 0; j < g.viaInstances().size(); ++j) {
      if (!viaSiteOcc_[j] && !ownVias[j]) continue;
      if (ownVias[j] && static_cast<std::size_t>(instId) == j) continue;
      const grid::ViaInstance& other = g.viaInstance(j);
      if (other.z != inst.z) continue;
      const auto& os = g.viaShape(other.shape);
      int gx = std::max({0, other.x - (inst.x + shape.spanX - 1),
                         inst.x - (other.x + os.spanX - 1)});
      int gy = std::max({0, other.y - (inst.y + shape.spanY - 1),
                         inst.y - (other.y + os.spanY - 1)});
      bool conflict = (gx == 0 && gy == 0);
      if (restriction == tech::ViaRestriction::kOrthogonal)
        conflict = conflict || (gx + gy == 1);
      if (restriction == tech::ViaRestriction::kFull)
        conflict = conflict || (gx <= 1 && gy <= 1);
      if (conflict) return true;
    }
    return false;
  };

  // Tree vertices so far (multi-source Dijkstra seeds).
  std::set<int> tree;
  for (const clip::TrackPoint& ap : clip_->pins[cn.pins[0]].accessPoints) {
    int v = g.vertexId(ap);
    if (g.usableBy(v, net)) tree.insert(v);
  }
  if (tree.empty()) return false;
  refreshOwnVias();

  std::vector<int> remainingSinks(cn.pins.begin() + 1, cn.pins.end());

  while (!remainingSinks.empty()) {
    // Dijkstra from the whole tree to the nearest remaining sink.
    std::vector<double> dist(g.numVertices(), kInf);
    std::vector<int> predArc(g.numVertices(), -1);
    using Entry = std::pair<double, int>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    for (int v : tree) {
      dist[v] = 0;
      pq.emplace(0.0, v);
    }

    // Sink targets: any usable access point of any remaining sink.
    std::vector<int> targetPinOf(g.numVertices(), -1);
    for (std::size_t s = 0; s < remainingSinks.size(); ++s) {
      for (const clip::TrackPoint& ap :
           clip_->pins[remainingSinks[s]].accessPoints) {
        int v = g.vertexId(ap);
        if (g.usableBy(v, net)) targetPinOf[v] = static_cast<int>(s);
      }
    }

    int hitVertex = -1;
    while (!pq.empty()) {
      auto [d, v] = pq.top();
      pq.pop();
      if (d > dist[v]) continue;
      if (targetPinOf[v] >= 0) {
        hitVertex = v;
        break;
      }
      for (int a : g.outArcs(v)) {
        const grid::Arc& arc = g.arc(a);
        int w = arc.to;
        if (!g.usableBy(w, net)) continue;
        if (options_.arcFilter && !options_.arcFilter(net, a)) continue;
        if (arc.viaInstance >= 0) {
          const grid::ViaInstance& inst = g.viaInstance(arc.viaInstance);
          bool blocked = false;
          for (int cv : inst.coveredLower) {
            if (!g.usableBy(cv, net)) { blocked = true; break; }
          }
          if (!blocked) {
            for (int cv : inst.coveredUpper) {
              if (!g.usableBy(cv, net)) { blocked = true; break; }
            }
          }
          if (blocked) continue;
        }
        if (arc.viaInstance >= 0 &&
            (arc.kind == grid::ArcKind::kVia ||
             arc.kind == grid::ArcKind::kViaEnter) &&
            viaBlocked(arc.viaInstance)) {
          continue;
        }
        double step = arc.cost + history_[a];
        if (g.isGridVertex(w) && vertexOcc_[w] > 0)
          step += presentFactor * vertexOcc_[w];
        double nd = d + step;
        if (nd < dist[w] - 1e-12) {
          dist[w] = nd;
          predArc[w] = a;
          pq.emplace(nd, w);
        }
      }
    }
    if (hitVertex < 0) return false;

    // Commit the path and absorb the reached sink.
    int sinkIdx = targetPinOf[hitVertex];
    remainingSinks.erase(remainingSinks.begin() + sinkIdx);
    int cur = hitVertex;
    while (predArc[cur] >= 0) {
      int a = predArc[cur];
      sol.usedArcs[net].push_back(a);
      const grid::Arc& arc = g.arc(a);
      tree.insert(arc.to);
      tree.insert(arc.from);
      cur = arc.from;
    }
    tree.insert(hitVertex);
    refreshOwnVias();
  }
  std::sort(sol.usedArcs[net].begin(), sol.usedArcs[net].end());
  sol.usedArcs[net].erase(
      std::unique(sol.usedArcs[net].begin(), sol.usedArcs[net].end()),
      sol.usedArcs[net].end());
  return true;
}

MazeResult MazeRouter::route() {
  const int numNets = static_cast<int>(clip_->nets.size());
  MazeResult result;
  result.solution.usedArcs.assign(numNets, {});

  double presentFactor = options_.presentPenaltyInit;
  std::vector<char> dirty(numNets, 1);  // nets needing (re)routing

  for (int iter = 0; iter < options_.maxRipupIterations; ++iter) {
    result.iterations = iter + 1;
    bool allRouted = true;
    for (int k : netOrder_) {
      if (!dirty[k]) continue;
      result.solution.usedArcs[k].clear();
      buildOccupancy(result.solution, k);
      if (!routeNet(k, presentFactor, result.solution)) {
        allRouted = false;
        // Unreachable under current occupancy: penalize nothing specific,
        // rip everything up and retry with higher pressure.
        for (int j = 0; j < numNets; ++j) dirty[j] = 1;
        for (int j = 0; j < numNets; ++j) result.solution.usedArcs[j].clear();
        break;
      }
      dirty[k] = 0;
    }
    if (!allRouted) {
      presentFactor *= options_.presentPenaltyGrowth;
      continue;
    }

    std::vector<Violation> violations = drc_.check(result.solution);
    if (violations.empty()) {
      result.success = true;
      result.violationsLeft = 0;
      return result;
    }
    result.violationsLeft = static_cast<int>(violations.size());

    // Rip up one party per violation (the second net keeps the resource --
    // ripping both oscillates); charge history on the arcs involved so the
    // next pass avoids the trouble spots.
    for (const Violation& v : violations) {
      if (v.netB >= 0) {
        dirty[v.netB] = 1;
      } else if (v.netA >= 0) {
        dirty[v.netA] = 1;
      }
      for (int a : v.arcsA) history_[a] += options_.historyIncrement;
      for (int a : v.arcsB) history_[a] += options_.historyIncrement;
      if (v.kind == ViolationKind::kSadpEol) {
        if (v.eolA.viaArc >= 0)
          history_[v.eolA.viaArc] += options_.historyIncrement;
        if (v.eolB.viaArc >= 0)
          history_[v.eolB.viaArc] += options_.historyIncrement;
      }
      if (v.viaA >= 0) {
        for (int a : graph_->viaInstance(v.viaA).arcs)
          history_[a] += options_.historyIncrement * 0.5;
      }
      if (v.viaB >= 0) {
        for (int a : graph_->viaInstance(v.viaB).arcs)
          history_[a] += options_.historyIncrement * 0.5;
      }
    }
    for (int k = 0; k < numNets; ++k) {
      if (dirty[k]) result.solution.usedArcs[k].clear();
    }
    presentFactor *= options_.presentPenaltyGrowth;
  }

  // Out of iterations. Complete any nets the final rip-up left unrouted so
  // the returned attempt is as connected as possible (callers still see
  // success == false).
  for (int k : netOrder_) {
    if (result.solution.usedArcs[k].empty()) {
      buildOccupancy(result.solution, k);
      routeNet(k, presentFactor, result.solution);
    }
  }
  result.violationsLeft =
      static_cast<int>(drc_.check(result.solution).size());
  return result;  // success == false; solution is the last attempt
}

}  // namespace optr::route
