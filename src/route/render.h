// ASCII rendering of clips and routed solutions, layer by layer.
//
// Used by the examples (quickstart, clip_extraction) to visualize what the
// routers produced -- a terminal-friendly stand-in for the paper's Figure 7
// screenshots. Nets print as digits (net id mod 10), pins as letters,
// obstacles as '#', vias as '+'.
#pragma once

#include <string>

#include "route/route_solution.h"

namespace optr::route {

/// Renders one layer of the clip. `solution` may be null (pins/obstacles
/// only). Rows print top-down (highest y first) so the output matches the
/// usual layout orientation.
std::string renderLayer(const clip::Clip& clip, const grid::RoutingGraph& g,
                        const RouteSolution* solution, int z);

/// All layers, separated by headers.
std::string renderClip(const clip::Clip& clip, const grid::RoutingGraph& g,
                       const RouteSolution* solution = nullptr);

}  // namespace optr::route
