#include "route/drc.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"

namespace optr::route {

const char* toString(ViolationKind k) {
  switch (k) {
    case ViolationKind::kArcConflict: return "arc-conflict";
    case ViolationKind::kVertexConflict: return "vertex-conflict";
    case ViolationKind::kViaAdjacency: return "via-adjacency";
    case ViolationKind::kViaFootprint: return "via-footprint";
    case ViolationKind::kSadpEol: return "sadp-eol";
    case ViolationKind::kOpenNet: return "open-net";
  }
  return "?";
}

std::string Violation::describe(const grid::RoutingGraph& g) const {
  std::string s = toString(kind);
  s += strFormat(" nets(%d,%d)", netA, netB);
  if (vertex >= 0 && g.isGridVertex(vertex)) {
    auto p = g.coords(vertex);
    s += strFormat(" at (%d,%d,M%d)", p.x, p.y, g.metalOf(p.z));
  }
  if (viaA >= 0) s += strFormat(" viaA=%d", viaA);
  if (viaB >= 0) s += strFormat(" viaB=%d", viaB);
  if (kind == ViolationKind::kSadpEol) {
    auto pa = g.coords(eolA.vertex);
    auto pb = g.coords(eolB.vertex);
    s += strFormat(" eolA=(%d,%d,M%d) eolB=(%d,%d,M%d)", pa.x, pa.y,
                   g.metalOf(pa.z), pb.x, pb.y, g.metalOf(pb.z));
  }
  return s;
}

DrcChecker::DrcChecker(const clip::Clip& clip, const grid::RoutingGraph& graph)
    : clip_(&clip), graph_(&graph) {}

std::vector<Violation> DrcChecker::check(const RouteSolution& sol) const {
  std::vector<Violation> out;
  checkArcAndVertexConflicts(sol, &out);
  checkViaRules(sol, &out);
  checkSadp(sol, &out);
  checkConnectivity(sol, &out);
  return out;
}

void DrcChecker::checkArcAndVertexConflicts(const RouteSolution& sol,
                                            std::vector<Violation>* out) const {
  const grid::RoutingGraph& g = *graph_;
  const int numNets = static_cast<int>(sol.usedArcs.size());

  // Arc exclusivity over undirected arc pairs (paper Constraint (1)).
  std::vector<int> arcNet(g.numArcs(), -1);
  for (int k = 0; k < numNets; ++k) {
    for (int a : sol.usedArcs[k]) {
      int conflictNet = -1;
      if (arcNet[a] >= 0) conflictNet = arcNet[a];
      int rev = g.reverseArc(a);
      if (rev >= 0 && arcNet[rev] >= 0) conflictNet = arcNet[rev];
      if (conflictNet >= 0) {
        Violation v;
        v.kind = ViolationKind::kArcConflict;
        v.netA = conflictNet;
        v.netB = k;
        v.arcsA = {a};
        v.vertex = g.isGridVertex(g.arc(a).from) ? g.arc(a).from : -1;
        out->push_back(std::move(v));
      }
      arcNet[a] = k;
    }
  }

  // Vertex exclusivity: the set of grid vertices a net's arcs touch must be
  // disjoint from every other net's. Access points shared by abutting pins
  // of the same net are fine (same k).
  std::map<int, int> vertexNet;  // grid vertex -> first net touching it
  for (int k = 0; k < numNets; ++k) {
    std::set<int> touched;
    for (int a : sol.usedArcs[k]) {
      const grid::Arc& arc = g.arc(a);
      if (g.isGridVertex(arc.from)) touched.insert(arc.from);
      if (g.isGridVertex(arc.to)) touched.insert(arc.to);
    }
    for (int v : touched) {
      auto [it, inserted] = vertexNet.emplace(v, k);
      if (inserted || it->second == k) continue;
      Violation viol;
      viol.kind = ViolationKind::kVertexConflict;
      viol.netA = it->second;
      viol.netB = k;
      viol.vertex = v;
      for (int a : sol.usedArcs[viol.netA]) {
        const grid::Arc& arc = g.arc(a);
        if (arc.from == v || arc.to == v) viol.arcsA.push_back(a);
      }
      for (int a : sol.usedArcs[k]) {
        const grid::Arc& arc = g.arc(a);
        if (arc.from == v || arc.to == v) viol.arcsB.push_back(a);
      }
      out->push_back(std::move(viol));
    }
    // Routing through vertices owned by other nets or blocked.
    for (int v : touched) {
      int owner = g.vertexOwner(v);
      if (owner == grid::kVertexFree || owner == k) continue;
      Violation viol;
      viol.kind = ViolationKind::kVertexConflict;
      viol.netA = owner;  // kVertexBlocked (-2) marks obstacles
      viol.netB = k;
      viol.vertex = v;
      for (int a : sol.usedArcs[k]) {
        const grid::Arc& arc = g.arc(a);
        if (arc.from == v || arc.to == v) viol.arcsB.push_back(a);
      }
      out->push_back(std::move(viol));
    }
  }
}

std::vector<std::pair<int, int>> DrcChecker::usedVias(const RouteSolution& sol,
                                                      int net) const {
  const grid::RoutingGraph& g = *graph_;
  std::vector<std::pair<int, int>> result;  // (instance, enter arc)
  std::set<int> seen;
  for (int a : sol.usedArcs[net]) {
    const grid::Arc& arc = g.arc(a);
    if (arc.viaInstance < 0) continue;
    if (arc.kind != grid::ArcKind::kVia && arc.kind != grid::ArcKind::kViaEnter)
      continue;  // exits don't mark usage; the matching enter does
    if (seen.insert(arc.viaInstance).second)
      result.emplace_back(arc.viaInstance, a);
  }
  return result;
}

void DrcChecker::checkViaRules(const RouteSolution& sol,
                               std::vector<Violation>* out) const {
  const grid::RoutingGraph& g = *graph_;
  const int numNets = static_cast<int>(sol.usedArcs.size());
  const tech::ViaRestriction restriction = g.rule().viaRestriction;

  struct UsedVia {
    int inst, net, arc;
  };
  std::vector<UsedVia> used;
  for (int k = 0; k < numNets; ++k) {
    for (auto [inst, arc] : usedVias(sol, k)) used.push_back({inst, k, arc});
  }

  auto footprintGap = [&](const grid::ViaInstance& a,
                          const grid::ViaInstance& b, int& gx, int& gy) {
    const auto& sa = g.viaShape(a.shape);
    const auto& sb = g.viaShape(b.shape);
    int aLoX = a.x, aHiX = a.x + sa.spanX - 1;
    int aLoY = a.y, aHiY = a.y + sa.spanY - 1;
    int bLoX = b.x, bHiX = b.x + sb.spanX - 1;
    int bLoY = b.y, bHiY = b.y + sb.spanY - 1;
    gx = std::max({0, bLoX - aHiX, aLoX - bHiX});
    gy = std::max({0, bLoY - aHiY, aLoY - bHiY});
  };

  for (std::size_t i = 0; i < used.size(); ++i) {
    for (std::size_t j = i + 1; j < used.size(); ++j) {
      const grid::ViaInstance& a = g.viaInstance(used[i].inst);
      const grid::ViaInstance& b = g.viaInstance(used[j].inst);
      if (a.z != b.z) continue;  // different cut layers never interact
      if (used[i].inst == used[j].inst) {
        // Same via instance entered twice (necessarily by two nets or two
        // traversals): always a conflict.
        Violation v;
        v.kind = ViolationKind::kViaAdjacency;
        v.netA = used[i].net;
        v.netB = used[j].net;
        v.viaA = used[i].inst;
        v.viaB = used[j].inst;
        out->push_back(std::move(v));
        continue;
      }
      int gx = 0, gy = 0;
      footprintGap(a, b, gx, gy);
      bool conflict = false;
      if (gx == 0 && gy == 0) {
        conflict = true;  // overlapping footprints: illegal at any setting
      } else if (restriction == tech::ViaRestriction::kOrthogonal) {
        conflict = (gx + gy == 1);
      } else if (restriction == tech::ViaRestriction::kFull) {
        conflict = (gx <= 1 && gy <= 1);
      }
      if (!conflict) continue;
      Violation v;
      v.kind = ViolationKind::kViaAdjacency;
      v.netA = used[i].net;
      v.netB = used[j].net;
      v.viaA = used[i].inst;
      v.viaB = used[j].inst;
      out->push_back(std::move(v));
    }
  }

  // Footprint blocking (paper Constraint (5)): no other net may touch a
  // vertex covered by a used via shape; covered vertices must be usable by
  // the via's owner as well.
  for (const UsedVia& uv : used) {
    const grid::ViaInstance& inst = g.viaInstance(uv.inst);
    if (g.viaShape(inst.shape).isUnit()) continue;  // vertex rule covers it
    std::vector<int> covered = inst.coveredLower;
    covered.insert(covered.end(), inst.coveredUpper.begin(),
                   inst.coveredUpper.end());
    for (int cv : covered) {
      int owner = g.vertexOwner(cv);
      if (owner != grid::kVertexFree && owner != uv.net) {
        Violation v;
        v.kind = ViolationKind::kViaFootprint;
        v.netA = uv.net;
        v.netB = owner;
        v.viaA = uv.inst;
        v.vertex = cv;
        out->push_back(std::move(v));
      }
      for (int k = 0; k < numNets; ++k) {
        if (k == uv.net) continue;
        std::vector<int> arcsAtCv;
        for (int a : sol.usedArcs[k]) {
          const grid::Arc& arc = g.arc(a);
          if ((arc.from == cv || arc.to == cv) && arc.viaInstance != uv.inst)
            arcsAtCv.push_back(a);
        }
        if (arcsAtCv.empty()) continue;
        Violation v;
        v.kind = ViolationKind::kViaFootprint;
        v.netA = uv.net;
        v.netB = k;
        v.viaA = uv.inst;
        v.vertex = cv;
        v.arcsB = std::move(arcsAtCv);
        out->push_back(std::move(v));
      }
    }
  }
}

std::vector<EolInfo> DrcChecker::findEols(const RouteSolution& sol,
                                          int net) const {
  const grid::RoutingGraph& g = *graph_;
  std::vector<EolInfo> eols;

  // Per-layer along-track edge usage for this net. Identify an edge by its
  // low-end vertex; the edge runs toward +axis on the layer's preferred
  // direction (u axis). Off-direction edges cannot exist on unidirectional
  // layers; if the rule allows them, SADP does not apply anyway (the paper's
  // SADP study assumes unidirectional layers).
  auto edgeArcs = [&](int x, int y, int z, int& fwd, int& rev) {
    fwd = rev = -1;
    if (x < 0 || y < 0) return;
    const bool horiz = g.layerInfo(z).horizontal;
    int x2 = horiz ? x + 1 : x;
    int y2 = horiz ? y : y + 1;
    if (x2 >= g.nx() || y2 >= g.ny()) return;
    int vA = g.vertexId(x, y, z), vB = g.vertexId(x2, y2, z);
    for (int a : g.outArcs(vA)) {
      if (g.arc(a).to == vB && g.arc(a).kind == grid::ArcKind::kPlanar) {
        fwd = a;
        rev = g.reverseArc(a);
        return;
      }
    }
  };

  std::set<int> arcSet(sol.usedArcs[net].begin(), sol.usedArcs[net].end());
  auto uses = [&](int a) { return a >= 0 && arcSet.count(a) > 0; };

  for (int z = 0; z < g.nz(); ++z) {
    const bool horiz = g.layerInfo(z).horizontal;
    for (int y = 0; y < g.ny(); ++y) {
      for (int x = 0; x < g.nx(); ++x) {
        int v = g.vertexId(x, y, z);
        // Edge toward +axis starting here, and edge toward -axis (i.e. the
        // +axis edge of the previous position).
        int posFwd, posRev, negFwd, negRev;
        edgeArcs(x, y, z, posFwd, posRev);
        if (horiz) {
          edgeArcs(x - 1, y, z, negFwd, negRev);
          if (x == 0) negFwd = negRev = -1;
        } else {
          edgeArcs(x, y - 1, z, negFwd, negRev);
          if (y == 0) negFwd = negRev = -1;
        }
        bool usesPos = uses(posFwd) || uses(posRev);
        bool usesNeg = uses(negFwd) || uses(negRev);
        if (usesPos == usesNeg) continue;  // through-wire or no wire

        // Line end at v: require a via arc at v (the paper detects EOLs at
        // via locations; a wire ending on a pin is not an SADP line end).
        int viaArc = -1;
        for (int a : sol.usedArcs[net]) {
          const grid::Arc& arc = g.arc(a);
          if (arc.viaInstance < 0) continue;
          if (arc.from == v || arc.to == v) {
            viaArc = a;
            break;
          }
        }
        if (viaArc < 0) continue;

        EolInfo e;
        e.net = net;
        e.vertex = v;
        e.towardPositive = usesPos;
        if (usesPos) {
          e.e1Fwd = posFwd; e.e1Rev = posRev;
          e.e0Fwd = negFwd; e.e0Rev = negRev;
        } else {
          e.e1Fwd = negFwd; e.e1Rev = negRev;
          e.e0Fwd = posFwd; e.e0Rev = posRev;
        }
        e.viaArc = viaArc;
        eols.push_back(e);
      }
    }
  }
  return eols;
}

void DrcChecker::checkSadp(const RouteSolution& sol,
                           std::vector<Violation>* out) const {
  const grid::RoutingGraph& g = *graph_;
  if (!g.rule().hasSadp()) return;
  const int numNets = static_cast<int>(sol.usedArcs.size());

  std::vector<EolInfo> all;
  for (int k = 0; k < numNets; ++k) {
    auto eols = findEols(sol, k);
    all.insert(all.end(), eols.begin(), eols.end());
  }

  // Pairwise scan. Geometry reconstruction of the paper's Figure 5 (see
  // DESIGN.md): work in layer track coordinates (u = along preferred
  // direction, t = track index). For an EOL at (u, t) with the wire toward
  // +u, conflicting positions are:
  //   opposite-direction EOLs (wire toward -u) at
  //       (u-1, t), (u, t+-1), (u-1, t+-1)          [Fig 5(b), j1..j5]
  //   same-direction EOLs (wire toward +u) at
  //       (u, t+-1), (u-1, t), (u+1, t+-1)          [Fig 5(c), j1,j2,j3,j6,j7]
  // EOLs with wire toward -u mirror the u axis.
  auto axisCoords = [&](const EolInfo& e, int& u, int& t, int& z) {
    auto p = g.coords(e.vertex);
    z = p.z;
    if (g.layerInfo(p.z).horizontal) {
      u = p.x;
      t = p.y;
    } else {
      u = p.y;
      t = p.x;
    }
  };

  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      const EolInfo& A = all[i];
      const EolInfo& B = all[j];
      int ua, ta, za, ub, tb, zb;
      axisCoords(A, ua, ta, za);
      axisCoords(B, ub, tb, zb);
      if (za != zb) continue;
      if (!g.rule().sadpOnMetal(g.metalOf(za))) continue;
      if (A.vertex == B.vertex) continue;  // same point: vertex rules apply

      // Evaluate in A's frame: mirror u when A points toward -u.
      int sign = A.towardPositive ? 1 : -1;
      int du = sign * (ub - ua);
      int dt = tb - ta;
      bool sameDir = (A.towardPositive == B.towardPositive);
      bool conflict = false;
      if (!sameDir) {
        conflict = (du == -1 && dt == 0) || (du == 0 && std::abs(dt) == 1) ||
                   (du == -1 && std::abs(dt) == 1);
      } else {
        conflict = (du == 0 && std::abs(dt) == 1) || (du == -1 && dt == 0) ||
                   (du == 1 && std::abs(dt) == 1);
      }
      if (!conflict) continue;
      Violation v;
      v.kind = ViolationKind::kSadpEol;
      v.netA = A.net;
      v.netB = B.net;
      v.eolA = A;
      v.eolB = B;
      out->push_back(std::move(v));
    }
  }
}

void DrcChecker::checkConnectivity(const RouteSolution& sol,
                                   std::vector<Violation>* out) const {
  const grid::RoutingGraph& g = *graph_;
  const clip::Clip& c = *clip_;
  for (std::size_t n = 0; n < c.nets.size(); ++n) {
    const clip::ClipNet& net = c.nets[n];
    // Directed reachability from the source pin's access points along the
    // net's used arcs (matches the ILP's flow semantics).
    std::vector<char> reached(g.numVertices(), 0);
    std::vector<int> stack;
    for (const clip::TrackPoint& ap : c.pins[net.pins[0]].accessPoints) {
      int v = g.vertexId(ap);
      if (!reached[v]) {
        reached[v] = 1;
        stack.push_back(v);
      }
    }
    // Arc adjacency restricted to used arcs.
    std::vector<std::vector<int>> outByVertex;  // lazy: scan arcs each pop
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      for (int a : sol.usedArcs[n]) {
        const grid::Arc& arc = g.arc(a);
        if (arc.from != v || reached[arc.to]) continue;
        reached[arc.to] = 1;
        stack.push_back(arc.to);
      }
    }
    (void)outByVertex;
    for (std::size_t p = 1; p < net.pins.size(); ++p) {
      bool ok = false;
      for (const clip::TrackPoint& ap : c.pins[net.pins[p]].accessPoints) {
        if (reached[g.vertexId(ap)]) {
          ok = true;
          break;
        }
      }
      if (!ok) {
        Violation v;
        v.kind = ViolationKind::kOpenNet;
        v.netA = static_cast<int>(n);
        v.netB = static_cast<int>(n);
        v.vertex = g.vertexId(c.pins[net.pins[p]].accessPoints[0]);
        out->push_back(std::move(v));
      }
    }
  }
}

}  // namespace optr::route
