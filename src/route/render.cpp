#include "route/render.h"

#include "common/strings.h"

namespace optr::route {

std::string renderLayer(const clip::Clip& clip, const grid::RoutingGraph& g,
                        const RouteSolution* solution, int z) {
  const int w = clip.tracksX * 2 - 1;
  const int h = clip.tracksY * 2 - 1;
  std::vector<std::string> canvas(h, std::string(w, ' '));
  auto cell = [&](int x, int y) -> char& {
    return canvas[h - 1 - 2 * y][2 * x];
  };
  auto between = [&](int x1, int y1, int x2, int y2) -> char& {
    return canvas[h - 1 - (y1 + y2)][x1 + x2];
  };

  for (int y = 0; y < clip.tracksY; ++y)
    for (int x = 0; x < clip.tracksX; ++x) cell(x, y) = '.';

  if (solution != nullptr) {
    for (std::size_t k = 0; k < solution->usedArcs.size(); ++k) {
      char glyph = static_cast<char>('0' + (k % 10));
      for (int a : solution->usedArcs[k]) {
        const grid::Arc& arc = g.arc(a);
        if (!g.isGridVertex(arc.from) || !g.isGridVertex(arc.to)) {
          // Shaped-via arc: mark covered vertices of the instance.
          if (arc.viaInstance >= 0) {
            const grid::ViaInstance& vi = g.viaInstance(arc.viaInstance);
            for (int cv : vi.coveredLower) {
              auto p = g.coords(cv);
              if (p.z == z) cell(p.x, p.y) = '+';
            }
            for (int cv : vi.coveredUpper) {
              auto p = g.coords(cv);
              if (p.z == z) cell(p.x, p.y) = '+';
            }
          }
          continue;
        }
        auto pa = g.coords(arc.from);
        auto pb = g.coords(arc.to);
        if (arc.kind == grid::ArcKind::kPlanar && pa.z == z) {
          cell(pa.x, pa.y) = glyph;
          cell(pb.x, pb.y) = glyph;
          between(pa.x, pa.y, pb.x, pb.y) = (pa.y == pb.y) ? '-' : '|';
        } else if (arc.kind == grid::ArcKind::kVia &&
                   (pa.z == z || pb.z == z)) {
          auto p = (pa.z == z) ? pa : pb;
          cell(p.x, p.y) = '+';
        }
      }
    }
  }

  for (const clip::TrackPoint& o : clip.obstacles) {
    if (o.z == z) cell(o.x, o.y) = '#';
  }
  for (const clip::ClipPin& pin : clip.pins) {
    char glyph = pin.isBoundary ? static_cast<char>('a' + (pin.net % 26))
                                : static_cast<char>('A' + (pin.net % 26));
    for (const clip::TrackPoint& ap : pin.accessPoints) {
      if (ap.z == z) cell(ap.x, ap.y) = glyph;
    }
  }

  std::string out =
      strFormat("M%d (%s)\n", g.metalOf(z),
                g.layerInfo(z).horizontal ? "horizontal" : "vertical");
  for (const std::string& line : canvas) out += "  " + line + "\n";
  return out;
}

std::string renderClip(const clip::Clip& clip, const grid::RoutingGraph& g,
                       const RouteSolution* solution) {
  std::string out;
  for (int z = 0; z < clip.numLayers; ++z) {
    out += renderLayer(clip, g, solution, z);
  }
  out +=
      "  legend: A-Z cell pins, a-z boundary terminals, digits = routed "
      "net, + via, # blockage\n";
  return out;
}

}  // namespace optr::route
