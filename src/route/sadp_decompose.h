// SADP mask decomposition of routed layers.
//
// Self-aligned double patterning prints a gridded unidirectional layer from
// two masks: the mandrel mask (every other track; spacers form around it)
// and a cut/block mask that terminates lines. The design rules the router
// enforces (Xu et al. ISPD'14, paper Section 3.2) exist exactly so that
// this decomposition is manufacturable: line-ends too close on the same or
// adjacent tracks demand cuts the process cannot print.
//
// This module extracts the decomposition from a routed solution: per SADP
// layer, the mandrel/spacer segment lists (by track parity), the cut sites
// (at line-ends), and a manufacturability verdict that mirrors the DRC
// checker's EOL analysis (the two are cross-checked in tests).
#pragma once

#include <string>
#include <vector>

#include "route/drc.h"
#include "route/route_solution.h"

namespace optr::route {

/// A maximal wire segment on one track: [lo, hi] in along-track coordinates.
struct SadpSegment {
  int net = -1;
  int track = 0;   // cross-track index
  int lo = 0, hi = 0;
  bool mandrel = false;  // even tracks carry the mandrel mask
};

/// A cut-mask site terminating a line at a via-bearing end-of-line.
struct SadpCut {
  int net = -1;
  int track = 0;
  int position = 0;        // along-track coordinate of the line end
  bool towardPositive = false;  // wire continues toward +u from the cut
};

struct SadpLayerMasks {
  int layerZ = -1;
  int metal = 0;
  std::vector<SadpSegment> segments;
  std::vector<SadpCut> cuts;
  /// False when cut sites conflict under the SADP spacing rules (identical
  /// geometry to DrcChecker::checkSadp on this layer).
  bool decomposable = true;
};

struct SadpDecomposition {
  std::vector<SadpLayerMasks> layers;  // SADP layers only

  bool decomposable() const {
    for (const auto& l : layers)
      if (!l.decomposable) return false;
    return true;
  }
  int totalCuts() const {
    int n = 0;
    for (const auto& l : layers) n += static_cast<int>(l.cuts.size());
    return n;
  }
};

/// Decomposes every SADP layer of the solution (per the graph's rule
/// config). Layers without SADP rules are skipped.
SadpDecomposition decomposeSadp(const clip::Clip& clip,
                                const grid::RoutingGraph& graph,
                                const RouteSolution& solution);

/// ASCII view of one layer's masks: 'M' mandrel segments, 's' spacer-track
/// segments, 'X' cut sites.
std::string renderMasks(const clip::Clip& clip,
                        const grid::RoutingGraph& graph,
                        const SadpLayerMasks& masks);

}  // namespace optr::route
