#include "route/sadp_decompose.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace optr::route {

namespace {

/// Along-track usage per (net, track) for one layer.
struct TrackWire {
  // Sorted along-track positions where the wire occupies the step
  // [pos, pos+1].
  std::vector<int> steps;
};

}  // namespace

SadpDecomposition decomposeSadp(const clip::Clip& clip,
                                const grid::RoutingGraph& graph,
                                const RouteSolution& solution) {
  SadpDecomposition out;
  const grid::RoutingGraph& g = graph;
  DrcChecker drc(clip, graph);

  for (int z = 0; z < g.nz(); ++z) {
    if (!g.rule().sadpOnMetal(g.metalOf(z))) continue;
    SadpLayerMasks masks;
    masks.layerZ = z;
    masks.metal = g.metalOf(z);
    const bool horiz = g.layerInfo(z).horizontal;

    // Collect along-track steps per (net, track).
    std::map<std::pair<int, int>, TrackWire> wires;
    for (std::size_t k = 0; k < solution.usedArcs.size(); ++k) {
      for (int a : solution.usedArcs[k]) {
        const grid::Arc& arc = g.arc(a);
        if (arc.kind != grid::ArcKind::kPlanar || arc.layer != z) continue;
        auto pa = g.coords(arc.from);
        auto pb = g.coords(arc.to);
        int track = horiz ? pa.y : pa.x;
        int lo = horiz ? std::min(pa.x, pb.x) : std::min(pa.y, pb.y);
        wires[{static_cast<int>(k), track}].steps.push_back(lo);
      }
    }

    // Merge steps into maximal segments.
    for (auto& [key, tw] : wires) {
      auto [net, track] = key;
      std::sort(tw.steps.begin(), tw.steps.end());
      tw.steps.erase(std::unique(tw.steps.begin(), tw.steps.end()),
                     tw.steps.end());
      std::size_t i = 0;
      while (i < tw.steps.size()) {
        std::size_t j = i;
        while (j + 1 < tw.steps.size() &&
               tw.steps[j + 1] == tw.steps[j] + 1) {
          ++j;
        }
        SadpSegment seg;
        seg.net = net;
        seg.track = track;
        seg.lo = tw.steps[i];
        seg.hi = tw.steps[j] + 1;
        seg.mandrel = (track % 2 == 0);
        masks.segments.push_back(seg);
        i = j + 1;
      }
    }

    // Cut sites: the DRC checker's via-bearing line ends on this layer.
    for (std::size_t k = 0; k < solution.usedArcs.size(); ++k) {
      for (const EolInfo& e : drc.findEols(solution, static_cast<int>(k))) {
        auto p = g.coords(e.vertex);
        if (p.z != z) continue;
        SadpCut cut;
        cut.net = static_cast<int>(k);
        cut.track = horiz ? p.y : p.x;
        cut.position = horiz ? p.x : p.y;
        cut.towardPositive = e.towardPositive;
        masks.cuts.push_back(cut);
      }
    }

    // Manufacturability: any SADP violation on this layer breaks it.
    std::vector<Violation> violations;
    drc.checkSadp(solution, &violations);
    for (const Violation& v : violations) {
      if (g.coords(v.eolA.vertex).z == z) masks.decomposable = false;
    }
    out.layers.push_back(std::move(masks));
  }
  return out;
}

std::string renderMasks(const clip::Clip& clip,
                        const grid::RoutingGraph& graph,
                        const SadpLayerMasks& masks) {
  const bool horiz = graph.layerInfo(masks.layerZ).horizontal;
  const int tracks = horiz ? clip.tracksY : clip.tracksX;
  const int length = horiz ? clip.tracksX : clip.tracksY;
  std::vector<std::string> canvas(tracks, std::string(length, '.'));
  for (const SadpSegment& seg : masks.segments) {
    for (int u = seg.lo; u <= seg.hi && u < length; ++u)
      canvas[seg.track][u] = seg.mandrel ? 'M' : 's';
  }
  for (const SadpCut& cut : masks.cuts) {
    if (cut.position >= 0 && cut.position < length)
      canvas[cut.track][cut.position] = 'X';
  }
  std::string out = strFormat(
      "M%d SADP masks (%s tracks; M mandrel, s spacer, X cut)%s\n",
      masks.metal, horiz ? "horizontal" : "vertical",
      masks.decomposable ? "" : "  ** NOT DECOMPOSABLE **");
  for (int t = tracks - 1; t >= 0; --t) {
    out += strFormat("  t%-2d %s\n", t, canvas[t].c_str());
  }
  return out;
}

}  // namespace optr::route
