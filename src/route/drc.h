// Design-rule checker for routed solutions.
//
// Checks a RouteSolution against the active RuleConfig:
//   * arc exclusivity (each undirected arc used by one net, no U-turns),
//   * vertex exclusivity (no two nets touch the same grid vertex; this is
//     the physical short-circuit rule that pure arc exclusivity misses when
//     stacked vias pass through a vertex another net wires across),
//   * via adjacency (blocked neighbor sites per ViaRestriction),
//   * via-shape footprint blocking (paper Constraint (5)),
//   * SADP end-of-line rules on SADP layers (paper Figures 3-5; see
//     DESIGN.md for the geometric reconstruction),
//   * connectivity of every net (all pins reached from the source).
//
// The checker is shared infrastructure: tests use it to validate both
// routers, the baseline router uses it for legality, and OptRouter's lazy
// separation callback converts its violations into ILP rows.
#pragma once

#include <string>
#include <vector>

#include "route/route_solution.h"

namespace optr::route {

enum class ViolationKind {
  kArcConflict,     // same undirected arc used twice
  kVertexConflict,  // two nets touch the same grid vertex
  kViaAdjacency,    // two vias on blocked neighbor sites
  kViaFootprint,    // net crosses another net's via footprint
  kSadpEol,         // forbidden end-of-line pair on an SADP layer
  kOpenNet,         // net not fully connected
};

const char* toString(ViolationKind k);

/// End-of-line description used by SADP violations; enough context for the
/// separation layer to emit a pattern cut.
struct EolInfo {
  int net = -1;
  int vertex = -1;   // grid vertex of the line end
  int e1Fwd = -1, e1Rev = -1;  // directed arcs of the edge the wire occupies
  int e0Fwd = -1, e0Rev = -1;  // arcs of the continuation edge (-1 at border)
  int viaArc = -1;   // the via arc terminating the line at `vertex`
  bool towardPositive = false;  // wire extends toward +axis from the EOL
};

struct Violation {
  ViolationKind kind = ViolationKind::kArcConflict;
  int netA = -1, netB = -1;
  int vertex = -1;          // conflict vertex (vertex/footprint violations)
  int viaA = -1, viaB = -1; // via instance ids (adjacency/footprint)
  std::vector<int> arcsA, arcsB;  // incident used arcs (vertex conflicts)
  EolInfo eolA, eolB;             // SADP violations

  std::string describe(const grid::RoutingGraph& g) const;
};

class DrcChecker {
 public:
  DrcChecker(const clip::Clip& clip, const grid::RoutingGraph& graph);

  /// All violations in the solution. Deterministic order.
  std::vector<Violation> check(const RouteSolution& sol) const;

  /// Individual rule families (used by tests and by the maze router's
  /// incremental legality checks).
  void checkArcAndVertexConflicts(const RouteSolution& sol,
                                  std::vector<Violation>* out) const;
  void checkViaRules(const RouteSolution& sol,
                     std::vector<Violation>* out) const;
  void checkSadp(const RouteSolution& sol, std::vector<Violation>* out) const;
  void checkConnectivity(const RouteSolution& sol,
                         std::vector<Violation>* out) const;

  /// End-of-line scan for one net (exposed for tests and the separator).
  std::vector<EolInfo> findEols(const RouteSolution& sol, int net) const;

  const grid::RoutingGraph& graph() const { return *graph_; }
  const clip::Clip& clip() const { return *clip_; }

 private:
  /// Via instances used by a net: instance id -> one representative enter
  /// arc that the net uses.
  std::vector<std::pair<int, int>> usedVias(const RouteSolution& sol,
                                            int net) const;

  const clip::Clip* clip_;
  const grid::RoutingGraph* graph_;
};

}  // namespace optr::route
