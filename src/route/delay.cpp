#include "route/delay.h"

#include <algorithm>
#include <functional>
#include <map>

namespace optr::route {

namespace {

struct ArcRc {
  double r = 0, c = 0;
};

ArcRc arcRc(const grid::RoutingGraph& g, const grid::Arc& arc,
            const tech::RcModel& rc) {
  ArcRc out;
  switch (arc.kind) {
    case grid::ArcKind::kPlanar:
      out.r = rc.layer(arc.layer).rPerTrack;
      out.c = rc.layer(arc.layer).cPerTrack;
      break;
    case grid::ArcKind::kVia:
    case grid::ArcKind::kViaEnter:
      out.r = rc.viaR;
      out.c = rc.viaC;
      break;
    case grid::ArcKind::kViaExit:
      break;  // the matching enter arc carries the via parasitics
  }
  (void)g;
  return out;
}

}  // namespace

std::vector<NetDelay> estimateNetDelays(const clip::Clip& clip,
                                        const grid::RoutingGraph& graph,
                                        const RouteSolution& solution,
                                        const tech::RcModel& rc,
                                        DelayOptions options) {
  std::vector<NetDelay> result;
  const int numNets = static_cast<int>(clip.nets.size());
  for (int k = 0; k < numNets && k < static_cast<int>(solution.usedArcs.size());
       ++k) {
    NetDelay nd;
    nd.net = k;

    // Children adjacency along flow direction; in-degree to find the root.
    std::map<int, std::vector<int>> childArcs;  // vertex -> out arcs used
    std::map<int, int> indeg;
    for (int a : solution.usedArcs[k]) {
      const grid::Arc& arc = graph.arc(a);
      childArcs[arc.from].push_back(a);
      ++indeg[arc.to];
    }

    // Sink capacitance loads by vertex.
    std::map<int, double> loadAt;
    const clip::ClipNet& net = clip.nets[k];
    for (std::size_t s = 1; s < net.pins.size(); ++s) {
      for (const clip::TrackPoint& ap : clip.pins[net.pins[s]].accessPoints)
        loadAt[graph.vertexId(ap)] += options.sinkC;
    }
    std::map<int, bool> isSinkVertex;
    for (std::size_t s = 1; s < net.pins.size(); ++s) {
      for (const clip::TrackPoint& ap : clip.pins[net.pins[s]].accessPoints)
        isSinkVertex[graph.vertexId(ap)] = true;
    }

    // Root: the source access point that drives flow (no used in-arc).
    int root = -1;
    for (const clip::TrackPoint& ap : clip.pins[net.pins[0]].accessPoints) {
      int v = graph.vertexId(ap);
      if (childArcs.count(v) && indeg.find(v) == indeg.end()) {
        root = v;
        break;
      }
    }
    if (root < 0) {
      result.push_back(nd);  // unrouted or zero-length net
      continue;
    }

    // Pass 1: subtree capacitance below each vertex (post-order).
    std::map<int, double> subtreeC;
    std::function<double(int)> accumulate = [&](int v) -> double {
      double c = 0;
      auto it = loadAt.find(v);
      if (it != loadAt.end()) c += it->second;
      auto ch = childArcs.find(v);
      if (ch != childArcs.end()) {
        for (int a : ch->second) {
          ArcRc arc = arcRc(graph, graph.arc(a), rc);
          c += arc.c + accumulate(graph.arc(a).to);
        }
      }
      subtreeC[v] = c;
      return c;
    };
    nd.totalCapacitance = accumulate(root);

    // Pass 2: Elmore delay, rootward resistance times downstream C.
    double best = 0, bestR = 0;
    std::function<void(int, double, double)> walk = [&](int v, double delay,
                                                        double rPath) {
      if (isSinkVertex.count(v) && delay > best) {
        best = delay;
        bestR = rPath;
      }
      auto ch = childArcs.find(v);
      if (ch == childArcs.end()) return;
      for (int a : ch->second) {
        ArcRc arc = arcRc(graph, graph.arc(a), rc);
        int w = graph.arc(a).to;
        double down = arc.c / 2.0 + subtreeC[w];
        walk(w, delay + arc.r * down, rPath + arc.r);
      }
    };
    double rootDelay = options.driverR * nd.totalCapacitance;
    walk(root, rootDelay, options.driverR);
    nd.worstSinkDelay = best;
    nd.worstPathResistance = bestR;
    result.push_back(nd);
  }
  return result;
}

}  // namespace optr::route
