#include "clip/clip.h"

#include <cmath>

namespace optr::clip {

Status Clip::validate() const {
  if (tracksX <= 0 || tracksY <= 0 || numLayers <= 0)
    return Status::error(ErrorCode::kInvalidInput, "clip " + id + ": empty track grid");
  for (std::size_t n = 0; n < nets.size(); ++n) {
    if (nets[n].pins.size() < 2)
      return Status::error(ErrorCode::kInvalidInput, "clip " + id + ": net " + nets[n].name +
                           " has fewer than 2 pins");
    for (int p : nets[n].pins) {
      if (p < 0 || p >= static_cast<int>(pins.size()))
        return Status::error(ErrorCode::kInvalidInput, "clip " + id + ": net " + nets[n].name +
                             " references unknown pin");
      if (pins[p].net != static_cast<int>(n))
        return Status::error(ErrorCode::kInvalidInput, "clip " + id + ": pin/net cross-reference broken");
    }
  }
  for (const ClipPin& pin : pins) {
    if (pin.net < 0 || pin.net >= static_cast<int>(nets.size()))
      return Status::error(ErrorCode::kInvalidInput, "clip " + id + ": pin references unknown net");
    if (pin.accessPoints.empty())
      return Status::error(ErrorCode::kInvalidInput, "clip " + id + ": pin without access points");
    for (const TrackPoint& ap : pin.accessPoints) {
      if (!inBounds(ap))
        return Status::error(ErrorCode::kInvalidInput, "clip " + id + ": access point out of bounds");
    }
  }
  for (const TrackPoint& o : obstacles) {
    if (!inBounds(o))
      return Status::error(ErrorCode::kInvalidInput, "clip " + id + ": obstacle out of bounds");
  }
  return Status::ok();
}

PinCostBreakdown pinCost(const Clip& clip, double theta) {
  PinCostBreakdown out;
  // Boundary terminals are global-route artifacts, not physical pins: the
  // metric counts real pin geometry only, matching the paper's use of the
  // metric on placed-cell pins.
  std::vector<const ClipPin*> real;
  for (const ClipPin& p : clip.pins) {
    if (!p.isBoundary) real.push_back(&p);
  }
  out.pec = static_cast<double>(real.size());
  for (const ClipPin* p : real) {
    double area = static_cast<double>(p->shapeNm.area());
    out.pac += std::exp2(2.0 - area / theta);
  }
  for (std::size_t i = 0; i < real.size(); ++i) {
    for (std::size_t j = i + 1; j < real.size(); ++j) {
      double spacing = static_cast<double>(
          rectDistance(real[i]->shapeNm, real[j]->shapeNm));
      out.prc += std::exp2(2.0 - spacing / (3.0 * theta));
    }
  }
  return out;
}

}  // namespace optr::clip
