// Clip serialization.
//
// The paper's testbed moves layout data through LEF/DEF + OpenAccess; this
// reproduction uses a compact line-oriented text format for clips (the only
// data that crosses the extraction/evaluation boundary) so that clip sets
// can be saved, versioned, and re-evaluated without regenerating layouts.
//
// Format (whitespace separated, one statement per line):
//   CLIP <id> TECH <name> TRACKS <x> <y> LAYERS <n>
//   NET <name>
//   PIN <netIndex> <BOUNDARY|CELL> SHAPE <lx> <ly> <hx> <hy> APS <n> {x y z}
//   OBS <x> <y> <z>
//   END
#pragma once

#include <string>
#include <vector>

#include "clip/clip.h"
#include "common/status.h"

namespace optr::clip {

/// Serializes one clip.
std::string toText(const Clip& clip);

/// Parses one clip (the exact output of toText).
StatusOr<Clip> fromText(const std::string& text);

/// Serializes many clips back to back; fromTextMulti splits on END.
std::string toTextMulti(const std::vector<Clip>& clips);
StatusOr<std::vector<Clip>> fromTextMulti(const std::string& text);

/// File helpers.
Status saveClips(const std::string& path, const std::vector<Clip>& clips);
StatusOr<std::vector<Clip>> loadClips(const std::string& path);

}  // namespace optr::clip
