// Switchbox-centric routability estimation (paper Section 5 future work).
//
// The paper observes a gap between pin-accessibility metrics (Taghavi PEC/
// PAC/PRC) and actual switchbox routability: for upper-layer rules, half the
// top-pin-cost clips show zero delta-cost. This module implements the
// "metric beyond [15]" the authors call for: a congestion-style estimate
// that looks at the whole switchbox -- net demand against track supply,
// boundary-crossing pressure, and blockage -- rather than pin geometry only.
// bench_metric_gap measures how both metrics correlate with OptRouter's
// ground-truth delta-cost and infeasibility.
#pragma once

#include "clip/clip.h"

namespace optr::clip {

struct RoutabilityEstimate {
  /// Estimated wiring demand in track segments: per net, the half-perimeter
  /// of its access-point bounding box plus a per-pin via allowance.
  double demand = 0;
  /// Usable track segments in the clip (obstacles subtracted).
  double capacity = 0;
  /// demand / capacity.
  double congestion = 0;
  /// Fraction of boundary-edge slots consumed by boundary terminals.
  double boundaryPressure = 0;
  /// Pin crowding: pins per usable M2 vertex.
  double pinDensity = 0;
  /// Combined difficulty score (higher = harder); dimensionless weights
  /// chosen so each component contributes O(1) on typical clips.
  double score = 0;
};

RoutabilityEstimate estimateRoutability(const Clip& clip);

/// Spearman rank correlation between two equally-sized samples; used by the
/// metric-gap bench (exposed here so it is unit-testable).
double spearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

}  // namespace optr::clip
