#include "clip/clip_io.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace optr::clip {

std::string toText(const Clip& clip) {
  std::ostringstream out;
  out << "CLIP " << clip.id << " TECH " << clip.techName << " TRACKS "
      << clip.tracksX << " " << clip.tracksY << " LAYERS " << clip.numLayers
      << "\n";
  for (const ClipNet& net : clip.nets) out << "NET " << net.name << "\n";
  for (const ClipPin& pin : clip.pins) {
    out << "PIN " << pin.net
        << (pin.isVirtual ? " VIRTUAL" : (pin.isBoundary ? " BOUNDARY" : " CELL"))
        << " SHAPE " << pin.shapeNm.lo.x << " " << pin.shapeNm.lo.y << " "
        << pin.shapeNm.hi.x << " " << pin.shapeNm.hi.y << " APS "
        << pin.accessPoints.size();
    for (const TrackPoint& ap : pin.accessPoints)
      out << " " << ap.x << " " << ap.y << " " << ap.z;
    out << "\n";
  }
  for (const TrackPoint& o : clip.obstacles)
    out << "OBS " << o.x << " " << o.y << " " << o.z << "\n";
  out << "END\n";
  return out.str();
}

std::string toTextMulti(const std::vector<Clip>& clips) {
  std::string out;
  for (const Clip& c : clips) out += toText(c);
  return out;
}

namespace {

StatusOr<Clip> parseOne(const std::vector<std::string>& lines,
                        std::size_t& i) {
  Clip clip;
  bool sawHeader = false;
  for (; i < lines.size(); ++i) {
    auto tokens = splitWhitespace(lines[i]);
    if (tokens.empty()) continue;
    if (tokens[0] == "END") {
      ++i;
      if (!sawHeader) return Status::error(ErrorCode::kParse, "clip text: END before CLIP");
      Status s = clip.validate();
      if (!s) return s;
      return clip;
    }
    if (tokens[0] == "CLIP") {
      if (tokens.size() != 9 || tokens[2] != "TECH" || tokens[4] != "TRACKS" ||
          tokens[7] != "LAYERS")
        return Status::error(ErrorCode::kParse, "clip text: malformed CLIP line");
      clip.id = std::string(tokens[1]);
      clip.techName = std::string(tokens[3]);
      auto tx = parseInt(tokens[5]), ty = parseInt(tokens[6]),
           nl = parseInt(tokens[8]);
      if (!tx || !ty || !nl)
        return Status::error(ErrorCode::kParse, "clip text: bad CLIP numbers");
      clip.tracksX = static_cast<int>(*tx);
      clip.tracksY = static_cast<int>(*ty);
      clip.numLayers = static_cast<int>(*nl);
      sawHeader = true;
    } else if (tokens[0] == "NET") {
      if (tokens.size() != 2) return Status::error(ErrorCode::kParse, "clip text: bad NET");
      ClipNet net;
      net.name = std::string(tokens[1]);
      clip.nets.push_back(std::move(net));
    } else if (tokens[0] == "PIN") {
      if (tokens.size() < 10) return Status::error(ErrorCode::kParse, "clip text: short PIN");
      ClipPin pin;
      auto netIdx = parseInt(tokens[1]);
      if (!netIdx || *netIdx < 0 ||
          *netIdx >= static_cast<std::int64_t>(clip.nets.size()))
        return Status::error(ErrorCode::kParse, "clip text: PIN net out of range");
      pin.net = static_cast<int>(*netIdx);
      pin.isBoundary = (tokens[2] == "BOUNDARY" || tokens[2] == "VIRTUAL");
      pin.isVirtual = (tokens[2] == "VIRTUAL");
      if (tokens[3] != "SHAPE") return Status::error(ErrorCode::kParse, "clip text: PIN SHAPE");
      auto lx = parseInt(tokens[4]), ly = parseInt(tokens[5]),
           hx = parseInt(tokens[6]), hy = parseInt(tokens[7]);
      if (!lx || !ly || !hx || !hy)
        return Status::error(ErrorCode::kParse, "clip text: PIN shape numbers");
      pin.shapeNm = Rect(*lx, *ly, *hx, *hy);
      if (tokens[8] != "APS") return Status::error(ErrorCode::kParse, "clip text: PIN APS");
      auto n = parseInt(tokens[9]);
      if (!n || tokens.size() != 10 + 3 * static_cast<std::size_t>(*n))
        return Status::error(ErrorCode::kParse, "clip text: PIN AP count mismatch");
      for (std::int64_t k = 0; k < *n; ++k) {
        auto x = parseInt(tokens[10 + 3 * k]);
        auto y = parseInt(tokens[11 + 3 * k]);
        auto z = parseInt(tokens[12 + 3 * k]);
        if (!x || !y || !z) return Status::error(ErrorCode::kParse, "clip text: PIN AP numbers");
        pin.accessPoints.push_back({static_cast<int>(*x),
                                    static_cast<int>(*y),
                                    static_cast<int>(*z)});
      }
      clip.nets[pin.net].pins.push_back(static_cast<int>(clip.pins.size()));
      clip.pins.push_back(std::move(pin));
    } else if (tokens[0] == "OBS") {
      if (tokens.size() != 4) return Status::error(ErrorCode::kParse, "clip text: bad OBS");
      auto x = parseInt(tokens[1]), y = parseInt(tokens[2]),
           z = parseInt(tokens[3]);
      if (!x || !y || !z) return Status::error(ErrorCode::kParse, "clip text: OBS numbers");
      clip.obstacles.push_back({static_cast<int>(*x), static_cast<int>(*y),
                                static_cast<int>(*z)});
    } else {
      return Status::error(ErrorCode::kParse, "clip text: unknown statement '" +
                           std::string(tokens[0]) + "'");
    }
  }
  return Status::error(ErrorCode::kParse, "clip text: missing END");
}

std::vector<std::string> toLines(const std::string& text) {
  std::vector<std::string> lines;
  for (auto part : split(text, '\n')) lines.emplace_back(part);
  return lines;
}

}  // namespace

StatusOr<Clip> fromText(const std::string& text) {
  auto lines = toLines(text);
  std::size_t i = 0;
  return parseOne(lines, i);
}

StatusOr<std::vector<Clip>> fromTextMulti(const std::string& text) {
  auto lines = toLines(text);
  std::vector<Clip> clips;
  std::size_t i = 0;
  while (i < lines.size()) {
    // Skip blank tails.
    bool remaining = false;
    for (std::size_t j = i; j < lines.size(); ++j) {
      if (!splitWhitespace(lines[j]).empty()) {
        remaining = true;
        break;
      }
    }
    if (!remaining) break;
    auto one = parseOne(lines, i);
    if (!one) return one.status();
    clips.push_back(std::move(one).value());
  }
  return clips;
}

Status saveClips(const std::string& path, const std::vector<Clip>& clips) {
  std::ofstream out(path);
  if (!out) return Status::error(ErrorCode::kIo, "cannot open for write: " + path);
  out << toTextMulti(clips);
  return out.good() ? Status::ok() : Status::error(ErrorCode::kIo, "write failed: " + path);
}

StatusOr<std::vector<Clip>> loadClips(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::error(ErrorCode::kIo, "cannot open: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return fromTextMulti(buf.str());
}

}  // namespace optr::clip
