// Routing clips: the switchbox instances OptRouter operates on.
//
// A clip is a 1um x 1um window cut from a placed-and-globally-routed design:
// a small multi-layer track grid, the nets that have pins inside or cross
// the window, pin geometry with access points, and blocked resources
// (power/ground rails, neighboring-cell pin shapes). Clips are produced by
// the layout substrate (layout/clip_extract) or synthesized directly for
// tests, and consumed by the routers (core/opt_router, route/maze_router).
#pragma once

#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"

namespace optr::clip {

/// A routable location, in clip track coordinates: x indexes vertical
/// tracks, y indexes horizontal tracks, z indexes routing layers (0 = M2).
struct TrackPoint {
  int x = 0;
  int y = 0;
  int z = 0;
  friend bool operator==(const TrackPoint&, const TrackPoint&) = default;
  friend auto operator<=>(const TrackPoint&, const TrackPoint&) = default;
};

/// A pin of a net inside the clip (or a boundary terminal where the net
/// leaves the window, fixed by the global route).
struct ClipPin {
  int net = -1;
  /// Locations through which the router may connect this pin. Every access
  /// point is equivalent; the router picks any one (paper: supersource /
  /// supersink construction).
  std::vector<TrackPoint> accessPoints;
  /// Original pin geometry in nanometers relative to the clip origin; used
  /// by the pin-cost metric. Boundary terminals carry a degenerate rect.
  Rect shapeNm;
  bool isBoundary = false;
  /// Virtual pins (e.g. escape regions in pin-access analysis) offer many
  /// alternative access points without reserving any of them: the routing
  /// graph does not mark their vertices as owned, so other nets may still
  /// route through unused candidates.
  bool isVirtual = false;
};

struct ClipNet {
  std::string name;
  std::vector<int> pins;  // indices into Clip::pins, pins[0] acts as source
};

struct Clip {
  std::string id;
  std::string techName;
  int tracksX = 7;   // vertical tracks
  int tracksY = 10;  // horizontal tracks
  int numLayers = 7; // routing layers, 0 = M2
  std::vector<ClipPin> pins;
  std::vector<ClipNet> nets;
  /// Grid vertices unusable by any net (rails, blockages, off-window pins).
  std::vector<TrackPoint> obstacles;

  bool inBounds(const TrackPoint& p) const {
    return p.x >= 0 && p.x < tracksX && p.y >= 0 && p.y < tracksY &&
           p.z >= 0 && p.z < numLayers;
  }

  /// Structural sanity: every pin references a valid net, every access point
  /// and obstacle is inside the grid, every net has >= 2 pins.
  Status validate() const;
};

/// Pin-cost metric of Taghavi et al. (ICCAD'10) as used by the paper to pick
/// "difficult-to-route" clips: PEC + PAC + PRC with theta = 500.
///   PEC: number of pins;
///   PAC = sum_i 2^(2 - area(p_i)/theta);
///   PRC = sum_{i<j} 2^(2 - spacing(p_i,p_j)/(3*theta)).
struct PinCostBreakdown {
  double pec = 0, pac = 0, prc = 0;
  double total() const { return pec + pac + prc; }
};

PinCostBreakdown pinCost(const Clip& clip, double theta = 500.0);

}  // namespace optr::clip
