#include "clip/routability.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace optr::clip {

RoutabilityEstimate estimateRoutability(const Clip& clip) {
  RoutabilityEstimate est;

  // Demand: per net, half-perimeter of the access-point bounding box (the
  // classic wirelength lower-bound proxy) plus 2 track-equivalents per pin
  // for via/landing overhead.
  for (const ClipNet& net : clip.nets) {
    int loX = clip.tracksX, hiX = 0, loY = clip.tracksY, hiY = 0;
    for (int p : net.pins) {
      for (const TrackPoint& ap : clip.pins[p].accessPoints) {
        loX = std::min(loX, ap.x);
        hiX = std::max(hiX, ap.x);
        loY = std::min(loY, ap.y);
        hiY = std::max(hiY, ap.y);
      }
    }
    est.demand += (hiX - loX) + (hiY - loY) +
                  2.0 * static_cast<double>(net.pins.size());
  }

  // Capacity: track segments across all layers, minus blocked vertices
  // (each blocked vertex disables roughly one segment on its layer).
  double segsPerLayer =
      static_cast<double>(clip.tracksX - 1) * clip.tracksY;  // horizontal
  double segsVertical =
      static_cast<double>(clip.tracksY - 1) * clip.tracksX;
  est.capacity = 0;
  for (int z = 0; z < clip.numLayers; ++z)
    est.capacity += (z % 2 == 0) ? segsPerLayer : segsVertical;
  est.capacity -= static_cast<double>(clip.obstacles.size());
  est.capacity = std::max(est.capacity, 1.0);
  est.congestion = est.demand / est.capacity;

  // Boundary pressure: boundary terminals per available edge slot.
  int boundaryTerms = 0;
  for (const ClipPin& p : clip.pins) boundaryTerms += p.isBoundary ? 1 : 0;
  double edgeSlots = 2.0 * (clip.tracksX + clip.tracksY) *
                     std::max(1, clip.numLayers - 1);
  est.boundaryPressure = boundaryTerms / edgeSlots;

  // Pin density on M2.
  double m2Vertices = static_cast<double>(clip.tracksX) * clip.tracksY;
  int m2Blocked = 0;
  for (const TrackPoint& o : clip.obstacles) m2Blocked += (o.z == 0) ? 1 : 0;
  int cellPins = 0;
  for (const ClipPin& p : clip.pins) cellPins += p.isBoundary ? 0 : 1;
  est.pinDensity = cellPins / std::max(1.0, m2Vertices - m2Blocked);

  est.score = 4.0 * est.congestion + 6.0 * est.boundaryPressure +
              10.0 * est.pinDensity;
  return est;
}

double spearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  const std::size_t n = a.size();
  if (n != b.size() || n < 2) return 0.0;
  auto ranks = [](const std::vector<double>& v) {
    std::vector<std::size_t> idx(v.size());
    std::iota(idx.begin(), idx.end(), 0u);
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::size_t i, std::size_t j) { return v[i] < v[j]; });
    std::vector<double> rank(v.size());
    // Average ranks for ties so the statistic stays unbiased.
    std::size_t i = 0;
    while (i < idx.size()) {
      std::size_t j = i;
      while (j + 1 < idx.size() && v[idx[j + 1]] == v[idx[i]]) ++j;
      double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
      for (std::size_t k = i; k <= j; ++k) rank[idx[k]] = avg;
      i = j + 1;
    }
    return rank;
  };
  std::vector<double> ra = ranks(a), rb = ranks(b);
  double meanA = 0, meanB = 0;
  for (std::size_t i = 0; i < n; ++i) {
    meanA += ra[i];
    meanB += rb[i];
  }
  meanA /= n;
  meanB /= n;
  double cov = 0, varA = 0, varB = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (ra[i] - meanA) * (rb[i] - meanB);
    varA += (ra[i] - meanA) * (ra[i] - meanA);
    varB += (rb[i] - meanB) * (rb[i] - meanB);
  }
  if (varA <= 0 || varB <= 0) return 0.0;
  return cov / std::sqrt(varA * varB);
}

}  // namespace optr::clip
