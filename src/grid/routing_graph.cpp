#include "grid/routing_graph.h"

namespace optr::grid {

RoutingGraph::RoutingGraph(const clip::Clip& clip,
                           const tech::Technology& techn,
                           const tech::RuleConfig& rule)
    : nx_(clip.tracksX), ny_(clip.tracksY), nz_(clip.numLayers),
      tech_(techn), rule_(rule) {
  OPTR_ASSERT(nz_ <= techn.numLayers(),
              "clip uses more layers than the technology provides");
  numVertices_ = numGridVertices();
  owner_.assign(numGridVertices(), kVertexFree);

  // Pin geometry is reserved for the owning net; obstacles block everyone.
  // Virtual pins (escape regions) reserve nothing.
  for (const clip::ClipPin& pin : clip.pins) {
    if (pin.isVirtual) continue;
    for (const clip::TrackPoint& ap : pin.accessPoints) {
      int v = vertexId(ap);
      if (owner_[v] == kVertexFree) {
        owner_[v] = pin.net;
      } else if (owner_[v] != pin.net) {
        // Two different nets claim the same vertex (abutting pins); nobody
        // may route *through* it, though both pins keep it as an access
        // point. Routers treat access points specially.
        owner_[v] = kVertexBlocked;
      }
    }
  }
  for (const clip::TrackPoint& o : clip.obstacles) {
    owner_[vertexId(o)] = kVertexBlocked;
  }

  buildPlanarArcs();
  buildVias();

  // Adjacency (built once arcs are final).
  outArcs_.assign(numVertices_, {});
  inArcs_.assign(numVertices_, {});
  for (int a = 0; a < numArcs(); ++a) {
    outArcs_[arcs_[a].from].push_back(a);
    inArcs_[arcs_[a].to].push_back(a);
  }

  // Reverse-arc index: planar and unit-via arcs come in (from,to)/(to,from)
  // pairs created back to back.
  reverse_.assign(numArcs(), -1);
  for (int a = 0; a + 1 < numArcs(); ++a) {
    if (arcs_[a].from == arcs_[a + 1].to && arcs_[a].to == arcs_[a + 1].from &&
        arcs_[a].kind == arcs_[a + 1].kind &&
        arcs_[a].kind != ArcKind::kViaEnter &&
        arcs_[a].kind != ArcKind::kViaExit) {
      reverse_[a] = a + 1;
      reverse_[a + 1] = a;
      ++a;
    }
  }
}

int RoutingGraph::addArc(int from, int to, double cost, ArcKind kind,
                         int viaInst, int layer) {
  Arc arc;
  arc.from = from;
  arc.to = to;
  arc.cost = cost;
  arc.kind = kind;
  arc.viaInstance = viaInst;
  arc.layer = layer;
  arcs_.push_back(arc);
  return numArcs() - 1;
}

void RoutingGraph::buildPlanarArcs() {
  for (int z = 0; z < nz_; ++z) {
    const tech::LayerInfo& li = tech_.layers[z];
    const bool allowHorizontal = li.horizontal || !rule_.unidirectional;
    const bool allowVertical = !li.horizontal || !rule_.unidirectional;
    for (int y = 0; y < ny_; ++y) {
      for (int x = 0; x < nx_; ++x) {
        if (allowHorizontal && x + 1 < nx_) {
          int a = vertexId(x, y, z), b = vertexId(x + 1, y, z);
          addArc(a, b, 1.0, ArcKind::kPlanar, -1, z);
          addArc(b, a, 1.0, ArcKind::kPlanar, -1, z);
        }
        if (allowVertical && y + 1 < ny_) {
          int a = vertexId(x, y, z), b = vertexId(x, y + 1, z);
          addArc(a, b, 1.0, ArcKind::kPlanar, -1, z);
          addArc(b, a, 1.0, ArcKind::kPlanar, -1, z);
        }
      }
    }
  }
}

void RoutingGraph::buildVias() {
  const auto& shapes = rule_.viaShapes;
  OPTR_ASSERT(!shapes.empty(), "rule config must allow at least one via shape");
  for (int z = 0; z + 1 < nz_; ++z) {
    for (std::size_t s = 0; s < shapes.size(); ++s) {
      const tech::ViaShape& shape = shapes[s];
      const double viaCost = rule_.viaCostWeight * shape.costFactor;
      for (int y = 0; y + shape.spanY <= ny_; ++y) {
        for (int x = 0; x + shape.spanX <= nx_; ++x) {
          ViaInstance inst;
          inst.shape = static_cast<int>(s);
          inst.x = x;
          inst.y = y;
          inst.z = z;
          for (int dy = 0; dy < shape.spanY; ++dy) {
            for (int dx = 0; dx < shape.spanX; ++dx) {
              inst.coveredLower.push_back(vertexId(x + dx, y + dy, z));
              inst.coveredUpper.push_back(vertexId(x + dx, y + dy, z + 1));
            }
          }
          int id = static_cast<int>(vias_.size());
          if (shape.isUnit()) {
            int lo = inst.coveredLower[0], hi = inst.coveredUpper[0];
            inst.arcs.push_back(
                addArc(lo, hi, viaCost, ArcKind::kVia, id, z));
            inst.arcs.push_back(
                addArc(hi, lo, viaCost, ArcKind::kVia, id, z));
          } else {
            // Representative vertices; the full via cost sits on the enter
            // arc so one traversal pays exactly once.
            inst.upVertex = numVertices_++;
            inst.dnVertex = numVertices_++;
            for (int lo : inst.coveredLower) {
              inst.arcs.push_back(addArc(lo, inst.upVertex, viaCost,
                                         ArcKind::kViaEnter, id, z));
              inst.arcs.push_back(addArc(inst.dnVertex, lo, 0.0,
                                         ArcKind::kViaExit, id, z));
            }
            for (int hi : inst.coveredUpper) {
              inst.arcs.push_back(addArc(inst.upVertex, hi, 0.0,
                                         ArcKind::kViaExit, id, z));
              inst.arcs.push_back(addArc(hi, inst.dnVertex, viaCost,
                                         ArcKind::kViaEnter, id, z));
            }
          }
          vias_.push_back(std::move(inst));
        }
      }
    }
  }
}

}  // namespace optr::grid
