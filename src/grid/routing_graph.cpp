#include "grid/routing_graph.h"

namespace optr::grid {

namespace {

/// Union shape table over a rule universe: one entry per distinct footprint
/// (spanX, spanY). The cost factor recorded here is only the build-time
/// default; applyRule() re-prices every via arc from the active rule.
std::vector<tech::ViaShape> unionShapes(
    const std::vector<tech::RuleConfig>& universe) {
  std::vector<tech::ViaShape> shapes;
  for (const tech::RuleConfig& rc : universe) {
    for (const tech::ViaShape& s : rc.viaShapes) {
      bool known = false;
      for (const tech::ViaShape& have : shapes) {
        if (have.spanX == s.spanX && have.spanY == s.spanY) {
          known = true;
          break;
        }
      }
      if (!known) shapes.push_back(s);
    }
  }
  return shapes;
}

}  // namespace

RoutingGraph::RoutingGraph(const clip::Clip& clip,
                           const tech::Technology& techn,
                           const tech::RuleConfig& rule)
    : nx_(clip.tracksX), ny_(clip.tracksY), nz_(clip.numLayers),
      tech_(techn), rule_(rule), shapes_(rule.viaShapes) {
  build(clip, !rule.unidirectional);
  // Single-rule graphs are fully enabled; costs were baked by the build.
  arcEnabled_.assign(numArcs(), 1);
  viaEnabled_.assign(vias_.size(), 1);
}

RoutingGraph::RoutingGraph(const clip::Clip& clip,
                           const tech::Technology& techn,
                           const std::vector<tech::RuleConfig>& universe)
    : nx_(clip.tracksX), ny_(clip.tracksY), nz_(clip.numLayers),
      tech_(techn), shapes_(unionShapes(universe)) {
  OPTR_ASSERT(!universe.empty(), "session graph needs a rule universe");
  rule_ = universe.front();
  bool bidirectional = false;
  for (const tech::RuleConfig& rc : universe) {
    if (!rc.unidirectional) bidirectional = true;
  }
  build(clip, bidirectional);
  arcEnabled_.assign(numArcs(), 1);
  viaEnabled_.assign(vias_.size(), 1);
  applyRule(universe.front());
}

void RoutingGraph::build(const clip::Clip& clip, bool bidirectional) {
  OPTR_ASSERT(nz_ <= tech_.numLayers(),
              "clip uses more layers than the technology provides");
  builtBidirectional_ = bidirectional;
  numVertices_ = numGridVertices();
  owner_.assign(numGridVertices(), kVertexFree);

  // Pin geometry is reserved for the owning net; obstacles block everyone.
  // Virtual pins (escape regions) reserve nothing.
  for (const clip::ClipPin& pin : clip.pins) {
    if (pin.isVirtual) continue;
    for (const clip::TrackPoint& ap : pin.accessPoints) {
      int v = vertexId(ap);
      if (owner_[v] == kVertexFree) {
        owner_[v] = pin.net;
      } else if (owner_[v] != pin.net) {
        // Two different nets claim the same vertex (abutting pins); nobody
        // may route *through* it, though both pins keep it as an access
        // point. Routers treat access points specially.
        owner_[v] = kVertexBlocked;
      }
    }
  }
  for (const clip::TrackPoint& o : clip.obstacles) {
    owner_[vertexId(o)] = kVertexBlocked;
  }

  buildPlanarArcs(bidirectional);
  buildVias();

  // Adjacency (built once arcs are final).
  outArcs_.assign(numVertices_, {});
  inArcs_.assign(numVertices_, {});
  for (int a = 0; a < numArcs(); ++a) {
    outArcs_[arcs_[a].from].push_back(a);
    inArcs_[arcs_[a].to].push_back(a);
  }

  // Reverse-arc index: planar and unit-via arcs come in (from,to)/(to,from)
  // pairs created back to back.
  reverse_.assign(numArcs(), -1);
  for (int a = 0; a + 1 < numArcs(); ++a) {
    if (arcs_[a].from == arcs_[a + 1].to && arcs_[a].to == arcs_[a + 1].from &&
        arcs_[a].kind == arcs_[a + 1].kind &&
        arcs_[a].kind != ArcKind::kViaEnter &&
        arcs_[a].kind != ArcKind::kViaExit) {
      reverse_[a] = a + 1;
      reverse_[a + 1] = a;
      ++a;
    }
  }
}

void RoutingGraph::applyRule(const tech::RuleConfig& rule) {
  // Every shape of the incoming rule must have been provisioned at build
  // time, and a bidirectional rule needs the off-preferred arcs to exist:
  // an under-provisioned graph would silently shrink the rule's model.
  std::vector<int> shapeMap(shapes_.size(), -1);  // graph shape -> rule shape
  for (std::size_t rs = 0; rs < rule.viaShapes.size(); ++rs) {
    bool found = false;
    for (std::size_t gs = 0; gs < shapes_.size(); ++gs) {
      if (shapes_[gs].spanX == rule.viaShapes[rs].spanX &&
          shapes_[gs].spanY == rule.viaShapes[rs].spanY) {
        shapeMap[gs] = static_cast<int>(rs);
        found = true;
        break;
      }
    }
    OPTR_ASSERT(found, "rule via shape missing from the session universe");
    (void)found;
  }
  OPTR_ASSERT(rule.unidirectional || builtBidirectional_,
              "bidirectional rule applied to a unidirectional-built graph");
  rule_ = rule;

  // Planar arcs: off-preferred-direction arcs are masked on unidirectional
  // layers; the cost (1 per track step) never changes.
  for (int a = 0; a < numArcs(); ++a) {
    const Arc& arc = arcs_[a];
    if (arc.kind != ArcKind::kPlanar) continue;
    bool horizontalMove =
        coords(arc.from).y == coords(arc.to).y;
    const bool preferred = tech_.layers[arc.layer].horizontal == horizontalMove;
    arcEnabled_[a] = (preferred || !rule.unidirectional) ? 1 : 0;
  }

  // Via instances: enabled when the active rule offers the shape; enabled
  // instances get the rule's via pricing on their paying arcs.
  for (std::size_t i = 0; i < vias_.size(); ++i) {
    const ViaInstance& inst = vias_[i];
    int mapped = shapeMap[inst.shape];
    const bool enabled = mapped >= 0;
    viaEnabled_[i] = enabled ? 1 : 0;
    const double viaCost =
        enabled ? rule.viaCostWeight * rule.viaShapes[mapped].costFactor : 0.0;
    for (int a : inst.arcs) {
      arcEnabled_[a] = enabled ? 1 : 0;
      Arc& arc = arcs_[a];
      if (arc.kind == ArcKind::kVia || arc.kind == ArcKind::kViaEnter) {
        arc.cost = viaCost;
      }
    }
  }
}

int RoutingGraph::addArc(int from, int to, double cost, ArcKind kind,
                         int viaInst, int layer) {
  Arc arc;
  arc.from = from;
  arc.to = to;
  arc.cost = cost;
  arc.kind = kind;
  arc.viaInstance = viaInst;
  arc.layer = layer;
  arcs_.push_back(arc);
  return numArcs() - 1;
}

void RoutingGraph::buildPlanarArcs(bool bidirectional) {
  for (int z = 0; z < nz_; ++z) {
    const tech::LayerInfo& li = tech_.layers[z];
    const bool allowHorizontal = li.horizontal || bidirectional;
    const bool allowVertical = !li.horizontal || bidirectional;
    for (int y = 0; y < ny_; ++y) {
      for (int x = 0; x < nx_; ++x) {
        if (allowHorizontal && x + 1 < nx_) {
          int a = vertexId(x, y, z), b = vertexId(x + 1, y, z);
          addArc(a, b, 1.0, ArcKind::kPlanar, -1, z);
          addArc(b, a, 1.0, ArcKind::kPlanar, -1, z);
        }
        if (allowVertical && y + 1 < ny_) {
          int a = vertexId(x, y, z), b = vertexId(x, y + 1, z);
          addArc(a, b, 1.0, ArcKind::kPlanar, -1, z);
          addArc(b, a, 1.0, ArcKind::kPlanar, -1, z);
        }
      }
    }
  }
}

void RoutingGraph::buildVias() {
  OPTR_ASSERT(!shapes_.empty(), "rule config must allow at least one via shape");
  for (int z = 0; z + 1 < nz_; ++z) {
    for (std::size_t s = 0; s < shapes_.size(); ++s) {
      const tech::ViaShape& shape = shapes_[s];
      const double viaCost = rule_.viaCostWeight * shape.costFactor;
      for (int y = 0; y + shape.spanY <= ny_; ++y) {
        for (int x = 0; x + shape.spanX <= nx_; ++x) {
          ViaInstance inst;
          inst.shape = static_cast<int>(s);
          inst.x = x;
          inst.y = y;
          inst.z = z;
          for (int dy = 0; dy < shape.spanY; ++dy) {
            for (int dx = 0; dx < shape.spanX; ++dx) {
              inst.coveredLower.push_back(vertexId(x + dx, y + dy, z));
              inst.coveredUpper.push_back(vertexId(x + dx, y + dy, z + 1));
            }
          }
          int id = static_cast<int>(vias_.size());
          if (shape.isUnit()) {
            int lo = inst.coveredLower[0], hi = inst.coveredUpper[0];
            inst.arcs.push_back(
                addArc(lo, hi, viaCost, ArcKind::kVia, id, z));
            inst.arcs.push_back(
                addArc(hi, lo, viaCost, ArcKind::kVia, id, z));
          } else {
            // Representative vertices; the full via cost sits on the enter
            // arc so one traversal pays exactly once.
            inst.upVertex = numVertices_++;
            inst.dnVertex = numVertices_++;
            for (int lo : inst.coveredLower) {
              inst.arcs.push_back(addArc(lo, inst.upVertex, viaCost,
                                         ArcKind::kViaEnter, id, z));
              inst.arcs.push_back(addArc(inst.dnVertex, lo, 0.0,
                                         ArcKind::kViaExit, id, z));
            }
            for (int hi : inst.coveredUpper) {
              inst.arcs.push_back(addArc(inst.upVertex, hi, 0.0,
                                         ArcKind::kViaExit, id, z));
              inst.arcs.push_back(addArc(hi, inst.dnVertex, viaCost,
                                         ArcKind::kViaEnter, id, z));
            }
          }
          vias_.push_back(std::move(inst));
        }
      }
    }
  }
}

}  // namespace optr::grid
