// The 3D routing graph G(V, A) of the paper's Section 3.
//
// Vertices are track intersections (x, y, z) plus representative vertices
// for non-unit via shapes (Figure 2). Directed arcs are:
//   * planar arcs along a layer's track (off-preferred-direction arcs are
//     removed on unidirectional layers),
//   * unit-via arcs between vertically adjacent grid vertices,
//   * via-shape arcs routing flow through a representative vertex: an upward
//     traversal enters `upVertex` from any covered lower-layer vertex and
//     exits to any covered upper-layer vertex (and symmetrically down
//     through `dnVertex`). Splitting up/down prevents a net from abusing a
//     via footprint as a free planar bridge.
//
// Costs implement the paper's objective (wirelength + 4 x #vias): planar
// arcs cost 1 per track step, via traversals cost viaCostWeight scaled by
// the shape's costFactor (larger shapes are discounted so the optimizer
// prefers the more manufacturable via).
//
// The graph is shared by OptRouter's ILP formulation, the DRC checker, and
// the heuristic baseline router. Net-specific elements (supersources,
// supersinks) are NOT part of this graph; each router layers them on top.
#pragma once

#include <cstdint>
#include <vector>

#include "clip/clip.h"
#include "tech/rules.h"
#include "tech/technology.h"

namespace optr::grid {

enum class ArcKind : std::uint8_t {
  kPlanar,     // along-track step
  kVia,        // unit via between grid vertices
  kViaEnter,   // grid vertex -> via-shape representative vertex
  kViaExit,    // via-shape representative vertex -> grid vertex
};

struct Arc {
  int from = -1;
  int to = -1;
  double cost = 0.0;
  ArcKind kind = ArcKind::kPlanar;
  int viaInstance = -1;  // instance id for kVia/kViaEnter/kViaExit, else -1
  int layer = -1;        // layer of a planar arc; lower layer of a via
};

/// One candidate via placement (including unit vias): the footprint spans
/// [x, x+spanX) x [y, y+spanY) on layers z (lower) and z+1 (upper).
struct ViaInstance {
  int shape = 0;  // index into RoutingGraph::viaShapes()
  int x = 0, y = 0, z = 0;
  std::vector<int> coveredLower;  // grid vertex ids on layer z
  std::vector<int> coveredUpper;  // grid vertex ids on layer z+1
  int upVertex = -1;  // representative vertices (-1 for unit vias)
  int dnVertex = -1;
  std::vector<int> arcs;  // all arc ids belonging to this instance
};

/// Vertex ownership: who may route through a grid vertex.
constexpr int kVertexFree = -1;     // any net
constexpr int kVertexBlocked = -2;  // no net (obstacle / rail)
// values >= 0: reserved for that net id (pin geometry)

class RoutingGraph {
 public:
  RoutingGraph(const clip::Clip& clip, const tech::Technology& techn,
               const tech::RuleConfig& rule);

  /// Rule-independent session build (core::ClipSession): constructs the
  /// union graph of every configuration in `universe` -- planar arcs in both
  /// directions when any rule allows them, via instances for the union of
  /// all via shapes -- then applies `universe.front()` as the active
  /// overlay. Per-rule differences (unidirectional pruning, via-shape
  /// availability, via costs) become cheap applyRule() mask updates instead
  /// of graph rebuilds; arc and vertex ids are stable across the sweep.
  RoutingGraph(const clip::Clip& clip, const tech::Technology& techn,
               const std::vector<tech::RuleConfig>& universe);

  /// Re-targets the overlay at `rule`: recomputes the arc/via enable masks
  /// and via arc costs in place. O(arcs); never touches graph structure.
  /// Every via shape of `rule` must exist in the build universe, and a
  /// bidirectional rule requires a graph built with a bidirectional
  /// universe (asserted).
  void applyRule(const tech::RuleConfig& rule);

  /// True when arc `a` is usable under the active rule overlay. Graphs
  /// built with the single-rule constructor enable every arc.
  bool arcEnabled(int a) const { return arcEnabled_[a] != 0; }
  const std::vector<char>& arcMask() const { return arcEnabled_; }
  /// True when via instance `i`'s shape is available under the active rule.
  bool viaInstanceEnabled(int i) const { return viaEnabled_[i] != 0; }

  /// Shape table of this graph (the union over the build universe; equal to
  /// rule().viaShapes for single-rule graphs). ViaInstance::shape indexes
  /// this table, NOT the active rule's viaShapes.
  const tech::ViaShape& viaShape(int s) const { return shapes_[s]; }
  const std::vector<tech::ViaShape>& viaShapes() const { return shapes_; }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  int numGridVertices() const { return nx_ * ny_ * nz_; }
  int numVertices() const { return numVertices_; }

  int vertexId(int x, int y, int z) const {
    return (z * ny_ + y) * nx_ + x;
  }
  int vertexId(const clip::TrackPoint& p) const {
    return vertexId(p.x, p.y, p.z);
  }
  bool isGridVertex(int v) const { return v < numGridVertices(); }
  clip::TrackPoint coords(int v) const {
    clip::TrackPoint p;
    p.x = v % nx_;
    p.y = (v / nx_) % ny_;
    p.z = v / (nx_ * ny_);
    return p;
  }

  const std::vector<Arc>& arcs() const { return arcs_; }
  const Arc& arc(int a) const { return arcs_[a]; }
  int numArcs() const { return static_cast<int>(arcs_.size()); }
  const std::vector<int>& outArcs(int v) const { return outArcs_[v]; }
  const std::vector<int>& inArcs(int v) const { return inArcs_[v]; }
  /// Reverse arc id for planar/unit-via arcs (to <-> from), or -1 when the
  /// reverse direction does not exist (unidirectional pruning, shape arcs).
  int reverseArc(int a) const { return reverse_[a]; }

  const std::vector<ViaInstance>& viaInstances() const { return vias_; }
  const ViaInstance& viaInstance(int i) const { return vias_[i]; }

  /// Ownership of a grid vertex (kVertexFree / kVertexBlocked / net id).
  int vertexOwner(int v) const { return owner_[v]; }
  /// True when net `net` may route through vertex v. Representative via
  /// vertices defer to their instance footprint (checked separately).
  bool usableBy(int v, int net) const {
    if (!isGridVertex(v)) return true;
    int o = owner_[v];
    return o == kVertexFree || o == net;
  }

  const tech::Technology& technology() const { return tech_; }
  const tech::RuleConfig& rule() const { return rule_; }
  const tech::LayerInfo& layerInfo(int z) const { return tech_.layers[z]; }

  /// Metal number of a routing layer (z = 0 -> M2).
  int metalOf(int z) const { return tech_.layers[z].metal; }

 private:
  void build(const clip::Clip& clip, bool bidirectional);
  void buildPlanarArcs(bool bidirectional);
  void buildVias();
  int addArc(int from, int to, double cost, ArcKind kind, int viaInst,
             int layer);

  int nx_, ny_, nz_;
  int numVertices_ = 0;
  // Stored by value: callers may pass temporaries (e.g. a preset factory
  // call), and the graph outlives most call sites.
  tech::Technology tech_;
  tech::RuleConfig rule_;  // the ACTIVE rule (last applyRule target)

  // Structure shared by every rule overlay.
  std::vector<tech::ViaShape> shapes_;  // union shape table
  bool builtBidirectional_ = false;     // off-preferred arcs exist
  std::vector<Arc> arcs_;
  std::vector<int> reverse_;
  std::vector<std::vector<int>> outArcs_, inArcs_;
  std::vector<ViaInstance> vias_;
  std::vector<int> owner_;

  // Active rule overlay (all-enabled for single-rule graphs).
  std::vector<char> arcEnabled_;
  std::vector<char> viaEnabled_;
};

}  // namespace optr::grid
