#include "service/service_client.h"

#if !defined(_WIN32)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "service/service_server.h"  // parseListenAddress

namespace optr::service {

ServiceClient::~ServiceClient() { close(); }

void ServiceClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  reader_.reset();
}

Status ServiceClient::connect(const std::string& address) {
  close();
  auto parsed = parseListenAddress(address);
  if (!parsed) {
    return Status::error(ErrorCode::kInvalidInput,
                         "bad service address: " + address);
  }
  if (parsed->isUnix) {
    fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
      return Status::error(ErrorCode::kIo,
                           std::string("socket: ") + std::strerror(errno));
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    if (parsed->path.size() >= sizeof sun.sun_path)
      return Status::error(ErrorCode::kInvalidInput,
                           "unix socket path too long: " + parsed->path);
    std::strncpy(sun.sun_path, parsed->path.c_str(), sizeof sun.sun_path - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&sun), sizeof sun) != 0) {
      Status s = Status::error(ErrorCode::kUnavailable,
                               "connect " + parsed->path + ": " +
                                   std::strerror(errno));
      close();
      return s;
    }
  } else {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
      return Status::error(ErrorCode::kIo,
                           std::string("socket: ") + std::strerror(errno));
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(static_cast<uint16_t>(parsed->port));
    if (inet_pton(AF_INET, parsed->host.c_str(), &sin.sin_addr) != 1) {
      close();
      return Status::error(ErrorCode::kInvalidInput,
                           "bad service host: " + parsed->host);
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&sin), sizeof sin) != 0) {
      Status s = Status::error(ErrorCode::kUnavailable,
                               "connect " + address + ": " +
                                   std::strerror(errno));
      close();
      return s;
    }
  }
  reader_ = std::make_unique<common::LineReader>(fd_);

  ServiceFrame hello;
  if (!next(hello) || hello.type != FrameType::kHello) {
    close();
    return Status::error(ErrorCode::kUnavailable,
                         "no hello from service at " + address);
  }
  if (hello.protoVersion != kServiceProtocolVersion) {
    close();
    return Status::error(
        ErrorCode::kUnavailable,
        "service protocol mismatch: daemon speaks v" +
            std::to_string(hello.protoVersion) + ", this build v" +
            std::to_string(kServiceProtocolVersion));
  }
  return Status::ok();
}

Status ServiceClient::send(const RouteRequest& request) {
  if (fd_ < 0) return Status::error(ErrorCode::kUnavailable, "not connected");
  if (!common::writeLine(fd_, encodeRoute(request)))
    return Status::error(ErrorCode::kIo, "service connection lost");
  return Status::ok();
}

Status ServiceClient::sendShutdown() {
  if (fd_ < 0) return Status::error(ErrorCode::kUnavailable, "not connected");
  if (!common::writeLine(fd_, encodeShutdown()))
    return Status::error(ErrorCode::kIo, "service connection lost");
  return Status::ok();
}

bool ServiceClient::next(ServiceFrame& frame) {
  if (fd_ < 0 || !reader_) return false;
  std::string line;
  for (;;) {
    if (!reader_->next(line)) return false;
    frame = decodeFrame(line);
    if (frame.type != FrameType::kGarbled) return true;
    // Garbled lines are skipped, matching the server's tolerance.
  }
}

StatusOr<RouteReply> ServiceClient::call(const RouteRequest& request) {
  Status sent = send(request);
  if (!sent.isOk()) return sent;
  ServiceFrame frame;
  while (next(frame)) {
    if (frame.type == FrameType::kResult && frame.reply.id == request.id)
      return frame.reply;
    if (frame.type == FrameType::kReject && frame.id == request.id)
      return Status::error(frame.errorCode, frame.message.empty()
                                                ? "request rejected"
                                                : frame.message);
  }
  return Status::error(ErrorCode::kUnavailable,
                       "connection lost awaiting result for " + request.id);
}

StatusOr<ServiceStats> ServiceClient::ping() {
  if (fd_ < 0) return Status::error(ErrorCode::kUnavailable, "not connected");
  static std::atomic<std::uint64_t> pingSeq{0};
  const std::string id =
      "ping" + std::to_string(pingSeq.fetch_add(1, std::memory_order_relaxed));
  if (!common::writeLine(fd_, encodePing(id)))
    return Status::error(ErrorCode::kIo, "service connection lost");
  ServiceFrame frame;
  while (next(frame)) {
    if (frame.type == FrameType::kStats && frame.id == id) return frame.stats;
  }
  return Status::error(ErrorCode::kUnavailable,
                       "connection lost awaiting stats for " + id);
}

}  // namespace optr::service

#endif  // !_WIN32
