#include "service/service_protocol.h"

#include <cstdio>
#include <sstream>

#include "common/jsonl.h"

namespace optr::service {

namespace {

using jsonl::escape;
using jsonl::getNumber;
using jsonl::getString;

/// Shortest round-trippable decimal form: bit-identical doubles always print
/// to identical bytes, which is what the cache-equivalence gate compares.
std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

core::RouteStatus routeStatusFromString(const std::string& s, bool& ok) {
  for (auto st : {core::RouteStatus::kOptimal, core::RouteStatus::kFeasible,
                  core::RouteStatus::kInfeasible, core::RouteStatus::kUnknown,
                  core::RouteStatus::kError}) {
    if (s == core::toString(st)) {
      ok = true;
      return st;
    }
  }
  ok = false;
  return core::RouteStatus::kError;
}

}  // namespace

const char* toString(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kRoute: return "route";
    case FrameType::kStatus: return "status";
    case FrameType::kResult: return "result";
    case FrameType::kReject: return "reject";
    case FrameType::kShutdown: return "shutdown";
    case FrameType::kPing: return "ping";
    case FrameType::kStats: return "stats";
    case FrameType::kGarbled: return "garbled";
    case FrameType::kNumTypes: break;
  }
  return "?";
}

std::string encodeHello(const std::string& serverId) {
  std::ostringstream os;
  os << "{\"t\":\"hello\",\"proto\":" << kServiceProtocolVersion
     << ",\"server\":\"" << escape(serverId) << "\"}";
  return os.str();
}

std::string encodeRoute(const RouteRequest& request) {
  std::ostringstream os;
  os << "{\"t\":\"route\",\"id\":\"" << escape(request.id) << "\",\"clip\":\""
     << escape(request.clipText) << "\",\"rule\":\""
     << escape(request.ruleName) << "\"";
  if (request.timeLimitSec > 0)
    os << ",\"timeLimitSec\":" << num(request.timeLimitSec);
  if (!request.traceId.empty() && request.parentSpan != 0) {
    os << ",\"traceId\":\"" << escape(request.traceId)
       << "\",\"parentSpan\":" << request.parentSpan;
  }
  os << "}";
  return os.str();
}

std::string encodeStatus(const std::string& id, const std::string& state,
                         int queueDepth) {
  std::ostringstream os;
  os << "{\"t\":\"status\",\"id\":\"" << escape(id) << "\",\"state\":\""
     << escape(state) << "\",\"queueDepth\":" << queueDepth << "}";
  return os.str();
}

std::string encodeResult(const RouteReply& reply) {
  std::ostringstream os;
  os << "{\"t\":\"result\",\"id\":\"" << escape(reply.id) << "\",\"status\":\""
     << core::toString(reply.status) << "\",\"provenance\":\""
     << core::toString(reply.provenance) << "\",\"error\":\""
     << toString(reply.errorCode) << "\",\"message\":\""
     << escape(reply.errorMessage) << "\",\"cost\":" << num(reply.cost)
     << ",\"bestBound\":" << num(reply.bestBound)
     << ",\"wirelength\":" << reply.wirelength << ",\"vias\":" << reply.vias
     << ",\"seconds\":" << num(reply.seconds) << ",\"nodes\":" << reply.nodes
     << ",\"lpIterations\":" << reply.lpIterations
     << ",\"cached\":" << (reply.cached ? 1 : 0) << ",\"cacheKey\":\""
     << escape(reply.cacheKey) << "\",\"solution\":\""
     << escape(reply.solutionText) << "\"}";
  return os.str();
}

std::string encodeReject(const std::string& id, ErrorCode code,
                         const std::string& message) {
  std::ostringstream os;
  os << "{\"t\":\"reject\",\"id\":\"" << escape(id) << "\",\"error\":\""
     << toString(code) << "\",\"message\":\"" << escape(message) << "\"}";
  return os.str();
}

std::string encodeShutdown() { return "{\"t\":\"shutdown\"}"; }

std::string encodePing(const std::string& id) {
  return "{\"t\":\"ping\",\"id\":\"" + escape(id) + "\"}";
}

namespace {

void encodeQuad(std::ostringstream& os, const char* key,
                const StatsQuad& q) {
  os << ",\"" << key << "Count\":" << q.count << ",\"" << key
     << "P50Ms\":" << num(q.p50Ms) << ",\"" << key
     << "P95Ms\":" << num(q.p95Ms) << ",\"" << key
     << "P99Ms\":" << num(q.p99Ms);
}

void decodeQuad(const std::string& line, const char* key, StatsQuad& q) {
  const std::string k = key;
  double v = 0;
  if (getNumber(line, (k + "Count").c_str(), v))
    q.count = static_cast<std::int64_t>(v);
  if (getNumber(line, (k + "P50Ms").c_str(), v)) q.p50Ms = v;
  if (getNumber(line, (k + "P95Ms").c_str(), v)) q.p95Ms = v;
  if (getNumber(line, (k + "P99Ms").c_str(), v)) q.p99Ms = v;
}

}  // namespace

std::string encodeStats(const std::string& id, const ServiceStats& stats) {
  std::ostringstream os;
  os << "{\"t\":\"stats\",\"id\":\"" << escape(id)
     << "\",\"uptimeSec\":" << num(stats.uptimeSec)
     << ",\"pending\":" << stats.pending
     << ",\"accepted\":" << stats.accepted
     << ",\"completed\":" << stats.completed
     << ",\"cacheHits\":" << stats.cacheHits
     << ",\"rejectedSaturated\":" << stats.rejectedSaturated;
  encodeQuad(os, "queueWait", stats.queueWait);
  encodeQuad(os, "lease", stats.lease);
  encodeQuad(os, "solveCold", stats.solveCold);
  encodeQuad(os, "solveHit", stats.solveHit);
  encodeQuad(os, "replyWrite", stats.replyWrite);
  os << "}";
  return os.str();
}

ServiceFrame decodeFrame(const std::string& line) {
  ServiceFrame frame;
  std::string t;
  if (!getString(line, "t", t)) return frame;
  double v = 0;

  if (t == "hello") {
    if (!getNumber(line, "proto", v)) return frame;
    frame.protoVersion = static_cast<int>(v);
    getString(line, "server", frame.serverId);
    frame.type = FrameType::kHello;
    return frame;
  }

  if (t == "route") {
    if (!getString(line, "id", frame.request.id)) return frame;
    if (!getString(line, "clip", frame.request.clipText)) return frame;
    if (!getString(line, "rule", frame.request.ruleName)) return frame;
    if (getNumber(line, "timeLimitSec", v)) frame.request.timeLimitSec = v;
    getString(line, "traceId", frame.request.traceId);
    if (getNumber(line, "parentSpan", v))
      frame.request.parentSpan = static_cast<std::uint64_t>(v);
    frame.type = FrameType::kRoute;
    return frame;
  }

  if (t == "ping") {
    if (!getString(line, "id", frame.id)) return frame;
    frame.type = FrameType::kPing;
    return frame;
  }

  if (t == "stats") {
    if (!getString(line, "id", frame.id)) return frame;
    ServiceStats& st = frame.stats;
    if (getNumber(line, "uptimeSec", v)) st.uptimeSec = v;
    if (getNumber(line, "pending", v))
      st.pending = static_cast<std::int64_t>(v);
    if (getNumber(line, "accepted", v))
      st.accepted = static_cast<std::int64_t>(v);
    if (getNumber(line, "completed", v))
      st.completed = static_cast<std::int64_t>(v);
    if (getNumber(line, "cacheHits", v))
      st.cacheHits = static_cast<std::int64_t>(v);
    if (getNumber(line, "rejectedSaturated", v))
      st.rejectedSaturated = static_cast<std::int64_t>(v);
    decodeQuad(line, "queueWait", st.queueWait);
    decodeQuad(line, "lease", st.lease);
    decodeQuad(line, "solveCold", st.solveCold);
    decodeQuad(line, "solveHit", st.solveHit);
    decodeQuad(line, "replyWrite", st.replyWrite);
    frame.type = FrameType::kStats;
    return frame;
  }

  if (t == "status") {
    if (!getString(line, "id", frame.id)) return frame;
    if (!getString(line, "state", frame.state)) return frame;
    if (getNumber(line, "queueDepth", v))
      frame.queueDepth = static_cast<int>(v);
    frame.type = FrameType::kStatus;
    return frame;
  }

  if (t == "result") {
    RouteReply& r = frame.reply;
    std::string statusStr, provStr, errStr;
    if (!getString(line, "id", r.id)) return frame;
    if (!getString(line, "status", statusStr)) return frame;
    bool ok = false;
    r.status = routeStatusFromString(statusStr, ok);
    if (!ok) return frame;
    if (getString(line, "provenance", provStr)) {
      auto prov = core::provenanceFromString(provStr);
      if (!prov) return frame;
      r.provenance = *prov;
    }
    if (getString(line, "error", errStr)) r.errorCode = errorCodeFromString(errStr);
    getString(line, "message", r.errorMessage);
    if (getNumber(line, "cost", v)) r.cost = v;
    if (getNumber(line, "bestBound", v)) r.bestBound = v;
    if (getNumber(line, "wirelength", v)) r.wirelength = static_cast<int>(v);
    if (getNumber(line, "vias", v)) r.vias = static_cast<int>(v);
    if (getNumber(line, "seconds", v)) r.seconds = v;
    if (getNumber(line, "nodes", v)) r.nodes = static_cast<std::int64_t>(v);
    if (getNumber(line, "lpIterations", v))
      r.lpIterations = static_cast<std::int64_t>(v);
    if (getNumber(line, "cached", v)) r.cached = v != 0;
    // The solution field must decode completely or the frame is garbled: a
    // truncated line must never read as "empty routing".
    if (!getString(line, "cacheKey", r.cacheKey)) return frame;
    if (!getString(line, "solution", r.solutionText)) return frame;
    frame.id = r.id;
    frame.type = FrameType::kResult;
    return frame;
  }

  if (t == "reject") {
    if (!getString(line, "id", frame.id)) return frame;
    std::string errStr;
    if (!getString(line, "error", errStr)) return frame;
    frame.errorCode = errorCodeFromString(errStr);
    getString(line, "message", frame.message);
    frame.type = FrameType::kReject;
    return frame;
  }

  if (t == "shutdown") {
    frame.type = FrameType::kShutdown;
    return frame;
  }

  return frame;  // unknown type: kGarbled
}

std::string replyEquivalenceSignature(const RouteReply& reply) {
  std::ostringstream os;
  os << core::toString(reply.status) << "|" << core::toString(reply.provenance)
     << "|" << toString(reply.errorCode) << "|" << num(reply.cost) << "|"
     << num(reply.bestBound) << "|" << reply.wirelength << "|" << reply.vias
     << "|" << reply.nodes << "|" << reply.lpIterations << "|"
     << reply.cacheKey << "|" << reply.solutionText;
  return os.str();
}

}  // namespace optr::service
