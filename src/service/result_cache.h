// ResultCache: content-addressed store of proven solve results.
//
// Keyed by core::resultCacheKey (canonical clip + rule + solver options), so
// two clients asking for the same work -- under any clip naming -- share one
// solve. Only deterministic outcomes are admitted (core::cacheableOutcome:
// proven optimal / infeasible with a clean error status); deadline-truncated
// results are a function of wall-clock and never enter the cache.
//
// Entries carry provenance: the request that paid for the solve, when it was
// inserted (entry sequence number), and the cold solve time -- enough for a
// client to audit where a cached answer came from. Bounded LRU, mutex
// protected; hit/miss/insert/evict counters feed obs metrics and the
// BENCH_service.json hit-rate gate.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/cache_key.h"

namespace optr::service {

struct ResultCacheOptions {
  /// Max entries retained. 0 disables caching (every lookup misses, every
  /// insert is dropped).
  std::size_t capacity = 256;
};

/// One cached solve outcome: everything a result frame needs, minus the
/// fields that must reflect the serving request (id, seconds, cached flag).
struct CachedResult {
  core::RouteStatus status = core::RouteStatus::kError;
  core::Provenance provenance = core::Provenance::kNone;
  double cost = 0.0;
  double bestBound = 0.0;
  int wirelength = 0;
  int vias = 0;
  std::int64_t nodes = 0;
  std::int64_t lpIterations = 0;
  std::string solutionText;  // route::solutionToText form
  // Provenance of the entry itself:
  std::string sourceRequestId;  // the request whose solve populated it
  double coldSeconds = 0.0;     // what the original solve cost
  std::uint64_t sequence = 0;   // insertion order within this daemon
};

class ResultCache {
 public:
  explicit ResultCache(ResultCacheOptions options = {});

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns a copy of the entry (and refreshes its LRU position), or
  /// nullopt.
  std::optional<CachedResult> find(const core::CacheKey& key);

  /// Inserts (or refreshes) `result` under `key`, stamping its sequence
  /// number. First-writer-wins on a racing double insert: the existing
  /// entry's provenance is kept, since both writers computed the same
  /// deterministic answer.
  /// Returns true when the entry was admitted (false: capacity 0,
  /// or an entry for `key` already exists -- first writer wins).
  bool insert(const core::CacheKey& key, CachedResult result);

  std::size_t size() const;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    core::CacheKey key;
    CachedResult result;
  };

  ResultCacheOptions options_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // MRU at front
  std::unordered_map<core::CacheKey, std::list<Entry>::iterator,
                     core::CacheKey::Hash>
      byKey_;
  Stats stats_;
  std::uint64_t nextSequence_ = 1;
};

}  // namespace optr::service
