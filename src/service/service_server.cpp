#include "service/service_server.h"

#if !defined(_WIN32)

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "common/stop_signal.h"
#include "obs/live_export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace optr::service {

namespace {

void setNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

std::optional<ListenAddress> parseListenAddress(const std::string& spec) {
  ListenAddress addr;
  if (spec.rfind("unix:", 0) == 0) {
    addr.isUnix = true;
    addr.path = spec.substr(5);
    if (addr.path.empty()) return std::nullopt;
    return addr;
  }
  std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos) return std::nullopt;
  addr.host = spec.substr(0, colon);
  if (addr.host.empty()) addr.host = "127.0.0.1";
  char* end = nullptr;
  long port = std::strtol(spec.c_str() + colon + 1, &end, 10);
  if (end == spec.c_str() + colon + 1 || *end != '\0' || port < 0 ||
      port > 65535) {
    return std::nullopt;
  }
  addr.port = static_cast<int>(port);
  return addr;
}

ServiceServer::ServiceServer(ServerOptions options)
    : options_(std::move(options)) {}

ServiceServer::~ServiceServer() {
  if (broker_) broker_->stop(/*drain=*/false);
  for (auto& [id, client] : clients_)
    if (client.fd >= 0) close(client.fd);
  if (listenFd_ >= 0) close(listenFd_);
  if (wakeRead_ >= 0) close(wakeRead_);
  if (wakeWrite_ >= 0) close(wakeWrite_);
  if (address_.isUnix && !boundAddress_.empty()) unlink(address_.path.c_str());
}

Status ServiceServer::start() {
  auto parsed = parseListenAddress(options_.listen);
  if (!parsed) {
    return Status::error(ErrorCode::kInvalidInput,
                         "bad listen address: " + options_.listen +
                             " (want unix:PATH or HOST:PORT)");
  }
  address_ = *parsed;
  signal(SIGPIPE, SIG_IGN);  // peer death shows up as EPIPE, not a kill

  if (address_.isUnix) {
    listenFd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
      return Status::error(ErrorCode::kIo,
                           std::string("socket: ") + std::strerror(errno));
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    if (address_.path.size() >= sizeof sun.sun_path)
      return Status::error(ErrorCode::kInvalidInput,
                           "unix socket path too long: " + address_.path);
    std::strncpy(sun.sun_path, address_.path.c_str(),
                 sizeof sun.sun_path - 1);
    unlink(address_.path.c_str());  // stale socket from a previous daemon
    if (bind(listenFd_, reinterpret_cast<sockaddr*>(&sun), sizeof sun) != 0)
      return Status::error(ErrorCode::kIo, "bind " + address_.path + ": " +
                                               std::strerror(errno));
    boundAddress_ = address_.path;
  } else {
    listenFd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
      return Status::error(ErrorCode::kIo,
                           std::string("socket: ") + std::strerror(errno));
    int one = 1;
    setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(static_cast<uint16_t>(address_.port));
    if (inet_pton(AF_INET, address_.host.c_str(), &sin.sin_addr) != 1)
      return Status::error(ErrorCode::kInvalidInput,
                           "bad listen host: " + address_.host);
    if (bind(listenFd_, reinterpret_cast<sockaddr*>(&sin), sizeof sin) != 0)
      return Status::error(ErrorCode::kIo, "bind " + options_.listen + ": " +
                                               std::strerror(errno));
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &len);
    boundAddress_ =
        address_.host + ":" + std::to_string(ntohs(bound.sin_port));
  }
  if (listen(listenFd_, 64) != 0)
    return Status::error(ErrorCode::kIo,
                         std::string("listen: ") + std::strerror(errno));
  setNonBlocking(listenFd_);

  int fds[2];
  if (pipe(fds) != 0)
    return Status::error(ErrorCode::kIo,
                         std::string("pipe: ") + std::strerror(errno));
  wakeRead_ = fds[0];
  wakeWrite_ = fds[1];
  setNonBlocking(wakeRead_);
  setNonBlocking(wakeWrite_);

  broker_ = std::make_unique<RequestBroker>(
      options_.broker, [this](const std::string& clientId,
                              const std::string& line) {
        enqueueFrame(clientId, line);
      });
  return Status::ok();
}

void ServiceServer::enqueueFrame(const std::string& clientId,
                                 const std::string& line) {
  {
    std::lock_guard<std::mutex> lock(clientsMutex_);
    auto it = clients_.find(clientId);
    if (it == clients_.end()) return;  // client left; frame has no reader
    Client& client = it->second;
    if (client.outbuf.size() + line.size() + 1 >
        options_.maxClientBacklogBytes) {
      client.dead = true;  // reader too far behind; poll loop reaps it
    } else {
      client.outbuf += line;
      client.outbuf += '\n';
    }
  }
  char b = 1;
  (void)!write(wakeWrite_, &b, 1);  // rouse the poll loop to flush
}

void ServiceServer::acceptClients() {
  for (;;) {
    int fd = accept(listenFd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN (or EINTR; next loop pass retries)
    setNonBlocking(fd);
    std::string id = "c" + std::to_string(nextClientId_++);
    obs::metrics().counter("service.connects").add(1);
    std::lock_guard<std::mutex> lock(clientsMutex_);
    Client& client = clients_[id];
    client.fd = fd;
    client.id = id;
    client.outbuf = encodeHello("optrouter") + "\n";
  }
}

void ServiceServer::handleReadable(Client& client) {
  char chunk[4096];
  for (;;) {
    ssize_t n = read(client.fd, chunk, sizeof chunk);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      client.dead = true;
      return;
    }
    client.splitter.feed(chunk, static_cast<std::size_t>(n));
  }
  std::string line;
  while (client.splitter.next(line)) {
    ServiceFrame frame = decodeFrame(line);
    if (frame.type == FrameType::kRoute) {
      broker_->submit(client.id, std::move(frame.request));
    } else if (frame.type == FrameType::kPing) {
      enqueueFrame(client.id, encodeStats(frame.id, broker_->liveStats()));
    } else if (frame.type == FrameType::kShutdown) {
      shutdownRequested_ = true;
    }
    // Anything else (including garbled lines) is ignored: torn input is a
    // client bug, not a server failure.
  }
}

void ServiceServer::flushWritable(Client& client) {
  std::lock_guard<std::mutex> lock(clientsMutex_);
  while (!client.outbuf.empty()) {
    ssize_t n = write(client.fd, client.outbuf.data(), client.outbuf.size());
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      client.dead = true;
      return;
    }
    client.outbuf.erase(0, static_cast<std::size_t>(n));
  }
}

void ServiceServer::dropClient(const std::string& id) {
  broker_->forgetClient(id);
  std::lock_guard<std::mutex> lock(clientsMutex_);
  auto it = clients_.find(id);
  if (it == clients_.end()) return;
  if (it->second.fd >= 0) close(it->second.fd);
  clients_.erase(it);
}

int ServiceServer::run() {
  common::installStopSignals();
  obs::event("service.start", boundAddress_);
  obs::LiveMetricsExporter exporter(
      {options_.metricsOutPath, options_.telemetryIntervalSec});
  auto lastPulse = std::chrono::steady_clock::now();

  while (!common::stopRequested() && !shutdownRequested_) {
    std::vector<pollfd> fds;
    std::vector<std::string> ids;  // parallel to fds from index 3 on
    fds.push_back({listenFd_, POLLIN, 0});
    fds.push_back({wakeRead_, POLLIN, 0});
    int stopFd = common::stopWakeFd();
    fds.push_back({stopFd >= 0 ? stopFd : -1, POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(clientsMutex_);
      for (auto& [id, client] : clients_) {
        short events = POLLIN;
        if (!client.outbuf.empty()) events |= POLLOUT;
        fds.push_back({client.fd, events, 0});
        ids.push_back(id);
      }
    }
    int n = poll(fds.data(), fds.size(), 200);
    if (n < 0 && errno != EINTR) break;
    if (common::stopRequested() || shutdownRequested_) break;

    // Telemetry cadence, busy or idle: periodic metrics rows (atomic
    // rename; a later SIGKILL still leaves the file) and a trace-ring
    // pulse so an idle daemon never strands spans (or drop accounting)
    // in memory until shutdown.
    exporter.tick();
    const auto tnow = std::chrono::steady_clock::now();
    if (std::chrono::duration<double>(tnow - lastPulse).count() >=
        options_.telemetryIntervalSec) {
      obs::TraceSession::pulse();
      lastPulse = tnow;
    }

    if (n <= 0) continue;

    if (fds[1].revents & POLLIN) {
      char buf[256];
      while (read(wakeRead_, buf, sizeof buf) > 0) {
      }
    }
    if (fds[0].revents & POLLIN) acceptClients();

    std::vector<std::string> dead;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const pollfd& pfd = fds[i + 3];
      Client* client = nullptr;
      {
        std::lock_guard<std::mutex> lock(clientsMutex_);
        auto it = clients_.find(ids[i]);
        if (it == clients_.end()) continue;
        client = &it->second;
      }
      // Single-threaded fd IO: only this loop reads/writes client sockets,
      // so touching `client` outside the map lock is safe (the sink only
      // appends to outbuf under the lock, taken inside flushWritable).
      if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) client->dead = true;
      if (!client->dead && (pfd.revents & POLLIN)) handleReadable(*client);
      if (!client->dead && (pfd.revents & POLLOUT)) flushWritable(*client);
      if (client->dead) dead.push_back(ids[i]);
    }
    for (const std::string& id : dead) dropClient(id);
    obs::metrics().gauge("service.clients").set(
        static_cast<std::int64_t>(clients_.size()));
  }

  // Graceful stop: no new connections, finish the backlog, flush, leave.
  obs::event("service.drain", common::stopRequested() ? "signal" : "frame");
  close(listenFd_);
  listenFd_ = -1;
  broker_->stop(/*drain=*/true);

  // Flush every outbound buffer (bounded: a stuck reader cannot wedge
  // shutdown for more than ~2s).
  for (int attempt = 0; attempt < 200; ++attempt) {
    bool anyPending = false;
    std::vector<std::string> ids;
    {
      std::lock_guard<std::mutex> lock(clientsMutex_);
      for (auto& [id, client] : clients_)
        if (!client.outbuf.empty() && !client.dead) ids.push_back(id);
    }
    for (const std::string& id : ids) {
      auto it = clients_.find(id);
      if (it == clients_.end()) continue;
      flushWritable(it->second);
      std::lock_guard<std::mutex> lock(clientsMutex_);
      if (!it->second.outbuf.empty() && !it->second.dead) anyPending = true;
    }
    if (!anyPending) break;
    poll(nullptr, 0, 10);
  }
  std::vector<std::string> all;
  for (auto& [id, client] : clients_) all.push_back(id);
  for (const std::string& id : all) dropClient(id);
  if (address_.isUnix) unlink(address_.path.c_str());
  obs::event("service.stop", "");
  // Account the tail interval (and the drain itself) before exiting, so a
  // graceful shutdown always ends the telemetry file with a final row.
  exporter.finalRow();
  obs::TraceSession::pulse();
  return 0;
}

}  // namespace optr::service

#endif  // !_WIN32
