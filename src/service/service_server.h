// ServiceServer: the daemon transport for `optrouter serve`.
//
// A single-threaded poll() event loop in front of a RequestBroker: accepts
// clients on a unix-domain or TCP listening socket, splits their byte
// streams into frames (common/line_io.h LineSplitter), feeds route requests
// to the broker, and flushes the broker's outbound frames. Worker threads
// never touch sockets: the broker's sink appends to a per-client outbound
// buffer under the server's mutex and pokes a wake pipe, and the poll loop
// does all fd IO -- the same single-writer discipline the fleet coordinator
// uses.
//
// Shutdown is graceful on all three triggers (SIGTERM, SIGINT -- via
// common/stop_signal.h -- and a client "shutdown" frame): stop accepting,
// drain the broker (every queued request gets its result), flush every
// outbound buffer, exit cleanly. A client that disconnects mid-queue has its
// pending requests dropped (forgetClient) instead of solved into the void.
#pragma once

#if !defined(_WIN32)

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/line_io.h"
#include "common/status.h"
#include "service/request_broker.h"

namespace optr::service {

/// "unix:/path/to.sock" or "host:port" (port 0 = kernel-assigned, for
/// tests).
struct ListenAddress {
  bool isUnix = false;
  std::string path;  // unix socket path
  std::string host;  // TCP
  int port = 0;
};

std::optional<ListenAddress> parseListenAddress(const std::string& spec);

struct ServerOptions {
  std::string listen;  // parseListenAddress spec
  BrokerOptions broker;
  /// Outbound-buffer cap per client; a reader this far behind is dropped
  /// (the buffer would otherwise grow without bound).
  std::size_t maxClientBacklogBytes = 8u << 20;
  /// Live telemetry (obs/live_export.h): when non-empty, the poll loop
  /// appends a timestamped metrics snapshot-delta row to this file every
  /// telemetryIntervalSec via atomic rename, so a SIGKILL'd daemon still
  /// leaves telemetry on disk. The same cadence drives
  /// obs::TraceSession::pulse() so an idle daemon never strands trace
  /// spans in its rings (pulse runs even when metricsOutPath is empty).
  std::string metricsOutPath;
  double telemetryIntervalSec = 2.0;
};

class ServiceServer {
 public:
  explicit ServiceServer(ServerOptions options);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds and listens. Must succeed before run().
  Status start();

  /// The address actually bound ("host:port" with the real port, or the
  /// unix path). Valid after start().
  std::string boundAddress() const { return boundAddress_; }

  /// Event loop; returns the process exit code (0 on a clean drain).
  /// Installs stop-signal handlers; returns on SIGTERM/SIGINT or a client
  /// shutdown frame.
  int run();

  RequestBroker& broker() { return *broker_; }

 private:
  struct Client {
    int fd = -1;
    std::string id;
    common::LineSplitter splitter;
    std::string outbuf;
    bool dead = false;
  };

  void acceptClients();
  void handleReadable(Client& client);
  void flushWritable(Client& client);
  void dropClient(const std::string& id);
  void enqueueFrame(const std::string& clientId, const std::string& line);

  ServerOptions options_;
  ListenAddress address_;
  std::string boundAddress_;
  int listenFd_ = -1;
  int wakeRead_ = -1;
  int wakeWrite_ = -1;
  bool shutdownRequested_ = false;
  std::unique_ptr<RequestBroker> broker_;
  std::mutex clientsMutex_;  // guards outbufs (sink writes from workers)
  std::unordered_map<std::string, Client> clients_;
  int nextClientId_ = 0;
};

}  // namespace optr::service

#endif  // !_WIN32
