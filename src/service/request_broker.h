// RequestBroker: the transport-agnostic core of the routing service.
//
// The broker owns admission control, the bounded work queues, the solver
// worker pool, the content-addressed ResultCache, and the shared
// SessionPool. It knows nothing about sockets: frames leave through a sink
// callback `(clientId, line)`, so the same broker serves the poll-driven
// daemon (service_server), the in-process bench harness (bench_service), and
// unit tests -- which is what makes saturation and drain behavior testable
// without a network.
//
// Admission (submit) is synchronous and cheap:
//   * daemon stopping              -> reject kUnavailable
//   * global backlog at queueDepth -> reject kSaturated
//   * client backlog at clientQueueDepth -> reject kSaturated
//   * otherwise enqueue FIFO and emit {"t":"status","state":"queued"}.
// Rejects are typed frames, never dropped requests: a saturated service
// must tell the client to back off, not time out on it.
//
// Workers pop FIFO, emit "running", then serve: cache hit -> replay the
// stored result (cached=1, near-zero latency); miss -> lease a session from
// the pool (sessionCacheKey), solve, store when cacheableOutcome, reply.
// stop(drain=true) -- the SIGTERM path -- stops admission, finishes every
// queued request, and joins; stop(drain=false) rejects the backlog instead.
//
// Telemetry. Every request feeds the global request-lifecycle histograms
// (obs/metrics.h, nanosecond-valued):
//   service.queue_wait_ns    admission -> worker pickup
//   service.lease_ns         SessionPool::acquire (cold requests only)
//   service.solve_ns.cold    serve() wall on a cache miss
//   service.solve_ns.hit     serve() wall on a cache hit
//   service.reply_write_ns   encode + sink of the result frame
// liveStats() folds their live percentiles (plus the counters) into a
// protocol ServiceStats, which is what a kPing frame gets back. A request
// carrying trace context (RouteRequest::traceId/parentSpan) gets its
// service.request span tagged with that remote parent so merged traces
// stitch it under the client's span.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/session_pool.h"
#include "service/result_cache.h"
#include "service/service_protocol.h"
#include "tech/rules.h"

namespace optr::service {

struct BrokerOptions {
  int workers = 2;
  /// Global pending-request cap (queued, not yet picked up).
  std::size_t queueDepth = 64;
  /// Per-client pending cap; keeps one chatty client from starving the rest.
  std::size_t clientQueueDepth = 16;
  ResultCacheOptions cache;
  core::SessionPoolOptions sessionPool;
  /// Solver configuration; requests may override mip.timeLimitSec only.
  core::OptRouterOptions router;
  /// Rule universe every pooled session is built over. Requests naming a
  /// rule outside it are rejected kUnavailable.
  std::vector<tech::RuleConfig> universe = tech::table3Rules();
};

class RequestBroker {
 public:
  /// Delivers one encoded frame to one client. Called from broker worker
  /// threads and from inside submit(); must be thread-safe and must not
  /// block on the client (buffer, don't wait).
  using Sink = std::function<void(const std::string& clientId,
                                  const std::string& line)>;

  RequestBroker(BrokerOptions options, Sink sink);
  ~RequestBroker();  // stop(drain=false) if still running

  RequestBroker(const RequestBroker&) = delete;
  RequestBroker& operator=(const RequestBroker&) = delete;

  /// Admission control; emits queued-status or reject through the sink.
  /// Returns true when the request was accepted.
  bool submit(const std::string& clientId, RouteRequest request);

  /// Drops queued (not yet running) requests from `clientId` -- the client
  /// disconnected; solving for it would be wasted work. In-flight solves
  /// finish normally (their results still warm the cache).
  void forgetClient(const std::string& clientId);

  /// Stops admission, then either finishes the backlog (drain) or rejects
  /// it (kUnavailable), and joins the workers. Idempotent.
  void stop(bool drain = true);

  /// Queued + in-flight request count.
  std::size_t pending() const;

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejectedSaturated = 0;
    std::uint64_t rejectedShutdown = 0;
    std::uint64_t completed = 0;
    std::uint64_t cacheHits = 0;   // requests served from the result cache
    std::uint64_t dropped = 0;     // forgotten with their client
  };
  Stats stats() const;

  /// Live telemetry for a kPing frame: the counters above plus current
  /// percentiles of the request-lifecycle histograms (converted ns -> ms).
  /// Percentiles are zero in OPTR_OBS_DISABLED builds; counters are exact
  /// either way.
  ServiceStats liveStats() const;

  ResultCache& cache() { return cache_; }
  core::SessionPool& sessionPool() { return sessionPool_; }
  const BrokerOptions& options() const { return options_; }

 private:
  struct Task {
    std::string clientId;
    RouteRequest request;
    std::chrono::steady_clock::time_point enqueuedAt;
  };

  void workerLoop();
  void serve(const Task& task);
  RouteReply solveFresh(const Task& task, const clip::Clip& clip,
                        const tech::RuleConfig& rule,
                        const core::OptRouterOptions& effective,
                        const core::CacheKey& key);

  BrokerOptions options_;
  Sink sink_;
  ResultCache cache_;
  core::SessionPool sessionPool_;
  std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();

  mutable std::mutex mutex_;
  std::condition_variable workReady_;
  std::deque<Task> queue_;
  std::unordered_map<std::string, std::size_t> pendingByClient_;
  std::size_t inFlight_ = 0;
  bool stopping_ = false;
  bool joined_ = false;
  Stats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace optr::service
