// ServiceClient: blocking client for the routing daemon.
//
// Connects to the address `optrouter serve` is listening on, speaks the
// service protocol (service_protocol.h), and hands decoded frames back one
// at a time. Used by the `service_client` CLI driver, bench_service, and the
// end-to-end service tests. Single-threaded: one request/response
// conversation per instance (open several clients for concurrency -- they
// are cheap).
#pragma once

#if !defined(_WIN32)

#include <memory>
#include <string>

#include "common/line_io.h"
#include "common/status.h"
#include "service/service_protocol.h"

namespace optr::service {

class ServiceClient {
 public:
  ServiceClient() = default;
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Connects and consumes the hello frame (verifying the protocol
  /// version). `address` accepts the same specs as the server's --listen.
  Status connect(const std::string& address);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// Sends one route request.
  Status send(const RouteRequest& request);
  /// Asks the daemon to drain and exit.
  Status sendShutdown();

  /// Blocks for the next frame. False on EOF / connection loss.
  bool next(ServiceFrame& frame);

  /// Convenience: sends `request` and blocks until its result or reject
  /// frame (status frames are skipped). kUnavailable on connection loss; a
  /// reject comes back as an error Status carrying the typed code.
  StatusOr<RouteReply> call(const RouteRequest& request);

  /// Pings the daemon and blocks for its live-stats frame: broker counters
  /// plus request-lifecycle percentiles (queue-wait / lease / solve /
  /// reply-write). kUnavailable on connection loss.
  StatusOr<ServiceStats> ping();

 private:
  int fd_ = -1;
  std::unique_ptr<common::LineReader> reader_;
};

}  // namespace optr::service

#endif  // !_WIN32
