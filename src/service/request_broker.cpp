#include "service/request_broker.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "clip/clip_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "route/route_solution.h"
#include "tech/technology.h"

namespace optr::service {

namespace {

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double nsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Wire trace context -> obs context. The 16-hex trace id parses leniently:
/// malformed input degrades to "no context", never to an error.
obs::TraceContext contextOf(const RouteRequest& request) {
  obs::TraceContext ctx;
  if (request.traceId.empty() || request.parentSpan == 0) return ctx;
  char* end = nullptr;
  ctx.traceId = std::strtoull(request.traceId.c_str(), &end, 16);
  if (end == nullptr || *end != '\0') return obs::TraceContext{};
  ctx.spanId = request.parentSpan;
  return ctx;
}

/// ns-valued lifecycle histogram -> protocol quad (ms).
StatsQuad quadOf(const obs::MetricsSnapshot& snap, std::string_view name) {
  StatsQuad q;
  const obs::MetricsSnapshot::Entry* e = snap.find(name);
  if (e == nullptr) return q;
  q.count = e->count;
  q.p50Ms = e->percentile(0.50) / 1e6;
  q.p95Ms = e->percentile(0.95) / 1e6;
  q.p99Ms = e->percentile(0.99) / 1e6;
  return q;
}

}  // namespace

RequestBroker::RequestBroker(BrokerOptions options, Sink sink)
    : options_(std::move(options)),
      sink_(std::move(sink)),
      cache_(options_.cache),
      sessionPool_(options_.sessionPool) {
  int n = std::max(1, options_.workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

RequestBroker::~RequestBroker() { stop(/*drain=*/false); }

bool RequestBroker::submit(const std::string& clientId, RouteRequest request) {
  std::string frame;
  bool accepted = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      ++stats_.rejectedShutdown;
      frame = encodeReject(request.id, ErrorCode::kUnavailable,
                           "service is shutting down");
    } else if (queue_.size() >= options_.queueDepth) {
      ++stats_.rejectedSaturated;
      frame = encodeReject(request.id, ErrorCode::kSaturated,
                           "global queue full (" +
                               std::to_string(options_.queueDepth) +
                               " pending)");
    } else if (pendingByClient_[clientId] >= options_.clientQueueDepth) {
      ++stats_.rejectedSaturated;
      frame = encodeReject(request.id, ErrorCode::kSaturated,
                           "client queue full (" +
                               std::to_string(options_.clientQueueDepth) +
                               " outstanding)");
    } else {
      ++stats_.accepted;
      ++pendingByClient_[clientId];
      queue_.push_back(Task{clientId, std::move(request),
                            std::chrono::steady_clock::now()});
      frame = encodeStatus(queue_.back().request.id, "queued",
                           static_cast<int>(queue_.size()));
      accepted = true;
    }
  }
  obs::metrics()
      .counter(accepted ? "service.request.accepted"
                        : "service.request.rejected")
      .add(1);
  std::string clientCopy = clientId;  // sink may outlive the caller's ref
  sink_(clientCopy, frame);
  if (accepted) workReady_.notify_one();
  return accepted;
}

void RequestBroker::forgetClient(const std::string& clientId) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t before = queue_.size();
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [&](const Task& t) {
                                return t.clientId == clientId;
                              }),
               queue_.end());
  std::size_t removed = before - queue_.size();
  stats_.dropped += removed;
  auto it = pendingByClient_.find(clientId);
  if (it != pendingByClient_.end()) {
    it->second -= std::min(it->second, removed);
    if (it->second == 0) pendingByClient_.erase(it);
  }
}

void RequestBroker::stop(bool drain) {
  std::vector<Task> abandoned;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
    if (!drain) {
      abandoned.assign(std::make_move_iterator(queue_.begin()),
                       std::make_move_iterator(queue_.end()));
      queue_.clear();
      for (const Task& t : abandoned) {
        ++stats_.rejectedShutdown;
        auto it = pendingByClient_.find(t.clientId);
        if (it != pendingByClient_.end() && it->second > 0) --it->second;
      }
    }
  }
  workReady_.notify_all();
  for (const Task& t : abandoned)
    sink_(t.clientId, encodeReject(t.request.id, ErrorCode::kUnavailable,
                                   "service is shutting down"));
  bool expectJoin = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!joined_) {
      joined_ = true;
      expectJoin = true;
    }
  }
  if (expectJoin) {
    // Workers drain the remaining queue (empty unless drain=true) and exit.
    for (std::thread& t : workers_) t.join();
  }
}

std::size_t RequestBroker::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + inFlight_;
}

RequestBroker::Stats RequestBroker::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

ServiceStats RequestBroker::liveStats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.pending = static_cast<std::int64_t>(queue_.size() + inFlight_);
    out.accepted = static_cast<std::int64_t>(stats_.accepted);
    out.completed = static_cast<std::int64_t>(stats_.completed);
    out.cacheHits = static_cast<std::int64_t>(stats_.cacheHits);
    out.rejectedSaturated =
        static_cast<std::int64_t>(stats_.rejectedSaturated);
  }
  out.uptimeSec = secondsSince(started_);
  obs::MetricsSnapshot snap = obs::metrics().snapshot();
  out.queueWait = quadOf(snap, "service.queue_wait_ns");
  out.lease = quadOf(snap, "service.lease_ns");
  out.solveCold = quadOf(snap, "service.solve_ns.cold");
  out.solveHit = quadOf(snap, "service.solve_ns.hit");
  out.replyWrite = quadOf(snap, "service.reply_write_ns");
  return out;
}

void RequestBroker::workerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      workReady_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++inFlight_;
    }
    serve(task);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --inFlight_;
      ++stats_.completed;
      auto it = pendingByClient_.find(task.clientId);
      if (it != pendingByClient_.end()) {
        if (it->second > 0) --it->second;
        if (it->second == 0) pendingByClient_.erase(it);
      }
    }
  }
}

void RequestBroker::serve(const Task& task) {
  auto start = std::chrono::steady_clock::now();
  obs::metrics()
      .histogram("service.queue_wait_ns")
      .record(nsSince(task.enqueuedAt));
  obs::Span span("service.request", contextOf(task.request));
  span.detail(task.request.ruleName + "|" + task.request.id);

  auto clipOr = clip::fromText(task.request.clipText);
  if (!clipOr.isOk()) {
    span.arg("reject", 1);
    sink_(task.clientId, encodeReject(task.request.id, clipOr.status().code(),
                                      clipOr.status().message()));
    return;
  }
  const clip::Clip& clip = clipOr.value();

  const tech::RuleConfig* rule = nullptr;
  for (const tech::RuleConfig& r : options_.universe)
    if (r.name == task.request.ruleName) rule = &r;
  if (rule == nullptr) {
    span.arg("reject", 1);
    sink_(task.clientId,
          encodeReject(task.request.id, ErrorCode::kUnavailable,
                       "rule not in service universe: " +
                           task.request.ruleName));
    return;
  }

  core::OptRouterOptions effective = options_.router;
  if (task.request.timeLimitSec > 0)
    effective.mip.timeLimitSec = task.request.timeLimitSec;
  core::CacheKey key = core::resultCacheKey(clip, *rule, effective);

  if (auto hit = cache_.find(key)) {
    RouteReply reply;
    reply.id = task.request.id;
    reply.status = hit->status;
    reply.provenance = hit->provenance;
    reply.cost = hit->cost;
    reply.bestBound = hit->bestBound;
    reply.wirelength = hit->wirelength;
    reply.vias = hit->vias;
    reply.nodes = hit->nodes;
    reply.lpIterations = hit->lpIterations;
    reply.solutionText = hit->solutionText;
    reply.cached = true;
    reply.cacheKey = key.hex();
    reply.seconds = secondsSince(start);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.cacheHits;
    }
    span.arg("cached", 1);
    obs::metrics().histogram("service.solve_ns.hit").record(nsSince(start));
    const auto replyStart = std::chrono::steady_clock::now();
    sink_(task.clientId, encodeResult(reply));
    obs::metrics()
        .histogram("service.reply_write_ns")
        .record(nsSince(replyStart));
    return;
  }

  sink_(task.clientId, encodeStatus(task.request.id, "running", 0));
  RouteReply reply = solveFresh(task, clip, *rule, effective, key);
  reply.seconds = secondsSince(start);
  span.arg("cached", 0);
  obs::metrics().histogram("service.solve_ns.cold").record(nsSince(start));
  const auto replyStart = std::chrono::steady_clock::now();
  sink_(task.clientId, encodeResult(reply));
  obs::metrics()
      .histogram("service.reply_write_ns")
      .record(nsSince(replyStart));
}

RouteReply RequestBroker::solveFresh(const Task& task, const clip::Clip& clip,
                                     const tech::RuleConfig& rule,
                                     const core::OptRouterOptions& effective,
                                     const core::CacheKey& key) {
  RouteReply reply;
  reply.id = task.request.id;
  reply.cacheKey = key.hex();

  auto techOr = tech::Technology::byName(clip.techName);
  if (!techOr.isOk()) {
    reply.errorCode = techOr.status().code();
    reply.errorMessage = techOr.status().message();
    return reply;  // status stays kError
  }

  std::string sessionKey =
      core::sessionCacheKey(clip, effective.formulation).hex();
  const auto leaseStart = std::chrono::steady_clock::now();
  core::SessionPool::Lease lease = sessionPool_.acquire(sessionKey, [&] {
    core::ClipSessionOptions so;
    so.formulation = effective.formulation;
    so.universe = options_.universe;
    return std::make_unique<core::ClipSession>(clip, techOr.value(),
                                               std::move(so));
  });
  obs::metrics().histogram("service.lease_ns").record(nsSince(leaseStart));

  core::OptRouter router(techOr.value(), rule, effective);
  core::RouteResult res = router.route(*lease, rule);
  if (res.status == core::RouteStatus::kError) {
    // The solver stack failed mid-solve; the session's formulation state is
    // not worth trusting for the next request.
    lease.discard();
  }

  reply.status = res.status;
  reply.provenance = res.provenance;
  reply.errorCode = res.error.code();
  reply.errorMessage = res.error.message();
  reply.cost = res.cost;
  reply.bestBound = res.bestBound;
  reply.wirelength = res.wirelength;
  reply.vias = res.vias;
  reply.nodes = res.nodes;
  reply.lpIterations = res.lpIterations;
  if (res.hasSolution()) reply.solutionText = route::solutionToText(res.solution);

  if (core::cacheableOutcome(res.status, res.error)) {
    CachedResult entry;
    entry.status = res.status;
    entry.provenance = res.provenance;
    entry.cost = res.cost;
    entry.bestBound = res.bestBound;
    entry.wirelength = res.wirelength;
    entry.vias = res.vias;
    entry.nodes = res.nodes;
    entry.lpIterations = res.lpIterations;
    entry.solutionText = reply.solutionText;
    entry.sourceRequestId = task.request.id;
    entry.coldSeconds = res.seconds;
    cache_.insert(key, std::move(entry));
  }
  return reply;
}

}  // namespace optr::service
