// Routing-service wire protocol: line-delimited JSON between service_client
// and the daemon (`optrouter serve`).
//
// Same framing discipline as the fleet protocol (harness/sweep_protocol.h):
// one flat JSON object per line over any byte stream, decode failures
// reported as kGarbled rather than thrown, versioned by the hello frame.
// The schema:
//
//   client -> server
//     {"t":"route","id":"r17","clip":"<clip text>","rule":"RULE3",
//      "timeLimitSec":120,                           (timeLimitSec optional)
//      "traceId":"9f3a6c01d2e4b875","parentSpan":42}    (optional, together:
//                        cross-process trace context -- obs/trace.h -- so the
//                        daemon's service.request span stitches under the
//                        client's span in a merged trace)
//     {"t":"ping","id":"p1"}     request a live stats frame (no solve work)
//     {"t":"shutdown"}           drain in-flight work, then stop the daemon
//   server -> client
//     {"t":"hello","proto":1,"server":"optrouter"}
//     {"t":"stats","id":"p1","uptimeSec":12.5,"pending":3,"accepted":100,
//      "completed":96,"cacheHits":40,"rejectedSaturated":1,
//      "queueWaitCount":96,"queueWaitP50Ms":0.21,"queueWaitP95Ms":1.7,
//      "queueWaitP99Ms":4.0, ... same Count/P50/P95/P99 quads for
//      "lease","solveCold","solveHit","replyWrite"}   (broker histograms)
//     {"t":"status","id":"r17","state":"queued","queueDepth":3}
//     {"t":"status","id":"r17","state":"running"}
//     {"t":"result","id":"r17","status":"optimal","provenance":"ilp_proven",
//      "error":"ok","message":"","cost":...,"bestBound":...,
//      "wirelength":...,"vias":...,"seconds":...,"nodes":...,
//      "lpIterations":...,"cached":0,"cacheKey":"<32 hex>",
//      "solution":"<SOL text>"}
//     {"t":"reject","id":"r17","error":"saturated","message":"..."}
//
// Clients stream frames: zero or more status updates, then exactly one
// result or reject per request id. Numeric result fields are printed with
// %.17g so a cached replay of a solve is byte-identical to the original
// result frame (minus the fields that legitimately differ: "cached" and
// "seconds"). That byte-equality is the cache-correctness gate bench_service
// enforces.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/opt_router.h"

namespace optr::service {

/// Protocol version spoken by this build; clients refuse a daemon that
/// hellos with a different version.
inline constexpr int kServiceProtocolVersion = 1;

enum class FrameType : std::uint8_t {
  kHello = 0,
  kRoute,
  kStatus,
  kResult,
  kReject,
  kShutdown,
  kPing,   // client -> server: request a kStats frame
  kStats,  // server -> client: live broker lifecycle percentiles
  /// Decode failure: not a frame type on the wire, but what decodeFrame()
  /// reports for a truncated, corrupt, or unknown line.
  kGarbled,
  kNumTypes,
};

const char* toString(FrameType t);

/// One route request. `clipText` is the clip text serialization
/// (clip/clip_io.h), which carries geometry and technology; `ruleName` names
/// a rule in the daemon's configured universe.
struct RouteRequest {
  std::string id;
  std::string clipText;
  std::string ruleName;
  /// Overrides the daemon's MIP time limit when > 0. A request that sets
  /// this gets its own cache slot (the limit is part of the cache key).
  double timeLimitSec = 0.0;
  /// Cross-process trace context (obs/trace.h): 16-hex trace id plus the
  /// client-side parent span id. Both empty/0 (the default) means no
  /// context; neither participates in the cache key.
  std::string traceId;
  std::uint64_t parentSpan = 0;
};

/// One route answer. Mirrors core::RouteResult plus service metadata.
struct RouteReply {
  std::string id;
  core::RouteStatus status = core::RouteStatus::kError;
  core::Provenance provenance = core::Provenance::kNone;
  ErrorCode errorCode = ErrorCode::kOk;
  std::string errorMessage;
  double cost = 0.0;
  double bestBound = 0.0;
  int wirelength = 0;
  int vias = 0;
  double seconds = 0.0;  // wall time of THIS response (near-zero on a hit)
  std::int64_t nodes = 0;
  std::int64_t lpIterations = 0;
  bool cached = false;
  std::string cacheKey;      // 32 hex chars; same key => same request content
  std::string solutionText;  // route::solutionToText, empty when no solution
};

/// One request-lifecycle histogram summary inside a kStats frame: count of
/// recorded samples plus live percentiles in milliseconds. Percentiles are
/// HDR-bucket midpoints (obs/metrics.h), 0 when count is 0 or the build
/// compiled observability out.
struct StatsQuad {
  std::int64_t count = 0;
  double p50Ms = 0.0;
  double p95Ms = 0.0;
  double p99Ms = 0.0;
};

/// Live service telemetry returned for a ping: broker counters plus the
/// request-lifecycle histograms (request_broker.h records them in
/// nanoseconds; this frame reports milliseconds).
struct ServiceStats {
  double uptimeSec = 0.0;
  std::int64_t pending = 0;  // queued + in-flight
  std::int64_t accepted = 0;
  std::int64_t completed = 0;
  std::int64_t cacheHits = 0;
  std::int64_t rejectedSaturated = 0;
  StatsQuad queueWait;   // admission -> worker pickup
  StatsQuad lease;       // session-pool acquire (cold requests)
  StatsQuad solveCold;   // full solve wall (cache miss)
  StatsQuad solveHit;    // replay wall (cache hit)
  StatsQuad replyWrite;  // encode + sink of the result frame
};

/// One decoded protocol line. Only the fields of the given type are
/// meaningful.
struct ServiceFrame {
  FrameType type = FrameType::kGarbled;
  // kHello
  int protoVersion = 0;
  std::string serverId;
  // kRoute
  RouteRequest request;
  // kStatus / kReject (and the reply carries kResult's id)
  std::string id;
  std::string state;   // kStatus: "queued" | "running"
  int queueDepth = 0;  // kStatus(queued): global backlog at admission
  ErrorCode errorCode = ErrorCode::kOk;  // kReject
  std::string message;                   // kReject
  // kResult
  RouteReply reply;
  // kStats (and kPing carries its id above)
  ServiceStats stats;
};

std::string encodeHello(const std::string& serverId);
std::string encodeRoute(const RouteRequest& request);
std::string encodeStatus(const std::string& id, const std::string& state,
                         int queueDepth);
std::string encodeResult(const RouteReply& reply);
std::string encodeReject(const std::string& id, ErrorCode code,
                         const std::string& message);
std::string encodeShutdown();
std::string encodePing(const std::string& id);
std::string encodeStats(const std::string& id, const ServiceStats& stats);

/// Decodes one line (without the trailing '\n'). Never throws; anything
/// undecodable comes back as kGarbled.
ServiceFrame decodeFrame(const std::string& line);

/// The reply fields that must be identical between a cached replay and a
/// fresh solve of the same request: status, provenance, error code, cost,
/// bestBound, wirelength, vias, nodes, lpIterations, cache key, and the
/// routed geometry. Excludes `cached`, `seconds`, and `id` (which
/// legitimately differ). bench_service byte-compares these signatures.
std::string replyEquivalenceSignature(const RouteReply& reply);

}  // namespace optr::service
