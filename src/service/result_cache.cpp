#include "service/result_cache.h"

#include "obs/metrics.h"

namespace optr::service {

ResultCache::ResultCache(ResultCacheOptions options) : options_(options) {}

std::optional<CachedResult> ResultCache::find(const core::CacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = byKey_.find(key);
  if (it == byKey_.end()) {
    ++stats_.misses;
    obs::metrics().counter("service.cache.miss").add(1);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh to MRU
  ++stats_.hits;
  obs::metrics().counter("service.cache.hit").add(1);
  return it->second->result;
}

bool ResultCache::insert(const core::CacheKey& key, CachedResult result) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.capacity == 0) return false;
  auto it = byKey_.find(key);
  if (it != byKey_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return false;  // first writer wins; the answers are identical anyway
  }
  result.sequence = nextSequence_++;
  lru_.push_front(Entry{key, std::move(result)});
  byKey_[key] = lru_.begin();
  ++stats_.insertions;
  obs::metrics().counter("service.cache.insert").add(1);
  if (lru_.size() > options_.capacity) {
    ++stats_.evictions;
    obs::metrics().counter("service.cache.evict").add(1);
    byKey_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return true;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace optr::service
