#include "report/table.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace optr::report {

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size() && i < width.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto line = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (std::size_t i = 0; i < width.size(); ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      out += " " + cell + std::string(width[i] - cell.size(), ' ') + " |";
    }
    return out + "\n";
  };
  std::string out = line(header_);
  std::string sep = "|";
  for (std::size_t i = 0; i < width.size(); ++i)
    sep += std::string(width[i] + 2, '-') + "|";
  out += sep + "\n";
  for (const auto& r : rows_) out += line(r);
  return out;
}

std::string Series::render(int maxPoints) const {
  std::string out = "== " + title_ + " ==\n";
  out += "   x: " + xLabel_ + ", y: " + yLabel_ + "\n";
  if (series_.empty()) return out;

  double lo = 0, hi = 1;
  bool first = true;
  for (const auto& s : series_) {
    for (double v : s.ys) {
      if (!std::isfinite(v)) continue;
      if (first) {
        lo = hi = v;
        first = false;
      } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
  }
  if (hi <= lo) hi = lo + 1;

  static const char* kGlyphs = " .:-=+*#%@";
  std::size_t nameWidth = 0;
  for (const auto& s : series_) nameWidth = std::max(nameWidth, s.name.size());

  for (const auto& s : series_) {
    // Downsample to maxPoints for the sparkline.
    std::string spark;
    int n = static_cast<int>(s.ys.size());
    int points = std::min(maxPoints, n);
    for (int i = 0; i < points; ++i) {
      double v = s.ys[static_cast<std::size_t>(
          static_cast<double>(i) * n / points)];
      if (!std::isfinite(v)) {
        spark += '!';
        continue;
      }
      int level = static_cast<int>(std::lround((v - lo) / (hi - lo) * 9));
      spark += kGlyphs[std::clamp(level, 0, 9)];
    }
    out += "   " + s.name + std::string(nameWidth - s.name.size(), ' ') +
           " [" + spark + "]";
    // Numeric summary: first / median / last finite values.
    std::vector<double> finite;
    int infinities = 0;
    for (double v : s.ys) {
      if (std::isfinite(v)) {
        finite.push_back(v);
      } else {
        ++infinities;
      }
    }
    if (!finite.empty()) {
      double med = finite[finite.size() / 2];
      out += strFormat("  first=%.1f med=%.1f last=%.1f", finite.front(), med,
                       finite.back());
    }
    if (infinities > 0) out += strFormat("  infeasible=%d", infinities);
    out += "\n";
  }
  return out;
}

}  // namespace optr::report
