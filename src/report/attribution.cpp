#include "report/attribution.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/jsonl.h"
#include "report/table.h"

namespace optr::report {

namespace {

// Matches the batch checkpoint's number formatting (ostringstream default
// precision), which is what makes the byte-equality join claim checkable.
std::string num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.2f", v);
  return buf;
}

std::string taskKey(const std::string& clip, const std::string& rule,
                    const std::string& tech) {
  return clip + "\x1f" + rule + "\x1f" + tech;
}

}  // namespace

AttributionReport attributeRules(const std::vector<obs::TraceEntry>& entries,
                                 const AttributionOptions& options) {
  AttributionReport rep;
  rep.baselineRule = options.baselineRule;

  std::map<std::string, std::size_t> taskIndex;  // key -> rep.tasks index
  std::vector<std::string> ruleOrder;
  std::int64_t duplicates = 0, divergentDuplicates = 0;
  bool sawV1 = false;
  for (const obs::TraceEntry& e : entries) {
    if (e.type != "span" || e.name != "route.solve") continue;
    AttributedTask t;
    t.clip = std::string(e.attr("clip"));
    t.rule = std::string(e.attr("rule"));
    t.tech = std::string(e.attr("tech"));
    if (t.clip.empty() && t.rule.empty()) {
      // v1 fallback: the span's detail is "clip|rule" and there are no
      // structured attrs. Wirelength/via attribution is unavailable there.
      const std::size_t bar = e.detail.find('|');
      if (e.detail.empty()) continue;  // nothing to join on
      t.clip = bar == std::string::npos ? e.detail : e.detail.substr(0, bar);
      t.rule = bar == std::string::npos ? "" : e.detail.substr(bar + 1);
      sawV1 = true;
    }
    t.status = std::string(e.attr("status"));
    t.provenance = std::string(e.attr("provenance"));
    t.cost = e.arg("cost");
    t.wirelength = e.arg("wl");
    t.vias = e.arg("vias");
    t.bestBound = e.arg("bound");
    t.durNs = e.dur;
    t.hasObjective = e.hasArg("cost") && t.hasSolution();

    const std::string key = taskKey(t.clip, t.rule, t.tech);
    auto it = taskIndex.find(key);
    if (it != taskIndex.end()) {
      ++duplicates;
      const AttributedTask& first = rep.tasks[it->second];
      if (first.status != t.status || first.cost != t.cost) {
        ++divergentDuplicates;
        rep.notes.push_back("divergent re-solve of " + t.clip + "|" + t.rule +
                            ": kept " + first.status + "/" + num(first.cost) +
                            ", ignored " + t.status + "/" + num(t.cost));
      }
      continue;  // first occurrence wins
    }
    taskIndex[key] = rep.tasks.size();
    if (std::find(ruleOrder.begin(), ruleOrder.end(), t.rule) ==
        ruleOrder.end()) {
      ruleOrder.push_back(t.rule);
    }
    rep.tasks.push_back(std::move(t));
  }
  if (sawV1) {
    rep.notes.push_back(
        "v1 trace spans joined via detail split; wirelength/via/status "
        "attribution unavailable for those tasks");
  }
  if (duplicates > 0) {
    rep.notes.push_back(std::to_string(duplicates) +
                        " duplicate route.solve span(s) ignored (" +
                        std::to_string(divergentDuplicates) + " divergent)");
  }

  // Baseline lookup: (clip, tech) -> task under the baseline rule.
  std::map<std::pair<std::string, std::string>, const AttributedTask*> base;
  for (const AttributedTask& t : rep.tasks) {
    if (t.rule == rep.baselineRule) base[{t.clip, t.tech}] = &t;
  }
  if (base.empty()) {
    rep.notes.push_back("baseline rule " + rep.baselineRule +
                        " has no tasks in this trace; deltas are undefined");
  }

  // One row per (rule, tech) cell, joined clip-wise against the baseline.
  std::map<std::pair<std::string, std::string>, AttributionRow> cells;
  for (const AttributedTask& t : rep.tasks) {
    AttributionRow& row = cells[{t.tech, t.rule}];
    row.rule = t.rule;
    row.tech = t.tech;
    auto bit = base.find({t.clip, t.tech});
    if (bit == base.end() || !bit->second->hasSolution()) continue;
    const AttributedTask& b = *bit->second;
    ++row.clips;
    row.durNs += t.durNs;
    row.baseDurNs += b.durNs;
    if (t.hasSolution()) {
      ++row.solved;
      row.wl += t.wirelength;
      row.vias += t.vias;
      row.cost += t.cost;
      row.baseWl += b.wirelength;
      row.baseVias += b.vias;
      row.baseCost += b.cost;
    } else if (t.status == "infeasible") {
      ++row.infeasible;
    } else {
      ++row.unresolved;
    }
  }
  for (auto& [key, row] : cells) {
    if (row.baseWl > 0) row.dWlPct = 100.0 * (row.wl - row.baseWl) / row.baseWl;
    row.dVias = row.vias - row.baseVias;
    if (row.baseCost > 0)
      row.dCostPct = 100.0 * (row.cost - row.baseCost) / row.baseCost;
    if (row.baseDurNs > 0)
      row.dRuntimePct = 100.0 *
                        static_cast<double>(row.durNs - row.baseDurNs) /
                        static_cast<double>(row.baseDurNs);
  }
  // Tech-major, rules in first-seen trace order (Table 5 lists the rule set
  // in the paper's order, which is how the sweep enumerates them).
  std::vector<std::string> techs;
  for (const auto& [key, row] : cells) {
    if (std::find(techs.begin(), techs.end(), key.first) == techs.end())
      techs.push_back(key.first);
  }
  std::sort(techs.begin(), techs.end());
  for (const std::string& tech : techs) {
    for (const std::string& rule : ruleOrder) {
      auto it = cells.find({tech, rule});
      if (it != cells.end()) rep.rows.push_back(it->second);
    }
  }
  return rep;
}

std::string renderAttributionText(const AttributionReport& report) {
  std::ostringstream out;
  out << "Rule attribution vs baseline " << report.baselineRule
      << " (Table 5)\n";
  Table table({"tech", "rule", "clips", "solved", "infeas", "unres", "dWL%",
               "dVias", "dCost%", "dRun%"});
  for (const AttributionRow& r : report.rows) {
    const bool isBase = r.rule == report.baselineRule;
    table.addRow({r.tech.empty() ? "-" : r.tech, r.rule,
                  std::to_string(r.clips), std::to_string(r.solved),
                  std::to_string(r.infeasible), std::to_string(r.unresolved),
                  isBase ? "ref" : pct(r.dWlPct),
                  isBase ? "ref" : pct(r.dVias),
                  isBase ? "ref" : pct(r.dCostPct),
                  isBase ? "ref" : pct(r.dRuntimePct)});
  }
  out << table.render();
  for (const std::string& n : report.notes) out << "note: " << n << "\n";
  return out.str();
}

std::string attributionToJson(const AttributionReport& report) {
  std::ostringstream os;
  os << "{\"report\":\"table5\",\"baseline\":\""
     << jsonl::escape(report.baselineRule) << "\",\"rows\":[";
  bool first = true;
  for (const AttributionRow& r : report.rows) {
    if (!first) os << ",";
    first = false;
    os << "{\"tech\":\"" << jsonl::escape(r.tech) << "\""
       << ",\"rule\":\"" << jsonl::escape(r.rule) << "\""
       << ",\"clips\":" << r.clips << ",\"solved\":" << r.solved
       << ",\"infeasible\":" << r.infeasible
       << ",\"unresolved\":" << r.unresolved << ",\"wl\":" << num(r.wl)
       << ",\"vias\":" << num(r.vias) << ",\"cost\":" << num(r.cost)
       << ",\"durNs\":" << r.durNs << ",\"dWlPct\":" << num(r.dWlPct)
       << ",\"dVias\":" << num(r.dVias) << ",\"dCostPct\":" << num(r.dCostPct)
       << ",\"dRuntimePct\":" << num(r.dRuntimePct) << "}";
  }
  os << "],\"tasks\":[";
  first = true;
  for (const AttributedTask& t : report.tasks) {
    if (!first) os << ",";
    first = false;
    os << "{\"clip\":\"" << jsonl::escape(t.clip) << "\""
       << ",\"rule\":\"" << jsonl::escape(t.rule) << "\""
       << ",\"tech\":\"" << jsonl::escape(t.tech) << "\""
       << ",\"status\":\"" << jsonl::escape(t.status) << "\""
       << ",\"provenance\":\"" << jsonl::escape(t.provenance) << "\""
       << ",\"cost\":" << num(t.cost) << ",\"wirelength\":" << num(t.wirelength)
       << ",\"vias\":" << num(t.vias) << ",\"bestBound\":" << num(t.bestBound)
       << ",\"durNs\":" << t.durNs << "}";
  }
  os << "],\"notes\":[";
  first = true;
  for (const std::string& n : report.notes) {
    if (!first) os << ",";
    first = false;
    os << "\"" << jsonl::escape(n) << "\"";
  }
  os << "]}";
  return os.str();
}

StatusOr<std::vector<std::string>> verifyJoin(
    const AttributionReport& report, const std::string& checkpointPath) {
  std::ifstream in(checkpointPath);
  if (!in) {
    return Status::error(ErrorCode::kIo,
                         "cannot open checkpoint: " + checkpointPath);
  }
  // Later rows win: a resumed checkpoint may re-append a task's final row.
  struct CkptRow {
    std::string status;
    double cost = 0, wirelength = 0, vias = 0;
    bool hasNumbers = false;
  };
  std::map<std::pair<std::string, std::string>, CkptRow> truth;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string clip, rule;
    if (!jsonl::getString(line, "clip", clip) ||
        !jsonl::getString(line, "rule", rule)) {
      continue;  // foreign or torn line; the batch loader skips these too
    }
    CkptRow row;
    jsonl::getString(line, "status", row.status);
    row.hasNumbers = jsonl::getNumber(line, "cost", row.cost);
    jsonl::getNumber(line, "wirelength", row.wirelength);
    jsonl::getNumber(line, "vias", row.vias);
    truth[{clip, rule}] = row;
  }

  std::vector<std::string> mismatches;
  std::map<std::pair<std::string, std::string>, const AttributedTask*> traced;
  for (const AttributedTask& t : report.tasks) {
    traced[{t.clip, t.rule}] = &t;
  }
  for (const auto& [key, row] : truth) {
    auto it = traced.find(key);
    const std::string label = key.first + "|" + key.second;
    if (it == traced.end()) {
      mismatches.push_back("checkpoint task " + label + " missing from trace");
      continue;
    }
    const AttributedTask& t = *it->second;
    if (!t.status.empty() && t.status != row.status) {
      mismatches.push_back("status mismatch for " + label + ": trace " +
                           t.status + " vs checkpoint " + row.status);
      continue;
    }
    const bool solved = row.status == "optimal" || row.status == "feasible";
    if (!solved || !row.hasNumbers) continue;  // no objective to compare
    if (num(t.cost) != num(row.cost)) {
      mismatches.push_back("cost mismatch for " + label + ": trace " +
                           num(t.cost) + " vs checkpoint " + num(row.cost));
    }
    if (t.hasObjective && num(t.wirelength) != num(row.wirelength)) {
      mismatches.push_back("wirelength mismatch for " + label + ": trace " +
                           num(t.wirelength) + " vs checkpoint " +
                           num(row.wirelength));
    }
    if (t.hasObjective && num(t.vias) != num(row.vias)) {
      mismatches.push_back("vias mismatch for " + label + ": trace " +
                           num(t.vias) + " vs checkpoint " + num(row.vias));
    }
  }
  for (const auto& [key, t] : traced) {
    (void)t;
    if (truth.find(key) == truth.end()) {
      mismatches.push_back("trace task " + key.first + "|" + key.second +
                           " missing from checkpoint");
    }
  }
  return mismatches;
}

}  // namespace optr::report
