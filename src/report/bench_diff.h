// Bench-trajectory regression tracking: diff two BENCH_*.json snapshots
// (bench_runtime / bench_lp / bench_sweep / bench_fleet) and fail on
// configurable pivot/wall/cost regressions. This is the library behind
// tools/bench_compare, which replaces the ad-hoc python gate that used to
// live inline in run_perf_smoke.sh.
//
// The BENCH files are nested JSON, so unlike the flat JSONL helpers this
// carries a real (but still dependency-free, hand-rolled) recursive parser.
// Raw number tokens are preserved so "byte-equal proven cost" is checked on
// the bytes, not on a double round-trip.
//
// Comparison model: a snapshot is a set of *units* -- entries of the
// top-level "passes" (keyed by "mode") or "configs" (keyed by "config")
// array -- each optionally carrying *tasks* ("clips" keyed name+rule, or
// "tasks" keyed clip+rule) and aggregate counters (registry.lpPivots /
// pivots / wallMs). Rules:
//   * Units and tasks are matched by key; one-sided entries are notes, and
//     make the unit ineligible for the pivot gate (the work differs).
//   * A task proven by BOTH sides (optimal/infeasible) must agree on
//     status, cost, and bestBound byte-for-byte: always a failure.
//   * Pivot totals are gated (default >10% growth fails) only for
//     deterministic units -- mipThreads absent or <= 1 on both sides --
//     whose proven task sets fully matched. Parallel B&B pivot counts are
//     scheduling noise, exactly as the old smoke gate treated them.
//   * Wall time is opt-in (maxWallRegress < 0 disables), because CI boxes
//     are noisy; pivots are the portable cost proxy.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace optr::report {

/// Parsed JSON value. Numbers keep their raw source token in `raw`.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;  // string payload
  std::string raw;  // raw number token, for byte-equality
  std::vector<std::pair<std::string, JsonValue>> members;  // object
  std::vector<JsonValue> items;                            // array

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : members)
      if (k == key) return &v;
    return nullptr;
  }
  double num(std::string_view key, double fallback = 0.0) const {
    const JsonValue* v = find(key);
    return v && v->kind == Kind::kNumber ? v->number : fallback;
  }
  std::string text(std::string_view key,
                   const std::string& fallback = {}) const {
    const JsonValue* v = find(key);
    return v && v->kind == Kind::kString ? v->str : fallback;
  }
  bool has(std::string_view key) const { return find(key) != nullptr; }
};

/// Full-document recursive-descent parse; kParse with a byte offset on
/// malformed input.
StatusOr<JsonValue> parseJson(std::string_view text);

/// Convenience: read + parse a file.
StatusOr<JsonValue> loadJsonFile(const std::string& path);

struct BenchCompareOptions {
  /// Max allowed relative pivot growth for deterministic units
  /// ((cand - base) / base); negative disables the gate.
  double maxPivotRegress = 0.10;
  /// Max allowed relative wallMs growth; negative (default) disables.
  double maxWallRegress = -1.0;
  /// bench_service self-check: minimum required cache hot-speedup
  /// (mean cold latency / mean hit latency). Negative (default) makes the
  /// speedup informational only -- latency gates are opt-in because CI wall
  /// clocks are noisy; the byte-equality and hit-rate gates always run.
  double minHotSpeedup = -1.0;
};

struct BenchCompareResult {
  std::vector<std::string> failures;  // any entry = regression, exit 1
  std::vector<std::string> notes;     // informational / skipped gates
  int unitsCompared = 0;
  int tasksCompared = 0;
  bool ok() const { return failures.empty(); }
};

/// Diffs candidate against baseline per the model above.
BenchCompareResult compareBench(const JsonValue& baseline,
                                const JsonValue& candidate,
                                const BenchCompareOptions& options = {});

/// Intra-file invariants for one snapshot. For bench_runtime this is the
/// work-conservation gate the smoke script used to run in python: the
/// clip-parallel pass must match the serial pass exactly on
/// lpPivots/ilpPivots/nodes/routeSolves, mip-parallel must match on
/// routeSolves and stay within 4x on lpPivots/nodes, and every task proven
/// optimal by two passes must agree on cost. For bench_service it is the
/// cache-correctness contract: every task proven in both the cold and the
/// cached pass must agree byte-for-byte on status/cost/bestBound, the
/// recorded equivalenceMismatches must be zero, the cached pass must have
/// hit (cacheHitRate > 0), and saturation must have produced typed rejects
/// (saturatedRejects > 0); options.minHotSpeedup adds the opt-in latency
/// gate. Other benchmarks have no self-check and return a note saying so.
BenchCompareResult selfCheckBench(const JsonValue& doc,
                                  const BenchCompareOptions& options = {});

}  // namespace optr::report
