// Plain-text table and figure-series rendering for the bench harness.
//
// Every reproduced table/figure prints through these helpers so the output
// is uniform, aligned, and easy to diff across runs (EXPERIMENTS.md records
// the emitted blocks verbatim).
#pragma once

#include <string>
#include <vector>

namespace optr::report {

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void addRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders with column alignment and a header separator.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// A figure reproduced as text: named series of y-values over a shared
/// x-axis (e.g. sorted delta-cost per clip index, Figure 10).
class Series {
 public:
  Series(std::string title, std::string xLabel, std::string yLabel)
      : title_(std::move(title)),
        xLabel_(std::move(xLabel)),
        yLabel_(std::move(yLabel)) {}

  void add(const std::string& name, std::vector<double> ys) {
    series_.push_back({name, std::move(ys)});
  }

  /// Renders each series as a row of values plus a coarse ASCII sparkline
  /// (so the figure's shape is visible in a terminal).
  std::string render(int maxPoints = 24) const;

 private:
  struct Entry {
    std::string name;
    std::vector<double> ys;
  };
  std::string title_, xLabel_, yLabel_;
  std::vector<Entry> series_;
};

}  // namespace optr::report
