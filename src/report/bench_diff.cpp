#include "report/bench_diff.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace optr::report {

namespace {

// ---- recursive-descent JSON parser ---------------------------------------

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at byte " + std::to_string(pos);
    }
    return false;
  }

  void skipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  bool match(char c) {
    skipWs();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool parseString(std::string& out) {
    skipWs();
    if (pos >= text.size() || text[pos] != '"') return fail("expected string");
    ++pos;
    out.clear();
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\' && pos < text.size()) {
        char e = text[pos++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("bad \\u escape");
            unsigned code = static_cast<unsigned>(
                std::strtoul(std::string(text.substr(pos, 4)).c_str(),
                             nullptr, 16));
            out += static_cast<char>(code);  // ASCII subset is all we emit
            pos += 4;
            break;
          }
          default: out += e;
        }
        continue;
      }
      out += c;
    }
    return fail("unterminated string");
  }

  bool parseValue(JsonValue& out) {
    skipWs();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out.kind = JsonValue::Kind::kObject;
      skipWs();
      if (match('}')) return true;
      while (true) {
        std::string key;
        if (!parseString(key)) return false;
        if (!match(':')) return fail("expected ':'");
        JsonValue v;
        if (!parseValue(v)) return false;
        out.members.emplace_back(std::move(key), std::move(v));
        if (match(',')) continue;
        if (match('}')) return true;
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out.kind = JsonValue::Kind::kArray;
      skipWs();
      if (match(']')) return true;
      while (true) {
        JsonValue v;
        if (!parseValue(v)) return false;
        out.items.push_back(std::move(v));
        if (match(',')) continue;
        if (match(']')) return true;
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parseString(out.str);
    }
    if (text.compare(pos, 4, "true") == 0) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      pos += 4;
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      out.kind = JsonValue::Kind::kBool;
      pos += 5;
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      pos += 4;
      return true;  // kind stays kNull
    }
    // Number: take the maximal token, keep the raw bytes.
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E'))
      ++pos;
    if (pos == start) return fail("unexpected character");
    out.kind = JsonValue::Kind::kNumber;
    out.raw = std::string(text.substr(start, pos - start));
    out.number = std::strtod(out.raw.c_str(), nullptr);
    return true;
  }
};

// ---- comparison helpers --------------------------------------------------

struct Unit {
  std::string key;          // "mode" or "config" value
  const JsonValue* value = nullptr;
};

// BENCH docs carry units in "passes" (keyed "mode") or "configs" (keyed
// "config"); returns them in file order.
std::vector<Unit> unitsOf(const JsonValue& doc) {
  std::vector<Unit> out;
  for (const char* arrayKey : {"passes", "configs"}) {
    const JsonValue* arr = doc.find(arrayKey);
    if (!arr || arr->kind != JsonValue::Kind::kArray) continue;
    for (const JsonValue& u : arr->items) {
      Unit unit;
      unit.key = u.text("mode", u.text("config"));
      unit.value = &u;
      out.push_back(std::move(unit));
    }
  }
  return out;
}

struct Task {
  std::string key;  // clip|rule
  std::string status;
  std::string costRaw;
  std::string boundRaw;
};

std::vector<Task> tasksOf(const JsonValue& unit) {
  std::vector<Task> out;
  for (const char* arrayKey : {"clips", "tasks"}) {
    const JsonValue* arr = unit.find(arrayKey);
    if (!arr || arr->kind != JsonValue::Kind::kArray) continue;
    for (const JsonValue& t : arr->items) {
      Task task;
      task.key = t.text("name", t.text("clip")) + "|" + t.text("rule");
      task.status = t.text("status");
      if (const JsonValue* c = t.find("cost")) task.costRaw = c->raw;
      if (const JsonValue* b = t.find("bestBound")) task.boundRaw = b->raw;
      out.push_back(std::move(task));
    }
  }
  return out;
}

bool proven(const std::string& status) {
  return status == "optimal" || status == "infeasible";
}

// A unit's pivot total: the obs registry's lpPivots when present
// (bench_runtime/bench_sweep style), else a top-level "pivots" (bench_lp).
double pivotsOf(const JsonValue& unit, bool& found) {
  if (const JsonValue* reg = unit.find("registry")) {
    if (reg->has("lpPivots")) {
      found = true;
      return reg->num("lpPivots");
    }
  }
  if (unit.has("pivots")) {
    found = true;
    return unit.num("pivots");
  }
  found = false;
  return 0.0;
}

bool deterministicUnit(const JsonValue& unit) {
  return unit.num("mipThreads", 1.0) <= 1.0;
}

std::string rel(double base, double cand) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%+.1f%%", 100.0 * (cand - base) / base);
  return buf;
}

}  // namespace

StatusOr<JsonValue> parseJson(std::string_view text) {
  Parser p;
  p.text = text;
  JsonValue out;
  if (!p.parseValue(out)) {
    return Status::error(ErrorCode::kParse, "json: " + p.error);
  }
  p.skipWs();
  if (p.pos != text.size()) {
    return Status::error(ErrorCode::kParse,
                         "json: trailing data at byte " +
                             std::to_string(p.pos));
  }
  return out;
}

StatusOr<JsonValue> loadJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::error(ErrorCode::kIo, "cannot open: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = parseJson(buf.str());
  if (!parsed.isOk()) {
    return Status::error(parsed.status().code(),
                         path + ": " + parsed.status().message());
  }
  return parsed;
}

BenchCompareResult compareBench(const JsonValue& baseline,
                                const JsonValue& candidate,
                                const BenchCompareOptions& options) {
  BenchCompareResult res;
  const std::string baseName = baseline.text("benchmark");
  const std::string candName = candidate.text("benchmark");
  if (baseName != candName) {
    res.failures.push_back("benchmark mismatch: baseline '" + baseName +
                           "' vs candidate '" + candName + "'");
    return res;
  }

  std::map<std::string, const JsonValue*> candUnits;
  for (const Unit& u : unitsOf(candidate)) candUnits[u.key] = u.value;
  std::set<std::string> seen;
  for (const Unit& bu : unitsOf(baseline)) {
    auto it = candUnits.find(bu.key);
    if (it == candUnits.end()) {
      res.notes.push_back("unit '" + bu.key + "' only in baseline; skipped");
      continue;
    }
    seen.insert(bu.key);
    const JsonValue& bunit = *bu.value;
    const JsonValue& cunit = *it->second;
    ++res.unitsCompared;

    // ---- task-level proven equality (always a hard gate) ----
    std::map<std::string, Task> candTasks;
    for (Task& t : tasksOf(cunit)) candTasks[t.key] = std::move(t);
    bool comparable = true;  // proven sets matched, no one-sided tasks
    for (const Task& bt : tasksOf(bunit)) {
      auto ct = candTasks.find(bt.key);
      if (ct == candTasks.end()) {
        res.notes.push_back("unit '" + bu.key + "': task " + bt.key +
                            " only in baseline");
        comparable = false;
        continue;
      }
      ++res.tasksCompared;
      const Task& cand = ct->second;
      if (proven(bt.status) && proven(cand.status)) {
        if (bt.status != cand.status) {
          res.failures.push_back("unit '" + bu.key + "': " + bt.key +
                                 " proven status changed " + bt.status +
                                 " -> " + cand.status);
          comparable = false;
        } else if (bt.status == "optimal" && bt.costRaw != cand.costRaw) {
          res.failures.push_back("unit '" + bu.key + "': " + bt.key +
                                 " proven cost changed " + bt.costRaw +
                                 " -> " + cand.costRaw);
          comparable = false;
        } else if (bt.status == "optimal" && !bt.boundRaw.empty() &&
                   !cand.boundRaw.empty() && bt.boundRaw != cand.boundRaw) {
          res.failures.push_back("unit '" + bu.key + "': " + bt.key +
                                 " proven bound changed " + bt.boundRaw +
                                 " -> " + cand.boundRaw);
          comparable = false;
        }
      } else if (proven(bt.status) != proven(cand.status)) {
        res.notes.push_back("unit '" + bu.key + "': " + bt.key +
                            " proven on one side only (" + bt.status +
                            " vs " + cand.status + ")");
        comparable = false;
      }
      candTasks.erase(ct);
    }
    for (const auto& [key, t] : candTasks) {
      (void)t;
      res.notes.push_back("unit '" + bu.key + "': task " + key +
                          " only in candidate");
      comparable = false;
    }

    // ---- pivot gate: deterministic units with fully-matched work ----
    bool bFound = false, cFound = false;
    const double bPivots = pivotsOf(bunit, bFound);
    const double cPivots = pivotsOf(cunit, cFound);
    if (options.maxPivotRegress >= 0 && bFound && cFound && bPivots > 0) {
      if (!deterministicUnit(bunit) || !deterministicUnit(cunit)) {
        res.notes.push_back("unit '" + bu.key +
                            "': pivot gate skipped (mip-parallel pivots are "
                            "scheduling-dependent)");
      } else if (!comparable) {
        res.notes.push_back("unit '" + bu.key +
                            "': pivot gate skipped (task sets not "
                            "comparable)");
      } else if (cPivots > bPivots * (1.0 + options.maxPivotRegress)) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.0f%%",
                      100.0 * options.maxPivotRegress);
        res.failures.push_back(
            "unit '" + bu.key + "': pivot regression " + rel(bPivots, cPivots) +
            " (" + std::to_string(static_cast<long long>(bPivots)) + " -> " +
            std::to_string(static_cast<long long>(cPivots)) +
            ", limit +" + buf + ") at equal proven costs");
      } else {
        res.notes.push_back("unit '" + bu.key + "': pivot gate OK (" +
                            rel(bPivots, cPivots) + ")");
      }
    }

    // ---- wall gate: opt-in ----
    const double bWall = bunit.num("wallMs", -1.0);
    const double cWall = cunit.num("wallMs", -1.0);
    if (options.maxWallRegress >= 0 && bWall > 0 && cWall > 0 &&
        cWall > bWall * (1.0 + options.maxWallRegress)) {
      res.failures.push_back("unit '" + bu.key + "': wall regression " +
                             rel(bWall, cWall));
    }
  }
  for (const auto& [key, u] : candUnits) {
    (void)u;
    if (seen.find(key) == seen.end()) {
      res.notes.push_back("unit '" + key + "' only in candidate; skipped");
    }
  }
  if (res.unitsCompared == 0) {
    res.failures.push_back("no comparable units between the two snapshots");
  }
  return res;
}

namespace {

// bench_service invariants: the committed snapshot must prove the cache
// contract on its own -- cold/cached passes byte-agree on every doubly
// proven task, the run itself saw zero equivalence mismatches, the cached
// pass actually hit, and the saturation phase produced typed rejects. The
// hot-speedup latency gate is opt-in (options.minHotSpeedup >= 0): wall
// clocks are machine noise, bytes are not.
BenchCompareResult selfCheckService(const JsonValue& doc,
                                    const BenchCompareOptions& options) {
  BenchCompareResult res;
  std::map<std::string, const JsonValue*> passes;
  for (const Unit& u : unitsOf(doc)) passes[u.key] = u.value;
  auto cold = passes.find("cold");
  auto cached = passes.find("cached");
  if (cold == passes.end() || cached == passes.end()) {
    res.failures.push_back(
        "bench_service snapshot must carry both a 'cold' and a 'cached' "
        "pass");
    return res;
  }
  ++res.unitsCompared;

  std::map<std::string, Task> hotTasks;
  for (Task& t : tasksOf(*cached->second)) hotTasks[t.key] = std::move(t);
  int provenBoth = 0;
  for (const Task& bt : tasksOf(*cold->second)) {
    auto it = hotTasks.find(bt.key);
    if (it == hotTasks.end()) {
      res.failures.push_back("task " + bt.key +
                             " solved cold but absent from the cached pass");
      continue;
    }
    ++res.tasksCompared;
    const Task& ht = it->second;
    if (!proven(bt.status) || !proven(ht.status)) continue;
    ++provenBoth;
    if (bt.status != ht.status) {
      res.failures.push_back("task " + bt.key + " proven status changed " +
                             bt.status + " -> " + ht.status +
                             " between cold solve and cached replay");
    } else if (bt.costRaw != ht.costRaw) {
      res.failures.push_back("task " + bt.key + " cached cost " + ht.costRaw +
                             " != cold " + bt.costRaw +
                             " (replay must be byte-identical)");
    } else if (!bt.boundRaw.empty() && bt.boundRaw != ht.boundRaw) {
      res.failures.push_back("task " + bt.key + " cached bound " +
                             ht.boundRaw + " != cold " + bt.boundRaw);
    }
  }
  if (provenBoth == 0) {
    res.failures.push_back(
        "no task proven in both passes -- the replay byte gate is vacuous");
  }
  if (doc.num("equivalenceMismatches", -1.0) != 0.0) {
    res.failures.push_back(
        "snapshot recorded equivalenceMismatches != 0 (full reply "
        "signatures diverged between solve and replay)");
  }
  if (doc.num("cacheHitRate") <= 0.0) {
    res.failures.push_back("cacheHitRate is 0: the cached pass never hit");
  }
  if (doc.num("saturatedRejects") <= 0.0) {
    res.failures.push_back(
        "saturatedRejects is 0: the saturation phase produced no typed "
        "rejects");
  }
  const double speedup = doc.num("hotSpeedup");
  if (options.minHotSpeedup >= 0 && speedup < options.minHotSpeedup) {
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "hotSpeedup %.1fx below required %.1fx", speedup,
                  options.minHotSpeedup);
    res.failures.push_back(buf);
  } else {
    char buf[64];
    std::snprintf(buf, sizeof buf, "cache hot speedup %.0fx", speedup);
    res.notes.push_back(buf);
  }
  return res;
}

}  // namespace

BenchCompareResult selfCheckBench(const JsonValue& doc,
                                  const BenchCompareOptions& options) {
  BenchCompareResult res;
  if (doc.text("benchmark") == "bench_service") {
    return selfCheckService(doc, options);
  }
  if (doc.text("benchmark") != "bench_runtime") {
    res.notes.push_back("no self-check defined for benchmark '" +
                        doc.text("benchmark") + "'");
    return res;
  }
  std::map<std::string, const JsonValue*> passes;
  for (const Unit& u : unitsOf(doc)) passes[u.key] = u.value;
  auto ser = passes.find("serial");
  auto clip = passes.find("clip-parallel");
  auto mip = passes.find("mip-parallel");
  if (ser == passes.end() || clip == passes.end() || mip == passes.end()) {
    res.notes.push_back(
        "self-check skipped: serial/clip-parallel/mip-parallel passes not "
        "all present");
    return res;
  }
  const JsonValue* serReg = ser->second->find("registry");
  const JsonValue* clipReg = clip->second->find("registry");
  const JsonValue* mipReg = mip->second->find("registry");
  if (!serReg || !clipReg || !mipReg) {
    res.notes.push_back("self-check skipped: no registry fields");
    return res;
  }
  if (serReg->num("routeSolves") == 0 && serReg->num("lpPivots") == 0) {
    res.notes.push_back(
        "metrics registry empty (OPTR_OBS disabled build); "
        "work-conservation check skipped");
    return res;
  }
  ++res.unitsCompared;
  // Clip threading changes scheduling between tasks, never inside one, so
  // the clip-parallel pass must do exactly the serial pass's work.
  for (const char* key : {"lpPivots", "ilpPivots", "nodes", "routeSolves"}) {
    const double s = serReg->num(key), c = clipReg->num(key);
    if (s != c) {
      res.failures.push_back(
          std::string("clip-parallel ") + key + " " +
          std::to_string(static_cast<long long>(c)) + " != serial " +
          std::to_string(static_cast<long long>(s)) +
          " (threading must not change per-task work)");
    }
  }
  // Parallel B&B explores a scheduling-dependent tree: exact solve count,
  // generous ratio bound on the work totals.
  if (mipReg->num("routeSolves") != serReg->num("routeSolves")) {
    res.failures.push_back(
        "mip-parallel routeSolves " +
        std::to_string(static_cast<long long>(mipReg->num("routeSolves"))) +
        " != serial " +
        std::to_string(static_cast<long long>(serReg->num("routeSolves"))));
  }
  for (const char* key : {"lpPivots", "nodes"}) {
    const double s = serReg->num(key), m = mipReg->num(key);
    if (s > 0 && !(s / 4 <= m && m <= s * 4)) {
      res.failures.push_back(std::string("mip-parallel ") + key + " " +
                             std::to_string(static_cast<long long>(m)) +
                             " outside 4x of serial " +
                             std::to_string(static_cast<long long>(s)) +
                             " -- parallel B&B doing pathological work");
    }
  }
  // Cross-pass objective agreement on doubly-proven tasks.
  std::map<std::string, std::pair<std::string, std::string>> costs;
  for (const auto& [mode, pass] : passes) {
    for (const Task& t : tasksOf(*pass)) {
      ++res.tasksCompared;
      if (t.status != "optimal") continue;
      auto it = costs.find(t.key);
      if (it == costs.end()) {
        costs[t.key] = {mode, t.costRaw};
      } else if (it->second.second != t.costRaw) {
        res.failures.push_back("task " + t.key + " proven cost diverges: " +
                               it->second.first + "=" + it->second.second +
                               " vs " + mode + "=" + t.costRaw);
      }
    }
  }
  return res;
}

}  // namespace optr::report
