// Rule-impact attribution: the paper's Table 5, mined from traces.
//
// The paper's headline analysis attributes wirelength / via-count / runtime
// cost to individual BEOL design rules per technology (Table 5). PR 3's
// TraceSession records every route.solve span; with schema v2 those spans
// carry structured attrs (clip, rule, tech, status, provenance) and args
// (cost, wl, vias, bound), so the whole report can be joined offline from a
// trace -- including a trace merged from independent fleet-worker files
// (obs::mergeTraces) -- with no access to the original clip set.
//
// Join contract: one route.solve span per (clip, rule, tech) task. Repeats
// (re-solves after lease reassignment, warm-start reference solves) keep the
// first occurrence and are counted in `notes`. Deltas compare each rule's
// task set against the baseline rule over the clips *both* solved, so a rule
// that makes a clip infeasible shows up in `infeasible`, not as a skewed
// average. v1 traces (detail "clip|rule", cost arg only) still join, minus
// the wirelength/via split.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace_read.h"

namespace optr::report {

struct AttributionOptions {
  /// Rule whose outcomes are the deltas' reference (paper: RULE1-only set).
  std::string baselineRule = "RULE1";
};

/// One routed task mined from a route.solve span.
struct AttributedTask {
  std::string clip;
  std::string rule;
  std::string tech;
  std::string status;      // optimal / feasible / infeasible / ...
  std::string provenance;  // ilp-proven / ilp-incumbent / maze-fallback
  double cost = 0.0;
  double wirelength = 0.0;
  double vias = 0.0;
  double bestBound = 0.0;
  std::int64_t durNs = 0;
  bool hasObjective = false;  // status carries a routed solution

  bool hasSolution() const {
    return status == "optimal" || status == "feasible";
  }
};

/// One Table 5 row: a rule x technology cell vs the baseline rule.
struct AttributionRow {
  std::string rule;
  std::string tech;
  int clips = 0;       // tasks joined with a baseline outcome
  int solved = 0;      // of those, routed under this rule
  int infeasible = 0;  // proven unroutable under this rule
  int unresolved = 0;  // error / deadline / unknown
  // Sums over the joined-and-solved clips (this rule / baseline).
  double wl = 0.0, baseWl = 0.0;
  double vias = 0.0, baseVias = 0.0;
  double cost = 0.0, baseCost = 0.0;
  std::int64_t durNs = 0, baseDurNs = 0;  // over all joined clips
  // Deltas vs baseline: percentages where the paper reports percentages.
  double dWlPct = 0.0;
  double dVias = 0.0;
  double dCostPct = 0.0;
  double dRuntimePct = 0.0;
};

struct AttributionReport {
  std::string baselineRule;
  std::vector<AttributedTask> tasks;  // deduped, first-seen order
  std::vector<AttributionRow> rows;   // tech-major, rule first-seen order
  std::vector<std::string> notes;     // duplicates, missing baselines, v1
};

/// Builds the Table 5 join from parsed trace entries (one file or a merged
/// fleet set).
AttributionReport attributeRules(const std::vector<obs::TraceEntry>& entries,
                                 const AttributionOptions& options = {});

/// Plain-text rendering (report::Table) of rows + notes.
std::string renderAttributionText(const AttributionReport& report);

/// JSON document: {"report":"table5","baseline":...,"rows":[...],
/// "tasks":[...]}. Numbers are formatted exactly like the batch checkpoint
/// rows (operator<< default precision), so a task objective here is
/// byte-identical to the same task's "cost" in the sweep's JSONL results.
std::string attributionToJson(const AttributionReport& report);

/// Verifies the trace join is lossless against the ground-truth sweep
/// results: every checkpoint row (batch/sweep JSONL at `checkpointPath`)
/// must appear in `report` with byte-identical cost/wirelength/vias and
/// matching status, and vice versa every trace task must be in the
/// checkpoint. Returns the list of mismatches (empty = lossless).
StatusOr<std::vector<std::string>> verifyJoin(const AttributionReport& report,
                                              const std::string& checkpointPath);

}  // namespace optr::report
