#include "core/opt_router.h"

namespace optr::core {

const char* toString(RouteStatus s) {
  switch (s) {
    case RouteStatus::kOptimal: return "optimal";
    case RouteStatus::kFeasible: return "feasible";
    case RouteStatus::kInfeasible: return "infeasible";
    case RouteStatus::kUnknown: return "unknown";
    case RouteStatus::kError: return "error";
  }
  return "?";
}

OptRouter::OptRouter(const tech::Technology& techn,
                     const tech::RuleConfig& rule, OptRouterOptions options)
    : tech_(techn), rule_(rule), options_(options) {}

RouteResult OptRouter::route(const clip::Clip& clip) const {
  RouteResult result;
  Status valid = clip.validate();
  if (!valid) return result;  // kError

  grid::RoutingGraph graph(clip, tech_, rule_);
  Formulation formulation(clip, graph, options_.formulation);

  ilp::MipSolver mip(formulation.model(), formulation.integrality(),
                     options_.mip);
  mip.setLazySeparator(formulation.separator());

  // Warm start: route heuristically within the same per-net arc regions;
  // only a DRC-clean solution may seed the exact search (the MIP trusts the
  // incumbent's rule feasibility).
  route::MazeResult heuristic;
  if (options_.warmStart) {
    route::MazeOptions mo = options_.mazeOptions;
    mo.arcFilter = [&formulation](int net, int arc) {
      return formulation.arcAvailableTo(net, arc);
    };
    route::MazeRouter maze(clip, graph, mo);
    heuristic = maze.route();
    if (heuristic.success) {
      std::vector<double> seed = formulation.encode(heuristic.solution);
      if (!seed.empty() && mip.setInitialIncumbent(seed)) {
        result.warmStartUsed = true;
      }
    }
  }

  ilp::MipResult mr = mip.solve();
  result.seconds = mr.seconds;
  result.nodes = mr.nodes;
  result.lpIterations = mr.lpIterations;
  result.lazyRows = mr.lazyRowsAdded;
  result.bestBound = mr.bestBound;
  result.formulationStats = formulation.stats();

  switch (mr.status) {
    case ilp::MipStatus::kOptimal:
      result.status = RouteStatus::kOptimal;
      break;
    case ilp::MipStatus::kFeasibleLimit:
      result.status = RouteStatus::kFeasible;
      break;
    case ilp::MipStatus::kInfeasible:
      result.status = RouteStatus::kInfeasible;
      break;
    case ilp::MipStatus::kNoSolutionLimit:
      result.status = RouteStatus::kUnknown;
      break;
    case ilp::MipStatus::kError:
      result.status = RouteStatus::kError;
      break;
  }
  if (!mr.hasSolution()) {
    // Last resort: if the exact search timed out without a conclusion but
    // the heuristic produced a DRC-clean routing, a rule-correct solution
    // does exist -- report it as feasible (not proven optimal).
    if (result.status == RouteStatus::kUnknown && heuristic.success) {
      result.status = RouteStatus::kFeasible;
      result.solution = heuristic.solution;
      result.cost = result.solution.totalCost(graph);
      result.wirelength = result.solution.wirelength(graph);
      result.vias = result.solution.viaCount(graph);
    }
    return result;
  }

  result.solution = formulation.extractSolution(mr.x);
  result.cost = result.solution.totalCost(graph);
  result.wirelength = result.solution.wirelength(graph);
  result.vias = result.solution.viaCount(graph);

  // Paranoia: an "optimal" answer must be rule-clean. A violation here means
  // a separation gap -- downgrade to error loudly rather than report a wrong
  // optimum.
  route::DrcChecker drc(clip, graph);
  if (!drc.check(result.solution).empty()) {
    result.status = RouteStatus::kError;
  }
  return result;
}

}  // namespace optr::core
