#include "core/opt_router.h"

#include <chrono>
#include <utility>

#include "core/clip_session.h"
#include "obs/trace.h"

namespace optr::core {

const char* toString(RouteStatus s) {
  switch (s) {
    case RouteStatus::kOptimal: return "optimal";
    case RouteStatus::kFeasible: return "feasible";
    case RouteStatus::kInfeasible: return "infeasible";
    case RouteStatus::kUnknown: return "unknown";
    case RouteStatus::kError: return "error";
  }
  return "?";
}

const char* toString(Provenance p) {
  switch (p) {
    case Provenance::kNone: return "none";
    case Provenance::kIlpProven: return "ilp-proven";
    case Provenance::kIlpIncumbent: return "ilp-incumbent";
    case Provenance::kMazeFallback: return "maze-fallback";
  }
  return "?";
}

std::optional<Provenance> provenanceFromString(const std::string& s) {
  for (Provenance p : {Provenance::kNone, Provenance::kIlpProven,
                       Provenance::kIlpIncumbent, Provenance::kMazeFallback}) {
    if (s == toString(p)) return p;
  }
  return std::nullopt;
}

const char* toString(WarmStartKind k) {
  switch (k) {
    case WarmStartKind::kNone: return "none";
    case WarmStartKind::kMaze: return "maze";
    case WarmStartKind::kCrossRule: return "cross-rule";
  }
  return "?";
}

OptRouter::OptRouter(const tech::Technology& techn,
                     const tech::RuleConfig& rule, OptRouterOptions options)
    : tech_(techn), rule_(rule), options_(options) {}

namespace {

/// The observability tail every route() shares: span attrs + args (the
/// structured join keys the Table 5 attribution engine reads), the ladder
/// event, provenance counters, the solve-latency histogram, and the trace
/// flush (a finished clip solve is the natural flush boundary -- rings
/// drain while their content is one coherent solve, and a fork-isolated
/// child gets its records out before _exit).
void finishEnvelope(obs::Span& span, const RouteResult& result,
                    const std::string& clipId, const std::string& ruleName,
                    const std::string& techName, double solveMs) {
  span.attr("clip", clipId);
  span.attr("rule", ruleName);
  span.attr("tech", techName);
  span.attr("status", toString(result.status));
  span.attr("provenance", toString(result.provenance));
  span.arg("nodes", static_cast<double>(result.nodes));
  span.arg("pivots", static_cast<double>(result.lpIterations));
  span.arg("cost", result.cost);
  span.arg("wl", static_cast<double>(result.wirelength));
  span.arg("vias", static_cast<double>(result.vias));
  span.arg("bound", result.bestBound);
  obs::event("route.ladder", toString(result.provenance),
             {{"status", static_cast<double>(result.status)},
              {"error", static_cast<double>(result.error.code())}});
  auto& m = obs::metrics();
  m.counter("route.solves").add();
  m.counter(std::string("route.status.") + toString(result.status)).add();
  m.counter(std::string("route.provenance.") + toString(result.provenance))
      .add();
  static obs::Histogram& hSolveMs =
      obs::metrics().histogram("route.solve_ms");
  hSolveMs.record(solveMs);
  span.end();
  obs::TraceSession::flushAll();
}

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

// The degradation ladder. Every rung yields an honest result: the status
// says what is proven, `provenance` says where the solution came from, and
// `error` says why anything below kIlpProven happened.
//   rung 0  ILP proven optimal / proven infeasible          (kIlpProven)
//   rung 1  MIP retries a numerically-failed node once from a fresh
//           factorization with Bland's rule forced          (inside MipSolver)
//   rung 2  limit or unrecovered failure: fall back to the best validated
//           incumbent                                        (kIlpIncumbent)
//   rung 3  no incumbent (or it fails DRC): fall back to the maze router's
//           DRC-clean solution                               (kMazeFallback)
//   rung 4  nothing DRC-clean exists: kUnknown / kError, never a dirty
//           solution.
RouteResult OptRouter::route(const clip::Clip& clip) const {
  obs::Span span("route.solve");
  span.detail(clip.id + "|" + rule_.name);
  const auto t0 = std::chrono::steady_clock::now();
  RouteResult result = routeImpl(clip);
  finishEnvelope(span, result, clip.id, rule_.name, tech_.name, msSince(t0));
  return result;
}

RouteResult OptRouter::route(ClipSession& session,
                             const tech::RuleConfig& rule) const {
  obs::Span span("route.solve");
  span.detail(session.clip().id + "|" + rule.name);
  const auto t0 = std::chrono::steady_clock::now();
  RouteResult result = routeImpl(session, rule);
  finishEnvelope(span, result, session.clip().id, rule.name, tech_.name,
                 msSince(t0));
  return result;
}

RouteResult OptRouter::routeImpl(const clip::Clip& clip) const {
  RouteResult result;
  Status valid = clip.validate();
  if (!valid) {
    result.error = valid;
    return result;  // kError
  }

  obs::Span formulateSpan("route.formulate");
  grid::RoutingGraph graph(clip, tech_, rule_);
  Formulation formulation(clip, graph, options_.formulation);
  formulateSpan.arg("cols", static_cast<double>(formulation.model().numCols()));
  formulateSpan.arg("rows", static_cast<double>(formulation.model().numRows()));
  formulateSpan.end();

  return solveModel(clip, graph, formulation, nullptr);
}

RouteResult OptRouter::routeImpl(ClipSession& session,
                                 const tech::RuleConfig& rule) const {
  RouteResult result;
  Status valid = session.clip().validate();
  if (!valid) {
    result.error = valid;
    return result;  // kError
  }

  session.activateRule(rule);
  result = solveModel(session.clip(), session.graph(), session.formulation(),
                      &session);
  // Every adopted solution is DRC-clean under the active rule (the ladder
  // never reports dirty solutions), so it qualifies as the session's
  // cross-rule seed; only the first (the sweep reference) sticks.
  if (result.hasSolution()) session.offerReference(result.solution);
  return result;
}

RouteResult OptRouter::solveModel(const clip::Clip& clip,
                                  const grid::RoutingGraph& graph,
                                  Formulation& formulation,
                                  ClipSession* session) const {
  RouteResult result;

  ilp::MipSolver mip(formulation.model(), formulation.integrality(),
                     options_.mip);
  mip.setLazySeparator(formulation.separator());

  // Heuristic baseline: routed within the same per-net arc regions (the
  // arcFilter also excludes rule-masked arcs on session graphs); only a
  // DRC-clean solution may seed the exact search. Also computed on demand by
  // the fallback rung when warm starts are disabled.
  route::MazeResult heuristic;
  bool heuristicTried = false;
  auto runHeuristic = [&]() {
    if (heuristicTried) return;
    heuristicTried = true;
    obs::Span mazeSpan("route.maze");
    route::MazeOptions mo = options_.mazeOptions;
    mo.arcFilter = [&formulation](int net, int arc) {
      return formulation.arcAvailableTo(net, arc);
    };
    route::MazeRouter maze(clip, graph, mo);
    heuristic = maze.route();
    mazeSpan.arg("success", heuristic.success ? 1.0 : 0.0);
  };
  if (options_.warmStart) {
    // Cross-rule first: the session's reference solution is an optimal
    // routing of this very clip under a sibling rule; when it passes the
    // active rule's DRC it is a far tighter incumbent than the maze's.
    if (session && session->hasReference() &&
        session->referenceRuleName() != graph.rule().name) {
      obs::Span crossSpan("route.warmstart.cross_rule");
      bool seeded = false;
      route::DrcChecker refCheck(clip, graph);
      if (refCheck.check(session->referenceSolution()).empty()) {
        std::vector<double> seed =
            formulation.encode(session->referenceSolution());
        if (!seed.empty() && mip.setInitialIncumbent(seed)) {
          result.warmStartUsed = true;
          result.warmStartKind = WarmStartKind::kCrossRule;
          seeded = true;
        }
      }
      crossSpan.arg("seeded", seeded ? 1.0 : 0.0);
    }
    if (result.warmStartKind == WarmStartKind::kNone) {
      runHeuristic();
      if (heuristic.success) {
        std::vector<double> seed = formulation.encode(heuristic.solution);
        if (!seed.empty() && mip.setInitialIncumbent(seed)) {
          result.warmStartUsed = true;
          result.warmStartKind = WarmStartKind::kMaze;
        }
      }
    }
    if (session) {
      const char* kind = "session.warmstart.none";
      if (result.warmStartKind == WarmStartKind::kCrossRule)
        kind = "session.warmstart.cross_rule";
      else if (result.warmStartKind == WarmStartKind::kMaze)
        kind = "session.warmstart.maze";
      obs::metrics().counter(kind).add();
    }
  }

  // Cross-rule LP warm start: seed the root relaxation with the session's
  // last root basis. Rule layers change bounds/objective and swap rule rows
  // on the shared base model, so the basis usually restores and is dual
  // feasible -- the simplex dual restart then skips phase 1. Restore
  // failures silently fall back to the cold slack basis, so this never
  // affects results, only pivot counts.
  if (session && session->rootBasis() != nullptr) {
    mip.setRootBasis(session->rootBasis());
    obs::metrics().counter("session.warmstart.basis").add();
  }

  ilp::MipResult mr = mip.solve();
  if (session) session->setRootBasis(mr.rootBasis);
  result.seconds = mr.seconds;
  result.nodes = mr.nodes;
  result.lpIterations = mr.lpIterations;
  result.lazyRows = mr.lazyRowsAdded;
  result.bestBound = mr.bestBound;
  result.formulationStats = formulation.stats();
  result.solverRetries = mr.numericRetries;
  result.separatorMisreports = mr.separatorMisreports;
  result.error = mr.error;

  switch (mr.status) {
    case ilp::MipStatus::kOptimal:
      result.status = RouteStatus::kOptimal;
      break;
    case ilp::MipStatus::kFeasibleLimit:
      result.status = RouteStatus::kFeasible;
      break;
    case ilp::MipStatus::kInfeasible:
      result.status = RouteStatus::kInfeasible;
      break;
    case ilp::MipStatus::kNoSolutionLimit:
      result.status = RouteStatus::kUnknown;
      break;
    case ilp::MipStatus::kError:
      result.status = RouteStatus::kError;
      break;
  }

  auto adopt = [&](const route::RouteSolution& sol, RouteStatus st,
                   Provenance prov) {
    result.solution = sol;
    result.status = st;
    result.provenance = prov;
    result.cost = result.solution.totalCost(graph);
    result.wirelength = result.solution.wirelength(graph);
    result.vias = result.solution.viaCount(graph);
  };
  auto mazeFallback = [&]() {
    runHeuristic();
    if (!heuristic.success) return false;
    adopt(heuristic.solution, RouteStatus::kFeasible,
          Provenance::kMazeFallback);
    return true;
  };

  route::DrcChecker drc(clip, graph);
  const bool incumbentOnError =
      mr.status == ilp::MipStatus::kError && mr.hasIncumbent();
  if (mr.hasSolution() || incumbentOnError) {
    obs::Span verifySpan("route.verify");
    route::RouteSolution sol = formulation.extractSolution(mr.x);
    const bool clean = drc.check(sol).empty();
    verifySpan.arg("clean", clean ? 1.0 : 0.0);
    verifySpan.end();
    if (clean) {
      if (mr.status == ilp::MipStatus::kOptimal) {
        adopt(sol, RouteStatus::kOptimal, Provenance::kIlpProven);
      } else {
        adopt(sol, RouteStatus::kFeasible, Provenance::kIlpIncumbent);
      }
      return result;
    }
    // An "optimal"/incumbent answer must be rule-clean; a violation here
    // means a separation gap. Never report the dirty solution -- record the
    // failure loudly and drop to the heuristic rung.
    result.error = Status::error(ErrorCode::kSeparation,
                                 "solution violates design rules "
                                 "(separation gap)");
    if (mazeFallback()) return result;
    result.status = RouteStatus::kError;
    return result;
  }

  if (mr.status == ilp::MipStatus::kInfeasible) return result;  // proven

  // Limit hit before any conclusion, or an unrecovered solver failure with
  // no incumbent: if the heuristic produced a DRC-clean routing, a
  // rule-correct solution does exist -- report it as feasible (not proven
  // best), tagged with its provenance. Otherwise the kUnknown / kError
  // status stands, with `error` saying why.
  mazeFallback();
  return result;
}

}  // namespace optr::core
