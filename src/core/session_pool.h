// SessionPool: shared, capacity-bounded LRU of idle ClipSessions.
//
// The batch harness used to keep one session per worker (an LRU of size 1):
// good enough when each worker owns a contiguous slice of one clip's rule
// sweep, wasted work the moment requests interleave -- which is exactly what
// the routing service sees (clients hit the same clips in arbitrary order).
// This pool generalizes that cache: sessions are keyed by content
// (sessionCacheKey = clip text + formulation options), shared across
// workers, and handed out as exclusive leases.
//
// Concurrency contract: ClipSession itself is single-threaded, so a pooled
// session is owned by at most one lease at a time. acquire() pops a matching
// idle session (hit) or builds a fresh one OUTSIDE the pool lock (miss --
// base builds are the expensive part and must not serialize the pool). When
// two workers want the same clip at once, the second builds its own session;
// on release the pool keeps one and discards the duplicate rather than
// letting the pool exceed its bound.
//
// The rule universe is part of the pool's contract, not the key: every
// session in one pool is built over the same universe (the service pins it
// at startup), so any pooled session can activate any rule a request names.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/clip_session.h"

namespace optr::core {

struct SessionPoolOptions {
  /// Max idle sessions retained. 0 disables pooling entirely: every acquire
  /// builds, every release discards (the degenerate mode tests pin down).
  std::size_t capacity = 8;
};

class SessionPool {
 public:
  explicit SessionPool(SessionPoolOptions options = {});
  ~SessionPool();

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  /// Exclusive handle to a session. Returns the session to the pool on
  /// destruction (unless discard() was called first, e.g. after a solver
  /// error left the formulation in doubt). Movable, not copyable.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        releaseNow();
        pool_ = other.pool_;
        key_ = std::move(other.key_);
        session_ = std::move(other.session_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    ~Lease() { releaseNow(); }

    ClipSession* get() const { return session_.get(); }
    ClipSession* operator->() const { return session_.get(); }
    ClipSession& operator*() const { return *session_; }
    explicit operator bool() const { return session_ != nullptr; }

    /// Drops the session instead of returning it to the pool.
    void discard() {
      pool_ = nullptr;
      session_.reset();
    }

   private:
    friend class SessionPool;
    Lease(SessionPool* pool, std::string key,
          std::unique_ptr<ClipSession> session)
        : pool_(pool), key_(std::move(key)), session_(std::move(session)) {}

    void releaseNow() {
      if (pool_ != nullptr && session_ != nullptr)
        pool_->release(key_, std::move(session_));
      pool_ = nullptr;
      session_.reset();
    }

    SessionPool* pool_ = nullptr;
    std::string key_;
    std::unique_ptr<ClipSession> session_;
  };

  /// Pops an idle session for `key` or builds one via `build`. The factory
  /// runs outside the pool lock. `key` is typically
  /// sessionCacheKey(clip, formulation).hex().
  Lease acquire(const std::string& key,
                const std::function<std::unique_ptr<ClipSession>()>& build);

  /// Idle sessions currently retained.
  std::size_t size() const;

  struct Stats {
    std::uint64_t hits = 0;       // acquire served from the pool
    std::uint64_t misses = 0;     // acquire had to build
    std::uint64_t evictions = 0;  // LRU pushed out by a newer release
    std::uint64_t discards = 0;   // release dropped (capacity 0 / duplicate)
  };
  Stats stats() const;

 private:
  void release(const std::string& key, std::unique_ptr<ClipSession> session);

  struct Entry {
    std::string key;
    std::unique_ptr<ClipSession> session;
  };

  SessionPoolOptions options_;
  mutable std::mutex mutex_;
  // MRU at front. The multimap tolerates transient duplicates (two releases
  // of the same key race); release() collapses them by discarding.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> byKey_;
  Stats stats_;
};

}  // namespace optr::core
