#include "core/session_pool.h"

#include "obs/metrics.h"

namespace optr::core {

SessionPool::SessionPool(SessionPoolOptions options) : options_(options) {}

SessionPool::~SessionPool() = default;

SessionPool::Lease SessionPool::acquire(
    const std::string& key,
    const std::function<std::unique_ptr<ClipSession>()>& build) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = byKey_.find(key);
    if (it != byKey_.end()) {
      std::unique_ptr<ClipSession> session = std::move(it->second->session);
      lru_.erase(it->second);
      byKey_.erase(it);
      ++stats_.hits;
      obs::metrics().counter("session.pool.hit").add(1);
      return Lease(this, key, std::move(session));
    }
    ++stats_.misses;
  }
  obs::metrics().counter("session.pool.miss").add(1);
  // Build outside the lock: base builds dominate and must not serialize
  // unrelated acquires.
  return Lease(this, key, build());
}

void SessionPool::release(const std::string& key,
                          std::unique_ptr<ClipSession> session) {
  std::unique_ptr<ClipSession> dropped;  // destroyed outside the lock
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (options_.capacity == 0 || byKey_.count(key) != 0) {
      // No pooling, or a duplicate of an already-idle session (two workers
      // built the same clip concurrently): keep the pool bounded.
      ++stats_.discards;
      dropped = std::move(session);
    } else {
      lru_.push_front(Entry{key, std::move(session)});
      byKey_[key] = lru_.begin();
      if (lru_.size() > options_.capacity) {
        ++stats_.evictions;
        obs::metrics().counter("session.pool.evict").add(1);
        byKey_.erase(lru_.back().key);
        dropped = std::move(lru_.back().session);
        lru_.pop_back();
      }
    }
  }
}

std::size_t SessionPool::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

SessionPool::Stats SessionPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace optr::core
