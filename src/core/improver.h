// Local improvement of detailed-routing solutions (paper Section 5 future
// work: "our results ... open up the possibility of (massively distributed)
// local improvement of detailed routing solutions").
//
// The improver takes a set of clips, obtains a heuristic routing for each
// (the baseline maze router -- standing in for a production router's
// as-routed state), then re-solves each clip with OptRouter and keeps the
// better result. Clips are independent switchboxes, so the loop is
// embarrassingly parallel; `threads > 1` distributes clips across worker
// threads while keeping the output deterministic (results are indexed, not
// streamed).
#pragma once

#include <vector>

#include "core/opt_router.h"

namespace optr::core {

struct ImproverOptions {
  OptRouterOptions router;
  int threads = 1;  // worker threads across clips
};

struct ClipImprovement {
  std::string clipId;
  bool baselineRouted = false;  // heuristic found a DRC-clean routing
  bool improved = false;        // OptRouter beat the heuristic cost
  double baselineCost = 0;
  double optimalCost = 0;       // best OptRouter cost (== baseline if worse)
  RouteStatus status = RouteStatus::kUnknown;
  route::RouteSolution solution;  // the better of the two routings
};

struct ImprovementReport {
  std::vector<ClipImprovement> clips;
  int attempted = 0;   // clips where the baseline routed
  int improved = 0;    // clips where OptRouter strictly reduced cost
  double costBefore = 0;
  double costAfter = 0;

  double totalSaving() const { return costBefore - costAfter; }
};

class LocalImprover {
 public:
  LocalImprover(const tech::Technology& techn, const tech::RuleConfig& rule,
                ImproverOptions options = {});

  /// Routes every clip heuristically, re-optimizes with OptRouter, returns
  /// the per-clip outcomes and aggregate statistics.
  ImprovementReport improve(const std::vector<clip::Clip>& clips) const;

 private:
  ClipImprovement improveOne(const clip::Clip& clip) const;

  tech::Technology tech_;
  tech::RuleConfig rule_;
  ImproverOptions options_;
};

}  // namespace optr::core
