#include "core/improver.h"

#include <atomic>
#include <thread>

#include "route/maze_router.h"

namespace optr::core {

LocalImprover::LocalImprover(const tech::Technology& techn,
                             const tech::RuleConfig& rule,
                             ImproverOptions options)
    : tech_(techn), rule_(rule), options_(options) {}

ClipImprovement LocalImprover::improveOne(const clip::Clip& clip) const {
  ClipImprovement out;
  out.clipId = clip.id;

  grid::RoutingGraph graph(clip, tech_, rule_);
  route::MazeRouter maze(clip, graph);
  route::MazeResult mr = maze.route();
  out.baselineRouted = mr.success;
  if (mr.success) {
    out.baselineCost = mr.solution.totalCost(graph);
    out.solution = mr.solution;
    out.optimalCost = out.baselineCost;
  }

  OptRouter router(tech_, rule_, options_.router);
  RouteResult rr = router.route(clip);
  out.status = rr.status;
  if (rr.hasSolution() &&
      (!mr.success || rr.cost < out.baselineCost - 1e-9)) {
    out.solution = rr.solution;
    out.optimalCost = rr.cost;
    out.improved = mr.success;  // "improved" only when there was a baseline
  }
  return out;
}

ImprovementReport LocalImprover::improve(
    const std::vector<clip::Clip>& clips) const {
  ImprovementReport report;
  report.clips.resize(clips.size());

  const int threads =
      std::max(1, std::min<int>(options_.threads,
                                static_cast<int>(clips.size())));
  if (threads == 1) {
    for (std::size_t i = 0; i < clips.size(); ++i)
      report.clips[i] = improveOne(clips[i]);
  } else {
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (;;) {
        std::size_t i = next.fetch_add(1);
        if (i >= clips.size()) return;
        report.clips[i] = improveOne(clips[i]);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  for (const ClipImprovement& ci : report.clips) {
    if (!ci.baselineRouted) continue;
    ++report.attempted;
    report.costBefore += ci.baselineCost;
    report.costAfter += ci.optimalCost;
    report.improved += ci.improved ? 1 : 0;
  }
  return report;
}

}  // namespace optr::core
