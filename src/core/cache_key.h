// Content-addressed cache keys for solve results and clip sessions.
//
// The routing service re-serves repeated traffic from a result cache, so the
// cache key must capture EVERYTHING that can change a solve's answer:
//
//   clip geometry  -- tracks/layers/nets/pins/obstacles, via the clip text
//                     serialization with the id masked out (two identically
//                     shaped clips with different names are the same work);
//   technology     -- the TECH field inside that same serialization;
//   rule           -- every RuleConfig field, via shapes included;
//   solver options -- every OptRouterOptions field that steers the solve,
//                     including limits and thread counts: a deadline change
//                     can flip kOptimal into kFeasible, and reported node /
//                     pivot counts are thread-count-dependent, so differing
//                     options must never alias to one cache slot.
//
// Keys are 128-bit (two independent FNV-1a-64 passes over the canonical
// text) -- collisions are not checked at lookup time, so the key space has
// to make them negligible. The canonical texts are also the spec of what
// "same request" means; they are exercised directly by service_test.
#pragma once

#include <cstdint>
#include <string>

#include "clip/clip.h"
#include "core/opt_router.h"
#include "tech/rules.h"

namespace optr::core {

struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;

  /// 32 lowercase hex chars; the wire / JSON / log form of the key.
  std::string hex() const;

  struct Hash {
    std::size_t operator()(const CacheKey& k) const {
      return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ULL));
    }
  };
};

/// FNV-1a over `text`, parameterized by offset basis so two passes give two
/// independent 64-bit digests.
std::uint64_t fnv1a64(const std::string& text, std::uint64_t basis);

/// Canonical clip content: the clip text serialization with the id replaced
/// by "*" (content addressing ignores names). Includes the technology.
std::string canonicalClipText(const clip::Clip& clip);

/// Canonical rule content: every RuleConfig field, via shapes included.
std::string canonicalRuleText(const tech::RuleConfig& rule);

/// Canonical solver-options content: formulation, MIP, LP, and warm-start
/// settings. Appended to deliberately -- adding an option that can change a
/// result MUST show up here or cached answers go stale silently.
std::string canonicalRouterOptionsText(const OptRouterOptions& options);

/// Key for a (clip, rule, options) solve result.
CacheKey resultCacheKey(const clip::Clip& clip, const tech::RuleConfig& rule,
                        const OptRouterOptions& options);

/// Key for a clip session: clip content + formulation options only (the
/// session's base model is rule-independent by construction; the rule
/// universe is part of the pool's contract, not the key -- see SessionPool).
CacheKey sessionCacheKey(const clip::Clip& clip,
                         const FormulationOptions& formulation);

/// A solve outcome may be served from cache only when it is a deterministic
/// function of the request: proven verdicts (optimal / infeasible) with a
/// clean error status. Deadline- or limit-truncated outcomes depend on
/// wall-clock and scheduling, so caching them would freeze one machine's
/// timing into every later answer.
bool cacheableOutcome(RouteStatus status, const Status& error);

}  // namespace optr::core
