#include "core/cache_key.h"

#include <cstdio>
#include <sstream>

#include "clip/clip_io.h"

namespace optr::core {

std::string CacheKey::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

std::uint64_t fnv1a64(const std::string& text, std::uint64_t basis) {
  std::uint64_t h = basis;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

constexpr std::uint64_t kFnvBasisHi = 0xcbf29ce484222325ULL;
// A second, independent basis: the first digest re-folded so the two passes
// never agree by construction.
constexpr std::uint64_t kFnvBasisLo = 0xaf63dc4c8601ec8cULL;

CacheKey keyOf(const std::string& text) {
  return CacheKey{fnv1a64(text, kFnvBasisHi), fnv1a64(text, kFnvBasisLo)};
}

}  // namespace

std::string canonicalClipText(const clip::Clip& clip) {
  // Reuse the (tested) clip serialization; mask the id so content, not
  // naming, addresses the cache. TECH rides along inside the text.
  clip::Clip masked = clip;
  masked.id = "*";
  return clip::toText(masked);
}

std::string canonicalRuleText(const tech::RuleConfig& rule) {
  std::ostringstream os;
  os << "RULE " << rule.name << " VIARESTRICT "
     << tech::blockedNeighbors(rule.viaRestriction) << " SADPFROM "
     << rule.sadpFromMetal << " UNIDIR " << (rule.unidirectional ? 1 : 0)
     << " VIAWEIGHT " << rule.viaCostWeight << " SHAPES "
     << rule.viaShapes.size();
  for (const tech::ViaShape& vs : rule.viaShapes) {
    os << " " << vs.name << " " << vs.spanX << " " << vs.spanY << " "
       << vs.costFactor;
  }
  os << "\n";
  return os.str();
}

std::string canonicalRouterOptionsText(const OptRouterOptions& options) {
  const FormulationOptions& f = options.formulation;
  const ilp::MipOptions& m = options.mip;
  const lp::SimplexOptions& l = m.lpOptions;
  std::ostringstream os;
  os << "FORM eagerVia " << f.eagerViaRules << " eagerSadp " << f.eagerSadp
     << " upperCoupling " << f.emitUpperCoupling << " merge2pin "
     << f.mergeTwoPinNets << " bboxMargin " << f.netBBoxMargin
     << " layerMargin " << f.netLayerMargin << "\n";
  os << "MIP timeLimit " << m.timeLimitSec << " maxNodes " << m.maxNodes
     << " intTol " << m.intTol << " retry " << m.retryOnNumericalFailure
     << " gapTol " << m.objectiveGapTol << " threads " << m.threads << "\n";
  os << "LP maxIter " << l.maxIterations << " feasTol " << l.feasTol
     << " optTol " << l.optTol << " pivotTol " << l.pivotTol
     << " refactor " << l.refactorInterval << " blandAfter "
     << l.blandAfterStalls << " forceBland " << l.forceBland << " deadline "
     << l.deadlineSeconds << " pricing " << static_cast<int>(l.pricing)
     << " dualRestart " << l.dualRestart << " candidates "
     << l.pricingCandidates << "\n";
  const route::MazeOptions& z = options.mazeOptions;
  os << "MAZE ripup " << z.maxRipupIterations << " presentInit "
     << z.presentPenaltyInit << " presentGrowth " << z.presentPenaltyGrowth
     << " history " << z.historyIncrement << "\n";
  os << "WARM " << options.warmStart << "\n";
  return os.str();
}

CacheKey resultCacheKey(const clip::Clip& clip, const tech::RuleConfig& rule,
                        const OptRouterOptions& options) {
  return keyOf(canonicalClipText(clip) + canonicalRuleText(rule) +
               canonicalRouterOptionsText(options));
}

CacheKey sessionCacheKey(const clip::Clip& clip,
                         const FormulationOptions& formulation) {
  OptRouterOptions probe;
  probe.formulation = formulation;
  std::string formText = canonicalRouterOptionsText(probe);
  return keyOf("SESSION\n" + canonicalClipText(clip) +
               formText.substr(0, formText.find('\n') + 1));
}

bool cacheableOutcome(RouteStatus status, const Status& error) {
  if (!error.isOk()) return false;
  return status == RouteStatus::kOptimal || status == RouteStatus::kInfeasible;
}

}  // namespace optr::core
