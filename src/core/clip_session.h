// ClipSession: per-clip solver state reused across a rule sweep.
//
// The paper's methodology (Figure 6) solves the SAME clip under every Table 3
// rule configuration. A session splits that work into a rule-independent part
// paid once per clip and a rule-dependent part paid once per rule:
//
//   base (once)        RoutingGraph union build over the rule universe,
//                      Formulation base model (availability, variables, flow
//                      conservation, arc exclusivity, coupling)
//   overlay (per rule) RoutingGraph::applyRule() arc/via masks + via costs,
//                      Formulation::resetRuleLayer() bounds/objective refresh
//                      + eager rule rows
//   solve (per rule)   OptRouter::route(ClipSession&, rule), which also
//                      maintains the session's cross-rule warm-start seed
//
// The session additionally remembers the first rule's routed solution (the
// sweep reference, typically RULE1): later rules re-validate it under their
// own DRC configuration and seed the MIP with it when clean, which usually
// beats the maze warm start because the reference is an *optimal* routing of
// the same clip.
//
// Sessions are single-threaded objects: one worker drives one session at a
// time (the evaluator and batch harness give each clip's sweep to exactly one
// worker). They are immovable because the formulation holds pointers into the
// session-owned clip and graph; hold them by unique_ptr.
#pragma once

#include <string>
#include <vector>

#include <memory>

#include "clip/clip.h"
#include "core/formulation.h"
#include "grid/routing_graph.h"
#include "lp/simplex.h"
#include "obs/trace.h"
#include "route/route_solution.h"
#include "tech/rules.h"
#include "tech/technology.h"

namespace optr::core {

struct ClipSessionOptions {
  FormulationOptions formulation;
  /// Every rule the session may be asked to activate. The graph is built as
  /// the union over this universe (off-preferred arcs when any rule is
  /// bidirectional, via instances for the union of via shapes), so
  /// activating a rule outside the universe asserts. Defaults to Table 3.
  std::vector<tech::RuleConfig> universe = tech::table3Rules();
};

class ClipSession {
 public:
  ClipSession(const clip::Clip& clip, const tech::Technology& techn,
              ClipSessionOptions options = {});

  // The formulation points into the session-owned clip and graph.
  ClipSession(const ClipSession&) = delete;
  ClipSession& operator=(const ClipSession&) = delete;

  /// Re-targets the graph overlay and formulation rule layer at `rule`
  /// (identified by name). No-op when `rule` is already active and no lazy
  /// rows have been separated since its layer was pushed.
  void activateRule(const tech::RuleConfig& rule);

  const clip::Clip& clip() const { return clip_; }
  const grid::RoutingGraph& graph() const { return graph_; }
  Formulation& formulation() { return formulation_; }
  const tech::RuleConfig& activeRule() const { return graph_.rule(); }

  /// Offers a routed, DRC-clean solution of the ACTIVE rule as the session's
  /// cross-rule warm-start seed. Only the first offer sticks: the sweep
  /// solves the reference rule first, so the seed is the reference solution.
  void offerReference(const route::RouteSolution& sol);
  bool hasReference() const { return hasReference_; }
  const route::RouteSolution& referenceSolution() const { return reference_; }
  /// Name of the rule the reference solution was routed under.
  const std::string& referenceRuleName() const { return referenceRule_; }

  /// Cross-rule LP warm start: the root-relaxation basis of the most recent
  /// solve over this session's formulation. Successive rules share the base
  /// model and differ only in the rule layer (bounds/objective/rule rows),
  /// which is exactly the bound-change pattern the simplex dual restart
  /// exploits -- OptRouter seeds the next rule's root LP with this basis.
  /// Unlike the reference solution, the LATEST basis sticks: it reflects the
  /// current column geometry after any lazy rows.
  void setRootBasis(std::shared_ptr<const lp::BasisSnapshot> basis) {
    if (basis != nullptr) rootBasis_ = std::move(basis);
  }
  const std::shared_ptr<const lp::BasisSnapshot>& rootBasis() const {
    return rootBasis_;
  }

 private:
  clip::Clip clip_;  // owned: the session outlives transient batch rows
  ClipSessionOptions options_;
  // Declared before graph_/formulation_ so the span brackets both base
  // builds; ended (and the counter bumped) in the constructor body.
  obs::Span baseSpan_;
  grid::RoutingGraph graph_;        // union build; overlay = active rule
  Formulation formulation_;         // base model + active rule layer
  bool hasReference_ = false;
  std::string referenceRule_;
  route::RouteSolution reference_;
  std::shared_ptr<const lp::BasisSnapshot> rootBasis_;
};

}  // namespace optr::core
