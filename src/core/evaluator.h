// The BEOL rule-evaluation framework (paper Figure 6) as a library API.
//
// RuleEvaluator drives the paper's methodology over a clip set:
//   for every applicable rule configuration
//     for every clip
//       solve with OptRouter -> cost / infeasible / unresolved
//   delta-cost everything against the reference rule (RULE1).
// The benches and the CLI are thin wrappers over this class; downstream
// users evaluating their own prospective rules subclass nothing -- they
// pass their own RuleConfig list.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "clip/clip.h"
#include "core/clip_session.h"
#include "core/opt_router.h"
#include "tech/rules.h"

namespace optr::core {

struct EvaluationOptions {
  OptRouterOptions router;
  /// Rules to evaluate; inapplicable ones (tech::ruleApplicable) are
  /// skipped and reported as such. Defaults to all of Table 3.
  std::vector<tech::RuleConfig> rules = tech::table3Rules();
  /// Name of the reference configuration for delta-cost (paper: RULE1).
  std::string referenceRule = "RULE1";
  /// Give the reference solve extra time: every delta keys off it.
  double referenceTimeFactor = 2.0;
  /// Worker threads for the per-clip solves inside one rule configuration
  /// (clips are independent; each worker constructs its own OptRouter).
  /// 1 keeps the historical serial sweep. Composes with
  /// router.mip.threads: total concurrency is roughly the product, so
  /// oversubscribing both is on the caller.
  int clipThreads = 1;
  /// Keep one core::ClipSession per clip across the rule sweep: the graph
  /// and base model are built once per clip and each rule becomes a cheap
  /// overlay + cross-rule warm start. Results are equivalent to the rebuild
  /// path (gated by bench_sweep); disable to force per-(clip, rule)
  /// rebuilds, e.g. for measuring the reuse payoff.
  bool sessionReuse = true;
};

struct ClipOutcome {
  RouteStatus status = RouteStatus::kUnknown;
  Provenance provenance = Provenance::kNone;  // which ladder rung held
  ErrorCode error = ErrorCode::kOk;           // why the solve degraded
  double cost = 0;        // valid when status is optimal/feasible
  double bestBound = 0;
  int wirelength = 0;
  int vias = 0;
  double seconds = 0;
  std::int64_t nodes = 0;          // branch-and-bound nodes explored
  std::int64_t lpIterations = 0;   // simplex pivots across all nodes
  bool warmStartUsed = false;      // an incumbent seeded the MIP
};

struct RuleOutcome {
  tech::RuleConfig rule;
  bool applicable = true;
  std::vector<ClipOutcome> clips;   // parallel to the input clip list
  /// Sorted delta-costs vs the reference (infinity for infeasible clips
  /// with a finite reference; clips without reference are omitted),
  /// the paper's Figure 10 series.
  std::vector<double> sortedDelta;
  int feasible = 0, infeasible = 0, unresolved = 0;
  double meanDelta = 0, maxDelta = 0;  // over finite deltas
  /// Clip counts per degradation-ladder rung (indexed by Provenance): how
  /// many of this rule's rows are proven optima vs degraded fallbacks.
  std::array<int, 4> provenance{};
};

struct EvaluationResult {
  std::vector<RuleOutcome> rules;
  std::vector<ClipOutcome> reference;  // outcomes under the reference rule

  const RuleOutcome* byName(const std::string& name) const {
    for (const RuleOutcome& r : rules)
      if (r.rule.name == name) return &r;
    return nullptr;
  }
};

class RuleEvaluator {
 public:
  RuleEvaluator(const tech::Technology& techn, EvaluationOptions options = {})
      : tech_(techn), options_(std::move(options)) {}

  /// Runs the full evaluation over the clip set.
  EvaluationResult evaluate(const std::vector<clip::Clip>& clips) const;

 private:
  /// Solves every clip under one rule. `sessions` (parallel to `clips`,
  /// non-null on the session-reuse path) holds per-clip sessions that are
  /// created lazily by whichever worker first touches the clip and reused
  /// by later rules; each slot is touched by exactly one worker per call
  /// and calls are separated by the thread-pool join.
  std::vector<ClipOutcome> solveAll(
      const std::vector<clip::Clip>& clips, const tech::RuleConfig& rule,
      double timeFactor,
      std::vector<std::unique_ptr<ClipSession>>* sessions) const;

  tech::Technology tech_;
  EvaluationOptions options_;
};

}  // namespace optr::core
