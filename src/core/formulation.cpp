#include "core/formulation.h"

#include <algorithm>
#include <cmath>

namespace optr::core {

namespace {

/// Axis helpers for SADP geometry: u = along preferred direction, t = track.
struct AxisView {
  bool horizontal;
  int u(const clip::TrackPoint& p) const { return horizontal ? p.x : p.y; }
  int t(const clip::TrackPoint& p) const { return horizontal ? p.y : p.x; }
  clip::TrackPoint at(int u, int t, int z) const {
    clip::TrackPoint p;
    p.x = horizontal ? u : t;
    p.y = horizontal ? t : u;
    p.z = z;
    return p;
  }
};

}  // namespace

Formulation::Formulation(const clip::Clip& clip,
                         const grid::RoutingGraph& graph,
                         FormulationOptions options)
    : clip_(&clip), graph_(&graph), options_(options), drc_(clip, graph) {
  stats_.numNets = static_cast<int>(clip.nets.size());
  stats_.numArcs = graph.numArcs();
  stats_.numVertices = graph.numVertices();

  // Rule-independent base: availability and the flow structure depend only
  // on the graph's vertices/arcs and pin ownership, which a session graph
  // keeps fixed across applyRule() overlays.
  computeAvailability();
  buildVariables();
  buildFlowConservation();
  buildArcExclusivity();
  buildCoupling();
  baseRowMark_ = model_.markRows();
  baseColMark_ = model_.markCols();

  buildRuleLayer();
}

void Formulation::buildRuleLayer() {
  applyMaskBounds();
  if (options_.eagerViaRules) buildEagerViaRules();
  if (options_.eagerSadp) buildEagerSadp();

  stats_.numVariables = model_.numCols();
  stats_.numRows = model_.numRows();
  stats_.numIntegerVars = 0;
  for (bool b : isInteger_) stats_.numIntegerVars += b ? 1 : 0;
}

void Formulation::resetRuleLayer() {
  model_.truncateRows(baseRowMark_);
  model_.truncateCols(baseColMark_);
  isInteger_.resize(static_cast<std::size_t>(baseColMark_));
  // The dedup set and lazy-row count describe rows that no longer exist;
  // stale signatures would silently suppress the new rule's cuts.
  emittedRows_.clear();
  stats_.lazyRows = 0;
  buildRuleLayer();
}

void Formulation::applyMaskBounds() {
  const grid::RoutingGraph& g = *graph_;
  for (int k = 0; k < stats_.numNets; ++k) {
    const NetInfo& ni = nets_[k];
    for (int a = 0; a < g.numArcs(); ++a) {
      int e = eVar_[k][a];
      if (e < 0) continue;
      const bool enabled = g.arcEnabled(a);
      // A masked arc's variables are pinned to zero instead of removed, so
      // column ids stay stable across rule overlays. Via costs are re-read
      // from the graph: applyRule() re-prices them per rule.
      model_.setBounds(e, 0.0, enabled ? 1.0 : 0.0);
      model_.setObjective(e, g.arc(a).cost);
      if (!ni.merged) {
        model_.setBounds(fVar_[k][a], 0.0,
                         enabled ? static_cast<double>(ni.numSinks) : 0.0);
      }
    }
  }
}

void Formulation::computeAvailability() {
  const grid::RoutingGraph& g = *graph_;
  const int numNets = stats_.numNets;
  nets_.resize(numNets);

  for (int k = 0; k < numNets; ++k) {
    NetInfo& ni = nets_[k];
    const clip::ClipNet& net = clip_->nets[k];
    ni.numSinks = static_cast<int>(net.pins.size()) - 1;
    ni.merged = options_.mergeTwoPinNets && ni.numSinks == 1;
    for (const clip::TrackPoint& ap : clip_->pins[net.pins[0]].accessPoints) {
      int v = g.vertexId(ap);
      if (g.usableBy(v, k)) ni.sourceAps.push_back(v);
    }
    ni.sinkAps.resize(ni.numSinks);
    for (int s = 0; s < ni.numSinks; ++s) {
      for (const clip::TrackPoint& ap :
           clip_->pins[net.pins[s + 1]].accessPoints) {
        int v = g.vertexId(ap);
        if (g.usableBy(v, k)) ni.sinkAps[s].push_back(v);
      }
    }

    // Bounding box for optional region pruning.
    int loX = g.nx(), hiX = -1, loY = g.ny(), hiY = -1;
    if (options_.netBBoxMargin >= 0) {
      auto extend = [&](int v) {
        auto p = g.coords(v);
        loX = std::min(loX, p.x);
        hiX = std::max(hiX, p.x);
        loY = std::min(loY, p.y);
        hiY = std::max(hiY, p.y);
      };
      for (int v : ni.sourceAps) extend(v);
      for (const auto& aps : ni.sinkAps)
        for (int v : aps) extend(v);
      loX -= options_.netBBoxMargin;
      hiX += options_.netBBoxMargin;
      loY -= options_.netBBoxMargin;
      hiY += options_.netBBoxMargin;
    }
    int maxLayer = g.nz() - 1;
    if (options_.netLayerMargin >= 0) {
      int highestPin = 0;
      auto raise = [&](int v) {
        highestPin = std::max(highestPin, g.coords(v).z);
      };
      for (int v : ni.sourceAps) raise(v);
      for (const auto& aps : ni.sinkAps)
        for (int v : aps) raise(v);
      maxLayer = std::min(maxLayer, highestPin + options_.netLayerMargin);
    }
    auto inBox = [&](int v) {
      auto p = g.coords(v);
      if (p.z > maxLayer) return false;
      if (options_.netBBoxMargin < 0) return true;
      return p.x >= loX && p.x <= hiX && p.y >= loY && p.y <= hiY;
    };

    ni.arcAvailable.assign(g.numArcs(), 0);
    for (int a = 0; a < g.numArcs(); ++a) {
      const grid::Arc& arc = g.arc(a);
      bool ok = true;
      if (arc.viaInstance >= 0) {
        const grid::ViaInstance& inst = g.viaInstance(arc.viaInstance);
        for (int cv : inst.coveredLower) {
          if (!g.usableBy(cv, k) || !inBox(cv)) { ok = false; break; }
        }
        if (ok) {
          for (int cv : inst.coveredUpper) {
            if (!g.usableBy(cv, k) || !inBox(cv)) { ok = false; break; }
          }
        }
      } else {
        ok = g.usableBy(arc.from, k) && g.usableBy(arc.to, k) &&
             inBox(arc.from) && inBox(arc.to);
      }
      ni.arcAvailable[a] = ok ? 1 : 0;
    }
  }
}

void Formulation::buildVariables() {
  const grid::RoutingGraph& g = *graph_;
  const int numNets = stats_.numNets;
  eVar_.assign(numNets, std::vector<int>(g.numArcs(), -1));
  fVar_.assign(numNets, std::vector<int>(g.numArcs(), -1));

  auto addBinary = [&](double cost) {
    int c = model_.addColumn(cost, 0.0, 1.0);
    isInteger_.push_back(true);
    return c;
  };
  auto addFlow = [&](double ub) {
    int c = model_.addColumn(0.0, 0.0, ub);
    isInteger_.push_back(false);
    return c;
  };

  for (int k = 0; k < numNets; ++k) {
    NetInfo& ni = nets_[k];
    for (int a = 0; a < g.numArcs(); ++a) {
      if (!ni.arcAvailable[a]) continue;
      if (ni.merged) {
        int c = addBinary(g.arc(a).cost);
        eVar_[k][a] = c;
        fVar_[k][a] = c;
      } else {
        eVar_[k][a] = addBinary(g.arc(a).cost);
        fVar_[k][a] = addFlow(static_cast<double>(ni.numSinks));
      }
    }
    // Private supersource / supersink flow columns (zero cost, never shared).
    double srcUb = ni.merged ? 1.0 : static_cast<double>(ni.numSinks);
    for (std::size_t i = 0; i < ni.sourceAps.size(); ++i)
      ni.privateSourceF.push_back(addFlow(srcUb));
    ni.privateSinkF.resize(ni.sinkAps.size());
    for (std::size_t s = 0; s < ni.sinkAps.size(); ++s) {
      for (std::size_t i = 0; i < ni.sinkAps[s].size(); ++i)
        ni.privateSinkF[s].push_back(addFlow(1.0));
    }
  }
}

void Formulation::buildFlowConservation() {
  const grid::RoutingGraph& g = *graph_;
  for (int k = 0; k < stats_.numNets; ++k) {
    NetInfo& ni = nets_[k];

    // Supersource: total outflow equals the number of sinks.
    {
      lp::RowBuilder rb;
      for (int c : ni.privateSourceF) rb.add(c, 1.0);
      rb.sense = lp::RowSense::kEq;
      rb.rhs = static_cast<double>(ni.numSinks);
      model_.addRow(rb);
    }
    // Supersinks: one unit into each sink.
    for (const auto& cols : ni.privateSinkF) {
      lp::RowBuilder rb;
      for (int c : cols) rb.add(c, 1.0);
      rb.sense = lp::RowSense::kEq;
      rb.rhs = 1.0;
      model_.addRow(rb);
    }

    // Conservation at every vertex the net can touch. Private arcs feed
    // source access points (inflow) and drain sink access points (outflow).
    for (int v = 0; v < g.numVertices(); ++v) {
      lp::RowBuilder rb;
      for (int a : g.outArcs(v)) {
        if (fVar_[k][a] >= 0) rb.add(fVar_[k][a], 1.0);
      }
      for (int a : g.inArcs(v)) {
        if (fVar_[k][a] >= 0) rb.add(fVar_[k][a], -1.0);
      }
      for (std::size_t i = 0; i < ni.sourceAps.size(); ++i) {
        if (ni.sourceAps[i] == v) rb.add(ni.privateSourceF[i], -1.0);
      }
      for (std::size_t s = 0; s < ni.sinkAps.size(); ++s) {
        for (std::size_t i = 0; i < ni.sinkAps[s].size(); ++i) {
          if (ni.sinkAps[s][i] == v) rb.add(ni.privateSinkF[s][i], 1.0);
        }
      }
      if (rb.cols.empty()) continue;
      rb.sense = lp::RowSense::kEq;
      rb.rhs = 0.0;
      model_.addRow(rb);
    }
  }
}

void Formulation::buildArcExclusivity() {
  const grid::RoutingGraph& g = *graph_;
  for (int a = 0; a < g.numArcs(); ++a) {
    int rev = g.reverseArc(a);
    if (rev >= 0 && rev < a) continue;  // handled from the lower id
    lp::RowBuilder rb;
    for (int k = 0; k < stats_.numNets; ++k) {
      if (eVar_[k][a] >= 0) rb.add(eVar_[k][a], 1.0);
      if (rev >= 0 && eVar_[k][rev] >= 0) rb.add(eVar_[k][rev], 1.0);
    }
    if (rb.cols.size() < 2) continue;  // a variable bound already says <= 1
    rb.sense = lp::RowSense::kLe;
    rb.rhs = 1.0;
    model_.addRow(rb);
  }
}

void Formulation::buildCoupling() {
  const grid::RoutingGraph& g = *graph_;
  for (int k = 0; k < stats_.numNets; ++k) {
    const NetInfo& ni = nets_[k];
    if (ni.merged) continue;
    for (int a = 0; a < g.numArcs(); ++a) {
      if (eVar_[k][a] < 0) continue;
      {
        // (2): e >= f / |Tk|   <=>   f - |Tk| e <= 0.
        lp::RowBuilder rb;
        rb.add(fVar_[k][a], 1.0);
        rb.add(eVar_[k][a], -static_cast<double>(ni.numSinks));
        rb.sense = lp::RowSense::kLe;
        rb.rhs = 0.0;
        model_.addRow(rb);
      }
      if (options_.emitUpperCoupling) {
        // (3): e <= f.
        lp::RowBuilder rb;
        rb.add(eVar_[k][a], 1.0);
        rb.add(fVar_[k][a], -1.0);
        rb.sense = lp::RowSense::kLe;
        rb.rhs = 0.0;
        model_.addRow(rb);
      }
    }
  }
}

void Formulation::addEnterTerms(lp::RowBuilder& rb, int net, int viaInst,
                                int excludeNet) const {
  const grid::RoutingGraph& g = *graph_;
  const grid::ViaInstance& inst = g.viaInstance(viaInst);
  for (int a : inst.arcs) {
    grid::ArcKind kind = g.arc(a).kind;
    if (kind != grid::ArcKind::kVia && kind != grid::ArcKind::kViaEnter)
      continue;
    if (net >= 0) {
      if (eVar_[net][a] >= 0) rb.add(eVar_[net][a], 1.0);
    } else {
      for (int k = 0; k < stats_.numNets; ++k) {
        if (k == excludeNet) continue;
        if (eVar_[k][a] >= 0) rb.add(eVar_[k][a], 1.0);
      }
    }
  }
}

bool Formulation::addRowDeduped(lp::LpModel& m, const lp::RowBuilder& rb) {
  // Signature: sorted (col, coef*1024) pairs + sense + rhs.
  std::vector<std::int64_t> sig;
  std::vector<std::pair<int, double>> terms;
  for (std::size_t i = 0; i < rb.cols.size(); ++i)
    terms.emplace_back(rb.cols[i], rb.coefs[i]);
  std::sort(terms.begin(), terms.end());
  for (auto& [c, v] : terms) {
    sig.push_back(c);
    sig.push_back(static_cast<std::int64_t>(std::llround(v * 1024)));
  }
  sig.push_back(static_cast<std::int64_t>(rb.sense));
  sig.push_back(static_cast<std::int64_t>(std::llround(rb.rhs * 1024)));
  if (!emittedRows_.insert(std::move(sig)).second) return false;
  m.addRow(rb);
  return true;
}

void Formulation::buildEagerViaRules() {
  const grid::RoutingGraph& g = *graph_;
  const tech::ViaRestriction restriction = g.rule().viaRestriction;
  const auto& vias = g.viaInstances();

  auto conflictPair = [&](const grid::ViaInstance& a,
                          const grid::ViaInstance& b) {
    if (a.z != b.z) return false;
    const auto& sa = g.viaShape(a.shape);
    const auto& sb = g.viaShape(b.shape);
    int gx = std::max({0, b.x - (a.x + sa.spanX - 1), a.x - (b.x + sb.spanX - 1)});
    int gy = std::max({0, b.y - (a.y + sa.spanY - 1), a.y - (b.y + sb.spanY - 1)});
    if (gx == 0 && gy == 0) return true;  // overlap: always illegal
    switch (restriction) {
      case tech::ViaRestriction::kNone: return false;
      case tech::ViaRestriction::kOrthogonal: return gx + gy == 1;
      case tech::ViaRestriction::kFull: return gx <= 1 && gy <= 1;
    }
    return false;
  };

  for (std::size_t i = 0; i < vias.size(); ++i) {
    if (!g.viaInstanceEnabled(static_cast<int>(i))) continue;
    for (std::size_t j = i + 1; j < vias.size(); ++j) {
      if (!g.viaInstanceEnabled(static_cast<int>(j))) continue;
      if (!conflictPair(vias[i], vias[j])) continue;
      lp::RowBuilder rb;
      addEnterTerms(rb, -1, static_cast<int>(i), -1);
      addEnterTerms(rb, -1, static_cast<int>(j), -1);
      if (rb.cols.size() < 2) continue;
      rb.sense = lp::RowSense::kLe;
      rb.rhs = 1.0;
      addRowDeduped(model_, rb);
    }
  }

  // Footprint blocking (paper Constraint (5)) for shaped vias: per used
  // instance and covered vertex, every other net is excluded.
  for (std::size_t i = 0; i < vias.size(); ++i) {
    const grid::ViaInstance& inst = vias[i];
    if (!g.viaInstanceEnabled(static_cast<int>(i))) continue;
    if (g.viaShape(inst.shape).isUnit()) continue;
    std::vector<int> covered = inst.coveredLower;
    covered.insert(covered.end(), inst.coveredUpper.begin(),
                   inst.coveredUpper.end());
    for (int cv : covered) {
      for (int kPrime = 0; kPrime < stats_.numNets; ++kPrime) {
        lp::RowBuilder rb;
        addEnterTerms(rb, -1, static_cast<int>(i), kPrime);
        std::size_t enterTerms = rb.cols.size();
        auto addIncident = [&](int a) {
          if (g.arc(a).viaInstance == static_cast<int>(i)) return;
          if (eVar_[kPrime][a] >= 0) rb.add(eVar_[kPrime][a], 1.0);
        };
        for (int a : g.outArcs(cv)) addIncident(a);
        for (int a : g.inArcs(cv)) addIncident(a);
        if (enterTerms == 0 || rb.cols.size() == enterTerms) continue;
        rb.sense = lp::RowSense::kLe;
        rb.rhs = 1.0;
        addRowDeduped(model_, rb);
      }
    }
  }
}

void Formulation::buildEagerSadp() {
  const grid::RoutingGraph& g = *graph_;
  if (!g.rule().hasSadp()) return;

  // Per net and SADP-layer vertex: w = OR(via arcs at v),
  // pr = eR AND w AND NOT eL, pl = eL AND w AND NOT eR,
  // where eR/eL are the undirected usages of the +u / -u track edges.
  // All three are continuous in [0,1]; integrality of e implies theirs.
  struct Pvars {
    int pr = -1, pl = -1;
  };
  // indexed [net][gridVertex]
  std::vector<std::vector<Pvars>> pvars(
      stats_.numNets, std::vector<Pvars>(g.numGridVertices()));

  auto edgeUsageTerms = [&](int v, int du, std::vector<int>& cols) {
    // Directed arcs of the track edge from v toward du (+1/-1 along u).
    cols.clear();
    auto p = g.coords(v);
    AxisView ax{g.layerInfo(p.z).horizontal};
    int u = ax.u(p) + du;
    if (u < 0) return;
    clip::TrackPoint q = ax.at(u, ax.t(p), p.z);
    if (!clip_->inBounds(q)) return;
    int w = g.vertexId(q);
    for (int a : g.outArcs(v)) {
      if (g.arc(a).to == w && g.arc(a).kind == grid::ArcKind::kPlanar) {
        cols.push_back(a);
        int rev = g.reverseArc(a);
        if (rev >= 0) cols.push_back(rev);
        break;
      }
    }
  };

  for (int k = 0; k < stats_.numNets; ++k) {
    for (int v = 0; v < g.numGridVertices(); ++v) {
      auto p = g.coords(v);
      if (!g.rule().sadpOnMetal(g.metalOf(p.z))) continue;

      // Via arcs at v available to this net.
      std::vector<int> viaCols;
      auto collect = [&](int a) {
        if (g.arc(a).viaInstance < 0 || !g.arcEnabled(a)) return;
        if (eVar_[k][a] >= 0) viaCols.push_back(eVar_[k][a]);
      };
      for (int a : g.outArcs(v)) collect(a);
      for (int a : g.inArcs(v)) collect(a);
      if (viaCols.empty()) continue;  // no via possible: never an EOL

      std::vector<int> eRArcs, eLArcs;
      edgeUsageTerms(v, +1, eRArcs);
      edgeUsageTerms(v, -1, eLArcs);

      auto usageCols = [&](const std::vector<int>& arcs) {
        std::vector<int> cols;
        for (int a : arcs)
          if (eVar_[k][a] >= 0) cols.push_back(eVar_[k][a]);
        return cols;
      };
      std::vector<int> eR = usageCols(eRArcs), eL = usageCols(eLArcs);
      if (eR.empty() && eL.empty()) continue;

      // w: OR of via arcs.
      int w = model_.addColumn(0.0, 0.0, 1.0);
      isInteger_.push_back(false);
      for (int c : viaCols) {
        lp::RowBuilder rb;  // w >= c
        rb.add(w, 1.0).add(c, -1.0);
        rb.sense = lp::RowSense::kGe;
        rb.rhs = 0.0;
        model_.addRow(rb);
      }
      {
        lp::RowBuilder rb;  // w <= sum(viaCols)
        rb.add(w, 1.0);
        for (int c : viaCols) rb.add(c, -1.0);
        rb.sense = lp::RowSense::kLe;
        rb.rhs = 0.0;
        model_.addRow(rb);
      }

      auto makeP = [&](const std::vector<int>& use,
                       const std::vector<int>& avoid) {
        if (use.empty()) return -1;
        int pv = model_.addColumn(0.0, 0.0, 1.0);
        isInteger_.push_back(false);
        // p <= sum(use); p <= w; p <= 1 - sum(avoid);
        // p >= sum(use) + w - sum(avoid) - 1.
        {
          lp::RowBuilder rb;
          rb.add(pv, 1.0);
          for (int c : use) rb.add(c, -1.0);
          rb.sense = lp::RowSense::kLe;
          rb.rhs = 0.0;
          model_.addRow(rb);
        }
        {
          lp::RowBuilder rb;
          rb.add(pv, 1.0).add(w, -1.0);
          rb.sense = lp::RowSense::kLe;
          rb.rhs = 0.0;
          model_.addRow(rb);
        }
        if (!avoid.empty()) {
          lp::RowBuilder rb;
          rb.add(pv, 1.0);
          for (int c : avoid) rb.add(c, 1.0);
          rb.sense = lp::RowSense::kLe;
          rb.rhs = 1.0;
          model_.addRow(rb);
        }
        {
          lp::RowBuilder rb;
          rb.add(pv, 1.0);
          for (int c : use) rb.add(c, -1.0);
          rb.add(w, -1.0);
          for (int c : avoid) rb.add(c, 1.0);
          rb.sense = lp::RowSense::kGe;
          rb.rhs = -1.0;
          model_.addRow(rb);
        }
        return pv;
      };
      pvars[k][v].pr = makeP(eR, eL);
      pvars[k][v].pl = makeP(eL, eR);
    }
  }

  // Conflict rows over net-summed p variables (paper (10)-(12)).
  auto sumTerms = [&](lp::RowBuilder& rb, int v, bool right) {
    bool any = false;
    for (int k = 0; k < stats_.numNets; ++k) {
      int c = right ? pvars[k][v].pr : pvars[k][v].pl;
      if (c >= 0) {
        rb.add(c, 1.0);
        any = true;
      }
    }
    return any;
  };

  for (int v = 0; v < g.numGridVertices(); ++v) {
    auto p = g.coords(v);
    if (!g.rule().sadpOnMetal(g.metalOf(p.z))) continue;
    AxisView ax{g.layerInfo(p.z).horizontal};
    int u = ax.u(p), t = ax.t(p);

    auto emit = [&](bool iRight, int ju, int jt, bool jRight) {
      clip::TrackPoint q = ax.at(ju, jt, p.z);
      if (!clip_->inBounds(q)) return;
      int jv = g.vertexId(q);
      lp::RowBuilder rb;
      bool a = sumTerms(rb, v, iRight);
      std::size_t firstLen = rb.cols.size();
      bool b = sumTerms(rb, jv, jRight);
      if (!a || !b || rb.cols.size() == firstLen) return;
      rb.sense = lp::RowSense::kLe;
      rb.rhs = 1.0;
      addRowDeduped(model_, rb);
    };

    // pr at (u,t): opposite-direction partners (pl) and same-direction (pr).
    for (int dt : {-1, 1}) {
      emit(true, u, t + dt, false);
      emit(true, u - 1, t + dt, false);
      emit(true, u, t + dt, true);
      emit(true, u + 1, t + dt, true);
      // pl-perspective mirrors:
      emit(false, u, t + dt, true);
      emit(false, u + 1, t + dt, true);
      emit(false, u, t + dt, false);
      emit(false, u - 1, t + dt, false);
    }
    emit(true, u - 1, t, false);
    emit(true, u - 1, t, true);
    emit(false, u + 1, t, true);
    emit(false, u + 1, t, false);
  }
}

route::RouteSolution Formulation::extractSolution(
    const std::vector<double>& x) const {
  route::RouteSolution sol;
  sol.usedArcs.resize(stats_.numNets);
  for (int k = 0; k < stats_.numNets; ++k) {
    for (int a = 0; a < graph_->numArcs(); ++a) {
      int c = eVar_[k][a];
      if (c >= 0 && x[c] > 0.5) sol.usedArcs[k].push_back(a);
    }
  }
  sol.normalize();
  return sol;
}

std::vector<double> Formulation::encode(
    const route::RouteSolution& sol) const {
  const grid::RoutingGraph& g = *graph_;
  std::vector<double> x(model_.numCols(), 0.0);

  for (int k = 0; k < stats_.numNets; ++k) {
    const NetInfo& ni = nets_[k];
    if (static_cast<int>(sol.usedArcs.size()) <= k) return {};

    // e variables; fail if the solution uses an arc this net cannot. Merged
    // nets share one column for e and f, so only the flow walk writes it.
    std::vector<int> inArcAt(g.numVertices(), -1);
    for (int a : sol.usedArcs[k]) {
      // Masked arcs have zero upper bounds under the active rule; a seed
      // using one (e.g. a cross-rule warm start) is not encodable.
      if (eVar_[k][a] < 0 || !g.arcEnabled(a)) return {};
      if (!ni.merged) x[eVar_[k][a]] = 1.0;
      int to = g.arc(a).to;
      if (inArcAt[to] != -1) return {};  // not a tree
      inArcAt[to] = a;
    }

    // Flows: walk each sink back to a source access point.
    std::vector<char> isSourceAp(g.numVertices(), 0);
    for (int v : ni.sourceAps) isSourceAp[v] = 1;
    std::vector<int> sourceUse(ni.sourceAps.size(), 0);

    for (std::size_t s = 0; s < ni.sinkAps.size(); ++s) {
      int startAp = -1;
      std::size_t apIndex = 0;
      for (std::size_t i = 0; i < ni.sinkAps[s].size(); ++i) {
        int v = ni.sinkAps[s][i];
        if (inArcAt[v] >= 0 || isSourceAp[v]) {
          startAp = v;
          apIndex = i;
          break;
        }
      }
      if (startAp < 0) return {};
      x[ni.privateSinkF[s][apIndex]] = 1.0;
      int cur = startAp;
      int guard = 0;
      while (!isSourceAp[cur]) {
        int a = inArcAt[cur];
        if (a < 0 || ++guard > g.numArcs()) return {};
        x[fVar_[k][a]] += 1.0;
        cur = g.arc(a).from;
      }
      for (std::size_t i = 0; i < ni.sourceAps.size(); ++i) {
        if (ni.sourceAps[i] == cur) {
          ++sourceUse[i];
          break;
        }
      }
    }
    for (std::size_t i = 0; i < ni.sourceAps.size(); ++i)
      x[ni.privateSourceF[i]] = static_cast<double>(sourceUse[i]);

    // Flow upper bounds respected? (merged nets have ub 1.)
    for (int a : sol.usedArcs[k]) {
      int c = fVar_[k][a];
      if (x[c] > model_.upper(c) + 1e-9) return {};
      if (x[c] < 0.5) return {};  // used arc carrying no flow: stub
    }
  }
  return x;
}

int Formulation::separate(const std::vector<double>& x, lp::LpModel& model) {
  route::RouteSolution sol = extractSolution(x);
  std::vector<route::Violation> violations = drc_.check(sol);
  int added = 0;

  for (const route::Violation& v : violations) {
    lp::RowBuilder rb;
    switch (v.kind) {
      case route::ViolationKind::kArcConflict:
      case route::ViolationKind::kOpenNet:
        // Impossible by construction (rows (1) and (4)); if DRC flags one,
        // the extraction threshold glitched -- nothing valid to separate.
        continue;

      case route::ViolationKind::kVertexConflict: {
        if (v.netA < 0) continue;  // blocked vertex: unreachable, arcs absent
        // No-good cut on the observed incident patterns.
        for (int a : v.arcsA)
          if (eVar_[v.netA][a] >= 0) rb.add(eVar_[v.netA][a], 1.0);
        for (int a : v.arcsB)
          if (eVar_[v.netB][a] >= 0) rb.add(eVar_[v.netB][a], 1.0);
        if (rb.cols.size() < 2) continue;
        rb.sense = lp::RowSense::kLe;
        rb.rhs = static_cast<double>(rb.cols.size()) - 1.0;
        break;
      }

      case route::ViolationKind::kViaAdjacency: {
        addEnterTerms(rb, -1, v.viaA, -1);
        if (v.viaB >= 0 && v.viaB != v.viaA) addEnterTerms(rb, -1, v.viaB, -1);
        if (rb.cols.size() < 2) continue;
        rb.sense = lp::RowSense::kLe;
        rb.rhs = 1.0;
        break;
      }

      case route::ViolationKind::kViaFootprint: {
        if (v.netB < 0) continue;  // owner conflict: availability bug, not cut
        addEnterTerms(rb, -1, v.viaA, v.netB);
        std::size_t enterLen = rb.cols.size();
        const grid::RoutingGraph& g = *graph_;
        auto addIncident = [&](int a) {
          if (g.arc(a).viaInstance == v.viaA) return;
          if (eVar_[v.netB][a] >= 0) rb.add(eVar_[v.netB][a], 1.0);
        };
        for (int a : g.outArcs(v.vertex)) addIncident(a);
        for (int a : g.inArcs(v.vertex)) addIncident(a);
        if (enterLen == 0 || rb.cols.size() == enterLen) continue;
        rb.sense = lp::RowSense::kLe;
        rb.rhs = 1.0;
        break;
      }

      case route::ViolationKind::kSadpEol: {
        // Pattern cut: each bracket (E1 - E0 + via) reaches 2 only when the
        // EOL is present with that via arc; forbid both brackets at 2.
        auto bracket = [&](const route::EolInfo& e) {
          int net = e.net;
          auto add = [&](int arc, double coef) {
            if (arc >= 0 && eVar_[net][arc] >= 0)
              rb.add(eVar_[net][arc], coef);
          };
          add(e.e1Fwd, 1.0);
          add(e.e1Rev, 1.0);
          add(e.e0Fwd, -1.0);
          add(e.e0Rev, -1.0);
          add(e.viaArc, 1.0);
        };
        bracket(v.eolA);
        bracket(v.eolB);
        rb.sense = lp::RowSense::kLe;
        rb.rhs = 3.0;
        break;
      }
    }
    if (addRowDeduped(model, rb)) ++added;
  }
  stats_.lazyRows += added;
  return added;
}

}  // namespace optr::core
