#include "core/clip_session.h"

#include "obs/trace.h"

namespace optr::core {

ClipSession::ClipSession(const clip::Clip& clip, const tech::Technology& techn,
                         ClipSessionOptions options)
    : clip_(clip), options_(std::move(options)),
      baseSpan_("session.base_build"),
      graph_(clip_, techn, options_.universe),
      formulation_(clip_, graph_, options_.formulation) {
  baseSpan_.detail(clip_.id);
  baseSpan_.arg("cols", static_cast<double>(formulation_.model().numCols()));
  baseSpan_.end();
  obs::metrics().counter("session.base_build").add();
}

void ClipSession::activateRule(const tech::RuleConfig& rule) {
  // Rule names identify configurations (tech::RuleConfig carries no
  // comparison operator); a same-name activation with no lazy rows since the
  // layer was pushed is already in force.
  if (rule.name == graph_.rule().name && formulation_.stats().lazyRows == 0)
    return;
  obs::Span span("session.rule_overlay");
  span.detail(clip_.id + "|" + rule.name);
  graph_.applyRule(rule);
  formulation_.resetRuleLayer();
  span.arg("rows", static_cast<double>(formulation_.model().numRows()));
  obs::metrics().counter("session.rule_overlay").add();
}

void ClipSession::offerReference(const route::RouteSolution& sol) {
  if (hasReference_) return;
  hasReference_ = true;
  referenceRule_ = graph_.rule().name;
  reference_ = sol;
}

}  // namespace optr::core
