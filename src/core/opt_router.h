// OptRouter: the paper's ILP-based optimal detailed router.
//
// Given a clip, a technology, and a design-rule configuration, OptRouter
// builds the routing graph and multi-commodity-flow ILP (core/formulation),
// optionally warm-starts the branch-and-bound with the heuristic baseline
// router's DRC-clean solution, and solves to proven optimality (or proven
// infeasibility -- the signal the paper uses for "unroutable clips").
//
// Typical use:
//   auto techn = tech::Technology::n28_12t();
//   auto rule  = tech::ruleByName("RULE3").value();
//   core::OptRouter router(techn, rule);
//   core::RouteResult res = router.route(myClip);
//   if (res.status == core::RouteStatus::kOptimal)
//     std::cout << res.cost << " = " << res.wirelength << " + 4*" << res.vias;
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "clip/clip.h"
#include "core/formulation.h"
#include "ilp/mip.h"
#include "route/maze_router.h"
#include "tech/rules.h"
#include "tech/technology.h"

namespace optr::core {

class ClipSession;

enum class RouteStatus : std::uint8_t {
  kOptimal,     // proven minimum-cost rule-correct routing
  kFeasible,    // limit hit; a rule-correct routing exists (not proven best)
  kInfeasible,  // proven: no rule-correct routing exists (unroutable clip)
  kUnknown,     // limit hit before any conclusion
  kError,       // numerical failure in the solver stack
};

const char* toString(RouteStatus s);

/// Where a reported solution came from. Benchmarks must never silently mix
/// proof qualities: a `kIlpProven` optimum and a `kMazeFallback` heuristic
/// routing are not comparable rows, and the ladder records which rung held.
enum class Provenance : std::uint8_t {
  kNone,          // no solution reported (infeasible / error / unknown)
  kIlpProven,     // the ILP's proven optimum
  kIlpIncumbent,  // a MIP incumbent: feasible, validated, not proven best
  kMazeFallback,  // the heuristic router's DRC-clean solution
};

const char* toString(Provenance p);

/// Inverse of toString(Provenance); accepts all four provenance spellings
/// (including "none") and returns nullopt for anything unrecognized.
std::optional<Provenance> provenanceFromString(const std::string& s);

/// Which seed reached the branch-and-bound (RouteResult::warmStartKind).
enum class WarmStartKind : std::uint8_t {
  kNone,       // no incumbent seeded
  kMaze,       // the heuristic maze router's DRC-clean solution
  kCrossRule,  // a session's reference-rule solution, re-validated under the
               // active rule (the cross-rule warm start of rule sweeps)
};

const char* toString(WarmStartKind k);

struct OptRouterOptions {
  FormulationOptions formulation;
  ilp::MipOptions mip{.timeLimitSec = 120.0};
  /// Seed branch-and-bound with the baseline maze router's solution.
  bool warmStart = true;
  route::MazeOptions mazeOptions;
};

struct RouteResult {
  RouteStatus status = RouteStatus::kError;
  route::RouteSolution solution;  // valid for kOptimal / kFeasible
  double cost = 0.0;              // wirelength + viaWeight * vias
  int wirelength = 0;
  int vias = 0;
  double bestBound = 0.0;  // proven lower bound (== cost when optimal)
  double seconds = 0.0;
  std::int64_t nodes = 0;
  std::int64_t lpIterations = 0;
  int lazyRows = 0;
  bool warmStartUsed = false;
  WarmStartKind warmStartKind = WarmStartKind::kNone;
  FormulationStats formulationStats;
  /// Which rung of the degradation ladder produced `solution`.
  Provenance provenance = Provenance::kNone;
  /// Why the solve degraded below kIlpProven (kOk on a clean optimal /
  /// infeasible verdict). Carries the machine-readable taxonomy code.
  Status error = Status::ok();
  /// Numerical node failures the MIP recovered by its Bland-rule retry.
  int solverRetries = 0;
  /// Lazy-separator report/append mismatches survived (see MipResult).
  int separatorMisreports = 0;

  bool hasSolution() const {
    return status == RouteStatus::kOptimal || status == RouteStatus::kFeasible;
  }
};

class OptRouter {
 public:
  OptRouter(const tech::Technology& techn, const tech::RuleConfig& rule,
            OptRouterOptions options = {});

  /// Solves one clip. Stateless across calls (safe to reuse).
  RouteResult route(const clip::Clip& clip) const;

  /// Solves the session's clip under `rule`, reusing the session's base
  /// graph/model (cheap overlay instead of a rebuild) and its cross-rule
  /// warm start: the reference rule's routed solution is re-validated with
  /// DrcChecker under `rule` and seeds the MIP when clean, falling back to
  /// the maze warm start otherwise. The constructor's rule is ignored on
  /// this path -- `rule` must instead belong to the session's universe.
  /// Results are equivalent to route(clip) with a router built for `rule`.
  RouteResult route(ClipSession& session, const tech::RuleConfig& rule) const;

  const OptRouterOptions& options() const { return options_; }

 private:
  /// The ladder body; route() wraps it in the observability envelope
  /// (route.solve span, ladder event, provenance counters, trace flush --
  /// the end of a clip solve is the trace's flush boundary).
  RouteResult routeImpl(const clip::Clip& clip) const;
  RouteResult routeImpl(ClipSession& session,
                        const tech::RuleConfig& rule) const;
  /// Shared solve core: warm start, MIP, degradation ladder. `session` is
  /// non-null on the session path (cross-rule seeding + session.* counters).
  RouteResult solveModel(const clip::Clip& clip,
                         const grid::RoutingGraph& graph,
                         Formulation& formulation, ClipSession* session) const;

  tech::Technology tech_;
  tech::RuleConfig rule_;
  OptRouterOptions options_;
};

}  // namespace optr::core
