// The multi-commodity-flow ILP formulation of the paper's Section 3.
//
// Variables, per net k and physical arc a available to k:
//   e[k][a] in {0,1}  -- arc usage (pays the arc cost in the objective);
//   f[k][a] in [0,|Tk|] -- flow (continuous; integral automatically once e
//                          is fixed, by network-flow integrality).
// Private arcs (supersource -> access point, access point -> supersink)
// carry only flow variables: they never conflict with other nets and have
// zero cost. Two-pin nets get a single merged binary variable (e == f),
// which removes roughly half the columns on typical clips (presolve step 3
// in DESIGN.md).
//
// Rows:
//   (1)  arc exclusivity across nets, per undirected arc pair;
//   (2)  e >= f / |Tk|  (multi-pin nets only; rewritten f - |Tk| e <= 0);
//   (3)  e <= f is omitted by default: with strictly positive arc costs the
//        optimizer never pays for an unused arc, so the row is redundant at
//        the optimum (kept available for the eager-exactness tests);
//   (4)  flow conservation at every vertex, plus |Tk| out of the
//        supersource and 1 into each supersink.
// Design-rule rows (via adjacency, via-shape footprints, SADP end-of-line)
// are emitted either eagerly (paper-faithful, used for complexity analysis
// and small-instance cross-checks) or lazily through separate(), which turns
// DrcChecker violations into valid cutting planes.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "clip/clip.h"
#include "grid/routing_graph.h"
#include "ilp/mip.h"
#include "lp/lp_model.h"
#include "route/drc.h"
#include "route/route_solution.h"

namespace optr::core {

struct FormulationOptions {
  /// Emit all via-adjacency / footprint rows up front instead of lazily.
  /// Eager is the default: the rows are few and the LP bound then prices via
  /// restrictions, which prunes the search far better than lazy cuts (see
  /// bench_ablation_lazy). SADP stays lazy by default because its eager
  /// linearization multiplies the variable count (the paper's Section 4.2
  /// complexity analysis).
  bool eagerViaRules = true;
  /// Emit the full SADP end-of-line linearization up front (p variables).
  bool eagerSadp = false;
  /// Emit the redundant e <= f coupling rows (paper Constraint (3)).
  bool emitUpperCoupling = false;
  /// Merge e and f for two-pin nets (always sound; disable only to measure
  /// the unreduced model size).
  bool mergeTwoPinNets = true;
  /// When >= 0, restrict each net to the bounding box of its access points
  /// expanded by this many tracks (a standard detailed-routing reduction;
  /// < 0 routes on the full clip). Optimality is then relative to the
  /// restricted region -- benches that enable this say so.
  int netBBoxMargin = -1;
  /// When >= 0, restrict each net to layers <= (highest pin layer + margin).
  /// Same caveat as netBBoxMargin; ablated in bench_ablation_lazy.
  int netLayerMargin = -1;
};

struct FormulationStats {
  int numNets = 0;
  int numArcs = 0;        // physical arcs in the graph
  int numVertices = 0;
  int numVariables = 0;
  int numRows = 0;        // rows at build time (before lazy additions)
  int numIntegerVars = 0;
  int lazyRows = 0;       // rows added by separate() so far
};

class Formulation {
 public:
  Formulation(const clip::Clip& clip, const grid::RoutingGraph& graph,
              FormulationOptions options = {});

  /// Re-aligns the rule-dependent layer with the graph's ACTIVE rule after a
  /// RoutingGraph::applyRule(): rolls the model back to the rule-independent
  /// base (dropping the previous rule's eager rows, eager-SADP columns, and
  /// any lazy rows separated during its solve), clears the separation dedup
  /// set, resets the lazyRows stat, then pushes the new rule's layer --
  /// mask-driven variable bounds, refreshed via costs in the objective, and
  /// the rule's eager rows. Equivalent to constructing a fresh Formulation
  /// against the re-ruled graph, at a fraction of the cost
  /// (core::ClipSession's per-rule path).
  void resetRuleLayer();

  lp::LpModel& model() { return model_; }
  const lp::LpModel& model() const { return model_; }
  const std::vector<bool>& integrality() const { return isInteger_; }
  const FormulationStats& stats() const { return stats_; }

  /// Column of e[k][a] (or the merged variable), -1 if the arc is not
  /// available to the net.
  int eVar(int net, int arc) const { return eVar_[net][arc]; }
  /// True when the arc survives availability / region pruning for the net
  /// AND is enabled under the graph's active rule overlay. Warm-start
  /// generators (the maze router's arcFilter) route through this, which
  /// keeps masked arcs out of incumbents.
  bool arcAvailableTo(int net, int arc) const {
    return eVar_[net][arc] >= 0 && graph_->arcEnabled(arc);
  }
  /// Column of f[k][a]; equals eVar for merged two-pin nets.
  int fVar(int net, int arc) const { return fVar_[net][arc]; }

  /// Reads arc usages out of a solver point.
  route::RouteSolution extractSolution(const std::vector<double>& x) const;

  /// Encodes a routed solution (e.g. the baseline router's) as a full
  /// variable assignment for warm-starting the MIP; empty on failure (the
  /// solution must be a family of source-rooted trees).
  std::vector<double> encode(const route::RouteSolution& sol) const;

  /// Lazy separation: extracts the candidate solution, runs DRC, appends
  /// one cutting plane per violation (deduplicated); returns #rows added.
  int separate(const std::vector<double>& x, lp::LpModel& model);

  /// Convenience: a MipSolver lazy callback bound to this formulation.
  ilp::LazySeparator separator() {
    return [this](const std::vector<double>& x, lp::LpModel& m) {
      return separate(x, m);
    };
  }

  const grid::RoutingGraph& graph() const { return *graph_; }
  const clip::Clip& clip() const { return *clip_; }

 private:
  struct NetInfo {
    int numSinks = 0;
    bool merged = false;          // two-pin merged e == f
    std::vector<int> sourceAps;   // graph vertex ids
    std::vector<std::vector<int>> sinkAps;  // per sink
    std::vector<int> privateSourceF;        // f columns, parallel to sourceAps
    std::vector<std::vector<int>> privateSinkF;
    std::vector<char> arcAvailable;
  };

  void computeAvailability();
  void buildVariables();
  void buildFlowConservation();
  void buildArcExclusivity();
  void buildCoupling();
  /// Pushes the rule-dependent layer for the graph's active rule: mask
  /// bounds + objective refresh, then the eager row families.
  void buildRuleLayer();
  void applyMaskBounds();
  void buildEagerViaRules();
  void buildEagerSadp();

  bool arcAvailable(int net, int arc) const;
  /// Sum of e over a via instance's "enter" arcs for one net, as row terms.
  void addEnterTerms(lp::RowBuilder& rb, int net, int viaInst,
                     int excludeNet) const;
  bool addRowDeduped(lp::LpModel& m, const lp::RowBuilder& rb);

  const clip::Clip* clip_;
  const grid::RoutingGraph* graph_;
  FormulationOptions options_;
  lp::LpModel model_;
  std::vector<bool> isInteger_;
  FormulationStats stats_;
  int baseRowMark_ = 0;  // rule-independent base extent (resetRuleLayer)
  int baseColMark_ = 0;

  std::vector<NetInfo> nets_;
  std::vector<std::vector<int>> eVar_, fVar_;
  route::DrcChecker drc_;
  std::set<std::vector<std::int64_t>> emittedRows_;  // dedup signatures
};

}  // namespace optr::core
