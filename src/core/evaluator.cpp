#include "core/evaluator.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <thread>

#include "obs/trace.h"

namespace optr::core {

std::vector<ClipOutcome> RuleEvaluator::solveAll(
    const std::vector<clip::Clip>& clips, const tech::RuleConfig& rule,
    double timeFactor,
    std::vector<std::unique_ptr<ClipSession>>* sessions) const {
  obs::Span sweepSpan("eval.rule");
  sweepSpan.detail(rule.name);
  sweepSpan.attr("rule", rule.name);
  sweepSpan.attr("tech", tech_.name);
  sweepSpan.arg("clips", static_cast<double>(clips.size()));
  OptRouterOptions ro = options_.router;
  ro.mip.timeLimitSec *= timeFactor;
  std::vector<ClipOutcome> out(clips.size());

  auto solveOne = [&](const OptRouter& router, std::size_t i) {
    RouteResult r;
    if (sessions) {
      // Lazily build the clip's session on first touch; later rules reuse
      // it (the base model survives, only the rule overlay changes).
      if (!(*sessions)[i]) {
        ClipSessionOptions so;
        so.formulation = ro.formulation;
        so.universe = options_.rules;
        (*sessions)[i] =
            std::make_unique<ClipSession>(clips[i], tech_, std::move(so));
      }
      r = router.route(*(*sessions)[i], rule);
    } else {
      r = router.route(clips[i]);
    }
    ClipOutcome o;
    o.status = r.status;
    o.provenance = r.provenance;
    o.error = r.error.code();
    o.bestBound = r.bestBound;
    o.seconds = r.seconds;
    o.nodes = r.nodes;
    o.lpIterations = r.lpIterations;
    o.warmStartUsed = r.warmStartUsed;
    if (r.hasSolution()) {
      o.cost = r.cost;
      o.wirelength = r.wirelength;
      o.vias = r.vias;
    }
    out[i] = o;
  };

  const int threads =
      std::max(1, std::min<int>(options_.clipThreads,
                                static_cast<int>(clips.size())));
  if (threads == 1) {
    OptRouter router(tech_, rule, ro);
    for (std::size_t i = 0; i < clips.size(); ++i) solveOne(router, i);
  } else {
    // Clips are independent tasks; results land in their slot, so the
    // outcome vector is identical to the serial sweep's regardless of which
    // worker solved which clip.
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      OptRouter router(tech_, rule, ro);  // per-worker: no shared state
      for (;;) {
        std::size_t i = next.fetch_add(1);
        if (i >= clips.size()) return;
        solveOne(router, i);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  return out;
}

EvaluationResult RuleEvaluator::evaluate(
    const std::vector<clip::Clip>& clips) const {
  obs::Span sweep("eval.sweep");
  sweep.arg("rules", static_cast<double>(options_.rules.size()));
  sweep.arg("clips", static_cast<double>(clips.size()));
  EvaluationResult result;

  // Reference first (longer budget: every delta keys off it).
  tech::RuleConfig reference;
  bool haveReference = false;
  for (const tech::RuleConfig& rc : options_.rules) {
    if (rc.name == options_.referenceRule) {
      reference = rc;
      haveReference = true;
    }
  }
  OPTR_ASSERT(haveReference, "reference rule missing from the rule list");

  // One session per clip, shared by every rule of the sweep. The reference
  // solves first, so each session's cross-rule seed is the reference
  // solution (ClipSession::offerReference).
  std::vector<std::unique_ptr<ClipSession>> sessions(
      options_.sessionReuse ? clips.size() : 0);
  auto* sp = options_.sessionReuse ? &sessions : nullptr;

  result.reference =
      solveAll(clips, reference, options_.referenceTimeFactor, sp);

  for (const tech::RuleConfig& rc : options_.rules) {
    RuleOutcome ro;
    ro.rule = rc;
    ro.applicable = tech::ruleApplicable(rc, tech_);
    if (!ro.applicable) {
      result.rules.push_back(std::move(ro));
      continue;
    }
    ro.clips = (rc.name == options_.referenceRule)
                   ? result.reference
                   : solveAll(clips, rc, 1.0, sp);

    double sum = 0;
    for (std::size_t i = 0; i < clips.size(); ++i) {
      const ClipOutcome& ref = result.reference[i];
      const ClipOutcome& cur = ro.clips[i];
      ro.provenance[static_cast<int>(cur.provenance)]++;
      switch (cur.status) {
        case RouteStatus::kOptimal:
        case RouteStatus::kFeasible:
          ++ro.feasible;
          break;
        case RouteStatus::kInfeasible:
          ++ro.infeasible;
          break;
        default:
          ++ro.unresolved;
          break;
      }
      bool refOk = ref.status == RouteStatus::kOptimal ||
                   ref.status == RouteStatus::kFeasible;
      if (!refOk) continue;  // no reference: clip excluded from the figure
      if (cur.status == RouteStatus::kOptimal ||
          cur.status == RouteStatus::kFeasible) {
        // Clamp at zero: a limit-hit reference is only an upper bound, so a
        // tiny negative delta means "no measurable impact", not a speedup.
        double d = std::max(0.0, cur.cost - ref.cost);
        ro.sortedDelta.push_back(d);
        sum += d;
        ro.maxDelta = std::max(ro.maxDelta, d);
      } else if (cur.status == RouteStatus::kInfeasible) {
        ro.sortedDelta.push_back(std::numeric_limits<double>::infinity());
      }
    }
    std::sort(ro.sortedDelta.begin(), ro.sortedDelta.end());
    int finite = 0;
    for (double d : ro.sortedDelta) finite += std::isfinite(d) ? 1 : 0;
    ro.meanDelta = finite ? sum / finite : 0.0;
    obs::metrics().counter("eval.rules_evaluated").add();
    result.rules.push_back(std::move(ro));
  }
  return result;
}

}  // namespace optr::core
