#include "core/evaluator.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace optr::core {

std::vector<ClipOutcome> RuleEvaluator::solveAll(
    const std::vector<clip::Clip>& clips, const tech::RuleConfig& rule,
    double timeFactor) const {
  OptRouterOptions ro = options_.router;
  ro.mip.timeLimitSec *= timeFactor;
  OptRouter router(tech_, rule, ro);
  std::vector<ClipOutcome> out;
  out.reserve(clips.size());
  for (const clip::Clip& c : clips) {
    RouteResult r = router.route(c);
    ClipOutcome o;
    o.status = r.status;
    o.provenance = r.provenance;
    o.error = r.error.code();
    o.bestBound = r.bestBound;
    o.seconds = r.seconds;
    if (r.hasSolution()) {
      o.cost = r.cost;
      o.wirelength = r.wirelength;
      o.vias = r.vias;
    }
    out.push_back(o);
  }
  return out;
}

EvaluationResult RuleEvaluator::evaluate(
    const std::vector<clip::Clip>& clips) const {
  EvaluationResult result;

  // Reference first (longer budget: every delta keys off it).
  tech::RuleConfig reference;
  bool haveReference = false;
  for (const tech::RuleConfig& rc : options_.rules) {
    if (rc.name == options_.referenceRule) {
      reference = rc;
      haveReference = true;
    }
  }
  OPTR_ASSERT(haveReference, "reference rule missing from the rule list");
  result.reference =
      solveAll(clips, reference, options_.referenceTimeFactor);

  for (const tech::RuleConfig& rc : options_.rules) {
    RuleOutcome ro;
    ro.rule = rc;
    ro.applicable = tech::ruleApplicable(rc, tech_);
    if (!ro.applicable) {
      result.rules.push_back(std::move(ro));
      continue;
    }
    ro.clips = (rc.name == options_.referenceRule)
                   ? result.reference
                   : solveAll(clips, rc, 1.0);

    double sum = 0;
    for (std::size_t i = 0; i < clips.size(); ++i) {
      const ClipOutcome& ref = result.reference[i];
      const ClipOutcome& cur = ro.clips[i];
      ro.provenance[static_cast<int>(cur.provenance)]++;
      switch (cur.status) {
        case RouteStatus::kOptimal:
        case RouteStatus::kFeasible:
          ++ro.feasible;
          break;
        case RouteStatus::kInfeasible:
          ++ro.infeasible;
          break;
        default:
          ++ro.unresolved;
          break;
      }
      bool refOk = ref.status == RouteStatus::kOptimal ||
                   ref.status == RouteStatus::kFeasible;
      if (!refOk) continue;  // no reference: clip excluded from the figure
      if (cur.status == RouteStatus::kOptimal ||
          cur.status == RouteStatus::kFeasible) {
        // Clamp at zero: a limit-hit reference is only an upper bound, so a
        // tiny negative delta means "no measurable impact", not a speedup.
        double d = std::max(0.0, cur.cost - ref.cost);
        ro.sortedDelta.push_back(d);
        sum += d;
        ro.maxDelta = std::max(ro.maxDelta, d);
      } else if (cur.status == RouteStatus::kInfeasible) {
        ro.sortedDelta.push_back(std::numeric_limits<double>::infinity());
      }
    }
    std::sort(ro.sortedDelta.begin(), ro.sortedDelta.end());
    int finite = 0;
    for (double d : ro.sortedDelta) finite += std::isfinite(d) ? 1 : 0;
    ro.meanDelta = finite ? sum / finite : 0.0;
    result.rules.push_back(std::move(ro));
  }
  return result;
}

}  // namespace optr::core
