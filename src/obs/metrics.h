// Process-wide metrics registry: named counters, gauges, and histograms.
//
// Design constraints, in order:
//   1. Hot-path increments must be cheap enough to leave in the simplex
//      pivot loop: a relaxed atomic fetch_add on a cached handle, no locks,
//      no string hashing. Callers resolve a handle once (registry lookup
//      takes a mutex) and then increment through the reference.
//   2. Thread safety everywhere: increments may race from parallel MIP
//      workers and clip pools; snapshot() may race with increments. All
//      reads/writes are relaxed atomics -- a snapshot is a consistent-enough
//      cut for reporting, not a linearizable barrier.
//   3. Zero dependencies beyond the standard library, header-only, and
//      compiled down to no-ops when OPTR_OBS_DISABLED is defined so that an
//      instrumented hot path costs literally nothing in stripped builds.
//
// Metric handles are stable for the process lifetime: the registry never
// deletes a metric, so a `Counter&` captured at startup stays valid in any
// thread. Names are dotted paths ("lp.pivots"); the catalogue lives in
// docs/OBSERVABILITY.md.
//
// Snapshots: MetricsSnapshot freezes every metric's current value; the
// static delta(after, before) subtracts counters/histogram accumulations
// (gauges and histogram min/max keep the `after` value -- they are levels,
// not flows). bench_runtime and the CLI's --metrics flag are built on
// snapshot deltas, which makes them robust against other solves having run
// earlier in the same process.
#pragma once

#ifndef OPTR_OBS_ENABLED
#ifdef OPTR_OBS_DISABLED
#define OPTR_OBS_ENABLED 0
#else
#define OPTR_OBS_ENABLED 1
#endif
#endif

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace optr::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

inline const char* toString(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

#if OPTR_OBS_ENABLED

/// Monotonic event count. add() is the hot-path operation.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  /// Test-only: snapshots/deltas are the supported way to scope a reading.
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A level that can move both ways (queue depth, open nodes).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Distribution of non-negative samples in HDR-style log-linear buckets:
/// bucket 0 holds v < 1; above that each power-of-two octave [2^e, 2^(e+1))
/// is split into kSubBuckets equal-width linear sub-buckets, so the relative
/// bucket width -- and therefore the worst-case percentile estimation error
/// -- is bounded by 1/kSubBuckets regardless of magnitude. The last octave
/// is open-ended. count/sum/min/max ride along for exact aggregates.
class Histogram {
 public:
  static constexpr int kSubBuckets = 16;  // per octave; ~3% midpoint error
  static constexpr int kOctaves = 40;     // covers ns-scale up to ~2^40
  static constexpr int kNumBuckets = 1 + kOctaves * kSubBuckets;

  void record(double v) {
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_, v);
    atomicMin(min_, v);
    atomicMax(max_, v);
    buckets_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  }

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// +inf / -inf respectively while empty.
  double min() const { return min_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  std::int64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(kInf, std::memory_order_relaxed);
    max_.store(-kInf, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  static int bucketOf(double v) {
    if (!(v >= 1.0)) return 0;  // negatives and NaN land in bucket 0
    // frexp gives v = m * 2^e with m in [0.5, 1), so the octave floor is
    // e - 1 -- exact, with none of log2()'s rounding at octave boundaries.
    int e = 0;
    (void)std::frexp(v, &e);
    const int octave = std::min(kOctaves - 1, e - 1);
    const double lo = std::ldexp(1.0, octave);
    int sub = static_cast<int>((v - lo) * kSubBuckets / lo);
    sub = std::max(0, std::min(kSubBuckets - 1, sub));
    return 1 + octave * kSubBuckets + sub;
  }

  /// Inclusive lower edge of bucket `i` (0 for bucket 0).
  static double bucketLow(int i) {
    if (i <= 0) return 0.0;
    const int octave = (i - 1) / kSubBuckets;
    const int sub = (i - 1) % kSubBuckets;
    return std::ldexp(1.0, octave) *
           (1.0 + static_cast<double>(sub) / kSubBuckets);
  }

  /// Exclusive upper edge of bucket `i` (the last bucket reports its nominal
  /// edge 2^kOctaves even though it is open-ended).
  static double bucketHigh(int i) {
    if (i <= 0) return 1.0;
    const int octave = (i - 1) / kSubBuckets;
    const int sub = (i - 1) % kSubBuckets;
    return std::ldexp(1.0, octave) *
           (1.0 + static_cast<double>(sub + 1) / kSubBuckets);
  }

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  static void atomicAdd(std::atomic<double>& a, double v) {
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
  }
  static void atomicMin(std::atomic<double>& a, double v) {
    double cur = a.load(std::memory_order_relaxed);
    while (v < cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void atomicMax(std::atomic<double>& a, double v) {
    double cur = a.load(std::memory_order_relaxed);
    while (v > cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{kInf};
  std::atomic<double> max_{-kInf};
  std::atomic<std::int64_t> buckets_[kNumBuckets] = {};
};

/// One frozen reading of the registry. Entries are sorted by name.
class MetricsSnapshot {
 public:
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::int64_t value = 0;  // counter / gauge
    std::int64_t count = 0;  // histogram
    double sum = 0.0;        // histogram
    double min = 0.0;        // histogram (level: delta keeps `after`)
    double max = 0.0;        // histogram (level: delta keeps `after`)
    std::vector<std::int64_t> buckets;  // histogram; indexed like Histogram

    /// Percentile estimate from the bucketed distribution, p in [0, 1].
    /// Returns the midpoint of the bucket holding the rank-ceil(p*count)
    /// sample, clamped to [min, max]; worst-case relative error is half a
    /// sub-bucket width (~3% at kSubBuckets = 16). 0 when empty.
    double percentile(double p) const {
      if (count <= 0 || buckets.empty()) return 0.0;
      std::int64_t target =
          static_cast<std::int64_t>(std::ceil(p * static_cast<double>(count)));
      target = std::max<std::int64_t>(1, std::min(target, count));
      std::int64_t cum = 0;
      for (std::size_t i = 0; i < buckets.size(); ++i) {
        cum += buckets[i];
        if (cum >= target) {
          double est = 0.5 * (Histogram::bucketLow(static_cast<int>(i)) +
                              Histogram::bucketHigh(static_cast<int>(i)));
          return std::max(min, std::min(max, est));
        }
      }
      return max;
    }
  };

  const std::vector<Entry>& entries() const { return entries_; }

  const Entry* find(std::string_view name) const {
    for (const Entry& e : entries_)
      if (e.name == name) return &e;
    return nullptr;
  }

  /// Counter/gauge value by name; 0 when absent.
  std::int64_t value(std::string_view name) const {
    const Entry* e = find(name);
    return e ? e->value : 0;
  }

  /// after - before. Counters and histogram count/sum/buckets subtract;
  /// gauges and histogram min/max keep the `after` reading. Metrics absent
  /// from `before` are treated as zero there.
  static MetricsSnapshot delta(const MetricsSnapshot& after,
                               const MetricsSnapshot& before) {
    MetricsSnapshot out;
    for (const Entry& a : after.entries_) {
      Entry e = a;
      if (const Entry* b = before.find(a.name)) {
        if (e.kind != MetricKind::kGauge) e.value -= b->value;
        e.count -= b->count;
        e.sum -= b->sum;
        for (std::size_t i = 0;
             i < e.buckets.size() && i < b->buckets.size(); ++i) {
          e.buckets[i] -= b->buckets[i];
        }
      }
      out.entries_.push_back(std::move(e));
    }
    return out;
  }

  /// One JSON object: {"lp.pivots":123,"lp.pivots_per_solve":{...}}.
  std::string toJson() const {
    std::string out = "{";
    bool first = true;
    char buf[64];
    for (const Entry& e : entries_) {
      if (!first) out += ",";
      first = false;
      out += "\"" + e.name + "\":";
      if (e.kind == MetricKind::kHistogram) {
        std::snprintf(buf, sizeof buf,
                      "{\"count\":%lld,\"sum\":%.17g", (long long)e.count,
                      e.sum);
        out += buf;
        if (e.count > 0) {
          std::snprintf(buf, sizeof buf, ",\"min\":%.17g,\"max\":%.17g", e.min,
                        e.max);
          out += buf;
          std::snprintf(buf, sizeof buf,
                        ",\"p50\":%.6g,\"p95\":%.6g,\"p99\":%.6g",
                        e.percentile(0.50), e.percentile(0.95),
                        e.percentile(0.99));
          out += buf;
        }
        out += "}";
      } else {
        std::snprintf(buf, sizeof buf, "%lld", (long long)e.value);
        out += buf;
      }
    }
    out += "}";
    return out;
  }

  void add(Entry e) { entries_.push_back(std::move(e)); }

 private:
  std::vector<Entry> entries_;
};

/// The registry. Lookup by name takes a mutex and is meant for handle
/// resolution, not per-increment use. Metrics are never removed, so
/// returned references are valid for the process lifetime.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name) {
    return slot(name, MetricKind::kCounter).counter;
  }
  Gauge& gauge(std::string_view name) {
    return slot(name, MetricKind::kGauge).gauge;
  }
  Histogram& histogram(std::string_view name) {
    return slot(name, MetricKind::kHistogram).histogram;
  }

  MetricsSnapshot snapshot() const {
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, m] : metrics_) {
      MetricsSnapshot::Entry e;
      e.name = name;
      e.kind = m->kind;
      switch (m->kind) {
        case MetricKind::kCounter:
          e.value = m->counter.value();
          break;
        case MetricKind::kGauge:
          e.value = m->gauge.value();
          break;
        case MetricKind::kHistogram:
          e.count = m->histogram.count();
          e.sum = m->histogram.sum();
          e.min = m->histogram.min();
          e.max = m->histogram.max();
          e.buckets.resize(Histogram::kNumBuckets);
          for (int i = 0; i < Histogram::kNumBuckets; ++i)
            e.buckets[i] = m->histogram.bucket(i);
          break;
      }
      snap.add(std::move(e));
    }
    return snap;  // std::map iterates sorted by name
  }

  /// Test-only: zeroes every metric (handles stay valid).
  void resetAll() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, m] : metrics_) {
      (void)name;
      m->counter.reset();
      m->gauge.reset();
      m->histogram.reset();
    }
  }

 private:
  struct Metric {
    explicit Metric(MetricKind k) : kind(k) {}
    MetricKind kind;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  Metric& slot(std::string_view name, MetricKind kind) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = metrics_.find(std::string(name));
    if (it == metrics_.end()) {
      it = metrics_
               .emplace(std::string(name), std::make_unique<Metric>(kind))
               .first;
    }
    return *it->second;
  }

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Metric>> metrics_;
};

/// The process-wide registry. Intentionally leaked (never destroyed) so
/// metric handles and late increments from detached threads stay safe
/// during shutdown.
inline MetricsRegistry& metrics() {
  static MetricsRegistry* g = new MetricsRegistry();
  return *g;
}

#else  // !OPTR_OBS_ENABLED --------------------------------------------------

// No-op mirrors with identical call signatures; every call inlines away.

class Counter {
 public:
  void add(std::int64_t = 1) {}
  std::int64_t value() const { return 0; }
  void reset() {}
};

class Gauge {
 public:
  void set(std::int64_t) {}
  void add(std::int64_t = 1) {}
  std::int64_t value() const { return 0; }
  void reset() {}
};

class Histogram {
 public:
  static constexpr int kSubBuckets = 16;
  static constexpr int kOctaves = 40;
  static constexpr int kNumBuckets = 1 + kOctaves * kSubBuckets;
  void record(double) {}
  std::int64_t count() const { return 0; }
  double sum() const { return 0.0; }
  double min() const { return 0.0; }
  double max() const { return 0.0; }
  std::int64_t bucket(int) const { return 0; }
  void reset() {}
  static int bucketOf(double) { return 0; }
  static double bucketLow(int) { return 0.0; }
  static double bucketHigh(int) { return 0.0; }
};

class MetricsSnapshot {
 public:
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::int64_t value = 0;
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<std::int64_t> buckets;
    double percentile(double) const { return 0.0; }
  };
  const std::vector<Entry>& entries() const {
    static const std::vector<Entry> kEmpty;
    return kEmpty;
  }
  const Entry* find(std::string_view) const { return nullptr; }
  std::int64_t value(std::string_view) const { return 0; }
  static MetricsSnapshot delta(const MetricsSnapshot&, const MetricsSnapshot&) {
    return {};
  }
  std::string toJson() const { return "{}"; }
  void add(Entry) {}
};

class MetricsRegistry {
 public:
  Counter& counter(std::string_view) { return counter_; }
  Gauge& gauge(std::string_view) { return gauge_; }
  Histogram& histogram(std::string_view) { return histogram_; }
  MetricsSnapshot snapshot() const { return {}; }
  void resetAll() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

inline MetricsRegistry& metrics() {
  static MetricsRegistry g;
  return g;
}

#endif  // OPTR_OBS_ENABLED

}  // namespace optr::obs
