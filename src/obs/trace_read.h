// Reader for the JSONL trace schema written by obs/trace.h. Aggregation and
// multi-file merge live in obs/analyze.h; the Table 5 attribution join is
// report/attribution.h.
//
// Shared by tools/trace_report.cpp and the golden schema tests, so the
// parser *is* the schema contract: if the writer changes shape, the golden
// test fails here first. The parser is hand-rolled for the restricted JSON
// the writer emits (flat objects, string/number/bool values, one nested
// "args" object of string->number) -- same approach as the batch harness
// checkpoints, no external JSON dependency.
//
// Unlike metrics.h/trace.h this header is NOT compiled out under
// OPTR_OBS_DISABLED: reading a trace produced elsewhere is always legal.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace optr::obs {

/// Highest trace schema version this reader understands. v1 files (no
/// "attrs" objects, no per-thread drop metas) remain readable; the extra
/// fields simply stay empty.
inline constexpr int kTraceSchemaVersion = 2;
inline constexpr const char* kTraceSchemaName = "optr-trace";

/// One parsed JSONL line. `type` is "meta", "span", or "event".
struct TraceEntry {
  std::string type;
  std::string name;
  std::string detail;
  std::uint32_t tid = 0;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::string trace;  // 16-hex cross-process trace id; empty = none
  std::uint64_t remoteParent = 0;  // origin-process parent span id ("rpar")
  /// Set by mergeTraces when `remoteParent` was resolved to a span in
  /// another file and `parent` now points at it (never set by loadTrace).
  bool stitched = false;
  std::int64_t ts = 0;   // ns since session start
  std::int64_t dur = 0;  // ns; 0 for events
  std::vector<std::pair<std::string, double>> args;
  std::vector<std::pair<std::string, std::string>> attrs;  // v2 string attrs
  // Meta-only fields.
  std::string schema;
  int version = 0;
  bool end = false;
  std::int64_t durNs = 0;        // session duration (closing meta)
  std::int64_t dropped = -1;     // -1 = not present
  std::int64_t droppedTid = -1;  // per-thread drop meta: tid, -1 = absent
  std::int64_t droppedCount = 0;
  std::int64_t pid = 0;  // per-thread drop meta: emitting process

  double arg(std::string_view key, double fallback = 0.0) const {
    for (const auto& [k, v] : args)
      if (k == key) return v;
    return fallback;
  }
  bool hasArg(std::string_view key) const {
    for (const auto& [k, v] : args) {
      (void)v;
      if (k == key) return true;
    }
    return false;
  }
  std::string_view attr(std::string_view key,
                        std::string_view fallback = {}) const {
    for (const auto& [k, v] : attrs)
      if (k == key) return v;
    return fallback;
  }
  bool hasAttr(std::string_view key) const {
    for (const auto& [k, v] : attrs) {
      (void)v;
      if (k == key) return true;
    }
    return false;
  }
};

/// Bookkeeping from loadTrace: how many payload lines were read and how
/// many were skipped as malformed (torn tail writes from crashed workers).
struct TraceLoadStats {
  std::int64_t lines = 0;      // non-empty lines seen (including header)
  std::int64_t malformed = 0;  // skipped: truncated or unparseable
  bool sawFooter = false;      // closing {"end":true} meta present
};

namespace trace_read_detail {

/// Finds `"key":` at object depth 1 and returns the index just past the
/// colon, or npos. Keys inside nested objects (args) are not matched.
inline std::size_t findKey(std::string_view line, std::string_view key) {
  // Built by append (not operator+) to sidestep a GCC 12 -Wrestrict
  // false positive on the temporary-string concatenation chain.
  std::string pat;
  pat.reserve(key.size() + 3);
  pat += '"';
  pat += key;
  pat += "\":";
  int depth = 0;
  bool inString = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (inString) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        inString = false;
      }
      continue;
    }
    if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
    } else if (c == '"') {
      if (depth == 1 && line.compare(i, pat.size(), pat) == 0) {
        return i + pat.size();
      }
      inString = true;
    }
  }
  return std::string_view::npos;
}

inline bool parseString(std::string_view line, std::string_view key,
                        std::string& out) {
  std::size_t i = findKey(line, key);
  if (i == std::string_view::npos || i >= line.size() || line[i] != '"')
    return false;
  ++i;
  out.clear();
  for (; i < line.size(); ++i) {
    char c = line[i];
    if (c == '"') return true;
    if (c == '\\' && i + 1 < line.size()) {
      const char e = line[++i];
      switch (e) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (i + 4 < line.size()) {
            unsigned code = 0;
            std::sscanf(std::string(line.substr(i + 1, 4)).c_str(), "%4x",
                        &code);
            out += static_cast<char>(code);
            i += 4;
          }
          break;
        }
        default: out += e;
      }
      continue;
    }
    out += c;
  }
  return false;  // unterminated
}

inline bool parseNumber(std::string_view line, std::string_view key,
                        double& out) {
  const std::size_t i = findKey(line, key);
  if (i == std::string_view::npos) return false;
  return std::sscanf(std::string(line.substr(i, 32)).c_str(), "%lf", &out) ==
         1;
}

inline bool parseBool(std::string_view line, std::string_view key) {
  const std::size_t i = findKey(line, key);
  return i != std::string_view::npos && line.compare(i, 4, "true") == 0;
}

/// Parses the flat string->number object at `"args":{...}`.
inline void parseArgs(std::string_view line,
                      std::vector<std::pair<std::string, double>>& out) {
  std::size_t i = findKey(line, "args");
  if (i == std::string_view::npos || i >= line.size() || line[i] != '{')
    return;
  ++i;
  while (i < line.size() && line[i] != '}') {
    if (line[i] != '"') {
      ++i;
      continue;
    }
    ++i;
    std::string key;
    while (i < line.size() && line[i] != '"') key += line[i++];
    ++i;  // closing quote
    if (i < line.size() && line[i] == ':') ++i;
    double v = 0.0;
    std::sscanf(std::string(line.substr(i, 32)).c_str(), "%lf", &v);
    while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
    out.emplace_back(std::move(key), v);
    if (i < line.size() && line[i] == ',') ++i;
  }
}

/// Parses the flat string->string object at `"attrs":{...}` (v2).
inline void parseAttrs(
    std::string_view line,
    std::vector<std::pair<std::string, std::string>>& out) {
  std::size_t i = findKey(line, "attrs");
  if (i == std::string_view::npos || i >= line.size() || line[i] != '{')
    return;
  ++i;
  while (i < line.size() && line[i] != '}') {
    if (line[i] != '"') {
      ++i;
      continue;
    }
    ++i;
    std::string key;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) ++i;
      key += line[i++];
    }
    ++i;  // closing quote
    if (i < line.size() && line[i] == ':') ++i;
    std::string val;
    if (i < line.size() && line[i] == '"') {
      ++i;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\' && i + 1 < line.size()) {
          const char e = line[++i];
          switch (e) {
            case 'n': val += '\n'; break;
            case 'r': val += '\r'; break;
            case 't': val += '\t'; break;
            default: val += e;
          }
          ++i;
          continue;
        }
        val += line[i++];
      }
      ++i;  // closing quote
    }
    out.emplace_back(std::move(key), std::move(val));
    while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
    if (i < line.size() && line[i] == ',') ++i;
  }
}

/// True when `line` is a structurally complete JSON object: starts with
/// '{', braces balance to zero outside strings, and nothing but whitespace
/// follows. A torn tail write (worker killed mid-append) fails this.
inline bool completeObject(std::string_view line) {
  std::size_t i = 0;
  while (i < line.size() &&
         (line[i] == ' ' || line[i] == '\t' || line[i] == '\r'))
    ++i;
  if (i >= line.size() || line[i] != '{') return false;
  int depth = 0;
  bool inString = false;
  for (; i < line.size(); ++i) {
    const char c = line[i];
    if (inString) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        inString = false;
      }
      continue;
    }
    if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth == 0) {
        for (++i; i < line.size(); ++i) {
          if (line[i] != ' ' && line[i] != '\t' && line[i] != '\r')
            return false;
        }
        return true;
      }
    } else if (c == '"') {
      inString = true;
    }
  }
  return false;  // unbalanced or unterminated string: truncated line
}

}  // namespace trace_read_detail

/// Parses one JSONL line. False for blank lines, lines without a "t" tag,
/// or structurally truncated lines (torn tail writes).
inline bool parseTraceLine(std::string_view line, TraceEntry& out) {
  namespace d = trace_read_detail;
  out = TraceEntry{};
  if (!d::completeObject(line)) return false;
  if (!d::parseString(line, "t", out.type)) return false;
  d::parseString(line, "name", out.name);
  d::parseString(line, "detail", out.detail);
  d::parseString(line, "schema", out.schema);
  double num = 0.0;
  if (d::parseNumber(line, "tid", num))
    out.tid = static_cast<std::uint32_t>(num);
  if (d::parseNumber(line, "id", num))
    out.id = static_cast<std::uint64_t>(num);
  if (d::parseNumber(line, "par", num))
    out.parent = static_cast<std::uint64_t>(num);
  d::parseString(line, "trace", out.trace);
  if (d::parseNumber(line, "rpar", num))
    out.remoteParent = static_cast<std::uint64_t>(num);
  if (d::parseNumber(line, "ts", num)) out.ts = static_cast<std::int64_t>(num);
  if (d::parseNumber(line, "dur", num))
    out.dur = static_cast<std::int64_t>(num);
  if (d::parseNumber(line, "version", num)) out.version = static_cast<int>(num);
  if (d::parseNumber(line, "durNs", num))
    out.durNs = static_cast<std::int64_t>(num);
  if (d::parseNumber(line, "dropped", num))
    out.dropped = static_cast<std::int64_t>(num);
  if (d::parseNumber(line, "droppedTid", num))
    out.droppedTid = static_cast<std::int64_t>(num);
  if (d::parseNumber(line, "droppedCount", num))
    out.droppedCount = static_cast<std::int64_t>(num);
  if (d::parseNumber(line, "pid", num))
    out.pid = static_cast<std::int64_t>(num);
  out.end = d::parseBool(line, "end");
  d::parseArgs(line, out.args);
  d::parseAttrs(line, out.attrs);
  return true;
}

/// Loads a whole trace file. Fails on IO errors, a missing/alien schema
/// header, or a schema version newer than this reader. Malformed lines
/// *after* a valid header (torn tail writes from crash-interrupted workers)
/// are skipped and counted in `stats` rather than failing the load --
/// a crashed fleet worker must not make the surviving trace unreadable.
inline StatusOr<std::vector<TraceEntry>> loadTrace(
    const std::string& path, TraceLoadStats* stats = nullptr) {
  std::ifstream in(path);
  if (!in) {
    return Status::error(ErrorCode::kIo, "cannot open trace file: " + path);
  }
  TraceLoadStats local;
  TraceLoadStats& st = stats ? *stats : local;
  st = TraceLoadStats{};
  std::vector<TraceEntry> entries;
  std::string line;
  bool sawHeader = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++st.lines;
    TraceEntry e;
    if (!parseTraceLine(line, e)) {
      if (!sawHeader) {
        return Status::error(ErrorCode::kParse,
                             "unparseable trace header: " + path);
      }
      ++st.malformed;
      continue;
    }
    if (!sawHeader) {
      if (e.type != "meta" || e.schema != kTraceSchemaName) {
        return Status::error(ErrorCode::kParse,
                             "not an optr-trace file: " + path);
      }
      if (e.version > kTraceSchemaVersion) {
        return Status::error(
            ErrorCode::kUnavailable,
            "trace schema version " + std::to_string(e.version) +
                " is newer than this reader (" +
                std::to_string(kTraceSchemaVersion) + ")");
      }
      sawHeader = true;
    }
    if (e.type == "meta" && e.end) st.sawFooter = true;
    entries.push_back(std::move(e));
  }
  if (!sawHeader) {
    return Status::error(ErrorCode::kParse, "empty trace file: " + path);
  }
  return entries;
}

}  // namespace optr::obs
