// Reader + aggregator for the JSONL trace schema written by obs/trace.h.
//
// Shared by tools/trace_report.cpp and the golden schema tests, so the
// parser *is* the schema contract: if the writer changes shape, the golden
// test fails here first. The parser is hand-rolled for the restricted JSON
// the writer emits (flat objects, string/number/bool values, one nested
// "args" object of string->number) -- same approach as the batch harness
// checkpoints, no external JSON dependency.
//
// Unlike metrics.h/trace.h this header is NOT compiled out under
// OPTR_OBS_DISABLED: reading a trace produced elsewhere is always legal.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace optr::obs {

/// Highest trace schema version this reader understands.
inline constexpr int kTraceSchemaVersion = 1;
inline constexpr const char* kTraceSchemaName = "optr-trace";

/// One parsed JSONL line. `type` is "meta", "span", or "event".
struct TraceEntry {
  std::string type;
  std::string name;
  std::string detail;
  std::uint32_t tid = 0;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::int64_t ts = 0;   // ns since session start
  std::int64_t dur = 0;  // ns; 0 for events
  std::vector<std::pair<std::string, double>> args;
  // Meta-only fields.
  std::string schema;
  int version = 0;
  bool end = false;
  std::int64_t durNs = 0;     // session duration (closing meta)
  std::int64_t dropped = -1;  // -1 = not present

  double arg(std::string_view key, double fallback = 0.0) const {
    for (const auto& [k, v] : args)
      if (k == key) return v;
    return fallback;
  }
  bool hasArg(std::string_view key) const {
    for (const auto& [k, v] : args) {
      (void)v;
      if (k == key) return true;
    }
    return false;
  }
};

namespace trace_read_detail {

/// Finds `"key":` at object depth 1 and returns the index just past the
/// colon, or npos. Keys inside nested objects (args) are not matched.
inline std::size_t findKey(std::string_view line, std::string_view key) {
  // Built by append (not operator+) to sidestep a GCC 12 -Wrestrict
  // false positive on the temporary-string concatenation chain.
  std::string pat;
  pat.reserve(key.size() + 3);
  pat += '"';
  pat += key;
  pat += "\":";
  int depth = 0;
  bool inString = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (inString) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        inString = false;
      }
      continue;
    }
    if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
    } else if (c == '"') {
      if (depth == 1 && line.compare(i, pat.size(), pat) == 0) {
        return i + pat.size();
      }
      inString = true;
    }
  }
  return std::string_view::npos;
}

inline bool parseString(std::string_view line, std::string_view key,
                        std::string& out) {
  std::size_t i = findKey(line, key);
  if (i == std::string_view::npos || i >= line.size() || line[i] != '"')
    return false;
  ++i;
  out.clear();
  for (; i < line.size(); ++i) {
    char c = line[i];
    if (c == '"') return true;
    if (c == '\\' && i + 1 < line.size()) {
      const char e = line[++i];
      switch (e) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (i + 4 < line.size()) {
            unsigned code = 0;
            std::sscanf(std::string(line.substr(i + 1, 4)).c_str(), "%4x",
                        &code);
            out += static_cast<char>(code);
            i += 4;
          }
          break;
        }
        default: out += e;
      }
      continue;
    }
    out += c;
  }
  return false;  // unterminated
}

inline bool parseNumber(std::string_view line, std::string_view key,
                        double& out) {
  const std::size_t i = findKey(line, key);
  if (i == std::string_view::npos) return false;
  return std::sscanf(std::string(line.substr(i, 32)).c_str(), "%lf", &out) ==
         1;
}

inline bool parseBool(std::string_view line, std::string_view key) {
  const std::size_t i = findKey(line, key);
  return i != std::string_view::npos && line.compare(i, 4, "true") == 0;
}

/// Parses the flat string->number object at `"args":{...}`.
inline void parseArgs(std::string_view line,
                      std::vector<std::pair<std::string, double>>& out) {
  std::size_t i = findKey(line, "args");
  if (i == std::string_view::npos || i >= line.size() || line[i] != '{')
    return;
  ++i;
  while (i < line.size() && line[i] != '}') {
    if (line[i] != '"') {
      ++i;
      continue;
    }
    ++i;
    std::string key;
    while (i < line.size() && line[i] != '"') key += line[i++];
    ++i;  // closing quote
    if (i < line.size() && line[i] == ':') ++i;
    double v = 0.0;
    std::sscanf(std::string(line.substr(i, 32)).c_str(), "%lf", &v);
    while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
    out.emplace_back(std::move(key), v);
    if (i < line.size() && line[i] == ',') ++i;
  }
}

}  // namespace trace_read_detail

/// Parses one JSONL line. False for blank lines or lines without a "t" tag.
inline bool parseTraceLine(std::string_view line, TraceEntry& out) {
  namespace d = trace_read_detail;
  out = TraceEntry{};
  if (!d::parseString(line, "t", out.type)) return false;
  d::parseString(line, "name", out.name);
  d::parseString(line, "detail", out.detail);
  d::parseString(line, "schema", out.schema);
  double num = 0.0;
  if (d::parseNumber(line, "tid", num))
    out.tid = static_cast<std::uint32_t>(num);
  if (d::parseNumber(line, "id", num))
    out.id = static_cast<std::uint64_t>(num);
  if (d::parseNumber(line, "par", num))
    out.parent = static_cast<std::uint64_t>(num);
  if (d::parseNumber(line, "ts", num)) out.ts = static_cast<std::int64_t>(num);
  if (d::parseNumber(line, "dur", num))
    out.dur = static_cast<std::int64_t>(num);
  if (d::parseNumber(line, "version", num)) out.version = static_cast<int>(num);
  if (d::parseNumber(line, "durNs", num))
    out.durNs = static_cast<std::int64_t>(num);
  if (d::parseNumber(line, "dropped", num))
    out.dropped = static_cast<std::int64_t>(num);
  out.end = d::parseBool(line, "end");
  d::parseArgs(line, out.args);
  return true;
}

/// Loads a whole trace file. Fails on IO errors, a missing/alien schema
/// header, or a schema version newer than this reader.
inline StatusOr<std::vector<TraceEntry>> loadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::error(ErrorCode::kIo, "cannot open trace file: " + path);
  }
  std::vector<TraceEntry> entries;
  std::string line;
  bool sawHeader = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    TraceEntry e;
    if (!parseTraceLine(line, e)) {
      return Status::error(ErrorCode::kParse,
                           "unparseable trace line: " + line);
    }
    if (!sawHeader) {
      if (e.type != "meta" || e.schema != kTraceSchemaName) {
        return Status::error(ErrorCode::kParse,
                             "not an optr-trace file: " + path);
      }
      if (e.version > kTraceSchemaVersion) {
        return Status::error(
            ErrorCode::kUnavailable,
            "trace schema version " + std::to_string(e.version) +
                " is newer than this reader (" +
                std::to_string(kTraceSchemaVersion) + ")");
      }
      sawHeader = true;
    }
    entries.push_back(std::move(e));
  }
  if (!sawHeader) {
    return Status::error(ErrorCode::kParse, "empty trace file: " + path);
  }
  return entries;
}

/// Aggregated per-span-name row. Self time is total minus the time spent in
/// child spans, so summing self across all rows approximates wall time once
/// (no double counting down the span tree).
struct PhaseRow {
  std::string name;
  std::int64_t count = 0;
  std::int64_t totalNs = 0;
  std::int64_t selfNs = 0;
  double meanArg = 0.0;  // mean of the row's primary arg (iters/pivots)
};

struct RuleRow {
  std::string rule;
  std::int64_t solves = 0;
  std::int64_t totalNs = 0;
  double pivots = 0.0;
  double nodes = 0.0;
};

struct TraceReport {
  std::vector<PhaseRow> phases;  // sorted by totalNs descending
  std::vector<RuleRow> rules;    // from route.solve details ("clip|rule")
  std::int64_t sessionNs = 0;    // closing meta durNs, or max(ts+dur)
  std::int64_t rootNs = 0;       // summed duration of root spans
  std::int64_t events = 0;
  std::int64_t spans = 0;
  std::int64_t dropped = 0;
  std::vector<std::string> anomalies;
};

/// Aggregates a parsed trace: per-phase totals with self time, per-rule
/// breakdown, wall-clock coverage, and pivot-count outlier flags.
inline TraceReport analyzeTrace(const std::vector<TraceEntry>& entries) {
  TraceReport rep;
  std::map<std::uint64_t, const TraceEntry*> byId;
  std::map<std::uint64_t, std::int64_t> childNs;  // parent id -> child time
  for (const TraceEntry& e : entries) {
    if (e.type == "meta") {
      if (e.end) rep.sessionNs = e.durNs;
      if (e.dropped >= 0) rep.dropped = e.dropped;
      continue;
    }
    rep.sessionNs = std::max(rep.sessionNs, e.ts + e.dur);
    if (e.type == "event") {
      ++rep.events;
      continue;
    }
    if (e.type != "span") continue;
    ++rep.spans;
    byId[e.id] = &e;
    if (e.parent != 0) childNs[e.parent] += e.dur;
  }

  std::map<std::string, PhaseRow> phases;
  std::map<std::string, RuleRow> rules;
  // Pivot-outlier detection over mip.node spans.
  double nodeSum = 0.0, nodeSq = 0.0;
  std::int64_t nodeN = 0;
  for (const auto& [id, e] : byId) {
    PhaseRow& row = phases[e->name];
    row.name = e->name;
    ++row.count;
    row.totalNs += e->dur;
    // Children running concurrently on other threads can sum past the
    // parent's duration (e.g. batch.run over a thread pool); self time is
    // "not attributed to children", so it floors at zero, never negative.
    row.selfNs += std::max<std::int64_t>(0, e->dur - childNs[id]);
    // A span is a root for coverage purposes when its parent was never
    // written (dropped, or genuinely top-level).
    if (e->parent == 0 || byId.find(e->parent) == byId.end()) {
      rep.rootNs += e->dur;
    }
    if (e->name == "mip.node") {
      const double iters = e->arg("iters");
      row.meanArg += iters;
      nodeSum += iters;
      nodeSq += iters * iters;
      ++nodeN;
    }
    if (e->name == "route.solve" && !e->detail.empty()) {
      const std::size_t bar = e->detail.find('|');
      const std::string rule = bar == std::string::npos
                                   ? e->detail
                                   : e->detail.substr(bar + 1);
      RuleRow& rr = rules[rule];
      rr.rule = rule;
      ++rr.solves;
      rr.totalNs += e->dur;
      rr.pivots += e->arg("pivots");
      rr.nodes += e->arg("nodes");
    }
  }
  for (auto& [name, row] : phases) {
    if (row.count > 0) row.meanArg /= static_cast<double>(row.count);
    rep.phases.push_back(row);
  }
  std::sort(rep.phases.begin(), rep.phases.end(),
            [](const PhaseRow& a, const PhaseRow& b) {
              return a.totalNs != b.totalNs ? a.totalNs > b.totalNs
                                           : a.name < b.name;
            });
  for (auto& [name, row] : rules) rep.rules.push_back(row);

  if (nodeN >= 8) {
    const double mean = nodeSum / static_cast<double>(nodeN);
    const double var =
        std::max(0.0, nodeSq / static_cast<double>(nodeN) - mean * mean);
    const double limit = std::max(mean + 4.0 * std::sqrt(var), 4.0 * mean);
    for (const auto& [id, e] : byId) {
      if (e->name != "mip.node") continue;
      const double iters = e->arg("iters");
      if (iters > limit && iters > 64.0) {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "pivot outlier: mip.node id=%llu did %.0f LP pivots "
                      "(mean %.1f over %lld nodes)",
                      static_cast<unsigned long long>(id), iters, mean,
                      static_cast<long long>(nodeN));
        rep.anomalies.push_back(buf);
      }
    }
  }
  if (rep.dropped > 0) {
    rep.anomalies.push_back(
        "trace dropped " + std::to_string(rep.dropped) +
        " records (ring overflow); timings remain valid, counts are lower "
        "bounds");
  }
  return rep;
}

}  // namespace optr::obs
