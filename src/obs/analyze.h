// Trace analytics over parsed optr-trace entries (obs/trace_read.h):
//   * analyzeTrace -- per-phase totals/self-time/duration percentiles,
//     per-rule rollup, wall-clock coverage, per-thread drop accounting, and
//     pivot-outlier anomalies. Feeds tools/trace_report.
//   * mergeTraces / loadTraces -- combine traces from independent processes
//     (fleet workers, each with its own file and its own span-id space) into
//     one entry stream. Span ids are compacted into a single dense id space,
//     which both resolves cross-file collisions and undoes the precision
//     hazard of pid<<32 offsets surviving a double round-trip.
//
// Like trace_read.h this header is NOT compiled out under OPTR_OBS_DISABLED:
// analyzing a trace produced elsewhere is always legal.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/trace_read.h"

namespace optr::obs {

/// Aggregated per-span-name row. Self time is total minus the time spent in
/// child spans, so summing self across all rows approximates wall time once
/// (no double counting down the span tree). Percentiles are exact (computed
/// from the sorted per-span durations, not bucketed).
struct PhaseRow {
  std::string name;
  std::int64_t count = 0;
  std::int64_t totalNs = 0;
  std::int64_t selfNs = 0;
  std::int64_t p50Ns = 0;
  std::int64_t p95Ns = 0;
  std::int64_t p99Ns = 0;
  double meanArg = 0.0;  // mean of the row's primary arg (iters/pivots)
};

struct RuleRow {
  std::string rule;
  std::int64_t solves = 0;
  std::int64_t totalNs = 0;
  double pivots = 0.0;
  double nodes = 0.0;
};

/// Records lost by one ring (thread) of one process, from the per-thread
/// drop meta lines ({"t":"meta","droppedTid":..,"droppedCount":..,"pid":..}).
struct ThreadDrops {
  std::int64_t pid = 0;
  std::int64_t tid = 0;
  std::int64_t count = 0;
};

struct TraceReport {
  std::vector<PhaseRow> phases;  // sorted by totalNs descending
  std::vector<RuleRow> rules;    // from route.solve details ("clip|rule")
  std::int64_t sessionNs = 0;    // closing meta durNs, or max(ts+dur)
  std::int64_t rootNs = 0;       // summed duration of root spans
  std::int64_t events = 0;
  std::int64_t spans = 0;
  std::int64_t dropped = 0;
  std::vector<ThreadDrops> threadDrops;  // per (pid, tid); v2 traces only
  std::vector<std::string> anomalies;
};

/// Aggregates a parsed trace: per-phase totals with self time and duration
/// percentiles, per-rule breakdown, wall-clock coverage, per-thread drop
/// attribution, and pivot-count outlier flags.
inline TraceReport analyzeTrace(const std::vector<TraceEntry>& entries) {
  TraceReport rep;
  std::map<std::uint64_t, const TraceEntry*> byId;
  std::map<std::uint64_t, std::int64_t> childNs;  // parent id -> child time
  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> drops;
  for (const TraceEntry& e : entries) {
    if (e.type == "meta") {
      if (e.end) rep.sessionNs = std::max(rep.sessionNs, e.durNs);
      if (e.dropped >= 0) rep.dropped += e.dropped;
      if (e.droppedTid >= 0) drops[{e.pid, e.droppedTid}] += e.droppedCount;
      continue;
    }
    rep.sessionNs = std::max(rep.sessionNs, e.ts + e.dur);
    if (e.type == "event") {
      ++rep.events;
      continue;
    }
    if (e.type != "span") continue;
    ++rep.spans;
    byId[e.id] = &e;
    if (e.parent != 0) childNs[e.parent] += e.dur;
  }
  for (const auto& [key, n] : drops) {
    rep.threadDrops.push_back(ThreadDrops{key.first, key.second, n});
  }

  std::map<std::string, PhaseRow> phases;
  std::map<std::string, std::vector<std::int64_t>> phaseDurs;
  std::map<std::string, RuleRow> rules;
  // Pivot-outlier detection over mip.node spans.
  double nodeSum = 0.0, nodeSq = 0.0;
  std::int64_t nodeN = 0;
  for (const auto& [id, e] : byId) {
    PhaseRow& row = phases[e->name];
    row.name = e->name;
    ++row.count;
    row.totalNs += e->dur;
    phaseDurs[e->name].push_back(e->dur);
    // Children running concurrently on other threads can sum past the
    // parent's duration (e.g. batch.run over a thread pool); self time is
    // "not attributed to children", so it floors at zero, never negative.
    row.selfNs += std::max<std::int64_t>(0, e->dur - childNs[id]);
    // A span is a root for coverage purposes when its parent was never
    // written (dropped, or genuinely top-level).
    if (e->parent == 0 || byId.find(e->parent) == byId.end()) {
      rep.rootNs += e->dur;
    }
    if (e->name == "mip.node") {
      const double iters = e->arg("iters");
      row.meanArg += iters;
      nodeSum += iters;
      nodeSq += iters * iters;
      ++nodeN;
    }
    if (e->name == "route.solve" && !e->detail.empty()) {
      const std::size_t bar = e->detail.find('|');
      const std::string rule = bar == std::string::npos
                                   ? e->detail
                                   : e->detail.substr(bar + 1);
      RuleRow& rr = rules[rule];
      rr.rule = rule;
      ++rr.solves;
      rr.totalNs += e->dur;
      rr.pivots += e->arg("pivots");
      rr.nodes += e->arg("nodes");
    }
  }
  for (auto& [name, row] : phases) {
    if (row.count > 0) row.meanArg /= static_cast<double>(row.count);
    std::vector<std::int64_t>& durs = phaseDurs[name];
    std::sort(durs.begin(), durs.end());
    auto pct = [&durs](double p) {
      std::size_t r = static_cast<std::size_t>(
          std::ceil(p * static_cast<double>(durs.size())));
      r = std::max<std::size_t>(1, std::min(r, durs.size()));
      return durs[r - 1];
    };
    row.p50Ns = pct(0.50);
    row.p95Ns = pct(0.95);
    row.p99Ns = pct(0.99);
    rep.phases.push_back(row);
  }
  std::sort(rep.phases.begin(), rep.phases.end(),
            [](const PhaseRow& a, const PhaseRow& b) {
              return a.totalNs != b.totalNs ? a.totalNs > b.totalNs
                                           : a.name < b.name;
            });
  for (auto& [name, row] : rules) rep.rules.push_back(row);

  if (nodeN >= 8) {
    const double mean = nodeSum / static_cast<double>(nodeN);
    const double var =
        std::max(0.0, nodeSq / static_cast<double>(nodeN) - mean * mean);
    const double limit = std::max(mean + 4.0 * std::sqrt(var), 4.0 * mean);
    for (const auto& [id, e] : byId) {
      if (e->name != "mip.node") continue;
      const double iters = e->arg("iters");
      if (iters > limit && iters > 64.0) {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "pivot outlier: mip.node id=%llu did %.0f LP pivots "
                      "(mean %.1f over %lld nodes)",
                      static_cast<unsigned long long>(id), iters, mean,
                      static_cast<long long>(nodeN));
        rep.anomalies.push_back(buf);
      }
    }
  }
  for (const ThreadDrops& d : rep.threadDrops) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "thread tid=%lld (pid %lld) dropped %lld records "
                  "(ring overflow)",
                  static_cast<long long>(d.tid), static_cast<long long>(d.pid),
                  static_cast<long long>(d.count));
    rep.anomalies.push_back(buf);
  }
  if (rep.dropped > 0) {
    rep.anomalies.push_back(
        "trace dropped " + std::to_string(rep.dropped) +
        " records (ring overflow); timings remain valid, counts are lower "
        "bounds");
  }
  return rep;
}

/// Merges traces from independent sessions (fleet worker / daemon files)
/// into one entry stream, stitching causally where trace context allows.
///
/// Base layer (unchanged from the dense remap this grew out of): every span
/// id is rewritten into a dense per-merge id space so ids from different
/// files -- or fork children whose pid<<32 offsets exceed double precision
/// -- cannot collide after the remap. Parent ids pointing at spans that
/// were never written (dropped records) become 0, which analyzeTrace
/// already treats as "root for coverage purposes". Non-span entries
/// (events, metas) pass through with parents remapped.
///
/// Causal layer: a span carrying cross-process context ("trace" 16-hex id +
/// "rpar" origin span id, written by Span(name, TraceContext)) gets its
/// parent resolved ACROSS files to the remapped id of the span that minted
/// the context (same "trace", original id == rpar, written by
/// Span::mintContext). One distributed request then renders as a single
/// tree spanning pids instead of N positional fragments. Unresolvable
/// context (origin file absent from the merge) falls back to the base
/// behavior. Stitched entries are flagged (`TraceEntry::stitched`).
inline std::vector<TraceEntry> mergeTraces(
    std::vector<std::vector<TraceEntry>> traces) {
  // Pass 1: per-file dense remap, while indexing origin spans by
  // (trace id, pre-remap span id) -> post-remap id for the causal pass.
  std::vector<TraceEntry> out;
  std::map<std::pair<std::string, std::uint64_t>, std::uint64_t> byContext;
  std::uint64_t nextId = 1;
  for (std::vector<TraceEntry>& trace : traces) {
    std::map<std::uint64_t, std::uint64_t> remap;
    for (const TraceEntry& e : trace) {
      if (e.type == "span" && e.id != 0 && remap.find(e.id) == remap.end()) {
        remap[e.id] = nextId++;
      }
    }
    for (TraceEntry& e : trace) {
      if (e.type == "span" && e.id != 0) {
        if (!e.trace.empty())
          byContext.emplace(std::make_pair(e.trace, e.id), remap[e.id]);
        e.id = remap[e.id];
      }
      if (e.parent != 0) {
        auto it = remap.find(e.parent);
        e.parent = it == remap.end() ? 0 : it->second;
      }
      out.push_back(std::move(e));
    }
  }
  // Pass 2: resolve remote parents. The origin span indexes itself under
  // its own id, so only look up spans pointing at a DIFFERENT span.
  for (TraceEntry& e : out) {
    if (e.type != "span" || e.trace.empty() || e.remoteParent == 0) continue;
    auto it = byContext.find(std::make_pair(e.trace, e.remoteParent));
    if (it == byContext.end() || it->second == e.id) continue;
    e.parent = it->second;
    e.stitched = true;
  }
  return out;
}

/// Loads and merges several trace files; see loadTrace / mergeTraces.
/// `stats`, when given, accumulates across all files.
inline StatusOr<std::vector<TraceEntry>> loadTraces(
    const std::vector<std::string>& paths, TraceLoadStats* stats = nullptr) {
  if (stats) *stats = TraceLoadStats{};
  std::vector<std::vector<TraceEntry>> traces;
  for (const std::string& path : paths) {
    TraceLoadStats st;
    auto entriesOr = loadTrace(path, &st);
    if (!entriesOr.isOk()) return entriesOr.status();
    if (stats) {
      stats->lines += st.lines;
      stats->malformed += st.malformed;
      stats->sawFooter = stats->sawFooter || st.sawFooter;
    }
    traces.push_back(std::move(entriesOr).value());
  }
  return mergeTraces(std::move(traces));
}

}  // namespace optr::obs
