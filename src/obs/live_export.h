// LiveMetricsExporter: periodic, crash-survivable metrics export for
// long-lived processes (the `optrouter serve` daemon, the sweep
// coordinator).
//
// The single-shot delta the CLI writes at process exit is useless for a
// daemon: a SIGKILL (or OOM kill) loses every number. This exporter is
// driven from the host's existing idle tick (the daemon's poll loop, the
// coordinator's tick()) and, every `intervalSec`, appends one timestamped
// JSONL row holding the MetricsRegistry snapshot-delta SINCE THE PREVIOUS
// ROW -- each row is a rate sample over its interval, and summing a column
// over all rows reconstructs the process-lifetime delta.
//
// Crash safety is atomic-rename, not append: every flush rewrites the full
// accumulated row set to `<path>.tmp`, fsyncs, and rename()s over `path`.
// At any instant -- including mid-SIGKILL -- `path` is either absent or a
// complete, parseable JSONL file; there is never a torn tail line. The
// row count of these files is bounded by process lifetime / interval, so
// the rewrite stays cheap at any realistic cadence.
//
// Row schema (one flat-topped object per line; "metrics" nests the
// MetricsSnapshot::toJson object, histograms included):
//   {"t":"metrics","seq":0,"ts":1754640000.123,"uptimeSec":2.0,
//    "intervalSec":2.0,"metrics":{"service.request.accepted":5,...}}
// A final row written by finalRow() (graceful shutdown) additionally
// carries "final":true.
//
// Works identically in OPTR_OBS_DISABLED builds: rows are still written on
// cadence, with an empty "metrics":{} payload -- liveness telemetry (seq,
// ts, uptime) does not depend on the metrics registry being compiled in.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "obs/metrics.h"

namespace optr::obs {

struct LiveExportOptions {
  /// Destination file; empty disables the exporter entirely.
  std::string path;
  /// Cadence between rows. tick() calls more frequent than this are no-ops.
  double intervalSec = 2.0;
};

class LiveMetricsExporter {
 public:
  explicit LiveMetricsExporter(LiveExportOptions options)
      : options_(std::move(options)),
        start_(std::chrono::steady_clock::now()),
        lastRow_(start_),
        previous_(metrics().snapshot()) {}

  bool enabled() const { return !options_.path.empty(); }

  /// Writes a row when the interval has elapsed since the last one. Call
  /// from the host's idle loop at any frequency >= the interval. Returns
  /// true when a row was written.
  bool tick() {
    if (!enabled()) return false;
    const auto now = std::chrono::steady_clock::now();
    if (std::chrono::duration<double>(now - lastRow_).count() <
        options_.intervalSec) {
      return false;
    }
    writeRow(/*final=*/false);
    return true;
  }

  /// Unconditionally writes a closing row (graceful shutdown), so the file
  /// always accounts for the tail interval. No-op when disabled.
  void finalRow() {
    if (!enabled()) return;
    writeRow(/*final=*/true);
  }

  int rowsWritten() const { return seq_; }

 private:
  void writeRow(bool final) {
    const auto now = std::chrono::steady_clock::now();
    MetricsSnapshot current = metrics().snapshot();
    MetricsSnapshot delta = MetricsSnapshot::delta(current, previous_);
    const double ts =
        std::chrono::duration<double>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    char head[192];
    std::snprintf(head, sizeof head,
                  "{\"t\":\"metrics\",\"seq\":%d,\"ts\":%.3f,"
                  "\"uptimeSec\":%.3f,\"intervalSec\":%.3f,%s\"metrics\":",
                  seq_, ts,
                  std::chrono::duration<double>(now - start_).count(),
                  std::chrono::duration<double>(now - lastRow_).count(),
                  final ? "\"final\":true," : "");
    rows_ += head;
    rows_ += delta.toJson();
    rows_ += "}\n";
    ++seq_;
    previous_ = std::move(current);
    lastRow_ = now;

    // Atomic replace: the published file is always complete.
    const std::string tmp = options_.path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) return;  // telemetry must never take the host down
    bool ok = std::fwrite(rows_.data(), 1, rows_.size(), f) == rows_.size();
    ok = std::fflush(f) == 0 && ok;
    std::fclose(f);
    if (ok) std::rename(tmp.c_str(), options_.path.c_str());
  }

  LiveExportOptions options_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point lastRow_;
  MetricsSnapshot previous_;
  std::string rows_;
  int seq_ = 0;
};

}  // namespace optr::obs
