// Structured tracing: spans and events, written as JSONL at flush points.
//
// Model
//   * One process-wide TraceSession, started/stopped explicitly (CLI flag,
//     test fixture). While active, `Span` RAII objects and `event()` calls
//     enqueue fixed-size records into a lock-free per-thread ring buffer.
//   * Parenting is implicit: a thread-local "current span" makes every new
//     span/event a child of the innermost live span on that thread, so the
//     solver stack (batch.task > route.solve > mip.solve > mip.node) nests
//     without plumbing ids through APIs.
//   * Rings are drained to the trace file by flushAll(), called at solve
//     boundaries (OptRouter::route end, session stop). The producer side
//     never blocks and never allocates: when a ring is full the record is
//     dropped and the `trace.dropped` metric is incremented -- tracing must
//     not be able to stall or deadlock the solver, ever.
//   * Record fields are POD; `name` must be a string literal (static
//     storage), `detail` is a short inline copy, plus up to 8 numeric args
//     and up to 6 string attrs (key literal, value copied inline) that carry
//     join keys like clip/rule/tech/provenance for offline attribution.
//
// Concurrency. Each ring is single-producer (its thread) single-consumer
// (whoever holds the flush mutex): head is released by the producer and
// acquired by the consumer, tail the other way round. Registration of new
// threads takes the mutex once per thread per session.
//
// Fork safety (harness::BatchRunner fork isolation). The trace file is
// opened O_APPEND, so parent and child writes are byte-atomic appends.
// Protocol: the parent calls flushAll() immediately before fork() (so the
// child's inherited rings are empty), the child calls onFork(offset) once
// (discards any stray inherited records and offsets the span-id counter so
// child ids cannot collide with the parent's). The child's records parent
// correctly under the batch.task span because fork copies the thread-local
// current-span.
//
// Disabled builds: with OPTR_OBS_DISABLED defined every entity below is an
// empty inline shell; start() reports kUnavailable so callers can tell the
// user tracing was compiled out.
//
// Schema "optr-trace" v2 (docs/OBSERVABILITY.md documents it fully; v1
// files -- no "attrs", no per-thread drop metas -- remain readable):
//   {"t":"meta","schema":"optr-trace","version":2}
//   {"t":"span","name":"route.solve","tid":1,"id":7,"par":6,"ts":12,
//    "dur":34,"detail":"...","attrs":{"rule":"RULE3"},"args":{"cost":40}}
//   {"t":"event","name":"mip.incumbent","tid":1,"par":6,"ts":13,
//    "args":{"obj":17}}
//   {"t":"meta","droppedTid":3,"droppedCount":5,"pid":1234}   (per thread)
//   {"t":"meta","end":true,"durNs":99,"dropped":5}
//
// Cross-process propagation (additive v2 fields, version unchanged --
// readers ignore unknown keys): a span that participates in a distributed
// request additionally carries
//   "trace":"9f3a6c01d2e4b875"    16-hex trace id shared by every process
//   "rpar":42                     span id of the parent IN ANOTHER process
// The origin side mints the context (Span::mintContext) and ships it over
// the wire (service/sweep protocol traceId+parentSpan fields); the remote
// side opens its span with Span(name, TraceContext). analyze.h's
// mergeTraces resolves "rpar" across files into real parent edges so one
// request renders as a single causal tree spanning pids.
#pragma once

#include "obs/metrics.h"  // defines OPTR_OBS_ENABLED

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

#if OPTR_OBS_ENABLED
#include <fcntl.h>
#include <unistd.h>
#endif

namespace optr::obs {

/// One numeric annotation on a span or event. `key` must have static
/// storage duration (string literal).
struct TraceArg {
  const char* key;
  double value;
};

/// One string annotation on a span or event. `key` must have static storage
/// duration (string literal); `value` is copied inline (truncated to the
/// record's attr capacity).
struct TraceAttr {
  const char* key;
  std::string_view value;
};

struct TraceOptions {
  /// Ring capacity in records per thread. Small values are useful in tests
  /// to exercise the overflow path; the default absorbs a full MIP solve's
  /// node spans between flushes for the clip sizes in this repo.
  std::size_t ringCapacity = std::size_t{1} << 14;
};

/// Cross-process trace context: a process-agnostic trace id plus the span
/// id of the parent in the originating process. Minted on the origin side
/// (Span::mintContext), shipped over a wire protocol, and handed to the
/// Span(name, TraceContext) constructor on the remote side. A
/// default-constructed context is inert everywhere.
struct TraceContext {
  std::uint64_t traceId = 0;  // 0 = no context
  std::uint64_t spanId = 0;   // origin-process span id (the remote parent)
  bool valid() const { return traceId != 0 && spanId != 0; }
};

#if OPTR_OBS_ENABLED

namespace trace_detail {

struct TraceRecord {
  enum class Kind : std::uint8_t { kSpan, kEvent };
  static constexpr int kDetailCap = 48;
  static constexpr int kMaxArgs = 8;
  static constexpr int kMaxAttrs = 6;
  static constexpr int kAttrValCap = 24;

  struct InlineAttr {
    const char* key = nullptr;  // static storage only
    char value[kAttrValCap] = {0};
  };

  Kind kind = Kind::kEvent;
  std::uint8_t numArgs = 0;
  std::uint8_t numAttrs = 0;
  std::uint64_t id = 0;      // span id; 0 for events
  std::uint64_t parent = 0;  // 0 = root
  std::uint64_t traceId = 0;       // cross-process trace id; 0 = none
  std::uint64_t remoteParent = 0;  // parent span id in another process
  std::int64_t tsNs = 0;     // absolute steady-clock ns; flush rebases
  std::int64_t durNs = 0;    // 0 for events
  const char* name = "";     // static storage only
  char detail[kDetailCap] = {0};
  TraceArg args[kMaxArgs] = {};
  InlineAttr attrs[kMaxAttrs] = {};

  void addAttr(const char* key, std::string_view value) {
    if (numAttrs >= kMaxAttrs) return;
    InlineAttr& a = attrs[numAttrs++];
    a.key = key;
    const std::size_t n =
        std::min(value.size(), std::size_t{kAttrValCap - 1});
    std::memcpy(a.value, value.data(), n);
    a.value[n] = 0;
  }
};

struct Ring {
  explicit Ring(std::size_t capacity) : slots(capacity) {}

  std::vector<TraceRecord> slots;
  std::atomic<std::uint64_t> head{0};  // next write; producer-owned
  std::atomic<std::uint64_t> tail{0};  // next read; consumer-owned
  std::atomic<std::uint64_t> dropped{0};
  /// Portion of `dropped` already covered by an emitted drop-meta line, so
  /// cadence flushes (pulse) report deltas, never double-count.
  std::atomic<std::uint64_t> droppedReported{0};
  std::uint64_t generation = 0;  // session this ring belongs to
  std::uint32_t tid = 0;

  /// Producer side. Never blocks: false (drop) when full.
  bool push(const TraceRecord& r) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    if (h - tail.load(std::memory_order_acquire) >= slots.size()) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots[h % slots.size()] = r;
    head.store(h + 1, std::memory_order_release);
    return true;
  }
};

struct State {
  std::mutex mu;  // registration + flush + start/stop
  std::vector<std::unique_ptr<Ring>> rings;
  std::atomic<std::uint64_t> generation{0};
  std::atomic<bool> active{false};
  int fd = -1;
  std::size_t ringCapacity = TraceOptions{}.ringCapacity;
  std::uint32_t tidCounter = 0;  // under mu
  std::atomic<std::uint64_t> nextSpanId{1};
  std::int64_t t0Ns = 0;  // session start, absolute steady ns
  std::uint64_t droppedAtStart = 0;
};

struct TlsState {
  Ring* ring = nullptr;
  std::uint64_t generation = 0;
  std::uint64_t currentSpan = 0;
};

/// Intentionally leaked: records may arrive from detached threads during
/// static destruction.
inline State& state() {
  static State* g = new State();
  return *g;
}

inline TlsState& tls() {
  thread_local TlsState t;
  return t;
}

inline std::int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline Ring* threadRing() {
  State& s = state();
  TlsState& t = tls();
  const std::uint64_t gen = s.generation.load(std::memory_order_acquire);
  if (t.ring == nullptr || t.generation != gen) {
    std::lock_guard<std::mutex> lock(s.mu);
    auto ring = std::make_unique<Ring>(s.ringCapacity);
    ring->generation = gen;
    ring->tid = s.tidCounter++;
    t.ring = ring.get();
    t.generation = gen;
    s.rings.push_back(std::move(ring));
  }
  return t.ring;
}

inline void appendEscaped(std::string& out, const char* str) {
  for (const char* p = str; *p; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

inline void formatRecord(const TraceRecord& r, std::uint32_t tid,
                         std::int64_t t0Ns, std::string& out) {
  char buf[96];
  out += r.kind == TraceRecord::Kind::kSpan ? "{\"t\":\"span\",\"name\":\""
                                            : "{\"t\":\"event\",\"name\":\"";
  appendEscaped(out, r.name);
  std::int64_t ts = r.tsNs - t0Ns;
  if (ts < 0) ts = 0;
  std::snprintf(buf, sizeof buf, "\",\"tid\":%u,\"ts\":%lld",
                tid, static_cast<long long>(ts));
  out += buf;
  if (r.kind == TraceRecord::Kind::kSpan) {
    std::snprintf(buf, sizeof buf, ",\"id\":%llu,\"dur\":%lld",
                  static_cast<unsigned long long>(r.id),
                  static_cast<long long>(r.durNs));
    out += buf;
  }
  if (r.parent != 0) {
    std::snprintf(buf, sizeof buf, ",\"par\":%llu",
                  static_cast<unsigned long long>(r.parent));
    out += buf;
  }
  if (r.traceId != 0) {
    std::snprintf(buf, sizeof buf, ",\"trace\":\"%016llx\"",
                  static_cast<unsigned long long>(r.traceId));
    out += buf;
  }
  if (r.remoteParent != 0) {
    std::snprintf(buf, sizeof buf, ",\"rpar\":%llu",
                  static_cast<unsigned long long>(r.remoteParent));
    out += buf;
  }
  if (r.detail[0] != 0) {
    out += ",\"detail\":\"";
    appendEscaped(out, r.detail);
    out += "\"";
  }
  if (r.numAttrs > 0) {
    out += ",\"attrs\":{";
    for (int i = 0; i < r.numAttrs; ++i) {
      if (i > 0) out += ",";
      out += "\"";
      appendEscaped(out, r.attrs[i].key);
      out += "\":\"";
      appendEscaped(out, r.attrs[i].value);
      out += "\"";
    }
    out += "}";
  }
  if (r.numArgs > 0) {
    out += ",\"args\":{";
    for (int i = 0; i < r.numArgs; ++i) {
      if (i > 0) out += ",";
      out += "\"";
      appendEscaped(out, r.args[i].key);
      // JSON has no inf/nan literals (node bounds start at -infinity).
      if (std::isfinite(r.args[i].value)) {
        std::snprintf(buf, sizeof buf, "\":%.17g", r.args[i].value);
      } else {
        std::snprintf(buf, sizeof buf, "\":null");
      }
      out += buf;
    }
    out += "}";
  }
  out += "}\n";
}

inline void writeAll(int fd, const std::string& buf) {
  std::size_t done = 0;
  while (done < buf.size()) {
    const ssize_t n = ::write(fd, buf.data() + done, buf.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // tracing must never take the solver down with it
    }
    done += static_cast<std::size_t>(n);
  }
}

/// Drains every current-generation ring into the file. Caller holds mu.
inline void drainLocked(State& s) {
  if (s.fd < 0) return;
  const std::uint64_t gen = s.generation.load(std::memory_order_relaxed);
  std::string buf;
  for (const auto& ring : s.rings) {
    if (ring->generation != gen) continue;
    std::uint64_t t = ring->tail.load(std::memory_order_relaxed);
    const std::uint64_t h = ring->head.load(std::memory_order_acquire);
    for (; t != h; ++t) {
      formatRecord(ring->slots[t % ring->slots.size()], ring->tid, s.t0Ns,
                   buf);
    }
    ring->tail.store(t, std::memory_order_release);
  }
  if (!buf.empty()) writeAll(s.fd, buf);
}

inline std::uint64_t sessionDroppedLocked(State& s) {
  const std::uint64_t gen = s.generation.load(std::memory_order_relaxed);
  std::uint64_t total = 0;
  for (const auto& ring : s.rings) {
    if (ring->generation == gen)
      total += ring->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

/// One meta line per current-generation ring that dropped records SINCE THE
/// LAST drop meta, so the reader can tell *which* thread (and, across fork
/// isolation, which process) lost spans rather than only a global sum.
/// Counts are deltas: cadence flushes (pulse) call this repeatedly and a
/// ring whose losses were already reported stays silent; summing every
/// droppedCount for a tid reconstructs its session total. Caller holds mu.
inline void writeDropMetasLocked(State& s) {
  if (s.fd < 0) return;
  const std::uint64_t gen = s.generation.load(std::memory_order_relaxed);
  std::string buf;
  char line[128];
  for (const auto& ring : s.rings) {
    if (ring->generation != gen) continue;
    const std::uint64_t d = ring->dropped.load(std::memory_order_relaxed);
    const std::uint64_t seen =
        ring->droppedReported.load(std::memory_order_relaxed);
    if (d <= seen) continue;
    std::snprintf(line, sizeof line,
                  "{\"t\":\"meta\",\"droppedTid\":%u,\"droppedCount\":%llu,"
                  "\"pid\":%lld}\n",
                  ring->tid, static_cast<unsigned long long>(d - seen),
                  static_cast<long long>(::getpid()));
    buf += line;
    ring->droppedReported.store(d, std::memory_order_relaxed);
  }
  if (!buf.empty()) writeAll(s.fd, buf);
}

inline void record(const TraceRecord& r) {
  State& s = state();
  if (!s.active.load(std::memory_order_acquire)) return;
  if (!threadRing()->push(r)) {
    static Counter& dropped = metrics().counter("trace.dropped");
    dropped.add();
  }
}

}  // namespace trace_detail

class TraceSession {
 public:
  /// Opens `path` (truncated) and activates tracing process-wide. Fails if
  /// a session is already active or the file cannot be opened.
  static Status start(const std::string& path, TraceOptions options = {}) {
    trace_detail::State& s = trace_detail::state();
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.active.load(std::memory_order_relaxed)) {
      return Status::error(ErrorCode::kInvalidInput,
                           "trace session already active");
    }
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND,
                          0644);
    if (fd < 0) {
      return Status::error(ErrorCode::kIo,
                           "cannot open trace file: " + path);
    }
    s.fd = fd;
    s.ringCapacity = options.ringCapacity == 0 ? 1 : options.ringCapacity;
    // Bumping the generation makes every thread lazily re-register with a
    // fresh ring sized for this session; prior-session rings are retired in
    // place (never freed -- a stale producer can still touch them safely).
    s.generation.fetch_add(1, std::memory_order_release);
    s.tidCounter = 0;
    s.nextSpanId.store(1, std::memory_order_relaxed);
    s.t0Ns = trace_detail::nowNs();
    trace_detail::writeAll(
        s.fd, "{\"t\":\"meta\",\"schema\":\"optr-trace\",\"version\":2}\n");
    s.active.store(true, std::memory_order_release);
    return Status::ok();
  }

  /// Drains all rings, writes the closing meta record, and closes the file.
  /// Spans still open when stop() runs are lost (close them first).
  static void stop() {
    trace_detail::State& s = trace_detail::state();
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.active.load(std::memory_order_relaxed)) return;
    s.active.store(false, std::memory_order_release);
    trace_detail::drainLocked(s);
    trace_detail::writeDropMetasLocked(s);
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "{\"t\":\"meta\",\"end\":true,\"durNs\":%lld,"
                  "\"dropped\":%llu}\n",
                  static_cast<long long>(trace_detail::nowNs() - s.t0Ns),
                  static_cast<unsigned long long>(
                      trace_detail::sessionDroppedLocked(s)));
    trace_detail::writeAll(s.fd, buf);
    ::close(s.fd);
    s.fd = -1;
  }

  static bool active() {
    return trace_detail::state().active.load(std::memory_order_acquire);
  }

  /// Drains every thread's ring to the file. Called at solve boundaries;
  /// cheap (one relaxed load) when no session is active.
  static void flushAll() {
    trace_detail::State& s = trace_detail::state();
    if (!s.active.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lock(s.mu);
    trace_detail::drainLocked(s);
  }

  /// Cadence/idle flush: drains the rings AND emits per-thread drop-meta
  /// deltas for records lost since the previous pulse (or session start).
  /// Long-lived daemons call this on their poll tick so an idle process
  /// never strands spans in memory and ring overflow is visible in the
  /// file while the process is still alive -- not only at stop()/fork.
  /// Cheap (one acquire load) when no session is active.
  static void pulse() {
    trace_detail::State& s = trace_detail::state();
    if (!s.active.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lock(s.mu);
    trace_detail::drainLocked(s);
    trace_detail::writeDropMetasLocked(s);
  }

  /// Mints a process-unique, nonzero 64-bit trace id for cross-process
  /// propagation (pid- and time-salted so ids from independently started
  /// processes do not collide). Usable whether or not a session is active.
  static std::uint64_t mintTraceId() {
    static std::atomic<std::uint64_t> counter{0};
    std::uint64_t x = (static_cast<std::uint64_t>(::getpid()) << 40) ^
                      static_cast<std::uint64_t>(trace_detail::nowNs()) ^
                      (counter.fetch_add(1, std::memory_order_relaxed) << 56);
    // splitmix64 finalizer: spreads pid/time structure over all 64 bits.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x == 0 ? 1 : x;
  }

  /// Fork-child hook for children that want their OWN trace file instead of
  /// appending to the inherited one: closes the inherited descriptor
  /// without writing anything (no footer -- that is the parent's to write)
  /// and deactivates the session so the child can start() a fresh file.
  /// No-op when no session is active.
  static void abandon() {
    trace_detail::State& s = trace_detail::state();
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.active.load(std::memory_order_relaxed)) return;
    s.active.store(false, std::memory_order_release);
    ::close(s.fd);
    s.fd = -1;
  }

  /// Id of the calling thread's innermost live span (0 = none). Hand it to
  /// the parent-override Span constructor to nest work done on *another*
  /// thread (e.g. MIP workers under the mip.solve span).
  static std::uint64_t currentSpanId() {
    return trace_detail::tls().currentSpan;
  }

  /// Child-side fork hook: discards any records inherited in ring buffers
  /// (the parent flushes before fork; this is belt-and-braces) and offsets
  /// the span-id counter so child span ids cannot collide with the
  /// parent's. Call once, immediately after fork(), before any tracing.
  static void onFork(std::uint64_t idOffset) {
    trace_detail::State& s = trace_detail::state();
    for (const auto& ring : s.rings) {
      ring->tail.store(ring->head.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      // Drop counts inherited from the parent are the parent's to report;
      // the child's per-thread drop metas must cover only its own losses.
      ring->dropped.store(0, std::memory_order_relaxed);
      ring->droppedReported.store(0, std::memory_order_relaxed);
    }
    s.nextSpanId.fetch_add(idOffset, std::memory_order_relaxed);
  }

  /// Writes per-thread drop meta lines for this process's rings (tid +
  /// count + pid). stop() does this automatically for the parent; fork
  /// children -- which never run stop() -- call it after their final
  /// flushAll(), before _exit, so their losses are visible in the file.
  static void emitThreadDrops() {
    trace_detail::State& s = trace_detail::state();
    if (!s.active.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lock(s.mu);
    trace_detail::writeDropMetasLocked(s);
  }
};

/// RAII span. Construction snapshots the start time and pushes itself as
/// the thread's current span; end()/destruction emits the record. All
/// methods are no-ops when no session was active at construction.
class Span {
 public:
  explicit Span(const char* name) {
    trace_detail::State& s = trace_detail::state();
    if (!s.active.load(std::memory_order_acquire)) return;
    live_ = true;
    rec_.kind = trace_detail::TraceRecord::Kind::kSpan;
    rec_.name = name;
    rec_.id = s.nextSpanId.fetch_add(1, std::memory_order_relaxed);
    trace_detail::TlsState& t = trace_detail::tls();
    savedParent_ = t.currentSpan;
    rec_.parent = t.currentSpan;
    t.currentSpan = rec_.id;
    rec_.tsNs = trace_detail::nowNs();
  }
  /// Same, but parented under an explicit span id (from
  /// TraceSession::currentSpanId() on another thread) instead of the
  /// calling thread's current span.
  Span(const char* name, std::uint64_t parentOverride) : Span(name) {
    if (live_) rec_.parent = parentOverride;
  }
  /// Same, but additionally tagged with a REMOTE parent: the span keeps its
  /// local parent (so the in-process tree stays intact) and records the
  /// trace id + origin span id from `ctx`; mergeTraces resolves the edge
  /// across files. An invalid context degrades to the plain constructor.
  Span(const char* name, const TraceContext& ctx) : Span(name) {
    if (live_ && ctx.valid()) {
      rec_.traceId = ctx.traceId;
      rec_.remoteParent = ctx.spanId;
    }
  }
  ~Span() { end(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Short free-text annotation (truncated to 47 chars), e.g. "clip|rule".
  void detail(std::string_view d) {
    if (!live_) return;
    const std::size_t n =
        std::min(d.size(),
                 std::size_t{trace_detail::TraceRecord::kDetailCap - 1});
    std::memcpy(rec_.detail, d.data(), n);
    rec_.detail[n] = 0;
  }

  /// Numeric annotation; at most 8, extras are ignored. `key` must be a
  /// string literal.
  void arg(const char* key, double value) {
    if (!live_ || rec_.numArgs >= trace_detail::TraceRecord::kMaxArgs) return;
    rec_.args[rec_.numArgs++] = TraceArg{key, value};
  }

  /// String annotation (truncated to 23 chars); at most 6, extras are
  /// ignored. `key` must be a string literal. These are the structured join
  /// keys the attribution engine reads (clip/rule/tech/provenance/status).
  void attr(const char* key, std::string_view value) {
    if (!live_) return;
    rec_.addAttr(key, value);
  }

  /// Ends the span early (idempotent); the destructor is then a no-op.
  void end() {
    if (!live_) return;
    live_ = false;
    trace_detail::tls().currentSpan = savedParent_;
    rec_.durNs = trace_detail::nowNs() - rec_.tsNs;
    trace_detail::record(rec_);
  }

  /// Span id for tests; 0 when tracing was inactive at construction.
  std::uint64_t id() const { return live_ ? rec_.id : 0; }

  /// Marks this span as a cross-process origin and returns the context to
  /// ship over the wire: mints a trace id on first call (reused on repeat
  /// calls) and pairs it with this span's id. The span's own record then
  /// carries the "trace" field so mergeTraces can find it as the remote
  /// parent. Returns an invalid (inert) context when tracing is inactive.
  TraceContext mintContext() {
    if (!live_) return TraceContext{};
    if (rec_.traceId == 0) rec_.traceId = TraceSession::mintTraceId();
    return TraceContext{rec_.traceId, rec_.id};
  }

 private:
  trace_detail::TraceRecord rec_;
  std::uint64_t savedParent_ = 0;
  bool live_ = false;
};

/// Instantaneous event, parented under the thread's current span.
inline void event(const char* name, std::string_view detail = {},
                  std::initializer_list<TraceArg> args = {},
                  std::initializer_list<TraceAttr> attrs = {}) {
  trace_detail::State& s = trace_detail::state();
  if (!s.active.load(std::memory_order_acquire)) return;
  trace_detail::TraceRecord r;
  r.kind = trace_detail::TraceRecord::Kind::kEvent;
  r.name = name;
  r.parent = trace_detail::tls().currentSpan;
  r.tsNs = trace_detail::nowNs();
  if (!detail.empty()) {
    const std::size_t n =
        std::min(detail.size(),
                 std::size_t{trace_detail::TraceRecord::kDetailCap - 1});
    std::memcpy(r.detail, detail.data(), n);
    r.detail[n] = 0;
  }
  for (const TraceArg& a : args) {
    if (r.numArgs >= trace_detail::TraceRecord::kMaxArgs) break;
    r.args[r.numArgs++] = a;
  }
  for (const TraceAttr& a : attrs) r.addAttr(a.key, a.value);
  trace_detail::record(r);
}

#else  // !OPTR_OBS_ENABLED --------------------------------------------------

class TraceSession {
 public:
  static Status start(const std::string&, TraceOptions = {}) {
    return Status::error(ErrorCode::kUnavailable,
                         "tracing compiled out (OPTR_OBS=OFF)");
  }
  static void stop() {}
  static bool active() { return false; }
  static void flushAll() {}
  static void pulse() {}
  static std::uint64_t mintTraceId() { return 0; }
  static void abandon() {}
  static std::uint64_t currentSpanId() { return 0; }
  static void onFork(std::uint64_t) {}
  static void emitThreadDrops() {}
};

class Span {
 public:
  explicit Span(const char*) {}
  Span(const char*, std::uint64_t) {}
  Span(const char*, const TraceContext&) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void detail(std::string_view) {}
  void arg(const char*, double) {}
  void attr(const char*, std::string_view) {}
  void end() {}
  std::uint64_t id() const { return 0; }
  TraceContext mintContext() { return TraceContext{}; }
};

inline void event(const char*, std::string_view = {},
                  std::initializer_list<TraceArg> = {},
                  std::initializer_list<TraceAttr> = {}) {}

#endif  // OPTR_OBS_ENABLED

}  // namespace optr::obs
