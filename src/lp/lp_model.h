// Linear-program container shared by the simplex solver and the MIP layer.
//
// The model is column-oriented for the solver (pricing walks columns) but is
// built row-by-row, which matches how the routing formulation is generated.
// Columns carry bounds; every variable must have a finite lower bound (the
// routing formulation only produces variables in [0, u]), which lets the
// solver start all nonbasic variables at their lower bound.
//
// Thread safety: none, by design. Even const-looking queries build a lazy
// column index, so a model must be owned by exactly one thread at a time.
// The parallel branch-and-bound gives each worker its own copy (LpModel is
// cheap to copy relative to a node solve); do the same rather than sharing.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace optr::lp {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class RowSense : std::uint8_t { kLe, kGe, kEq };

/// One sparse row under construction. Duplicate column entries are allowed
/// at build time and are coalesced by LpModel::addRow.
struct RowBuilder {
  std::vector<int> cols;
  std::vector<double> coefs;
  RowSense sense = RowSense::kLe;
  double rhs = 0.0;

  RowBuilder& add(int col, double coef) {
    cols.push_back(col);
    coefs.push_back(coef);
    return *this;
  }
};

class LpModel {
 public:
  /// Adds a column; returns its index. Lower bound must be finite.
  int addColumn(double objective, double lower, double upper) {
    OPTR_ASSERT(lower > -kInfinity, "columns must have finite lower bounds");
    OPTR_ASSERT(lower <= upper, "empty column domain");
    objective_.push_back(objective);
    lower_.push_back(lower);
    upper_.push_back(upper);
    columnIndexDirty_ = true;
    return numCols() - 1;
  }

  /// Adds a row; returns its index. Coalesces duplicate columns and drops
  /// zero coefficients.
  int addRow(const RowBuilder& rb) {
    rowStarts_.push_back(static_cast<int>(rowCols_.size()));
    // Coalesce: rows in the routing formulation are short (<= tens of
    // entries), so quadratic coalescing is fine and avoids a scratch map.
    std::vector<int> cols;
    std::vector<double> coefs;
    cols.reserve(rb.cols.size());
    for (std::size_t i = 0; i < rb.cols.size(); ++i) {
      int c = rb.cols[i];
      OPTR_ASSERT(c >= 0 && c < numCols(), "row references unknown column");
      bool merged = false;
      for (std::size_t j = 0; j < cols.size(); ++j) {
        if (cols[j] == c) {
          coefs[j] += rb.coefs[i];
          merged = true;
          break;
        }
      }
      if (!merged) {
        cols.push_back(c);
        coefs.push_back(rb.coefs[i]);
      }
    }
    for (std::size_t j = 0; j < cols.size(); ++j) {
      if (coefs[j] == 0.0) continue;
      rowCols_.push_back(cols[j]);
      rowCoefs_.push_back(coefs[j]);
    }
    sense_.push_back(rb.sense);
    rhs_.push_back(rb.rhs);
    columnIndexDirty_ = true;
    return numRows() - 1;
  }

  int numCols() const { return static_cast<int>(objective_.size()); }
  int numRows() const { return static_cast<int>(rhs_.size()); }

  // --- Row/column block checkpointing -------------------------------------
  // The routing formulation layers rule-dependent rows (and, for eager SADP,
  // columns) on top of a rule-independent base model. A mark taken after the
  // base build lets a rule sweep pop one rule's layer -- including any lazy
  // rows separated during its solve -- and push the next rule's without
  // rebuilding the base (core::Formulation / core::ClipSession).

  /// Checkpoint for truncateRows(): the current row count.
  int markRows() const { return numRows(); }

  /// Drops every row with index >= mark (appended after the checkpoint).
  void truncateRows(int mark) {
    OPTR_ASSERT(mark >= 0 && mark <= numRows(), "row mark out of range");
    if (mark == numRows()) return;
    int nzKeep = rowStarts_[mark];
    rowCols_.resize(nzKeep);
    rowCoefs_.resize(nzKeep);
    rowStarts_.resize(mark);
    sense_.resize(mark);
    rhs_.resize(mark);
    columnIndexDirty_ = true;
  }

  /// Checkpoint for truncateCols(): the current column count.
  int markCols() const { return numCols(); }

  /// Drops every column with index >= mark. Rows referencing a dropped
  /// column must be truncated first (enforced); bounds and objective of the
  /// surviving columns are untouched.
  void truncateCols(int mark) {
    OPTR_ASSERT(mark >= 0 && mark <= numCols(), "column mark out of range");
    if (mark == numCols()) return;
    for (int c : rowCols_) {
      OPTR_ASSERT(c < mark, "surviving row references a truncated column");
      (void)c;
    }
    objective_.resize(mark);
    lower_.resize(mark);
    upper_.resize(mark);
    columnIndexDirty_ = true;
  }
  std::int64_t numNonzeros() const {
    return static_cast<std::int64_t>(rowCols_.size());
  }

  double objective(int c) const { return objective_[c]; }
  double lower(int c) const { return lower_[c]; }
  double upper(int c) const { return upper_[c]; }
  RowSense sense(int r) const { return sense_[r]; }
  double rhs(int r) const { return rhs_[r]; }

  void setBounds(int c, double lower, double upper) {
    OPTR_ASSERT(lower <= upper, "empty column domain");
    lower_[c] = lower;
    upper_[c] = upper;
  }
  void setObjective(int c, double v) { objective_[c] = v; }

  /// Row access (sparse).
  std::span<const int> rowCols(int r) const {
    auto [b, e] = rowRange(r);
    return {rowCols_.data() + b, static_cast<std::size_t>(e - b)};
  }
  std::span<const double> rowCoefs(int r) const {
    auto [b, e] = rowRange(r);
    return {rowCoefs_.data() + b, static_cast<std::size_t>(e - b)};
  }

  /// Column access (sparse). Rebuilds the transposed index lazily; callers
  /// (the solver) must call buildColumnIndex() after the last addRow.
  void buildColumnIndex() const {
    if (!columnIndexDirty_) return;
    colStarts2_.assign(numCols() + 1, 0);
    for (int c : rowCols_) ++colStarts2_[c + 1];
    for (int c = 0; c < numCols(); ++c) colStarts2_[c + 1] += colStarts2_[c];
    colRows2_.resize(rowCols_.size());
    colCoefs2_.resize(rowCols_.size());
    std::vector<int> fill(colStarts2_.begin(), colStarts2_.end() - 1);
    for (int r = 0; r < numRows(); ++r) {
      auto [b, e] = rowRange(r);
      for (int k = b; k < e; ++k) {
        int pos = fill[rowCols_[k]]++;
        colRows2_[pos] = r;
        colCoefs2_[pos] = rowCoefs_[k];
      }
    }
    columnIndexDirty_ = false;
  }
  std::span<const int> colRows(int c) const {
    return {colRows2_.data() + colStarts2_[c],
            static_cast<std::size_t>(colStarts2_[c + 1] - colStarts2_[c])};
  }
  std::span<const double> colCoefs(int c) const {
    return {colCoefs2_.data() + colStarts2_[c],
            static_cast<std::size_t>(colStarts2_[c + 1] - colStarts2_[c])};
  }
  bool columnIndexDirty() const { return columnIndexDirty_; }

  /// Evaluates row activity for a full primal point.
  double rowActivity(int r, std::span<const double> x) const {
    double a = 0;
    auto cols = rowCols(r);
    auto coefs = rowCoefs(r);
    for (std::size_t k = 0; k < cols.size(); ++k) a += coefs[k] * x[cols[k]];
    return a;
  }

  /// True when x satisfies every row and bound within tol.
  bool isFeasible(std::span<const double> x, double tol) const {
    for (int c = 0; c < numCols(); ++c) {
      if (x[c] < lower_[c] - tol || x[c] > upper_[c] + tol) return false;
    }
    for (int r = 0; r < numRows(); ++r) {
      double a = rowActivity(r, x);
      switch (sense_[r]) {
        case RowSense::kLe:
          if (a > rhs_[r] + tol) return false;
          break;
        case RowSense::kGe:
          if (a < rhs_[r] - tol) return false;
          break;
        case RowSense::kEq:
          if (std::abs(a - rhs_[r]) > tol) return false;
          break;
      }
    }
    return true;
  }

  double objectiveValue(std::span<const double> x) const {
    double v = 0;
    for (int c = 0; c < numCols(); ++c) v += objective_[c] * x[c];
    return v;
  }

 private:
  std::pair<int, int> rowRange(int r) const {
    int b = rowStarts_[r];
    int e = (r + 1 < numRows()) ? rowStarts_[r + 1]
                                : static_cast<int>(rowCols_.size());
    return {b, e};
  }

  // Columns.
  std::vector<double> objective_, lower_, upper_;

  // Rows (CSR).
  std::vector<int> rowStarts_;
  std::vector<int> rowCols_;
  std::vector<double> rowCoefs_;
  std::vector<RowSense> sense_;
  std::vector<double> rhs_;

  // Transposed index (CSC), built lazily for the solver.
  mutable bool columnIndexDirty_ = true;
  mutable std::vector<int> colStarts2_;
  mutable std::vector<int> colRows2_;
  mutable std::vector<double> colCoefs2_;
};

}  // namespace optr::lp
