// Bounded-variable revised simplex with warm starts.
//
// This is the LP engine underneath the MIP branch-and-bound that replaces
// CPLEX in the OptRouter reproduction. Design points:
//   * All model variables must have finite lower bounds (true for every
//     routing formulation variable); slacks (inequality rows) and
//     artificials (equality rows, pinned to [0,0]) are added internally.
//   * Feasibility is reached by a composite ("basis repair") phase 1 that
//     minimizes the total bound violation of basic variables. This works
//     from any starting basis, which enables warm starts: branch-and-bound
//     re-solves differ from the parent node by one variable bound, so
//     starting from the parent's final basis converges in a few pivots
//     instead of hundreds.
//   * Re-solves that only changed bounds (B&B children, session rule
//     overlays) can skip phase 1 entirely: the parent's optimal basis stays
//     dual feasible under bound changes, so a short dual-simplex phase
//     drives the handful of out-of-bound basics home directly
//     (SimplexOptions::dualRestart). Any non-optimal dual outcome falls
//     back to the composite primal path; in particular, infeasibility is
//     only ever *proven* by phase 1.
//   * The basis inverse is kept dense and updated by elementary row
//     operations, with periodic refactorization (Gauss-Jordan with partial
//     pivoting). Problem sizes here are a few thousand rows at most, where
//     a dense inverse is simple and fast enough. The inverse is stored
//     row-major by basis slot, so the hot per-pivot operations -- the
//     elementary row updates, the pivot-row dual update, the phase-1
//     signature row adds, and the dual-simplex BTRAN row -- all stream
//     contiguous memory; the FTRAN accumulate makes one ascending pass over
//     the rows instead of a stride-m walk per column nonzero.
//   * Pricing is Devex by default (reference weights + a partial-pricing
//     candidate list refreshed on refactorization and stall), with Dantzig
//     selectable and an automatic switch to Bland's rule after a run of
//     degenerate pivots to guarantee termination. Optimality is never
//     concluded from the candidate list alone: an empty or exhausted list
//     always forces a full pricing scan first.
//
// Thread safety: a SimplexSolver is strictly single-owner. Its value is the
// mutable state it carries between calls (factorized basis inverse, basis
// snapshots, warm-start bookkeeping), so sharing one across threads is
// never correct. The parallel branch-and-bound pairs one private solver
// with one private LpModel per worker; independent solver instances on
// independent models are safe to run concurrently.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "lp/lp_model.h"

namespace optr::lp {

enum class LpStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterLimit,
  kNumericalError,
};

const char* toString(LpStatus s);

/// Entering-variable selection rule. Bland's anti-cycling rule is not a
/// member: it is an automatic fallback layered on top of either rule.
enum class PricingRule : std::uint8_t {
  kDantzig,  // full scan, most-negative reduced cost
  kDevex,    // reference weights + partial-pricing candidate list
};

const char* toString(PricingRule p);

struct SimplexOptions {
  std::int64_t maxIterations = 200000;
  double feasTol = 1e-7;    // bound / row feasibility
  double optTol = 1e-7;     // reduced-cost optimality
  double pivotTol = 1e-9;   // minimum acceptable pivot magnitude
  /// Pivots between full Gauss-Jordan refactorizations. NOTE the effective
  /// cadence is size-dependent -- see effectiveRefactorInterval().
  int refactorInterval = 256;
  int blandAfterStalls = 512;  // degenerate pivots before Bland's rule
  /// Run Bland's rule from the first pivot. Slower but immune to cycling;
  /// the MIP's numerical-failure retry sets this for the repeated solve.
  /// Also disables the dual-restart path (the retry wants the conservative
  /// primal ladder).
  bool forceBland = false;
  /// Wall-clock budget per solve; <= 0 disables. Checked every few dozen
  /// pivots; an expired solve returns kIterLimit (callers treat it like an
  /// exhausted iteration budget).
  double deadlineSeconds = 0.0;
  /// Entering-variable rule for non-Bland pivots.
  PricingRule pricing = PricingRule::kDevex;
  /// Attempt a dual-simplex warm restart on re-solves whose seed basis is
  /// still dual feasible (bound-only changes, appended <= rows). Falls back
  /// to the composite primal phase 1 whenever dual feasibility is absent or
  /// lost, so results are unaffected -- only the pivot count is.
  bool dualRestart = true;
  /// Partial-pricing candidate list capacity; 0 picks a size from the
  /// column count. Ignored under Dantzig/Bland (full scans).
  int pricingCandidates = 0;

  /// The refactorization cadence the engine actually uses for an m-row
  /// basis. The configured value is NOT honored verbatim in general:
  ///   * configured <= 16: honored (floored at 1), so tests can force the
  ///     refactorization path on tiny models;
  ///   * configured  > 16: raised to at least m, because an O(m^3) rebuild
  ///     more often than every m O(m^2) product-form updates would dominate
  ///     the solve; the post-solve feasibility net catches drift instead.
  /// Kernel tuning must go through this helper rather than assuming the
  /// configured interval is literal (pinned by SimplexRefactorInterval
  /// tests in lp_test).
  static int effectiveRefactorInterval(int configured, int numRows) {
    return configured <= 16 ? std::max(configured, 1)
                            : std::max(configured, numRows);
  }
};

struct LpResult {
  LpStatus status = LpStatus::kNumericalError;
  double objective = 0.0;
  std::vector<double> x;  // structural variables only (model columns)
  /// Every pivot this call performed, including dual-simplex pivots and the
  /// primal-drift recovery retries after the main phases (historically those
  /// went uncounted, which made MIP pivot totals depend on how often
  /// recovery ran).
  std::int64_t iterations = 0;
  std::int64_t refactorizations = 0;  // attempts, incl. failed/injected
  std::int64_t degeneratePivots = 0;  // zero-step-length pivots
  std::int64_t blandActivations = 0;  // Dantzig/Devex -> Bland's rule switches
  /// Dual-simplex pivots (subset of `iterations`); nonzero only when the
  /// dual-restart path engaged.
  std::int64_t dualPivots = 0;
  /// The dual-restart path engaged for this solve (its seed basis was dual
  /// feasible). The solve may still have finished on the primal path.
  bool usedDualRestart = false;
  double phase1Infeasibility = 0.0;
  /// Why a non-optimal solve stopped, machine-readable: kDeadline vs
  /// kIterationLimit for kIterLimit; kSingularBasis vs kNumerical for
  /// kNumericalError; kInvalidInput for structurally bad continuations.
  Status detail = Status::ok();
};

/// A restartable description of a basis, robust against rows being appended
/// to the model between snapshot and restore (lazy constraints): entries
/// reference structural columns or the slack of a specific row, never raw
/// internal indices.
struct BasisSnapshot {
  enum class Kind : std::uint8_t { kStruct, kSlack, kArtificial };
  struct Token {
    Kind kind;
    int id;  // structural column, or row index for slack/artificial
  };
  std::vector<Token> basis;            // one per row at snapshot time
  std::vector<std::uint8_t> atUpper;   // nonbasic struct cols at upper bound
  bool empty() const { return basis.empty(); }
};

/// Reusable solver: keeps workspace buffers alive across calls so that
/// branch-and-bound can re-solve the same model with mutated bounds cheaply.
class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves the model. When `warm` is non-null and restorable, the search
  /// starts from that basis; otherwise from the slack/artificial basis.
  /// The model may have had rows appended or bounds changed between calls.
  LpResult solve(const LpModel& model, const BasisSnapshot* warm = nullptr);

  /// True when solveContinue() can pick up from the previous solve of the
  /// same model: only bound changes and appended <= rows since then.
  bool canContinue(const LpModel& model) const;

  /// Re-solves in place: refreshes bounds, absorbs appended inequality rows
  /// into the factorized basis in O(rows x m) each, and re-runs the phases.
  /// Orders of magnitude cheaper than a cold refactorization for the
  /// branch-and-bound dive pattern (child differs by one variable bound);
  /// with dualRestart the re-solve usually skips phase 1 entirely.
  LpResult solveContinue(const LpModel& model);

  /// Basis of the most recent successful solve, for future warm starts.
  BasisSnapshot snapshot() const;

  /// Drops the continue-in-place state so the next solve() starts from a
  /// fresh factorization (the MIP's numerical-recovery retry calls this).
  void invalidate() { stateValid_ = false; }

  const SimplexOptions& options() const { return options_; }
  SimplexOptions& options() { return options_; }

 private:
  enum class VarState : std::uint8_t { kBasic, kAtLower, kAtUpper };

  // Internal (structural + slack + artificial) column view.
  int totalCols() const { return numStruct_ + numSlack_ + numArt_; }
  double columnDot(int j, const double* y) const;

  void setup(const LpModel& model, const BasisSnapshot* warm);
  LpResult runPhases(const LpModel& model, bool tryDualRestart);
  /// Copies the per-call work counters into `result` and publishes them to
  /// the obs metrics registry. Runs on every runPhases exit path, *after*
  /// the drift-recovery retries, so no pivot goes unreported.
  void finalizeResult(LpResult& result);
  /// One simplex phase. In phase 1 the cost vector is the dynamic bound
  /// violation signature of the basis; in phase 2 it is the model objective.
  LpStatus iterate(std::int64_t& iterationBudget, bool phase1);
  /// Dual-simplex phase: from a dual-feasible basis, pivots the most
  /// out-of-bound basic variable to its violated bound each step while the
  /// dual ratio test preserves dual feasibility. Returns kOptimal when the
  /// basis becomes primal feasible (the caller's phase 2 then verifies
  /// optimality); kInfeasible means "ratio test dried up or pivot cap hit
  /// -- fall back to primal phase 1", never a proof.
  LpStatus dualIterate(std::int64_t& iterationBudget);
  bool refactorize();
  void recomputeBasicValues();
  double totalInfeasibility() const;
  /// Rebuilds phase-2 duals from the current basis and prices every column;
  /// true when an improving column remains (i.e. "optimal" was premature --
  /// the incremental dual updates drifted). Leaves y_ fresh on return.
  /// Doubles as the dual-feasibility test for the dual-restart path.
  bool phase2ImprovingColumn();

  // --- pricing ---
  /// Entering column for the current duals, or -1 when (after a full scan)
  /// none improves. Dispatches Bland / Dantzig / Devex-partial internally.
  int selectEntering(bool phase1, double& dEnter, int& enterDir);
  int priceFullScan(bool phase1, double& dEnter, int& enterDir);
  int priceCandidateList(bool phase1, double& dEnter, int& enterDir);
  void buildCandidateList();
  void resetDevexWeights();
  void updateDevexWeights(int entering, int leaving, int leavingSlot,
                          double piv);

  // --- pivot application (shared by the primal and dual phases) ---
  /// w_ = Binv * A_entering, one ascending pass over binv_ rows.
  void computeW(int entering);
  /// Moves basics by `step` along w_, parks the leaving variable on a bound
  /// and swaps `entering` into the basis. Does NOT touch binv_.
  void applyStep(int entering, int leavingSlot, bool leavingToUpper,
                 double step);
  /// Elementary row operations on binv_ for the slot swap; false when the
  /// pivot element w_[leavingSlot] is below pivotTol (caller refactorizes).
  bool updateBasisInverse(int leavingSlot);

  // --- duals ---
  void rebuildPhase2Duals();
  /// Phase-1 incremental duals: rebuilds the violation signature and dense
  /// y_ from scratch (entry / refactorization / verification) ...
  void p1Rebuild();
  /// ... and the per-pivot resync: recomputes each slot's signature from
  /// xb_ and folds sign changes into y_ with contiguous row adds against
  /// the CURRENT binv_ rows. `excludeSlot` (the pivot slot, or -1) has its
  /// old contribution removed here; the caller re-adds the new one against
  /// the updated pivot row. Maintains p1Violations_.
  void p1SyncSignatures(int excludeSlot);

  SimplexOptions options_;

  const LpModel* model_ = nullptr;
  int numStruct_ = 0, numSlack_ = 0, numArt_ = 0;

  // Per-internal-column data.
  std::vector<double> cost_, lowerB_, upperB_, value_;
  std::vector<VarState> state_;
  // Slack bookkeeping: slackCol_[r] = internal column of row r's slack or -1;
  // slackRowOf_[s] = row of the s-th slack column. Artificials exist only
  // for equality rows: artCol_[r] / artRowOf_[a].
  std::vector<int> slackCol_, slackRowOf_;
  std::vector<double> slackSign_;  // +1 for <=, -1 for >=
  std::vector<int> artCol_, artRowOf_;

  // Basis.
  std::vector<int> basis_;      // basis_[slot] = internal column
  std::vector<int> basisSlot_;  // inverse map: column -> slot or -1
  std::vector<double> binv_;    // dense numRows x numRows, [slot][row]
  std::vector<double> xb_;      // basic values by slot
  int numRows_ = 0;

  // Workspace.
  std::vector<double> y_, w_, rhsWork_;
  std::int64_t iterations_ = 0;
  std::int64_t refactorCount_ = 0;
  std::int64_t degeneratePivots_ = 0;
  std::int64_t blandActivations_ = 0;
  int stallCount_ = 0;
  bool blandMode_ = false;
  ErrorCode stopReason_ = ErrorCode::kOk;  // set when iterate() bails out
  bool stateValid_ = false;  // internal state matches model_ for continue
  bool yValid_ = false;      // y_ matches the current basis (phase-2 only)

  // Devex / partial pricing state.
  std::vector<double> devexWeight_;  // reference weights, reset to 1
  std::vector<int> candidates_;      // partial-pricing list (sorted, shrinks)
  std::vector<std::pair<double, int>> scratchCand_;  // (score, col) scratch
  bool refreshCandidates_ = true;    // force a full scan next pricing
  bool devexResetPending_ = false;   // a weight overflowed; reset lazily
  std::int64_t devexResets_ = 0;
  std::int64_t candidatesPriced_ = 0;

  // Phase-1 incremental dual state: per-slot violation signature of xb_
  // (-1 below lower, +1 above upper, 0 feasible) and the violation count.
  std::vector<signed char> p1Sig_;
  int p1Violations_ = 0;

  // Dual-restart accounting.
  std::int64_t dualPivots_ = 0;
  bool usedDualRestart_ = false;
};

}  // namespace optr::lp
