// Bounded-variable revised simplex with warm starts.
//
// This is the LP engine underneath the MIP branch-and-bound that replaces
// CPLEX in the OptRouter reproduction. Design points:
//   * All model variables must have finite lower bounds (true for every
//     routing formulation variable); slacks (inequality rows) and
//     artificials (equality rows, pinned to [0,0]) are added internally.
//   * Feasibility is reached by a composite ("basis repair") phase 1 that
//     minimizes the total bound violation of basic variables. This works
//     from any starting basis, which enables warm starts: branch-and-bound
//     re-solves differ from the parent node by one variable bound, so
//     starting from the parent's final basis converges in a few pivots
//     instead of hundreds.
//   * The basis inverse is kept dense and updated by elementary row
//     operations, with periodic refactorization (Gauss-Jordan with partial
//     pivoting). Problem sizes here are a few thousand rows at most, where
//     a dense inverse is simple and fast enough.
//   * Dantzig pricing with an automatic switch to Bland's rule after a run
//     of degenerate pivots guarantees termination.
//
// Thread safety: a SimplexSolver is strictly single-owner. Its value is the
// mutable state it carries between calls (factorized basis inverse, basis
// snapshots, warm-start bookkeeping), so sharing one across threads is
// never correct. The parallel branch-and-bound pairs one private solver
// with one private LpModel per worker; independent solver instances on
// independent models are safe to run concurrently.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "lp/lp_model.h"

namespace optr::lp {

enum class LpStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterLimit,
  kNumericalError,
};

const char* toString(LpStatus s);

struct SimplexOptions {
  std::int64_t maxIterations = 200000;
  double feasTol = 1e-7;    // bound / row feasibility
  double optTol = 1e-7;     // reduced-cost optimality
  double pivotTol = 1e-9;   // minimum acceptable pivot magnitude
  int refactorInterval = 256;
  int blandAfterStalls = 512;  // degenerate pivots before Bland's rule
  /// Run Bland's rule from the first pivot. Slower but immune to cycling;
  /// the MIP's numerical-failure retry sets this for the repeated solve.
  bool forceBland = false;
  /// Wall-clock budget per solve; <= 0 disables. Checked every few dozen
  /// pivots; an expired solve returns kIterLimit (callers treat it like an
  /// exhausted iteration budget).
  double deadlineSeconds = 0.0;
};

struct LpResult {
  LpStatus status = LpStatus::kNumericalError;
  double objective = 0.0;
  std::vector<double> x;  // structural variables only (model columns)
  /// Every pivot this call performed, including the primal-drift recovery
  /// retries after the main phases (historically those went uncounted,
  /// which made MIP pivot totals depend on how often recovery ran).
  std::int64_t iterations = 0;
  std::int64_t refactorizations = 0;  // attempts, incl. failed/injected
  std::int64_t degeneratePivots = 0;  // zero-step-length pivots
  std::int64_t blandActivations = 0;  // Dantzig -> Bland's rule switches
  double phase1Infeasibility = 0.0;
  /// Why a non-optimal solve stopped, machine-readable: kDeadline vs
  /// kIterationLimit for kIterLimit; kSingularBasis vs kNumerical for
  /// kNumericalError; kInvalidInput for structurally bad continuations.
  Status detail = Status::ok();
};

/// A restartable description of a basis, robust against rows being appended
/// to the model between snapshot and restore (lazy constraints): entries
/// reference structural columns or the slack of a specific row, never raw
/// internal indices.
struct BasisSnapshot {
  enum class Kind : std::uint8_t { kStruct, kSlack, kArtificial };
  struct Token {
    Kind kind;
    int id;  // structural column, or row index for slack/artificial
  };
  std::vector<Token> basis;            // one per row at snapshot time
  std::vector<std::uint8_t> atUpper;   // nonbasic struct cols at upper bound
  bool empty() const { return basis.empty(); }
};

/// Reusable solver: keeps workspace buffers alive across calls so that
/// branch-and-bound can re-solve the same model with mutated bounds cheaply.
class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves the model. When `warm` is non-null and restorable, the search
  /// starts from that basis; otherwise from the slack/artificial basis.
  /// The model may have had rows appended or bounds changed between calls.
  LpResult solve(const LpModel& model, const BasisSnapshot* warm = nullptr);

  /// True when solveContinue() can pick up from the previous solve of the
  /// same model: only bound changes and appended <= rows since then.
  bool canContinue(const LpModel& model) const;

  /// Re-solves in place: refreshes bounds, absorbs appended inequality rows
  /// into the factorized basis in O(rows x m) each, and re-runs the phases.
  /// Orders of magnitude cheaper than a cold refactorization for the
  /// branch-and-bound dive pattern (child differs by one variable bound).
  LpResult solveContinue(const LpModel& model);

  /// Basis of the most recent successful solve, for future warm starts.
  BasisSnapshot snapshot() const;

  /// Drops the continue-in-place state so the next solve() starts from a
  /// fresh factorization (the MIP's numerical-recovery retry calls this).
  void invalidate() { stateValid_ = false; }

  const SimplexOptions& options() const { return options_; }
  SimplexOptions& options() { return options_; }

 private:
  enum class VarState : std::uint8_t { kBasic, kAtLower, kAtUpper };

  // Internal (structural + slack + artificial) column view.
  int totalCols() const { return numStruct_ + numSlack_ + numArt_; }
  double columnDot(int j, const std::vector<double>& y) const;

  void setup(const LpModel& model, const BasisSnapshot* warm);
  LpResult runPhases(const LpModel& model);
  /// Copies the per-call work counters into `result` and publishes them to
  /// the obs metrics registry. Runs on every runPhases exit path, *after*
  /// the drift-recovery retries, so no pivot goes unreported.
  void finalizeResult(LpResult& result);
  /// One simplex phase. In phase 1 the cost vector is the dynamic bound
  /// violation signature of the basis; in phase 2 it is the model objective.
  LpStatus iterate(std::int64_t& iterationBudget, bool phase1);
  bool refactorize();
  void recomputeBasicValues();
  double totalInfeasibility() const;
  /// Rebuilds phase-2 duals from the current basis and prices every column;
  /// true when an improving column remains (i.e. "optimal" was premature --
  /// the incremental dual updates drifted). Leaves y_ fresh on return.
  bool phase2ImprovingColumn();

  SimplexOptions options_;

  const LpModel* model_ = nullptr;
  int numStruct_ = 0, numSlack_ = 0, numArt_ = 0;

  // Per-internal-column data.
  std::vector<double> cost_, lowerB_, upperB_, value_;
  std::vector<VarState> state_;
  // Slack bookkeeping: slackCol_[r] = internal column of row r's slack or -1;
  // slackRowOf_[s] = row of the s-th slack column. Artificials exist only
  // for equality rows: artCol_[r] / artRowOf_[a].
  std::vector<int> slackCol_, slackRowOf_;
  std::vector<double> slackSign_;  // +1 for <=, -1 for >=
  std::vector<int> artCol_, artRowOf_;

  // Basis.
  std::vector<int> basis_;      // basis_[slot] = internal column
  std::vector<int> basisSlot_;  // inverse map: column -> slot or -1
  std::vector<double> binv_;    // dense numRows x numRows, [slot][row]
  std::vector<double> xb_;      // basic values by slot
  int numRows_ = 0;

  // Workspace.
  std::vector<double> y_, w_, rhsWork_;
  std::int64_t iterations_ = 0;
  std::int64_t refactorCount_ = 0;
  std::int64_t degeneratePivots_ = 0;
  std::int64_t blandActivations_ = 0;
  int stallCount_ = 0;
  bool blandMode_ = false;
  ErrorCode stopReason_ = ErrorCode::kOk;  // set when iterate() bails out
  bool stateValid_ = false;  // internal state matches model_ for continue
  bool yValid_ = false;      // y_ matches the current basis (phase-2 only)
};

}  // namespace optr::lp
