#include "lp/simplex.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/fault_injection.h"
#include "obs/metrics.h"

namespace optr::lp {
namespace {

// Devex reference weights above this are no longer trustworthy estimates of
// the steepest-edge norms; reset the reference framework.
constexpr double kDevexWeightLimit = 1e7;

// Dual-simplex restarts are expected to finish in a handful of pivots; a
// restart that grinds past this cap (per m rows) is degenerate-cycling or
// numerically lost, and the primal fallback is cheaper than finding out.
constexpr std::int64_t kDualPivotCapFloor = 100;

}  // namespace

const char* toString(LpStatus s) {
  switch (s) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterLimit: return "iteration-limit";
    case LpStatus::kNumericalError: return "numerical-error";
  }
  return "?";
}

const char* toString(PricingRule p) {
  switch (p) {
    case PricingRule::kDantzig: return "dantzig";
    case PricingRule::kDevex: return "devex";
  }
  return "?";
}

double SimplexSolver::columnDot(int j, const double* y) const {
  if (j < numStruct_) {
    auto rows = model_->colRows(j);
    auto coefs = model_->colCoefs(j);
    double d = 0;
    for (std::size_t k = 0; k < rows.size(); ++k) d += y[rows[k]] * coefs[k];
    return d;
  }
  if (j < numStruct_ + numSlack_) {
    int r = slackRowOf_[j - numStruct_];
    return y[r] * slackSign_[r];
  }
  return y[artRowOf_[j - numStruct_ - numSlack_]];
}

void SimplexSolver::setup(const LpModel& model, const BasisSnapshot* warm) {
  model_ = &model;
  model.buildColumnIndex();
  numStruct_ = model.numCols();
  numRows_ = model.numRows();

  // Slacks for inequality rows, artificials for equality rows.
  slackCol_.assign(numRows_, -1);
  slackSign_.assign(numRows_, 0.0);
  slackRowOf_.clear();
  artCol_.assign(numRows_, -1);
  artRowOf_.clear();
  numSlack_ = 0;
  for (int r = 0; r < numRows_; ++r) {
    if (model.sense(r) == RowSense::kEq) continue;
    slackSign_[r] = (model.sense(r) == RowSense::kLe) ? 1.0 : -1.0;
    slackCol_[r] = numStruct_ + numSlack_;
    slackRowOf_.push_back(r);
    ++numSlack_;
  }
  numArt_ = 0;
  for (int r = 0; r < numRows_; ++r) {
    if (model.sense(r) != RowSense::kEq) continue;
    artCol_[r] = numStruct_ + numSlack_ + numArt_;
    artRowOf_.push_back(r);
    ++numArt_;
  }

  int total = totalCols();
  cost_.assign(total, 0.0);
  lowerB_.resize(total);
  upperB_.resize(total);
  value_.resize(total);
  state_.assign(total, VarState::kAtLower);

  for (int c = 0; c < numStruct_; ++c) {
    lowerB_[c] = model.lower(c);
    upperB_[c] = model.upper(c);
  }
  for (int s = 0; s < numSlack_; ++s) {
    lowerB_[numStruct_ + s] = 0.0;
    upperB_[numStruct_ + s] = kInfinity;
  }
  for (int a = 0; a < numArt_; ++a) {
    // Artificials are permanently pinned; a basic artificial away from zero
    // is a bound violation that phase 1 repairs.
    lowerB_[numStruct_ + numSlack_ + a] = 0.0;
    upperB_[numStruct_ + numSlack_ + a] = 0.0;
  }

  for (int j = 0; j < total; ++j) value_[j] = lowerB_[j];

  // Basis: restore from snapshot when possible, else slack/artificial.
  basis_.assign(numRows_, -1);
  basisSlot_.assign(total, -1);
  xb_.assign(numRows_, 0.0);

  bool warmOk = false;
  if (warm != nullptr && !warm->empty() &&
      static_cast<int>(warm->basis.size()) <= numRows_ &&
      static_cast<int>(warm->atUpper.size()) == numStruct_) {
    warmOk = true;
    std::vector<char> rowHasBasic(numRows_, 0);
    int slot = 0;
    for (const BasisSnapshot::Token& tok : warm->basis) {
      int col = -1;
      switch (tok.kind) {
        case BasisSnapshot::Kind::kStruct:
          if (tok.id >= 0 && tok.id < numStruct_) col = tok.id;
          break;
        case BasisSnapshot::Kind::kSlack:
          if (tok.id >= 0 && tok.id < numRows_) col = slackCol_[tok.id];
          break;
        case BasisSnapshot::Kind::kArtificial:
          if (tok.id >= 0 && tok.id < numRows_) col = artCol_[tok.id];
          break;
      }
      if (col < 0 || basisSlot_[col] >= 0) {
        warmOk = false;
        break;
      }
      basis_[slot] = col;
      basisSlot_[col] = slot;
      ++slot;
    }
    if (warmOk) {
      // Rows appended after the snapshot get their own slack as basic.
      for (int r = 0; r < numRows_ && slot < numRows_; ++r) {
        int col = slackCol_[r] >= 0 ? slackCol_[r] : artCol_[r];
        if (basisSlot_[col] < 0) {
          basis_[slot] = col;
          basisSlot_[col] = slot;
          ++slot;
        }
      }
      warmOk = (slot == numRows_);
    }
    if (warmOk) {
      for (int c = 0; c < numStruct_; ++c) {
        if (basisSlot_[c] >= 0) {
          state_[c] = VarState::kBasic;
        } else if (warm->atUpper[c] && upperB_[c] < kInfinity) {
          state_[c] = VarState::kAtUpper;
          value_[c] = upperB_[c];
        }
      }
      for (int j = numStruct_; j < total; ++j) {
        if (basisSlot_[j] >= 0) state_[j] = VarState::kBasic;
      }
    } else {
      // Reset whatever the partial restore touched.
      basis_.assign(numRows_, -1);
      basisSlot_.assign(total, -1);
      state_.assign(total, VarState::kAtLower);
      for (int j = 0; j < total; ++j) value_[j] = lowerB_[j];
    }
  }

  if (!warmOk) {
    for (int r = 0; r < numRows_; ++r) {
      int col = slackCol_[r] >= 0 ? slackCol_[r] : artCol_[r];
      basis_[r] = col;
      basisSlot_[col] = r;
      state_[col] = VarState::kBasic;
    }
  }

  y_.assign(numRows_, 0.0);
  w_.assign(numRows_, 0.0);
  rhsWork_.assign(numRows_, 0.0);
  p1Sig_.assign(numRows_, 0);
  p1Violations_ = 0;
  devexWeight_.assign(total, 1.0);
  candidates_.clear();
  refreshCandidates_ = true;
  devexResetPending_ = false;
  iterations_ = 0;
  refactorCount_ = 0;
  degeneratePivots_ = 0;
  blandActivations_ = 0;
  devexResets_ = 0;
  candidatesPriced_ = 0;
  dualPivots_ = 0;
  usedDualRestart_ = false;
  stallCount_ = 0;
  blandMode_ = options_.forceBland;
  stateValid_ = false;
}

bool SimplexSolver::refactorize() {
  ++refactorCount_;
  refreshCandidates_ = true;
  if (fault::fire(fault::Site::kSingularBasis)) return false;
  // Rebuild Binv by Gauss-Jordan elimination of the basis matrix B, stored
  // row-major with rows = constraint rows and columns = basis slots. The
  // row-major inverse then has rows = basis slots and columns = constraint
  // rows, i.e. binv_[slot * m + row], the layout iterate() uses.
  const int m = numRows_;
  std::vector<double> mat(static_cast<std::size_t>(m) * m, 0.0);
  for (int slot = 0; slot < m; ++slot) {
    int j = basis_[slot];
    if (j < numStruct_) {
      auto rows = model_->colRows(j);
      auto coefs = model_->colCoefs(j);
      for (std::size_t k = 0; k < rows.size(); ++k)
        mat[static_cast<std::size_t>(rows[k]) * m + slot] = coefs[k];
    } else if (j < numStruct_ + numSlack_) {
      int r = slackRowOf_[j - numStruct_];
      mat[static_cast<std::size_t>(r) * m + slot] = slackSign_[r];
    } else {
      int r = artRowOf_[j - numStruct_ - numSlack_];
      mat[static_cast<std::size_t>(r) * m + slot] = 1.0;
    }
  }
  std::vector<double>& inv = binv_;
  inv.assign(static_cast<std::size_t>(m) * m, 0.0);
  for (int i = 0; i < m; ++i) inv[static_cast<std::size_t>(i) * m + i] = 1.0;
  for (int col = 0; col < m; ++col) {
    int pivotRow = -1;
    double best = options_.pivotTol;
    for (int r = col; r < m; ++r) {
      double v = std::abs(mat[static_cast<std::size_t>(r) * m + col]);
      if (v > best) {
        best = v;
        pivotRow = r;
      }
    }
    if (pivotRow < 0) return false;  // singular basis
    if (pivotRow != col) {
      for (int k = 0; k < m; ++k) {
        std::swap(mat[static_cast<std::size_t>(pivotRow) * m + k],
                  mat[static_cast<std::size_t>(col) * m + k]);
        std::swap(inv[static_cast<std::size_t>(pivotRow) * m + k],
                  inv[static_cast<std::size_t>(col) * m + k]);
      }
    }
    double invPiv = 1.0 / mat[static_cast<std::size_t>(col) * m + col];
    for (int k = 0; k < m; ++k) {
      mat[static_cast<std::size_t>(col) * m + k] *= invPiv;
      inv[static_cast<std::size_t>(col) * m + k] *= invPiv;
    }
    for (int r = 0; r < m; ++r) {
      if (r == col) continue;
      double f = mat[static_cast<std::size_t>(r) * m + col];
      if (f == 0.0) continue;
      for (int k = 0; k < m; ++k) {
        mat[static_cast<std::size_t>(r) * m + k] -=
            f * mat[static_cast<std::size_t>(col) * m + k];
        inv[static_cast<std::size_t>(r) * m + k] -=
            f * inv[static_cast<std::size_t>(col) * m + k];
      }
    }
  }
  yValid_ = false;
  recomputeBasicValues();
  return true;
}

void SimplexSolver::recomputeBasicValues() {
  const int m = numRows_;
  for (int r = 0; r < m; ++r) rhsWork_[r] = model_->rhs(r);
  for (int j = 0; j < totalCols(); ++j) {
    if (state_[j] == VarState::kBasic) continue;
    double v = value_[j];
    if (v == 0.0) continue;
    if (j < numStruct_) {
      auto rows = model_->colRows(j);
      auto coefs = model_->colCoefs(j);
      for (std::size_t k = 0; k < rows.size(); ++k)
        rhsWork_[rows[k]] -= coefs[k] * v;
    } else if (j < numStruct_ + numSlack_) {
      int r = slackRowOf_[j - numStruct_];
      rhsWork_[r] -= slackSign_[r] * v;
    } else {
      rhsWork_[artRowOf_[j - numStruct_ - numSlack_]] -= v;
    }
  }
  for (int slot = 0; slot < m; ++slot) {
    double v = 0;
    const double* row = binv_.data() + static_cast<std::size_t>(slot) * m;
    for (int r = 0; r < m; ++r) v += row[r] * rhsWork_[r];
    xb_[slot] = v;
    value_[basis_[slot]] = v;
  }
}

double SimplexSolver::totalInfeasibility() const {
  double inf = 0;
  for (int slot = 0; slot < numRows_; ++slot) {
    int j = basis_[slot];
    if (xb_[slot] < lowerB_[j] - options_.feasTol)
      inf += lowerB_[j] - xb_[slot];
    else if (xb_[slot] > upperB_[j] + options_.feasTol)
      inf += xb_[slot] - upperB_[j];
  }
  return inf;
}

// ---------------------------------------------------------------------------
// Duals.
// ---------------------------------------------------------------------------

void SimplexSolver::rebuildPhase2Duals() {
  const int m = numRows_;
  std::fill(y_.begin(), y_.end(), 0.0);
  for (int slot = 0; slot < m; ++slot) {
    int bj = basis_[slot];
    double cb = bj < numStruct_ ? model_->objective(bj) : 0.0;
    if (cb == 0.0) continue;
    const double* row = binv_.data() + static_cast<std::size_t>(slot) * m;
    for (int r = 0; r < m; ++r) y_[r] += cb * row[r];
  }
}

void SimplexSolver::p1Rebuild() {
  const int m = numRows_;
  p1Sig_.assign(m, 0);
  p1Violations_ = 0;
  std::fill(y_.begin(), y_.end(), 0.0);
  for (int slot = 0; slot < m; ++slot) {
    int bj = basis_[slot];
    signed char sig = 0;
    if (xb_[slot] < lowerB_[bj] - options_.feasTol) {
      sig = -1;  // too low: increasing it reduces infeasibility
    } else if (xb_[slot] > upperB_[bj] + options_.feasTol) {
      sig = 1;
    } else {
      continue;
    }
    p1Sig_[slot] = sig;
    ++p1Violations_;
    const double* row = binv_.data() + static_cast<std::size_t>(slot) * m;
    double cb = sig;
    for (int r = 0; r < m; ++r) y_[r] += cb * row[r];
  }
}

void SimplexSolver::p1SyncSignatures(int excludeSlot) {
  const int m = numRows_;
  int viol = 0;
  for (int s = 0; s < m; ++s) {
    signed char ns = 0;
    if (s != excludeSlot) {
      int bj = basis_[s];
      if (xb_[s] < lowerB_[bj] - options_.feasTol) {
        ns = -1;
      } else if (xb_[s] > upperB_[bj] + options_.feasTol) {
        ns = 1;
      }
    }
    if (ns != p1Sig_[s]) {
      double delta = static_cast<double>(ns) - static_cast<double>(p1Sig_[s]);
      const double* row = binv_.data() + static_cast<std::size_t>(s) * m;
      for (int r = 0; r < m; ++r) y_[r] += delta * row[r];
      p1Sig_[s] = ns;
    }
    if (ns != 0) ++viol;
  }
  p1Violations_ = viol;
}

// ---------------------------------------------------------------------------
// Pricing.
// ---------------------------------------------------------------------------

void SimplexSolver::resetDevexWeights() {
  std::fill(devexWeight_.begin(), devexWeight_.end(), 1.0);
  devexResetPending_ = false;
  refreshCandidates_ = true;
  ++devexResets_;
}

void SimplexSolver::buildCandidateList() {
  int k = options_.pricingCandidates > 0
              ? options_.pricingCandidates
              : std::clamp((numStruct_ + numSlack_) / 8, 16, 256);
  if (static_cast<int>(scratchCand_.size()) > k) {
    // Top-k by score; ties broken by column index so the list is
    // deterministic regardless of the partition algorithm's internals.
    std::nth_element(scratchCand_.begin(), scratchCand_.begin() + k,
                     scratchCand_.end(),
                     [](const std::pair<double, int>& a,
                        const std::pair<double, int>& b) {
                       return a.first > b.first ||
                              (a.first == b.first && a.second < b.second);
                     });
    scratchCand_.resize(static_cast<std::size_t>(k));
  }
  candidates_.clear();
  candidates_.reserve(scratchCand_.size());
  for (const auto& [score, j] : scratchCand_) candidates_.push_back(j);
  std::sort(candidates_.begin(), candidates_.end());
}

int SimplexSolver::priceFullScan(bool phase1, double& dEnter, int& enterDir) {
  const bool devex = !blandMode_ && options_.pricing == PricingRule::kDevex;
  int entering = -1;
  double bestDantzig = options_.optTol;  // |d| must beat optTol to improve
  double bestDevex = 0.0;
  scratchCand_.clear();
  // Returns true to short-circuit the scan (Bland takes the first improver).
  auto consider = [&](int j, double d) -> bool {
    VarState st = state_[j];
    int dir;
    if (st == VarState::kAtLower && d < -options_.optTol) {
      dir = +1;
    } else if (st == VarState::kAtUpper && d > options_.optTol) {
      dir = -1;
    } else {
      return false;
    }
    if (blandMode_) {
      entering = j;
      enterDir = dir;
      dEnter = d;
      return true;
    }
    if (devex) {
      double score = d * d / devexWeight_[j];
      scratchCand_.emplace_back(score, j);
      if (score > bestDevex) {
        bestDevex = score;
        entering = j;
        enterDir = dir;
        dEnter = d;
      }
    } else if (std::abs(d) > bestDantzig) {
      bestDantzig = std::abs(d);
      entering = j;
      enterDir = dir;
      dEnter = d;
    }
    return false;
  };
  // Structural columns: inline the sparse dot instead of the generic
  // columnDot dispatch. In phase 1 the nonbasic cost is zero, so the
  // reduced cost is just -y . A_j.
  const double* y = y_.data();
  for (int j = 0; j < numStruct_; ++j) {
    if (state_[j] == VarState::kBasic || lowerB_[j] == upperB_[j]) continue;
    auto rows = model_->colRows(j);
    auto coefs = model_->colCoefs(j);
    double dot = 0;
    for (std::size_t k = 0; k < rows.size(); ++k) dot += y[rows[k]] * coefs[k];
    double cj = phase1 ? 0.0 : model_->objective(j);
    if (consider(j, cj - dot)) return entering;
  }
  // Slack columns: cost 0, one +/-1 coefficient in their own row.
  for (int s = 0; s < numSlack_; ++s) {
    int j = numStruct_ + s;
    if (state_[j] == VarState::kBasic) continue;
    int r = slackRowOf_[s];
    if (consider(j, -y[r] * slackSign_[r])) return entering;
  }
  // Artificial columns are pinned to [0,0] and can never re-enter; they are
  // hoisted out of the scan entirely.
  if (devex && entering >= 0) buildCandidateList();
  return entering;
}

int SimplexSolver::priceCandidateList(bool phase1, double& dEnter,
                                      int& enterDir) {
  int entering = -1;
  double bestDevex = 0.0;
  std::size_t keep = 0;
  candidatesPriced_ += static_cast<std::int64_t>(candidates_.size());
  const double* y = y_.data();
  for (int j : candidates_) {
    VarState st = state_[j];
    if (st == VarState::kBasic) continue;  // entered meanwhile: drop
    double cj = phase1 ? 0.0 : (j < numStruct_ ? model_->objective(j) : 0.0);
    double d = cj - columnDot(j, y);
    int dir;
    if (st == VarState::kAtLower && d < -options_.optTol) {
      dir = +1;
    } else if (st == VarState::kAtUpper && d > options_.optTol) {
      dir = -1;
    } else {
      continue;  // no longer improving: drop from the list
    }
    candidates_[keep++] = j;
    double score = d * d / devexWeight_[j];
    if (score > bestDevex) {
      bestDevex = score;
      entering = j;
      enterDir = dir;
      dEnter = d;
    }
  }
  candidates_.resize(keep);
  return entering;
}

int SimplexSolver::selectEntering(bool phase1, double& dEnter, int& enterDir) {
  if (blandMode_ || options_.pricing == PricingRule::kDantzig)
    return priceFullScan(phase1, dEnter, enterDir);
  if (devexResetPending_) resetDevexWeights();
  if (!refreshCandidates_ && !candidates_.empty()) {
    int entering = priceCandidateList(phase1, dEnter, enterDir);
    if (entering >= 0) return entering;
    // Exhausted list: optimality may NOT be concluded from a subset; fall
    // through to the authoritative full scan (which also rebuilds the list).
  }
  refreshCandidates_ = false;
  return priceFullScan(phase1, dEnter, enterDir);
}

void SimplexSolver::updateDevexWeights(int entering, int leaving,
                                       int leavingSlot, double piv) {
  // Reference-framework Devex (Forrest-Goldfarb): gamma_q approximates the
  // steepest-edge norm of the entering column; the leaving variable inherits
  // max(gamma_q / piv^2, 1), and any still-listed candidate j updates to
  // max(gamma_j, (alpha_rj / piv)^2 * gamma_q) where alpha_rj / piv is its
  // dot with the NEW pivot row. Only candidates are touched -- the point of
  // partial pricing is to never walk all columns per pivot.
  const double gq = devexWeight_[entering];
  devexWeight_[leaving] = std::max(gq / (piv * piv), 1.0);
  const double* pivotRow =
      binv_.data() + static_cast<std::size_t>(leavingSlot) * numRows_;
  double maxW = devexWeight_[leaving];
  for (int j : candidates_) {
    if (j == entering || state_[j] == VarState::kBasic) continue;
    double alpha = columnDot(j, pivotRow);
    double cand = alpha * alpha * gq;
    if (cand > devexWeight_[j]) devexWeight_[j] = cand;
    if (devexWeight_[j] > maxW) maxW = devexWeight_[j];
  }
  if (maxW > kDevexWeightLimit) devexResetPending_ = true;
}

// ---------------------------------------------------------------------------
// Pivot application (shared by the primal and dual phases).
// ---------------------------------------------------------------------------

void SimplexSolver::computeW(int entering) {
  const int m = numRows_;
  if (entering < numStruct_) {
    auto rows = model_->colRows(entering);
    auto coefs = model_->colCoefs(entering);
    const std::size_t nnz = rows.size();
    // One ascending pass over the inverse: each slot row is gathered at the
    // column's nonzero offsets. Compared with the historical per-nonzero
    // stride-m accumulate, the same cache lines are touched in prefetchable
    // address order, once.
    for (int slot = 0; slot < m; ++slot) {
      const double* row = binv_.data() + static_cast<std::size_t>(slot) * m;
      double acc = 0;
      for (std::size_t k = 0; k < nnz; ++k) acc += row[rows[k]] * coefs[k];
      w_[slot] = acc;
    }
  } else if (entering < numStruct_ + numSlack_) {
    int r = slackRowOf_[entering - numStruct_];
    const double sgn = slackSign_[r];
    const double* col = binv_.data() + r;
    for (int slot = 0; slot < m; ++slot)
      w_[slot] = col[static_cast<std::size_t>(slot) * m] * sgn;
  } else {
    int r = artRowOf_[entering - numStruct_ - numSlack_];
    const double* col = binv_.data() + r;
    for (int slot = 0; slot < m; ++slot)
      w_[slot] = col[static_cast<std::size_t>(slot) * m];
  }
}

void SimplexSolver::applyStep(int entering, int leavingSlot,
                              bool leavingToUpper, double step) {
  const int m = numRows_;
  for (int slot = 0; slot < m; ++slot) {
    xb_[slot] -= step * w_[slot];
    value_[basis_[slot]] = xb_[slot];
  }
  double enterValue = value_[entering] + step;

  int leaving = basis_[leavingSlot];
  state_[leaving] = leavingToUpper ? VarState::kAtUpper : VarState::kAtLower;
  value_[leaving] = leavingToUpper ? upperB_[leaving] : lowerB_[leaving];
  basisSlot_[leaving] = -1;

  basis_[leavingSlot] = entering;
  basisSlot_[entering] = leavingSlot;
  state_[entering] = VarState::kBasic;
  xb_[leavingSlot] = enterValue;
  value_[entering] = enterValue;
}

bool SimplexSolver::updateBasisInverse(int leavingSlot) {
  const int m = numRows_;
  double piv = w_[leavingSlot];
  if (std::abs(piv) < options_.pivotTol) return false;
  double invPiv = 1.0 / piv;
  double* pivotRow = binv_.data() + static_cast<std::size_t>(leavingSlot) * m;
  for (int k = 0; k < m; ++k) pivotRow[k] *= invPiv;
  for (int slot = 0; slot < m; ++slot) {
    if (slot == leavingSlot) continue;
    double f = w_[slot];
    if (f == 0.0) continue;
    double* row = binv_.data() + static_cast<std::size_t>(slot) * m;
    for (int k = 0; k < m; ++k) row[k] -= f * pivotRow[k];
  }
  return true;
}

// ---------------------------------------------------------------------------
// Primal phases.
// ---------------------------------------------------------------------------

LpStatus SimplexSolver::iterate(std::int64_t& iterationBudget, bool phase1) {
  const int m = numRows_;
  const bool hasDeadline = options_.deadlineSeconds > 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              hasDeadline ? options_.deadlineSeconds : 0.0));
  constexpr double kTieTol = 1e-9;
  int sinceRefactor = 0;
  const int refactorInterval =
      SimplexOptions::effectiveRefactorInterval(options_.refactorInterval, m);
  yValid_ = false;
  refreshCandidates_ = true;
  // Phase-1 incremental dual validity: the signature duals are rebuilt on
  // entry and after refactorization, and kept current per pivot otherwise.
  bool p1Fresh = false;
  for (;;) {
    if (iterationBudget-- <= 0) {
      stopReason_ = ErrorCode::kIterationLimit;
      return LpStatus::kIterLimit;
    }
    // Deadline check and fault probe share one cadence: no clock query and
    // no fault-site branch on 63 of every 64 pivots. Each solve resets
    // iterations_ to 0, so every solve is probed at least once up front.
    if ((iterations_ & 63) == 0) {
      if (hasDeadline && std::chrono::steady_clock::now() >= deadline) {
        stopReason_ = ErrorCode::kDeadline;
        return LpStatus::kIterLimit;
      }
      if (fault::fire(fault::Site::kLpDeadline)) {
        stopReason_ = ErrorCode::kDeadline;
        return LpStatus::kIterLimit;
      }
    }
    ++iterations_;

    // Phase-1 costs are the violation signature of the current basis. The
    // signatures are recomputed exactly from xb_ every pivot (O(m)), but the
    // dense dual rebuild they historically forced is now incremental: only
    // signature *changes* touch y_, via contiguous row adds. Phase-2 costs
    // are static; y is rebuilt once and updated incrementally per pivot.
    if (phase1) {
      if (!p1Fresh) {
        p1Rebuild();
        p1Fresh = true;
      }
      if (p1Violations_ == 0) return LpStatus::kOptimal;  // feasible
    } else if (!yValid_) {
      rebuildPhase2Duals();
      yValid_ = true;
    }

    int entering = -1;
    double dEnter = 0;
    int enterDir = 0;
    entering = selectEntering(phase1, dEnter, enterDir);
    if (entering < 0 && phase1 && !blandMode_) {
      // About to conclude minimal positive infeasibility. The incremental
      // phase-1 duals may have drifted, so verify against a fresh rebuild
      // and one more authoritative scan before giving up.
      p1Rebuild();
      p1Fresh = true;
      if (p1Violations_ == 0) return LpStatus::kOptimal;
      entering = selectEntering(phase1, dEnter, enterDir);
    }
    if (entering < 0) {
      // No improving column. Phase 1: infeasibility is minimal and positive.
      return phase1 ? LpStatus::kInfeasible : LpStatus::kOptimal;
    }

    computeW(entering);

    // Bounded ratio test; entering moves by t >= 0 in direction enterDir and
    // basics respond as xb -= t * enterDir * w. Infeasible basics block when
    // they reach the bound they violate (composite phase-1 rule); feasible
    // basics block at either bound as usual.
    double tBest = upperB_[entering] - lowerB_[entering];  // bound-flip cap
    int leavingSlot = -1;
    bool leavingToUpper = false;
    double bestMag = 0;
    for (int slot = 0; slot < m; ++slot) {
      double g = enterDir * w_[slot];
      if (g > -options_.pivotTol && g < options_.pivotTol) continue;
      int bj = basis_[slot];
      double xv = xb_[slot];
      double t = kInfinity;
      bool toUpper = false;
      if (xv < lowerB_[bj] - options_.feasTol) {
        // Below its lower bound: blocks only while rising to that bound.
        if (g < 0) {
          t = (xv - lowerB_[bj]) / g;
          toUpper = false;
        } else {
          continue;
        }
      } else if (xv > upperB_[bj] + options_.feasTol) {
        if (g > 0) {
          t = (xv - upperB_[bj]) / g;
          toUpper = true;
        } else {
          continue;
        }
      } else if (g > 0) {
        t = (xv - lowerB_[bj]) / g;
        toUpper = false;
      } else {
        if (upperB_[bj] == kInfinity) continue;
        t = (xv - upperB_[bj]) / g;
        toUpper = true;
      }
      if (t < 0) t = 0;  // drift clamp
      bool take = false;
      if (t < tBest - kTieTol) {
        take = true;
      } else if (t <= tBest + kTieTol && leavingSlot >= 0) {
        take = blandMode_ ? (bj < basis_[leavingSlot])
                          : (std::abs(w_[slot]) > bestMag);
      }
      if (take) {
        tBest = std::min(tBest, t);
        leavingSlot = slot;
        leavingToUpper = toUpper;
        bestMag = std::abs(w_[slot]);
      }
    }

    if (leavingSlot < 0) {
      if (upperB_[entering] == kInfinity) {
        // Unbounded direction. In phase 1 the objective (total violation)
        // is bounded below by zero, so this cannot persist: numerics.
        stopReason_ = ErrorCode::kNumerical;
        return phase1 ? LpStatus::kNumericalError : LpStatus::kUnbounded;
      }
      double t = upperB_[entering] - lowerB_[entering];
      for (int slot = 0; slot < m; ++slot) {
        xb_[slot] -= t * enterDir * w_[slot];
        value_[basis_[slot]] = xb_[slot];
      }
      value_[entering] = (enterDir > 0) ? upperB_[entering] : lowerB_[entering];
      state_[entering] =
          (enterDir > 0) ? VarState::kAtUpper : VarState::kAtLower;
      // A bound flip moves every basic value but no basis row: resync the
      // phase-1 signatures (and their dual contributions) in place.
      if (phase1 && p1Fresh) p1SyncSignatures(-1);
      continue;
    }

    if (tBest <= options_.feasTol) {
      ++degeneratePivots_;
      if ((stallCount_ & 31) == 31) refreshCandidates_ = true;  // stalling
      if (++stallCount_ >= options_.blandAfterStalls && !blandMode_) {
        blandMode_ = true;
        ++blandActivations_;
      }
    } else {
      stallCount_ = 0;
      blandMode_ = options_.forceBland;
    }

    const int leaving = basis_[leavingSlot];
    const double piv = w_[leavingSlot];
    applyStep(entering, leavingSlot, leavingToUpper, tBest * enterDir);
    // Stage A of the phase-1 dual update: fold the post-step signature
    // changes into y_ against the OLD basis-inverse rows, and remove the
    // pivot slot's old contribution entirely (stage B re-adds it against
    // the updated pivot row).
    if (phase1 && p1Fresh) p1SyncSignatures(leavingSlot);

    if (!updateBasisInverse(leavingSlot)) {
      if (!refactorize()) {
        stopReason_ = ErrorCode::kSingularBasis;
        return LpStatus::kNumericalError;
      }
      p1Fresh = false;  // refactorize moved xb_ and replaced every row
      continue;
    }
    const double* pivotRow =
        binv_.data() + static_cast<std::size_t>(leavingSlot) * m;
    if (phase1 && p1Fresh) {
      // Stage B: with row_s_new = row_s_old - w_s * row_l_new for s != l,
      // the stage-A sum over old rows equals the same sum over new rows
      // plus (sum_s c_s w_s) * row_l_new; subtract that surplus and add the
      // entering variable's own signature term in one pass.
      signed char cl = 0;
      double ev = xb_[leavingSlot];
      if (ev < lowerB_[entering] - options_.feasTol) {
        cl = -1;
      } else if (ev > upperB_[entering] + options_.feasTol) {
        cl = 1;
      }
      double coef = static_cast<double>(cl);
      for (int s = 0; s < m; ++s) {
        if (s != leavingSlot && p1Sig_[s] != 0)
          coef -= static_cast<double>(p1Sig_[s]) * w_[s];
      }
      if (coef != 0.0) {
        for (int r = 0; r < m; ++r) y_[r] += coef * pivotRow[r];
      }
      p1Sig_[leavingSlot] = cl;
      if (cl != 0) ++p1Violations_;
    } else if (!phase1 && yValid_) {
      // Dual update: the entering column's reduced cost must drop to zero;
      // y' = y + d_e * (new pivot row of Binv).
      for (int k = 0; k < m; ++k) y_[k] += dEnter * pivotRow[k];
      if (fault::fire(fault::Site::kDualDrift)) {
        // Injected drift: corrupt the incremental duals the way accumulated
        // floating-point error would. The post-solve re-pricing pass in
        // runPhases must detect and repair this.
        for (int k = 0; k < m; ++k) y_[k] += 0.125 * (1 + (k & 3));
      }
    }
    if (!blandMode_ && options_.pricing == PricingRule::kDevex)
      updateDevexWeights(entering, leaving, leavingSlot, piv);

    if (++sinceRefactor >= refactorInterval) {
      if (!refactorize()) {
        stopReason_ = ErrorCode::kSingularBasis;
        return LpStatus::kNumericalError;
      }
      sinceRefactor = 0;
      p1Fresh = false;
    }
  }
}

// ---------------------------------------------------------------------------
// Dual simplex (warm-restart phase).
// ---------------------------------------------------------------------------

LpStatus SimplexSolver::dualIterate(std::int64_t& iterationBudget) {
  const int m = numRows_;
  const bool hasDeadline = options_.deadlineSeconds > 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              hasDeadline ? options_.deadlineSeconds : 0.0));
  int sinceRefactor = 0;
  const int refactorInterval =
      SimplexOptions::effectiveRefactorInterval(options_.refactorInterval, m);
  const std::int64_t pivotCap =
      std::max<std::int64_t>(kDualPivotCapFloor, 2 * m);
  std::int64_t pivots = 0;
  // The caller verified dual feasibility and left y_ fresh (yValid_).
  for (;;) {
    if (iterationBudget-- <= 0) {
      stopReason_ = ErrorCode::kIterationLimit;
      return LpStatus::kIterLimit;
    }
    if ((iterations_ & 63) == 0) {
      if (hasDeadline && std::chrono::steady_clock::now() >= deadline) {
        stopReason_ = ErrorCode::kDeadline;
        return LpStatus::kIterLimit;
      }
      if (fault::fire(fault::Site::kLpDeadline)) {
        stopReason_ = ErrorCode::kDeadline;
        return LpStatus::kIterLimit;
      }
    }
    if (!yValid_) {
      rebuildPhase2Duals();
      yValid_ = true;
    }

    // Leaving variable: the most out-of-bound basic. None left means the
    // basis is primal feasible, and -- being dual feasible throughout --
    // optimal (the caller's phase 2 + re-pricing net still verify).
    int leavingSlot = -1;
    double worst = options_.feasTol;
    bool toUpper = false;
    for (int s = 0; s < m; ++s) {
      int bj = basis_[s];
      double below = lowerB_[bj] - xb_[s];
      double above = xb_[s] - upperB_[bj];
      if (below > worst) {
        worst = below;
        leavingSlot = s;
        toUpper = false;
      }
      if (above > worst) {
        worst = above;
        leavingSlot = s;
        toUpper = true;
      }
    }
    if (leavingSlot < 0) return LpStatus::kOptimal;
    if (pivots >= pivotCap) {
      // Degenerate grind: hand the basis (already mostly repaired) to the
      // primal path, which has Bland's rule to guarantee termination.
      return LpStatus::kInfeasible;
    }
    ++iterations_;
    ++dualPivots_;
    ++pivots;

    // BTRAN row: rho = e_slot^T Binv is a contiguous row in this layout.
    const double* rho =
        binv_.data() + static_cast<std::size_t>(leavingSlot) * m;

    // Dual ratio test: among the nonbasic columns that can move the leaving
    // variable toward its violated bound, enter the one whose reduced cost
    // hits zero first (min |d_j| / |alpha_j|), so every other reduced cost
    // keeps its optimal sign. Ties prefer the larger pivot magnitude.
    int entering = -1;
    double dEnter = 0, bestRatio = kInfinity, bestMag = 0;
    auto considerDual = [&](int j, double d, double alpha) {
      bool ok = (state_[j] == VarState::kAtLower)
                    ? (toUpper ? alpha > options_.pivotTol
                               : alpha < -options_.pivotTol)
                    : (toUpper ? alpha < -options_.pivotTol
                               : alpha > options_.pivotTol);
      if (!ok) return;
      double mag = std::abs(alpha);
      double ratio = std::abs(d) / mag;
      if (ratio < bestRatio - 1e-12 ||
          (ratio <= bestRatio + 1e-12 && mag > bestMag)) {
        bestRatio = ratio;
        entering = j;
        dEnter = d;
        bestMag = mag;
      }
    };
    const double* y = y_.data();
    for (int j = 0; j < numStruct_; ++j) {
      if (state_[j] == VarState::kBasic || lowerB_[j] == upperB_[j]) continue;
      double alpha = columnDot(j, rho);
      if (std::abs(alpha) <= options_.pivotTol) continue;
      considerDual(j, model_->objective(j) - columnDot(j, y), alpha);
    }
    for (int s = 0; s < numSlack_; ++s) {
      int j = numStruct_ + s;
      if (state_[j] == VarState::kBasic) continue;
      int r = slackRowOf_[s];
      double alpha = rho[r] * slackSign_[r];
      if (std::abs(alpha) <= options_.pivotTol) continue;
      considerDual(j, -y[r] * slackSign_[r], alpha);
    }
    if (entering < 0) {
      // Dual unbounded: primal infeasible in exact arithmetic -- but the
      // proof discipline routes that claim through phase 1 (the caller
      // falls back), so numerics can never turn into a wrong "infeasible".
      return LpStatus::kInfeasible;
    }

    computeW(entering);
    double piv = w_[leavingSlot];
    if (std::abs(piv) < options_.pivotTol) {
      if (!refactorize()) {
        stopReason_ = ErrorCode::kSingularBasis;
        return LpStatus::kNumericalError;
      }
      continue;  // fresh xb_/duals; re-select
    }
    int leaving = basis_[leavingSlot];
    double target = toUpper ? upperB_[leaving] : lowerB_[leaving];
    double step = (xb_[leavingSlot] - target) / piv;
    applyStep(entering, leavingSlot, toUpper, step);
    if (!updateBasisInverse(leavingSlot)) {
      if (!refactorize()) {
        stopReason_ = ErrorCode::kSingularBasis;
        return LpStatus::kNumericalError;
      }
      continue;
    }
    const double* pivotRow =
        binv_.data() + static_cast<std::size_t>(leavingSlot) * m;
    for (int k = 0; k < m; ++k) y_[k] += dEnter * pivotRow[k];

    if (++sinceRefactor >= refactorInterval) {
      if (!refactorize()) {
        stopReason_ = ErrorCode::kSingularBasis;
        return LpStatus::kNumericalError;
      }
      sinceRefactor = 0;
    }
  }
}

bool SimplexSolver::phase2ImprovingColumn() {
  rebuildPhase2Duals();
  yValid_ = true;
  const double* y = y_.data();
  for (int j = 0; j < numStruct_; ++j) {
    VarState st = state_[j];
    if (st == VarState::kBasic || lowerB_[j] == upperB_[j]) continue;
    auto rows = model_->colRows(j);
    auto coefs = model_->colCoefs(j);
    double dot = 0;
    for (std::size_t k = 0; k < rows.size(); ++k) dot += y[rows[k]] * coefs[k];
    double d = model_->objective(j) - dot;
    if (st == VarState::kAtLower && d < -options_.optTol) return true;
    if (st == VarState::kAtUpper && d > options_.optTol) return true;
  }
  for (int s = 0; s < numSlack_; ++s) {
    int j = numStruct_ + s;
    VarState st = state_[j];
    if (st == VarState::kBasic) continue;
    int r = slackRowOf_[s];
    double d = -y[r] * slackSign_[r];
    if (st == VarState::kAtLower && d < -options_.optTol) return true;
    if (st == VarState::kAtUpper && d > options_.optTol) return true;
  }
  return false;
}

LpResult SimplexSolver::solve(const LpModel& model,
                              const BasisSnapshot* warm) {
  LpResult result;
  bool warmRequested = warm != nullptr && !warm->empty();
  setup(model, warm);
  bool factorized = false;
  if (warmRequested) {
    factorized = refactorize();
    if (!factorized) setup(model, nullptr);  // fall back to default basis
  }
  if (!factorized) {
    // Default slack/artificial basis: the inverse is the identity (all
    // slack/artificial coefficients are +1 except >= slacks at -1), so the
    // O(m^3) refactorization is unnecessary.
    const int m = numRows_;
    binv_.assign(static_cast<std::size_t>(m) * m, 0.0);
    for (int r = 0; r < m; ++r) {
      double sign = (slackCol_[r] >= 0) ? slackSign_[r] : 1.0;
      binv_[static_cast<std::size_t>(basisSlot_[slackCol_[r] >= 0
                                                    ? slackCol_[r]
                                                    : artCol_[r]]) *
                m +
            r] = sign;
    }
    recomputeBasicValues();
  }
  // A successfully restored warm basis came from an optimal parent solve,
  // so under bound-only changes it is typically still dual feasible: try
  // the dual restart before composite phase 1.
  const bool tryDual =
      factorized && options_.dualRestart && !options_.forceBland;
  return runPhases(model, tryDual);
}

bool SimplexSolver::canContinue(const LpModel& model) const {
  return stateValid_ && model_ == &model && numStruct_ == model.numCols() &&
         numRows_ <= model.numRows();
}

LpResult SimplexSolver::solveContinue(const LpModel& model) {
  OPTR_ASSERT(canContinue(model), "solveContinue without valid state");
  LpResult result;

  // Refresh structural bounds; park nonbasic variables on their (possibly
  // moved) bounds.
  for (int c = 0; c < numStruct_; ++c) {
    lowerB_[c] = model.lower(c);
    upperB_[c] = model.upper(c);
    if (state_[c] == VarState::kAtLower) {
      value_[c] = lowerB_[c];
    } else if (state_[c] == VarState::kAtUpper) {
      if (upperB_[c] == kInfinity) {
        state_[c] = VarState::kAtLower;
        value_[c] = lowerB_[c];
      } else {
        value_[c] = upperB_[c];
      }
    }
  }

  // Absorb appended rows (all lazy cuts are inequalities). For basis
  // B' = [[B, 0], [C, S]] with S the new slacks, the inverse is
  // [[B^-1, 0], [-S^-1 C B^-1, S^-1]]; each new row costs O(nnz_basic x m).
  const int newRows = model.numRows() - numRows_;
  for (int r = numRows_; r < model.numRows(); ++r) {
    if (model.sense(r) == RowSense::kEq) {
      // A misbehaving separator appended an equality row; the incremental
      // absorption below only handles slacked inequalities. Refuse the
      // continuation (the caller falls back to a cold solve, which handles
      // equality rows via artificials) instead of corrupting the basis.
      stateValid_ = false;
      result.status = LpStatus::kNumericalError;
      result.detail = Status::error(ErrorCode::kInvalidInput,
                                    "appended row must be an inequality");
      return result;
    }
  }
  if (newRows > 0) {
    const int mOld = numRows_;
    const int m = model.numRows();
    // Map old internal columns to new indices: slacks/artificials shift
    // because numStruct_ stays but slack count grows.
    int oldNumSlack = numSlack_;
    std::vector<int> oldBasis = basis_;
    std::vector<int> oldSlackRowOf = slackRowOf_;
    std::vector<VarState> oldState = state_;
    std::vector<double> oldValue = value_;
    std::vector<double> oldBinv = std::move(binv_);

    // Rebuild column bookkeeping for the grown model.
    slackCol_.assign(m, -1);
    slackSign_.assign(m, 0.0);
    slackRowOf_.clear();
    artCol_.assign(m, -1);
    artRowOf_.clear();
    numSlack_ = 0;
    for (int r = 0; r < m; ++r) {
      if (model.sense(r) == RowSense::kEq) continue;
      slackSign_[r] = (model.sense(r) == RowSense::kLe) ? 1.0 : -1.0;
      slackCol_[r] = numStruct_ + numSlack_;
      slackRowOf_.push_back(r);
      ++numSlack_;
    }
    numArt_ = 0;
    for (int r = 0; r < m; ++r) {
      if (model.sense(r) != RowSense::kEq) continue;
      artCol_[r] = numStruct_ + numSlack_ + numArt_;
      artRowOf_.push_back(r);
      ++numArt_;
    }
    int total = totalCols();
    auto remap = [&](int oldCol) {
      if (oldCol < numStruct_) return oldCol;
      if (oldCol < numStruct_ + oldNumSlack)
        return slackCol_[oldSlackRowOf[oldCol - numStruct_]];
      // Artificial of an equality row: row ids are stable.
      int oldArtIdx = oldCol - numStruct_ - oldNumSlack;
      // artRowOf_ was rebuilt; equality rows did not change, so the i-th
      // artificial still belongs to the same row.
      return artCol_[artRowOf_[oldArtIdx]];
    };

    cost_.assign(total, 0.0);
    lowerB_.resize(total);
    upperB_.resize(total);
    value_.assign(total, 0.0);
    state_.assign(total, VarState::kAtLower);
    for (int c = 0; c < numStruct_; ++c) {
      lowerB_[c] = model.lower(c);
      upperB_[c] = model.upper(c);
      state_[c] = oldState[c];
      value_[c] = oldValue[c];
    }
    for (int s = 0; s < numSlack_; ++s) {
      lowerB_[numStruct_ + s] = 0.0;
      upperB_[numStruct_ + s] = kInfinity;
    }
    for (int a = 0; a < numArt_; ++a) {
      lowerB_[numStruct_ + numSlack_ + a] = 0.0;
      upperB_[numStruct_ + numSlack_ + a] = 0.0;
    }
    for (int oldCol = numStruct_; oldCol < numStruct_ + oldNumSlack + numArt_;
         ++oldCol) {
      int neu = remap(oldCol);
      state_[neu] = oldState[oldCol];
      value_[neu] = oldValue[oldCol];
    }

    // Basis: old slots keep their (remapped) columns; new rows get their
    // slack as basic.
    basis_.assign(m, -1);
    basisSlot_.assign(total, -1);
    for (int slot = 0; slot < mOld; ++slot) {
      int col = remap(oldBasis[slot]);
      basis_[slot] = col;
      basisSlot_[col] = slot;
      state_[col] = VarState::kBasic;
    }
    for (int r = mOld; r < m; ++r) {
      int slot = r;
      int col = slackCol_[r];  // non-negative: equality rows rejected above
      basis_[slot] = col;
      basisSlot_[col] = slot;
      state_[col] = VarState::kBasic;
    }

    // Grow Binv. New-slot rows: -S^-1 C B^-1 over old row columns, S^-1 on
    // their own column (slack coefficient is +1 for <=, -1 for >=).
    binv_.assign(static_cast<std::size_t>(m) * m, 0.0);
    for (int slot = 0; slot < mOld; ++slot) {
      const double* src = oldBinv.data() + static_cast<std::size_t>(slot) * mOld;
      double* dst = binv_.data() + static_cast<std::size_t>(slot) * m;
      std::copy(src, src + mOld, dst);
    }
    for (int r = mOld; r < m; ++r) {
      double* dst = binv_.data() + static_cast<std::size_t>(r) * m;
      double sInv = 1.0 / slackSign_[r];
      auto cols = model.rowCols(r);
      auto coefs = model.rowCoefs(r);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        int slot = basisSlot_[cols[k]];
        if (slot < 0 || slot >= mOld) continue;  // nonbasic or new column
        double f = coefs[k] * sInv;
        const double* brow =
            binv_.data() + static_cast<std::size_t>(slot) * m;
        for (int j = 0; j < mOld; ++j) dst[j] -= f * brow[j];
      }
      dst[r] = sInv;
    }
    numRows_ = m;
    xb_.assign(m, 0.0);
    y_.assign(m, 0.0);
    w_.assign(m, 0.0);
    rhsWork_.assign(m, 0.0);
    p1Sig_.assign(m, 0);
    devexWeight_.assign(total, 1.0);
    candidates_.clear();
    model.buildColumnIndex();
  }

  recomputeBasicValues();
  iterations_ = 0;
  refactorCount_ = 0;
  degeneratePivots_ = 0;
  blandActivations_ = 0;
  devexResets_ = 0;
  candidatesPriced_ = 0;
  dualPivots_ = 0;
  usedDualRestart_ = false;
  refreshCandidates_ = true;
  stallCount_ = 0;
  blandMode_ = options_.forceBland;
  // Bound-only changes (the branch-and-bound child pattern) and appended
  // inequality rows (their slack is basic at dual value zero) both preserve
  // dual feasibility of an optimal parent basis: prime candidates for the
  // dual restart. runPhases still verifies before committing to it.
  const bool tryDual = options_.dualRestart && !options_.forceBland;
  return runPhases(model, tryDual);
}

void SimplexSolver::finalizeResult(LpResult& result) {
  result.iterations = iterations_;
  result.refactorizations = refactorCount_;
  result.degeneratePivots = degeneratePivots_;
  result.blandActivations = blandActivations_;
  result.dualPivots = dualPivots_;
  result.usedDualRestart = usedDualRestart_;
  static obs::Counter& cSolves = obs::metrics().counter("lp.solves");
  static obs::Counter& cPivots = obs::metrics().counter("lp.pivots");
  static obs::Counter& cRefactor =
      obs::metrics().counter("lp.refactorizations");
  static obs::Counter& cDegen =
      obs::metrics().counter("lp.degenerate_pivots");
  static obs::Counter& cBland =
      obs::metrics().counter("lp.bland_activations");
  static obs::Counter& cCandidates =
      obs::metrics().counter("lp.pricing.candidates");
  static obs::Counter& cDevexResets =
      obs::metrics().counter("lp.devex.resets");
  static obs::Counter& cDualPivots = obs::metrics().counter("lp.dual.pivots");
  static obs::Counter& cDualWarm =
      obs::metrics().counter("lp.warmstart.dual");
  static obs::Histogram& hPivots =
      obs::metrics().histogram("lp.pivots_per_solve");
  cSolves.add();
  cPivots.add(iterations_);
  cRefactor.add(refactorCount_);
  cDegen.add(degeneratePivots_);
  cBland.add(blandActivations_);
  cCandidates.add(candidatesPriced_);
  cDevexResets.add(devexResets_);
  cDualPivots.add(dualPivots_);
  if (usedDualRestart_) cDualWarm.add();
  hPivots.record(static_cast<double>(iterations_));
}

LpResult SimplexSolver::runPhases(const LpModel& model, bool tryDualRestart) {
  LpResult result;
  stateValid_ = false;
  stopReason_ = ErrorCode::kOk;
  std::int64_t budget = options_.maxIterations;
  auto stopDetail = [this](LpStatus st) {
    if (st == LpStatus::kOptimal || st == LpStatus::kInfeasible ||
        stopReason_ == ErrorCode::kOk) {
      return Status::ok();
    }
    return Status::error(stopReason_, std::string("simplex stopped: ") +
                                          optr::toString(stopReason_));
  };

  // Dual-simplex warm restart: when the seed basis is already dual feasible
  // (bound-only changes against a previously optimal basis), drive the few
  // out-of-bound basics home with dual pivots instead of the composite
  // primal phase 1. Every non-optimal outcome except a hard stop falls back
  // to the primal path, so this can change pivot counts but never results.
  bool phase1Done = false;
  if (tryDualRestart && !phase2ImprovingColumn()) {
    usedDualRestart_ = true;
    LpStatus dst = dualIterate(budget);
    if (dst == LpStatus::kOptimal) {
      phase1Done = true;
    } else if (dst == LpStatus::kIterLimit ||
               dst == LpStatus::kNumericalError) {
      result.status = dst;
      result.detail = stopDetail(dst);
      finalizeResult(result);
      return result;
    }
    // kInfeasible: the dual ratio test dried up or the pivot cap was hit;
    // phase 1 below is the authority on infeasibility.
  }

  LpStatus st = phase1Done ? LpStatus::kOptimal : iterate(budget, true);
  if (st != LpStatus::kOptimal) {
    if (st == LpStatus::kInfeasible) {
      result.phase1Infeasibility = totalInfeasibility();
      stateValid_ = true;  // basis is consistent; continuation is fine
    }
    result.status = st;
    result.detail = stopDetail(st);
    finalizeResult(result);
    return result;
  }

  blandMode_ = options_.forceBland;
  stallCount_ = 0;
  st = iterate(budget, /*phase1=*/false);
  // Dual-drift safety net: "optimal" may rest on incrementally-updated duals
  // that accumulated error. Re-price against duals rebuilt from the basis
  // inverse; if an improving column survives, the claim was premature --
  // resume pivoting (bounded rounds so persistent corruption cannot loop).
  int repriceRounds = 0;
  while (st == LpStatus::kOptimal && phase2ImprovingColumn()) {
    if (++repriceRounds > 3) {
      stopReason_ = ErrorCode::kNumerical;
      st = LpStatus::kNumericalError;
      break;
    }
    st = iterate(budget, /*phase1=*/false);
  }
  if (st != LpStatus::kOptimal) {
    result.status = st;
    result.detail = stopDetail(st);
    finalizeResult(result);
    return result;
  }

  recomputeBasicValues();
  auto extract = [&] {
    result.x.assign(value_.begin(), value_.begin() + numStruct_);
    for (int c = 0; c < numStruct_; ++c)
      result.x[c] = std::clamp(result.x[c], model.lower(c), model.upper(c));
    result.objective = model.objectiveValue(result.x);
  };
  extract();
  result.status = LpStatus::kOptimal;

  // Safety net: verify primal feasibility; one refactor-and-retry on drift.
  if (!model.isFeasible(result.x, 1e-5)) {
    bool recovered = false;
    if (refactorize()) {
      std::int64_t retry = options_.maxIterations / 4;
      if (iterate(retry, true) == LpStatus::kOptimal &&
          iterate(retry, false) == LpStatus::kOptimal) {
        recomputeBasicValues();
        extract();
        recovered = model.isFeasible(result.x, 1e-4);
      }
    }
    if (!recovered && !model.isFeasible(result.x, 1e-4)) {
      result.status = LpStatus::kNumericalError;
      result.detail = Status::error(ErrorCode::kNumerical,
                                    "primal drift unrecovered by refactor");
    }
  }
  stateValid_ = (result.status == LpStatus::kOptimal);
  finalizeResult(result);
  return result;
}

BasisSnapshot SimplexSolver::snapshot() const {
  BasisSnapshot snap;
  snap.basis.reserve(basis_.size());
  for (int j : basis_) {
    BasisSnapshot::Token tok;
    if (j < numStruct_) {
      tok.kind = BasisSnapshot::Kind::kStruct;
      tok.id = j;
    } else if (j < numStruct_ + numSlack_) {
      tok.kind = BasisSnapshot::Kind::kSlack;
      tok.id = slackRowOf_[j - numStruct_];
    } else {
      tok.kind = BasisSnapshot::Kind::kArtificial;
      tok.id = artRowOf_[j - numStruct_ - numSlack_];
    }
    snap.basis.push_back(tok);
  }
  snap.atUpper.assign(numStruct_, 0);
  for (int c = 0; c < numStruct_; ++c)
    snap.atUpper[c] = (state_[c] == VarState::kAtUpper) ? 1 : 0;
  return snap;
}

}  // namespace optr::lp
