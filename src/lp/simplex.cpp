#include "lp/simplex.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/fault_injection.h"
#include "obs/metrics.h"

namespace optr::lp {

const char* toString(LpStatus s) {
  switch (s) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterLimit: return "iteration-limit";
    case LpStatus::kNumericalError: return "numerical-error";
  }
  return "?";
}

double SimplexSolver::columnDot(int j, const std::vector<double>& y) const {
  if (j < numStruct_) {
    auto rows = model_->colRows(j);
    auto coefs = model_->colCoefs(j);
    double d = 0;
    for (std::size_t k = 0; k < rows.size(); ++k) d += y[rows[k]] * coefs[k];
    return d;
  }
  if (j < numStruct_ + numSlack_) {
    int r = slackRowOf_[j - numStruct_];
    return y[r] * slackSign_[r];
  }
  return y[artRowOf_[j - numStruct_ - numSlack_]];
}

void SimplexSolver::setup(const LpModel& model, const BasisSnapshot* warm) {
  model_ = &model;
  model.buildColumnIndex();
  numStruct_ = model.numCols();
  numRows_ = model.numRows();

  // Slacks for inequality rows, artificials for equality rows.
  slackCol_.assign(numRows_, -1);
  slackSign_.assign(numRows_, 0.0);
  slackRowOf_.clear();
  artCol_.assign(numRows_, -1);
  artRowOf_.clear();
  numSlack_ = 0;
  for (int r = 0; r < numRows_; ++r) {
    if (model.sense(r) == RowSense::kEq) continue;
    slackSign_[r] = (model.sense(r) == RowSense::kLe) ? 1.0 : -1.0;
    slackCol_[r] = numStruct_ + numSlack_;
    slackRowOf_.push_back(r);
    ++numSlack_;
  }
  numArt_ = 0;
  for (int r = 0; r < numRows_; ++r) {
    if (model.sense(r) != RowSense::kEq) continue;
    artCol_[r] = numStruct_ + numSlack_ + numArt_;
    artRowOf_.push_back(r);
    ++numArt_;
  }

  int total = totalCols();
  cost_.assign(total, 0.0);
  lowerB_.resize(total);
  upperB_.resize(total);
  value_.resize(total);
  state_.assign(total, VarState::kAtLower);

  for (int c = 0; c < numStruct_; ++c) {
    lowerB_[c] = model.lower(c);
    upperB_[c] = model.upper(c);
  }
  for (int s = 0; s < numSlack_; ++s) {
    lowerB_[numStruct_ + s] = 0.0;
    upperB_[numStruct_ + s] = kInfinity;
  }
  for (int a = 0; a < numArt_; ++a) {
    // Artificials are permanently pinned; a basic artificial away from zero
    // is a bound violation that phase 1 repairs.
    lowerB_[numStruct_ + numSlack_ + a] = 0.0;
    upperB_[numStruct_ + numSlack_ + a] = 0.0;
  }

  for (int j = 0; j < total; ++j) value_[j] = lowerB_[j];

  // Basis: restore from snapshot when possible, else slack/artificial.
  basis_.assign(numRows_, -1);
  basisSlot_.assign(total, -1);
  xb_.assign(numRows_, 0.0);

  bool warmOk = false;
  if (warm != nullptr && !warm->empty() &&
      static_cast<int>(warm->basis.size()) <= numRows_ &&
      static_cast<int>(warm->atUpper.size()) == numStruct_) {
    warmOk = true;
    std::vector<char> rowHasBasic(numRows_, 0);
    int slot = 0;
    for (const BasisSnapshot::Token& tok : warm->basis) {
      int col = -1;
      switch (tok.kind) {
        case BasisSnapshot::Kind::kStruct:
          if (tok.id >= 0 && tok.id < numStruct_) col = tok.id;
          break;
        case BasisSnapshot::Kind::kSlack:
          if (tok.id >= 0 && tok.id < numRows_) col = slackCol_[tok.id];
          break;
        case BasisSnapshot::Kind::kArtificial:
          if (tok.id >= 0 && tok.id < numRows_) col = artCol_[tok.id];
          break;
      }
      if (col < 0 || basisSlot_[col] >= 0) {
        warmOk = false;
        break;
      }
      basis_[slot] = col;
      basisSlot_[col] = slot;
      ++slot;
    }
    if (warmOk) {
      // Rows appended after the snapshot get their own slack as basic.
      for (int r = 0; r < numRows_ && slot < numRows_; ++r) {
        int col = slackCol_[r] >= 0 ? slackCol_[r] : artCol_[r];
        if (basisSlot_[col] < 0) {
          basis_[slot] = col;
          basisSlot_[col] = slot;
          ++slot;
        }
      }
      warmOk = (slot == numRows_);
    }
    if (warmOk) {
      for (int c = 0; c < numStruct_; ++c) {
        if (basisSlot_[c] >= 0) {
          state_[c] = VarState::kBasic;
        } else if (warm->atUpper[c] && upperB_[c] < kInfinity) {
          state_[c] = VarState::kAtUpper;
          value_[c] = upperB_[c];
        }
      }
      for (int j = numStruct_; j < total; ++j) {
        if (basisSlot_[j] >= 0) state_[j] = VarState::kBasic;
      }
    } else {
      // Reset whatever the partial restore touched.
      basis_.assign(numRows_, -1);
      basisSlot_.assign(total, -1);
      state_.assign(total, VarState::kAtLower);
      for (int j = 0; j < total; ++j) value_[j] = lowerB_[j];
    }
  }

  if (!warmOk) {
    for (int r = 0; r < numRows_; ++r) {
      int col = slackCol_[r] >= 0 ? slackCol_[r] : artCol_[r];
      basis_[r] = col;
      basisSlot_[col] = r;
      state_[col] = VarState::kBasic;
    }
  }

  y_.assign(numRows_, 0.0);
  w_.assign(numRows_, 0.0);
  rhsWork_.assign(numRows_, 0.0);
  iterations_ = 0;
  refactorCount_ = 0;
  degeneratePivots_ = 0;
  blandActivations_ = 0;
  stallCount_ = 0;
  blandMode_ = options_.forceBland;
  stateValid_ = false;
}

bool SimplexSolver::refactorize() {
  ++refactorCount_;
  if (fault::fire(fault::Site::kSingularBasis)) return false;
  // Rebuild Binv by Gauss-Jordan elimination of the basis matrix B, stored
  // row-major with rows = constraint rows and columns = basis slots. The
  // row-major inverse then has rows = basis slots and columns = constraint
  // rows, i.e. binv_[slot * m + row], the layout iterate() uses.
  const int m = numRows_;
  std::vector<double> mat(static_cast<std::size_t>(m) * m, 0.0);
  for (int slot = 0; slot < m; ++slot) {
    int j = basis_[slot];
    if (j < numStruct_) {
      auto rows = model_->colRows(j);
      auto coefs = model_->colCoefs(j);
      for (std::size_t k = 0; k < rows.size(); ++k)
        mat[static_cast<std::size_t>(rows[k]) * m + slot] = coefs[k];
    } else if (j < numStruct_ + numSlack_) {
      int r = slackRowOf_[j - numStruct_];
      mat[static_cast<std::size_t>(r) * m + slot] = slackSign_[r];
    } else {
      int r = artRowOf_[j - numStruct_ - numSlack_];
      mat[static_cast<std::size_t>(r) * m + slot] = 1.0;
    }
  }
  std::vector<double>& inv = binv_;
  inv.assign(static_cast<std::size_t>(m) * m, 0.0);
  for (int i = 0; i < m; ++i) inv[static_cast<std::size_t>(i) * m + i] = 1.0;
  for (int col = 0; col < m; ++col) {
    int pivotRow = -1;
    double best = options_.pivotTol;
    for (int r = col; r < m; ++r) {
      double v = std::abs(mat[static_cast<std::size_t>(r) * m + col]);
      if (v > best) {
        best = v;
        pivotRow = r;
      }
    }
    if (pivotRow < 0) return false;  // singular basis
    if (pivotRow != col) {
      for (int k = 0; k < m; ++k) {
        std::swap(mat[static_cast<std::size_t>(pivotRow) * m + k],
                  mat[static_cast<std::size_t>(col) * m + k]);
        std::swap(inv[static_cast<std::size_t>(pivotRow) * m + k],
                  inv[static_cast<std::size_t>(col) * m + k]);
      }
    }
    double invPiv = 1.0 / mat[static_cast<std::size_t>(col) * m + col];
    for (int k = 0; k < m; ++k) {
      mat[static_cast<std::size_t>(col) * m + k] *= invPiv;
      inv[static_cast<std::size_t>(col) * m + k] *= invPiv;
    }
    for (int r = 0; r < m; ++r) {
      if (r == col) continue;
      double f = mat[static_cast<std::size_t>(r) * m + col];
      if (f == 0.0) continue;
      for (int k = 0; k < m; ++k) {
        mat[static_cast<std::size_t>(r) * m + k] -=
            f * mat[static_cast<std::size_t>(col) * m + k];
        inv[static_cast<std::size_t>(r) * m + k] -=
            f * inv[static_cast<std::size_t>(col) * m + k];
      }
    }
  }
  yValid_ = false;
  recomputeBasicValues();
  return true;
}

void SimplexSolver::recomputeBasicValues() {
  const int m = numRows_;
  for (int r = 0; r < m; ++r) rhsWork_[r] = model_->rhs(r);
  for (int j = 0; j < totalCols(); ++j) {
    if (state_[j] == VarState::kBasic) continue;
    double v = value_[j];
    if (v == 0.0) continue;
    if (j < numStruct_) {
      auto rows = model_->colRows(j);
      auto coefs = model_->colCoefs(j);
      for (std::size_t k = 0; k < rows.size(); ++k)
        rhsWork_[rows[k]] -= coefs[k] * v;
    } else if (j < numStruct_ + numSlack_) {
      int r = slackRowOf_[j - numStruct_];
      rhsWork_[r] -= slackSign_[r] * v;
    } else {
      rhsWork_[artRowOf_[j - numStruct_ - numSlack_]] -= v;
    }
  }
  for (int slot = 0; slot < m; ++slot) {
    double v = 0;
    const double* row = binv_.data() + static_cast<std::size_t>(slot) * m;
    for (int r = 0; r < m; ++r) v += row[r] * rhsWork_[r];
    xb_[slot] = v;
    value_[basis_[slot]] = v;
  }
}

double SimplexSolver::totalInfeasibility() const {
  double inf = 0;
  for (int slot = 0; slot < numRows_; ++slot) {
    int j = basis_[slot];
    if (xb_[slot] < lowerB_[j] - options_.feasTol)
      inf += lowerB_[j] - xb_[slot];
    else if (xb_[slot] > upperB_[j] + options_.feasTol)
      inf += xb_[slot] - upperB_[j];
  }
  return inf;
}

LpStatus SimplexSolver::iterate(std::int64_t& iterationBudget, bool phase1) {
  const int m = numRows_;
  const bool hasDeadline = options_.deadlineSeconds > 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              hasDeadline ? options_.deadlineSeconds : 0.0));
  constexpr double kTieTol = 1e-9;
  int sinceRefactor = 0;
  // Periodic refactorization costs O(m^3); at large m let the product-form
  // updates run longer between rebuilds (the post-solve feasibility check
  // catches accumulated drift and retries from a fresh factorization).
  // Tiny configured intervals are honored verbatim so tests can force the
  // refactorization path on small models.
  const int refactorInterval =
      options_.refactorInterval <= 16 ? std::max(options_.refactorInterval, 1)
                                      : std::max(options_.refactorInterval, m);
  yValid_ = false;
  for (;;) {
    if (iterationBudget-- <= 0) {
      stopReason_ = ErrorCode::kIterationLimit;
      return LpStatus::kIterLimit;
    }
    if (hasDeadline && (iterations_ & 63) == 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      stopReason_ = ErrorCode::kDeadline;
      return LpStatus::kIterLimit;
    }
    if (fault::fire(fault::Site::kLpDeadline)) {
      stopReason_ = ErrorCode::kDeadline;
      return LpStatus::kIterLimit;
    }
    ++iterations_;

    // Phase-1 costs are the violation signature of the current basis; they
    // change every pivot, so y is rebuilt. Phase-2 costs are static, so y
    // is rebuilt once and then updated incrementally per pivot (O(m)).
    if (phase1 || !yValid_) {
      std::fill(y_.begin(), y_.end(), 0.0);
      bool anyViolation = false;
      for (int slot = 0; slot < m; ++slot) {
        int bj = basis_[slot];
        double cb;
        if (phase1) {
          if (xb_[slot] < lowerB_[bj] - options_.feasTol) {
            cb = -1.0;  // too low: increasing it reduces infeasibility
            anyViolation = true;
          } else if (xb_[slot] > upperB_[bj] + options_.feasTol) {
            cb = 1.0;
            anyViolation = true;
          } else {
            continue;
          }
        } else {
          cb = bj < numStruct_ ? model_->objective(bj) : 0.0;
          if (cb == 0.0) continue;
        }
        const double* row = binv_.data() + static_cast<std::size_t>(slot) * m;
        for (int r = 0; r < m; ++r) y_[r] += cb * row[r];
      }
      if (phase1 && !anyViolation) return LpStatus::kOptimal;  // feasible
      yValid_ = !phase1;
    }

    // Pricing (Dantzig; Bland when stalled). In phase 1 the nonbasic costs
    // are zero, so the reduced cost is just -y . A_j.
    int entering = -1;
    double bestScore = options_.optTol;
    double dEnter = 0;
    int enterDir = 0;
    for (int j = 0; j < totalCols(); ++j) {
      VarState st = state_[j];
      if (st == VarState::kBasic) continue;
      if (lowerB_[j] == upperB_[j]) continue;  // fixed (incl. artificials)
      double cj = phase1 ? 0.0 : (j < numStruct_ ? model_->objective(j) : 0.0);
      double d = cj - columnDot(j, y_);
      double score;
      int dir;
      if (st == VarState::kAtLower && d < -options_.optTol) {
        score = -d;
        dir = +1;
      } else if (st == VarState::kAtUpper && d > options_.optTol) {
        score = d;
        dir = -1;
      } else {
        continue;
      }
      if (blandMode_) {
        entering = j;
        enterDir = dir;
        dEnter = d;
        break;
      }
      if (score > bestScore) {
        bestScore = score;
        entering = j;
        enterDir = dir;
        dEnter = d;
      }
    }
    if (entering < 0) {
      // No improving column. Phase 1: infeasibility is minimal and positive.
      return phase1 ? LpStatus::kInfeasible : LpStatus::kOptimal;
    }

    // w = Binv * A_entering.
    std::fill(w_.begin(), w_.end(), 0.0);
    auto accumulate = [&](int r, double coef) {
      for (int slot = 0; slot < m; ++slot)
        w_[slot] += binv_[static_cast<std::size_t>(slot) * m + r] * coef;
    };
    if (entering < numStruct_) {
      auto rows = model_->colRows(entering);
      auto coefs = model_->colCoefs(entering);
      for (std::size_t k = 0; k < rows.size(); ++k)
        accumulate(rows[k], coefs[k]);
    } else if (entering < numStruct_ + numSlack_) {
      int r = slackRowOf_[entering - numStruct_];
      accumulate(r, slackSign_[r]);
    } else {
      accumulate(artRowOf_[entering - numStruct_ - numSlack_], 1.0);
    }

    // Bounded ratio test; entering moves by t >= 0 in direction enterDir and
    // basics respond as xb -= t * enterDir * w. Infeasible basics block when
    // they reach the bound they violate (composite phase-1 rule); feasible
    // basics block at either bound as usual.
    double tBest = upperB_[entering] - lowerB_[entering];  // bound-flip cap
    int leavingSlot = -1;
    bool leavingToUpper = false;
    double bestMag = 0;
    for (int slot = 0; slot < m; ++slot) {
      double g = enterDir * w_[slot];
      if (g > -options_.pivotTol && g < options_.pivotTol) continue;
      int bj = basis_[slot];
      double xv = xb_[slot];
      double t = kInfinity;
      bool toUpper = false;
      if (xv < lowerB_[bj] - options_.feasTol) {
        // Below its lower bound: blocks only while rising to that bound.
        if (g < 0) {
          t = (xv - lowerB_[bj]) / g;
          toUpper = false;
        } else {
          continue;
        }
      } else if (xv > upperB_[bj] + options_.feasTol) {
        if (g > 0) {
          t = (xv - upperB_[bj]) / g;
          toUpper = true;
        } else {
          continue;
        }
      } else if (g > 0) {
        t = (xv - lowerB_[bj]) / g;
        toUpper = false;
      } else {
        if (upperB_[bj] == kInfinity) continue;
        t = (xv - upperB_[bj]) / g;
        toUpper = true;
      }
      if (t < 0) t = 0;  // drift clamp
      bool take = false;
      if (t < tBest - kTieTol) {
        take = true;
      } else if (t <= tBest + kTieTol && leavingSlot >= 0) {
        take = blandMode_ ? (bj < basis_[leavingSlot])
                          : (std::abs(w_[slot]) > bestMag);
      }
      if (take) {
        tBest = std::min(tBest, t);
        leavingSlot = slot;
        leavingToUpper = toUpper;
        bestMag = std::abs(w_[slot]);
      }
    }

    if (leavingSlot < 0) {
      if (upperB_[entering] == kInfinity) {
        // Unbounded direction. In phase 1 the objective (total violation)
        // is bounded below by zero, so this cannot persist: numerics.
        stopReason_ = ErrorCode::kNumerical;
        return phase1 ? LpStatus::kNumericalError : LpStatus::kUnbounded;
      }
      double t = upperB_[entering] - lowerB_[entering];
      for (int slot = 0; slot < m; ++slot) {
        xb_[slot] -= t * enterDir * w_[slot];
        value_[basis_[slot]] = xb_[slot];
      }
      value_[entering] = (enterDir > 0) ? upperB_[entering] : lowerB_[entering];
      state_[entering] =
          (enterDir > 0) ? VarState::kAtUpper : VarState::kAtLower;
      continue;
    }

    if (tBest <= options_.feasTol) {
      ++degeneratePivots_;
      if (++stallCount_ >= options_.blandAfterStalls && !blandMode_) {
        blandMode_ = true;
        ++blandActivations_;
      }
    } else {
      stallCount_ = 0;
      blandMode_ = options_.forceBland;
    }

    for (int slot = 0; slot < m; ++slot) {
      xb_[slot] -= tBest * enterDir * w_[slot];
      value_[basis_[slot]] = xb_[slot];
    }
    double enterValue = value_[entering] + tBest * enterDir;

    int leaving = basis_[leavingSlot];
    state_[leaving] = leavingToUpper ? VarState::kAtUpper : VarState::kAtLower;
    value_[leaving] = leavingToUpper ? upperB_[leaving] : lowerB_[leaving];
    basisSlot_[leaving] = -1;

    basis_[leavingSlot] = entering;
    basisSlot_[entering] = leavingSlot;
    state_[entering] = VarState::kBasic;
    xb_[leavingSlot] = enterValue;
    value_[entering] = enterValue;

    double piv = w_[leavingSlot];
    if (std::abs(piv) < options_.pivotTol) {
      if (!refactorize()) {
        stopReason_ = ErrorCode::kSingularBasis;
        return LpStatus::kNumericalError;
      }
      continue;
    }
    double invPiv = 1.0 / piv;
    double* pivotRow = binv_.data() + static_cast<std::size_t>(leavingSlot) * m;
    for (int k = 0; k < m; ++k) pivotRow[k] *= invPiv;
    for (int slot = 0; slot < m; ++slot) {
      if (slot == leavingSlot) continue;
      double f = w_[slot];
      if (f == 0.0) continue;
      double* row = binv_.data() + static_cast<std::size_t>(slot) * m;
      for (int k = 0; k < m; ++k) row[k] -= f * pivotRow[k];
    }
    if (!phase1 && yValid_) {
      // Dual update: the entering column's reduced cost must drop to zero;
      // y' = y + d_e * (new pivot row of Binv).
      for (int k = 0; k < m; ++k) y_[k] += dEnter * pivotRow[k];
      if (fault::fire(fault::Site::kDualDrift)) {
        // Injected drift: corrupt the incremental duals the way accumulated
        // floating-point error would. The post-solve re-pricing pass in
        // runPhases must detect and repair this.
        for (int k = 0; k < m; ++k) y_[k] += 0.125 * (1 + (k & 3));
      }
    }

    if (++sinceRefactor >= refactorInterval) {
      if (!refactorize()) {
        stopReason_ = ErrorCode::kSingularBasis;
        return LpStatus::kNumericalError;
      }
      sinceRefactor = 0;
    }
  }
}

bool SimplexSolver::phase2ImprovingColumn() {
  const int m = numRows_;
  std::fill(y_.begin(), y_.end(), 0.0);
  for (int slot = 0; slot < m; ++slot) {
    int bj = basis_[slot];
    double cb = bj < numStruct_ ? model_->objective(bj) : 0.0;
    if (cb == 0.0) continue;
    const double* row = binv_.data() + static_cast<std::size_t>(slot) * m;
    for (int r = 0; r < m; ++r) y_[r] += cb * row[r];
  }
  yValid_ = true;
  for (int j = 0; j < totalCols(); ++j) {
    VarState st = state_[j];
    if (st == VarState::kBasic) continue;
    if (lowerB_[j] == upperB_[j]) continue;
    double cj = j < numStruct_ ? model_->objective(j) : 0.0;
    double d = cj - columnDot(j, y_);
    if (st == VarState::kAtLower && d < -options_.optTol) return true;
    if (st == VarState::kAtUpper && d > options_.optTol) return true;
  }
  return false;
}

LpResult SimplexSolver::solve(const LpModel& model,
                              const BasisSnapshot* warm) {
  LpResult result;
  bool warmRequested = warm != nullptr && !warm->empty();
  setup(model, warm);
  bool factorized = false;
  if (warmRequested) {
    factorized = refactorize();
    if (!factorized) setup(model, nullptr);  // fall back to default basis
  }
  if (!factorized) {
    // Default slack/artificial basis: the inverse is the identity (all
    // slack/artificial coefficients are +1 except >= slacks at -1), so the
    // O(m^3) refactorization is unnecessary.
    const int m = numRows_;
    binv_.assign(static_cast<std::size_t>(m) * m, 0.0);
    for (int r = 0; r < m; ++r) {
      double sign = (slackCol_[r] >= 0) ? slackSign_[r] : 1.0;
      binv_[static_cast<std::size_t>(basisSlot_[slackCol_[r] >= 0
                                                    ? slackCol_[r]
                                                    : artCol_[r]]) *
                m +
            r] = sign;
    }
    recomputeBasicValues();
  }
  return runPhases(model);
}

bool SimplexSolver::canContinue(const LpModel& model) const {
  return stateValid_ && model_ == &model && numStruct_ == model.numCols() &&
         numRows_ <= model.numRows();
}

LpResult SimplexSolver::solveContinue(const LpModel& model) {
  OPTR_ASSERT(canContinue(model), "solveContinue without valid state");
  LpResult result;

  // Refresh structural bounds; park nonbasic variables on their (possibly
  // moved) bounds.
  for (int c = 0; c < numStruct_; ++c) {
    lowerB_[c] = model.lower(c);
    upperB_[c] = model.upper(c);
    if (state_[c] == VarState::kAtLower) {
      value_[c] = lowerB_[c];
    } else if (state_[c] == VarState::kAtUpper) {
      if (upperB_[c] == kInfinity) {
        state_[c] = VarState::kAtLower;
        value_[c] = lowerB_[c];
      } else {
        value_[c] = upperB_[c];
      }
    }
  }

  // Absorb appended rows (all lazy cuts are inequalities). For basis
  // B' = [[B, 0], [C, S]] with S the new slacks, the inverse is
  // [[B^-1, 0], [-S^-1 C B^-1, S^-1]]; each new row costs O(nnz_basic x m).
  const int newRows = model.numRows() - numRows_;
  for (int r = numRows_; r < model.numRows(); ++r) {
    if (model.sense(r) == RowSense::kEq) {
      // A misbehaving separator appended an equality row; the incremental
      // absorption below only handles slacked inequalities. Refuse the
      // continuation (the caller falls back to a cold solve, which handles
      // equality rows via artificials) instead of corrupting the basis.
      stateValid_ = false;
      result.status = LpStatus::kNumericalError;
      result.detail = Status::error(ErrorCode::kInvalidInput,
                                    "appended row must be an inequality");
      return result;
    }
  }
  if (newRows > 0) {
    const int mOld = numRows_;
    const int m = model.numRows();
    // Map old internal columns to new indices: slacks/artificials shift
    // because numStruct_ stays but slack count grows.
    int oldNumSlack = numSlack_;
    std::vector<int> oldBasis = basis_;
    std::vector<int> oldSlackRowOf = slackRowOf_;
    std::vector<VarState> oldState = state_;
    std::vector<double> oldValue = value_;
    std::vector<double> oldBinv = std::move(binv_);

    // Rebuild column bookkeeping for the grown model.
    slackCol_.assign(m, -1);
    slackSign_.assign(m, 0.0);
    slackRowOf_.clear();
    artCol_.assign(m, -1);
    artRowOf_.clear();
    numSlack_ = 0;
    for (int r = 0; r < m; ++r) {
      if (model.sense(r) == RowSense::kEq) continue;
      slackSign_[r] = (model.sense(r) == RowSense::kLe) ? 1.0 : -1.0;
      slackCol_[r] = numStruct_ + numSlack_;
      slackRowOf_.push_back(r);
      ++numSlack_;
    }
    numArt_ = 0;
    for (int r = 0; r < m; ++r) {
      if (model.sense(r) != RowSense::kEq) continue;
      artCol_[r] = numStruct_ + numSlack_ + numArt_;
      artRowOf_.push_back(r);
      ++numArt_;
    }
    int total = totalCols();
    auto remap = [&](int oldCol) {
      if (oldCol < numStruct_) return oldCol;
      if (oldCol < numStruct_ + oldNumSlack)
        return slackCol_[oldSlackRowOf[oldCol - numStruct_]];
      // Artificial of an equality row: row ids are stable.
      int oldArtIdx = oldCol - numStruct_ - oldNumSlack;
      // artRowOf_ was rebuilt; equality rows did not change, so the i-th
      // artificial still belongs to the same row.
      return artCol_[artRowOf_[oldArtIdx]];
    };

    cost_.assign(total, 0.0);
    lowerB_.resize(total);
    upperB_.resize(total);
    value_.assign(total, 0.0);
    state_.assign(total, VarState::kAtLower);
    for (int c = 0; c < numStruct_; ++c) {
      lowerB_[c] = model.lower(c);
      upperB_[c] = model.upper(c);
      state_[c] = oldState[c];
      value_[c] = oldValue[c];
    }
    for (int s = 0; s < numSlack_; ++s) {
      lowerB_[numStruct_ + s] = 0.0;
      upperB_[numStruct_ + s] = kInfinity;
    }
    for (int a = 0; a < numArt_; ++a) {
      lowerB_[numStruct_ + numSlack_ + a] = 0.0;
      upperB_[numStruct_ + numSlack_ + a] = 0.0;
    }
    for (int oldCol = numStruct_; oldCol < numStruct_ + oldNumSlack + numArt_;
         ++oldCol) {
      int neu = remap(oldCol);
      state_[neu] = oldState[oldCol];
      value_[neu] = oldValue[oldCol];
    }

    // Basis: old slots keep their (remapped) columns; new rows get their
    // slack as basic.
    basis_.assign(m, -1);
    basisSlot_.assign(total, -1);
    for (int slot = 0; slot < mOld; ++slot) {
      int col = remap(oldBasis[slot]);
      basis_[slot] = col;
      basisSlot_[col] = slot;
      state_[col] = VarState::kBasic;
    }
    for (int r = mOld; r < m; ++r) {
      int slot = r;
      int col = slackCol_[r];  // non-negative: equality rows rejected above
      basis_[slot] = col;
      basisSlot_[col] = slot;
      state_[col] = VarState::kBasic;
    }

    // Grow Binv. New-slot rows: -S^-1 C B^-1 over old row columns, S^-1 on
    // their own column (slack coefficient is +1 for <=, -1 for >=).
    binv_.assign(static_cast<std::size_t>(m) * m, 0.0);
    for (int slot = 0; slot < mOld; ++slot) {
      const double* src = oldBinv.data() + static_cast<std::size_t>(slot) * mOld;
      double* dst = binv_.data() + static_cast<std::size_t>(slot) * m;
      std::copy(src, src + mOld, dst);
    }
    for (int r = mOld; r < m; ++r) {
      double* dst = binv_.data() + static_cast<std::size_t>(r) * m;
      double sInv = 1.0 / slackSign_[r];
      auto cols = model.rowCols(r);
      auto coefs = model.rowCoefs(r);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        int slot = basisSlot_[cols[k]];
        if (slot < 0 || slot >= mOld) continue;  // nonbasic or new column
        double f = coefs[k] * sInv;
        const double* brow =
            binv_.data() + static_cast<std::size_t>(slot) * m;
        for (int j = 0; j < mOld; ++j) dst[j] -= f * brow[j];
      }
      dst[r] = sInv;
    }
    numRows_ = m;
    xb_.assign(m, 0.0);
    y_.assign(m, 0.0);
    w_.assign(m, 0.0);
    rhsWork_.assign(m, 0.0);
    model.buildColumnIndex();
  }

  recomputeBasicValues();
  iterations_ = 0;
  refactorCount_ = 0;
  degeneratePivots_ = 0;
  blandActivations_ = 0;
  stallCount_ = 0;
  blandMode_ = options_.forceBland;
  return runPhases(model);
}

void SimplexSolver::finalizeResult(LpResult& result) {
  result.iterations = iterations_;
  result.refactorizations = refactorCount_;
  result.degeneratePivots = degeneratePivots_;
  result.blandActivations = blandActivations_;
  static obs::Counter& cSolves = obs::metrics().counter("lp.solves");
  static obs::Counter& cPivots = obs::metrics().counter("lp.pivots");
  static obs::Counter& cRefactor =
      obs::metrics().counter("lp.refactorizations");
  static obs::Counter& cDegen =
      obs::metrics().counter("lp.degenerate_pivots");
  static obs::Counter& cBland =
      obs::metrics().counter("lp.bland_activations");
  static obs::Histogram& hPivots =
      obs::metrics().histogram("lp.pivots_per_solve");
  cSolves.add();
  cPivots.add(iterations_);
  cRefactor.add(refactorCount_);
  cDegen.add(degeneratePivots_);
  cBland.add(blandActivations_);
  hPivots.record(static_cast<double>(iterations_));
}

LpResult SimplexSolver::runPhases(const LpModel& model) {
  LpResult result;
  stateValid_ = false;
  stopReason_ = ErrorCode::kOk;
  std::int64_t budget = options_.maxIterations;
  auto stopDetail = [this](LpStatus st) {
    if (st == LpStatus::kOptimal || st == LpStatus::kInfeasible ||
        stopReason_ == ErrorCode::kOk) {
      return Status::ok();
    }
    return Status::error(stopReason_, std::string("simplex stopped: ") +
                                          optr::toString(stopReason_));
  };

  LpStatus st = iterate(budget, /*phase1=*/true);
  if (st != LpStatus::kOptimal) {
    if (st == LpStatus::kInfeasible) {
      result.phase1Infeasibility = totalInfeasibility();
      stateValid_ = true;  // basis is consistent; continuation is fine
    }
    result.status = st;
    result.detail = stopDetail(st);
    finalizeResult(result);
    return result;
  }

  blandMode_ = options_.forceBland;
  stallCount_ = 0;
  st = iterate(budget, /*phase1=*/false);
  // Dual-drift safety net: "optimal" may rest on incrementally-updated duals
  // that accumulated error. Re-price against duals rebuilt from the basis
  // inverse; if an improving column survives, the claim was premature --
  // resume pivoting (bounded rounds so persistent corruption cannot loop).
  int repriceRounds = 0;
  while (st == LpStatus::kOptimal && phase2ImprovingColumn()) {
    if (++repriceRounds > 3) {
      stopReason_ = ErrorCode::kNumerical;
      st = LpStatus::kNumericalError;
      break;
    }
    st = iterate(budget, /*phase1=*/false);
  }
  if (st != LpStatus::kOptimal) {
    result.status = st;
    result.detail = stopDetail(st);
    finalizeResult(result);
    return result;
  }

  recomputeBasicValues();
  auto extract = [&] {
    result.x.assign(value_.begin(), value_.begin() + numStruct_);
    for (int c = 0; c < numStruct_; ++c)
      result.x[c] = std::clamp(result.x[c], model.lower(c), model.upper(c));
    result.objective = model.objectiveValue(result.x);
  };
  extract();
  result.status = LpStatus::kOptimal;

  // Safety net: verify primal feasibility; one refactor-and-retry on drift.
  if (!model.isFeasible(result.x, 1e-5)) {
    bool recovered = false;
    if (refactorize()) {
      std::int64_t retry = options_.maxIterations / 4;
      if (iterate(retry, true) == LpStatus::kOptimal &&
          iterate(retry, false) == LpStatus::kOptimal) {
        recomputeBasicValues();
        extract();
        recovered = model.isFeasible(result.x, 1e-4);
      }
    }
    if (!recovered && !model.isFeasible(result.x, 1e-4)) {
      result.status = LpStatus::kNumericalError;
      result.detail = Status::error(ErrorCode::kNumerical,
                                    "primal drift unrecovered by refactor");
    }
  }
  stateValid_ = (result.status == LpStatus::kOptimal);
  finalizeResult(result);
  return result;
}

BasisSnapshot SimplexSolver::snapshot() const {
  BasisSnapshot snap;
  snap.basis.reserve(basis_.size());
  for (int j : basis_) {
    BasisSnapshot::Token tok;
    if (j < numStruct_) {
      tok.kind = BasisSnapshot::Kind::kStruct;
      tok.id = j;
    } else if (j < numStruct_ + numSlack_) {
      tok.kind = BasisSnapshot::Kind::kSlack;
      tok.id = slackRowOf_[j - numStruct_];
    } else {
      tok.kind = BasisSnapshot::Kind::kArtificial;
      tok.id = artRowOf_[j - numStruct_ - numSlack_];
    }
    snap.basis.push_back(tok);
  }
  snap.atUpper.assign(numStruct_, 0);
  for (int c = 0; c < numStruct_; ++c)
    snap.atUpper[c] = (state_[c] == VarState::kAtUpper) ? 1 : 0;
  return snap;
}

}  // namespace optr::lp
