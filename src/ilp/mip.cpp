#include "ilp/mip.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/fault_injection.h"

namespace optr::ilp {

const char* toString(MipStatus s) {
  switch (s) {
    case MipStatus::kOptimal: return "optimal";
    case MipStatus::kInfeasible: return "infeasible";
    case MipStatus::kFeasibleLimit: return "feasible-limit";
    case MipStatus::kNoSolutionLimit: return "no-solution-limit";
    case MipStatus::kError: return "error";
  }
  return "?";
}

MipSolver::MipSolver(lp::LpModel& model, std::vector<bool> isInteger,
                     MipOptions options)
    : model_(model),
      isInteger_(std::move(isInteger)),
      options_(options),
      lpSolver_(options.lpOptions) {
  // Caller-data condition, not an invariant: a mismatched mask must fail the
  // solve recoverably instead of aborting a whole batch.
  if (static_cast<int>(isInteger_.size()) != model_.numCols()) {
    setupError_ = Status::error(ErrorCode::kInvalidInput,
                                "integrality mask size mismatch: " +
                                    std::to_string(isInteger_.size()) +
                                    " marks for " +
                                    std::to_string(model_.numCols()) +
                                    " columns");
  }
}

bool MipSolver::setInitialIncumbent(const std::vector<double>& x) {
  if (static_cast<int>(x.size()) != model_.numCols()) return false;
  if (!model_.isFeasible(x, 1e-6)) return false;
  for (int c = 0; c < model_.numCols(); ++c) {
    if (isInteger_[c] &&
        std::abs(x[c] - std::round(x[c])) > options_.intTol) {
      return false;
    }
  }
  incumbent_ = x;
  incumbentObj_ = model_.objectiveValue(x);
  hasIncumbent_ = true;
  return true;
}

bool MipSolver::timeUp() const {
  return std::chrono::steady_clock::now() >= deadline_;
}

int MipSolver::pickBranchVariable(const std::vector<double>& x) const {
  int best = -1;
  double bestScore = 0.0;
  for (int c = 0; c < model_.numCols(); ++c) {
    if (!isInteger_[c]) continue;
    double frac = std::abs(x[c] - std::round(x[c]));
    if (frac <= options_.intTol) continue;
    // Most-fractional, weighted by objective impact: branching on expensive
    // variables (vias) moves the bound fastest.
    double score = frac * (1.0 + std::abs(model_.objective(c)));
    if (score > bestScore) {
      bestScore = score;
      best = c;
    }
  }
  return best;
}

MipResult MipSolver::solve() {
  MipResult result;
  if (!setupError_.isOk()) {
    result.error = setupError_;
    return result;  // kError
  }
  auto t0 = std::chrono::steady_clock::now();
  deadline_ = t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(options_.timeLimitSec));

  // When every integer column has an integral objective coefficient and all
  // continuous columns are costless, the optimum is integral: nodes whose
  // bound is within 1 of the incumbent can be pruned.
  double gapTol = options_.objectiveGapTol;
  {
    bool integralObjective = true;
    for (int c = 0; c < model_.numCols(); ++c) {
      double o = model_.objective(c);
      if (!isInteger_[c] && o != 0.0) integralObjective = false;
      if (std::abs(o - std::round(o)) > 1e-12) integralObjective = false;
    }
    if (integralObjective) gapTol = std::max(gapTol, 1.0 - 1e-6);
  }

  // Snapshot root bounds so we can apply/undo node fixes and restore at exit.
  const int n = model_.numCols();
  std::vector<double> rootLower(n), rootUpper(n);
  for (int c = 0; c < n; ++c) {
    rootLower[c] = model_.lower(c);
    rootUpper[c] = model_.upper(c);
  }
  auto applyFixes = [&](const Node& node) {
    for (auto& [c, lb, ub] : node.fixes) model_.setBounds(c, lb, ub);
  };
  auto undoFixes = [&](const Node& node) {
    for (auto& [c, lb, ub] : node.fixes) {
      (void)lb;
      (void)ub;
      model_.setBounds(c, rootLower[c], rootUpper[c]);
    }
  };

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;

  double bestBound = -lp::kInfinity;
  bool limitHit = false;

  // Hybrid search: after branching, dive into the child suggested by the LP
  // rounding (fast incumbents, cheap node re-use); fall back to best-first
  // from the heap when the dive bottoms out.
  bool haveCurrent = true;
  bool currentFromHeap = true;
  Node current{{}, -lp::kInfinity};

  ErrorCode limitReason = ErrorCode::kOk;
  while (haveCurrent || !open.empty()) {
    if (timeUp() || result.nodes >= options_.maxNodes) {
      limitHit = true;
      limitReason = timeUp() ? ErrorCode::kDeadline : ErrorCode::kIterationLimit;
      break;
    }
    Node node;
    if (haveCurrent) {
      node = std::move(current);
      haveCurrent = false;
    } else {
      node = open.top();
      open.pop();
      currentFromHeap = true;
    }

    if (hasIncumbent_ && node.bound >= incumbentObj_ - gapTol) {
      if (currentFromHeap) {
        // Heap pops in bound order: everything remaining is dominated too.
        bestBound = incumbentObj_;
        break;
      }
      continue;  // prune the dive child only
    }

    ++result.nodes;
    applyFixes(node);

    // Lazy-constraint loop: re-solve this node while the separator keeps
    // cutting off its integer optimum. Whenever the solver's internal state
    // still matches the model (same columns, rows only appended), continue
    // in place -- the composite phase 1 repairs the handful of basics the
    // new bounds/rows perturbed, pivoting a few times instead of
    // refactorizing an O(m^3) basis. Fall back to a warm/cold solve
    // otherwise (first node, or after a numerical failure).
    const lp::BasisSnapshot* warm = node.warm.get();
    lp::BasisSnapshot ownBasis;
    bool abortedOnTime = false;
    bool nodeFailed = false;
    bool retriedNode = false;
    Status nodeError;
    for (;;) {
      // Give each LP the remaining wall-clock budget so a single hard LP
      // cannot blow through the MIP time limit.
      double remaining =
          std::chrono::duration<double>(deadline_ -
                                        std::chrono::steady_clock::now())
              .count();
      lpSolver_.options().deadlineSeconds = std::max(0.05, remaining);
      lp::LpResult lpRes = lpSolver_.canContinue(model_)
                               ? lpSolver_.solveContinue(model_)
                               : lpSolver_.solve(model_, warm);
      lpSolver_.options().forceBland = options_.lpOptions.forceBland;
      result.lpIterations += lpRes.iterations;
      if (lpRes.status == lp::LpStatus::kOptimal) {
        ownBasis = lpSolver_.snapshot();
        warm = &ownBasis;
      }

      if (lpRes.status == lp::LpStatus::kInfeasible) break;
      if (lpRes.status != lp::LpStatus::kOptimal) {
        if (lpRes.detail.code() == ErrorCode::kDeadline || timeUp()) {
          // The LP ran out of wall clock, not numerics (it inherits the
          // MIP's remaining budget, so its deadline verdict is ours): stop
          // the search cleanly and report limit status below.
          abortedOnTime = true;
          break;
        }
        // Iteration limit / numerics: this node's bound cannot be trusted.
        // Recovery rung 1: retry the node once from a fresh factorization
        // with Bland's rule forced before giving up on the proof.
        if (options_.retryOnNumericalFailure && !retriedNode) {
          retriedNode = true;
          ++result.numericRetries;
          lpSolver_.invalidate();
          lpSolver_.options().forceBland = true;
          warm = nullptr;  // the warm basis may itself be the problem
          continue;
        }
        nodeFailed = true;
        nodeError = lpRes.detail.isOk()
                        ? Status::error(ErrorCode::kNumerical,
                                        std::string("node LP failed: ") +
                                            lp::toString(lpRes.status))
                        : lpRes.detail;
        break;
      }

      if (hasIncumbent_ && lpRes.objective >= incumbentObj_ - gapTol) {
        break;  // bound-dominated
      }

      int branchCol = pickBranchVariable(lpRes.x);
      if (branchCol < 0) {
        // Integer feasible. Ask the separator for violated lazy rows. Trust
        // the observed model delta over the reported count: a separator that
        // over-reports (claims cuts it never appended) would otherwise pin
        // the search to this node forever.
        int added = 0;
        if (separator_) {
          const int rowsBefore = model_.numRows();
          int reported = separator_(lpRes.x, model_);
          added = model_.numRows() - rowsBefore;
          if (fault::fire(fault::Site::kSeparatorOverReport)) {
            reported = added + 3;
          }
          if (reported != added) ++result.separatorMisreports;
        }
        if (added > 0) {
          result.lazyRowsAdded += added;
          continue;  // re-solve the same node against the new rows
        }
        // Genuine incumbent.
        if (!hasIncumbent_ || lpRes.objective < incumbentObj_) {
          incumbent_ = lpRes.x;
          incumbentObj_ = lpRes.objective;
          hasIncumbent_ = true;
        }
        break;
      }

      // Branch. Children inherit this node's fixes plus one more; dive into
      // the rounding-preferred child immediately.
      Node down = node, up = node;
      double v = lpRes.x[branchCol];
      down.fixes.emplace_back(branchCol, rootLower[branchCol], std::floor(v));
      up.fixes.emplace_back(branchCol, std::ceil(v), rootUpper[branchCol]);
      down.bound = up.bound = lpRes.objective;
      auto shared = std::make_shared<lp::BasisSnapshot>(std::move(ownBasis));
      down.warm = shared;
      up.warm = shared;
      bool preferUp = (v - std::floor(v)) >= 0.5;
      open.push(preferUp ? std::move(down) : std::move(up));
      current = preferUp ? std::move(up) : std::move(down);
      haveCurrent = true;
      currentFromHeap = false;
      break;
    }
    undoFixes(node);
    if (nodeFailed) {
      // Recovery rung 2: the retry failed too. Give up the optimality proof
      // but keep the result useful -- surface the best incumbent (validated
      // feasible when present) and a still-valid global lower bound from the
      // unexplored frontier; kError tells the caller no proof survives.
      for (int c = 0; c < n; ++c)
        model_.setBounds(c, rootLower[c], rootUpper[c]);
      double frontier = node.bound;
      if (haveCurrent) frontier = std::min(frontier, current.bound);
      if (!open.empty()) frontier = std::min(frontier, open.top().bound);
      if (hasIncumbent_) {
        result.objective = incumbentObj_;
        result.x = incumbent_;
        for (int c = 0; c < n; ++c) {
          if (isInteger_[c]) result.x[c] = std::round(result.x[c]);
        }
        frontier = std::min(frontier, incumbentObj_);
      }
      result.bestBound = frontier;
      result.error = nodeError;
      result.status = MipStatus::kError;
      result.seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      return result;
    }
    if (abortedOnTime) {
      // The interrupted node stays conceptually open: push it back so the
      // frontier bound stays valid for reporting.
      open.push(std::move(node));
      limitHit = true;
      limitReason = ErrorCode::kDeadline;
      break;
    }
  }

  // Restore root bounds (paranoia: undoFixes already did per-node).
  for (int c = 0; c < n; ++c) model_.setBounds(c, rootLower[c], rootUpper[c]);

  const bool unexplored = limitHit && (haveCurrent || !open.empty());
  if (unexplored) {
    double frontier = lp::kInfinity;
    if (haveCurrent) frontier = std::min(frontier, current.bound);
    if (!open.empty()) frontier = std::min(frontier, open.top().bound);
    bestBound = std::min(frontier, hasIncumbent_ ? incumbentObj_ : frontier);
  } else if (hasIncumbent_) {
    bestBound = incumbentObj_;
  }

  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (hasIncumbent_) {
    result.objective = incumbentObj_;
    result.x = incumbent_;
    // Round integer columns exactly: downstream consumers index arcs by == 1.
    for (int c = 0; c < n; ++c) {
      if (isInteger_[c]) result.x[c] = std::round(result.x[c]);
    }
    result.bestBound = bestBound;
    result.status =
        unexplored ? MipStatus::kFeasibleLimit : MipStatus::kOptimal;
  } else {
    result.bestBound = bestBound;
    result.status =
        unexplored ? MipStatus::kNoSolutionLimit : MipStatus::kInfeasible;
  }
  if (unexplored) {
    ErrorCode code =
        limitReason == ErrorCode::kOk ? ErrorCode::kDeadline : limitReason;
    result.error = Status::error(
        code, std::string("search truncated: ") + optr::toString(code));
  }
  return result;
}

}  // namespace optr::ilp
