#include "ilp/mip.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <queue>
#include <thread>

#include "common/fault_injection.h"
#include "obs/trace.h"

namespace optr::ilp {

const char* toString(MipStatus s) {
  switch (s) {
    case MipStatus::kOptimal: return "optimal";
    case MipStatus::kInfeasible: return "infeasible";
    case MipStatus::kFeasibleLimit: return "feasible-limit";
    case MipStatus::kNoSolutionLimit: return "no-solution-limit";
    case MipStatus::kError: return "error";
  }
  return "?";
}

namespace {

/// Objective ties between incumbents are broken by this canonical order so a
/// parallel solve never depends on which worker reported first: compare
/// vectors lexicographically, integer columns on their rounded values (float
/// noise in an LP basic solution must not flip the order).
bool canonicalLess(const std::vector<double>& a, const std::vector<double>& b,
                   const std::vector<bool>& isInteger) {
  for (std::size_t c = 0; c < a.size() && c < b.size(); ++c) {
    double av = isInteger[c] ? std::round(a[c]) : a[c];
    double bv = isInteger[c] ? std::round(b[c]) : b[c];
    if (av != bv) return av < bv;
  }
  return false;
}

/// Most-fractional branching restricted to the integer columns (the only
/// candidates); weighted by objective impact, ties to the lowest index.
int pickBranchIn(const lp::LpModel& m, const std::vector<int>& intCols,
                 const std::vector<double>& x, double intTol) {
  int best = -1;
  double bestScore = 0.0;
  for (int c : intCols) {
    double frac = std::abs(x[c] - std::round(x[c]));
    if (frac <= intTol) continue;
    // Most-fractional, weighted by objective impact: branching on expensive
    // variables (vias) moves the bound fastest.
    double score = frac * (1.0 + std::abs(m.objective(c)));
    if (score > bestScore) {
      bestScore = score;
      best = c;
    }
  }
  return best;
}

/// A separated lazy row in model-independent form, shareable across the
/// per-worker model copies (columns are numbered identically everywhere).
struct PoolRow {
  std::vector<int> cols;
  std::vector<double> coefs;
  lp::RowSense sense;
  double rhs;
};

void appendPoolRow(lp::LpModel& model, const PoolRow& pr) {
  lp::RowBuilder rb;
  for (std::size_t k = 0; k < pr.cols.size(); ++k) rb.add(pr.cols[k], pr.coefs[k]);
  rb.sense = pr.sense;
  rb.rhs = pr.rhs;
  model.addRow(rb);
}

bool rowViolated(const PoolRow& pr, const std::vector<double>& x) {
  double act = 0.0;
  for (std::size_t k = 0; k < pr.cols.size(); ++k) act += pr.coefs[k] * x[pr.cols[k]];
  switch (pr.sense) {
    case lp::RowSense::kLe: return act > pr.rhs + 1e-9;
    case lp::RowSense::kGe: return act < pr.rhs - 1e-9;
    case lp::RowSense::kEq: return std::abs(act - pr.rhs) > 1e-9;
  }
  return false;
}

constexpr double kIncumbentTieTol = 1e-9;

}  // namespace

MipSolver::MipSolver(lp::LpModel& model, std::vector<bool> isInteger,
                     MipOptions options)
    : model_(model),
      isInteger_(std::move(isInteger)),
      options_(options),
      lpSolver_(options.lpOptions) {
  // Caller-data condition, not an invariant: a mismatched mask must fail the
  // solve recoverably instead of aborting a whole batch.
  if (static_cast<int>(isInteger_.size()) != model_.numCols()) {
    setupError_ = Status::error(ErrorCode::kInvalidInput,
                                "integrality mask size mismatch: " +
                                    std::to_string(isInteger_.size()) +
                                    " marks for " +
                                    std::to_string(model_.numCols()) +
                                    " columns");
    return;
  }
  for (int c = 0; c < model_.numCols(); ++c) {
    if (isInteger_[c]) intCols_.push_back(c);
  }
}

bool MipSolver::setInitialIncumbent(const std::vector<double>& x) {
  if (static_cast<int>(x.size()) != model_.numCols()) return false;
  if (!model_.isFeasible(x, 1e-6)) return false;
  for (int c = 0; c < model_.numCols(); ++c) {
    if (isInteger_[c] &&
        std::abs(x[c] - std::round(x[c])) > options_.intTol) {
      return false;
    }
  }
  incumbent_ = x;
  incumbentObj_ = model_.objectiveValue(x);
  hasIncumbent_ = true;
  return true;
}

bool MipSolver::deadlineExpiredNow() const {
  return std::chrono::steady_clock::now() >= deadline_;
}

bool MipSolver::timeUp() const {
  if (timeUpLatched_) return true;
  if (--timeCheckCountdown_ > 0) return false;
  timeCheckCountdown_ = kTimeCheckInterval;
  timeUpLatched_ = deadlineExpiredNow();
  return timeUpLatched_;
}

int MipSolver::pickBranchVariable(const std::vector<double>& x) const {
  return pickBranchIn(model_, intCols_, x, options_.intTol);
}

double MipSolver::computeGapTol() const {
  // When every integer column has an integral objective coefficient and all
  // continuous columns are costless, the optimum is integral: nodes whose
  // bound is within 1 of the incumbent can be pruned.
  double gapTol = options_.objectiveGapTol;
  bool integralObjective = true;
  for (int c = 0; c < model_.numCols(); ++c) {
    double o = model_.objective(c);
    if (!isInteger_[c] && o != 0.0) integralObjective = false;
    if (std::abs(o - std::round(o)) > 1e-12) integralObjective = false;
  }
  if (integralObjective) gapTol = std::max(gapTol, 1.0 - 1e-6);
  return gapTol;
}

MipResult MipSolver::solve() {
  obs::Span span("mip.solve");
  MipResult result;
  if (!setupError_.isOk()) {
    result.error = setupError_;
    return result;  // kError
  }
  auto t0 = std::chrono::steady_clock::now();
  deadline_ = t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(options_.timeLimitSec));
  timeCheckCountdown_ = 1;  // first timeUp() call queries the clock
  timeUpLatched_ = false;

  result = options_.threads > 1 ? solveParallel(t0) : solveSerial(t0);

  span.arg("nodes", static_cast<double>(result.nodes));
  span.arg("pivots", static_cast<double>(result.lpIterations));
  span.arg("lazyRows", static_cast<double>(result.lazyRowsAdded));
  span.arg("threads", static_cast<double>(options_.threads));
  auto& m = obs::metrics();
  m.counter("ilp.solves").add();
  m.counter("ilp.nodes").add(result.nodes);
  m.counter("ilp.lp_pivots").add(result.lpIterations);
  m.counter("ilp.lazy_rows").add(result.lazyRowsAdded);
  m.counter("ilp.numeric_retries").add(result.numericRetries);
  m.counter("ilp.separator_misreports").add(result.separatorMisreports);
  m.histogram("ilp.nodes_per_solve").record(static_cast<double>(result.nodes));
  m.histogram("ilp.solve_ms")
      .record(std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
  return result;
}

MipResult MipSolver::solveSerial(std::chrono::steady_clock::time_point t0) {
  MipResult result;
  const double gapTol = computeGapTol();

  // Snapshot root bounds so we can apply/undo node fixes and restore at exit.
  const int n = model_.numCols();
  std::vector<double> rootLower(n), rootUpper(n);
  for (int c = 0; c < n; ++c) {
    rootLower[c] = model_.lower(c);
    rootUpper[c] = model_.upper(c);
  }
  auto applyFixes = [&](const Node& node) {
    for (auto& [c, lb, ub] : node.fixes) model_.setBounds(c, lb, ub);
  };
  auto undoFixes = [&](const Node& node) {
    for (auto& [c, lb, ub] : node.fixes) {
      (void)lb;
      (void)ub;
      model_.setBounds(c, rootLower[c], rootUpper[c]);
    }
  };

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;

  double bestBound = -lp::kInfinity;
  bool limitHit = false;

  // Hybrid search: after branching, dive into the child suggested by the LP
  // rounding (fast incumbents, cheap node re-use); fall back to best-first
  // from the heap when the dive bottoms out.
  bool haveCurrent = true;
  bool currentFromHeap = true;
  Node current{{}, -lp::kInfinity, rootBasisSeed_};

  ErrorCode limitReason = ErrorCode::kOk;
  while (haveCurrent || !open.empty()) {
    if (timeUp() || result.nodes >= options_.maxNodes) {
      limitHit = true;
      limitReason = timeUp() ? ErrorCode::kDeadline : ErrorCode::kIterationLimit;
      break;
    }
    Node node;
    if (haveCurrent) {
      node = std::move(current);
      haveCurrent = false;
    } else {
      node = open.top();
      open.pop();
      currentFromHeap = true;
    }

    if (hasIncumbent_ && node.bound >= incumbentObj_ - gapTol) {
      if (currentFromHeap) {
        // Heap pops in bound order: everything remaining is dominated too.
        bestBound = incumbentObj_;
        break;
      }
      continue;  // prune the dive child only
    }

    ++result.nodes;
    obs::Span nodeSpan("mip.node");
    nodeSpan.arg("bound", node.bound);
    applyFixes(node);

    // Lazy-constraint loop: re-solve this node while the separator keeps
    // cutting off its integer optimum. Whenever the solver's internal state
    // still matches the model (same columns, rows only appended), continue
    // in place -- the composite phase 1 repairs the handful of basics the
    // new bounds/rows perturbed, pivoting a few times instead of
    // refactorizing an O(m^3) basis. Fall back to a warm/cold solve
    // otherwise (first node, or after a numerical failure).
    const lp::BasisSnapshot* warm = node.warm.get();
    lp::BasisSnapshot ownBasis;
    bool abortedOnTime = false;
    bool nodeFailed = false;
    bool retriedNode = false;
    std::int64_t nodeIters = 0;
    Status nodeError;
    for (;;) {
      // Give each LP the remaining wall-clock budget so a single hard LP
      // cannot blow through the MIP time limit.
      double remaining =
          std::chrono::duration<double>(deadline_ -
                                        std::chrono::steady_clock::now())
              .count();
      lpSolver_.options().deadlineSeconds = std::max(0.05, remaining);
      lp::LpResult lpRes = lpSolver_.canContinue(model_)
                               ? lpSolver_.solveContinue(model_)
                               : lpSolver_.solve(model_, warm);
      lpSolver_.options().forceBland = options_.lpOptions.forceBland;
      result.lpIterations += lpRes.iterations;
      nodeIters += lpRes.iterations;
      if (lpRes.status == lp::LpStatus::kOptimal) {
        ownBasis = lpSolver_.snapshot();
        warm = &ownBasis;
        if (node.fixes.empty()) {
          // Root-node basis (latest cut round wins): exported for
          // cross-solve warm starts via MipResult::rootBasis.
          result.rootBasis = std::make_shared<lp::BasisSnapshot>(ownBasis);
        }
      }

      if (lpRes.status == lp::LpStatus::kInfeasible) break;
      if (lpRes.status != lp::LpStatus::kOptimal) {
        if (lpRes.detail.code() == ErrorCode::kDeadline ||
            deadlineExpiredNow()) {
          // The LP ran out of wall clock, not numerics (it inherits the
          // MIP's remaining budget, so its deadline verdict is ours): stop
          // the search cleanly and report limit status below.
          abortedOnTime = true;
          break;
        }
        // Iteration limit / numerics: this node's bound cannot be trusted.
        // Recovery rung 1: retry the node once from a fresh factorization
        // with Bland's rule forced before giving up on the proof.
        if (options_.retryOnNumericalFailure && !retriedNode) {
          retriedNode = true;
          ++result.numericRetries;
          obs::event("mip.retry", lpRes.detail.isOk()
                                      ? lp::toString(lpRes.status)
                                      : toString(lpRes.detail.code()));
          lpSolver_.invalidate();
          lpSolver_.options().forceBland = true;
          warm = nullptr;  // the warm basis may itself be the problem
          continue;
        }
        nodeFailed = true;
        nodeError = lpRes.detail.isOk()
                        ? Status::error(ErrorCode::kNumerical,
                                        std::string("node LP failed: ") +
                                            lp::toString(lpRes.status))
                        : lpRes.detail;
        break;
      }

      if (hasIncumbent_ && lpRes.objective >= incumbentObj_ - gapTol) {
        break;  // bound-dominated
      }

      int branchCol = pickBranchVariable(lpRes.x);
      if (branchCol < 0) {
        // Integer feasible. Ask the separator for violated lazy rows. Trust
        // the observed model delta over the reported count: a separator that
        // over-reports (claims cuts it never appended) would otherwise pin
        // the search to this node forever.
        int added = 0;
        if (separator_) {
          const int rowsBefore = model_.numRows();
          int reported = separator_(lpRes.x, model_);
          added = model_.numRows() - rowsBefore;
          if (fault::fire(fault::Site::kSeparatorOverReport)) {
            reported = added + 3;
          }
          if (reported != added) ++result.separatorMisreports;
        }
        if (added > 0) {
          result.lazyRowsAdded += added;
          obs::event("mip.cuts", {}, {{"rows", static_cast<double>(added)}});
          obs::metrics().counter("ilp.cut_rounds").add();
          continue;  // re-solve the same node against the new rows
        }
        // Genuine incumbent.
        if (!hasIncumbent_ || lpRes.objective < incumbentObj_) {
          incumbent_ = lpRes.x;
          incumbentObj_ = lpRes.objective;
          hasIncumbent_ = true;
          obs::event("mip.incumbent", {}, {{"obj", incumbentObj_}});
          obs::metrics().counter("ilp.incumbents").add();
        }
        break;
      }

      // Branch. Children inherit this node's fixes plus one more; dive into
      // the rounding-preferred child immediately.
      Node down = node, up = node;
      double v = lpRes.x[branchCol];
      down.fixes.emplace_back(branchCol, rootLower[branchCol], std::floor(v));
      up.fixes.emplace_back(branchCol, std::ceil(v), rootUpper[branchCol]);
      down.bound = up.bound = lpRes.objective;
      auto shared = std::make_shared<lp::BasisSnapshot>(std::move(ownBasis));
      down.warm = shared;
      up.warm = shared;
      bool preferUp = (v - std::floor(v)) >= 0.5;
      open.push(preferUp ? std::move(down) : std::move(up));
      current = preferUp ? std::move(up) : std::move(down);
      haveCurrent = true;
      currentFromHeap = false;
      break;
    }
    undoFixes(node);
    nodeSpan.arg("iters", static_cast<double>(nodeIters));
    nodeSpan.end();
    if (nodeFailed) {
      // Recovery rung 2: the retry failed too. Give up the optimality proof
      // but keep the result useful -- surface the best incumbent (validated
      // feasible when present) and a still-valid global lower bound from the
      // unexplored frontier; kError tells the caller no proof survives.
      for (int c = 0; c < n; ++c)
        model_.setBounds(c, rootLower[c], rootUpper[c]);
      double frontier = node.bound;
      if (haveCurrent) frontier = std::min(frontier, current.bound);
      if (!open.empty()) frontier = std::min(frontier, open.top().bound);
      if (hasIncumbent_) {
        result.objective = incumbentObj_;
        result.x = incumbent_;
        for (int c = 0; c < n; ++c) {
          if (isInteger_[c]) result.x[c] = std::round(result.x[c]);
        }
        frontier = std::min(frontier, incumbentObj_);
      }
      result.bestBound = frontier;
      result.error = nodeError;
      result.status = MipStatus::kError;
      result.seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      result.workers = {{result.nodes, result.lpIterations, 0.0}};
      return result;
    }
    if (abortedOnTime) {
      // The interrupted node stays conceptually open: push it back so the
      // frontier bound stays valid for reporting.
      open.push(std::move(node));
      limitHit = true;
      limitReason = ErrorCode::kDeadline;
      break;
    }
  }

  // Restore root bounds (paranoia: undoFixes already did per-node).
  for (int c = 0; c < n; ++c) model_.setBounds(c, rootLower[c], rootUpper[c]);

  const bool unexplored = limitHit && (haveCurrent || !open.empty());
  if (unexplored) {
    double frontier = lp::kInfinity;
    if (haveCurrent) frontier = std::min(frontier, current.bound);
    if (!open.empty()) frontier = std::min(frontier, open.top().bound);
    bestBound = std::min(frontier, hasIncumbent_ ? incumbentObj_ : frontier);
  } else if (hasIncumbent_) {
    bestBound = incumbentObj_;
  }

  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (hasIncumbent_) {
    result.objective = incumbentObj_;
    result.x = incumbent_;
    // Round integer columns exactly: downstream consumers index arcs by == 1.
    for (int c = 0; c < n; ++c) {
      if (isInteger_[c]) result.x[c] = std::round(result.x[c]);
    }
    result.bestBound = bestBound;
    result.status =
        unexplored ? MipStatus::kFeasibleLimit : MipStatus::kOptimal;
  } else {
    result.bestBound = bestBound;
    result.status =
        unexplored ? MipStatus::kNoSolutionLimit : MipStatus::kInfeasible;
  }
  if (unexplored) {
    ErrorCode code =
        limitReason == ErrorCode::kOk ? ErrorCode::kDeadline : limitReason;
    result.error = Status::error(
        code, std::string("search truncated: ") + optr::toString(code));
  }
  result.workers = {{result.nodes, result.lpIterations, 0.0}};
  return result;
}

// ---------------------------------------------------------------------------
// Parallel branch and bound.
//
// N workers over one best-first frontier. Each worker owns a private copy of
// the root model and a private SimplexSolver, so every LP data structure is
// single-owner and the warm-start dive pattern (child differs from parent by
// one bound) is preserved per worker. Shared, synchronized state:
//   * the open-node queue (mutex + condition variable; dive children stay
//     worker-local and never touch the queue);
//   * the incumbent (mutex for the point, a relaxed atomic of its objective
//     for the per-node pruning read -- stale reads only delay a prune);
//   * the lazy-row pool: a separated cut is published once and appended to
//     every other worker's model at its next node boundary, so one worker's
//     DRC row prunes everyone's subtree. All separator calls are serialized
//     behind the pool mutex, which also keeps stateful separators (dedup
//     sets) correct.
// Proven-optimal solves are exact regardless of exploration order, so the
// objective/status are deterministic at any thread count; incumbent ties are
// broken by canonicalLess, not arrival order.
// ---------------------------------------------------------------------------

MipResult MipSolver::solveParallel(std::chrono::steady_clock::time_point t0) {
  MipResult result;
  const double gapTol = computeGapTol();
  const int n = model_.numCols();
  const int numWorkers = std::min(options_.threads, 256);

  std::vector<double> rootLower(n), rootUpper(n);
  for (int c = 0; c < n; ++c) {
    rootLower[c] = model_.lower(c);
    rootUpper[c] = model_.upper(c);
  }

  struct Shared {
    std::mutex mu;  // queue, inflight, incumbent, stop bookkeeping
    std::condition_variable cv;
    std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
    int inflight = 0;  // nodes held by workers (dives included)
    bool done = false;

    bool hasIncumbent = false;
    std::vector<double> incumbent;
    double incumbentObj = 0.0;
    /// Relaxed mirror of incumbentObj for lock-free pruning reads; stale
    /// values are always >= the true incumbent, so a stale read can only
    /// delay a prune, never cause a wrong one.
    std::atomic<double> incumbentBound{lp::kInfinity};

    std::atomic<bool> stop{false};
    bool limitHit = false;
    ErrorCode limitReason = ErrorCode::kOk;
    bool errorHit = false;
    Status nodeError;

    std::mutex cutMu;  // lazy-row pool + all separator invocations
    std::vector<PoolRow> pool;

    std::mutex rootMu;  // root-basis export (root re-solves are rare)
    std::shared_ptr<const lp::BasisSnapshot> rootBasis;

    std::atomic<std::int64_t> nodes{0};
    std::atomic<std::int64_t> lpIterations{0};
    std::atomic<int> numericRetries{0};
    std::atomic<int> separatorMisreports{0};
    /// One pre-sized slot per worker; each worker writes only its own slot
    /// and the join is the synchronization point. The per-slot sums must
    /// equal the atomic totals above -- the whole point of the per-worker
    /// breakdown is that no worker's work can fall out of the report.
    std::vector<MipWorkerStats> workers;
  } S;
  S.workers.resize(static_cast<std::size_t>(numWorkers));

  if (hasIncumbent_) {
    S.hasIncumbent = true;
    S.incumbent = incumbent_;
    S.incumbentObj = incumbentObj_;
    S.incumbentBound.store(incumbentObj_, std::memory_order_relaxed);
  }
  S.open.push(Node{{}, -lp::kInfinity, rootBasisSeed_});

  auto requestLimitStop = [&](ErrorCode code) {
    std::lock_guard<std::mutex> lk(S.mu);
    if (!S.limitHit && !S.errorHit) {
      S.limitHit = true;
      S.limitReason = code;
    }
    S.stop.store(true, std::memory_order_release);
    S.cv.notify_all();
  };
  auto requestErrorStop = [&](const Status& err) {
    std::lock_guard<std::mutex> lk(S.mu);
    if (!S.errorHit) {
      S.errorHit = true;
      S.nodeError = err;
    }
    S.stop.store(true, std::memory_order_release);
    S.cv.notify_all();
  };

  // MIP workers run on their own threads, so their spans would otherwise be
  // roots; parent them under the caller's mip.solve span explicitly.
  const std::uint64_t solveSpanId = obs::TraceSession::currentSpanId();

  auto workerFn = [&](int workerIdx) {
    obs::Span workerSpan("mip.worker", solveSpanId);
    workerSpan.arg("worker", static_cast<double>(workerIdx));
    MipWorkerStats& wstats = S.workers[static_cast<std::size_t>(workerIdx)];
    // Private copies: model (bounds are mutated per node, rows appended by
    // cut sync/separation) and simplex solver (owns the factorized basis).
    lp::LpModel model = model_;
    lp::SimplexSolver lps(options_.lpOptions);
    std::size_t poolCursor = 0;          // pool rows already in `model`
    std::vector<std::size_t> ownAhead;   // own published rows ahead of cursor
    int timeCountdown = 1;

    // Appends every pool row this worker has not seen yet (skipping rows it
    // published itself). When `x` is given, flags rows the candidate
    // violates. Caller must hold S.cutMu.
    auto syncPoolLocked = [&](const std::vector<double>* x, bool* violated) {
      for (; poolCursor < S.pool.size(); ++poolCursor) {
        if (!ownAhead.empty() && ownAhead.front() == poolCursor) {
          ownAhead.erase(ownAhead.begin());
          continue;
        }
        const PoolRow& pr = S.pool[poolCursor];
        appendPoolRow(model, pr);
        if (x && violated && rowViolated(pr, *x)) *violated = true;
      }
    };

    auto applyFixes = [&](const Node& node) {
      for (auto& [c, lb, ub] : node.fixes) model.setBounds(c, lb, ub);
    };
    auto undoFixes = [&](const Node& node) {
      for (auto& [c, lb, ub] : node.fixes) {
        (void)lb;
        (void)ub;
        model.setBounds(c, rootLower[c], rootUpper[c]);
      }
    };

    Node current;
    bool haveCurrent = false;

    auto releaseFinishedNode = [&]() {
      std::lock_guard<std::mutex> lk(S.mu);
      --S.inflight;
      haveCurrent = false;
      if (S.open.empty() && S.inflight == 0) S.done = true;
      S.cv.notify_all();
    };

    // The search loop proper lives in a lambda so that every exit path
    // (done, stop, error) falls through to the stats/span epilogue below.
    auto runLoop = [&]() {
    for (;;) {
      if (S.stop.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lk(S.mu);
        if (haveCurrent) {
          // The node stays conceptually open: push it back so the frontier
          // bound stays valid for reporting (mirrors the serial path).
          S.open.push(std::move(current));
          --S.inflight;
          haveCurrent = false;
        }
        S.cv.notify_all();
        return;
      }

      if (!haveCurrent) {
        std::unique_lock<std::mutex> lk(S.mu);
        for (;;) {
          if (S.done || S.stop.load(std::memory_order_relaxed)) break;
          if (!S.open.empty()) {
            double inc = S.incumbentBound.load(std::memory_order_relaxed);
            if (S.open.top().bound >= inc - gapTol) {
              // Heap pops in bound order: everything remaining is dominated.
              while (!S.open.empty()) S.open.pop();
              if (S.inflight == 0) {
                S.done = true;
                S.cv.notify_all();
              }
              continue;
            }
            current = S.open.top();
            S.open.pop();
            ++S.inflight;
            haveCurrent = true;
            break;
          }
          if (S.inflight == 0) {
            S.done = true;
            S.cv.notify_all();
            break;
          }
          const auto idle0 = std::chrono::steady_clock::now();
          S.cv.wait(lk);
          wstats.idleSeconds +=
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            idle0)
                  .count();
        }
        if (!haveCurrent) {
          if (S.stop.load(std::memory_order_relaxed)) continue;  // top of loop
          return;  // done
        }
      }

      // Dive-child prune against the shared incumbent (relaxed read).
      if (current.bound >=
          S.incumbentBound.load(std::memory_order_relaxed) - gapTol) {
        releaseFinishedNode();
        continue;
      }

      // Global node budget.
      if (S.nodes.fetch_add(1, std::memory_order_relaxed) + 1 >
          options_.maxNodes) {
        S.nodes.fetch_sub(1, std::memory_order_relaxed);
        requestLimitStop(ErrorCode::kIterationLimit);
        continue;  // stop handler pushes `current` back
      }
      // Cadenced wall-clock check (each node LP also inherits the remaining
      // budget, so an expired deadline surfaces through the LP either way).
      if (--timeCountdown <= 0) {
        timeCountdown = kTimeCheckInterval;
        if (deadlineExpiredNow()) {
          S.nodes.fetch_sub(1, std::memory_order_relaxed);
          requestLimitStop(ErrorCode::kDeadline);
          continue;
        }
      }

      ++wstats.nodes;  // mirrors the S.nodes add; rollbacks never reach here
      obs::Span nodeSpan("mip.node");
      nodeSpan.arg("bound", current.bound);
      applyFixes(current);
      {
        // Absorb cuts separated by other workers since the last node; the
        // appended <= rows ride the same solveContinue path as lazy cuts.
        std::lock_guard<std::mutex> ck(S.cutMu);
        syncPoolLocked(nullptr, nullptr);
      }

      const lp::BasisSnapshot* warm = current.warm.get();
      lp::BasisSnapshot ownBasis;
      bool abortedOnTime = false;
      bool nodeFailed = false;
      bool retriedNode = false;
      bool keptChild = false;
      std::int64_t nodeIters = 0;
      Status nodeErr;
      Node diveChild;
      for (;;) {
        double remaining =
            std::chrono::duration<double>(deadline_ -
                                          std::chrono::steady_clock::now())
                .count();
        lps.options().deadlineSeconds = std::max(0.05, remaining);
        lp::LpResult lpRes = lps.canContinue(model) ? lps.solveContinue(model)
                                                    : lps.solve(model, warm);
        lps.options().forceBland = options_.lpOptions.forceBland;
        S.lpIterations.fetch_add(lpRes.iterations, std::memory_order_relaxed);
        wstats.lpIterations += lpRes.iterations;
        nodeIters += lpRes.iterations;
        if (lpRes.status == lp::LpStatus::kOptimal) {
          ownBasis = lps.snapshot();
          warm = &ownBasis;
          if (current.fixes.empty()) {
            auto snap = std::make_shared<lp::BasisSnapshot>(ownBasis);
            std::lock_guard<std::mutex> rk(S.rootMu);
            S.rootBasis = std::move(snap);
          }
        }

        if (lpRes.status == lp::LpStatus::kInfeasible) break;
        if (lpRes.status != lp::LpStatus::kOptimal) {
          if (lpRes.detail.code() == ErrorCode::kDeadline ||
              deadlineExpiredNow()) {
            abortedOnTime = true;
            break;
          }
          if (options_.retryOnNumericalFailure && !retriedNode) {
            retriedNode = true;
            S.numericRetries.fetch_add(1, std::memory_order_relaxed);
            obs::event("mip.retry", lpRes.detail.isOk()
                                        ? lp::toString(lpRes.status)
                                        : toString(lpRes.detail.code()));
            lps.invalidate();
            lps.options().forceBland = true;
            warm = nullptr;
            continue;
          }
          nodeFailed = true;
          nodeErr = lpRes.detail.isOk()
                        ? Status::error(ErrorCode::kNumerical,
                                        std::string("node LP failed: ") +
                                            lp::toString(lpRes.status))
                        : lpRes.detail;
          break;
        }

        if (lpRes.objective >=
            S.incumbentBound.load(std::memory_order_relaxed) - gapTol) {
          break;  // bound-dominated
        }

        int branchCol = pickBranchIn(model, intCols_, lpRes.x, options_.intTol);
        if (branchCol < 0) {
          // Integer feasible. First absorb cuts other workers separated --
          // one of them may already cut off this candidate, and a globally
          // deduplicating separator would report "no rows" for it. Then run
          // the separator and publish its delta. One critical section keeps
          // sync + separate + publish atomic across workers.
          int added = 0;
          bool violatedByPool = false;
          {
            std::lock_guard<std::mutex> ck(S.cutMu);
            syncPoolLocked(&lpRes.x, &violatedByPool);
            if (!violatedByPool && separator_) {
              const int rowsBefore = model.numRows();
              int reported = separator_(lpRes.x, model);
              added = model.numRows() - rowsBefore;
              if (fault::fire(fault::Site::kSeparatorOverReport)) {
                reported = added + 3;
              }
              if (reported != added) {
                S.separatorMisreports.fetch_add(1, std::memory_order_relaxed);
              }
              for (int r = rowsBefore; r < model.numRows(); ++r) {
                PoolRow pr;
                auto cols = model.rowCols(r);
                auto coefs = model.rowCoefs(r);
                pr.cols.assign(cols.begin(), cols.end());
                pr.coefs.assign(coefs.begin(), coefs.end());
                pr.sense = model.sense(r);
                pr.rhs = model.rhs(r);
                ownAhead.push_back(S.pool.size());
                S.pool.push_back(std::move(pr));
              }
            }
          }
          if (added > 0) {
            obs::event("mip.cuts", {}, {{"rows", static_cast<double>(added)}});
            obs::metrics().counter("ilp.cut_rounds").add();
          }
          if (violatedByPool || added > 0) continue;  // re-solve with cuts
          // Genuine incumbent: publish under the canonical tie-break.
          {
            std::lock_guard<std::mutex> lk(S.mu);
            bool adopt;
            if (!S.hasIncumbent) {
              adopt = true;
            } else if (lpRes.objective < S.incumbentObj - kIncumbentTieTol) {
              adopt = true;
            } else if (lpRes.objective <=
                       S.incumbentObj + kIncumbentTieTol) {
              adopt = canonicalLess(lpRes.x, S.incumbent, isInteger_);
            } else {
              adopt = false;
            }
            if (adopt) {
              S.incumbentObj = S.hasIncumbent
                                   ? std::min(S.incumbentObj, lpRes.objective)
                                   : lpRes.objective;
              S.incumbent = lpRes.x;
              S.hasIncumbent = true;
              S.incumbentBound.store(S.incumbentObj,
                                     std::memory_order_relaxed);
              obs::event("mip.incumbent", {}, {{"obj", S.incumbentObj}});
              obs::metrics().counter("ilp.incumbents").add();
            }
          }
          break;
        }

        // Branch: share one child with the pool, keep diving the other --
        // the dive child's LP differs by one bound, which is exactly the
        // warm-start pattern the per-worker solver exploits.
        Node down = current, up = current;
        double v = lpRes.x[branchCol];
        down.fixes.emplace_back(branchCol, rootLower[branchCol],
                                std::floor(v));
        up.fixes.emplace_back(branchCol, std::ceil(v), rootUpper[branchCol]);
        down.bound = up.bound = lpRes.objective;
        auto shared = std::make_shared<lp::BasisSnapshot>(std::move(ownBasis));
        down.warm = shared;
        up.warm = shared;
        bool preferUp = (v - std::floor(v)) >= 0.5;
        {
          std::lock_guard<std::mutex> lk(S.mu);
          S.open.push(preferUp ? std::move(down) : std::move(up));
          S.cv.notify_one();
        }
        diveChild = preferUp ? std::move(up) : std::move(down);
        keptChild = true;
        break;
      }
      undoFixes(current);
      nodeSpan.arg("iters", static_cast<double>(nodeIters));
      nodeSpan.end();

      if (nodeFailed) {
        requestErrorStop(nodeErr);
        continue;  // stop handler pushes `current` back (its bound counts)
      }
      if (abortedOnTime) {
        requestLimitStop(ErrorCode::kDeadline);
        continue;  // ditto
      }
      if (keptChild) {
        current = std::move(diveChild);  // inflight unchanged: still ours
      } else {
        releaseFinishedNode();
      }
    }
    };  // runLoop
    runLoop();

    workerSpan.arg("nodes", static_cast<double>(wstats.nodes));
    workerSpan.arg("pivots", static_cast<double>(wstats.lpIterations));
    workerSpan.arg("idleSec", wstats.idleSeconds);
    obs::metrics().counter("ilp.worker_idle_ns").add(
        static_cast<std::int64_t>(wstats.idleSeconds * 1e9));
  };

  std::vector<std::thread> pool;
  pool.reserve(numWorkers);
  for (int t = 0; t < numWorkers; ++t) pool.emplace_back(workerFn, t);
  for (std::thread& t : pool) t.join();

  // Workers never touch the root model; append the pooled lazy rows now so
  // the "lazy rows remain appended" contract matches the serial path.
  for (const PoolRow& pr : S.pool) appendPoolRow(model_, pr);

  result.nodes = S.nodes.load();
  result.lpIterations = S.lpIterations.load();
  result.lazyRowsAdded = static_cast<int>(S.pool.size());
  result.numericRetries = S.numericRetries.load();
  result.separatorMisreports = S.separatorMisreports.load();
  result.workers = std::move(S.workers);
  result.rootBasis = S.rootBasis;  // post-join: no lock needed
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Publish the final incumbent back into the solver (callers may inspect
  // it through follow-up solves, mirroring the serial member updates).
  if (S.hasIncumbent) {
    incumbent_ = S.incumbent;
    incumbentObj_ = S.incumbentObj;
    hasIncumbent_ = true;
  }

  auto emitIncumbent = [&]() {
    result.objective = S.incumbentObj;
    result.x = S.incumbent;
    for (int c = 0; c < n; ++c) {
      if (isInteger_[c]) result.x[c] = std::round(result.x[c]);
    }
  };
  double frontier = S.open.empty() ? lp::kInfinity : S.open.top().bound;

  if (S.errorHit) {
    if (S.hasIncumbent) {
      emitIncumbent();
      frontier = std::min(frontier, S.incumbentObj);
    }
    result.bestBound = frontier;
    result.error = S.nodeError;
    result.status = MipStatus::kError;
    return result;
  }

  const bool unexplored = S.limitHit && !S.open.empty();
  if (S.hasIncumbent) {
    emitIncumbent();
    result.bestBound =
        unexplored ? std::min(frontier, S.incumbentObj) : S.incumbentObj;
    result.status =
        unexplored ? MipStatus::kFeasibleLimit : MipStatus::kOptimal;
  } else {
    result.bestBound = unexplored ? frontier : -lp::kInfinity;
    result.status =
        unexplored ? MipStatus::kNoSolutionLimit : MipStatus::kInfeasible;
  }
  if (unexplored) {
    ErrorCode code = S.limitReason == ErrorCode::kOk ? ErrorCode::kDeadline
                                                     : S.limitReason;
    result.error = Status::error(
        code, std::string("search truncated: ") + optr::toString(code));
  }
  return result;
}

}  // namespace optr::ilp
