// Branch-and-bound 0-1 MIP solver with lazy-constraint separation.
//
// This replaces CPLEX in the OptRouter reproduction. The routing formulation
// has two properties this solver exploits:
//   * only arc-usage variables need integrality (flows are integral
//     automatically once usages are fixed, by network-flow integrality);
//   * design-rule constraints (via adjacency, SADP end-of-line) are numerous
//     but rarely binding, so they are added lazily: whenever the search finds
//     an integer-feasible point, a separation callback inspects it and
//     appends the violated rule rows to the model. The node is then re-solved.
//     At convergence, the answer is identical to the eager formulation
//     (tested against it on small instances).
//
// Search is best-first on the LP relaxation bound, with most-fractional
// branching and optional warm-start incumbents (OptRouter seeds the search
// with the heuristic baseline router's solution).
//
// With `MipOptions.threads > 1` the tree search runs on a worker pool: each
// worker owns a private copy of the model and its own simplex solver
// (warm-started dives stay single-owner), pulls from a shared best-first
// queue with dive locality, prunes against a shared incumbent, and publishes
// separated lazy rows to a shared pool that every other worker absorbs at
// node boundaries. Proven-optimal solves are deterministic at any thread
// count (same objective and status; incumbent ties broken by a canonical
// key, not arrival order); node/iteration *counters* are not, since the
// exploration order is scheduling-dependent. `threads = 1` runs the
// original serial path bit-identically. See docs/PERFORMANCE.md.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "lp/simplex.h"

namespace optr::ilp {

enum class MipStatus : std::uint8_t {
  kOptimal,           // incumbent proven optimal
  kInfeasible,        // no integer-feasible point exists
  kFeasibleLimit,     // limit hit; incumbent available but not proven optimal
  kNoSolutionLimit,   // limit hit before any incumbent was found
  kError,             // LP engine failure
};

const char* toString(MipStatus s);

/// Per-worker work accounting. The aggregation invariant -- pinned by
/// mip_parallel_test -- is that summing nodes / lpIterations over `workers`
/// reproduces the MipResult totals exactly, at any thread count: every
/// worker's work is counted, not just the chain that produced the final
/// incumbent, so reported totals are complete regardless of scheduling.
struct MipWorkerStats {
  std::int64_t nodes = 0;
  std::int64_t lpIterations = 0;
  /// Wall seconds this worker spent blocked on the empty shared frontier.
  double idleSeconds = 0.0;
};

struct MipOptions {
  double timeLimitSec = 300.0;
  std::int64_t maxNodes = 1000000;
  double intTol = 1e-6;
  /// On an LP numerical failure at a node, retry that node once from a
  /// fresh factorization with Bland's rule forced before giving up.
  bool retryOnNumericalFailure = true;
  /// Prune when nodeBound >= incumbent - objectiveGapTol. Routing objectives
  /// are integral multiples of the cost unit, so callers may raise this to
  /// (unit - epsilon) for stronger pruning.
  double objectiveGapTol = 1e-9;
  /// Branch-and-bound worker threads. 1 = the serial search (bit-identical
  /// to the historical solver); N > 1 = N workers over a shared frontier.
  int threads = 1;
  lp::SimplexOptions lpOptions{.maxIterations = 400000};
};

struct MipResult {
  MipStatus status = MipStatus::kError;
  double objective = 0.0;   // incumbent objective (valid unless kNoSolution*)
  double bestBound = 0.0;   // proven lower bound on the optimum
  std::vector<double> x;    // incumbent point
  std::int64_t nodes = 0;
  std::int64_t lpIterations = 0;
  int lazyRowsAdded = 0;
  double seconds = 0.0;
  /// Why the solve degraded (kError, or a limit status): machine-readable
  /// code + message from the failing layer. OK for kOptimal / kInfeasible.
  Status error = Status::ok();
  /// Numerical node failures recovered by the fresh-factorization retry.
  int numericRetries = 0;
  /// Separator calls whose reported row count disagreed with the rows
  /// actually appended (the solver trusts the model delta, not the report).
  int separatorMisreports = 0;
  /// One entry per worker (a serial solve reports a single entry); the
  /// per-field sums equal the totals above. See MipWorkerStats.
  std::vector<MipWorkerStats> workers;
  /// Final basis of the last root-node LP solve (no branching fixes
  /// applied), when that LP reached optimality. Feeding it back through
  /// setRootBasis() on the next solve over the same formulation -- the
  /// ClipSession rule-sweep pattern, where successive rules differ only in
  /// bound overlays and truncated rule rows -- lets the root relaxation
  /// warm-start (usually via the dual-simplex restart) instead of running
  /// composite phase 1 from the slack basis. Null when the root LP never
  /// reached optimality.
  std::shared_ptr<const lp::BasisSnapshot> rootBasis;

  bool hasSolution() const {
    return status == MipStatus::kOptimal || status == MipStatus::kFeasibleLimit;
  }
  /// True when `x` holds a model-feasible incumbent even though the status
  /// is an error (the recovery ladder falls back to it).
  bool hasIncumbent() const { return !x.empty(); }
};

/// Separation callback. Inspects an integer-feasible candidate `x` and
/// appends every violated lazy row to `model`; returns the number of rows
/// added (0 means the candidate is fully feasible). Under a parallel solve
/// the solver serializes all separator invocations behind one mutex, so the
/// callback may keep non-atomic internal state (dedup sets, counters); it
/// is handed each worker's private model, which shares column numbering
/// with the root model.
using LazySeparator =
    std::function<int(const std::vector<double>& x, lp::LpModel& model)>;

class MipSolver {
 public:
  /// `isInteger[c]` marks columns that must take integral values. The model
  /// is mutated during solve (bound fixing, lazy rows) and restored to its
  /// root bounds afterwards; lazy rows remain appended (under a parallel
  /// solve the workers' pooled lazy rows are appended to the root model
  /// when the search finishes).
  MipSolver(lp::LpModel& model, std::vector<bool> isInteger,
            MipOptions options = {});

  void setLazySeparator(LazySeparator sep) { separator_ = std::move(sep); }

  /// Seeds the search with a known feasible point (e.g. from the heuristic
  /// baseline router). The point must satisfy all current rows, integrality,
  /// and the lazy constraints; callers are expected to have validated it with
  /// the same rule checker that backs the separator. Invalid seeds are
  /// rejected (returns false) rather than silently corrupting the search.
  bool setInitialIncumbent(const std::vector<double>& x);

  /// Seeds the root node's LP with a basis from a previous solve of a
  /// structurally compatible model (same columns; rows may differ -- an
  /// unrestorable basis silently falls back to the cold slack basis). The
  /// canonical source is MipResult::rootBasis of the prior solve.
  void setRootBasis(std::shared_ptr<const lp::BasisSnapshot> basis) {
    rootBasisSeed_ = std::move(basis);
  }

  MipResult solve();

 private:
  struct Node {
    // Bound overrides relative to the root model: (column, lb, ub).
    std::vector<std::tuple<int, double, double>> fixes;
    double bound;  // parent LP bound (lower bound on this subtree)
    // Parent's final simplex basis; children re-solve in a few pivots.
    std::shared_ptr<const lp::BasisSnapshot> warm;
  };
  struct NodeOrder {
    bool operator()(const Node& a, const Node& b) const {
      return a.bound > b.bound;  // min-heap on bound
    }
  };

  MipResult solveSerial(std::chrono::steady_clock::time_point t0);
  MipResult solveParallel(std::chrono::steady_clock::time_point t0);

  /// Effective pruning tolerance: objectiveGapTol, strengthened to almost 1
  /// when the objective is provably integral on integer-feasible points.
  double computeGapTol() const;

  /// Cadenced deadline check for the per-node hot path: queries the clock
  /// only every kTimeCheckInterval calls and latches an expired verdict
  /// (a deadline never un-expires). Cold paths use deadlineExpiredNow().
  bool timeUp() const;
  bool deadlineExpiredNow() const;
  /// Returns index of the most fractional integer column, or -1 if integral.
  int pickBranchVariable(const std::vector<double>& x) const;

  static constexpr int kTimeCheckInterval = 16;

  lp::LpModel& model_;
  std::vector<bool> isInteger_;
  std::vector<int> intCols_;  // indices of integer columns (branch scan set)
  MipOptions options_;
  Status setupError_ = Status::ok();  // bad construction input, reported by solve()
  LazySeparator separator_;
  lp::SimplexSolver lpSolver_;

  std::vector<double> incumbent_;
  double incumbentObj_ = 0.0;
  bool hasIncumbent_ = false;
  std::shared_ptr<const lp::BasisSnapshot> rootBasisSeed_;

  std::chrono::steady_clock::time_point deadline_;
  mutable int timeCheckCountdown_ = 0;  // calls until the next clock query
  mutable bool timeUpLatched_ = false;
};

}  // namespace optr::ilp
