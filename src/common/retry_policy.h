// Jittered exponential-backoff retry policy.
//
// Shared by every layer that retries a failed operation with a delay — the
// fleet coordinator uses it to pace worker respawns so a crash-looping
// worker cannot busy-spin the machine, and to bound how long it keeps
// trying. The jitter is drawn from the repo's deterministic Rng, so a policy
// constructed from a fixed seed produces a bit-identical delay schedule run
// over run (the property the unit tests pin down); production callers seed
// from whatever entropy they like.
//
// Semantics:
//   * attempt 1 is the original try; nextDelaySec() is consulted *after* a
//     failure and answers "may I retry, and after how long?";
//   * the delay for retry k is min(initial * multiplier^(k-1), maxDelay),
//     scaled by a uniform jitter in [1 - jitterFrac, 1 + jitterFrac];
//   * maxAttempts caps total tries (original + retries); <= 0 means
//     unbounded;
//   * deadlineSec caps the policy's whole lifetime: a retry whose delay
//     would land past the deadline is refused. <= 0 disables the deadline.
//     The caller supplies elapsed time, so the policy itself stays
//     clock-free and fully testable.
#pragma once

#include <algorithm>
#include <optional>

#include "common/rng.h"

namespace optr::common {

struct RetryPolicyOptions {
  double initialDelaySec = 0.05;
  double multiplier = 2.0;
  double maxDelaySec = 2.0;
  /// Uniform jitter as a fraction of the backoff: each delay is scaled by
  /// [1 - jitterFrac, 1 + jitterFrac]. 0 disables jitter. Clamped to [0, 1].
  double jitterFrac = 0.25;
  /// Total tries allowed (original + retries); <= 0 means unbounded.
  int maxAttempts = 5;
  /// Lifetime budget in seconds; a retry that cannot start before the
  /// deadline is refused. <= 0 disables.
  double deadlineSec = 0.0;
};

class RetryPolicy {
 public:
  explicit RetryPolicy(RetryPolicyOptions options = {},
                       std::uint64_t jitterSeed = 0x5eedULL)
      : options_(options), rng_(jitterSeed) {
    options_.jitterFrac = std::clamp(options_.jitterFrac, 0.0, 1.0);
    if (options_.multiplier < 1.0) options_.multiplier = 1.0;
  }

  /// Call after a failure. Returns the delay to wait before the next try,
  /// or nullopt when the policy is exhausted (attempts or deadline).
  /// `elapsedSec` is time since the policy's first attempt started.
  std::optional<double> nextDelaySec(double elapsedSec = 0.0) {
    if (options_.maxAttempts > 0 && attempt_ >= options_.maxAttempts) {
      return std::nullopt;
    }
    double base = options_.initialDelaySec;
    for (int i = 1; i < attempt_; ++i) {
      base *= options_.multiplier;
      if (base >= options_.maxDelaySec) break;
    }
    base = std::min(base, options_.maxDelaySec);
    double scale = 1.0;
    if (options_.jitterFrac > 0.0) {
      scale = 1.0 - options_.jitterFrac +
              2.0 * options_.jitterFrac * rng_.uniformReal();
    }
    double delay = base * scale;
    if (options_.deadlineSec > 0.0 &&
        elapsedSec + delay > options_.deadlineSec) {
      return std::nullopt;
    }
    ++attempt_;
    return delay;
  }

  /// Tries consumed so far (1 after construction: the original attempt).
  int attempt() const { return attempt_; }

  /// Back to the original-attempt state (e.g. a worker slot that proved
  /// healthy again earns a fresh budget). Jitter state is NOT reset, so a
  /// reused policy keeps its deterministic draw sequence.
  void reset() { attempt_ = 1; }

  const RetryPolicyOptions& options() const { return options_; }

 private:
  RetryPolicyOptions options_;
  Rng rng_;
  int attempt_ = 1;
};

}  // namespace optr::common
