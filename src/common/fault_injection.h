// Deterministic fault injection for the solver stack.
//
// Compiled in unconditionally; a disarmed site costs one predictable branch
// on a plain bool, so the hooks stay in release builds and the recovery
// paths they exercise are the same code production runs. Tests arm a site
// with a countdown ("fire on the k-th probe") and a repeat count; everything
// is plain counters -- no clocks, no randomness -- so an injected failure
// reproduces bit-identically run over run.
//
// Usage (test side):
//   fault::ScopedFault f(fault::Site::kSingularBasis, /*countdown=*/0,
//                        /*times=*/fault::kAlways);
//   ... exercise the solver; every refactorization now fails ...
//
// Usage (probe side, e.g. inside SimplexSolver::refactorize):
//   if (fault::fire(fault::Site::kSingularBasis)) return false;
#pragma once

namespace optr::fault {

enum class Site : int {
  kSingularBasis = 0,    // basis refactorization reports a singular matrix
  kDualDrift,            // incremental dual update picks up an error term
  kLpDeadline,           // LP wall-clock deadline expires at the k-th pivot
  kSeparatorOverReport,  // lazy separator claims rows it never appended
  kNumSites,
};

inline constexpr int kAlways = 1 << 30;

namespace detail {
struct SiteState {
  bool armed = false;
  int countdown = 0;  // probes to skip before firing
  int remaining = 0;  // fires left once the countdown elapses
  int fired = 0;      // total fires since arm/reset (test observability)
};
inline SiteState g_sites[static_cast<int>(Site::kNumSites)];
inline bool g_anyArmed = false;

inline SiteState& state(Site s) { return g_sites[static_cast<int>(s)]; }

inline void refreshAnyArmed() {
  g_anyArmed = false;
  for (const SiteState& st : g_sites) g_anyArmed |= st.armed;
}
}  // namespace detail

/// Arms `site`: the first `countdown` probes pass through, then the next
/// `times` probes fire. Re-arming replaces the previous schedule.
inline void arm(Site site, int countdown = 0, int times = 1) {
  detail::SiteState& st = detail::state(site);
  st.armed = true;
  st.countdown = countdown;
  st.remaining = times;
  st.fired = 0;
  detail::g_anyArmed = true;
}

inline void disarm(Site site) {
  detail::state(site).armed = false;
  detail::refreshAnyArmed();
}

/// Disarms every site and clears fire counters.
inline void reset() {
  for (detail::SiteState& st : detail::g_sites) st = detail::SiteState{};
  detail::g_anyArmed = false;
}

/// The probe. False (and branch-predictable) unless the site is armed and
/// its countdown has elapsed.
inline bool fire(Site site) {
  if (!detail::g_anyArmed) return false;
  detail::SiteState& st = detail::state(site);
  if (!st.armed) return false;
  if (st.countdown > 0) {
    --st.countdown;
    return false;
  }
  if (st.remaining <= 0) return false;
  --st.remaining;
  ++st.fired;
  return true;
}

/// Times `site` has fired since it was last armed (or reset).
inline int fireCount(Site site) { return detail::state(site).fired; }

inline bool anyArmed() { return detail::g_anyArmed; }

/// RAII arming for tests: disarms the site (only this one) on scope exit.
class ScopedFault {
 public:
  explicit ScopedFault(Site site, int countdown = 0, int times = 1)
      : site_(site) {
    arm(site, countdown, times);
  }
  ~ScopedFault() { disarm(site_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  int fired() const { return fireCount(site_); }

 private:
  Site site_;
};

}  // namespace optr::fault
