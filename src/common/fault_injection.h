// Deterministic fault injection for the solver stack.
//
// Compiled in unconditionally; a disarmed site costs one predictable branch
// on a relaxed atomic load, so the hooks stay in release builds and the
// recovery paths they exercise are the same code production runs. Tests arm
// a site with a countdown ("fire on the k-th probe") and a repeat count;
// everything is plain counters -- no clocks, no randomness -- so an injected
// failure reproduces bit-identically run over run on a single thread.
//
// Thread safety: probes may race from parallel MIP workers, so the counters
// are atomics decremented with compare-exchange -- the *total* number of
// fires is exact at any thread count, while which worker observes a given
// fire is scheduling-dependent (tests under parallelism assert on counts and
// on the recovery outcome, not on the firing thread). Arm/disarm/reset are
// test-side operations and must not run concurrently with probes.
//
// Usage (test side):
//   fault::ScopedFault f(fault::Site::kSingularBasis, /*countdown=*/0,
//                        /*times=*/fault::kAlways);
//   ... exercise the solver; every refactorization now fails ...
//
// Usage (probe side, e.g. inside SimplexSolver::refactorize):
//   if (fault::fire(fault::Site::kSingularBasis)) return false;
#pragma once

#include <atomic>

#include "obs/trace.h"

namespace optr::fault {

enum class Site : int {
  kSingularBasis = 0,    // basis refactorization reports a singular matrix
  kDualDrift,            // incremental dual update picks up an error term
  kLpDeadline,           // LP wall-clock deadline expires at the k-th pivot
  kSeparatorOverReport,  // lazy separator claims rows it never appended
  // Fleet sites (harness::SweepWorker probes these; the coordinator's
  // failure-detection and re-assignment paths are the recovery under test).
  kWorkerCrash,          // worker process dies (_exit) on taking a lease
  kWorkerHang,           // worker wedges mid-solve but keeps heartbeating
  kGarbledMessage,       // worker's result line is truncated on the wire
  kDroppedHeartbeat,     // worker suppresses a heartbeat it owed
  kNumSites,
};

inline constexpr int kAlways = 1 << 30;

/// Stable site names for trace events and metric labels; common_test checks
/// exhaustiveness (a new Site without a name trips it).
inline const char* toString(Site s) {
  switch (s) {
    case Site::kSingularBasis: return "singular-basis";
    case Site::kDualDrift: return "dual-drift";
    case Site::kLpDeadline: return "lp-deadline";
    case Site::kSeparatorOverReport: return "separator-over-report";
    case Site::kWorkerCrash: return "worker-crash";
    case Site::kWorkerHang: return "worker-hang";
    case Site::kGarbledMessage: return "garbled-message";
    case Site::kDroppedHeartbeat: return "dropped-heartbeat";
    case Site::kNumSites: break;
  }
  return "?";
}

namespace detail {
struct SiteState {
  std::atomic<bool> armed{false};
  std::atomic<int> countdown{0};  // probes to skip before firing
  std::atomic<int> remaining{0};  // fires left once the countdown elapses
  std::atomic<int> fired{0};      // total fires since arm/reset
};
inline SiteState g_sites[static_cast<int>(Site::kNumSites)];
inline std::atomic<bool> g_anyArmed{false};

inline SiteState& state(Site s) { return g_sites[static_cast<int>(s)]; }

inline void refreshAnyArmed() {
  bool any = false;
  for (const SiteState& st : g_sites)
    any |= st.armed.load(std::memory_order_relaxed);
  g_anyArmed.store(any, std::memory_order_relaxed);
}

/// Decrements `counter` if positive; true when this caller took a unit.
/// Lock-free and exact under contention.
inline bool takeUnit(std::atomic<int>& counter) {
  int v = counter.load(std::memory_order_relaxed);
  while (v > 0) {
    if (counter.compare_exchange_weak(v, v - 1, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}
}  // namespace detail

/// Arms `site`: the first `countdown` probes pass through, then the next
/// `times` probes fire. Re-arming replaces the previous schedule.
inline void arm(Site site, int countdown = 0, int times = 1) {
  detail::SiteState& st = detail::state(site);
  st.countdown.store(countdown, std::memory_order_relaxed);
  st.remaining.store(times, std::memory_order_relaxed);
  st.fired.store(0, std::memory_order_relaxed);
  st.armed.store(true, std::memory_order_relaxed);
  detail::g_anyArmed.store(true, std::memory_order_relaxed);
}

inline void disarm(Site site) {
  detail::state(site).armed.store(false, std::memory_order_relaxed);
  detail::refreshAnyArmed();
}

/// Disarms every site and clears fire counters.
inline void reset() {
  for (detail::SiteState& st : detail::g_sites) {
    st.armed.store(false, std::memory_order_relaxed);
    st.countdown.store(0, std::memory_order_relaxed);
    st.remaining.store(0, std::memory_order_relaxed);
    st.fired.store(0, std::memory_order_relaxed);
  }
  detail::g_anyArmed.store(false, std::memory_order_relaxed);
}

/// The probe. False (and branch-predictable) unless the site is armed and
/// its countdown has elapsed.
inline bool fire(Site site) {
  if (!detail::g_anyArmed.load(std::memory_order_relaxed)) return false;
  detail::SiteState& st = detail::state(site);
  if (!st.armed.load(std::memory_order_relaxed)) return false;
  if (detail::takeUnit(st.countdown)) return false;
  if (!detail::takeUnit(st.remaining)) return false;
  st.fired.fetch_add(1, std::memory_order_relaxed);
  // Every injected fault is observable: a trace event at the exact probe
  // that fired (so tests can assert injection -> recovery causality) and a
  // counter. Both are no-ops unless tracing/metrics are live, and this is
  // the rare branch -- disarmed probes returned above.
  obs::event("fault.fired", toString(site));
  obs::metrics().counter("fault.injected").add();
  return true;
}

/// Times `site` has fired since it was last armed (or reset).
inline int fireCount(Site site) {
  return detail::state(site).fired.load(std::memory_order_relaxed);
}

inline bool anyArmed() {
  return detail::g_anyArmed.load(std::memory_order_relaxed);
}

/// RAII arming for tests: disarms the site (only this one) on scope exit.
class ScopedFault {
 public:
  explicit ScopedFault(Site site, int countdown = 0, int times = 1)
      : site_(site) {
    arm(site, countdown, times);
  }
  ~ScopedFault() { disarm(site_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  int fired() const { return fireCount(site_); }

 private:
  Site site_;
};

}  // namespace optr::fault
