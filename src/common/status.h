// Lightweight error propagation for the IO and solver layers.
//
// The library does not throw across public API boundaries except for
// programming errors (OPTR_ASSERT). Recoverable conditions (parse errors,
// solver limits) are reported through Status / StatusOr.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace optr {

class Status {
 public:
  Status() = default;  // OK
  static Status ok() { return Status(); }
  static Status error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    s.ok_ = false;
    return s;
  }

  bool isOk() const { return ok_; }
  explicit operator bool() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

/// Value-or-error return. Minimal and move-friendly; no exceptions.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT

  bool isOk() const { return value_.has_value(); }
  explicit operator bool() const { return isOk(); }
  const Status& status() const { return status_; }
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

 private:
  std::optional<T> value_;
  Status status_ = Status::error("value not set");
};

}  // namespace optr

/// Invariant check for programming errors. Active in all build types: the
/// solver's correctness argument leans on these, and the cost is negligible
/// relative to LP pivoting.
#define OPTR_ASSERT(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "OPTR_ASSERT failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, msg);                                          \
      std::abort();                                                         \
    }                                                                       \
  } while (0)
