// Lightweight error propagation for the IO and solver layers.
//
// The library does not throw across public API boundaries except for
// programming errors (OPTR_ASSERT). Recoverable conditions (parse errors,
// solver limits, numerical trouble) are reported through Status / StatusOr,
// which carry a machine-readable ErrorCode alongside the human-readable
// message so callers can branch on *why* an operation degraded (the
// OptRouter recovery ladder and harness::BatchRunner both do).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace optr {

/// The error taxonomy. Codes are stable identifiers: they are serialized by
/// the batch harness and asserted on by tests, so renumbering is a breaking
/// change (append only).
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kInvalidInput,     // structurally bad caller data (clip, bounds, sizes)
  kParse,            // malformed text input (clip text, DEF)
  kIo,               // file open / read / write failure
  kUnavailable,      // named entity does not exist (rule, technology)
  kNumerical,        // numerical failure in the solver stack
  kSingularBasis,    // basis refactorization failed (a kNumerical refinement)
  kDeadline,         // wall-clock budget expired
  kIterationLimit,   // iteration / node budget exhausted
  kSeparation,       // lazy-constraint separator misbehaved
  kCrash,            // isolated worker died (signal / abort)
  kInternal,         // invariant violated; default for untagged errors
  kSaturated,        // admission control refused work (queue/backlog full)
  /// Count sentinel -- always last; insert new codes directly above it so
  /// serialized values stay stable. Exists so the string table can be
  /// checked exhaustively (common_test fails on a nameless new code).
  kNumCodes,
};

const char* toString(ErrorCode c);

class Status {
 public:
  Status() = default;  // OK
  static Status ok() { return Status(); }
  static Status error(std::string message) {
    return error(ErrorCode::kInternal, std::move(message));
  }
  static Status error(ErrorCode code, std::string message) {
    Status s;
    s.message_ = std::move(message);
    s.code_ = code == ErrorCode::kOk ? ErrorCode::kInternal : code;
    s.ok_ = false;
    return s;
  }

  bool isOk() const { return ok_; }
  explicit operator bool() const { return ok_; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline const char* toString(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidInput: return "invalid-input";
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kNumerical: return "numerical";
    case ErrorCode::kSingularBasis: return "singular-basis";
    case ErrorCode::kDeadline: return "deadline";
    case ErrorCode::kIterationLimit: return "iteration-limit";
    case ErrorCode::kSeparation: return "separation";
    case ErrorCode::kCrash: return "crash";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kSaturated: return "saturated";
    case ErrorCode::kNumCodes: break;
  }
  return "?";
}

/// Parses the serialized form produced by toString (harness checkpoints);
/// unknown strings map to kInternal.
inline ErrorCode errorCodeFromString(const std::string& s) {
  for (int i = 0; i < static_cast<int>(ErrorCode::kNumCodes); ++i) {
    auto c = static_cast<ErrorCode>(i);
    if (s == toString(c)) return c;
  }
  return ErrorCode::kInternal;
}

/// Value-or-error return. Minimal and move-friendly; no exceptions.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value)  // NOLINT
      : value_(std::move(value)), status_(Status::ok()) {}
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT

  bool isOk() const { return value_.has_value(); }
  explicit operator bool() const { return isOk(); }
  const Status& status() const { return status_; }
  ErrorCode code() const { return status_.code(); }

  const T& value() const& {
    checkHasValue();
    return *value_;
  }
  T& value() & {
    checkHasValue();
    return *value_;
  }
  T&& value() && {
    checkHasValue();
    return std::move(*value_);
  }

 private:
  void checkHasValue() const {
    if (value_.has_value()) return;
    std::fprintf(stderr, "StatusOr::value() called on error state [%s]: %s\n",
                 toString(status_.code()), status_.message().c_str());
    std::abort();
  }

  std::optional<T> value_;
  Status status_ = Status::error(ErrorCode::kInternal, "value not set");
};

}  // namespace optr

/// Invariant check for programming errors. Active in all build types: the
/// solver's correctness argument leans on these, and the cost is negligible
/// relative to LP pivoting. Data-dependent conditions (an unlucky pivot
/// sequence, a malformed input file) must use Status instead -- a batch of a
/// thousand clips must not abort because one of them went numerically sour.
#define OPTR_ASSERT(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "OPTR_ASSERT failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, msg);                                          \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Early-returns the enclosing function with the error Status produced by
/// `expr` when it is not OK. `expr` may be a Status or anything convertible.
#define OPTR_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::optr::Status optrStatusTmp_ = (expr);       \
    if (!optrStatusTmp_.isOk()) {                 \
      return optrStatusTmp_;                      \
    }                                             \
  } while (0)
