// Small string helpers shared by IO and reporting code.
#pragma once

#include <charconv>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace optr {

/// Split on any run of whitespace; no empty tokens.
inline std::vector<std::string_view> splitWhitespace(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r')) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t' && s[j] != '\r') ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

inline std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

inline std::optional<std::int64_t> parseInt(std::string_view s) {
  std::int64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

inline std::optional<double> parseDouble(std::string_view s) {
  // std::from_chars<double> availability varies; stringstream is fine here
  // (IO layer only, never on the solver hot path).
  std::istringstream in{std::string(s)};
  double v = 0;
  in >> v;
  if (in.fail() || !in.eof()) return std::nullopt;
  return v;
}

inline bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

/// printf-style formatting into std::string, for report generation.
template <typename... Args>
std::string strFormat(const char* fmt, Args... args) {
  int n = std::snprintf(nullptr, 0, fmt, args...);
  std::string out(static_cast<std::size_t>(n), '\0');
  std::snprintf(out.data(), out.size() + 1, fmt, args...);
  return out;
}

}  // namespace optr
