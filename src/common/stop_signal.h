// Cooperative SIGTERM/SIGINT handling for long-running drivers.
//
// The daemon (`optrouter serve`) and the batch harness both promise a clean
// stop: finish or drain in-flight work, flush checkpoints and trace rings,
// exit 0. Signal handlers cannot do any of that directly, so this header
// implements the standard async-signal-safe relay:
//
//   * installStopSignals() points SIGTERM/SIGINT at a handler that records
//     the signal number and writes one byte to a self-pipe;
//   * workers poll stopRequested() at their drain points (between batch
//     tasks, between broker dispatches);
//   * event loops add stopWakeFd() to their poll set so a signal interrupts
//     a blocking wait immediately instead of at the next timeout.
//
// requestStop() triggers the same path from normal code -- tests use it to
// exercise drain logic without raising real signals, and the service server
// uses it for programmatic shutdown. All state is process-global (signal
// dispositions are too); resetStopSignals() rearms between test cases.
#pragma once

#include <atomic>

#if !defined(_WIN32)
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#endif

namespace optr::common {

namespace internal {
inline std::atomic<int> g_stopSignal{0};
inline std::atomic<int> g_stopWakeWriteFd{-1};
inline std::atomic<int> g_stopWakeReadFd{-1};

#if !defined(_WIN32)
inline void stopSignalHandler(int sig) {
  g_stopSignal.store(sig, std::memory_order_relaxed);
  int fd = g_stopWakeWriteFd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    char b = 1;
    // write() is async-signal-safe; the pipe is non-blocking so a full
    // pipe (signal storm) drops the redundant wakeup byte harmlessly.
    (void)!write(fd, &b, 1);
  }
}
#endif
}  // namespace internal

/// True once a stop signal (or requestStop) has been seen.
inline bool stopRequested() {
  return internal::g_stopSignal.load(std::memory_order_relaxed) != 0;
}

/// The signal number that triggered the stop (0 when none yet).
inline int stopSignal() {
  return internal::g_stopSignal.load(std::memory_order_relaxed);
}

/// Programmatic stop: same observable effect as receiving SIGTERM.
inline void requestStop(int sig = 15) {
  internal::g_stopSignal.store(sig, std::memory_order_relaxed);
  int fd = internal::g_stopWakeWriteFd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    char b = 1;
#if !defined(_WIN32)
    (void)!write(fd, &b, 1);
#endif
  }
}

#if !defined(_WIN32)

/// Readable end of the self-pipe; poll it with POLLIN to learn about a stop
/// without waiting out a timeout. -1 before installStopSignals(). The byte
/// is left in the pipe (level-triggered poll keeps reporting it), which is
/// exactly right: every loop layer sees the wakeup.
inline int stopWakeFd() {
  return internal::g_stopWakeReadFd.load(std::memory_order_relaxed);
}

/// Installs SIGTERM/SIGINT handlers and the self-pipe. Idempotent.
inline void installStopSignals() {
  if (internal::g_stopWakeReadFd.load(std::memory_order_relaxed) < 0) {
    int fds[2];
    if (pipe(fds) == 0) {
      fcntl(fds[0], F_SETFL, O_NONBLOCK);
      fcntl(fds[1], F_SETFL, O_NONBLOCK);
      internal::g_stopWakeReadFd.store(fds[0], std::memory_order_relaxed);
      internal::g_stopWakeWriteFd.store(fds[1], std::memory_order_relaxed);
    }
  }
  struct sigaction sa {};
  sa.sa_handler = internal::stopSignalHandler;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

/// Clears the stop flag and drains the wake pipe (tests; also lets a driver
/// treat a second signal as "stop harder").
inline void resetStopSignals() {
  internal::g_stopSignal.store(0, std::memory_order_relaxed);
  int fd = internal::g_stopWakeReadFd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    char buf[16];
    while (read(fd, buf, sizeof buf) > 0) {
    }
  }
}

#else  // _WIN32: no self-pipe; the flag alone still works.

inline int stopWakeFd() { return -1; }
inline void installStopSignals() {}
inline void resetStopSignals() {
  internal::g_stopSignal.store(0, std::memory_order_relaxed);
}

#endif

}  // namespace optr::common
