// Minimal JSON-lines helpers shared by the serialization spots that must
// not grow a JSON dependency: the batch checkpoint rows
// (harness/batch_runner.cpp) and the fleet wire protocol
// (harness/sweep_protocol.cpp).
//
// This is deliberately NOT a JSON library. The writer side emits one flat
// object per line; the reader side matches values by key substring, which is
// sound only because every schema built on it (a) controls both ends, (b)
// never nests objects whose keys collide with top-level keys, and (c) treats
// any parse failure as "skip this line". Torn lines (a writer killed
// mid-write) fail cleanly: an unterminated string returns false.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace optr::jsonl {

/// Escapes `s` for embedding inside a JSON string literal.
inline std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Finds `"key":` in `line` and returns the offset just past the colon,
/// or npos.
inline std::size_t valueOffset(const std::string& line, const char* key) {
  std::string pat = std::string("\"") + key + "\":";
  std::size_t at = line.find(pat);
  if (at == std::string::npos) return std::string::npos;
  return at + pat.size();
}

/// Extracts the string value of `key`; false when the key is absent, not a
/// string, or the closing quote is missing (truncated line).
inline bool getString(const std::string& line, const char* key,
                      std::string& out) {
  std::size_t at = valueOffset(line, key);
  if (at == std::string::npos || at >= line.size() || line[at] != '"')
    return false;
  out.clear();
  for (std::size_t i = at + 1; i < line.size(); ++i) {
    char c = line[i];
    if (c == '"') return true;
    if (c == '\\' && i + 1 < line.size()) {
      char e = line[++i];
      switch (e) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u':
          if (i + 4 >= line.size()) return false;
          out += static_cast<char>(
              std::strtol(line.substr(i + 1, 4).c_str(), nullptr, 16));
          i += 4;
          break;
        default: out += e;
      }
    } else {
      out += c;
    }
  }
  return false;  // unterminated (truncated line)
}

/// Extracts the numeric value of `key`; false when absent or non-numeric.
inline bool getNumber(const std::string& line, const char* key, double& out) {
  std::size_t at = valueOffset(line, key);
  if (at == std::string::npos) return false;
  char* end = nullptr;
  out = std::strtod(line.c_str() + at, &end);
  return end != line.c_str() + at;
}

}  // namespace optr::jsonl
