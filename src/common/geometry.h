// Basic integer geometry primitives used throughout the router.
//
// All coordinates in this library are integers. Two coordinate systems are
// used and must not be confused:
//   * database units (DBU): nanometers, used by the layout substrate
//     (cell placement, pin shapes, clip windows);
//   * track coordinates: indices of routing tracks inside a clip's routing
//     graph (x = vertical-track index, y = horizontal-track index, z = layer).
// Conversion between the two happens exactly once, in clip extraction
// (layout/clip_extract) and routing-graph construction (grid/routing_graph).
#pragma once

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <string>

namespace optr {

/// A 2D point. Unit depends on context (DBU or track index).
struct Point {
  std::int64_t x = 0;
  std::int64_t y = 0;

  friend bool operator==(const Point&, const Point&) = default;
  friend auto operator<=>(const Point&, const Point&) = default;
};

/// An axis-aligned rectangle, half-open is *not* used: [lo.x, hi.x] x
/// [lo.y, hi.y] inclusive bounds, matching LEF/DEF rectangle semantics.
struct Rect {
  Point lo;
  Point hi;

  Rect() = default;
  Rect(std::int64_t lx, std::int64_t ly, std::int64_t hx, std::int64_t hy)
      : lo{lx, ly}, hi{hx, hy} {}

  std::int64_t width() const { return hi.x - lo.x; }
  std::int64_t height() const { return hi.y - lo.y; }
  /// Area in squared units. Zero-width/height rects have zero area.
  std::int64_t area() const { return width() * height(); }

  bool contains(const Point& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  bool contains(const Rect& r) const {
    return contains(r.lo) && contains(r.hi);
  }
  bool overlaps(const Rect& r) const {
    return lo.x <= r.hi.x && r.lo.x <= hi.x && lo.y <= r.hi.y && r.lo.y <= hi.y;
  }
  /// Intersection; only meaningful when overlaps(r).
  Rect intersect(const Rect& r) const {
    return Rect{std::max(lo.x, r.lo.x), std::max(lo.y, r.lo.y),
                std::min(hi.x, r.hi.x), std::min(hi.y, r.hi.y)};
  }
  /// Smallest rectangle covering both.
  Rect unite(const Rect& r) const {
    return Rect{std::min(lo.x, r.lo.x), std::min(lo.y, r.lo.y),
                std::max(hi.x, r.hi.x), std::max(hi.y, r.hi.y)};
  }
  Rect shifted(std::int64_t dx, std::int64_t dy) const {
    return Rect{lo.x + dx, lo.y + dy, hi.x + dx, hi.y + dy};
  }
  Point center() const { return Point{(lo.x + hi.x) / 2, (lo.y + hi.y) / 2}; }

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// Manhattan distance between two points.
inline std::int64_t manhattan(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Minimum Manhattan distance between two rectangles (0 if they overlap).
inline std::int64_t rectDistance(const Rect& a, const Rect& b) {
  std::int64_t dx = std::max<std::int64_t>(
      0, std::max(b.lo.x - a.hi.x, a.lo.x - b.hi.x));
  std::int64_t dy = std::max<std::int64_t>(
      0, std::max(b.lo.y - a.hi.y, a.lo.y - b.hi.y));
  return dx + dy;
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << "," << p.y << ")";
}
inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "[" << r.lo << " " << r.hi << "]";
}

}  // namespace optr
