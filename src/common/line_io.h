// Newline-delimited framing over raw file descriptors.
//
// Every wire protocol in this repo -- the fleet's coordinator/worker link
// (harness/sweep_protocol.h), the batch fork-isolation result pipe, and the
// routing service (service/service_protocol.h) -- frames messages as one
// flat JSON object per line over an arbitrary byte stream. This header is
// the one place that framing lives:
//
//   * writeLine(): short-write-safe, EINTR-safe emission of one framed line;
//   * LineReader: blocking buffered reader for lease-at-a-time loops (the
//     fleet worker, the service client);
//   * LineSplitter: non-blocking accumulator for poll-driven event loops
//     (the fleet coordinator, the service server) that receive partial
//     lines per readiness wakeup.
//
// Callers own concurrency: when several threads share one fd (a solve
// thread and its heartbeat pump), they serialize writeLine under their own
// mutex.
#pragma once

#include <string>

#if !defined(_WIN32)
#include <unistd.h>

#include <cerrno>
#endif

namespace optr::common {

#if !defined(_WIN32)

/// Writes `line` plus a terminating '\n', handling short writes and EINTR.
/// False when the peer is gone (EPIPE with SIGPIPE ignored) or the fd is
/// otherwise unwritable; callers treat that as "connection closed".
inline bool writeLine(int fd, const std::string& line) {
  std::string framed = line + "\n";
  std::size_t off = 0;
  while (off < framed.size()) {
    ssize_t n = write(fd, framed.data() + off, framed.size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Blocking buffered line reader for one fd.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Reads until a full line (without '\n') is available. False on EOF or
  /// a read error.
  bool next(std::string& line) {
    for (;;) {
      std::size_t eol = buffer_.find('\n');
      if (eol != std::string::npos) {
        line = buffer_.substr(0, eol);
        buffer_.erase(0, eol + 1);
        return true;
      }
      char chunk[4096];
      ssize_t n = read(fd_, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

#endif  // !_WIN32

/// Byte-stream accumulator for event loops: feed whatever a readiness
/// wakeup delivered, pop complete lines. A line torn across reads stays
/// buffered until its '\n' arrives; a writer killed mid-line leaves the
/// fragment here, where it is simply never popped (the JSONL decoders treat
/// any incomplete line as garbled anyway).
class LineSplitter {
 public:
  void feed(const char* data, std::size_t n) { buffer_.append(data, n); }

  /// Pops the next complete line (without '\n'); false when none is
  /// buffered.
  bool next(std::string& line) {
    std::size_t eol = buffer_.find('\n');
    if (eol == std::string::npos) return false;
    line = buffer_.substr(0, eol);
    buffer_.erase(0, eol + 1);
    return true;
  }

  bool empty() const { return buffer_.empty(); }

 private:
  std::string buffer_;
};

}  // namespace optr::common
