// Deterministic random number generation.
//
// All stochastic parts of the testbed (netlist synthesis, placement jitter,
// workload generation) draw from this RNG so that every table and figure in
// the bench suite regenerates bit-identically from a seed. We deliberately do
// not use std::mt19937 + std::uniform_int_distribution because distribution
// results are not specified to be identical across standard library
// implementations; xoshiro256** plus hand-rolled bounded draws are.
#pragma once

#include <cstdint>
#include <limits>

namespace optr {

/// xoshiro256** by Blackman & Vigna (public domain reference implementation
/// re-expressed). High quality, tiny state, fully reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 initialization to avoid all-zero / low-entropy states.
    for (auto& word : state_) {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t uniform(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Debiased modulo (Lemire-style rejection kept simple and portable).
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniformReal() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p of true.
  bool chance(double p) { return uniformReal() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace optr
