// Fleet worker: serves the sweep protocol on a pair of file descriptors.
//
// A worker is transport-agnostic: the coordinator's fork-spawned workers
// hand it both ends of a socketpair, the `optrouter sweep-worker` subcommand
// hands it stdin/stdout (which is how a worker runs across an SSH pipe).
// The loop is lease-at-a-time:
//
//   hello -> [lease -> heartbeats || solve -> checkpoint -> result]* ->
//   shutdown/EOF
//
// While a solve runs, a heartbeat thread ticks on the wire so the
// coordinator can tell "slow" from "dead"; the solve itself stays
// single-threaded. Every completed row is appended (and flushed) to the
// worker's own JSONL checkpoint *before* the result goes on the wire: if
// the coordinator dies between our write and its merge, the row is
// recovered from this file on restart instead of re-solved.
//
// Fault-injection sites (deterministic chaos for the failure-detection
// paths): kWorkerCrash (_exit on taking a lease), kWorkerHang (sleep
// instead of solving, heartbeats still ticking), kGarbledMessage (the
// result line is truncated on the wire), kDroppedHeartbeat (a heartbeat is
// owed but never sent).
#pragma once

#include <string>
#include <vector>

#include "clip/clip.h"
#include "common/status.h"
#include "core/opt_router.h"
#include "tech/rules.h"

namespace optr::harness {

struct SweepWorkerOptions {
  core::OptRouterOptions router;
  std::string workerId = "w?";
  /// Per-worker JSONL checkpoint; empty disables (results then live only on
  /// the wire and in the coordinator's merged checkpoint).
  std::string checkpointPath;
  /// Heartbeat period while solving. Must be well under the coordinator's
  /// lease window; the coordinator passes leaseSec/4 to its own spawns.
  double heartbeatSec = 1.0;
};

class SweepWorker {
 public:
  explicit SweepWorker(SweepWorkerOptions options);

  /// Serves until shutdown or EOF on `inFd`. `clips` and `rules` are the
  /// worker's task universe; leases reference them by id/name, and a lease
  /// naming an unknown clip or rule is nacked (kUnavailable), not fatal.
  /// Returns non-OK only for transport-level failures (broken pipe on
  /// hello, unreadable fds) -- task-level trouble is the protocol's job.
  Status serve(int inFd, int outFd, const std::vector<clip::Clip>& clips,
               const std::vector<tech::RuleConfig>& rules);

 private:
  SweepWorkerOptions options_;
};

}  // namespace optr::harness
