// Lease table: the coordinator's task-state machine, kept free of IO and
// clocks so every failure-ordering edge case is unit-testable.
//
// Each (clip, rule) task moves through:
//
//   kPending --grant--> kLeased --complete--> kDone
//       ^                  |
//       +----expire/release+--(attempts exhausted)--> kQuarantined
//
// Failure discipline:
//   * a lease carries two deadlines: the heartbeat deadline (extended by
//     every heartbeat; missing it means the worker is dead or partitioned)
//     and the hard task deadline (never extended; a worker that heartbeats
//     forever without producing a result is hung, not healthy);
//   * attempts are counted at grant time. A task that has been granted
//     maxAttempts times and fails again is quarantined: it becomes an error
//     row carrying the ErrorCode of its last failure, and the sweep moves
//     on — one poison task must not wedge the fleet;
//   * results are first-writer-wins. A result for a task already kDone is
//     counted as a duplicate and dropped; a result from a stale lease (the
//     task was re-assigned while the result was in flight) is accepted if
//     the task is not yet done — solves are deterministic, so the stale
//     worker's answer is the same answer. The later finisher becomes the
//     duplicate. This is what makes re-assignment safe to do eagerly.
//
// All times are plain double seconds on a caller-supplied monotonic clock.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "harness/batch_runner.h"

namespace optr::harness {

struct LeaseOptions {
  /// Heartbeat deadline: a leased task with no heartbeat for this long is
  /// presumed lost (worker death, partition, dropped heartbeats).
  double leaseSec = 5.0;
  /// Hard per-attempt ceiling. Never extended by heartbeats; catches hung
  /// workers whose heartbeat thread is still dutifully ticking.
  double taskTimeoutSec = 60.0;
  /// Grants allowed per task before it is quarantined.
  int maxAttempts = 3;
};

enum class TaskState : std::uint8_t {
  kPending = 0,
  kLeased,
  kDone,
  kQuarantined,
};

const char* toString(TaskState s);

/// Why a lease was released without a result.
enum class LeaseFailure : std::uint8_t {
  kHeartbeatLost = 0,  // heartbeat deadline missed
  kTaskTimeout,        // hard deadline hit (hung worker)
  kWorkerDied,         // owning worker's process is gone
  kNacked,             // worker reported it cannot run the task
};

const char* toString(LeaseFailure f);

/// Outcome of offering a result to the table.
enum class ResultOutcome : std::uint8_t {
  kAccepted = 0,   // first result for the task; recorded
  kAcceptedStale,  // first result, but the lease had already been revoked
  kDuplicate,      // task already done; result dropped
  kUnknownTask,    // key not in this run's matrix
};

struct LeaseGrant {
  std::string clipId;
  std::string ruleName;
  int attempt = 0;  // 1-based
  std::string key() const { return clipId + "\x1f" + ruleName; }
};

struct ExpiredLease {
  std::string key;
  int workerSlot = -1;
  LeaseFailure reason = LeaseFailure::kHeartbeatLost;
  bool quarantined = false;  // attempts exhausted; task became an error row
};

class LeaseTable {
 public:
  explicit LeaseTable(LeaseOptions options = {});

  /// Defines the task matrix, clips outer / rules inner (the canonical row
  /// order every report uses). Call once before anything else.
  void addTask(const std::string& clipId, const std::string& ruleName);

  /// Marks a task completed from a resumed checkpoint row (not counted as
  /// this run's result). Unknown keys are ignored (a checkpoint may carry
  /// rows for a different matrix). Returns true when the row was applied.
  bool markResumed(const BatchRow& row);

  /// Leases the next pending task (in matrix order) to `workerSlot`.
  /// Returns false when nothing is pending.
  bool grant(int workerSlot, double now, LeaseGrant& out);

  /// Extends the heartbeat deadline. False when the (key, workerSlot) pair
  /// holds no live lease — a stale heartbeat, ignorable.
  bool heartbeat(const std::string& key, int workerSlot, double now);

  /// Offers a result. First writer wins; see ResultOutcome.
  ResultOutcome complete(const std::string& key, int workerSlot,
                         const BatchRow& row);

  /// Records a nack from the leasing worker: the lease is released and the
  /// task re-queued or quarantined (reflected in the returned entry).
  ExpiredLease nack(const std::string& key, int workerSlot, ErrorCode code,
                    const std::string& message);

  /// Sweeps every live lease against both deadlines. Expired leases are
  /// re-queued (or quarantined when attempts ran out) and reported so the
  /// coordinator can kill / respawn the workers involved.
  std::vector<ExpiredLease> expire(double now);

  /// Releases every lease held by `workerSlot` (its process died).
  std::vector<ExpiredLease> releaseWorker(int workerSlot);

  int pending() const { return pending_; }
  int leased() const { return leased_; }
  int done() const { return done_; }
  int quarantined() const { return quarantined_; }
  int total() const { return static_cast<int>(order_.size()); }
  bool allSettled() const { return pending_ == 0 && leased_ == 0; }

  /// Total grants handed out (== sum of per-task attempts).
  int grants() const { return grants_; }

  /// Attempts consumed by the task currently or last holding `key`; 0 for
  /// unknown keys.
  int attempts(const std::string& key) const;

  TaskState state(const std::string& key) const;

  /// Settled row for `key`; nullptr while the task is pending/leased or the
  /// key is unknown. The pointer is invalidated by the next mutating call.
  const BatchRow* settledRow(const std::string& key) const;

  /// Endgame drain: quarantines every pending task with `code` (used when
  /// the worker fleet is exhausted and nothing can run them). Leased tasks
  /// are untouched. Returns the affected keys.
  std::vector<std::string> quarantineAllPending(ErrorCode code,
                                                const std::string& message);

  /// Rows of every settled (done / quarantined) task, in matrix order.
  /// After a completed run this is one row per task; a run stopped early
  /// contributes only what settled.
  std::vector<BatchRow> rows() const;

 private:
  struct Entry {
    std::string clipId, ruleName;
    TaskState state = TaskState::kPending;
    int attempts = 0;
    int workerSlot = -1;
    double heartbeatDeadline = 0.0;
    double taskDeadline = 0.0;
    ErrorCode lastError = ErrorCode::kOk;
    std::string lastMessage;
    BatchRow row;  // valid once kDone / kQuarantined
  };

  /// Releases `e`'s lease after a failure: back to pending, or quarantine
  /// once attempts are exhausted. Fills the report entry.
  void fail(Entry& e, const std::string& key, LeaseFailure reason,
            ErrorCode code, const std::string& message, ExpiredLease& out);

  LeaseOptions options_;
  std::unordered_map<std::string, Entry> tasks_;
  // Matrix order of keys. grant() scans it front to back, so a re-queued
  // early task is picked up again before later fresh ones; task counts are
  // small enough (hundreds) that the linear scan is irrelevant.
  std::vector<std::string> order_;
  int pending_ = 0, leased_ = 0, done_ = 0, quarantined_ = 0;
  int grants_ = 0;
};

}  // namespace optr::harness
