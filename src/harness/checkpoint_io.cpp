#include "harness/checkpoint_io.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>

#if !defined(_WIN32)
#include <dirent.h>
#endif

#include "obs/metrics.h"
#include "obs/trace.h"

namespace optr::harness {

CheckpointLoadStats loadCheckpoint(
    const std::string& path, std::unordered_map<std::string, BatchRow>& out) {
  CheckpointLoadStats stats;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return stats;
  stats.fileExists = true;

  std::string line;
  bool sawFinalNewline = true;
  while (true) {
    if (!std::getline(in, line)) break;
    // getline strips the delimiter; eof with a non-empty line means the file
    // did not end in '\n' -- the signature of a write cut short by a kill.
    sawFinalNewline = !(in.eof() && !line.empty());
    if (line.empty()) continue;
    BatchRow row;
    if (!fromJsonLine(line, row)) {
      if (!sawFinalNewline) {
        ++stats.torn;
      } else {
        ++stats.malformed;
      }
      obs::metrics().counter("harness.checkpoint.skipped").add();
      obs::event("harness.checkpoint.skipped",
                 sawFinalNewline ? "malformed" : "torn");
      continue;
    }
    if (out.emplace(row.key(), std::move(row)).second) {
      ++stats.loaded;
    } else {
      ++stats.duplicates;
    }
  }
  return stats;
}

std::string workerCheckpointPath(const std::string& mergedPath, int slot) {
  return mergedPath + ".w" + std::to_string(slot);
}

std::vector<std::string> listWorkerCheckpoints(const std::string& mergedPath) {
  std::vector<std::string> found;
#if !defined(_WIN32)
  std::size_t slash = mergedPath.find_last_of('/');
  std::string dir =
      slash == std::string::npos ? "." : mergedPath.substr(0, slash);
  std::string base =
      slash == std::string::npos ? mergedPath : mergedPath.substr(slash + 1);
  std::string prefix = base + ".w";

  DIR* d = opendir(dir.c_str());
  if (!d) return found;
  std::vector<std::pair<int, std::string>> slots;
  while (dirent* e = readdir(d)) {
    std::string name = e->d_name;
    if (name.rfind(prefix, 0) != 0) continue;
    std::string suffix = name.substr(prefix.size());
    if (suffix.empty() ||
        suffix.find_first_not_of("0123456789") != std::string::npos) {
      continue;  // not a pure slot number (avoids matching ".w3.bak" etc.)
    }
    slots.emplace_back(std::atoi(suffix.c_str()),
                       dir + "/" + name);
  }
  closedir(d);
  std::sort(slots.begin(), slots.end());
  for (auto& [slot, path] : slots) found.push_back(std::move(path));
#else
  (void)mergedPath;
#endif
  return found;
}

}  // namespace optr::harness
