// Fleet coordinator: shards a clip x rule matrix across worker processes
// with lease-based failure detection and crash-consistent checkpointing.
//
// The coordinator owns the task state (harness::LeaseTable) and the worker
// fleet; workers own the solves. Tasks are leased one at a time per worker
// over the line-delimited JSON protocol (harness/sweep_protocol.h); a lease
// must be renewed by heartbeats and is bounded by a hard task deadline, so
// dead workers, hung workers, and partitions all reduce to "the lease
// expired" and the task is re-assigned -- a bounded number of times, after
// which it is quarantined as an honest error row instead of wedging the
// sweep.
//
// Failure discipline:
//   * worker death (fd EOF) releases its leases and schedules a respawn on
//     a jittered exponential backoff (common::RetryPolicy), so a
//     crash-looping worker cannot busy-spin the machine; a slot whose
//     respawn budget is spent is retired, and if the whole fleet retires
//     the remaining tasks are quarantined rather than silently dropped;
//   * an expired lease SIGKILLs the offending worker (it is hung,
//     partitioned, or lying) and re-queues the task;
//   * results are first-writer-wins (solves are deterministic): a result
//     racing its own lease expiry is accepted as stale, the re-assigned
//     runner's later result is counted as a duplicate.
//
// Durability: every accepted result is appended (and flushed) to the merged
// JSONL checkpoint; every worker also appends to its own
// `<checkpoint>.w<slot>` file *before* the result goes on the wire. On
// startup the coordinator merges the main checkpoint with all worker files
// (first writer wins, torn lines skipped and counted), re-appends rows only
// the worker files had, and marks the union resumed -- so a coordinator
// killed at any byte resumes without re-solving proven tasks.
//
// The correctness contract -- a fleet run, even one with workers SIGKILLed
// at random, produces byte-identical proven status/cost/bestBound to the
// in-process BatchRunner -- is gated by bench/bench_fleet.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "clip/clip.h"
#include "common/retry_policy.h"
#include "common/status.h"
#include "core/opt_router.h"
#include "harness/batch_runner.h"
#include "tech/rules.h"

namespace optr::harness {

struct SweepCoordinatorOptions {
  core::OptRouterOptions router;
  /// Worker slots. Each slot is at most one live process; a dead slot
  /// respawns on backoff until its retry budget is spent.
  int workers = 2;
  /// Heartbeat deadline for a lease: no heartbeat for this long and the
  /// task is presumed lost (see LeaseOptions::leaseSec).
  double leaseSec = 5.0;
  /// Hard per-attempt ceiling, never extended by heartbeats. <= 0 derives
  /// the same generous envelope BatchRunner uses (3x MIP limit + 10s).
  double taskTimeoutSec = 0.0;
  /// Lease attempts per task before quarantine.
  int maxAttempts = 3;
  /// Merged JSONL checkpoint; empty disables checkpoint/resume (worker
  /// files are then disabled too).
  std::string checkpointPath;
  /// Non-empty: spawn each worker as `/bin/sh -c <workerCommand>` speaking
  /// the protocol on its stdin/stdout (OPTR_SWEEP_SLOT / OPTR_SWEEP_GEN in
  /// its environment) -- this is how a worker runs behind an SSH pipe.
  /// Empty: fork in-process SweepWorkers over socketpairs.
  std::string workerCommand;
  /// Worker heartbeat period; <= 0 derives leaseSec / 4.
  double heartbeatSec = 0.0;
  /// Respawn backoff per worker slot. A slot that completes a task earns
  /// its budget back (RetryPolicy::reset).
  common::RetryPolicyOptions respawn;
  std::uint64_t respawnSeed = 0x0f1ee7;

  /// Test hook: stop (abruptly, workers SIGKILLed, no shutdown handshake)
  /// after this many newly executed results -- simulates a coordinator
  /// crash for restart/resume tests. < 0 runs to completion.
  int stopAfterResults = -1;
  /// Test hook, called in fork-spawned workers (child side, after fork)
  /// before serving; lets tests arm fault injection in generation-0 workers
  /// only, so respawned workers recover cleanly.
  std::function<void(int slot, int generation)> workerInitHook;

  /// Chaos mode: each poll tick, with probability chaosKillProb, SIGKILL a
  /// random busy worker (at most chaosMaxKills total). Deterministic given
  /// chaosSeed. This is how bench_fleet proves the recovery machinery under
  /// real mid-solve worker deaths.
  std::uint64_t chaosSeed = 1;
  double chaosKillProb = 0.0;
  int chaosMaxKills = 0;

  /// Live telemetry (obs/live_export.h): when non-empty, the coordinator
  /// tick appends a timestamped metrics snapshot-delta row to this file
  /// every telemetryIntervalSec via atomic rename (a SIGKILL'd coordinator
  /// still leaves telemetry). The same cadence drives
  /// obs::TraceSession::pulse(), which runs even when the path is empty.
  std::string metricsOutPath;
  double telemetryIntervalSec = 2.0;

  /// Propagate cross-process trace context on lease grants (a short
  /// fleet.grant span per grant, its context on the lease frame) so worker
  /// fleet.task spans stitch under the coordinator's tree in a merged
  /// trace. On by default; costs nothing when tracing is inactive.
  bool propagateTrace = true;
};

struct FleetReport {
  std::vector<BatchRow> rows;  // settled tasks, matrix order
  /// Non-OK when the fleet could not finish (e.g. every slot retired); the
  /// rows then include quarantine rows for whatever never ran.
  Status status = Status::ok();
  int executed = 0;   // results newly accepted this run
  int resumed = 0;    // tasks satisfied from checkpoints on startup
  int recoveredFromWorkerFiles = 0;  // resumed rows only a worker file had
  int checkpointSkipped = 0;         // torn/malformed lines across all files
  int leasesGranted = 0;
  int leasesReassigned = 0;  // grants with attempt > 1 (re-assigned tasks)
  int leasesExpired = 0;     // heartbeat losses + task timeouts
  int workersSpawned = 0;    // processes started, respawns included
  int workerDeaths = 0;      // unexpected exits (not shutdown-drain exits)
  int chaosKills = 0;        // deaths the chaos mode itself inflicted
  int duplicateResults = 0;  // results for already-done tasks, dropped
  int staleResults = 0;      // accepted results from revoked leases
  int nacks = 0;
  int garbledMessages = 0;   // undecodable lines (protocol never aborts)
  int quarantined = 0;       // tasks given up on; error rows
  bool stoppedEarly = false;
};

class SweepCoordinator {
 public:
  explicit SweepCoordinator(SweepCoordinatorOptions options);

  /// Runs the matrix to completion (or stopAfterResults / fleet
  /// exhaustion). POSIX only; elsewhere returns status kUnavailable.
  FleetReport run(const std::vector<clip::Clip>& clips,
                  const std::vector<tech::RuleConfig>& rules);

 private:
  SweepCoordinatorOptions options_;
};

}  // namespace optr::harness
