// Fleet wire protocol: line-delimited JSON between SweepCoordinator and
// SweepWorker.
//
// One JSON object per line, flat (no nesting), newline-terminated, over any
// byte stream — a socketpair for fork-spawned workers, stdin/stdout pipes
// for command-spawned ones (which is what makes an SSH-wrapped worker work
// unchanged). The schema is tiny and versioned by the hello handshake:
//
//   worker -> coordinator
//     {"t":"hello","proto":1,"worker":"w0","pid":4242}
//     {"t":"heartbeat","clip":"c","rule":"RULE3"}
//     {"t":"result","clip":...,<full BatchRow fields, see toJsonLine>}
//     {"t":"nack","clip":"c","rule":"RULE3","error":"unavailable",
//      "message":"..."}
//   coordinator -> worker
//     {"t":"lease","clip":"c","rule":"RULE3","leaseSec":5,"attempt":1,
//      "traceId":"9f3a6c01d2e4b875","parentSpan":42}  (optional, together:
//            cross-process trace context -- obs/trace.h -- so the worker's
//            fleet.task span stitches under the coordinator's grant span)
//     {"t":"shutdown"}
//
// Decoding is torn-line tolerant by construction (common/jsonl.h): any line
// that fails to decode is reported as kGarbled, and the coordinator treats
// garbled input as a failure-detection signal, never a fatal error — the
// lease machinery recovers the task.
#pragma once

#include <string>

#include "harness/batch_runner.h"

namespace optr::harness {

/// Protocol version spoken by this build; the coordinator refuses workers
/// that hello with a different version (mixed-build fleets would corrupt
/// the equivalence contract silently).
inline constexpr int kSweepProtocolVersion = 1;

enum class MsgType : std::uint8_t {
  kHello = 0,
  kLease,
  kHeartbeat,
  kResult,
  kNack,
  kShutdown,
  /// Decode failure: not a message type on the wire, but what decode()
  /// reports for a line that is truncated, corrupt, or unknown.
  kGarbled,
  kNumTypes,
};

const char* toString(MsgType t);

/// One decoded protocol line. Only the fields of the given type are
/// meaningful; the rest keep their defaults.
struct SweepMessage {
  MsgType type = MsgType::kGarbled;
  // kHello
  int protoVersion = 0;
  std::string workerId;
  int pid = 0;
  // kLease / kHeartbeat / kNack (task identity)
  std::string clipId;
  std::string ruleName;
  // kLease
  double leaseSec = 0.0;
  int attempt = 0;
  /// Optional cross-process trace context (obs/trace.h); empty/0 = none.
  std::string traceId;
  std::uint64_t parentSpan = 0;
  // kNack
  ErrorCode errorCode = ErrorCode::kOk;
  std::string message;
  // kResult
  BatchRow row;

  std::string taskKey() const { return clipId + "\x1f" + ruleName; }
};

std::string encodeHello(const std::string& workerId, int pid);
std::string encodeLease(const std::string& clipId, const std::string& ruleName,
                        double leaseSec, int attempt,
                        const std::string& traceId = {},
                        std::uint64_t parentSpan = 0);
std::string encodeHeartbeat(const std::string& clipId,
                            const std::string& ruleName);
std::string encodeResult(const BatchRow& row);
std::string encodeNack(const std::string& clipId, const std::string& ruleName,
                       ErrorCode code, const std::string& message);
std::string encodeShutdown();

/// Decodes one line (without the trailing '\n'). Never throws and never
/// fails hard: anything undecodable comes back as type kGarbled.
SweepMessage decodeMessage(const std::string& line);

}  // namespace optr::harness
