// Batch sweep harness: runs a clip x rule matrix through OptRouter with the
// per-clip isolation a long evaluation needs to survive.
//
// Robustness contract (the reason this layer exists -- see
// docs/ROBUSTNESS.md):
//   * one failed clip yields a recorded error row, never an aborted batch:
//     by default each task runs in a forked worker, so even an abort() or a
//     segfault inside the solver stack is contained and recorded;
//   * a wall-clock watchdog kills a wedged task and records kDeadline;
//   * every finished row is appended to a JSON-lines checkpoint file as it
//     completes, so a killed sweep restarts where it stopped: tasks already
//     in the checkpoint are loaded, not re-run, and the resumed run's final
//     result set equals an uninterrupted run's (solves are deterministic).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "clip/clip.h"
#include "common/status.h"
#include "core/clip_session.h"
#include "core/opt_router.h"
#include "core/session_pool.h"
#include "tech/rules.h"

namespace optr::harness {

struct BatchOptions {
  core::OptRouterOptions router;
  /// Wall-clock budget per task enforced by the parent (isolated mode) or
  /// checked between tasks (inline mode). <= 0 derives a generous envelope
  /// from the MIP time limit.
  double taskTimeoutSec = 0.0;
  /// Fork one worker per task (POSIX). Disable to run in-process -- faster
  /// startup, but a crashing clip then takes the batch down with it.
  bool isolateTasks = true;
  /// Worker threads for in-process execution (isolateTasks == false). Tasks
  /// are independent; rows keep task order and checkpoint/resume semantics
  /// are unchanged. Ignored in fork-isolation mode: forking from a
  /// multithreaded parent is hazardous (the child inherits locked allocator
  /// state), so isolated sweeps stay serial -- crash containment and speed
  /// are an explicit trade-off, not a free combination.
  int threads = 1;
  /// Reuse core::ClipSessions on the in-process paths: the routing graph
  /// and base ILP are built once per clip and each rule becomes a cheap
  /// overlay plus a cross-rule warm start. Sessions live in a shared
  /// core::SessionPool keyed by clip content, so pool workers interleaving
  /// clips still hit (the old scheme was one worker-local session each).
  /// Results are equivalent to the rebuild path (gated by bench_sweep).
  /// Fork isolation ignores this: each forked worker is a fresh process, so
  /// there is no base model to carry over (crash containment keeps the
  /// rebuild path).
  bool sessionReuse = true;
  /// Idle sessions the shared pool retains. 0 = auto (threads + 1, so every
  /// worker's current clip stays resident plus one for handoff overlap).
  std::size_t sessionPoolCapacity = 0;
  /// JSON-lines checkpoint path; empty disables checkpoint/resume.
  std::string checkpointPath;
  /// Stop (gracefully) after this many *newly executed* tasks; < 0 runs all.
  /// Lets callers shard a sweep or tests exercise the resume path.
  int stopAfter = -1;
  /// Test hook, called in the worker before the solve (crash injection).
  std::function<void(const std::string& clipId, const std::string& ruleName)>
      preSolveHook;
};

/// One clip x rule outcome. `errorCode`/`errorMessage` mirror
/// RouteResult::error; rows for crashed or watchdog-killed workers carry
/// kCrash / kDeadline and no solution fields.
struct BatchRow {
  std::string clipId;
  std::string ruleName;
  core::RouteStatus status = core::RouteStatus::kError;
  core::Provenance provenance = core::Provenance::kNone;
  ErrorCode errorCode = ErrorCode::kOk;
  std::string errorMessage;
  double cost = 0.0;
  int wirelength = 0;
  int vias = 0;
  double bestBound = 0.0;
  double seconds = 0.0;
  std::int64_t nodes = 0;          // branch-and-bound nodes explored
  std::int64_t lpIterations = 0;   // simplex pivots across all nodes
  bool warmStartUsed = false;      // an incumbent seeded the MIP
  bool crashed = false;  // isolation caught a worker death

  std::string key() const { return clipId + "\x1f" + ruleName; }
};

/// Serialization used for both the checkpoint file and the worker pipe.
std::string toJsonLine(const BatchRow& row);
/// Parses one checkpoint line; false on malformed input (the loader skips
/// such lines -- e.g. a row truncated by the kill that the resume recovers
/// from).
bool fromJsonLine(const std::string& line, BatchRow& row);

struct BatchReport {
  std::vector<BatchRow> rows;  // task order: clips outer, rules inner
  int executed = 0;            // tasks run in this invocation
  int resumed = 0;             // tasks loaded from the checkpoint
  int crashed = 0;             // workers that died (contained)
  int timedOut = 0;            // workers the watchdog killed
  /// Checkpoint lines skipped on load (torn final line from a mid-write
  /// kill, or otherwise malformed); the affected tasks simply re-ran.
  int checkpointSkipped = 0;
  bool stoppedEarly = false;   // stopAfter kicked in
  /// A stop signal (SIGTERM/SIGINT via common/stop_signal.h) arrived
  /// mid-batch: in-flight tasks finished and were checkpointed, the rest
  /// were not started. Rerunning with the same checkpoint resumes cleanly.
  bool interrupted = false;

  /// Rows per provenance rung, for regression-visible degradation counts.
  std::array<int, 4> provenanceCounts() const;
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {});

  /// Runs the full clip x rule matrix. Technologies are resolved per clip
  /// from Clip::techName; an unknown name yields a kUnavailable error row.
  BatchReport run(const std::vector<clip::Clip>& clips,
                  const std::vector<tech::RuleConfig>& rules);

 private:
  /// `pool` is null on the rebuild paths (fork workers, sessionReuse off);
  /// `universe` is the rule set pooled sessions are built over.
  BatchRow runInline(const clip::Clip& clip, const tech::RuleConfig& rule,
                     core::SessionPool* pool,
                     const std::vector<tech::RuleConfig>* universe) const;
  BatchRow runIsolated(const clip::Clip& clip, const tech::RuleConfig& rule,
                       double timeoutSec) const;

  BatchOptions options_;
  // Span id of the active batch.run, parenting batch.task spans explicitly:
  // pool threads have no implicit parent stack, and fork children inherit a
  // stale one. 0 outside run().
  std::uint64_t runSpanId_ = 0;
};

}  // namespace optr::harness
