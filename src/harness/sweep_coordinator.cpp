#include "harness/sweep_coordinator.h"

#if !defined(_WIN32)

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"
#include "common/line_io.h"
#include "harness/checkpoint_io.h"
#include "harness/lease_table.h"
#include "harness/sweep_protocol.h"
#include "harness/sweep_worker.h"
#include "obs/live_export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace optr::harness {

namespace {

using common::writeLine;  // shared framing, common/line_io.h

struct WorkerSlot {
  int rfd = -1, wfd = -1;  // equal for socketpair spawns
  pid_t pid = -1;
  bool alive = false;
  bool ready = false;  // hello received for the current generation
  bool busy = false;   // holds a lease
  std::string taskKey;
  int generation = 0;  // spawn count for this slot
  common::LineSplitter splitter;  // partial protocol lines
  common::RetryPolicy respawn;
  double respawnAt = 0.0;
  bool retired = false;  // respawn budget spent (or protocol refusal)

  explicit WorkerSlot(common::RetryPolicy policy)
      : respawn(std::move(policy)) {}
};

/// One coordinator run's state + event loop. A plain struct so run() reads
/// top-to-bottom; lives entirely on SweepCoordinator::run's stack.
struct Fleet {
  const SweepCoordinatorOptions& options;
  const std::vector<clip::Clip>& clips;
  const std::vector<tech::RuleConfig>& rules;
  FleetReport report;
  LeaseTable lease;
  std::vector<WorkerSlot> slots;
  std::FILE* checkpoint = nullptr;
  double heartbeatSec;
  bool draining = false;  // shutdown phase: deaths are expected exits
  optr::Rng chaosRng;
  obs::LiveMetricsExporter exporter;
  double lastPulse = 0.0;
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();

  Fleet(const SweepCoordinatorOptions& opts,
        const std::vector<clip::Clip>& c,
        const std::vector<tech::RuleConfig>& r, LeaseOptions leaseOpts)
      : options(opts),
        clips(c),
        rules(r),
        lease(leaseOpts),
        heartbeatSec(opts.heartbeatSec > 0.0
                         ? opts.heartbeatSec
                         : std::max(0.05, opts.leaseSec / 4.0)),
        chaosRng(opts.chaosSeed),
        exporter({opts.metricsOutPath, opts.telemetryIntervalSec}) {}

  double now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  }

  void appendCheckpoint(const BatchRow& row) {
    if (!checkpoint) return;
    std::fprintf(checkpoint, "%s\n", toJsonLine(row).c_str());
    std::fflush(checkpoint);
  }

  // ---- startup: checkpoint merge ---------------------------------------

  void resumeFromCheckpoints() {
    if (options.checkpointPath.empty()) return;
    std::unordered_map<std::string, BatchRow> done;
    CheckpointLoadStats mainStats =
        loadCheckpoint(options.checkpointPath, done);
    report.checkpointSkipped += mainStats.skipped();
    std::unordered_set<std::string> inMain;
    inMain.reserve(done.size());
    for (const auto& [key, row] : done) inMain.insert(key);
    for (const std::string& wf : listWorkerCheckpoints(options.checkpointPath)) {
      CheckpointLoadStats s = loadCheckpoint(wf, done);
      report.checkpointSkipped += s.skipped();
    }
    checkpoint = std::fopen(options.checkpointPath.c_str(), "a");
    if (!checkpoint) {
      report.status = Status::error(
          ErrorCode::kIo,
          "cannot open checkpoint " + options.checkpointPath);
    }
    for (const auto& [key, row] : done) {
      if (!lease.markResumed(row)) continue;
      ++report.resumed;
      if (!inMain.count(key)) {
        // A predecessor's worker proved this row but died before the merge:
        // fold it into the main checkpoint now so the recovery is durable.
        appendCheckpoint(row);
        ++report.recoveredFromWorkerFiles;
        obs::event("fleet.checkpoint.recovered", key);
      }
    }
    if (report.resumed > 0) {
      obs::metrics().counter("fleet.tasks.resumed").add(report.resumed);
    }
  }

  // ---- worker lifecycle ------------------------------------------------

  void closeAllSlotFdsInChild() {
    for (WorkerSlot& s : slots) {
      if (s.rfd >= 0) close(s.rfd);
      if (s.wfd >= 0 && s.wfd != s.rfd) close(s.wfd);
    }
  }

  bool spawn(int slotIdx) {
    WorkerSlot& s = slots[static_cast<std::size_t>(slotIdx)];
    return options.workerCommand.empty() ? spawnFork(slotIdx, s)
                                         : spawnCommand(slotIdx, s);
  }

  bool spawnFork(int slotIdx, WorkerSlot& s) {
    int sv[2];
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      s.retired = true;
      return false;
    }
    // Drain the trace rings before fork so the child's inherited copies are
    // empty; the child re-bases span ids on its pid (same protocol as
    // BatchRunner's fork isolation).
    obs::TraceSession::flushAll();
    pid_t pid = fork();
    if (pid < 0) {
      close(sv[0]);
      close(sv[1]);
      s.retired = true;
      return false;
    }
    if (pid == 0) {
      close(sv[0]);
      // Inherited copies of other workers' sockets would hold their write
      // ends open and mask their EOFs from the coordinator.
      closeAllSlotFdsInChild();
      obs::TraceSession::onFork(static_cast<std::uint64_t>(getpid()) << 32);
      if (options.workerInitHook) {
        options.workerInitHook(slotIdx, s.generation);
      }
      SweepWorkerOptions wo;
      wo.router = options.router;
      wo.workerId = "w" + std::to_string(slotIdx);
      if (!options.checkpointPath.empty()) {
        wo.checkpointPath =
            workerCheckpointPath(options.checkpointPath, slotIdx);
      }
      wo.heartbeatSec = heartbeatSec;
      SweepWorker worker(std::move(wo));
      worker.serve(sv[1], sv[1], clips, rules);
      obs::TraceSession::flushAll();
      obs::TraceSession::emitThreadDrops();  // child never runs stop()
      _exit(0);
    }
    close(sv[1]);
    s.rfd = s.wfd = sv[0];
    onSpawned(slotIdx, s, pid);
    return true;
  }

  bool spawnCommand(int slotIdx, WorkerSlot& s) {
    int toChild[2], fromChild[2];
    if (pipe(toChild) != 0) {
      s.retired = true;
      return false;
    }
    if (pipe(fromChild) != 0) {
      close(toChild[0]);
      close(toChild[1]);
      s.retired = true;
      return false;
    }
    obs::TraceSession::flushAll();
    pid_t pid = fork();
    if (pid < 0) {
      close(toChild[0]);
      close(toChild[1]);
      close(fromChild[0]);
      close(fromChild[1]);
      s.retired = true;
      return false;
    }
    if (pid == 0) {
      dup2(toChild[0], 0);
      dup2(fromChild[1], 1);
      close(toChild[0]);
      close(toChild[1]);
      close(fromChild[0]);
      close(fromChild[1]);
      closeAllSlotFdsInChild();
      setenv("OPTR_SWEEP_SLOT", std::to_string(slotIdx).c_str(), 1);
      setenv("OPTR_SWEEP_GEN", std::to_string(s.generation).c_str(), 1);
      execl("/bin/sh", "sh", "-c", options.workerCommand.c_str(),
            static_cast<char*>(nullptr));
      _exit(127);
    }
    close(toChild[0]);
    close(fromChild[1]);
    s.rfd = fromChild[0];
    s.wfd = toChild[1];
    onSpawned(slotIdx, s, pid);
    return true;
  }

  void onSpawned(int slotIdx, WorkerSlot& s, pid_t pid) {
    s.pid = pid;
    s.alive = true;
    s.ready = false;
    s.busy = false;
    s.taskKey.clear();
    s.splitter = common::LineSplitter();
    ++s.generation;
    ++report.workersSpawned;
    obs::metrics().counter("fleet.worker.spawned").add();
    obs::event("fleet.worker.spawn", "slot " + std::to_string(slotIdx),
               {{"gen", static_cast<double>(s.generation)}});
  }

  void closeSlot(WorkerSlot& s) {
    if (s.rfd >= 0) close(s.rfd);
    if (s.wfd >= 0 && s.wfd != s.rfd) close(s.wfd);
    s.rfd = s.wfd = -1;
  }

  void reap(WorkerSlot& s) {
    int st = 0;
    while (waitpid(s.pid, &st, 0) < 0 && errno == EINTR) {
    }
    s.alive = false;
    s.ready = false;
    s.busy = false;
    s.taskKey.clear();
  }

  /// fd EOF / read error: the worker process is gone.
  void onWorkerDeath(int slotIdx, double tnow) {
    WorkerSlot& s = slots[static_cast<std::size_t>(slotIdx)];
    if (!s.alive) return;
    closeSlot(s);
    reap(s);
    if (draining) return;  // expected exit during shutdown
    ++report.workerDeaths;
    obs::metrics().counter("fleet.worker.deaths").add();
    obs::event("fleet.worker.death", "slot " + std::to_string(slotIdx));
    for (const ExpiredLease& ex : lease.releaseWorker(slotIdx)) {
      handleQuarantine(ex);
    }
    if (s.retired) return;  // e.g. protocol refusal: do not respawn
    if (std::optional<double> delay = s.respawn.nextDelaySec(tnow)) {
      s.respawnAt = tnow + *delay;
      obs::event("fleet.worker.respawn_scheduled",
                 "slot " + std::to_string(slotIdx),
                 {{"delaySec", *delay}});
    } else {
      s.retired = true;
      obs::event("fleet.worker.retired", "slot " + std::to_string(slotIdx));
    }
  }

  // ---- lease bookkeeping -----------------------------------------------

  void handleQuarantine(const ExpiredLease& ex) {
    if (!ex.quarantined) return;
    ++report.quarantined;
    obs::metrics().counter("fleet.tasks.quarantined").add();
    obs::event("fleet.task.quarantined", ex.key);
    if (const BatchRow* row = lease.settledRow(ex.key)) {
      appendCheckpoint(*row);
    }
  }

  void grantTo(int slotIdx, double tnow) {
    WorkerSlot& s = slots[static_cast<std::size_t>(slotIdx)];
    if (draining || !s.alive || !s.ready || s.busy) return;
    LeaseGrant g;
    if (!lease.grant(slotIdx, tnow, g)) return;
    ++report.leasesGranted;
    obs::metrics().counter("fleet.leases.granted").add();
    if (g.attempt > 1) {
      ++report.leasesReassigned;
      obs::metrics().counter("fleet.leases.reassigned").add();
      obs::event("fleet.lease.reassigned", g.clipId + "|" + g.ruleName,
                 {{"attempt", static_cast<double>(g.attempt)}});
    }
    s.busy = true;
    s.taskKey = g.key();
    // Cross-process trace context: a short fleet.grant span marks the
    // grant in the coordinator's tree; its minted context rides the lease
    // frame so the worker's fleet.task span stitches under it. snprintf
    // formats the id exactly like the span's own "trace" wire field.
    std::string traceId;
    std::uint64_t parentSpan = 0;
    if (options.propagateTrace) {
      obs::Span grant("fleet.grant");
      grant.detail(g.clipId + "|" + g.ruleName);
      grant.arg("attempt", static_cast<double>(g.attempt));
      obs::TraceContext ctx = grant.mintContext();
      if (ctx.valid()) {
        char hex[17];
        std::snprintf(hex, sizeof hex, "%016llx",
                      static_cast<unsigned long long>(ctx.traceId));
        traceId = hex;
        parentSpan = ctx.spanId;
      }
    }
    // A write to a just-died worker fails (SIGPIPE ignored); the EOF path
    // will release the lease and the task re-queues -- nothing to do here.
    (void)writeLine(s.wfd,
                    encodeLease(g.clipId, g.ruleName, options.leaseSec,
                                g.attempt, traceId, parentSpan));
  }

  void onLine(int slotIdx, const std::string& line, double tnow) {
    WorkerSlot& s = slots[static_cast<std::size_t>(slotIdx)];
    SweepMessage msg = decodeMessage(line);
    switch (msg.type) {
      case MsgType::kHello:
        if (msg.protoVersion != kSweepProtocolVersion) {
          // A mixed-build fleet would corrupt the equivalence contract
          // silently; refuse the worker and retire the slot.
          obs::event("fleet.protocol.version_mismatch",
                     msg.workerId + " proto " +
                         std::to_string(msg.protoVersion));
          s.retired = true;
          (void)writeLine(s.wfd, encodeShutdown());
          return;
        }
        s.ready = true;
        grantTo(slotIdx, tnow);
        return;
      case MsgType::kHeartbeat:
        lease.heartbeat(msg.taskKey(), slotIdx, tnow);
        return;
      case MsgType::kResult: {
        ResultOutcome oc = lease.complete(msg.taskKey(), slotIdx, msg.row);
        switch (oc) {
          case ResultOutcome::kAccepted:
          case ResultOutcome::kAcceptedStale:
            if (oc == ResultOutcome::kAcceptedStale) {
              ++report.staleResults;
              obs::metrics().counter("fleet.results.stale").add();
              obs::event("fleet.result.stale", msg.taskKey());
            }
            ++report.executed;
            appendCheckpoint(msg.row);
            obs::metrics().counter("fleet.results.accepted").add();
            obs::metrics()
                .histogram("fleet.task.attempts")
                .record(lease.attempts(msg.taskKey()));
            // Completing a task proves the slot healthy again; it earns a
            // fresh respawn budget.
            s.respawn.reset();
            break;
          case ResultOutcome::kDuplicate:
            ++report.duplicateResults;
            obs::metrics().counter("fleet.results.duplicate").add();
            obs::event("fleet.result.duplicate", msg.taskKey());
            break;
          case ResultOutcome::kUnknownTask:
            obs::event("fleet.result.unknown_task", msg.taskKey());
            break;
        }
        s.busy = false;
        s.taskKey.clear();
        grantTo(slotIdx, tnow);
        return;
      }
      case MsgType::kNack: {
        ExpiredLease ex =
            lease.nack(msg.taskKey(), slotIdx, msg.errorCode, msg.message);
        ++report.nacks;
        obs::metrics().counter("fleet.results.nack").add();
        obs::event("fleet.result.nack", msg.taskKey());
        handleQuarantine(ex);
        s.busy = false;
        s.taskKey.clear();
        grantTo(slotIdx, tnow);
        return;
      }
      case MsgType::kGarbled:
        // Undecodable line: count it and let the failure detector recover.
        // If this was a torn result, the worker is now idle and silent, its
        // heartbeat deadline passes, and the lease machinery reclaims both
        // the task and the worker.
        ++report.garbledMessages;
        obs::metrics().counter("fleet.protocol.garbled").add();
        obs::event("fleet.protocol.garbled",
                   line.substr(0, std::min<std::size_t>(line.size(), 60)));
        return;
      default:
        return;  // lease/shutdown echoed back: tolerate chatter
    }
  }

  void onReadable(int slotIdx, double tnow) {
    WorkerSlot& s = slots[static_cast<std::size_t>(slotIdx)];
    char chunk[8192];
    ssize_t n = read(s.rfd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) return;
    if (n <= 0) {
      onWorkerDeath(slotIdx, tnow);
      return;
    }
    s.splitter.feed(chunk, static_cast<std::size_t>(n));
    std::string line;
    while (s.splitter.next(line)) {
      if (!line.empty()) onLine(slotIdx, line, tnow);
      if (!slots[static_cast<std::size_t>(slotIdx)].alive) return;
    }
  }

  // ---- event loop ------------------------------------------------------

  void tick() {
    double tnow = now();

    // Telemetry cadence, busy or idle: periodic metrics rows (atomic
    // rename; a SIGKILL'd coordinator still leaves the file) plus a
    // trace-ring pulse so spans and drop accounting reach the trace file
    // while the fleet is still running, not only at task boundaries.
    exporter.tick();
    if (tnow - lastPulse >= options.telemetryIntervalSec) {
      obs::TraceSession::pulse();
      lastPulse = tnow;
    }

    for (std::size_t i = 0; i < slots.size(); ++i) {
      WorkerSlot& s = slots[i];
      if (!s.alive && !s.retired && tnow >= s.respawnAt) {
        spawn(static_cast<int>(i));
      }
    }

    std::vector<pollfd> fds;
    std::vector<int> fdSlot;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (!slots[i].alive) continue;
      fds.push_back({slots[i].rfd, POLLIN, 0});
      fdSlot.push_back(static_cast<int>(i));
    }
    if (fds.empty()) {
      // Whole fleet waiting on respawn backoff: idle instead of spinning.
      poll(nullptr, 0, 10);
      return;
    }
    int rc = poll(fds.data(), fds.size(), 50);
    if (rc < 0) return;  // EINTR: just take another tick
    tnow = now();
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        onReadable(fdSlot[i], tnow);
      }
    }

    // Failure detection: sweep every live lease against its deadlines. The
    // worker behind an expired lease is hung, partitioned, or lying --
    // SIGKILL it; the EOF path handles release + respawn.
    for (const ExpiredLease& ex : lease.expire(tnow)) {
      ++report.leasesExpired;
      obs::metrics().counter("fleet.leases.expired").add();
      obs::event("fleet.lease.expired", ex.key + " " + toString(ex.reason));
      handleQuarantine(ex);
      if (ex.workerSlot >= 0 &&
          slots[static_cast<std::size_t>(ex.workerSlot)].alive) {
        kill(slots[static_cast<std::size_t>(ex.workerSlot)].pid, SIGKILL);
      }
    }

    // Chaos: murder a random busy worker mid-solve.
    if (options.chaosKillProb > 0.0 && report.chaosKills < options.chaosMaxKills &&
        chaosRng.chance(options.chaosKillProb)) {
      std::vector<int> busy;
      for (std::size_t i = 0; i < slots.size(); ++i) {
        if (slots[i].alive && slots[i].busy) busy.push_back(static_cast<int>(i));
      }
      if (!busy.empty()) {
        int victim = busy[chaosRng.uniform(busy.size())];
        ++report.chaosKills;
        obs::event("fleet.chaos.kill", "slot " + std::to_string(victim));
        kill(slots[static_cast<std::size_t>(victim)].pid, SIGKILL);
      }
    }

    for (std::size_t i = 0; i < slots.size(); ++i) {
      grantTo(static_cast<int>(i), tnow);
    }
  }

  /// True while the run should keep ticking.
  bool live() {
    if (options.stopAfterResults >= 0 &&
        report.executed >= options.stopAfterResults) {
      report.stoppedEarly = true;
      return false;
    }
    if (lease.allSettled()) return false;
    bool anyViable = false;
    for (const WorkerSlot& s : slots) {
      if (s.alive || !s.retired) {
        anyViable = true;
        break;
      }
    }
    if (!anyViable) {
      // Every slot retired with work outstanding: quarantine the remainder
      // as honest error rows instead of wedging or silently dropping them.
      for (const std::string& key : lease.quarantineAllPending(
               ErrorCode::kUnavailable,
               "worker fleet exhausted (respawn budget spent)")) {
        ++report.quarantined;
        obs::metrics().counter("fleet.tasks.quarantined").add();
        if (const BatchRow* row = lease.settledRow(key)) {
          appendCheckpoint(*row);
        }
      }
      report.status = Status::error(
          ErrorCode::kUnavailable,
          "fleet exhausted before completing the sweep");
      return false;
    }
    return true;
  }

  void teardown() {
    draining = true;
    bool crashStop = report.stoppedEarly;
    for (WorkerSlot& s : slots) {
      if (!s.alive) continue;
      if (crashStop) {
        // Simulated coordinator crash: no goodbye, exactly what a real
        // coordinator death looks like to the workers.
        kill(s.pid, SIGKILL);
      } else {
        (void)writeLine(s.wfd, encodeShutdown());
      }
    }
    double deadline = now() + 5.0;
    for (;;) {
      std::vector<pollfd> fds;
      std::vector<int> fdSlot;
      for (std::size_t i = 0; i < slots.size(); ++i) {
        if (!slots[i].alive) continue;
        fds.push_back({slots[i].rfd, POLLIN, 0});
        fdSlot.push_back(static_cast<int>(i));
      }
      if (fds.empty()) break;
      if (now() >= deadline) {
        for (int idx : fdSlot) {
          kill(slots[static_cast<std::size_t>(idx)].pid, SIGKILL);
        }
      }
      int rc = poll(fds.data(), fds.size(), 50);
      if (rc < 0) continue;
      double tnow = now();
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
          onReadable(fdSlot[i], tnow);  // drains to EOF -> onWorkerDeath
        }
      }
    }
    if (checkpoint) std::fclose(checkpoint);
    checkpoint = nullptr;
  }
};

}  // namespace

SweepCoordinator::SweepCoordinator(SweepCoordinatorOptions options)
    : options_(std::move(options)) {}

FleetReport SweepCoordinator::run(const std::vector<clip::Clip>& clips,
                                  const std::vector<tech::RuleConfig>& rules) {
  LeaseOptions leaseOpts;
  leaseOpts.leaseSec = options_.leaseSec;
  // Same watchdog envelope BatchRunner derives: a solve that honors its MIP
  // deadline finishes well inside it.
  leaseOpts.taskTimeoutSec =
      options_.taskTimeoutSec > 0
          ? options_.taskTimeoutSec
          : options_.router.mip.timeLimitSec * 3.0 + 10.0;
  leaseOpts.maxAttempts = options_.maxAttempts;

  Fleet fleet(options_, clips, rules, leaseOpts);
  for (const clip::Clip& clip : clips) {
    for (const tech::RuleConfig& rule : rules) {
      fleet.lease.addTask(clip.id, rule.name);
    }
  }

  obs::Span span("fleet.run");
  span.detail(std::to_string(options_.workers) + " workers, " +
              std::to_string(fleet.lease.total()) + " tasks");

  fleet.resumeFromCheckpoints();

  // Dead-worker writes must come back as EPIPE errors, not process death.
  struct sigaction ign {};
  struct sigaction old {};
  ign.sa_handler = SIG_IGN;
  sigaction(SIGPIPE, &ign, &old);

  int workers = std::max(1, options_.workers);
  fleet.slots.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    fleet.slots.emplace_back(common::RetryPolicy(
        options_.respawn,
        options_.respawnSeed ^ (0x9e3779b97f4a7c15ULL * (i + 1))));
  }
  if (!fleet.lease.allSettled()) {
    for (int i = 0; i < workers; ++i) fleet.spawn(i);
    while (fleet.live()) fleet.tick();
  }
  fleet.teardown();
  fleet.exporter.finalRow();
  obs::TraceSession::pulse();

  sigaction(SIGPIPE, &old, nullptr);

  fleet.report.rows = fleet.lease.rows();
  return fleet.report;
}

}  // namespace optr::harness

#else  // _WIN32

namespace optr::harness {

SweepCoordinator::SweepCoordinator(SweepCoordinatorOptions options)
    : options_(std::move(options)) {}

FleetReport SweepCoordinator::run(const std::vector<clip::Clip>&,
                                  const std::vector<tech::RuleConfig>&) {
  FleetReport report;
  report.status = Status::error(
      ErrorCode::kUnavailable,
      "sweep coordinator requires POSIX (fork/poll/socketpair)");
  return report;
}

}  // namespace optr::harness

#endif
