#include "harness/sweep_worker.h"

#if !defined(_WIN32)

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/fault_injection.h"
#include "common/line_io.h"
#include "harness/batch_runner.h"
#include "harness/sweep_protocol.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tech/technology.h"

namespace optr::harness {

namespace {

// Framing (writeLine / LineReader) lives in common/line_io.h, shared with
// the routing service. writeLine calls are serialized by the caller's mutex
// (solve thread + heartbeat thread).
using common::writeLine;
using common::LineReader;

/// Periodic heartbeat sender, alive for the duration of one solve. The
/// kDroppedHeartbeat site swallows individual beats (each owed beat is one
/// probe), which is how tests starve the coordinator's failure detector
/// without touching the solve.
class HeartbeatPump {
 public:
  HeartbeatPump(int fd, std::mutex& writeMu, const std::string& clipId,
                const std::string& ruleName, double periodSec)
      : fd_(fd), writeMu_(writeMu) {
    std::string beat = encodeHeartbeat(clipId, ruleName);
    thread_ = std::thread([this, beat, periodSec] {
      std::unique_lock<std::mutex> lk(mu_);
      for (;;) {
        if (cv_.wait_for(lk, std::chrono::duration<double>(periodSec),
                         [this] { return stop_; })) {
          return;
        }
        if (fault::fire(fault::Site::kDroppedHeartbeat)) continue;
        std::lock_guard<std::mutex> wl(writeMu_);
        (void)writeLine(fd_, beat);
      }
    });
  }

  ~HeartbeatPump() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  int fd_;
  std::mutex& writeMu_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

SweepWorker::SweepWorker(SweepWorkerOptions options)
    : options_(std::move(options)) {}

Status SweepWorker::serve(int inFd, int outFd,
                          const std::vector<clip::Clip>& clips,
                          const std::vector<tech::RuleConfig>& rules) {
  // A write after the coordinator dies must fail with EPIPE (handled as
  // "coordinator gone"), not kill the process mid-checkpoint.
  signal(SIGPIPE, SIG_IGN);

  std::mutex writeMu;
  LineReader reader(inFd);

  {
    std::lock_guard<std::mutex> lk(writeMu);
    if (!writeLine(outFd, encodeHello(options_.workerId,
                                      static_cast<int>(getpid())))) {
      return Status::error(ErrorCode::kIo, "sweep worker: hello write failed");
    }
  }

  std::FILE* checkpoint = nullptr;
  if (!options_.checkpointPath.empty()) {
    checkpoint = std::fopen(options_.checkpointPath.c_str(), "a");
    if (!checkpoint) {
      return Status::error(ErrorCode::kIo,
                           "sweep worker: cannot open checkpoint " +
                               options_.checkpointPath);
    }
  }

  std::string line;
  while (reader.next(line)) {
    SweepMessage msg = decodeMessage(line);
    if (msg.type == MsgType::kShutdown) break;
    if (msg.type != MsgType::kLease) continue;  // tolerate chatter

    // Chaos: a crashing worker dies the instant it is trusted with work --
    // the worst moment for the coordinator. Flush the trace first so the
    // fault.fired event survives to prove injection -> recovery causality.
    if (fault::fire(fault::Site::kWorkerCrash)) {
      obs::TraceSession::flushAll();
      if (checkpoint) std::fclose(checkpoint);
      _exit(17);
    }

    const clip::Clip* clip = nullptr;
    for (const clip::Clip& c : clips) {
      if (c.id == msg.clipId) {
        clip = &c;
        break;
      }
    }
    const tech::RuleConfig* rule = nullptr;
    for (const tech::RuleConfig& rc : rules) {
      if (rc.name == msg.ruleName) {
        rule = &rc;
        break;
      }
    }
    if (!clip || !rule) {
      std::lock_guard<std::mutex> lk(writeMu);
      writeLine(outFd,
                encodeNack(msg.clipId, msg.ruleName, ErrorCode::kUnavailable,
                           !clip ? "unknown clip id" : "unknown rule"));
      continue;
    }

    BatchRow row;
    row.clipId = clip->id;
    row.ruleName = rule->name;
    {
      // Remote parent from the lease frame (coordinator's fleet.grant
      // span), so merged traces stitch this task under the coordinator's
      // tree. Malformed context degrades to a plain span.
      obs::TraceContext ctx;
      if (!msg.traceId.empty() && msg.parentSpan != 0) {
        char* end = nullptr;
        ctx.traceId = std::strtoull(msg.traceId.c_str(), &end, 16);
        if (end == nullptr || *end != '\0') ctx.traceId = 0;
        ctx.spanId = msg.parentSpan;
      }
      obs::Span span("fleet.task", ctx);
      span.detail(clip->id + "|" + rule->name);
      HeartbeatPump pump(outFd, writeMu, clip->id, rule->name,
                         options_.heartbeatSec);

      // Chaos: a hung worker keeps heartbeating but never answers; only the
      // coordinator's hard task deadline can reclaim the lease. Sleep until
      // killed (SIGKILL from the coordinator ends the process).
      if (fault::fire(fault::Site::kWorkerHang)) {
        obs::TraceSession::flushAll();
        for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
      }

      auto techOr = tech::Technology::byName(clip->techName);
      if (!techOr.isOk()) {
        row.errorCode = techOr.status().code();
        row.errorMessage = techOr.status().message();
      } else {
        auto start = std::chrono::steady_clock::now();
        core::OptRouter router(techOr.value(), *rule, options_.router);
        core::RouteResult res = router.route(*clip);
        row.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
        row.status = res.status;
        row.provenance = res.provenance;
        row.errorCode = res.error.code();
        row.errorMessage = res.error.message();
        row.cost = res.cost;
        row.wirelength = res.wirelength;
        row.vias = res.vias;
        row.bestBound = res.bestBound;
        row.nodes = res.nodes;
        row.lpIterations = res.lpIterations;
        row.warmStartUsed = res.warmStartUsed;
      }
    }  // heartbeat pump stops before the result goes out

    // Durability order: own checkpoint first, wire second. A coordinator
    // that dies after our fflush but before its merge recovers this row
    // from the worker file instead of re-solving.
    if (checkpoint) {
      std::fprintf(checkpoint, "%s\n", toJsonLine(row).c_str());
      std::fflush(checkpoint);
    }

    std::string result = encodeResult(row);
    if (fault::fire(fault::Site::kGarbledMessage)) {
      result = result.substr(0, result.size() / 2);  // torn on the wire
    }
    {
      std::lock_guard<std::mutex> lk(writeMu);
      if (!writeLine(outFd, result)) break;  // coordinator gone
    }
    obs::TraceSession::flushAll();  // task boundary: ship spans while alive
  }

  if (checkpoint) std::fclose(checkpoint);
  return Status::ok();
}

}  // namespace optr::harness

#else  // _WIN32: the fleet needs fork/poll; the worker compiles to a stub.

namespace optr::harness {

SweepWorker::SweepWorker(SweepWorkerOptions options)
    : options_(std::move(options)) {}

Status SweepWorker::serve(int, int, const std::vector<clip::Clip>&,
                          const std::vector<tech::RuleConfig>&) {
  return Status::error(ErrorCode::kUnavailable,
                       "sweep worker requires POSIX (fork/poll)");
}

}  // namespace optr::harness

#endif
