#include "harness/lease_table.h"

#include <sstream>

#include "common/status.h"

namespace optr::harness {

const char* toString(TaskState s) {
  switch (s) {
    case TaskState::kPending: return "pending";
    case TaskState::kLeased: return "leased";
    case TaskState::kDone: return "done";
    case TaskState::kQuarantined: return "quarantined";
  }
  return "?";
}

const char* toString(LeaseFailure f) {
  switch (f) {
    case LeaseFailure::kHeartbeatLost: return "heartbeat-lost";
    case LeaseFailure::kTaskTimeout: return "task-timeout";
    case LeaseFailure::kWorkerDied: return "worker-died";
    case LeaseFailure::kNacked: return "nacked";
  }
  return "?";
}

LeaseTable::LeaseTable(LeaseOptions options) : options_(options) {
  if (options_.maxAttempts < 1) options_.maxAttempts = 1;
}

void LeaseTable::addTask(const std::string& clipId,
                         const std::string& ruleName) {
  Entry e;
  e.clipId = clipId;
  e.ruleName = ruleName;
  std::string key = clipId + "\x1f" + ruleName;
  if (tasks_.emplace(key, std::move(e)).second) {
    order_.push_back(key);
    ++pending_;
  }
}

bool LeaseTable::markResumed(const BatchRow& row) {
  auto it = tasks_.find(row.key());
  if (it == tasks_.end()) return false;
  Entry& e = it->second;
  if (e.state != TaskState::kPending) return false;  // first writer wins
  e.state = TaskState::kDone;
  e.row = row;
  --pending_;
  ++done_;
  return true;
}

bool LeaseTable::grant(int workerSlot, double now, LeaseGrant& out) {
  if (pending_ == 0) return false;
  for (const std::string& key : order_) {
    Entry& e = tasks_[key];
    if (e.state != TaskState::kPending) continue;
    e.state = TaskState::kLeased;
    e.workerSlot = workerSlot;
    ++e.attempts;
    ++grants_;
    e.heartbeatDeadline = now + options_.leaseSec;
    e.taskDeadline = now + options_.taskTimeoutSec;
    --pending_;
    ++leased_;
    out.clipId = e.clipId;
    out.ruleName = e.ruleName;
    out.attempt = e.attempts;
    return true;
  }
  return false;  // counts said pending > 0 but none found: unreachable
}

bool LeaseTable::heartbeat(const std::string& key, int workerSlot,
                           double now) {
  auto it = tasks_.find(key);
  if (it == tasks_.end()) return false;
  Entry& e = it->second;
  if (e.state != TaskState::kLeased || e.workerSlot != workerSlot) {
    return false;  // stale: the lease moved on without this worker
  }
  e.heartbeatDeadline = now + options_.leaseSec;
  return true;
}

ResultOutcome LeaseTable::complete(const std::string& key, int workerSlot,
                                   const BatchRow& row) {
  auto it = tasks_.find(key);
  if (it == tasks_.end()) return ResultOutcome::kUnknownTask;
  Entry& e = it->second;
  if (e.state == TaskState::kDone || e.state == TaskState::kQuarantined) {
    return ResultOutcome::kDuplicate;
  }
  // First result wins, even from a revoked lease: solves are deterministic,
  // so a stale worker's answer is the same answer the replacement would
  // compute. kQuarantined is treated as done above -- a task given up on
  // stays given up on (its error row already merged into the checkpoint).
  bool stale =
      e.state != TaskState::kLeased || e.workerSlot != workerSlot;
  if (e.state == TaskState::kLeased) {
    --leased_;
  } else {
    --pending_;  // re-queued but not yet re-granted
  }
  e.state = TaskState::kDone;
  e.row = row;
  ++done_;
  return stale ? ResultOutcome::kAcceptedStale : ResultOutcome::kAccepted;
}

void LeaseTable::fail(Entry& e, const std::string& key, LeaseFailure reason,
                      ErrorCode code, const std::string& message,
                      ExpiredLease& out) {
  out.key = key;
  out.workerSlot = e.workerSlot;
  out.reason = reason;
  e.lastError = code;
  e.lastMessage = message;
  e.workerSlot = -1;
  --leased_;
  if (e.attempts >= options_.maxAttempts) {
    e.state = TaskState::kQuarantined;
    ++quarantined_;
    out.quarantined = true;
    // The quarantine row is an honest error row in BatchRunner's taxonomy:
    // status kError, the last failure's code, and a message recording the
    // attempt budget. It never carries solution fields.
    e.row = BatchRow{};
    e.row.clipId = e.clipId;
    e.row.ruleName = e.ruleName;
    e.row.status = core::RouteStatus::kError;
    e.row.errorCode = code;
    std::ostringstream msg;
    msg << "quarantined after " << e.attempts << " attempts; last failure: "
        << toString(reason);
    if (!message.empty()) msg << " (" << message << ")";
    e.row.errorMessage = msg.str();
    if (reason == LeaseFailure::kWorkerDied) e.row.crashed = true;
  } else {
    e.state = TaskState::kPending;
    ++pending_;
  }
}

ExpiredLease LeaseTable::nack(const std::string& key, int workerSlot,
                              ErrorCode code, const std::string& message) {
  ExpiredLease out;
  auto it = tasks_.find(key);
  if (it == tasks_.end()) return out;
  Entry& e = it->second;
  if (e.state != TaskState::kLeased || e.workerSlot != workerSlot) return out;
  fail(e, key, LeaseFailure::kNacked,
       code == ErrorCode::kOk ? ErrorCode::kInternal : code, message, out);
  return out;
}

std::vector<ExpiredLease> LeaseTable::expire(double now) {
  std::vector<ExpiredLease> expired;
  for (const std::string& key : order_) {
    Entry& e = tasks_[key];
    if (e.state != TaskState::kLeased) continue;
    LeaseFailure reason;
    if (now >= e.taskDeadline) {
      reason = LeaseFailure::kTaskTimeout;
    } else if (now >= e.heartbeatDeadline) {
      reason = LeaseFailure::kHeartbeatLost;
    } else {
      continue;
    }
    ExpiredLease out;
    fail(e, key, reason, ErrorCode::kDeadline,
         reason == LeaseFailure::kTaskTimeout ? "task deadline exceeded"
                                              : "heartbeats stopped",
         out);
    expired.push_back(std::move(out));
  }
  return expired;
}

std::vector<ExpiredLease> LeaseTable::releaseWorker(int workerSlot) {
  std::vector<ExpiredLease> released;
  for (const std::string& key : order_) {
    Entry& e = tasks_[key];
    if (e.state != TaskState::kLeased || e.workerSlot != workerSlot) continue;
    ExpiredLease out;
    fail(e, key, LeaseFailure::kWorkerDied, ErrorCode::kCrash,
         "worker died holding the lease", out);
    released.push_back(std::move(out));
  }
  return released;
}

int LeaseTable::attempts(const std::string& key) const {
  auto it = tasks_.find(key);
  return it == tasks_.end() ? 0 : it->second.attempts;
}

TaskState LeaseTable::state(const std::string& key) const {
  auto it = tasks_.find(key);
  OPTR_ASSERT(it != tasks_.end(), "LeaseTable::state: unknown task key");
  return it->second.state;
}

const BatchRow* LeaseTable::settledRow(const std::string& key) const {
  auto it = tasks_.find(key);
  if (it == tasks_.end()) return nullptr;
  const Entry& e = it->second;
  if (e.state != TaskState::kDone && e.state != TaskState::kQuarantined) {
    return nullptr;
  }
  return &e.row;
}

std::vector<std::string> LeaseTable::quarantineAllPending(
    ErrorCode code, const std::string& message) {
  std::vector<std::string> affected;
  for (const std::string& key : order_) {
    Entry& e = tasks_[key];
    if (e.state != TaskState::kPending) continue;
    e.state = TaskState::kQuarantined;
    --pending_;
    ++quarantined_;
    e.lastError = code;
    e.lastMessage = message;
    e.row = BatchRow{};
    e.row.clipId = e.clipId;
    e.row.ruleName = e.ruleName;
    e.row.status = core::RouteStatus::kError;
    e.row.errorCode = code;
    e.row.errorMessage = message;
    affected.push_back(key);
  }
  return affected;
}

std::vector<BatchRow> LeaseTable::rows() const {
  std::vector<BatchRow> out;
  out.reserve(order_.size());
  for (const std::string& key : order_) {
    const Entry& e = tasks_.at(key);
    if (e.state == TaskState::kDone || e.state == TaskState::kQuarantined) {
      out.push_back(e.row);
    }
  }
  return out;
}

}  // namespace optr::harness
