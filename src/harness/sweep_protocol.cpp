#include "harness/sweep_protocol.h"

#include <sstream>

#include "common/jsonl.h"

namespace optr::harness {

const char* toString(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "hello";
    case MsgType::kLease: return "lease";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kResult: return "result";
    case MsgType::kNack: return "nack";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kGarbled: return "garbled";
    case MsgType::kNumTypes: break;
  }
  return "?";
}

std::string encodeHello(const std::string& workerId, int pid) {
  std::ostringstream os;
  os << "{\"t\":\"hello\",\"proto\":" << kSweepProtocolVersion
     << ",\"worker\":\"" << jsonl::escape(workerId) << "\",\"pid\":" << pid
     << "}";
  return os.str();
}

std::string encodeLease(const std::string& clipId, const std::string& ruleName,
                        double leaseSec, int attempt,
                        const std::string& traceId, std::uint64_t parentSpan) {
  std::ostringstream os;
  os << "{\"t\":\"lease\",\"clip\":\"" << jsonl::escape(clipId)
     << "\",\"rule\":\"" << jsonl::escape(ruleName)
     << "\",\"leaseSec\":" << leaseSec << ",\"attempt\":" << attempt;
  if (!traceId.empty() && parentSpan != 0) {
    os << ",\"traceId\":\"" << jsonl::escape(traceId)
       << "\",\"parentSpan\":" << parentSpan;
  }
  os << "}";
  return os.str();
}

std::string encodeHeartbeat(const std::string& clipId,
                            const std::string& ruleName) {
  std::ostringstream os;
  os << "{\"t\":\"heartbeat\",\"clip\":\"" << jsonl::escape(clipId)
     << "\",\"rule\":\"" << jsonl::escape(ruleName) << "\"}";
  return os.str();
}

std::string encodeResult(const BatchRow& row) {
  // The result message IS a BatchRow line plus the type tag: the row's own
  // serialization starts with {"clip":..., so splice the tag in after the
  // opening brace. Decoding works because fromJsonLine matches by key and
  // "t" is not a row field.
  std::string line = toJsonLine(row);
  return "{\"t\":\"result\"," + line.substr(1);
}

std::string encodeNack(const std::string& clipId, const std::string& ruleName,
                       ErrorCode code, const std::string& message) {
  std::ostringstream os;
  os << "{\"t\":\"nack\",\"clip\":\"" << jsonl::escape(clipId)
     << "\",\"rule\":\"" << jsonl::escape(ruleName) << "\",\"error\":\""
     << toString(code) << "\",\"message\":\"" << jsonl::escape(message)
     << "\"}";
  return os.str();
}

std::string encodeShutdown() { return "{\"t\":\"shutdown\"}"; }

SweepMessage decodeMessage(const std::string& line) {
  SweepMessage msg;
  if (line.empty() || line.front() != '{' || line.back() != '}') return msg;
  std::string type;
  if (!jsonl::getString(line, "t", type)) return msg;

  double num = 0.0;
  if (type == "hello") {
    if (!jsonl::getNumber(line, "proto", num)) return msg;
    msg.protoVersion = static_cast<int>(num);
    if (!jsonl::getString(line, "worker", msg.workerId)) return msg;
    if (jsonl::getNumber(line, "pid", num)) msg.pid = static_cast<int>(num);
    msg.type = MsgType::kHello;
    return msg;
  }
  if (type == "lease") {
    if (!jsonl::getString(line, "clip", msg.clipId)) return msg;
    if (!jsonl::getString(line, "rule", msg.ruleName)) return msg;
    if (jsonl::getNumber(line, "leaseSec", num)) msg.leaseSec = num;
    if (jsonl::getNumber(line, "attempt", num)) {
      msg.attempt = static_cast<int>(num);
    }
    jsonl::getString(line, "traceId", msg.traceId);
    if (jsonl::getNumber(line, "parentSpan", num)) {
      msg.parentSpan = static_cast<std::uint64_t>(num);
    }
    msg.type = MsgType::kLease;
    return msg;
  }
  if (type == "heartbeat") {
    if (!jsonl::getString(line, "clip", msg.clipId)) return msg;
    if (!jsonl::getString(line, "rule", msg.ruleName)) return msg;
    msg.type = MsgType::kHeartbeat;
    return msg;
  }
  if (type == "result") {
    if (!fromJsonLine(line, msg.row)) return msg;
    msg.clipId = msg.row.clipId;
    msg.ruleName = msg.row.ruleName;
    msg.type = MsgType::kResult;
    return msg;
  }
  if (type == "nack") {
    if (!jsonl::getString(line, "clip", msg.clipId)) return msg;
    if (!jsonl::getString(line, "rule", msg.ruleName)) return msg;
    std::string code;
    if (jsonl::getString(line, "error", code)) {
      msg.errorCode = errorCodeFromString(code);
    }
    jsonl::getString(line, "message", msg.message);
    msg.type = MsgType::kNack;
    return msg;
  }
  if (type == "shutdown") {
    msg.type = MsgType::kShutdown;
    return msg;
  }
  return msg;  // unknown type: kGarbled
}

}  // namespace optr::harness
