#include "harness/batch_runner.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#if !defined(_WIN32)
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "common/jsonl.h"
#include "common/stop_signal.h"
#include "core/cache_key.h"
#include "harness/checkpoint_io.h"
#include "obs/trace.h"
#include "tech/technology.h"

namespace optr::harness {

namespace {

// ---- JSON-lines (de)serialization ------------------------------------------
// One flat object per row, built on the shared common/jsonl.h helpers.
// Fields are matched by key, so rows written by older sweeps with fewer
// fields still load.

using jsonl::escape;
using jsonl::getNumber;
using jsonl::getString;

core::RouteStatus routeStatusFromString(const std::string& s, bool& ok) {
  for (auto st : {core::RouteStatus::kOptimal, core::RouteStatus::kFeasible,
                  core::RouteStatus::kInfeasible, core::RouteStatus::kUnknown,
                  core::RouteStatus::kError}) {
    if (s == core::toString(st)) {
      ok = true;
      return st;
    }
  }
  ok = false;
  return core::RouteStatus::kError;
}

}  // namespace

std::string toJsonLine(const BatchRow& row) {
  std::ostringstream os;
  os << "{\"clip\":\"" << escape(row.clipId) << "\""
     << ",\"rule\":\"" << escape(row.ruleName) << "\""
     << ",\"status\":\"" << core::toString(row.status) << "\""
     << ",\"provenance\":\"" << core::toString(row.provenance) << "\""
     << ",\"error\":\"" << toString(row.errorCode) << "\""
     << ",\"message\":\"" << escape(row.errorMessage) << "\""
     << ",\"cost\":" << row.cost << ",\"wirelength\":" << row.wirelength
     << ",\"vias\":" << row.vias << ",\"bestBound\":" << row.bestBound
     << ",\"seconds\":" << row.seconds
     << ",\"nodes\":" << row.nodes
     << ",\"lpIterations\":" << row.lpIterations
     << ",\"warmStart\":" << (row.warmStartUsed ? 1 : 0)
     << ",\"crashed\":" << (row.crashed ? 1 : 0) << "}";
  return os.str();
}

bool fromJsonLine(const std::string& line, BatchRow& row) {
  if (line.empty() || line.front() != '{' ||
      line.find('}') == std::string::npos) {
    return false;
  }
  std::string statusStr, errStr, provStr;
  if (!getString(line, "clip", row.clipId)) return false;
  if (!getString(line, "rule", row.ruleName)) return false;
  if (!getString(line, "status", statusStr)) return false;
  bool ok = false;
  row.status = routeStatusFromString(statusStr, ok);
  if (!ok) return false;
  if (getString(line, "provenance", provStr)) {
    auto prov = core::provenanceFromString(provStr);
    if (!prov) return false;  // corrupted row: force a re-run
    row.provenance = *prov;
  }
  if (getString(line, "error", errStr)) {
    row.errorCode = errorCodeFromString(errStr);
  }
  getString(line, "message", row.errorMessage);
  double v = 0;
  if (getNumber(line, "cost", v)) row.cost = v;
  if (getNumber(line, "wirelength", v)) row.wirelength = static_cast<int>(v);
  if (getNumber(line, "vias", v)) row.vias = static_cast<int>(v);
  if (getNumber(line, "bestBound", v)) row.bestBound = v;
  if (getNumber(line, "seconds", v)) row.seconds = v;
  if (getNumber(line, "nodes", v)) row.nodes = static_cast<std::int64_t>(v);
  if (getNumber(line, "lpIterations", v))
    row.lpIterations = static_cast<std::int64_t>(v);
  if (getNumber(line, "warmStart", v)) row.warmStartUsed = v != 0;
  if (getNumber(line, "crashed", v)) row.crashed = v != 0;
  return true;
}

std::array<int, 4> BatchReport::provenanceCounts() const {
  std::array<int, 4> counts{};
  for (const BatchRow& row : rows) {
    counts[static_cast<int>(row.provenance)]++;
  }
  return counts;
}

BatchRunner::BatchRunner(BatchOptions options)
    : options_(std::move(options)) {}

BatchRow BatchRunner::runInline(
    const clip::Clip& clip, const tech::RuleConfig& rule,
    core::SessionPool* pool,
    const std::vector<tech::RuleConfig>* universe) const {
  obs::Span span("batch.task", runSpanId_);
  span.detail(clip.id + "|" + rule.name);
  BatchRow row;
  row.clipId = clip.id;
  row.ruleName = rule.name;
  if (options_.preSolveHook) options_.preSolveHook(clip.id, rule.name);

  auto techOr = tech::Technology::byName(clip.techName);
  if (!techOr.isOk()) {
    row.errorCode = techOr.status().code();
    row.errorMessage = techOr.status().message();
    return row;  // kError, no solution fields
  }

  auto start = std::chrono::steady_clock::now();
  core::OptRouter router(techOr.value(), rule, options_.router);
  core::RouteResult res;
  if (pool) {
    // Tasks run clips-outer / rules-inner, so the clip's session is usually
    // resident and the solve is overlay + warm start only. The pool is
    // shared across workers: a clip another worker just finished is a hit
    // here too, which the old worker-local LRU-of-1 could never give.
    std::string key =
        core::sessionCacheKey(clip, options_.router.formulation).hex();
    core::SessionPool::Lease lease = pool->acquire(key, [&] {
      core::ClipSessionOptions so;
      so.formulation = options_.router.formulation;
      so.universe = *universe;
      return std::make_unique<core::ClipSession>(clip, techOr.value(),
                                                 std::move(so));
    });
    res = router.route(*lease, rule);
    if (res.status == core::RouteStatus::kError) lease.discard();
  } else {
    res = router.route(clip);
  }
  row.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  row.status = res.status;
  row.provenance = res.provenance;
  row.errorCode = res.error.code();
  row.errorMessage = res.error.message();
  row.cost = res.cost;
  row.wirelength = res.wirelength;
  row.vias = res.vias;
  row.bestBound = res.bestBound;
  row.nodes = res.nodes;
  row.lpIterations = res.lpIterations;
  row.warmStartUsed = res.warmStartUsed;
  return row;
}

#if !defined(_WIN32)

BatchRow BatchRunner::runIsolated(const clip::Clip& clip,
                                  const tech::RuleConfig& rule,
                                  double timeoutSec) const {
  BatchRow row;
  row.clipId = clip.id;
  row.ruleName = rule.name;

  // Drain the trace rings before forking: any record still buffered here
  // would otherwise be written twice (once by each process). After the
  // flush the child starts from empty rings.
  obs::TraceSession::flushAll();

  int fds[2];
  if (pipe(fds) != 0) {
    row.errorCode = ErrorCode::kIo;
    row.errorMessage = std::string("pipe: ") + std::strerror(errno);
    return row;
  }

  pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    row.errorCode = ErrorCode::kIo;
    row.errorMessage = std::string("fork: ") + std::strerror(errno);
    return row;
  }

  if (pid == 0) {
    // Worker: solve, ship one JSON line back, and exit without running any
    // parent-owned teardown (_exit, not exit).
    close(fds[0]);
    // Re-key the child's span ids so they cannot collide with the parent's
    // (both processes append to the same trace fd; O_APPEND keeps the
    // line-level interleaving atomic).
    obs::TraceSession::onFork(static_cast<std::uint64_t>(getpid()) << 32);
    BatchRow result = runInline(clip, rule, nullptr, nullptr);
    obs::TraceSession::flushAll();  // ship the child's records before _exit
    obs::TraceSession::emitThreadDrops();  // child never runs stop()
    std::string line = toJsonLine(result) + "\n";
    std::size_t off = 0;
    while (off < line.size()) {
      ssize_t n = write(fds[1], line.data() + off, line.size() - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    close(fds[1]);
    _exit(0);
  }

  // Parent: drain the pipe under the watchdog deadline.
  close(fds[1]);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(timeoutSec);
  std::string buffer;
  bool timedOut = false;
  char chunk[4096];
  for (;;) {
    auto remain = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remain.count() <= 0) {
      timedOut = true;
      break;
    }
    struct pollfd pfd{fds[0], POLLIN, 0};
    int pr = poll(&pfd, 1, static_cast<int>(remain.count()));
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) {
      timedOut = true;
      break;
    }
    ssize_t n = read(fds[0], chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF: worker finished (or died)
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  close(fds[0]);

  if (timedOut) kill(pid, SIGKILL);
  int wstatus = 0;
  while (waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
  }

  if (timedOut) {
    row.errorCode = ErrorCode::kDeadline;
    std::ostringstream msg;
    msg << "watchdog killed task after " << timeoutSec << "s";
    row.errorMessage = msg.str();
    row.seconds = timeoutSec;
    return row;
  }

  std::size_t eol = buffer.find('\n');
  BatchRow parsed;
  if (eol != std::string::npos &&
      fromJsonLine(buffer.substr(0, eol), parsed) &&
      parsed.clipId == clip.id && parsed.ruleName == rule.name) {
    return parsed;
  }

  // No complete row came back: the worker died mid-solve.
  row.crashed = true;
  row.errorCode = ErrorCode::kCrash;
  std::ostringstream msg;
  if (WIFSIGNALED(wstatus)) {
    msg << "worker killed by signal " << WTERMSIG(wstatus);
  } else {
    msg << "worker exited with status "
        << (WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1)
        << " without a result";
  }
  row.errorMessage = msg.str();
  return row;
}

#else  // _WIN32: no fork -- isolation degrades to an in-process run.

BatchRow BatchRunner::runIsolated(const clip::Clip& clip,
                                  const tech::RuleConfig& rule,
                                  double /*timeoutSec*/) const {
  return runInline(clip, rule, nullptr, nullptr);
}

#endif

BatchReport BatchRunner::run(const std::vector<clip::Clip>& clips,
                             const std::vector<tech::RuleConfig>& rules) {
  obs::Span runSpan("batch.run");
  runSpan.arg("clips", static_cast<double>(clips.size()));
  runSpan.arg("rules", static_cast<double>(rules.size()));
  runSpanId_ = runSpan.id();
  // Shared epilogue for every return path: batch counters, span args, and
  // the end-of-run trace flush.
  auto finish = [&](BatchReport& r) -> BatchReport& {
    auto& m = obs::metrics();
    m.counter("batch.tasks").add(r.executed);
    m.counter("batch.resumed").add(r.resumed);
    m.counter("batch.crashed").add(r.crashed);
    m.counter("batch.timeouts").add(r.timedOut);
    runSpan.arg("tasks", static_cast<double>(r.executed));
    runSpan.arg("resumed", static_cast<double>(r.resumed));
    if (r.interrupted) runSpan.arg("interrupted", 1);
    runSpan.end();
    runSpanId_ = 0;
    obs::TraceSession::flushAll();
    // On a signal-driven stop the process is about to exit without the
    // usual trace teardown; account for any records the rings dropped so
    // the trace file stays honest.
    if (r.interrupted) obs::TraceSession::emitThreadDrops();
    return r;
  };
  BatchReport report;

  // A solve that honors its MIP deadline finishes well inside this envelope;
  // only a wedged or crashed worker ever meets the watchdog.
  double timeoutSec = options_.taskTimeoutSec > 0
                          ? options_.taskTimeoutSec
                          : options_.router.mip.timeLimitSec * 3.0 + 10.0;

  std::unordered_map<std::string, BatchRow> done;
  if (!options_.checkpointPath.empty()) {
    // Torn / malformed lines (e.g. cut by a kill mid-fwrite) are skipped
    // and counted; the affected tasks simply re-run.
    CheckpointLoadStats stats = loadCheckpoint(options_.checkpointPath, done);
    report.checkpointSkipped = stats.skipped();
  }

  std::FILE* checkpoint = nullptr;
  if (!options_.checkpointPath.empty()) {
    checkpoint = std::fopen(options_.checkpointPath.c_str(), "a");
  }

  // Forking from a pool thread would be unsafe (the child inherits another
  // thread's locked allocator state), so the pool applies only in-process.
  const int threads = options_.isolateTasks ? 1 : std::max(1, options_.threads);

  // Shared session pool: one idle slot per worker plus one of slack keeps
  // the clips-outer sweep fully resident without hoarding base models.
  std::size_t poolCapacity =
      options_.sessionPoolCapacity != 0
          ? options_.sessionPoolCapacity
          : static_cast<std::size_t>(threads) + 1;
  core::SessionPool sessionPool(core::SessionPoolOptions{poolCapacity});
  core::SessionPool* pool =
      (options_.sessionReuse && !options_.isolateTasks) ? &sessionPool
                                                        : nullptr;

  if (threads == 1) {
    for (const clip::Clip& clip : clips) {
      for (const tech::RuleConfig& rule : rules) {
        std::string key = clip.id + "\x1f" + rule.name;
        if (auto it = done.find(key); it != done.end()) {
          report.rows.push_back(it->second);
          ++report.resumed;
          continue;
        }
        if (options_.stopAfter >= 0 && report.executed >= options_.stopAfter) {
          report.stoppedEarly = true;
          if (checkpoint) std::fclose(checkpoint);
          return finish(report);
        }
        if (common::stopRequested()) {
          // Graceful drain: everything finished so far is already
          // checkpointed; stop before starting new work.
          report.interrupted = true;
          if (checkpoint) std::fclose(checkpoint);
          return finish(report);
        }

        BatchRow row = options_.isolateTasks
                           ? runIsolated(clip, rule, timeoutSec)
                           : runInline(clip, rule, pool, &rules);
        ++report.executed;
        if (row.crashed) ++report.crashed;
        if (row.errorCode == ErrorCode::kDeadline &&
            row.errorMessage.rfind("watchdog", 0) == 0) {
          ++report.timedOut;
        }

        if (checkpoint) {
          std::string line = toJsonLine(row);
          std::fprintf(checkpoint, "%s\n", line.c_str());
          std::fflush(checkpoint);
          obs::event("batch.checkpoint", row.clipId + "|" + row.ruleName);
        }
        report.rows.push_back(std::move(row));
      }
    }

    if (checkpoint) std::fclose(checkpoint);
    return finish(report);
  }

  // Thread-pool mode. Plan the same task prefix the serial loop would
  // process (resumed rows fill from the checkpoint; stopAfter truncates at
  // the same task), then execute the pending tasks concurrently. Rows keep
  // task order -- each result lands in its slot -- so a parallel report is
  // row-for-row comparable with a serial one.
  struct Task {
    const clip::Clip* clip;
    const tech::RuleConfig* rule;
    std::size_t slot;  // index into report.rows
  };
  std::vector<Task> pending;
  std::vector<BatchRow> rows;
  for (std::size_t ci = 0; ci < clips.size() && !report.stoppedEarly; ++ci) {
    for (const tech::RuleConfig& rule : rules) {
      const clip::Clip& clip = clips[ci];
      std::string key = clip.id + "\x1f" + rule.name;
      if (auto it = done.find(key); it != done.end()) {
        rows.push_back(it->second);
        ++report.resumed;
        continue;
      }
      if (options_.stopAfter >= 0 &&
          static_cast<int>(pending.size()) >= options_.stopAfter) {
        report.stoppedEarly = true;  // serial semantics: nothing after stop
        break;
      }
      rows.emplace_back();  // placeholder, filled by the worker
      pending.push_back(Task{&clip, &rule, rows.size() - 1});
    }
  }
  // filled[slot]: resumed rows land complete; placeholders flip to true as
  // workers deliver. After an interrupted run the unfilled placeholders are
  // compacted away so the report only carries real rows.
  std::vector<char> filled(rows.size(), 1);
  for (const Task& t : pending) filled[t.slot] = 0;
  std::mutex mu;  // checkpoint file + report counters
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    // Sessions come from the SHARED pool: a clip whose sweep another worker
    // finished is an overlay-only hit here too. ClipSession stays a
    // single-threaded object -- the pool's exclusive leases guarantee one
    // worker per session at a time.
    for (;;) {
      if (common::stopRequested()) return;  // drain: no new tasks
      std::size_t i = next.fetch_add(1);
      if (i >= pending.size()) return;
      const Task& t = pending[i];
      BatchRow row = runInline(*t.clip, *t.rule, pool, &rules);
      std::lock_guard<std::mutex> lk(mu);
      ++report.executed;
      if (row.crashed) ++report.crashed;
      if (row.errorCode == ErrorCode::kDeadline &&
          row.errorMessage.rfind("watchdog", 0) == 0) {
        ++report.timedOut;
      }
      if (checkpoint) {
        // Completion order, not task order: resume loads rows by key, so
        // the checkpoint is order-independent.
        std::string line = toJsonLine(row);
        std::fprintf(checkpoint, "%s\n", line.c_str());
        std::fflush(checkpoint);
        obs::event("batch.checkpoint", row.clipId + "|" + row.ruleName);
      }
      rows[t.slot] = std::move(row);
      filled[t.slot] = 1;
    }
  };
  if (!pending.empty()) {
    const int poolSize =
        std::min(threads, static_cast<int>(pending.size()));
    std::vector<std::thread> workerPool;
    workerPool.reserve(poolSize);
    for (int t = 0; t < poolSize; ++t) workerPool.emplace_back(worker);
    for (std::thread& t : workerPool) t.join();
  }
  if (common::stopRequested() && next.load() < pending.size()) {
    // In-flight tasks finished and checkpointed; unstarted slots compact
    // away so the report carries only real rows.
    report.interrupted = true;
    std::vector<BatchRow> kept;
    kept.reserve(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
      if (filled[i]) kept.push_back(std::move(rows[i]));
    rows = std::move(kept);
  }
  report.rows = std::move(rows);

  if (checkpoint) std::fclose(checkpoint);
  return finish(report);
}

}  // namespace optr::harness
