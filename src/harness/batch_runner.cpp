#include "harness/batch_runner.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#if !defined(_WIN32)
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "obs/trace.h"
#include "tech/technology.h"

namespace optr::harness {

namespace {

// ---- JSON-lines (de)serialization ------------------------------------------
// One flat object per row; hand-rolled because the container must not grow
// dependencies and the schema is fixed. Fields are matched by key, so rows
// written by older sweeps with fewer fields still load.

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Finds `"key":` in `line` and returns the offset just past the colon,
/// or npos.
std::size_t valueOffset(const std::string& line, const char* key) {
  std::string pat = std::string("\"") + key + "\":";
  std::size_t at = line.find(pat);
  if (at == std::string::npos) return std::string::npos;
  return at + pat.size();
}

bool jsonString(const std::string& line, const char* key, std::string& out) {
  std::size_t at = valueOffset(line, key);
  if (at == std::string::npos || at >= line.size() || line[at] != '"')
    return false;
  out.clear();
  for (std::size_t i = at + 1; i < line.size(); ++i) {
    char c = line[i];
    if (c == '"') return true;
    if (c == '\\' && i + 1 < line.size()) {
      char e = line[++i];
      switch (e) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u':
          if (i + 4 >= line.size()) return false;
          out += static_cast<char>(std::strtol(
              line.substr(i + 1, 4).c_str(), nullptr, 16));
          i += 4;
          break;
        default: out += e;
      }
    } else {
      out += c;
    }
  }
  return false;  // unterminated (truncated line)
}

bool jsonNumber(const std::string& line, const char* key, double& out) {
  std::size_t at = valueOffset(line, key);
  if (at == std::string::npos) return false;
  char* end = nullptr;
  out = std::strtod(line.c_str() + at, &end);
  return end != line.c_str() + at;
}

core::RouteStatus routeStatusFromString(const std::string& s, bool& ok) {
  for (auto st : {core::RouteStatus::kOptimal, core::RouteStatus::kFeasible,
                  core::RouteStatus::kInfeasible, core::RouteStatus::kUnknown,
                  core::RouteStatus::kError}) {
    if (s == core::toString(st)) {
      ok = true;
      return st;
    }
  }
  ok = false;
  return core::RouteStatus::kError;
}

}  // namespace

std::string toJsonLine(const BatchRow& row) {
  std::ostringstream os;
  os << "{\"clip\":\"" << jsonEscape(row.clipId) << "\""
     << ",\"rule\":\"" << jsonEscape(row.ruleName) << "\""
     << ",\"status\":\"" << core::toString(row.status) << "\""
     << ",\"provenance\":\"" << core::toString(row.provenance) << "\""
     << ",\"error\":\"" << toString(row.errorCode) << "\""
     << ",\"message\":\"" << jsonEscape(row.errorMessage) << "\""
     << ",\"cost\":" << row.cost << ",\"wirelength\":" << row.wirelength
     << ",\"vias\":" << row.vias << ",\"bestBound\":" << row.bestBound
     << ",\"seconds\":" << row.seconds
     << ",\"nodes\":" << row.nodes
     << ",\"lpIterations\":" << row.lpIterations
     << ",\"warmStart\":" << (row.warmStartUsed ? 1 : 0)
     << ",\"crashed\":" << (row.crashed ? 1 : 0) << "}";
  return os.str();
}

bool fromJsonLine(const std::string& line, BatchRow& row) {
  if (line.empty() || line.front() != '{' ||
      line.find('}') == std::string::npos) {
    return false;
  }
  std::string statusStr, errStr, provStr;
  if (!jsonString(line, "clip", row.clipId)) return false;
  if (!jsonString(line, "rule", row.ruleName)) return false;
  if (!jsonString(line, "status", statusStr)) return false;
  bool ok = false;
  row.status = routeStatusFromString(statusStr, ok);
  if (!ok) return false;
  if (jsonString(line, "provenance", provStr)) {
    auto prov = core::provenanceFromString(provStr);
    if (!prov) return false;  // corrupted row: force a re-run
    row.provenance = *prov;
  }
  if (jsonString(line, "error", errStr)) {
    row.errorCode = errorCodeFromString(errStr);
  }
  jsonString(line, "message", row.errorMessage);
  double v = 0;
  if (jsonNumber(line, "cost", v)) row.cost = v;
  if (jsonNumber(line, "wirelength", v)) row.wirelength = static_cast<int>(v);
  if (jsonNumber(line, "vias", v)) row.vias = static_cast<int>(v);
  if (jsonNumber(line, "bestBound", v)) row.bestBound = v;
  if (jsonNumber(line, "seconds", v)) row.seconds = v;
  if (jsonNumber(line, "nodes", v)) row.nodes = static_cast<std::int64_t>(v);
  if (jsonNumber(line, "lpIterations", v))
    row.lpIterations = static_cast<std::int64_t>(v);
  if (jsonNumber(line, "warmStart", v)) row.warmStartUsed = v != 0;
  if (jsonNumber(line, "crashed", v)) row.crashed = v != 0;
  return true;
}

std::array<int, 4> BatchReport::provenanceCounts() const {
  std::array<int, 4> counts{};
  for (const BatchRow& row : rows) {
    counts[static_cast<int>(row.provenance)]++;
  }
  return counts;
}

BatchRunner::BatchRunner(BatchOptions options)
    : options_(std::move(options)) {}

BatchRow BatchRunner::runInline(const clip::Clip& clip,
                                const tech::RuleConfig& rule,
                                SessionCache* cache) const {
  obs::Span span("batch.task", runSpanId_);
  span.detail(clip.id + "|" + rule.name);
  BatchRow row;
  row.clipId = clip.id;
  row.ruleName = rule.name;
  if (options_.preSolveHook) options_.preSolveHook(clip.id, rule.name);

  auto techOr = tech::Technology::byName(clip.techName);
  if (!techOr.isOk()) {
    row.errorCode = techOr.status().code();
    row.errorMessage = techOr.status().message();
    return row;  // kError, no solution fields
  }

  auto start = std::chrono::steady_clock::now();
  core::OptRouter router(techOr.value(), rule, options_.router);
  core::RouteResult res;
  if (cache) {
    // Tasks run clips-outer / rules-inner, so this worker usually already
    // holds the clip's session and the solve is overlay + warm start only.
    if (!cache->session || cache->clipId != clip.id) {
      core::ClipSessionOptions so;
      so.formulation = options_.router.formulation;
      so.universe = *cache->universe;
      cache->session = std::make_unique<core::ClipSession>(
          clip, techOr.value(), std::move(so));
      cache->clipId = clip.id;
    }
    res = router.route(*cache->session, rule);
  } else {
    res = router.route(clip);
  }
  row.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  row.status = res.status;
  row.provenance = res.provenance;
  row.errorCode = res.error.code();
  row.errorMessage = res.error.message();
  row.cost = res.cost;
  row.wirelength = res.wirelength;
  row.vias = res.vias;
  row.bestBound = res.bestBound;
  row.nodes = res.nodes;
  row.lpIterations = res.lpIterations;
  row.warmStartUsed = res.warmStartUsed;
  return row;
}

#if !defined(_WIN32)

BatchRow BatchRunner::runIsolated(const clip::Clip& clip,
                                  const tech::RuleConfig& rule,
                                  double timeoutSec) const {
  BatchRow row;
  row.clipId = clip.id;
  row.ruleName = rule.name;

  // Drain the trace rings before forking: any record still buffered here
  // would otherwise be written twice (once by each process). After the
  // flush the child starts from empty rings.
  obs::TraceSession::flushAll();

  int fds[2];
  if (pipe(fds) != 0) {
    row.errorCode = ErrorCode::kIo;
    row.errorMessage = std::string("pipe: ") + std::strerror(errno);
    return row;
  }

  pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    row.errorCode = ErrorCode::kIo;
    row.errorMessage = std::string("fork: ") + std::strerror(errno);
    return row;
  }

  if (pid == 0) {
    // Worker: solve, ship one JSON line back, and exit without running any
    // parent-owned teardown (_exit, not exit).
    close(fds[0]);
    // Re-key the child's span ids so they cannot collide with the parent's
    // (both processes append to the same trace fd; O_APPEND keeps the
    // line-level interleaving atomic).
    obs::TraceSession::onFork(static_cast<std::uint64_t>(getpid()) << 32);
    BatchRow result = runInline(clip, rule, nullptr);
    obs::TraceSession::flushAll();  // ship the child's records before _exit
    std::string line = toJsonLine(result) + "\n";
    std::size_t off = 0;
    while (off < line.size()) {
      ssize_t n = write(fds[1], line.data() + off, line.size() - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    close(fds[1]);
    _exit(0);
  }

  // Parent: drain the pipe under the watchdog deadline.
  close(fds[1]);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(timeoutSec);
  std::string buffer;
  bool timedOut = false;
  char chunk[4096];
  for (;;) {
    auto remain = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remain.count() <= 0) {
      timedOut = true;
      break;
    }
    struct pollfd pfd{fds[0], POLLIN, 0};
    int pr = poll(&pfd, 1, static_cast<int>(remain.count()));
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) {
      timedOut = true;
      break;
    }
    ssize_t n = read(fds[0], chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF: worker finished (or died)
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  close(fds[0]);

  if (timedOut) kill(pid, SIGKILL);
  int wstatus = 0;
  while (waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
  }

  if (timedOut) {
    row.errorCode = ErrorCode::kDeadline;
    std::ostringstream msg;
    msg << "watchdog killed task after " << timeoutSec << "s";
    row.errorMessage = msg.str();
    row.seconds = timeoutSec;
    return row;
  }

  std::size_t eol = buffer.find('\n');
  BatchRow parsed;
  if (eol != std::string::npos &&
      fromJsonLine(buffer.substr(0, eol), parsed) &&
      parsed.clipId == clip.id && parsed.ruleName == rule.name) {
    return parsed;
  }

  // No complete row came back: the worker died mid-solve.
  row.crashed = true;
  row.errorCode = ErrorCode::kCrash;
  std::ostringstream msg;
  if (WIFSIGNALED(wstatus)) {
    msg << "worker killed by signal " << WTERMSIG(wstatus);
  } else {
    msg << "worker exited with status "
        << (WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1)
        << " without a result";
  }
  row.errorMessage = msg.str();
  return row;
}

#else  // _WIN32: no fork -- isolation degrades to an in-process run.

BatchRow BatchRunner::runIsolated(const clip::Clip& clip,
                                  const tech::RuleConfig& rule,
                                  double /*timeoutSec*/) const {
  return runInline(clip, rule, nullptr);
}

#endif

BatchReport BatchRunner::run(const std::vector<clip::Clip>& clips,
                             const std::vector<tech::RuleConfig>& rules) {
  obs::Span runSpan("batch.run");
  runSpan.arg("clips", static_cast<double>(clips.size()));
  runSpan.arg("rules", static_cast<double>(rules.size()));
  runSpanId_ = runSpan.id();
  // Shared epilogue for every return path: batch counters, span args, and
  // the end-of-run trace flush.
  auto finish = [&](BatchReport& r) -> BatchReport& {
    auto& m = obs::metrics();
    m.counter("batch.tasks").add(r.executed);
    m.counter("batch.resumed").add(r.resumed);
    m.counter("batch.crashed").add(r.crashed);
    m.counter("batch.timeouts").add(r.timedOut);
    runSpan.arg("tasks", static_cast<double>(r.executed));
    runSpan.arg("resumed", static_cast<double>(r.resumed));
    runSpan.end();
    runSpanId_ = 0;
    obs::TraceSession::flushAll();
    return r;
  };
  BatchReport report;

  // A solve that honors its MIP deadline finishes well inside this envelope;
  // only a wedged or crashed worker ever meets the watchdog.
  double timeoutSec = options_.taskTimeoutSec > 0
                          ? options_.taskTimeoutSec
                          : options_.router.mip.timeLimitSec * 3.0 + 10.0;

  std::unordered_map<std::string, BatchRow> done;
  if (!options_.checkpointPath.empty()) {
    std::ifstream in(options_.checkpointPath);
    std::string line;
    while (std::getline(in, line)) {
      BatchRow row;
      if (fromJsonLine(line, row)) done.emplace(row.key(), row);
      // Malformed / truncated lines (e.g. cut by a kill) are skipped; the
      // task simply re-runs.
    }
  }

  std::FILE* checkpoint = nullptr;
  if (!options_.checkpointPath.empty()) {
    checkpoint = std::fopen(options_.checkpointPath.c_str(), "a");
  }

  // Forking from a pool thread would be unsafe (the child inherits another
  // thread's locked allocator state), so the pool applies only in-process.
  const int threads = options_.isolateTasks ? 1 : std::max(1, options_.threads);

  if (threads == 1) {
    SessionCache serialCache;
    serialCache.universe = &rules;
    SessionCache* cache =
        (options_.sessionReuse && !options_.isolateTasks) ? &serialCache
                                                          : nullptr;
    for (const clip::Clip& clip : clips) {
      for (const tech::RuleConfig& rule : rules) {
        std::string key = clip.id + "\x1f" + rule.name;
        if (auto it = done.find(key); it != done.end()) {
          report.rows.push_back(it->second);
          ++report.resumed;
          continue;
        }
        if (options_.stopAfter >= 0 && report.executed >= options_.stopAfter) {
          report.stoppedEarly = true;
          if (checkpoint) std::fclose(checkpoint);
          return finish(report);
        }

        BatchRow row = options_.isolateTasks
                           ? runIsolated(clip, rule, timeoutSec)
                           : runInline(clip, rule, cache);
        ++report.executed;
        if (row.crashed) ++report.crashed;
        if (row.errorCode == ErrorCode::kDeadline &&
            row.errorMessage.rfind("watchdog", 0) == 0) {
          ++report.timedOut;
        }

        if (checkpoint) {
          std::string line = toJsonLine(row);
          std::fprintf(checkpoint, "%s\n", line.c_str());
          std::fflush(checkpoint);
          obs::event("batch.checkpoint", row.clipId + "|" + row.ruleName);
        }
        report.rows.push_back(std::move(row));
      }
    }

    if (checkpoint) std::fclose(checkpoint);
    return finish(report);
  }

  // Thread-pool mode. Plan the same task prefix the serial loop would
  // process (resumed rows fill from the checkpoint; stopAfter truncates at
  // the same task), then execute the pending tasks concurrently. Rows keep
  // task order -- each result lands in its slot -- so a parallel report is
  // row-for-row comparable with a serial one.
  struct Task {
    const clip::Clip* clip;
    const tech::RuleConfig* rule;
    std::size_t slot;  // index into report.rows
  };
  std::vector<Task> pending;
  std::vector<BatchRow> rows;
  for (std::size_t ci = 0; ci < clips.size() && !report.stoppedEarly; ++ci) {
    for (const tech::RuleConfig& rule : rules) {
      const clip::Clip& clip = clips[ci];
      std::string key = clip.id + "\x1f" + rule.name;
      if (auto it = done.find(key); it != done.end()) {
        rows.push_back(it->second);
        ++report.resumed;
        continue;
      }
      if (options_.stopAfter >= 0 &&
          static_cast<int>(pending.size()) >= options_.stopAfter) {
        report.stoppedEarly = true;  // serial semantics: nothing after stop
        break;
      }
      rows.emplace_back();  // placeholder, filled by the worker
      pending.push_back(Task{&clip, &rule, rows.size() - 1});
    }
  }
  std::mutex mu;  // checkpoint file + report counters
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    // Worker-local: sessions are single-threaded objects, and each worker
    // sweeping its own cache keeps the pool free of shared solver state.
    SessionCache workerCache;
    workerCache.universe = &rules;
    SessionCache* cache = options_.sessionReuse ? &workerCache : nullptr;
    for (;;) {
      std::size_t i = next.fetch_add(1);
      if (i >= pending.size()) return;
      const Task& t = pending[i];
      BatchRow row = runInline(*t.clip, *t.rule, cache);
      std::lock_guard<std::mutex> lk(mu);
      ++report.executed;
      if (row.crashed) ++report.crashed;
      if (row.errorCode == ErrorCode::kDeadline &&
          row.errorMessage.rfind("watchdog", 0) == 0) {
        ++report.timedOut;
      }
      if (checkpoint) {
        // Completion order, not task order: resume loads rows by key, so
        // the checkpoint is order-independent.
        std::string line = toJsonLine(row);
        std::fprintf(checkpoint, "%s\n", line.c_str());
        std::fflush(checkpoint);
        obs::event("batch.checkpoint", row.clipId + "|" + row.ruleName);
      }
      rows[t.slot] = std::move(row);
    }
  };
  if (!pending.empty()) {
    const int poolSize =
        std::min(threads, static_cast<int>(pending.size()));
    std::vector<std::thread> pool;
    pool.reserve(poolSize);
    for (int t = 0; t < poolSize; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  report.rows = std::move(rows);

  if (checkpoint) std::fclose(checkpoint);
  return finish(report);
}

}  // namespace optr::harness
