// Crash-tolerant loading of JSONL batch checkpoints.
//
// Both sweep drivers (`BatchRunner` and the fleet `SweepCoordinator`) append
// one BatchRow JSON line per completed task and resume by re-reading the
// file. The writer can be killed at any byte — a SIGKILLed sweep, a crashed
// worker, a powered-off host — so the loader must treat a torn final line as
// normal: skip it, count it, and let the task re-run. Failing the whole
// resume over one half-written row would turn a crash the checkpoint exists
// to survive into data loss.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "harness/batch_runner.h"

namespace optr::harness {

struct CheckpointLoadStats {
  bool fileExists = false;
  int loaded = 0;     // rows parsed and kept (first writer wins on dup keys)
  int duplicates = 0; // rows whose key was already present (kept the first)
  int torn = 0;       // final line, unterminated by '\n', failed to parse
  int malformed = 0;  // any other unparseable line
  int skipped() const { return torn + malformed; }
};

/// Loads `path` into `out` keyed by BatchRow::key(). Unparseable lines are
/// skipped and counted, never fatal; a missing file is an empty checkpoint.
/// Existing entries in `out` win over rows from this file (callers merge
/// checkpoints in priority order). Increments the
/// `harness.checkpoint.skipped` counter for every skipped line.
CheckpointLoadStats loadCheckpoint(
    const std::string& path, std::unordered_map<std::string, BatchRow>& out);

/// Lists sibling per-worker checkpoint files for a fleet run whose merged
/// checkpoint is `mergedPath`: files named `<mergedPath>.w<slot>` in the
/// same directory, sorted by slot. Used by the coordinator to recover rows
/// a killed predecessor accepted into worker files but never merged.
std::vector<std::string> listWorkerCheckpoints(const std::string& mergedPath);

/// Per-worker checkpoint path for a worker slot: `<mergedPath>.w<slot>`.
std::string workerCheckpointPath(const std::string& mergedPath, int slot);

}  // namespace optr::harness
