// End-to-end clip extraction (the front half of the paper's Figure 6 flow):
// synthesize a placed design, route it globally, cut 1um x 1um clips, rank
// them by the Taghavi pin-cost metric, render the hardest one (Figure 7
// style) and save the top clips to a file for later evaluation.
//
//   $ ./examples/clip_extraction [tech] [outFile]
#include <algorithm>
#include <cstdio>

#include "clip/clip_io.h"
#include "grid/routing_graph.h"
#include "layout/clip_extract.h"
#include "layout/global_route.h"
#include "route/render.h"

using namespace optr;

int main(int argc, char** argv) {
  const char* techName = argc > 1 ? argv[1] : "N28-12T";
  const char* outFile = argc > 2 ? argv[2] : "top_clips.txt";

  auto techOr = tech::Technology::byName(techName);
  if (!techOr) {
    std::fprintf(stderr, "%s\n", techOr.status().message().c_str());
    return 1;
  }
  const tech::Technology techn = techOr.value();
  auto lib = layout::CellLibrary::forTechnology(techn);

  layout::DesignSpec spec;
  spec.name = "AES";
  spec.targetInstances = 420;
  spec.utilization = 0.93;
  spec.seed = 2024;
  layout::Design design = layout::generateDesign(lib, spec);
  std::printf("design %s: %zu instances, %zu nets, %d rows x %d sites "
              "(util %.1f%%)\n",
              design.name.c_str(), design.instances.size(),
              design.nets.size(), design.rows, design.sitesPerRow,
              design.utilization(lib) * 100);

  layout::GlobalRoute gr = layout::globalRoute(design, lib);
  std::printf("global route: %d x %d gcells, %zu boundary crossings\n",
              gr.grid.nx, gr.grid.ny, gr.crossings.size());

  layout::ClipExtractOptions eo;
  eo.maxNets = 6;
  eo.maxLayers = 4;
  auto clips = layout::extractClips(design, lib, gr, eo);
  std::printf("extracted %zu clips\n\n", clips.size());

  // Rank by pin cost (PEC + PAC + PRC, theta = 500).
  std::sort(clips.begin(), clips.end(),
            [](const clip::Clip& a, const clip::Clip& b) {
              return clip::pinCost(a).total() > clip::pinCost(b).total();
            });

  std::printf("top-5 difficult clips by pin cost:\n");
  for (std::size_t i = 0; i < clips.size() && i < 5; ++i) {
    auto pc = clip::pinCost(clips[i]);
    std::printf("  %-14s nets=%zu pins=%zu  PEC=%.0f PAC=%.1f PRC=%.1f "
                "total=%.1f\n",
                clips[i].id.c_str(), clips[i].nets.size(),
                clips[i].pins.size(), pc.pec, pc.pac, pc.prc, pc.total());
  }

  if (!clips.empty()) {
    std::printf("\nhardest clip, M2 view (Figure 7 style):\n");
    tech::RuleConfig rule;
    grid::RoutingGraph g(clips[0], techn, rule);
    std::printf("%s\n",
                route::renderLayer(clips[0], g, nullptr, 0).c_str());
  }

  std::vector<clip::Clip> top(clips.begin(),
                              clips.begin() + std::min<std::size_t>(
                                                  clips.size(), 20));
  Status s = clip::saveClips(outFile, top);
  if (!s) {
    std::fprintf(stderr, "save failed: %s\n", s.message().c_str());
    return 1;
  }
  std::printf("saved top %zu clips to %s\n", top.size(), outFile);
  return 0;
}
