// Figure 9 reproduction: NAND2X1 pin shapes and access points in N28-12T,
// N28-8T and the scaled N7-9T, rendered as ASCII.
//
// The point of the figure: 7nm pins expose only two access points and sit
// close together, which is why the paper cannot evaluate diagonal-via rules
// (RULE2/7/9/10/11) on N7-9T -- with eight via sites blocked there is no way
// to connect the two input pins without violations.
#include <cstdio>

#include "layout/cell_library.h"
#include "tech/rules.h"

using namespace optr;

int main() {
  for (const tech::Technology& techn : tech::Technology::all()) {
    auto lib = layout::CellLibrary::forTechnology(techn);
    const layout::CellMaster* nand2 = lib.byName("NAND2X1");
    std::printf("%s\n", lib.renderAscii(*nand2).c_str());
    int totalAps = 0;
    for (const layout::PinTemplate& p : nand2->pins)
      totalAps += static_cast<int>(p.accessPointsNm.size());
    std::printf("  pins: %zu, total access points: %d\n\n",
                nand2->pins.size(), totalAps);
  }

  std::printf("Rule applicability that follows from the pin shapes:\n");
  for (const tech::Technology& techn : tech::Technology::all()) {
    std::printf("  %s skips:", techn.name.c_str());
    bool any = false;
    for (const tech::RuleConfig& rule : tech::table3Rules()) {
      if (!tech::ruleApplicable(rule, techn)) {
        std::printf(" %s", rule.name.c_str());
        any = true;
      }
    }
    std::printf(any ? "\n" : " (none)\n");
  }
  return 0;
}
