// Rule sweep: the full Figure 6 evaluation loop on one clip.
//
// Loads clips from a file produced by clip_extraction (or builds a synthetic
// switchbox when no file is given), then evaluates every applicable Table 3
// rule configuration with OptRouter and prints the delta-cost table.
//
//   $ ./examples/clip_extraction N28-12T clips.txt
//   $ ./examples/rule_sweep clips.txt 0          # evaluate clip index 0
#include <cstdio>
#include <cstdlib>

#include "clip/clip_io.h"
#include "common/strings.h"
#include "core/opt_router.h"
#include "report/table.h"

using namespace optr;

namespace {

clip::Clip fallbackClip() {
  clip::Clip c;
  c.id = "synthetic";
  c.techName = "N28-12T";
  c.tracksX = 6;
  c.tracksY = 6;
  c.numLayers = 3;
  auto addNet = [&](std::vector<clip::TrackPoint> aps) {
    clip::ClipNet net;
    net.name = "n" + std::to_string(c.nets.size());
    for (const auto& ap : aps) {
      clip::ClipPin pin;
      pin.net = static_cast<int>(c.nets.size());
      pin.accessPoints = {ap};
      pin.shapeNm = Rect(0, 0, 40, 40);
      net.pins.push_back(static_cast<int>(c.pins.size()));
      c.pins.push_back(std::move(pin));
    }
    c.nets.push_back(std::move(net));
  };
  addNet({{0, 1, 0}, {5, 1, 0}});
  addNet({{1, 4, 0}, {4, 0, 0}});
  addNet({{0, 5, 0}, {5, 5, 0}, {3, 2, 0}});
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  clip::Clip c;
  if (argc > 1) {
    auto clipsOr = clip::loadClips(argv[1]);
    if (!clipsOr) {
      std::fprintf(stderr, "%s\n", clipsOr.status().message().c_str());
      return 1;
    }
    std::size_t idx = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 0;
    if (idx >= clipsOr.value().size()) {
      std::fprintf(stderr, "clip index out of range (%zu clips)\n",
                   clipsOr.value().size());
      return 1;
    }
    c = clipsOr.value()[idx];
  } else {
    c = fallbackClip();
  }

  auto techn = tech::Technology::byName(c.techName).value();
  std::printf("evaluating clip %s (%s): %zu nets, %zu pins\n\n", c.id.c_str(),
              c.techName.c_str(), c.nets.size(), c.pins.size());

  report::Table table({"Rule", "status", "cost", "dCost", "WL", "vias",
                       "sec"});
  double base = -1;
  for (const tech::RuleConfig& rule : tech::table3Rules()) {
    if (!tech::ruleApplicable(rule, techn)) {
      table.addRow({rule.name, "skipped (pin shapes)", "-", "-", "-", "-",
                    "-"});
      continue;
    }
    core::OptRouterOptions o;
    o.mip.timeLimitSec = 30;
    o.formulation.netBBoxMargin = 3;
    o.formulation.netLayerMargin = 1;
    core::OptRouter router(techn, rule, o);
    core::RouteResult r = router.route(c);
    if (r.hasSolution() && rule.name == "RULE1") base = r.cost;
    table.addRow(
        {rule.name, core::toString(r.status),
         r.hasSolution() ? strFormat("%.0f", r.cost) : "-",
         (r.hasSolution() && base >= 0) ? strFormat("%+.0f", r.cost - base)
                                        : "-",
         r.hasSolution() ? std::to_string(r.wirelength) : "-",
         r.hasSolution() ? std::to_string(r.vias) : "-",
         strFormat("%.1f", r.seconds)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
