// Quickstart: build a small switchbox clip by hand, solve it optimally with
// OptRouter under two rule configurations, and print the routed layers.
//
//   $ ./examples/quickstart
//
// Walks through the core API: Clip -> Technology/RuleConfig -> OptRouter ->
// RouteResult, plus the DRC checker and the ASCII renderer.
#include <cstdio>

#include "core/opt_router.h"
#include "route/render.h"

using namespace optr;

int main() {
  // --- 1. Describe a clip: 6x6 tracks, 3 routing layers (M2..M4). ---------
  clip::Clip c;
  c.id = "quickstart";
  c.techName = "N28-12T";
  c.tracksX = 6;
  c.tracksY = 6;
  c.numLayers = 3;

  // Three nets. Pins are given by access points (x, y, layer); the first
  // pin of each net acts as the flow source.
  auto addNet = [&](const std::string& name,
                    std::vector<std::vector<clip::TrackPoint>> pins) {
    clip::ClipNet net;
    net.name = name;
    for (auto& aps : pins) {
      clip::ClipPin pin;
      pin.net = static_cast<int>(c.nets.size());
      pin.accessPoints = std::move(aps);
      pin.shapeNm = Rect(0, 0, 40, 40);
      net.pins.push_back(static_cast<int>(c.pins.size()));
      c.pins.push_back(std::move(pin));
    }
    c.nets.push_back(std::move(net));
  };
  addNet("alpha", {{{0, 0, 0}}, {{5, 0, 0}}});              // straight shot
  addNet("beta", {{{0, 3, 0}}, {{5, 3, 0}, {5, 4, 0}}});    // multi-AP sink
  addNet("gamma", {{{2, 5, 0}}, {{2, 1, 0}, {3, 1, 0}},      // 3-pin net
                   {{4, 5, 0}}});
  c.obstacles.push_back({3, 3, 0});  // a blockage on M2

  // --- 2. Route optimally under RULE1 (no restrictions). ------------------
  auto techn = tech::Technology::byName(c.techName).value();
  auto rule1 = tech::ruleByName("RULE1").value();
  core::OptRouter router(techn, rule1);
  core::RouteResult r = router.route(c);

  std::printf("RULE1: status=%s cost=%.0f (wirelength %d + %d vias x %.0f)\n",
              core::toString(r.status), r.cost, r.wirelength, r.vias,
              rule1.viaCostWeight);
  grid::RoutingGraph g(c, techn, rule1);
  std::printf("%s\n", route::renderClip(c, g, &r.solution).c_str());

  // --- 3. Same clip under a harsher rule: SADP on all layers + 4-neighbor
  //        via blocking (RULE7). Cost can only go up; some clips become
  //        unroutable -- exactly the effect the paper quantifies. ----------
  auto rule7 = tech::ruleByName("RULE7").value();
  core::RouteResult r7 = core::OptRouter(techn, rule7).route(c);
  std::printf("RULE7: status=%s", core::toString(r7.status));
  if (r7.hasSolution()) {
    std::printf(" cost=%.0f (delta vs RULE1: %+.0f)", r7.cost,
                r7.cost - r.cost);
  }
  std::printf("\n");

  // --- 4. Verify rule-correctness explicitly with the DRC checker. --------
  route::DrcChecker drc(c, g);
  auto violations = drc.check(r.solution);
  std::printf("DRC on the RULE1 solution: %zu violations\n",
              violations.size());
  return violations.empty() ? 0 : 1;
}
