// Regenerates examples/example.clips, the small committed clip set used by
// the observability walkthrough in docs/OBSERVABILITY.md:
//
//   optrouter batch examples/example.clips /tmp/ckpt.jsonl \
//       --trace=/tmp/trace.jsonl --metrics RULE1 RULE8
//   trace_report /tmp/trace.jsonl
//
// Four deterministic switchboxes (distinct seeds give distinct clip ids),
// sized so every solve proves optimality in seconds while still branching
// enough to produce an interesting trace.
//
// Usage: make_example_clips [out.clips]
#include <cstdio>

#include "clip/clip_io.h"
#include "test_support.h"

using namespace optr;

int main(int argc, char** argv) {
  const char* out = argc > 1 ? argv[1] : "examples/example.clips";
  std::vector<clip::Clip> clips = {
      bench::syntheticSwitchbox(5, 6, 3, 3, 1),
      bench::syntheticSwitchbox(5, 6, 3, 3, 11),
      bench::syntheticSwitchbox(6, 6, 3, 3, 3),
      bench::syntheticSwitchbox(6, 8, 3, 3, 5),
  };
  Status s = clip::saveClips(out, clips);
  if (!s) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  std::printf("wrote %zu clips to %s\n", clips.size(), out);
  return 0;
}
