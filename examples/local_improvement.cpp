// Local improvement of detailed routing (paper Section 5 future work):
// re-optimize a batch of heuristically routed switchboxes with OptRouter,
// in parallel, and report the recovered cost.
//
//   $ ./examples/local_improvement [numClips] [threads]
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"
#include "core/improver.h"
#include "report/table.h"

#include "../bench/test_support.h"

using namespace optr;

int main(int argc, char** argv) {
  int numClips = argc > 1 ? std::atoi(argv[1]) : 6;
  int threads = argc > 2 ? std::atoi(argv[2]) : 2;

  std::vector<clip::Clip> clips;
  for (int s = 0; s < numClips; ++s)
    clips.push_back(bench::syntheticSwitchbox(6, 7, 3, 4, 500 + s));

  core::ImproverOptions opt;
  opt.threads = threads;
  opt.router.mip.timeLimitSec = 15;
  core::LocalImprover improver(tech::Technology::n28_12t(),
                               tech::ruleByName("RULE6").value(), opt);
  core::ImprovementReport report = improver.improve(clips);

  report::Table table({"clip", "baseline", "after", "saved", "status"});
  for (const core::ClipImprovement& ci : report.clips) {
    table.addRow({ci.clipId,
                  ci.baselineRouted ? strFormat("%.0f", ci.baselineCost)
                                    : "unrouted",
                  strFormat("%.0f", ci.optimalCost),
                  ci.baselineRouted
                      ? strFormat("%.0f", ci.baselineCost - ci.optimalCost)
                      : "-",
                  core::toString(ci.status)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "clips with baseline routing: %d, improved: %d, total cost %g -> %g "
      "(saved %g)\n",
      report.attempted, report.improved, report.costBefore, report.costAfter,
      report.totalSaving());
  return 0;
}
