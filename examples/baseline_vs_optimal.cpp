// Baseline vs optimal: routes the same clips with the heuristic
// rip-up-and-reroute maze router and with OptRouter, printing the cost gap
// (the paper's footnote-6 experiment, as a runnable example).
//
//   $ ./examples/baseline_vs_optimal [seedCount]
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "common/strings.h"
#include "core/opt_router.h"
#include "report/table.h"
#include "route/maze_router.h"

using namespace optr;

namespace {

clip::Clip randomSwitchbox(std::uint64_t seed) {
  Rng rng(seed);
  clip::Clip c;
  c.id = "sw" + std::to_string(seed);
  c.techName = "N28-12T";
  c.tracksX = 6;
  c.tracksY = 6;
  c.numLayers = 3;
  std::vector<clip::TrackPoint> taken;
  for (int n = 0; n < 4; ++n) {
    clip::ClipNet net;
    net.name = "n" + std::to_string(n);
    int pins = 2 + (rng.chance(0.25) ? 1 : 0);
    for (int p = 0; p < pins; ++p) {
      for (int tries = 0; tries < 50; ++tries) {
        clip::TrackPoint tp{static_cast<int>(rng.uniformInt(0, 5)),
                            static_cast<int>(rng.uniformInt(0, 5)), 0};
        bool clash = false;
        for (const auto& q : taken) {
          if (q == tp) clash = true;
        }
        if (clash) continue;
        taken.push_back(tp);
        clip::ClipPin pin;
        pin.net = n;
        pin.accessPoints = {tp};
        pin.shapeNm = Rect(0, 0, 40, 40);
        net.pins.push_back(static_cast<int>(c.pins.size()));
        c.pins.push_back(std::move(pin));
        break;
      }
    }
    if (net.pins.size() < 2) {
      // Could not place this net; drop its pins again.
      for (int pi : net.pins) {
        c.pins.erase(c.pins.begin() + pi);
      }
      continue;
    }
    c.nets.push_back(std::move(net));
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  int count = argc > 1 ? std::atoi(argv[1]) : 8;
  auto techn = tech::Technology::n28_12t();
  auto rule = tech::ruleByName("RULE6").value();

  report::Table table({"clip", "baseline", "optimal", "gap", "opt status"});
  double gapSum = 0;
  int compared = 0;
  for (int seed = 1; seed <= count; ++seed) {
    clip::Clip c = randomSwitchbox(seed);
    if (c.nets.size() < 2) continue;
    grid::RoutingGraph g(c, techn, rule);
    route::MazeRouter maze(c, g);
    auto mr = maze.route();

    core::OptRouterOptions o;
    o.mip.timeLimitSec = 20;
    core::OptRouter router(techn, rule, o);
    auto r = router.route(c);

    std::string baseStr = mr.success
                              ? strFormat("%.0f", mr.solution.totalCost(g))
                              : "failed";
    std::string optStr = r.hasSolution() ? strFormat("%.0f", r.cost) : "-";
    std::string gapStr = "-";
    if (mr.success && r.hasSolution()) {
      double gap = r.cost - mr.solution.totalCost(g);
      gapStr = strFormat("%+.0f", gap);
      gapSum += gap;
      ++compared;
    }
    table.addRow({c.id, baseStr, optStr, gapStr, core::toString(r.status)});
  }
  std::printf("%s", table.render().c_str());
  if (compared) {
    std::printf("\nmean gap (optimal - baseline) over %d clips: %.2f "
                "(never positive)\n",
                compared, gapSum / compared);
  }
  return 0;
}
