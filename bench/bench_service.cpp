// Routing-service benchmark: the correctness + payoff gate for the
// service::RequestBroker / ResultCache stack, run fully in-process (the
// broker is transport-agnostic, so no sockets are involved -- the same code
// the daemon serves is driven through a frame-collecting sink).
//
// Three phases, three gates:
//
//   * "cold" pass: the full example-clip x Table 3 rule matrix is submitted
//     through the broker and every result collected. "cached" pass: the
//     identical requests again. For every task the hot pass served from the
//     cache, replyEquivalenceSignature (status, provenance, error, cost,
//     bestBound, wirelength, vias, nodes, lpIterations, cache key, routed
//     geometry) must be BYTE-IDENTICAL to the cold solve -- a replay that
//     differs from the solve it claims to replay FAILS the run (exit 1).
//     Tasks the deadline truncated are not cacheable and re-solve hot;
//     for those the bench_sweep rule applies: proven-in-both must agree
//     byte-for-byte on cost/bound, and a proven verdict must never be
//     contradicted. Every task the cold pass proved must come back `cached`
//     (proven outcomes are admitted to the cache by contract), and fewer
//     than half the tasks proven cold fails too: the byte gate must not
//     pass vacuously.
//   * cache payoff: hit rate in the cached pass must be > 0 and the mean
//     hit SERVICE time at least 10x under the mean cold solve time over
//     the hit tasks (reply.seconds -- client latency would just measure
//     queueing behind the non-cacheable re-solves).
//   * saturation: a deliberately tiny broker (1 worker, queue depth 1,
//     client depth 1) takes a burst of requests; the overflow must come
//     back as typed kSaturated reject frames -- never silent drops -- and
//     every accepted request must still complete under stop(drain).
//   * traced daemon (POSIX + obs builds): a forked child runs a real
//     ServiceServer on a unix socket with its own trace file and live
//     metrics export; the parent sends one route request carrying its root
//     span's trace context, pings for live stats, and shuts the daemon
//     down. Gates: the merged parent+child trace stitches the daemon's
//     service.request span under the bench root (single causal tree), the
//     stitched child span does not outlast the root (work conservation),
//     ping returns non-zero queue-wait and solve percentiles, and the
//     daemon's --metrics-out file ends with a final row.
//
// Emits BENCH_service.json: cold/cached passes in the bench_sweep task
// schema (so bench_compare's proven cost/bound byte gates apply across
// snapshots for free), plus req/s, p50/p95/p99 latency, cache hit rate, hot
// speedup, and the saturation counts. `bench_compare --self` re-checks the
// committed file's invariants (see report/bench_diff.cpp).
//
// Usage: bench_service [--workers N] [--clips path] [--out path.json]
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "clip/clip_io.h"
#include "obs/analyze.h"
#include "obs/trace.h"
#include "service/request_broker.h"
#include "service/service_protocol.h"
#include "tech/rules.h"

#if !defined(_WIN32)
#include <sys/wait.h>
#include <unistd.h>

#include "service/service_client.h"
#include "service/service_server.h"
#endif

using namespace optr;

namespace {

using Clock = std::chrono::steady_clock;

/// Collects the broker's outbound frames and tracks per-request latency
/// (submit -> final frame). The sink runs on broker worker threads (and
/// inside submit() for rejects), so everything is under one mutex.
struct FrameLog {
  std::mutex mu;
  std::condition_variable cv;
  std::unordered_map<std::string, service::RouteReply> results;
  std::unordered_map<std::string, ErrorCode> rejects;
  std::unordered_map<std::string, double> latencyMs;
  std::unordered_map<std::string, Clock::time_point> submitted;
  int finals = 0;

  void expect(const std::string& id) {
    std::lock_guard<std::mutex> lock(mu);
    submitted[id] = Clock::now();
  }

  void onLine(const std::string& line) {
    service::ServiceFrame f = service::decodeFrame(line);
    if (f.type != service::FrameType::kResult &&
        f.type != service::FrameType::kReject) {
      return;  // queued/running status frames
    }
    std::lock_guard<std::mutex> lock(mu);
    const std::string& id =
        f.type == service::FrameType::kResult ? f.reply.id : f.id;
    auto it = submitted.find(id);
    if (it != submitted.end()) {
      latencyMs[id] = std::chrono::duration<double, std::milli>(Clock::now() -
                                                                it->second)
                          .count();
    }
    if (f.type == service::FrameType::kResult) {
      results[id] = f.reply;
    } else {
      rejects[id] = f.errorCode;
    }
    ++finals;
    cv.notify_all();
  }

  void waitFinals(int n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return finals >= n; });
  }
};

struct TaskOut {
  std::string clipId;
  std::string rule;
  service::RouteReply reply;
  double latMs = 0.0;
};

struct PassOut {
  std::string mode;  // "cold" | "cached"
  double wallMs = 0.0;
  double reqPerSec = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  int cacheHits = 0;
  std::vector<TaskOut> tasks;  // clips outer, rules inner
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  std::size_t idx = static_cast<std::size_t>(p * (v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// Submits the full clip x rule matrix and waits for every final frame.
/// Every submission must be admitted (the matrix broker's queues are sized
/// for it); a reject here is a broker bug, not saturation.
PassOut runMatrix(service::RequestBroker& broker, FrameLog& log,
                  const std::vector<clip::Clip>& clips,
                  const std::vector<tech::RuleConfig>& rules,
                  const std::string& mode, bool& ok) {
  PassOut pass;
  pass.mode = mode;
  std::vector<std::string> ids;
  std::vector<std::pair<std::string, std::string>> taskOf;
  int baseFinals;  // the log is shared across passes; wait past this mark
  {
    std::lock_guard<std::mutex> lock(log.mu);
    baseFinals = log.finals;
  }
  auto t0 = Clock::now();
  for (const clip::Clip& c : clips) {
    std::string text = clip::toText(c);
    for (const tech::RuleConfig& rule : rules) {
      service::RouteRequest req;
      req.id = mode + "-" + std::to_string(ids.size());
      req.clipText = text;
      req.ruleName = rule.name;
      log.expect(req.id);
      if (!broker.submit("bench", req)) {
        std::fprintf(stderr, "FAIL: %s pass: submit %s/%s rejected (matrix "
                             "broker queues are sized for the whole sweep)\n",
                     mode.c_str(), c.id.c_str(), rule.name.c_str());
        ok = false;
      }
      ids.push_back(req.id);
      taskOf.emplace_back(c.id, rule.name);
    }
  }
  log.waitFinals(baseFinals + static_cast<int>(ids.size()));
  pass.wallMs =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  pass.reqPerSec =
      pass.wallMs > 0 ? 1000.0 * static_cast<double>(ids.size()) / pass.wallMs
                      : 0.0;

  std::vector<double> lats;
  {
    std::lock_guard<std::mutex> lock(log.mu);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      auto it = log.results.find(ids[i]);
      if (it == log.results.end()) {
        std::fprintf(stderr, "FAIL: %s pass: no result for %s/%s\n",
                     mode.c_str(), taskOf[i].first.c_str(),
                     taskOf[i].second.c_str());
        ok = false;
        continue;
      }
      TaskOut t;
      t.clipId = taskOf[i].first;
      t.rule = taskOf[i].second;
      t.reply = it->second;
      t.latMs = log.latencyMs.count(ids[i]) ? log.latencyMs[ids[i]] : 0.0;
      if (t.reply.cached) ++pass.cacheHits;
      lats.push_back(t.latMs);
      pass.tasks.push_back(std::move(t));
    }
  }
  pass.p50 = percentile(lats, 0.50);
  pass.p95 = percentile(lats, 0.95);
  pass.p99 = percentile(lats, 0.99);
  return pass;
}

bool proven(core::RouteStatus s) {
  return s == core::RouteStatus::kOptimal ||
         s == core::RouteStatus::kInfeasible;
}

core::OptRouterOptions routerOptions() {
  core::OptRouterOptions o;
  o.mip.timeLimitSec = 30;
  o.mip.threads = 1;  // deterministic solves; parallelism comes from workers
  o.formulation.netBBoxMargin = 3;
  o.formulation.netLayerMargin = 1;
  return o;
}

struct SaturationOut {
  int submitted = 0;
  int acceptedCompleted = 0;
  int saturatedRejects = 0;
  bool typedOk = true;  // every reject frame carried error=saturated
};

/// Bursts requests at a minimal broker (1 worker, global queue 1, client
/// queue 1): everything past the in-flight request and the one queued slot
/// must bounce with a typed kSaturated reject, and stop(drain) must still
/// finish whatever was admitted.
SaturationOut runSaturation(const std::vector<clip::Clip>& clips,
                            const std::vector<tech::RuleConfig>& rules) {
  auto log = std::make_shared<FrameLog>();
  service::BrokerOptions bo;
  bo.workers = 1;
  bo.queueDepth = 1;
  bo.clientQueueDepth = 1;
  bo.router = routerOptions();
  bo.universe = rules;
  service::RequestBroker broker(
      bo, [log](const std::string&, const std::string& line) {
        log->onLine(line);
      });

  SaturationOut out;
  std::string text = clip::toText(clips.front());
  int accepted = 0;
  for (int i = 0; i < 8; ++i) {
    service::RouteRequest req;
    req.id = "sat-" + std::to_string(i);
    req.clipText = text;
    req.ruleName = rules.front().name;
    log->expect(req.id);
    if (broker.submit("burst", req)) ++accepted;
    ++out.submitted;
  }
  log->waitFinals(out.submitted);  // rejects are finals too -- never dropped
  broker.stop(/*drain=*/true);

  std::lock_guard<std::mutex> lock(log->mu);
  out.acceptedCompleted = static_cast<int>(log->results.size());
  for (const auto& [id, code] : log->rejects) {
    ++out.saturatedRejects;
    if (code != ErrorCode::kSaturated) {
      std::fprintf(stderr, "FAIL: saturation reject %s carried error '%s', "
                           "want 'saturated'\n",
                   id.c_str(), toString(code));
      out.typedOk = false;
    }
  }
  if (out.acceptedCompleted != accepted) out.typedOk = false;
  return out;
}

struct TracedDaemonOut {
  bool ran = false;          // leg is skipped on non-POSIX / obs-off builds
  bool stitched = false;     // service.request resolved under the bench root
  bool workConserved = false;
  bool pingPercentilesOk = false;
  bool metricsFinalRow = false;
  double queueWaitP50Ms = 0.0;
  double solveP50Ms = 0.0;
};

#if !defined(_WIN32) && OPTR_OBS_ENABLED

/// Forks a real ServiceServer (own trace file, live metrics export), routes
/// one request through it carrying the parent's trace context, and checks
/// that the merged two-process trace is one causal tree.
TracedDaemonOut runTracedDaemon(const std::vector<clip::Clip>& clips,
                                const std::vector<tech::RuleConfig>& rules,
                                const std::string& outPath, bool& ok) {
  TracedDaemonOut out;
  out.ran = true;
  const std::string parentTrace = outPath + ".trace.parent.jsonl";
  const std::string childTrace = outPath + ".trace.child.jsonl";
  const std::string metricsPath = outPath + ".live-metrics.jsonl";
  const std::string sock =
      outPath + ".daemon." + std::to_string(getpid()) + ".sock";
  std::remove(parentTrace.c_str());
  std::remove(childTrace.c_str());
  std::remove(metricsPath.c_str());
  std::remove(sock.c_str());

  pid_t pid = fork();
  if (pid < 0) {
    std::fprintf(stderr, "FAIL: traced daemon: fork failed\n");
    ok = false;
    return out;
  }
  if (pid == 0) {
    // Daemon child: its own trace session (started post-fork, so nothing is
    // shared with the parent's file) and a fast live-export cadence.
    (void)obs::TraceSession::start(childTrace);
    service::ServerOptions so;
    so.listen = "unix:" + sock;
    so.broker.workers = 1;
    so.broker.router = routerOptions();
    so.broker.universe = rules;
    so.metricsOutPath = metricsPath;
    so.telemetryIntervalSec = 0.05;
    service::ServiceServer server(std::move(so));
    int rc = 1;
    if (server.start().isOk()) rc = server.run();
    obs::TraceSession::stop();
    _exit(rc == 0 ? 0 : 1);
  }

  // Parent: wait for the socket, then trace our side of the conversation.
  Status ts = obs::TraceSession::start(parentTrace);
  if (!ts.isOk()) {
    std::fprintf(stderr, "FAIL: traced daemon: %s\n", ts.message().c_str());
    ok = false;
  }
  bool legOk = true;
  {
    service::ServiceClient client;
    Status st = Status::error(ErrorCode::kUnavailable, "never connected");
    for (int attempt = 0; attempt < 100; ++attempt) {
      st = client.connect("unix:" + sock);
      if (st.isOk()) break;
      usleep(50 * 1000);
    }
    if (!st.isOk()) {
      std::fprintf(stderr, "FAIL: traced daemon: %s\n", st.message().c_str());
      legOk = false;
    }

    obs::Span root("bench.service");
    if (legOk) {
      obs::TraceContext ctx = root.mintContext();
      char hex[17];
      std::snprintf(hex, sizeof hex, "%016llx",
                    static_cast<unsigned long long>(ctx.traceId));
      service::RouteRequest req;
      req.id = "traced-0";
      req.clipText = clip::toText(clips.front());
      req.ruleName = rules.front().name;
      req.traceId = hex;
      req.parentSpan = ctx.spanId;
      auto replyOr = client.call(req);
      if (!replyOr.isOk()) {
        std::fprintf(stderr, "FAIL: traced daemon route: %s\n",
                     replyOr.status().message().c_str());
        legOk = false;
      }

      // Live-stats gate: the daemon's own histograms, over the wire.
      auto statsOr = client.ping();
      if (!statsOr.isOk()) {
        std::fprintf(stderr, "FAIL: traced daemon ping: %s\n",
                     statsOr.status().message().c_str());
        legOk = false;
      } else {
        const service::ServiceStats& s = statsOr.value();
        out.queueWaitP50Ms = s.queueWait.p50Ms;
        out.solveP50Ms = s.solveCold.p50Ms;
        out.pingPercentilesOk = s.queueWait.count > 0 &&
                                s.queueWait.p50Ms > 0.0 &&
                                s.solveCold.count > 0 && s.solveCold.p50Ms > 0.0;
        if (!out.pingPercentilesOk) {
          std::fprintf(stderr,
                       "FAIL: ping percentiles not live: queueWait count=%lld "
                       "p50=%.6fms, solveCold count=%lld p50=%.6fms\n",
                       static_cast<long long>(s.queueWait.count),
                       s.queueWait.p50Ms,
                       static_cast<long long>(s.solveCold.count),
                       s.solveCold.p50Ms);
          legOk = false;
        }
      }
      (void)client.sendShutdown();
    }
  }  // root span + client close before the trace stops

  int wstatus = 0;
  if (waitpid(pid, &wstatus, 0) != pid || !WIFEXITED(wstatus) ||
      WEXITSTATUS(wstatus) != 0) {
    std::fprintf(stderr, "FAIL: traced daemon exited abnormally\n");
    legOk = false;
  }
  obs::TraceSession::stop();

  // The daemon's live metrics file must have survived with a final row.
  {
    std::ifstream metrics(metricsPath);
    std::string line, last;
    while (std::getline(metrics, line))
      if (!line.empty()) last = line;
    out.metricsFinalRow = last.find("\"final\":true") != std::string::npos;
    if (!out.metricsFinalRow) {
      std::fprintf(stderr,
                   "FAIL: %s missing the exporter's final row\n",
                   metricsPath.c_str());
      legOk = false;
    }
  }

  // Merge both processes' traces: the daemon's service.request span must be
  // a stitched child of the bench root, and must not outlast it.
  auto entriesOr = obs::loadTraces({parentTrace, childTrace}, nullptr);
  if (!entriesOr.isOk()) {
    std::fprintf(stderr, "FAIL: traced daemon merge: %s\n",
                 entriesOr.status().message().c_str());
    legOk = false;
  } else {
    std::uint64_t rootId = 0;
    std::int64_t rootDur = 0;
    for (const obs::TraceEntry& e : entriesOr.value()) {
      if (e.type == "span" && e.name == "bench.service") {
        rootId = e.id;
        rootDur = e.dur;
      }
    }
    for (const obs::TraceEntry& e : entriesOr.value()) {
      if (e.type != "span" || e.name != "service.request") continue;
      if (e.stitched && e.parent == rootId && rootId != 0) {
        out.stitched = true;
        out.workConserved = e.dur <= rootDur;
      }
    }
    if (!out.stitched) {
      std::fprintf(stderr,
                   "FAIL: merged trace did not stitch service.request under "
                   "the bench root (cross-process parent unresolved)\n");
      legOk = false;
    } else if (!out.workConserved) {
      std::fprintf(stderr,
                   "FAIL: stitched service.request outlasts the bench root "
                   "span (work conservation violated)\n");
      legOk = false;
    }
  }

  std::remove(sock.c_str());
  if (!legOk) ok = false;
  return out;
}

#endif  // !_WIN32 && OPTR_OBS_ENABLED

void emitJson(const std::string& path, int workers, std::size_t numClips,
              std::size_t numRules, const std::vector<PassOut>& passes,
              double cacheHitRate, double hotSpeedup, int equivalenceChecked,
              int equivalenceMismatches, const SaturationOut& sat,
              const TracedDaemonOut& traced) {
  std::ofstream out(path);
  out << std::setprecision(17);
  out << "{\n  \"benchmark\": \"bench_service\",\n  \"workers\": " << workers
      << ",\n  \"clips\": " << numClips << ",\n  \"rules\": " << numRules
      << ",\n  \"cacheHitRate\": " << cacheHitRate
      << ",\n  \"hotSpeedup\": " << hotSpeedup
      << ",\n  \"equivalenceChecked\": " << equivalenceChecked
      << ",\n  \"equivalenceMismatches\": " << equivalenceMismatches
      << ",\n  \"saturation\": {\"submitted\": " << sat.submitted
      << ", \"completed\": " << sat.acceptedCompleted
      << ", \"saturatedRejects\": " << sat.saturatedRejects << "},\n"
      << "  \"saturatedRejects\": " << sat.saturatedRejects << ",\n"
      << "  \"tracedDaemon\": {\"ran\": " << (traced.ran ? 1 : 0)
      << ", \"stitched\": " << (traced.stitched ? 1 : 0)
      << ", \"workConserved\": " << (traced.workConserved ? 1 : 0)
      << ", \"pingPercentilesOk\": " << (traced.pingPercentilesOk ? 1 : 0)
      << ", \"metricsFinalRow\": " << (traced.metricsFinalRow ? 1 : 0)
      << ", \"queueWaitP50Ms\": " << traced.queueWaitP50Ms
      << ", \"solveP50Ms\": " << traced.solveP50Ms << "},\n"
      << "  \"passes\": [\n";
  for (std::size_t p = 0; p < passes.size(); ++p) {
    const PassOut& pass = passes[p];
    out << "    {\"mode\": \"" << pass.mode << "\", \"mipThreads\": 1"
        << ", \"wallMs\": " << pass.wallMs
        << ", \"reqPerSec\": " << pass.reqPerSec
        << ",\n     \"latencyMs\": {\"p50\": " << pass.p50
        << ", \"p95\": " << pass.p95 << ", \"p99\": " << pass.p99 << "}"
        << ", \"cacheHits\": " << pass.cacheHits << ",\n     \"tasks\": [\n";
    for (std::size_t i = 0; i < pass.tasks.size(); ++i) {
      const TaskOut& t = pass.tasks[i];
      out << "       {\"clip\": \"" << t.clipId << "\", \"rule\": \""
          << t.rule << "\", \"wallMs\": " << t.latMs
          << ", \"cost\": " << t.reply.cost
          << ", \"bestBound\": " << t.reply.bestBound << ", \"status\": \""
          << core::toString(t.reply.status) << "\", \"provenance\": \""
          << core::toString(t.reply.provenance) << "\", \"cached\": "
          << (t.reply.cached ? 1 : 0) << ", \"cacheKey\": \""
          << t.reply.cacheKey << "\"}"
          << (i + 1 < pass.tasks.size() ? "," : "") << "\n";
    }
    out << "     ]}" << (p + 1 < passes.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  int workers = 2;
  std::string clipsPath = "examples/example.clips";
  std::string outPath = "BENCH_service.json";
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--workers") == 0 && a + 1 < argc) {
      workers = std::atoi(argv[++a]);
    } else if (std::strcmp(argv[a], "--clips") == 0 && a + 1 < argc) {
      clipsPath = argv[++a];
    } else if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc) {
      outPath = argv[++a];
    } else {
      std::fprintf(stderr,
                   "usage: bench_service [--workers N] [--clips path] "
                   "[--out path.json]\n");
      return 2;
    }
  }
  if (workers < 1) workers = 1;

  auto loaded = clip::loadClips(clipsPath);
  if (!loaded.isOk()) {
    std::fprintf(stderr, "cannot load %s: %s\n", clipsPath.c_str(),
                 loaded.status().message().c_str());
    return 2;
  }
  std::vector<clip::Clip> clips = std::move(loaded).value();
  if (clips.empty()) {
    std::fprintf(stderr, "no clips in %s\n", clipsPath.c_str());
    return 2;
  }
  std::vector<tech::RuleConfig> rules = tech::table3Rules();
  const std::size_t matrix = clips.size() * rules.size();

  bool ok = true;

  // ---- cold + cached matrix through one broker (shared cache) ----
  auto log = std::make_shared<FrameLog>();
  service::BrokerOptions bo;
  bo.workers = workers;
  bo.queueDepth = matrix + 8;        // the whole sweep must be admissible --
  bo.clientQueueDepth = matrix + 8;  // saturation is its own phase below
  bo.router = routerOptions();
  bo.universe = rules;
  service::RequestBroker broker(
      bo, [log](const std::string&, const std::string& line) {
        log->onLine(line);
      });

  PassOut cold = runMatrix(broker, *log, clips, rules, "cold", ok);
  PassOut cached = runMatrix(broker, *log, clips, rules, "cached", ok);
  service::RequestBroker::Stats bstats = broker.stats();
  broker.stop(/*drain=*/true);

  // ---- gate 1: byte-identical cached replays ----
  int equivalenceChecked = 0, equivalenceMismatches = 0, provenCold = 0;
  std::map<std::string, const TaskOut*> coldByKey;
  for (const TaskOut& t : cold.tasks) coldByKey[t.clipId + "|" + t.rule] = &t;
  for (const TaskOut& t : cached.tasks) {
    auto it = coldByKey.find(t.clipId + "|" + t.rule);
    if (it == coldByKey.end()) continue;
    const TaskOut& c = *it->second;
    if (t.reply.cached) {
      // Served from the cache: the replay must be indistinguishable from
      // the solve that populated it.
      ++equivalenceChecked;
      std::string want = service::replyEquivalenceSignature(c.reply);
      std::string got = service::replyEquivalenceSignature(t.reply);
      if (want != got) {
        std::fprintf(stderr,
                     "FAIL: %s/%s cached replay differs from cold solve:\n"
                     "  cold:   %s\n  cached: %s\n",
                     t.clipId.c_str(), t.rule.c_str(), want.c_str(),
                     got.c_str());
        ++equivalenceMismatches;
        ok = false;
      }
    } else if (proven(c.reply.status) && proven(t.reply.status)) {
      // Not cacheable cold (or evicted) so the hot pass re-solved: proven
      // answers are still unique and must agree exactly (bench_sweep rule).
      ++equivalenceChecked;
      if (c.reply.status != t.reply.status || c.reply.cost != t.reply.cost ||
          c.reply.bestBound != t.reply.bestBound) {
        std::fprintf(stderr,
                     "FAIL: %s/%s re-solve diverged: cold %s cost %.17g "
                     "bound %.17g vs hot %s cost %.17g bound %.17g\n",
                     t.clipId.c_str(), t.rule.c_str(),
                     core::toString(c.reply.status), c.reply.cost,
                     c.reply.bestBound, core::toString(t.reply.status),
                     t.reply.cost, t.reply.bestBound);
        ++equivalenceMismatches;
        ok = false;
      }
    } else if ((c.reply.status == core::RouteStatus::kInfeasible &&
                !t.reply.solutionText.empty()) ||
               (t.reply.status == core::RouteStatus::kInfeasible &&
                !c.reply.solutionText.empty())) {
      std::fprintf(stderr,
                   "FAIL: %s/%s infeasibility proof contradicted by a "
                   "validated solution across passes\n",
                   t.clipId.c_str(), t.rule.c_str());
      ++equivalenceMismatches;
      ok = false;
    }
    if (proven(c.reply.status)) {
      ++provenCold;
      if (!t.reply.cached) {
        std::fprintf(stderr,
                     "FAIL: %s/%s proven cold (%s) but the hot pass re-solved "
                     "it instead of hitting the cache\n",
                     t.clipId.c_str(), t.rule.c_str(),
                     core::toString(c.reply.status));
        ok = false;
      }
    }
  }
  if (static_cast<std::size_t>(provenCold) * 2 < matrix) {
    std::fprintf(stderr,
                 "FAIL: only %d of %zu tasks proven in the cold pass -- the "
                 "cache byte gate would be vacuous (raise the time limit or "
                 "shrink the clips)\n",
                 provenCold, matrix);
    ok = false;
  }

  // ---- gate 2: cache payoff ----
  double hitRate = cached.tasks.empty()
                       ? 0.0
                       : static_cast<double>(cached.cacheHits) /
                             static_cast<double>(cached.tasks.size());
  // Service time, not client latency: a hit queued behind a non-cacheable
  // re-solve waits out that solve, which says nothing about the cache.
  double coldSum = 0.0, hotSum = 0.0;
  int hitTasks = 0;
  for (const TaskOut& t : cached.tasks) {
    if (!t.reply.cached) continue;
    auto it = coldByKey.find(t.clipId + "|" + t.rule);
    if (it == coldByKey.end()) continue;
    coldSum += it->second->reply.seconds;
    hotSum += t.reply.seconds;
    ++hitTasks;
  }
  double hotSpeedup =
      (hitTasks > 0 && hotSum > 0.0) ? coldSum / hotSum : 0.0;
  if (cached.cacheHits == 0) {
    std::fprintf(stderr, "FAIL: cached pass hit rate is 0\n");
    ok = false;
  }
  if (hitTasks > 0 && hotSpeedup < 10.0) {
    std::fprintf(stderr,
                 "FAIL: cache hits only %.1fx faster than cold solves "
                 "(mean over %d hit tasks); a hit must be a replay, not a "
                 "re-solve (>= 10x)\n",
                 hotSpeedup, hitTasks);
    ok = false;
  }
  if (bstats.cacheHits != static_cast<std::uint64_t>(cached.cacheHits)) {
    std::fprintf(stderr,
                 "FAIL: broker counted %llu cache hits but %d replies said "
                 "cached=1\n",
                 static_cast<unsigned long long>(bstats.cacheHits),
                 cached.cacheHits);
    ok = false;
  }

  // ---- gate 3: saturation rejects are typed, admitted work completes ----
  SaturationOut sat = runSaturation(clips, rules);
  if (sat.saturatedRejects == 0) {
    std::fprintf(stderr,
                 "FAIL: burst of %d at a depth-1 broker produced no "
                 "saturated rejects\n",
                 sat.submitted);
    ok = false;
  }
  if (!sat.typedOk) ok = false;

  // ---- gate 4: cross-process trace + live telemetry via a real daemon ----
  TracedDaemonOut traced;
#if !defined(_WIN32) && OPTR_OBS_ENABLED
  traced = runTracedDaemon(clips, rules, outPath, ok);
#else
  std::printf("traced daemon leg skipped (needs POSIX + observability)\n");
#endif

  emitJson(outPath, workers, clips.size(), rules.size(), {cold, cached},
           hitRate, hotSpeedup, equivalenceChecked, equivalenceMismatches,
           sat, traced);

  std::printf(
      "bench_service: %zu tasks x 2 passes, workers=%d\n"
      "  cold:   %8.1f ms wall, %6.2f req/s, p50 %8.2f ms p95 %8.2f ms\n"
      "  cached: %8.1f ms wall, %6.2f req/s, p50 %8.2f ms p95 %8.2f ms\n"
      "  hit rate %.2f, hot speedup %.0fx, proven cold %d/%zu\n"
      "  saturation: %d submitted, %d completed, %d typed rejects\n"
      "  equivalence: %d checked, %d mismatches -> %s\n",
      matrix, workers, cold.wallMs, cold.reqPerSec, cold.p50, cold.p95,
      cached.wallMs, cached.reqPerSec, cached.p50, cached.p95, hitRate,
      hotSpeedup, provenCold, matrix, sat.submitted, sat.acceptedCompleted,
      sat.saturatedRejects, equivalenceChecked, equivalenceMismatches,
      ok ? "OK" : "FAIL");
  if (traced.ran) {
    std::printf(
        "  traced daemon: stitched=%d workConserved=%d pingLive=%d "
        "finalMetricsRow=%d (queueWait p50 %.4f ms, solve p50 %.2f ms)\n",
        traced.stitched ? 1 : 0, traced.workConserved ? 1 : 0,
        traced.pingPercentilesOk ? 1 : 0, traced.metricsFinalRow ? 1 : 0,
        traced.queueWaitP50Ms, traced.solveP50Ms);
  }
  return ok ? 0 : 1;
}
