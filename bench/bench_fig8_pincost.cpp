// Reproduces Figure 8: top-100 pin-cost distributions (PEC + PAC + PRC,
// theta = 500) for AES and M0 at three utilizations in N7-9T.
//
// Paper observations to reproduce in shape:
//   * distributions barely move with utilization;
//   * distributions are not design-specific (AES and M0 ranges overlap;
//     paper: AES 33-42, M0 30-41 for the top-100).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/strings.h"
#include "report/table.h"
#include "testbed.h"

int main(int argc, char** argv) {
  using namespace optr;
  bench::TestbedOptions opt;
  // Pin-cost ranking needs no ILP, so dense windows stay in (the paper
  // ranks all ~10K windows per testcase).
  opt.maxNetsPerClip = 40;
  int topK = argc > 1 ? std::atoi(argv[1]) : 100;

  auto techn = tech::Technology::n7_9t();
  std::printf("=== Figure 8: top-%d pin-cost distributions (N7-9T) ===\n\n",
              topK);

  report::Series series("sorted pin cost of top clips", "rank",
                        "PEC+PAC+PRC");
  report::Table table({"Design", "Util", "#clips", "top-K min", "top-K max",
                       "median"});
  for (const layout::DesignSpec& spec : bench::table2Specs(techn, opt)) {
    bench::DesignVersion v = bench::buildVersion(techn, spec, opt);
    std::vector<double> costs;
    for (const clip::Clip& c : v.clips)
      costs.push_back(clip::pinCost(c).total());
    std::sort(costs.rbegin(), costs.rend());
    std::vector<double> top(costs.begin(),
                            costs.begin() +
                                std::min<std::size_t>(costs.size(), topK));
    if (top.empty()) continue;
    series.add(spec.name + strFormat("(u=%.0f%%)", spec.utilization * 100),
               top);
    table.addRow({spec.name, strFormat("%.0f%%", spec.utilization * 100),
                  std::to_string(costs.size()),
                  strFormat("%.1f", top.back()), strFormat("%.1f", top.front()),
                  strFormat("%.1f", top[top.size() / 2])});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("%s\n", series.render().c_str());
  std::printf(
      "Shape check vs paper: top-K ranges should overlap across designs and\n"
      "move little with utilization.\n");
  return 0;
}
