// Future-work experiment (paper Section 5 / observation (2) of Section 4.2):
// the Taghavi pin-cost metric does not fully predict switchbox routability.
// This bench measures, on a sample of switchboxes of varying density, the
// Spearman rank correlation of (a) the paper's pin-cost metric and (b) our
// switchbox-centric routability estimate against ground truth from
// OptRouter: delta-cost under an aggressive rule (RULE8) with infeasibility
// ranked hardest.
//
// Usage: bench_metric_gap [samples] [timeLimitSec]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

#include "clip/routability.h"
#include "common/strings.h"
#include "core/opt_router.h"
#include "report/table.h"
#include "test_support.h"

using namespace optr;

int main(int argc, char** argv) {
  int samples = argc > 1 ? std::atoi(argv[1]) : 12;
  double timeLimit = argc > 2 ? std::atof(argv[2]) : 15.0;

  auto techn = tech::Technology::n28_12t();
  auto rule1 = tech::ruleByName("RULE1").value();
  auto rule8 = tech::ruleByName("RULE8").value();  // SADP>=M3 + 4-neighbor

  std::printf("=== Metric gap: pin cost vs switchbox routability ===\n\n");
  report::Table table({"Clip", "nets", "pinCost", "sbox score", "dCost",
                       "status"});

  std::vector<double> pinCosts, sboxScores, truth;
  for (int s = 0; s < samples; ++s) {
    // Vary density: nets from 3 to 6 on the same grid.
    int nets = 3 + (s % 4);
    clip::Clip c = bench::syntheticSwitchbox(6, 7, 3, nets, 1000 + s);

    core::OptRouterOptions o;
    o.mip.timeLimitSec = timeLimit;
    auto r1 = core::OptRouter(techn, rule1, o).route(c);
    auto r8 = core::OptRouter(techn, rule8, o).route(c);
    if (!r1.hasSolution()) continue;  // no reference

    double d;
    const char* status;
    if (r8.hasSolution()) {
      d = r8.cost - r1.cost;
      status = core::toString(r8.status);
    } else if (r8.status == core::RouteStatus::kInfeasible) {
      d = 1e6;  // infeasible ranks hardest
      status = "infeasible";
    } else {
      continue;  // unresolved: excluded from the correlation
    }
    double pc = clip::pinCost(c).total();
    double sb = clip::estimateRoutability(c).score;
    pinCosts.push_back(pc);
    sboxScores.push_back(sb);
    truth.push_back(d);
    table.addRow({c.id, std::to_string(nets), strFormat("%.1f", pc),
                  strFormat("%.2f", sb),
                  d >= 1e6 ? "inf" : strFormat("%.0f", d), status});
  }
  std::printf("%s\n", table.render().c_str());

  double rhoPin = clip::spearmanCorrelation(pinCosts, truth);
  double rhoSbox = clip::spearmanCorrelation(sboxScores, truth);
  std::printf("Spearman rank correlation with OptRouter delta-cost:\n");
  std::printf("  pin-cost metric (Taghavi, used by the paper): %+.3f\n",
              rhoPin);
  std::printf("  switchbox routability score (this work):      %+.3f\n",
              rhoSbox);
  std::printf(
      "\nShape check vs paper observation (2): pin cost alone correlates\n"
      "weakly with switchbox delta-cost; a whole-switchbox estimate that\n"
      "prices congestion and boundary pressure correlates better.\n");
  return 0;
}
