// Reproduces the paper's Section 4.2 "Analysis of the number of variables
// and constraints": how |V|, |A|, |N| and the rule configuration drive ILP
// size, including the SADP p-variable blow-up and via-shape growth.
//
// Paper formulas (per Section 4.2):
//   base:            vars O(|A| |N|),                rows O((|V| + 3|A|)|N|)
//   via restriction: vars unchanged,                 rows +O(alpha |V|)
//   SADP:            vars O((10|V| + |A>|)|N|),      rows O((34|V| + 3|A|)|N|)
//   via shapes:      vars O((beta |V| + |A|)|N|),    rows +O(beta^2 |V| |N|)
// Our eager encodings are leaner (DESIGN.md notes the exact-EOL encoding
// uses 3 extra vars per vertex-net instead of 10) but must scale the same
// way; this bench prints measured counts for each configuration.
#include <cstdio>

#include "core/formulation.h"
#include "report/table.h"
#include "testbed.h"

using namespace optr;

namespace {

clip::Clip syntheticClip(int tx, int ty, int nz, int nets) {
  clip::Clip c;
  c.id = "complexity";
  c.techName = "N28-12T";
  c.tracksX = tx;
  c.tracksY = ty;
  c.numLayers = nz;
  for (int n = 0; n < nets; ++n) {
    clip::ClipNet net;
    net.name = "n" + std::to_string(n);
    for (int p = 0; p < 2; ++p) {
      clip::ClipPin pin;
      pin.net = n;
      pin.accessPoints = {{p * (tx - 1), (n * 2 + p) % ty, 0}};
      pin.shapeNm = Rect(0, 0, 50, 50);
      net.pins.push_back(static_cast<int>(c.pins.size()));
      c.pins.push_back(pin);
    }
    c.nets.push_back(net);
  }
  return c;
}

struct Config {
  const char* name;
  tech::RuleConfig rule;
  core::FormulationOptions fo;
};

}  // namespace

int main() {
  auto techn = tech::Technology::n28_12t();
  clip::Clip c = syntheticClip(7, 10, 4, 4);

  std::vector<Config> configs;
  {
    Config base{"base (no rules, lazy)", tech::ruleByName("RULE1").value(), {}};
    base.fo.eagerViaRules = false;
    configs.push_back(base);
  }
  {
    Config via4{"+via restriction 4 (eager)", tech::ruleByName("RULE6").value(), {}};
    configs.push_back(via4);
  }
  {
    Config via8{"+via restriction 8 (eager)", tech::ruleByName("RULE9").value(), {}};
    configs.push_back(via8);
  }
  {
    Config sadp{"+SADP >= M2 (eager p-vars)", tech::ruleByName("RULE2").value(), {}};
    sadp.fo.eagerSadp = true;
    configs.push_back(sadp);
  }
  {
    Config sadp3{"+SADP >= M3 (eager p-vars)", tech::ruleByName("RULE3").value(), {}};
    sadp3.fo.eagerSadp = true;
    configs.push_back(sadp3);
  }
  {
    Config shapes{"+via shapes 2x1,2x2 (eager)", tech::ruleByName("RULE1").value(), {}};
    shapes.rule.viaShapes = {tech::unitVia(), tech::barViaX(), tech::barViaY(),
                             tech::squareVia()};
    configs.push_back(shapes);
  }
  {
    Config unmerged{"base without 2-pin merge", tech::ruleByName("RULE1").value(), {}};
    unmerged.fo.eagerViaRules = false;
    unmerged.fo.mergeTwoPinNets = false;
    unmerged.fo.emitUpperCoupling = true;  // paper constraint (3) included
    configs.push_back(unmerged);
  }

  std::printf(
      "=== Section 4.2: ILP size vs rule configuration (7x10 tracks, 4 "
      "layers, 4 two-pin nets) ===\n\n");
  report::Table table({"Configuration", "|V|", "|A|", "vars", "int vars",
                       "rows"});
  for (const Config& cfg : configs) {
    grid::RoutingGraph g(c, techn, cfg.rule);
    core::Formulation f(c, g, cfg.fo);
    const auto& st = f.stats();
    table.addRow({cfg.name, std::to_string(st.numVertices),
                  std::to_string(st.numArcs), std::to_string(st.numVariables),
                  std::to_string(st.numIntegerVars),
                  std::to_string(st.numRows)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Shape checks vs the paper's O() analysis:\n"
      " * via restrictions add rows, not variables;\n"
      " * 8-neighbor blocking adds ~2x the rows of 4-neighbor;\n"
      " * SADP adds O(|V| |N|) variables and rows; SADP >= M2 costs more\n"
      "   than SADP >= M3 (one more constrained layer);\n"
      " * via shapes multiply candidate-via vertices/arcs (beta growth);\n"
      " * disabling the 2-pin merge roughly doubles variable count (the\n"
      "   paper's unreduced formulation).\n");
  return 0;
}
