// Reproduces Table 2: benchmark design matrix (technology, design, instance
// count, utilization), plus derived statistics from our synthetic substrate
// (nets, placement rows, harvested clips).
//
// Paper reference values (Table 2): AES 12-15K instances, M0 9.2-11.4K,
// utilizations 89-97% depending on technology. Our designs are scaled down
// (DESIGN.md "Substitutions"); the utilization sweep is preserved exactly.
#include <cstdio>

#include "common/strings.h"
#include "report/table.h"
#include "testbed.h"

int main(int argc, char** argv) {
  using namespace optr;
  bench::TestbedOptions opt;
  if (argc > 1) opt.aesInstances = std::atoi(argv[1]);

  std::printf("=== Table 2: benchmark designs (synthetic, scaled) ===\n\n");
  report::Table table({"Tech.", "Design", "#inst (target)", "#inst (placed)",
                       "Util target", "Util achieved", "#nets", "#clips"});
  for (const tech::Technology& techn : tech::Technology::all()) {
    auto lib = layout::CellLibrary::forTechnology(techn);
    for (const layout::DesignSpec& spec : bench::table2Specs(techn, opt)) {
      bench::DesignVersion v = bench::buildVersion(techn, spec, opt);
      table.addRow({techn.name, spec.name,
                    std::to_string(spec.targetInstances),
                    std::to_string(v.design.instances.size()),
                    strFormat("%.0f%%", spec.utilization * 100),
                    strFormat("%.1f%%", v.design.utilization(lib) * 100),
                    std::to_string(v.design.nets.size()),
                    std::to_string(v.clips.size())});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper shape check: same design at higher utilization packs the same\n"
      "instance count into fewer sites; clip counts track die area.\n");
  return 0;
}
