// Reproduces the paper's Section 5 runtime observations using
// google-benchmark: OptRouter solve time for a 7x10-track switchbox vs a
// 10x10-track switchbox, with and without SADP + via-restriction rules.
//
// Paper numbers (CPLEX, full-size clips): 7x10 = 842s without rules, 1047s
// with; 10x10 = 925s / 1340s. Absolute times differ on our bundled solver
// and reduced layer count; the *ordering* must match: rules cost extra time,
// and the larger switchbox costs more than the smaller one.
#include <benchmark/benchmark.h>

#include "core/opt_router.h"
#include "test_support.h"

using namespace optr;

namespace {

void solveOnce(benchmark::State& state, int tracksX, int tracksY,
               bool withRules) {
  auto techn = tech::Technology::n28_12t();
  auto rule = withRules ? tech::ruleByName("RULE8").value()   // SADP>=M3 + 4nb
                        : tech::ruleByName("RULE1").value();
  clip::Clip c = bench::syntheticSwitchbox(tracksX, tracksY, 4, 5, 42);
  core::OptRouterOptions o;
  o.mip.timeLimitSec = 30;
  o.formulation.netBBoxMargin = 3;
  o.formulation.netLayerMargin = 1;
  core::OptRouter router(techn, rule, o);
  for (auto _ : state) {
    core::RouteResult r = router.route(c);
    benchmark::DoNotOptimize(r.cost);
    state.counters["nodes"] = static_cast<double>(r.nodes);
    state.counters["optimal"] =
        r.status == core::RouteStatus::kOptimal ? 1 : 0;
  }
}

void BM_Switchbox7x10_NoRules(benchmark::State& s) { solveOnce(s, 7, 10, false); }
void BM_Switchbox7x10_SadpVia(benchmark::State& s) { solveOnce(s, 7, 10, true); }
void BM_Switchbox10x10_NoRules(benchmark::State& s) { solveOnce(s, 10, 10, false); }
void BM_Switchbox10x10_SadpVia(benchmark::State& s) { solveOnce(s, 10, 10, true); }

BENCHMARK(BM_Switchbox7x10_NoRules)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Switchbox7x10_SadpVia)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Switchbox10x10_NoRules)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Switchbox10x10_SadpVia)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
