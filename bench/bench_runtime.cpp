// Runtime benchmark with a machine-readable perf trajectory.
//
// Reproduces the paper's Section 5 runtime observations (7x10 vs 10x10-track
// switchboxes, with and without SADP + via-restriction rules; larger clips
// and more rules cost more time) and measures the two parallel modes this
// codebase offers:
//   * serial        -- the baseline: one clip at a time, threads = 1;
//   * mip-parallel  -- one clip at a time, MipOptions.threads = N workers
//                      inside each branch-and-bound solve;
//   * clip-parallel -- N clips in flight at once, each solved serially
//                      (the RuleEvaluator / BatchRunner thread-pool mode).
//
// Emits BENCH_runtime.json: per-clip wall ms, LP pivots, B&B nodes, thread
// counts, provenance counts, pass-level metrics-registry totals, and the
// speedup of each parallel mode over the serial baseline. Per-clip pivot and
// node counts are sourced from the obs metrics registry (snapshot deltas
// around each solve) in the single-flight passes, so the benchmark reports
// the same numbers any traced production run would.
//
// The run FAILS (exit 1) when:
//   * a clip proven optimal by both the serial and a parallel pass disagrees
//     on the objective -- threads must be a pure performance knob; or
//   * (obs builds) a pass's registry totals disagree with the sum of its
//     RouteResult counters -- the work-conservation gate: every worker's
//     pivots and nodes must be counted exactly once, at any thread count.
//
// Usage: bench_runtime [--threads N] [--out path.json]
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/opt_router.h"
#include "obs/metrics.h"
#include "test_support.h"

using namespace optr;

namespace {

struct BenchTask {
  std::string name;
  int tracksX, tracksY, layers, nets;
  std::uint64_t seed;
  const char* rule;
};

constexpr bool kObsEnabled = OPTR_OBS_ENABLED != 0;

struct ClipStat {
  std::string name;
  std::string rule;
  double wallMs = 0.0;
  // Reported pivot/node counts. In single-flight passes these come from the
  // metrics-registry delta around the solve; in the clip-parallel pass
  // (concurrent solves share the registry) from the RouteResult.
  std::int64_t lpPivots = 0;
  std::int64_t nodes = 0;
  // Always the RouteResult's counters: the work-conservation gate checks
  // the registry totals against these sums.
  std::int64_t resultPivots = 0;
  std::int64_t resultNodes = 0;
  double cost = 0.0;
  core::RouteStatus status = core::RouteStatus::kError;
  core::Provenance provenance = core::Provenance::kNone;
};

/// Pass-level registry deltas (zero in OPTR_OBS_DISABLED builds).
struct RegistryTotals {
  std::int64_t lpPivots = 0;   // lp.pivots: counted at the simplex layer
  std::int64_t ilpPivots = 0;  // ilp.lp_pivots: counted at the MIP layer
  std::int64_t nodes = 0;      // ilp.nodes
  std::int64_t routeSolves = 0;
};

struct PassStat {
  std::string mode;
  int clipThreads = 1;
  int mipThreads = 1;
  double wallMs = 0.0;
  RegistryTotals registry;
  std::vector<ClipStat> clips;

  std::array<int, 4> provenanceCounts() const {
    std::array<int, 4> counts{};
    for (const ClipStat& c : clips) counts[static_cast<int>(c.provenance)]++;
    return counts;
  }
  std::int64_t sumResultPivots() const {
    std::int64_t n = 0;
    for (const ClipStat& c : clips) n += c.resultPivots;
    return n;
  }
  std::int64_t sumResultNodes() const {
    std::int64_t n = 0;
    for (const ClipStat& c : clips) n += c.resultNodes;
    return n;
  }
};

std::vector<BenchTask> taskSet() {
  // Switchbox sizes x {no rules, SADP+via rules}, as in the paper's runtime
  // table, sized so every clip *proves* optimality inside the limit (the
  // determinism gate needs proven optima to compare) while still branching
  // enough (tens to hundreds of nodes) that the parallel tree search has
  // real work. Eight independent clips keep a 4-wide pool busy.
  return {
      {"sb5x6", 5, 6, 3, 3, 1, "RULE1"},
      {"sb5x6", 5, 6, 3, 3, 11, "RULE1"},
      {"sb5x6", 5, 6, 3, 3, 11, "RULE8"},
      {"sb5x6", 5, 6, 3, 3, 13, "RULE8"},
      {"sb6x6", 6, 6, 3, 3, 11, "RULE1"},
      {"sb6x6", 6, 6, 3, 3, 3, "RULE8"},
      {"sb6x8", 6, 8, 3, 3, 5, "RULE1"},
      {"sb6x8", 6, 8, 3, 3, 13, "RULE8"},
  };
}

/// `singleFlight` means no other solve shares the registry during this call,
/// so a snapshot delta attributes cleanly to this clip.
ClipStat solveTask(const BenchTask& t, int mipThreads, bool singleFlight) {
  auto techn = tech::Technology::n28_12t();
  auto rule = tech::ruleByName(t.rule).value();
  clip::Clip c =
      bench::syntheticSwitchbox(t.tracksX, t.tracksY, t.layers, t.nets, t.seed);
  core::OptRouterOptions o;
  o.mip.timeLimitSec = 30;
  o.mip.threads = mipThreads;
  o.formulation.netBBoxMargin = 3;
  o.formulation.netLayerMargin = 1;
  core::OptRouter router(techn, rule, o);

  obs::MetricsSnapshot before;
  if (kObsEnabled && singleFlight) before = obs::metrics().snapshot();
  auto t0 = std::chrono::steady_clock::now();
  core::RouteResult r = router.route(c);
  ClipStat s;
  s.wallMs =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  s.name = t.name + "_s" + std::to_string(t.seed);
  s.rule = t.rule;
  s.resultPivots = r.lpIterations;
  s.resultNodes = r.nodes;
  if (kObsEnabled && singleFlight) {
    obs::MetricsSnapshot d =
        obs::MetricsSnapshot::delta(obs::metrics().snapshot(), before);
    s.lpPivots = d.value("lp.pivots");
    s.nodes = d.value("ilp.nodes");
  } else {
    s.lpPivots = r.lpIterations;
    s.nodes = r.nodes;
  }
  s.cost = r.cost;
  s.status = r.status;
  s.provenance = r.provenance;
  return s;
}

PassStat runPass(const std::vector<BenchTask>& tasks, const std::string& mode,
                 int clipThreads, int mipThreads) {
  PassStat pass;
  pass.mode = mode;
  pass.clipThreads = clipThreads;
  pass.mipThreads = mipThreads;
  pass.clips.resize(tasks.size());

  obs::MetricsSnapshot before;
  if (kObsEnabled) before = obs::metrics().snapshot();
  auto t0 = std::chrono::steady_clock::now();
  if (clipThreads <= 1) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      pass.clips[i] = solveTask(tasks[i], mipThreads, /*singleFlight=*/true);
    }
  } else {
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (;;) {
        std::size_t i = next.fetch_add(1);
        if (i >= tasks.size()) return;
        pass.clips[i] = solveTask(tasks[i], mipThreads, /*singleFlight=*/false);
      }
    };
    std::vector<std::thread> pool;
    for (int w = 0; w < clipThreads; ++w) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }
  pass.wallMs = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  if (kObsEnabled) {
    obs::MetricsSnapshot d =
        obs::MetricsSnapshot::delta(obs::metrics().snapshot(), before);
    pass.registry.lpPivots = d.value("lp.pivots");
    pass.registry.ilpPivots = d.value("ilp.lp_pivots");
    pass.registry.nodes = d.value("ilp.nodes");
    pass.registry.routeSolves = d.value("route.solves");
  }
  return pass;
}

/// Work-conservation gate (obs builds only): a pass's registry totals must
/// equal the sum of its RouteResult counters, exactly. Any miss means some
/// worker's pivots or nodes escaped the plumbing.
bool checkWorkConservation(const PassStat& pass) {
  if (!kObsEnabled) return true;
  bool ok = true;
  auto expect = [&](const char* what, std::int64_t registry,
                    std::int64_t summed) {
    if (registry != summed) {
      std::fprintf(stderr,
                   "FAIL: %s pass: registry %s %lld != summed results %lld\n",
                   pass.mode.c_str(), what, static_cast<long long>(registry),
                   static_cast<long long>(summed));
      ok = false;
    }
  };
  expect("lp.pivots", pass.registry.lpPivots, pass.sumResultPivots());
  expect("ilp.lp_pivots", pass.registry.ilpPivots, pass.sumResultPivots());
  expect("ilp.nodes", pass.registry.nodes, pass.sumResultNodes());
  expect("route.solves", pass.registry.routeSolves,
         static_cast<std::int64_t>(pass.clips.size()));
  return ok;
}

void emitJson(const std::string& path, int threads,
              const std::vector<PassStat>& passes) {
  std::ofstream out(path);
  out << "{\n  \"benchmark\": \"bench_runtime\",\n  \"threads\": " << threads
      << ",\n  \"passes\": [\n";
  for (std::size_t p = 0; p < passes.size(); ++p) {
    const PassStat& pass = passes[p];
    auto prov = pass.provenanceCounts();
    out << "    {\"mode\": \"" << pass.mode
        << "\", \"clipThreads\": " << pass.clipThreads
        << ", \"mipThreads\": " << pass.mipThreads
        << ", \"wallMs\": " << pass.wallMs << ",\n     \"registry\": {"
        << "\"lpPivots\": " << pass.registry.lpPivots
        << ", \"ilpPivots\": " << pass.registry.ilpPivots
        << ", \"nodes\": " << pass.registry.nodes
        << ", \"routeSolves\": " << pass.registry.routeSolves
        << "},\n     \"provenance\": {"
        << "\"ilp-proven\": " << prov[static_cast<int>(core::Provenance::kIlpProven)]
        << ", \"ilp-incumbent\": "
        << prov[static_cast<int>(core::Provenance::kIlpIncumbent)]
        << ", \"maze-fallback\": "
        << prov[static_cast<int>(core::Provenance::kMazeFallback)] << "},\n"
        << "     \"clips\": [\n";
    for (std::size_t i = 0; i < pass.clips.size(); ++i) {
      const ClipStat& c = pass.clips[i];
      out << "       {\"name\": \"" << c.name << "\", \"rule\": \"" << c.rule
          << "\", \"wallMs\": " << c.wallMs << ", \"lpPivots\": " << c.lpPivots
          << ", \"nodes\": " << c.nodes << ", \"cost\": " << c.cost
          << ", \"status\": \"" << core::toString(c.status)
          << "\", \"provenance\": \"" << core::toString(c.provenance) << "\"}"
          << (i + 1 < pass.clips.size() ? "," : "") << "\n";
    }
    out << "     ]}" << (p + 1 < passes.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 4;
  std::string outPath = "BENCH_runtime.json";
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--threads") == 0 && a + 1 < argc) {
      threads = std::atoi(argv[++a]);
    } else if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc) {
      outPath = argv[++a];
    } else {
      std::fprintf(stderr,
                   "usage: bench_runtime [--threads N] [--out path.json]\n");
      return 2;
    }
  }
  if (threads < 1) threads = 1;

  std::vector<BenchTask> tasks = taskSet();
  std::vector<PassStat> passes;
  passes.push_back(runPass(tasks, "serial", 1, 1));
  passes.push_back(runPass(tasks, "mip-parallel", 1, threads));
  passes.push_back(runPass(tasks, "clip-parallel", threads, 1));

  const PassStat& serial = passes[0];
  std::printf("%-14s %-6s %10s %12s %10s %8s %s\n", "clip", "rule", "wall ms",
              "LP pivots", "nodes", "cost", "status");
  for (const ClipStat& c : serial.clips) {
    std::printf("%-14s %-6s %10.1f %12lld %10lld %8.0f %s/%s\n",
                c.name.c_str(), c.rule.c_str(), c.wallMs,
                static_cast<long long>(c.lpPivots),
                static_cast<long long>(c.nodes), c.cost,
                core::toString(c.status), core::toString(c.provenance));
  }

  // Determinism gate: a clip proven optimal by both the serial baseline and
  // a parallel pass must agree on the objective bit-for-bit.
  bool diverged = false;
  for (const PassStat& pass : passes) {
    if (!checkWorkConservation(pass)) diverged = true;
  }
  for (std::size_t p = 1; p < passes.size(); ++p) {
    for (std::size_t i = 0; i < serial.clips.size(); ++i) {
      const ClipStat& s = serial.clips[i];
      const ClipStat& q = passes[p].clips[i];
      if (s.status == core::RouteStatus::kOptimal &&
          q.status == core::RouteStatus::kOptimal && s.cost != q.cost) {
        std::fprintf(stderr,
                     "FAIL: %s/%s optimum diverged: serial %.17g vs %s %.17g\n",
                     s.name.c_str(), s.rule.c_str(), s.cost,
                     passes[p].mode.c_str(), q.cost);
        diverged = true;
      }
    }
  }

  for (std::size_t p = 1; p < passes.size(); ++p) {
    std::printf("%s (x%d): %.0f ms vs serial %.0f ms -> speedup %.2fx\n",
                passes[p].mode.c_str(), threads, passes[p].wallMs,
                serial.wallMs, serial.wallMs / passes[p].wallMs);
  }

  emitJson(outPath, threads, passes);
  std::printf("wrote %s\n", outPath.c_str());
  return diverged ? 1 : 0;
}
