// RC-scaling study (paper Section 4 methodology): the prototype 7nm library
// is evaluated inside the 28nm BEOL stack with R_N7 = 6 x R_N28 and
// C_N7 = C_N28 / 2.5. This bench routes the same switchboxes, then compares
// Elmore delays under the two RC models -- quantifying how the resistivity
// explosion at 7nm turns modest wirelength into large delay.
//
// Usage: bench_rc_scaling [numClips]
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"
#include "core/opt_router.h"
#include "report/table.h"
#include "route/delay.h"
#include "test_support.h"

using namespace optr;

int main(int argc, char** argv) {
  int numClips = argc > 1 ? std::atoi(argv[1]) : 4;
  auto techn = tech::Technology::n28_12t();
  auto rule = tech::ruleByName("RULE1").value();
  tech::RcModel rc28 = tech::RcModel::n28();
  tech::RcModel rc7 = tech::RcModel::n7FromN28();

  std::printf("=== RC scaling: N28 vs scaled-N7 Elmore delays ===\n");
  std::printf("R_N7 = 6 x R_N28, C_N7 = C_N28 / 2.5 (paper Section 4)\n\n");

  report::Table table({"Clip", "net", "WL+vias cost", "delay N28",
                       "delay N7", "ratio"});
  double sum28 = 0, sum7 = 0;
  int counted = 0;
  for (int s = 0; s < numClips; ++s) {
    clip::Clip c = bench::syntheticSwitchbox(6, 7, 3, 4, 900 + s);
    core::OptRouterOptions o;
    o.mip.timeLimitSec = 15;
    core::OptRouter router(techn, rule, o);
    auto r = router.route(c);
    if (!r.hasSolution()) continue;
    grid::RoutingGraph g(c, techn, rule);
    auto d28 = route::estimateNetDelays(c, g, r.solution, rc28);
    auto d7 = route::estimateNetDelays(c, g, r.solution, rc7);
    for (std::size_t n = 0; n < d28.size(); ++n) {
      if (d28[n].worstSinkDelay <= 0) continue;
      double ratio = d7[n].worstSinkDelay / d28[n].worstSinkDelay;
      sum28 += d28[n].worstSinkDelay;
      sum7 += d7[n].worstSinkDelay;
      ++counted;
      table.addRow({c.id, c.nets[n].name, strFormat("%.0f", r.cost),
                    strFormat("%.2f", d28[n].worstSinkDelay),
                    strFormat("%.2f", d7[n].worstSinkDelay),
                    strFormat("%.2fx", ratio)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  if (counted) {
    std::printf("mean delay ratio N7/N28 over %d nets: %.2fx\n", counted,
                sum7 / sum28);
  }
  std::printf(
      "\nShape check: wire-dominated nets scale toward 6/2.5 = 2.4x (R up\n"
      "6x, C down 2.5x); driver/sink-dominated nets scale less -- the\n"
      "spread shows why the paper re-derives RC rather than reusing 28nm\n"
      "timing.\n");
  return 0;
}
