// Reproduces the paper's footnote 6 validation: OptRouter vs the (heuristic)
// commercial-router stand-in. The paper reports OptRouter always achieves
// non-positive delta-cost vs the commercial tool, averaging -10..-15 against
// an average routing cost of ~380 -- i.e. the exact solver is never worse
// and typically a few percent better.
//
// Usage: bench_validation [numClips] [timeLimitSec]
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/strings.h"
#include "core/opt_router.h"
#include "report/table.h"
#include "route/maze_router.h"
#include "testbed.h"

using namespace optr;

int main(int argc, char** argv) {
  int numClips = argc > 1 ? std::atoi(argv[1]) : 3;
  double timeLimit = argc > 2 ? std::atof(argv[2]) : 30.0;

  bench::TestbedOptions opt;
  std::printf(
      "=== Footnote 6: OptRouter vs heuristic baseline (delta <= 0) ===\n\n");

  report::Table table({"Tech", "Clip", "baseline cost", "OptRouter cost",
                       "dCost", "status", "provenance"});
  double sumDelta = 0, sumBase = 0;
  int counted = 0;
  bool anyPositive = false;
  // Rows per degradation-ladder rung (indexed by core::Provenance): mixing a
  // maze-fallback row into a "delta <= 0" claim would be dishonest, so the
  // bench reports how many rows hold which proof quality.
  int provCounts[4] = {0, 0, 0, 0};
  for (const tech::Technology& techn : tech::Technology::all()) {
    auto rule = tech::ruleByName("RULE1").value();
    std::vector<clip::Clip> clips = bench::topClips(techn, numClips, opt);
    for (const clip::Clip& c : clips) {
      grid::RoutingGraph g(c, techn, rule);
      route::MazeRouter maze(c, g);
      route::MazeResult mr = maze.route();
      if (!mr.success) continue;  // baseline failed: nothing to compare
      double baseCost = mr.solution.totalCost(g);

      // No region pruning here: the comparison is only meaningful when the
      // exact router searches the same space the heuristic did.
      core::OptRouterOptions o;
      o.mip.timeLimitSec = timeLimit;
      core::OptRouter router(techn, rule, o);
      core::RouteResult r = router.route(c);
      if (!r.hasSolution()) continue;

      double delta = r.cost - baseCost;
      sumDelta += delta;
      sumBase += baseCost;
      ++counted;
      if (delta > 1e-6 && r.status == core::RouteStatus::kOptimal)
        anyPositive = true;
      provCounts[static_cast<int>(r.provenance)]++;
      table.addRow({techn.name, c.id, strFormat("%.0f", baseCost),
                    strFormat("%.0f", r.cost), strFormat("%+.0f", delta),
                    core::toString(r.status), core::toString(r.provenance)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  if (counted > 0) {
    std::printf(
        "clips compared: %d\naverage baseline cost: %.1f\naverage delta "
        "(OptRouter - baseline): %.2f\n",
        counted, sumBase / counted, sumDelta / counted);
    std::printf("provenance: %d %s, %d %s, %d %s\n",
                provCounts[static_cast<int>(core::Provenance::kIlpProven)],
                core::toString(core::Provenance::kIlpProven),
                provCounts[static_cast<int>(core::Provenance::kIlpIncumbent)],
                core::toString(core::Provenance::kIlpIncumbent),
                provCounts[static_cast<int>(core::Provenance::kMazeFallback)],
                core::toString(core::Provenance::kMazeFallback));
  }
  std::printf(
      "\nShape check vs paper: delta is never positive (%s), and the mean\n"
      "improvement is a few percent of the total routing cost (paper:\n"
      "-10..-15 of ~380).\n",
      anyPositive ? "VIOLATED -- investigate" : "holds");
  return anyPositive ? 1 : 0;
}
