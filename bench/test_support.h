// Deterministic synthetic switchbox clips shared by the bench binaries.
#pragma once

#include "clip/clip.h"
#include "common/rng.h"

namespace optr::bench {

/// A switchbox shaped like the paper's extracted clips: a few internal M2
/// pins plus boundary terminals on mid layers; one in three nets is 3-pin.
inline clip::Clip syntheticSwitchbox(int tracksX, int tracksY, int layers,
                                     int nets, std::uint64_t seed) {
  Rng rng(seed);
  clip::Clip c;
  c.id = "sbox" + std::to_string(seed);
  c.techName = "N28-12T";
  c.tracksX = tracksX;
  c.tracksY = tracksY;
  c.numLayers = layers;
  std::vector<clip::TrackPoint> taken;
  auto fresh = [&](int x, int y, int z) {
    clip::TrackPoint p{x, y, z};
    for (const auto& q : taken) {
      if (q == p) return false;
    }
    taken.push_back(p);
    return true;
  };
  for (int n = 0; n < nets; ++n) {
    clip::ClipNet net;
    net.name = "n" + std::to_string(n);
    int pins = (n % 3 == 0) ? 3 : 2;
    for (int p = 0; p < pins; ++p) {
      for (int tries = 0; tries < 100; ++tries) {
        int x, y, z;
        if (p == 0) {  // internal pin on M2
          x = static_cast<int>(rng.uniformInt(1, tracksX - 2));
          y = static_cast<int>(rng.uniformInt(1, tracksY - 2));
          z = 0;
        } else {  // boundary terminal on a mid layer
          bool vert = rng.chance(0.5);
          x = vert ? (rng.chance(0.5) ? 0 : tracksX - 1)
                   : static_cast<int>(rng.uniformInt(0, tracksX - 1));
          y = vert ? static_cast<int>(rng.uniformInt(0, tracksY - 1))
                   : (rng.chance(0.5) ? 0 : tracksY - 1);
          z = 1 + static_cast<int>(rng.uniformInt(0, layers - 2));
        }
        if (!fresh(x, y, z)) continue;
        clip::ClipPin pin;
        pin.net = n;
        pin.isBoundary = (p != 0);
        pin.accessPoints = {{x, y, z}};
        pin.shapeNm = Rect(x * 136, y * 100, x * 136 + 40, y * 100 + 40);
        net.pins.push_back(static_cast<int>(c.pins.size()));
        c.pins.push_back(std::move(pin));
        break;
      }
    }
    if (net.pins.size() >= 2) c.nets.push_back(std::move(net));
  }
  return c;
}

}  // namespace optr::bench
