// Ablation benches for the design choices called out in DESIGN.md:
//   1. lazy vs eager rule-constraint formulation (solve time, nodes, rows);
//   2. region pruning (netBBoxMargin / netLayerMargin) vs full-clip
//      formulation -- verifies the pruned optimum matches the full optimum
//      on sampled clips while shrinking the model;
//   3. warm start on/off;
//   4. two-pin e/f merge on/off.
//
// Usage: bench_ablation_lazy [timeLimitSec]
#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "common/strings.h"
#include "core/opt_router.h"
#include "report/table.h"
#include "test_support.h"

using namespace optr;

int main(int argc, char** argv) {
  double timeLimit = argc > 1 ? std::atof(argv[1]) : 15.0;
  auto techn = tech::Technology::n28_12t();

  std::printf("=== Ablations (DESIGN.md section 6) ===\n\n");

  // --- 1. lazy vs eager, on SADP and via-restriction configs ---
  {
    report::Table t({"Config", "mode", "status", "cost", "sec", "nodes",
                     "rows", "lazy rows"});
    for (const char* rn : {"RULE6", "RULE9", "RULE2", "RULE3"}) {
      auto rule = tech::ruleByName(rn).value();
      clip::Clip c = bench::syntheticSwitchbox(6, 6, 3, 4, 77);
      for (int mode = 0; mode < 2; ++mode) {
        core::OptRouterOptions o;
        o.mip.timeLimitSec = timeLimit;
        o.formulation.eagerViaRules = (mode == 1);
        o.formulation.eagerSadp = (mode == 1);
        core::OptRouter router(techn, rule, o);
        auto r = router.route(c);
        t.addRow({rn, mode ? "eager" : "lazy", core::toString(r.status),
                  strFormat("%.0f", r.cost), strFormat("%.2f", r.seconds),
                  std::to_string(r.nodes),
                  std::to_string(r.formulationStats.numRows),
                  std::to_string(r.lazyRows)});
      }
    }
    std::printf("1. Lazy vs eager rule rows (costs must agree per config):\n%s\n",
                t.render().c_str());
  }

  // --- 2. region pruning validity ---
  {
    report::Table t({"Seed", "full cost", "pruned cost", "full vars",
                     "pruned vars", "agree"});
    int agree = 0, total = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      clip::Clip c = bench::syntheticSwitchbox(6, 6, 3, 4, seed);
      auto rule = tech::ruleByName("RULE1").value();
      core::OptRouterOptions full, pruned;
      full.mip.timeLimitSec = pruned.mip.timeLimitSec = timeLimit;
      pruned.formulation.netBBoxMargin = 3;
      pruned.formulation.netLayerMargin = 1;
      auto rf = core::OptRouter(techn, rule, full).route(c);
      auto rp = core::OptRouter(techn, rule, pruned).route(c);
      bool ok = rf.status == rp.status &&
                (!rf.hasSolution() || std::abs(rf.cost - rp.cost) < 1e-6);
      ++total;
      agree += ok ? 1 : 0;
      t.addRow({std::to_string(seed),
                rf.hasSolution() ? strFormat("%.0f", rf.cost) : "-",
                rp.hasSolution() ? strFormat("%.0f", rp.cost) : "-",
                std::to_string(rf.formulationStats.numVariables),
                std::to_string(rp.formulationStats.numVariables),
                ok ? "yes" : "NO"});
    }
    std::printf("2. Region pruning (margin 3 tracks / 1 layer): %d/%d agree\n%s\n",
                agree, total, t.render().c_str());
  }

  // --- 3. warm start ---
  {
    report::Table t({"Seed", "warm sec", "warm nodes", "cold sec",
                     "cold nodes"});
    for (std::uint64_t seed = 11; seed <= 14; ++seed) {
      clip::Clip c = bench::syntheticSwitchbox(6, 6, 3, 4, seed);
      auto rule = tech::ruleByName("RULE6").value();
      core::OptRouterOptions warm, cold;
      warm.mip.timeLimitSec = cold.mip.timeLimitSec = timeLimit;
      cold.warmStart = false;
      auto rw = core::OptRouter(techn, rule, warm).route(c);
      auto rc = core::OptRouter(techn, rule, cold).route(c);
      t.addRow({std::to_string(seed), strFormat("%.2f", rw.seconds),
                std::to_string(rw.nodes), strFormat("%.2f", rc.seconds),
                std::to_string(rc.nodes)});
    }
    std::printf("3. Baseline-router warm start:\n%s\n", t.render().c_str());
  }

  // --- 4. two-pin merge ---
  {
    report::Table t({"Seed", "merged vars", "unmerged vars", "merged sec",
                     "unmerged sec", "cost agree"});
    for (std::uint64_t seed = 21; seed <= 23; ++seed) {
      clip::Clip c = bench::syntheticSwitchbox(6, 6, 3, 4, seed);
      auto rule = tech::ruleByName("RULE1").value();
      core::OptRouterOptions merged, unmerged;
      merged.mip.timeLimitSec = unmerged.mip.timeLimitSec = timeLimit;
      unmerged.formulation.mergeTwoPinNets = false;
      auto rm = core::OptRouter(techn, rule, merged).route(c);
      auto ru = core::OptRouter(techn, rule, unmerged).route(c);
      bool ok = rm.hasSolution() == ru.hasSolution() &&
                (!rm.hasSolution() || std::abs(rm.cost - ru.cost) < 1e-6);
      t.addRow({std::to_string(seed),
                std::to_string(rm.formulationStats.numVariables),
                std::to_string(ru.formulationStats.numVariables),
                strFormat("%.2f", rm.seconds), strFormat("%.2f", ru.seconds),
                ok ? "yes" : "NO"});
    }
    std::printf("4. Two-pin e/f merge:\n%s\n", t.render().c_str());
  }
  return 0;
}
