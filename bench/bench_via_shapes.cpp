// Via-shape study (paper Section 3.2, Figure 2): allow bar (2x1 / 1x2) and
// square (2x2) vias alongside unit vias, with discounted costs so the
// optimizer prefers the more manufacturable larger shapes when congestion
// allows. Reports the via mix and total cost per configuration.
//
// Usage: bench_via_shapes [timeLimitSec]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/strings.h"
#include "core/opt_router.h"
#include "report/table.h"
#include "test_support.h"

using namespace optr;

int main(int argc, char** argv) {
  double timeLimit = argc > 1 ? std::atof(argv[1]) : 15.0;
  auto techn = tech::Technology::n28_12t();

  struct Config {
    const char* name;
    std::vector<tech::ViaShape> shapes;
  };
  std::vector<Config> configs = {
      {"unit only", {tech::unitVia()}},
      {"unit + bars", {tech::unitVia(), tech::barViaX(), tech::barViaY()}},
      {"unit + bars + square",
       {tech::unitVia(), tech::barViaX(), tech::barViaY(), tech::squareVia()}},
  };

  std::printf("=== Via shapes: cost and shape mix (Section 3.2) ===\n\n");
  report::Table table({"Clip", "Config", "status", "cost", "WL",
                       "unit vias", "bar vias", "square vias", "sec"});
  for (std::uint64_t seed : {101, 102, 103}) {
    // Sparse clips so large footprints have room.
    clip::Clip c = bench::syntheticSwitchbox(7, 7, 3, 3, seed);
    for (const Config& cfg : configs) {
      tech::RuleConfig rule = tech::ruleByName("RULE1").value();
      rule.viaShapes = cfg.shapes;
      core::OptRouterOptions o;
      o.mip.timeLimitSec = timeLimit;
      core::OptRouter router(techn, rule, o);
      core::RouteResult r = router.route(c);

      int unit = 0, bar = 0, square = 0;
      if (r.hasSolution()) {
        grid::RoutingGraph g(c, techn, rule);
        for (const auto& arcs : r.solution.usedArcs) {
          for (int a : arcs) {
            const grid::Arc& arc = g.arc(a);
            if (arc.viaInstance < 0) continue;
            if (arc.kind != grid::ArcKind::kVia &&
                arc.kind != grid::ArcKind::kViaEnter)
              continue;
            const auto& shape =
                rule.viaShapes[g.viaInstance(arc.viaInstance).shape];
            if (shape.isUnit()) {
              ++unit;
            } else if (shape.spanX * shape.spanY == 2) {
              ++bar;
            } else {
              ++square;
            }
          }
        }
      }
      table.addRow({c.id, cfg.name, core::toString(r.status),
                    r.hasSolution() ? strFormat("%.1f", r.cost) : "-",
                    r.hasSolution() ? std::to_string(r.wirelength) : "-",
                    std::to_string(unit), std::to_string(bar),
                    std::to_string(square), strFormat("%.1f", r.seconds)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape checks: with discounted larger shapes available, total cost\n"
      "never increases, and the optimizer swaps unit vias for bars/squares\n"
      "where the footprint fits (paper: \"the optimization selects as many\n"
      "larger vias as possible\").\n");
  return 0;
}
