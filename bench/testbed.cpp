#include "testbed.h"

#include <algorithm>

namespace optr::bench {

std::vector<layout::DesignSpec> table2Specs(const tech::Technology& techn,
                                            const TestbedOptions& opt) {
  // Utilization sweeps per Table 2 / Figure 8 of the paper.
  struct Row {
    const char* design;
    double utils[3];
  };
  std::vector<Row> rows;
  if (techn.name == "N28-12T") {
    rows = {{"AES", {0.89, 0.92, 0.94}}, {"M0", {0.90, 0.93, 0.96}}};
  } else if (techn.name == "N28-8T") {
    rows = {{"AES", {0.89, 0.92, 0.95}}, {"M0", {0.90, 0.93, 0.95}}};
  } else {  // N7-9T
    rows = {{"AES", {0.93, 0.95, 0.97}}, {"M0", {0.92, 0.94, 0.95}}};
  }
  std::vector<layout::DesignSpec> specs;
  std::uint64_t seed = 1;
  for (const Row& r : rows) {
    for (int v = 0; v < 3; ++v) {
      layout::DesignSpec s;
      s.name = std::string(r.design) + "_v" + std::to_string(v + 1);
      s.targetInstances =
          (std::string(r.design) == "AES") ? opt.aesInstances : opt.m0Instances;
      s.utilization = r.utils[v];
      s.seed = seed++ * 7919 + (techn.name == "N28-8T"   ? 100
                                : techn.name == "N7-9T" ? 200
                                                        : 0);
      specs.push_back(std::move(s));
    }
  }
  return specs;
}

DesignVersion buildVersion(const tech::Technology& techn,
                           const layout::DesignSpec& spec,
                           const TestbedOptions& opt) {
  DesignVersion v;
  v.spec = spec;
  auto lib = layout::CellLibrary::forTechnology(techn);
  v.design = layout::generateDesign(lib, spec);
  layout::GlobalRoute gr = layout::globalRoute(v.design, lib);
  layout::ClipExtractOptions eo;
  eo.maxNets = opt.maxNetsPerClip;
  eo.maxLayers = opt.clipLayers;
  v.clips = layout::extractClips(v.design, lib, gr, eo);
  return v;
}

std::vector<clip::Clip> topClips(const tech::Technology& techn, int k,
                                 const TestbedOptions& opt) {
  std::vector<std::pair<double, clip::Clip>> ranked;
  for (const layout::DesignSpec& spec : table2Specs(techn, opt)) {
    DesignVersion v = buildVersion(techn, spec, opt);
    for (clip::Clip& c : v.clips) {
      double cost = clip::pinCost(c).total();
      ranked.emplace_back(cost, std::move(c));
    }
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<clip::Clip> out;
  for (int i = 0; i < k && i < static_cast<int>(ranked.size()); ++i)
    out.push_back(std::move(ranked[i].second));
  return out;
}

}  // namespace optr::bench
