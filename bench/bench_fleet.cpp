// Fleet benchmark: the correctness gate for harness::SweepCoordinator.
//
// A distributed sweep is only admissible if distribution is invisible in
// the results. This bench runs the same clip x rule matrix three ways and
// enforces exactly that:
//
//   * reference: in-process harness::BatchRunner (isolateTasks=false,
//     sessionReuse=false, threads=1) -- the same rebuild path the fleet
//     workers use;
//   * fleet-clean: SweepCoordinator with 2 worker processes, no faults;
//   * fleet-chaos: same, but the coordinator SIGKILLs random busy workers
//     mid-solve (deterministic seed, bounded kill count), exercising lease
//     expiry, respawn backoff, and re-assignment under real worker deaths.
//
// Gates (any failure exits 1):
//   * every pass yields exactly one row per (clip, rule), in matrix order,
//     with zero quarantined tasks -- no lost and no duplicated work;
//   * for every task both the reference and a fleet pass PROVE (optimal or
//     infeasible), status, cost, and bestBound must be byte-identical;
//     a proven verdict must never contradict a validated solution on the
//     other side; fewer than half the tasks proven in both fails too (the
//     equality gate must not pass vacuously);
//   * the chaos pass must actually have killed workers (chaosKills >= 1)
//     and recovered (leases re-assigned, fleet finished, nothing
//     quarantined) -- otherwise the "survives SIGKILL" claim is untested;
//   * a fresh coordinator pointed at the chaos pass's checkpoint must
//     resume every task from disk and execute zero new solves -- the
//     crash-consistent merge is part of the contract;
//   * (POSIX + obs builds) the fleet-clean pass runs traced: the
//     coordinator writes its own trace file, each forked worker abandons
//     the inherited session and opens a per-worker file, and lease grants
//     carry the coordinator's span context. The merged files must stitch
//     every worker fleet.task span under the coordinator's bench.fleet
//     root -- one causal tree across all processes -- with no task span
//     outlasting the root (work conservation).
//
// Emits BENCH_fleet.json: per-task rows per pass plus the fleet counters
// (leases granted/reassigned/expired, spawns, deaths, chaos kills,
// duplicate/stale results).
//
// Usage: bench_fleet [--clips path] [--out path.json] [--workers N]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "clip/clip_io.h"
#include "core/opt_router.h"
#include "harness/batch_runner.h"
#include "harness/checkpoint_io.h"
#include "harness/sweep_coordinator.h"
#include "obs/analyze.h"
#include "obs/trace.h"
#include "tech/rules.h"
#include "tech/technology.h"

using namespace optr;

namespace {

core::OptRouterOptions routerOptions() {
  core::OptRouterOptions o;
  o.mip.timeLimitSec = 20;
  o.formulation.netBBoxMargin = 3;
  o.formulation.netLayerMargin = 1;
  return o;
}

struct PassStat {
  std::string mode;  // "reference" | "fleet-clean" | "fleet-chaos"
  double wallMs = 0.0;
  std::vector<harness::BatchRow> rows;
  harness::FleetReport fleet;  // zeroed for the reference pass
};

bool proven(core::RouteStatus s) {
  return s == core::RouteStatus::kOptimal ||
         s == core::RouteStatus::kInfeasible;
}

bool holdsSolution(core::RouteStatus s) {
  return s == core::RouteStatus::kOptimal ||
         s == core::RouteStatus::kFeasible;
}

/// Shape gate: one row per matrix cell, matrix order, nothing quarantined.
bool checkShape(const PassStat& pass, const std::vector<clip::Clip>& clips,
                const std::vector<tech::RuleConfig>& rules) {
  bool ok = true;
  if (pass.rows.size() != clips.size() * rules.size()) {
    std::fprintf(stderr, "FAIL: %s pass: %zu rows for a %zu x %zu matrix\n",
                 pass.mode.c_str(), pass.rows.size(), clips.size(),
                 rules.size());
    return false;
  }
  std::size_t i = 0;
  for (const clip::Clip& c : clips) {
    for (const tech::RuleConfig& r : rules) {
      const harness::BatchRow& row = pass.rows[i++];
      if (row.clipId != c.id || row.ruleName != r.name) {
        std::fprintf(stderr,
                     "FAIL: %s pass: row %zu is %s/%s, expected %s/%s "
                     "(matrix order violated)\n",
                     pass.mode.c_str(), i - 1, row.clipId.c_str(),
                     row.ruleName.c_str(), c.id.c_str(), r.name.c_str());
        ok = false;
      }
    }
  }
  if (pass.fleet.quarantined != 0) {
    std::fprintf(stderr, "FAIL: %s pass: %d tasks quarantined\n",
                 pass.mode.c_str(), pass.fleet.quarantined);
    ok = false;
  }
  return ok;
}

/// The equivalence gate (same discipline as bench_sweep): proven-by-both
/// tasks must match byte-for-byte; proofs must never contradict solutions;
/// the gate must not pass vacuously.
bool checkEquivalence(const PassStat& ref, const PassStat& pass) {
  bool ok = true;
  int provenBoth = 0;
  for (std::size_t i = 0; i < ref.rows.size(); ++i) {
    const harness::BatchRow& a = ref.rows[i];
    const harness::BatchRow& b = pass.rows[i];
    bool aInfeasible = a.status == core::RouteStatus::kInfeasible;
    bool bInfeasible = b.status == core::RouteStatus::kInfeasible;
    if ((aInfeasible && holdsSolution(b.status)) ||
        (bInfeasible && holdsSolution(a.status))) {
      std::fprintf(stderr,
                   "FAIL: %s/%s: reference %s contradicts %s %s "
                   "(infeasibility proof vs validated solution)\n",
                   a.clipId.c_str(), a.ruleName.c_str(),
                   core::toString(a.status), pass.mode.c_str(),
                   core::toString(b.status));
      ok = false;
      continue;
    }
    if (!proven(a.status) || !proven(b.status)) continue;
    ++provenBoth;
    if (a.status != b.status || a.cost != b.cost ||
        a.bestBound != b.bestBound) {
      std::fprintf(stderr,
                   "FAIL: %s/%s diverged: reference %s cost %.17g bound "
                   "%.17g vs %s %s cost %.17g bound %.17g\n",
                   a.clipId.c_str(), a.ruleName.c_str(),
                   core::toString(a.status), a.cost, a.bestBound,
                   pass.mode.c_str(), core::toString(b.status), b.cost,
                   b.bestBound);
      ok = false;
    }
  }
  if (provenBoth * 2 < static_cast<int>(ref.rows.size())) {
    std::fprintf(stderr,
                 "FAIL: %s: only %d of %zu tasks proven in both passes -- "
                 "the equality gate would be vacuous\n",
                 pass.mode.c_str(), provenBoth, ref.rows.size());
    ok = false;
  }
  std::printf("%s: %d of %zu tasks proven-and-equal vs reference\n",
              pass.mode.c_str(), provenBoth, ref.rows.size());
  return ok;
}

void removeFleetFiles(const std::string& base) {
  std::remove(base.c_str());
  for (int slot = 0; slot < 8; ++slot) {
    std::remove(harness::workerCheckpointPath(base, slot).c_str());
  }
}

struct TracedFleetOut {
  bool ran = false;
  int taskSpans = 0;       // fleet.task spans found across worker files
  int stitchedTasks = 0;   // ... whose remote parent resolved on merge
  bool singleTree = false; // every task chains up to the bench.fleet root
  bool workConserved = false;
};

#if !defined(_WIN32) && OPTR_OBS_ENABLED

std::string workerTracePath(const std::string& base, int slot, int gen) {
  return base + ".trace.w" + std::to_string(slot) + "g" + std::to_string(gen) +
         ".jsonl";
}

/// Merges the coordinator + per-worker trace files and checks the stitched
/// causal tree: every fleet.task span must resolve (via its lease-frame
/// remote parent) through a fleet.grant span up to the bench.fleet root,
/// and no task may outlast that root.
TracedFleetOut checkStitchedFleet(const std::vector<std::string>& files,
                                  std::size_t matrix, bool& failed) {
  TracedFleetOut out;
  out.ran = true;
  auto entriesOr = obs::loadTraces(files, nullptr);
  if (!entriesOr.isOk()) {
    std::fprintf(stderr, "FAIL: traced fleet merge: %s\n",
                 entriesOr.status().message().c_str());
    failed = true;
    return out;
  }
  const std::vector<obs::TraceEntry>& entries = entriesOr.value();
  std::map<std::uint64_t, const obs::TraceEntry*> byId;
  std::uint64_t rootId = 0;
  std::int64_t rootDur = 0;
  for (const obs::TraceEntry& e : entries) {
    if (e.type != "span" || e.id == 0) continue;
    byId[e.id] = &e;
    if (e.name == "bench.fleet") {
      rootId = e.id;
      rootDur = e.dur;
    }
  }
  out.singleTree = rootId != 0;
  out.workConserved = true;
  for (const obs::TraceEntry& e : entries) {
    if (e.type != "span" || e.name != "fleet.task") continue;
    ++out.taskSpans;
    if (e.stitched) ++out.stitchedTasks;
    // Walk the parent chain (task -> grant -> ... -> root) span by span.
    bool reachedRoot = false;
    std::uint64_t cur = e.parent;
    for (int hop = 0; hop < 64 && cur != 0; ++hop) {
      if (cur == rootId) {
        reachedRoot = true;
        break;
      }
      auto it = byId.find(cur);
      if (it == byId.end()) break;
      cur = it->second->parent;
    }
    if (!reachedRoot) out.singleTree = false;
    if (e.dur > rootDur) out.workConserved = false;
  }
  bool ok = out.taskSpans == static_cast<int>(matrix) &&
            out.stitchedTasks == out.taskSpans && out.singleTree &&
            out.workConserved;
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: traced fleet: %d task spans (want %zu), %d stitched, "
                 "singleTree=%d, workConserved=%d\n",
                 out.taskSpans, matrix, out.stitchedTasks,
                 out.singleTree ? 1 : 0, out.workConserved ? 1 : 0);
    failed = true;
  } else {
    std::printf(
        "traced fleet: %d fleet.task spans from %zu files all stitched "
        "under one bench.fleet root (work-conserving)\n",
        out.taskSpans, files.size());
  }
  return out;
}

#endif  // !_WIN32 && OPTR_OBS_ENABLED

void emitJson(const std::string& path, const std::vector<PassStat>& passes,
              const TracedFleetOut& traced) {
  std::ofstream out(path);
  out << "{\n  \"benchmark\": \"bench_fleet\",\n  \"tracedFleet\": {\"ran\": "
      << (traced.ran ? 1 : 0) << ", \"taskSpans\": " << traced.taskSpans
      << ", \"stitchedTasks\": " << traced.stitchedTasks
      << ", \"singleTree\": " << (traced.singleTree ? 1 : 0)
      << ", \"workConserved\": " << (traced.workConserved ? 1 : 0)
      << "},\n  \"passes\": [\n";
  for (std::size_t p = 0; p < passes.size(); ++p) {
    const PassStat& pass = passes[p];
    const harness::FleetReport& f = pass.fleet;
    out << "    {\"mode\": \"" << pass.mode
        << "\", \"wallMs\": " << pass.wallMs << ",\n     \"fleet\": {"
        << "\"executed\": " << f.executed << ", \"resumed\": " << f.resumed
        << ", \"leasesGranted\": " << f.leasesGranted
        << ", \"leasesReassigned\": " << f.leasesReassigned
        << ", \"leasesExpired\": " << f.leasesExpired
        << ", \"workersSpawned\": " << f.workersSpawned
        << ", \"workerDeaths\": " << f.workerDeaths
        << ", \"chaosKills\": " << f.chaosKills
        << ", \"duplicateResults\": " << f.duplicateResults
        << ", \"staleResults\": " << f.staleResults
        << ", \"quarantined\": " << f.quarantined << "},\n"
        << "     \"tasks\": [\n";
    for (std::size_t i = 0; i < pass.rows.size(); ++i) {
      const harness::BatchRow& r = pass.rows[i];
      out << "       {\"clip\": \"" << r.clipId << "\", \"rule\": \""
          << r.ruleName << "\", \"cost\": " << r.cost
          << ", \"bestBound\": " << r.bestBound << ", \"status\": \""
          << core::toString(r.status) << "\", \"seconds\": " << r.seconds
          << "}" << (i + 1 < pass.rows.size() ? "," : "") << "\n";
    }
    out << "     ]}" << (p + 1 < passes.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string clipsPath = "examples/example.clips";
  std::string outPath = "BENCH_fleet.json";
  int workers = 2;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--clips") == 0 && a + 1 < argc) {
      clipsPath = argv[++a];
    } else if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc) {
      outPath = argv[++a];
    } else if (std::strcmp(argv[a], "--workers") == 0 && a + 1 < argc) {
      workers = std::atoi(argv[++a]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_fleet [--clips path] [--out path.json] "
                   "[--workers N]\n");
      return 2;
    }
  }
  if (workers < 1) workers = 1;

  auto loaded = clip::loadClips(clipsPath);
  if (!loaded.isOk()) {
    std::fprintf(stderr, "cannot load %s: %s\n", clipsPath.c_str(),
                 loaded.status().message().c_str());
    return 2;
  }
  std::vector<clip::Clip> clips = std::move(loaded).value();
  if (clips.empty()) {
    std::fprintf(stderr, "no clips in %s\n", clipsPath.c_str());
    return 2;
  }
  auto techOr = tech::Technology::byName(clips.front().techName);
  if (!techOr.isOk()) {
    std::fprintf(stderr, "unknown technology %s\n",
                 clips.front().techName.c_str());
    return 2;
  }
  tech::Technology techn = std::move(techOr).value();

  // Two applicable rules keep the matrix small enough that the chaos pass
  // (which re-solves killed tasks) stays within a smoke-test budget.
  std::vector<tech::RuleConfig> rules;
  for (const tech::RuleConfig& rc : tech::table3Rules()) {
    if (tech::ruleApplicable(rc, techn)) rules.push_back(rc);
    if (rules.size() == 2) break;
  }
  if (rules.empty()) {
    std::fprintf(stderr, "no applicable rules for %s\n", techn.name.c_str());
    return 2;
  }
  std::printf("fleet bench: %zu clips x %zu rules, %d workers\n",
              clips.size(), rules.size(), workers);

  std::vector<PassStat> passes;
  auto timed = [&](const std::string& mode, auto&& body) {
    PassStat pass;
    pass.mode = mode;
    auto t0 = std::chrono::steady_clock::now();
    body(pass);
    pass.wallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    passes.push_back(std::move(pass));
  };

  timed("reference", [&](PassStat& pass) {
    harness::BatchOptions bo;
    bo.router = routerOptions();
    bo.isolateTasks = false;
    bo.sessionReuse = false;
    bo.threads = 1;
    harness::BatchReport rep = harness::BatchRunner(bo).run(clips, rules);
    pass.rows = std::move(rep.rows);
  });

  const std::string ckpt = outPath + ".ckpt.jsonl";
  removeFleetFiles(ckpt);
  TracedFleetOut traced;
#if !defined(_WIN32) && OPTR_OBS_ENABLED
  // The clean pass doubles as the cross-process trace gate: coordinator and
  // workers each write their own file, merged and stitched below.
  const std::string coordTrace = outPath + ".trace.coord.jsonl";
  std::remove(coordTrace.c_str());
  for (int slot = 0; slot < workers; ++slot) {
    for (int gen = 0; gen < 4; ++gen) {
      std::remove(workerTracePath(outPath, slot, gen).c_str());
    }
  }
  bool tracing = obs::TraceSession::start(coordTrace).isOk();
  timed("fleet-clean", [&](PassStat& pass) {
    harness::SweepCoordinatorOptions so;
    so.router = routerOptions();
    so.workers = workers;
    so.checkpointPath = ckpt;
    // Child side, post-fork: drop the inherited coordinator session (its fd
    // must not receive this process's spans) and open a per-worker file.
    so.workerInitHook = [&outPath](int slot, int generation) {
      obs::TraceSession::abandon();
      (void)obs::TraceSession::start(
          workerTracePath(outPath, slot, generation));
    };
    obs::Span root("bench.fleet");
    pass.fleet = harness::SweepCoordinator(so).run(clips, rules);
    pass.rows = pass.fleet.rows;
  });
  if (tracing) obs::TraceSession::stop();
#else
  timed("fleet-clean", [&](PassStat& pass) {
    harness::SweepCoordinatorOptions so;
    so.router = routerOptions();
    so.workers = workers;
    so.checkpointPath = ckpt;
    pass.fleet = harness::SweepCoordinator(so).run(clips, rules);
    pass.rows = pass.fleet.rows;
  });
#endif

  removeFleetFiles(ckpt);
  timed("fleet-chaos", [&](PassStat& pass) {
    harness::SweepCoordinatorOptions so;
    so.router = routerOptions();
    so.workers = workers;
    so.checkpointPath = ckpt;
    // Enough head-room that a task killed repeatedly by bad luck still
    // completes instead of quarantining (kills are bounded anyway).
    so.maxAttempts = 5;
    so.chaosSeed = 0xf1ee7;
    so.chaosKillProb = 0.02;  // per 50 ms poll tick, vs a busy worker
    so.chaosMaxKills = 3;
    pass.fleet = harness::SweepCoordinator(so).run(clips, rules);
    pass.rows = pass.fleet.rows;
  });

  bool failed = false;
  for (const PassStat& pass : passes) {
    if (!checkShape(pass, clips, rules)) failed = true;
  }
  for (std::size_t p = 1; p < passes.size(); ++p) {
    if (!passes[p].fleet.status.isOk()) {
      std::fprintf(stderr, "FAIL: %s pass: %s\n", passes[p].mode.c_str(),
                   passes[p].fleet.status.message().c_str());
      failed = true;
    }
    if (!checkEquivalence(passes.front(), passes[p])) failed = true;
  }

  const harness::FleetReport& chaos = passes.back().fleet;
  if (chaos.chaosKills < 1) {
    std::fprintf(stderr,
                 "FAIL: chaos pass killed no workers -- the recovery claim "
                 "is untested (raise --workers or the kill probability)\n");
    failed = true;
  }
  if (chaos.chaosKills > 0 && chaos.leasesReassigned < 1) {
    std::fprintf(stderr,
                 "FAIL: chaos pass killed workers but re-assigned no "
                 "leases\n");
    failed = true;
  }
  std::printf(
      "fleet-chaos survived %d chaos kills (%d worker deaths, %d leases "
      "re-assigned, %d spawns, %d stale / %d duplicate results)\n",
      chaos.chaosKills, chaos.workerDeaths, chaos.leasesReassigned,
      chaos.workersSpawned, chaos.staleResults, chaos.duplicateResults);

  // Restart gate: the chaos pass's merged checkpoint must satisfy a fresh
  // coordinator entirely from disk.
  {
    harness::SweepCoordinatorOptions so;
    so.router = routerOptions();
    so.workers = workers;
    so.checkpointPath = ckpt;
    harness::FleetReport resumed = harness::SweepCoordinator(so).run(clips, rules);
    if (resumed.executed != 0 ||
        resumed.resumed != static_cast<int>(clips.size() * rules.size())) {
      std::fprintf(stderr,
                   "FAIL: restart after chaos re-ran work: %d executed, %d "
                   "resumed (expected 0 / %zu)\n",
                   resumed.executed, resumed.resumed,
                   clips.size() * rules.size());
      failed = true;
    } else {
      std::printf("restart after chaos: all %d tasks resumed from the "
                  "merged checkpoint, 0 re-solved\n",
                  resumed.resumed);
    }
  }
  removeFleetFiles(ckpt);

#if !defined(_WIN32) && OPTR_OBS_ENABLED
  // Stitch gate: merge the clean pass's coordinator + worker trace files
  // and require one work-conserving causal tree across processes.
  if (tracing) {
    std::vector<std::string> traceFiles = {coordTrace};
    for (int slot = 0; slot < workers; ++slot) {
      for (int gen = 0; gen < 4; ++gen) {
        std::string p = workerTracePath(outPath, slot, gen);
        if (std::ifstream(p).good()) traceFiles.push_back(p);
      }
    }
    traced = checkStitchedFleet(traceFiles, clips.size() * rules.size(),
                                failed);
  } else {
    std::fprintf(stderr, "FAIL: traced fleet: coordinator trace session "
                         "did not start\n");
    failed = true;
  }
#else
  std::printf("traced fleet gate skipped (needs POSIX + observability)\n");
#endif
  (void)traced;

  emitJson(outPath, passes, traced);
  std::printf("wrote %s\n", outPath.c_str());
  for (const PassStat& pass : passes) {
    std::printf("  %-12s %7.0f ms\n", pass.mode.c_str(), pass.wallMs);
  }
  if (failed) {
    std::fprintf(stderr,
                 "FAIL: the fleet is not result-equivalent to BatchRunner\n");
    return 1;
  }
  std::printf(
      "fleet OK: distributed results byte-equal in-process results on "
      "every proven task, with and without worker kills\n");
  return 0;
}
