// Pin-access study (paper Section 4.1 / Figure 9): for each technology,
// can a standard cell's pins all be escaped to the routing layers under
// each via-restriction level? The paper argues N7-9T's compact two-point
// pins make the 8-blocked-neighbor rules unusable; this bench verifies the
// claim with exact (ILP) feasibility verdicts and cross-checks
// tech::ruleApplicable.
//
// Usage: bench_pin_access [timeLimitSec]
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"
#include "layout/pin_access.h"
#include "report/table.h"
#include "tech/rules.h"

using namespace optr;

int main(int argc, char** argv) {
  double timeLimit = argc > 1 ? std::atof(argv[1]) : 20.0;

  std::printf("=== Pin access vs via restrictions (Section 4.1) ===\n\n");
  const char* cells[] = {"NAND2X1", "AOI21X1", "DFFX1"};
  const char* rules[] = {"RULE1", "RULE6", "RULE9"};

  report::Table table({"Tech", "Cell", "Rule", "verdict", "escape cost"});
  bool mismatch = false;
  for (const tech::Technology& techn : tech::Technology::all()) {
    auto lib = layout::CellLibrary::forTechnology(techn);
    for (const char* cellName : cells) {
      const layout::CellMaster* m = lib.byName(cellName);
      if (m == nullptr) continue;
      for (const char* ruleName : rules) {
        auto rule = tech::ruleByName(ruleName).value();
        auto res = layout::checkPinAccess(lib, *m, rule, timeLimit);
        const char* verdict = res.feasible
                                  ? (res.proven ? "accessible" : "accessible*")
                                  : (res.proven ? "INACCESSIBLE" : "unknown");
        table.addRow({techn.name, cellName, ruleName, verdict,
                      res.feasible ? strFormat("%.0f", res.cost) : "-"});
        // Cross-check: a rule the paper skips on this technology should not
        // be provably accessible on the compact cells.
        if (!tech::ruleApplicable(rule, techn) && res.feasible &&
            res.proven && std::string(cellName) == "NAND2X1") {
          mismatch = true;
        }
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape check vs paper Section 4.1: 28nm wide pins stay accessible at\n"
      "every restriction level; the compact N7-9T pins lose accessibility\n"
      "(or pay sharply) once 8 neighbor sites are blocked -- the reason\n"
      "RULE9/10/11 are untestable there. ruleApplicable cross-check: %s\n",
      mismatch ? "MISMATCH -- investigate" : "consistent");
  return 0;
}
