// Shared bench testbed: builds the paper's Table 2 design matrix (AES and
// Cortex-M0 at several utilizations, per technology), runs the layout
// substrate, and harvests clips ranked by pin cost.
//
// Scale note (DESIGN.md "Substitutions"): the paper implements 9-15K
// instance designs and evaluates ~10K clips per testcase; this testbed
// generates a few-hundred-instance design per version, which yields a few
// hundred windows -- the pin-cost ranking and rule evaluation then operate
// exactly as in the paper. Instance counts and clip budgets are
// CLI-adjustable in every bench.
#pragma once

#include <string>
#include <vector>

#include "clip/clip.h"
#include "layout/cell_library.h"
#include "layout/clip_extract.h"
#include "layout/design.h"
#include "layout/global_route.h"
#include "tech/rules.h"
#include "tech/technology.h"

namespace optr::bench {

struct TestbedOptions {
  int aesInstances = 420;  // scaled from the paper's 12-15K
  int m0Instances = 300;   // scaled from the paper's 9-11K
  /// Clips evaluated by the ILP must stay tractable for the bundled solver:
  /// windows with more nets are skipped at extraction (documented in
  /// EXPERIMENTS.md; the paper's CPLEX handled larger instances in ~15min).
  int maxNetsPerClip = 6;
  /// Routing layers per clip (paper: 8 metal layers; reduced default keeps
  /// the bundled MIP fast -- RULE5 still exercises SADP >= M5 when >= 4).
  int clipLayers = 4;
};

struct DesignVersion {
  layout::DesignSpec spec;
  layout::Design design;
  std::vector<clip::Clip> clips;
};

/// Table 2 utilization points per technology (paper values).
std::vector<layout::DesignSpec> table2Specs(const tech::Technology& techn,
                                            const TestbedOptions& opt);

/// Generates, places, globally routes and clips one design version.
DesignVersion buildVersion(const tech::Technology& techn,
                           const layout::DesignSpec& spec,
                           const TestbedOptions& opt);

/// All clips of all versions for a technology, pin-cost ranked (descending);
/// truncated to `k` (the paper's "top-100").
std::vector<clip::Clip> topClips(const tech::Technology& techn, int k,
                                 const TestbedOptions& opt);

}  // namespace optr::bench
