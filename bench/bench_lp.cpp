// LP-kernel microbenchmark with its own machine-readable trajectory.
//
// The simplex engine is the hot path of the whole stack (~100k pivots per
// bench_runtime pass), but bench_runtime only sees it through the MIP, where
// node counts and separation rounds blur what the kernel itself costs. This
// bench isolates the kernel: it solves the LP relaxations of the same
// synthetic example clips, then replays a branch-and-bound-shaped sequence
// of bound-tightened re-solves, under every kernel configuration --
//   pricing      dantzig | devex     (SimplexOptions::pricing)
//   dual restart on | off            (SimplexOptions::dualRestart)
// -- and emits BENCH_lp.json with pivots, dual pivots, refactorizations,
// wall time, and pivots/sec per configuration.
//
// The run FAILS (exit 1) when any two configurations disagree on a solve's
// status or optimal objective: pricing and restart strategy are performance
// knobs and must never change what is proven.
//
// Usage: bench_lp [--repeats N] [--out path.json]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/formulation.h"
#include "grid/routing_graph.h"
#include "lp/simplex.h"
#include "tech/rules.h"
#include "tech/technology.h"
#include "test_support.h"

using namespace optr;

namespace {

struct KernelConfig {
  const char* name;
  lp::PricingRule pricing;
  bool dualRestart;
};

constexpr KernelConfig kConfigs[] = {
    {"dantzig-cold", lp::PricingRule::kDantzig, false},
    {"dantzig-dual", lp::PricingRule::kDantzig, true},
    {"devex-cold", lp::PricingRule::kDevex, false},
    {"devex-dual", lp::PricingRule::kDevex, true},
};

struct ClipLp {
  std::string name;
  lp::LpModel model;           // base relaxation (root bounds)
  std::vector<int> tightenCols;  // integer columns fixed to 0, one per step
};

struct SolveRecord {
  lp::LpStatus status;
  double objective;
};

struct ConfigStat {
  std::string name;
  std::string pricing;
  bool dualRestart = false;
  double wallMs = 0.0;
  std::int64_t pivots = 0;
  std::int64_t dualPivots = 0;
  std::int64_t refactorizations = 0;
  std::int64_t solves = 0;
  std::int64_t dualRestartsUsed = 0;
  double pivotsPerSec() const {
    return wallMs > 0 ? static_cast<double>(pivots) / (wallMs / 1000.0) : 0.0;
  }
};

/// The same switchbox shapes bench_runtime times end-to-end; here only their
/// LP relaxations matter, so a handful of sizes covers the row-count range.
std::vector<ClipLp> buildClipLps() {
  struct Spec {
    const char* name;
    int tx, ty, layers, nets;
    std::uint64_t seed;
    const char* rule;
  };
  const Spec specs[] = {
      {"sb5x6_s1", 5, 6, 3, 3, 1, "RULE1"},
      {"sb6x6_s11", 6, 6, 3, 3, 11, "RULE1"},
      {"sb6x8_s5", 6, 8, 3, 3, 5, "RULE1"},
      {"sb6x8_s13", 6, 8, 3, 3, 13, "RULE8"},
  };
  auto techn = tech::Technology::n28_12t();
  std::vector<ClipLp> out;
  for (const Spec& s : specs) {
    clip::Clip c =
        bench::syntheticSwitchbox(s.tx, s.ty, s.layers, s.nets, s.seed);
    auto rule = tech::ruleByName(s.rule).value();
    grid::RoutingGraph graph(c, techn, rule);
    core::FormulationOptions fo;
    fo.netBBoxMargin = 3;
    fo.netLayerMargin = 1;
    core::Formulation formulation(c, graph, fo);
    ClipLp cl;
    cl.name = s.name;
    cl.model = formulation.model();  // copy: the bench owns its bounds
    // Branch-like tightening schedule: every 7th integer column that is
    // actually free gets fixed to its lower bound, up to 12 steps. The
    // schedule depends only on the model, so every configuration replays
    // the identical sequence.
    const std::vector<bool>& isInt = formulation.integrality();
    for (int col = 0; col < cl.model.numCols() &&
                      static_cast<int>(cl.tightenCols.size()) < 12;
         ++col) {
      if (!isInt[col] || cl.model.upper(col) <= cl.model.lower(col)) continue;
      if (col % 7 == 0) cl.tightenCols.push_back(col);
    }
    out.push_back(std::move(cl));
  }
  return out;
}

/// Runs one configuration over every clip sequence, `repeats` times.
/// Fills `records` on the first run (reference) or checks against it.
bool runConfig(const KernelConfig& cfg, const std::vector<ClipLp>& clips,
               int repeats, ConfigStat& stat,
               std::vector<SolveRecord>& records, bool isReference) {
  stat.name = cfg.name;
  stat.pricing = lp::toString(cfg.pricing);
  stat.dualRestart = cfg.dualRestart;
  bool ok = true;
  std::size_t rec = 0;
  auto check = [&](const lp::LpResult& r, const std::string& where) {
    SolveRecord sr{r.status, r.status == lp::LpStatus::kOptimal ? r.objective
                                                                : 0.0};
    if (isReference) {
      records.push_back(sr);
      return;
    }
    if (rec >= records.size()) {
      std::fprintf(stderr, "FAIL: %s: more solves than reference at %s\n",
                   cfg.name, where.c_str());
      ok = false;
      return;
    }
    const SolveRecord& ref = records[rec++];
    if (ref.status != sr.status ||
        std::abs(ref.objective - sr.objective) >
            1e-6 * std::max(1.0, std::abs(ref.objective))) {
      std::fprintf(stderr,
                   "FAIL: %s vs reference at %s: status %s/%s obj %.9f/%.9f\n",
                   cfg.name, where.c_str(), lp::toString(sr.status),
                   lp::toString(ref.status), sr.objective, ref.objective);
      ok = false;
    }
  };

  auto t0 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < repeats; ++rep) {
    // Only the first repeat feeds/checks the record stream; the rest are
    // timing samples of the identical deterministic sequence.
    bool observe = rep == 0;
    for (const ClipLp& cl : clips) {
      lp::LpModel model = cl.model;
      lp::SimplexOptions o;
      o.pricing = cfg.pricing;
      o.dualRestart = cfg.dualRestart;
      lp::SimplexSolver solver(o);
      lp::LpResult r = solver.solve(model);
      stat.pivots += r.iterations;
      stat.dualPivots += r.dualPivots;
      stat.refactorizations += r.refactorizations;
      if (r.usedDualRestart) ++stat.dualRestartsUsed;
      ++stat.solves;
      if (observe) check(r, cl.name + "/cold");
      for (std::size_t step = 0; step < cl.tightenCols.size(); ++step) {
        int col = cl.tightenCols[step];
        model.setBounds(col, model.lower(col), model.lower(col));
        r = solver.canContinue(model) ? solver.solveContinue(model)
                                      : solver.solve(model);
        stat.pivots += r.iterations;
        stat.dualPivots += r.dualPivots;
        stat.refactorizations += r.refactorizations;
        if (r.usedDualRestart) ++stat.dualRestartsUsed;
        ++stat.solves;
        if (observe)
          check(r, cl.name + "/tighten" + std::to_string(step));
      }
    }
  }
  stat.wallMs = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  if (!isReference && ok && rec != records.size()) {
    std::fprintf(stderr, "FAIL: %s: fewer solves than reference (%zu/%zu)\n",
                 cfg.name, rec, records.size());
    ok = false;
  }
  return ok;
}

void emitJson(const std::string& path, int repeats,
              const std::vector<ConfigStat>& stats) {
  std::ofstream out(path);
  out << "{\n  \"benchmark\": \"lp_kernel\",\n";
  out << "  \"repeats\": " << repeats << ",\n";
  out << "  \"configs\": [\n";
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const ConfigStat& s = stats[i];
    out << "    {\"config\": \"" << s.name << "\", \"pricing\": \""
        << s.pricing << "\", \"dualRestart\": "
        << (s.dualRestart ? "true" : "false") << ", \"solves\": " << s.solves
        << ", \"pivots\": " << s.pivots << ", \"dualPivots\": " << s.dualPivots
        << ", \"refactorizations\": " << s.refactorizations
        << ", \"dualRestartsUsed\": " << s.dualRestartsUsed
        << ", \"wallMs\": " << s.wallMs
        << ", \"pivotsPerSec\": " << s.pivotsPerSec() << "}"
        << (i + 1 < stats.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  int repeats = 5;
  std::string outPath = "BENCH_lp.json";
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--repeats") == 0 && a + 1 < argc) {
      repeats = std::atoi(argv[++a]);
      if (repeats < 1) repeats = 1;
    } else if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc) {
      outPath = argv[++a];
    } else {
      std::fprintf(stderr, "usage: bench_lp [--repeats N] [--out path.json]\n");
      return 2;
    }
  }

  std::vector<ClipLp> clips = buildClipLps();
  std::vector<SolveRecord> records;
  std::vector<ConfigStat> stats(std::size(kConfigs));
  bool ok = true;
  for (std::size_t i = 0; i < std::size(kConfigs); ++i) {
    ok &= runConfig(kConfigs[i], clips, repeats, stats[i], records, i == 0);
    std::printf(
        "%-13s solves=%lld pivots=%lld dual=%lld refactor=%lld wall=%.1fms "
        "pivots/sec=%.0f\n",
        stats[i].name.c_str(), static_cast<long long>(stats[i].solves),
        static_cast<long long>(stats[i].pivots),
        static_cast<long long>(stats[i].dualPivots),
        static_cast<long long>(stats[i].refactorizations), stats[i].wallMs,
        stats[i].pivotsPerSec());
  }
  emitJson(outPath, repeats, stats);
  std::printf("wrote %s\n", outPath.c_str());
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: kernel configurations disagree on proven results\n");
    return 1;
  }
  return 0;
}
