// Rule-sweep benchmark: the correctness + payoff gate for core::ClipSession.
//
// A rule sweep solves every clip under every applicable Table 3 rule. The
// historical path rebuilds the routing graph and the full ILP for each
// (clip, rule) pair; the session path builds them once per clip and turns
// each rule into a cheap overlay (grid::RoutingGraph::applyRule +
// core::Formulation::resetRuleLayer) plus a cross-rule warm start. Sessions
// are a pure performance mechanism, so this bench enforces exactly that:
//
//   * for every (clip, rule) that both passes PROVE (optimal or
//     infeasible), the session pass must report byte-identical status,
//     cost, and bestBound to the fresh-rebuild pass -- any divergence
//     FAILS the run (exit 1). Deadline-truncated solves (feasible /
//     unknown) are reported as undecided instead: their incumbent and
//     bound are scheduling- and warm-start-dependent by nature (the same
//     rule bench_runtime applies to its parallel passes);
//   * a proven verdict may never CONTRADICT the other pass: one side
//     proving infeasibility while the other holds a validated solution is
//     a soundness failure regardless of deadlines;
//   * fewer than half the tasks proven in both passes FAILS too -- the
//     equality gate must not pass vacuously on a machine where everything
//     times out;
//   * (obs builds) the session.base_build counter delta across a session
//     pass must equal the clip count: one base graph+model per clip, never
//     one per (clip, rule).
//
// Emits BENCH_sweep.json: per-(clip, rule) wall ms / cost / status /
// warm-start kind per pass, session.* registry deltas, and the speedup of
// session reuse over rebuild at each thread count.
//
// Usage: bench_sweep [--threads N] [--clips path] [--out path.json]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "clip/clip_io.h"
#include "core/clip_session.h"
#include "core/opt_router.h"
#include "obs/metrics.h"
#include "tech/rules.h"
#include "tech/technology.h"

using namespace optr;

namespace {

constexpr bool kObsEnabled = OPTR_OBS_ENABLED != 0;

struct TaskStat {
  std::string clipId;
  std::string rule;
  double wallMs = 0.0;
  double cost = 0.0;
  double bestBound = 0.0;
  core::RouteStatus status = core::RouteStatus::kError;
  core::Provenance provenance = core::Provenance::kNone;
  core::WarmStartKind warmStart = core::WarmStartKind::kNone;
  std::int64_t nodes = 0;
};

/// session.* registry deltas across one pass (zero when obs is compiled out
/// or on the rebuild path, which never constructs a session).
struct SessionTotals {
  std::int64_t baseBuilds = 0;    // session.base_build
  std::int64_t ruleOverlays = 0;  // session.rule_overlay
  std::int64_t warmCrossRule = 0; // session.warmstart.cross_rule
  std::int64_t warmMaze = 0;      // session.warmstart.maze
  std::int64_t warmNone = 0;      // session.warmstart.none
};

struct PassStat {
  std::string mode;  // "rebuild" | "session"
  int mipThreads = 1;
  double wallMs = 0.0;
  SessionTotals registry;
  std::vector<TaskStat> tasks;  // clips outer, rules inner
};

core::OptRouterOptions routerOptions(int mipThreads) {
  core::OptRouterOptions o;
  o.mip.timeLimitSec = 30;
  o.mip.threads = mipThreads;
  o.formulation.netBBoxMargin = 3;
  o.formulation.netLayerMargin = 1;
  return o;
}

/// One full clip x rule sweep. `useSessions` selects per-clip ClipSession
/// reuse (one base build per clip, rules as overlays) vs the historical
/// rebuild of graph + ILP per (clip, rule) task.
PassStat runPass(const std::vector<clip::Clip>& clips,
                 const tech::Technology& techn,
                 const std::vector<tech::RuleConfig>& rules, bool useSessions,
                 int mipThreads) {
  PassStat pass;
  pass.mode = useSessions ? "session" : "rebuild";
  pass.mipThreads = mipThreads;

  obs::MetricsSnapshot before;
  if (kObsEnabled) before = obs::metrics().snapshot();
  auto t0 = std::chrono::steady_clock::now();
  for (const clip::Clip& c : clips) {
    std::unique_ptr<core::ClipSession> session;
    if (useSessions) {
      core::ClipSessionOptions so;
      so.formulation = routerOptions(mipThreads).formulation;
      so.universe = rules;
      session = std::make_unique<core::ClipSession>(c, techn, std::move(so));
    }
    for (const tech::RuleConfig& rule : rules) {
      core::OptRouter router(techn, rule, routerOptions(mipThreads));
      auto s0 = std::chrono::steady_clock::now();
      core::RouteResult r =
          useSessions ? router.route(*session, rule) : router.route(c);
      TaskStat t;
      t.wallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - s0)
                     .count();
      t.clipId = c.id;
      t.rule = rule.name;
      t.cost = r.cost;
      t.bestBound = r.bestBound;
      t.status = r.status;
      t.provenance = r.provenance;
      t.warmStart = r.warmStartKind;
      t.nodes = r.nodes;
      pass.tasks.push_back(t);
    }
  }
  pass.wallMs = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  if (kObsEnabled) {
    obs::MetricsSnapshot d =
        obs::MetricsSnapshot::delta(obs::metrics().snapshot(), before);
    pass.registry.baseBuilds = d.value("session.base_build");
    pass.registry.ruleOverlays = d.value("session.rule_overlay");
    pass.registry.warmCrossRule = d.value("session.warmstart.cross_rule");
    pass.registry.warmMaze = d.value("session.warmstart.maze");
    pass.registry.warmNone = d.value("session.warmstart.none");
  }
  return pass;
}

bool proven(core::RouteStatus s) {
  return s == core::RouteStatus::kOptimal ||
         s == core::RouteStatus::kInfeasible;
}

bool holdsSolution(core::RouteStatus s) {
  return s == core::RouteStatus::kOptimal ||
         s == core::RouteStatus::kFeasible;
}

struct GateResult {
  int provenBoth = 0;  // tasks both passes proved (and had to match)
  int undecided = 0;   // tasks a deadline truncated in at least one pass
  bool ok = true;
};

/// The equivalence gate: for every task both passes PROVE, status, cost,
/// and bestBound must be byte-identical -- a proven optimum is unique and
/// warm starts may only change node counts, never the answer. Tasks the
/// deadline truncated on either side are undecided (their incumbents and
/// bounds depend on the search path), but a proven verdict must never be
/// contradicted by a solution on the other side.
GateResult checkEquivalence(const PassStat& rebuild, const PassStat& session) {
  GateResult gate;
  for (std::size_t i = 0; i < rebuild.tasks.size(); ++i) {
    const TaskStat& a = rebuild.tasks[i];
    const TaskStat& b = session.tasks[i];
    bool aInfeasible = a.status == core::RouteStatus::kInfeasible;
    bool bInfeasible = b.status == core::RouteStatus::kInfeasible;
    if ((aInfeasible && holdsSolution(b.status)) ||
        (bInfeasible && holdsSolution(a.status))) {
      std::fprintf(stderr,
                   "FAIL: %s/%s at mip.threads=%d: rebuild %s contradicts "
                   "session %s (infeasibility proof vs validated solution)\n",
                   a.clipId.c_str(), a.rule.c_str(), rebuild.mipThreads,
                   core::toString(a.status), core::toString(b.status));
      gate.ok = false;
      continue;
    }
    if (!proven(a.status) || !proven(b.status)) {
      ++gate.undecided;
      continue;
    }
    ++gate.provenBoth;
    if (a.status != b.status || a.cost != b.cost ||
        a.bestBound != b.bestBound) {
      std::fprintf(
          stderr,
          "FAIL: %s/%s diverged at mip.threads=%d: rebuild %s cost %.17g "
          "bound %.17g vs session %s cost %.17g bound %.17g\n",
          a.clipId.c_str(), a.rule.c_str(), rebuild.mipThreads,
          core::toString(a.status), a.cost, a.bestBound,
          core::toString(b.status), b.cost, b.bestBound);
      gate.ok = false;
    }
  }
  if (gate.provenBoth * 2 < static_cast<int>(rebuild.tasks.size())) {
    std::fprintf(stderr,
                 "FAIL: mip.threads=%d: only %d of %zu tasks proven in both "
                 "passes -- the equality gate would be vacuous (raise the "
                 "time limit or shrink the clips)\n",
                 rebuild.mipThreads, gate.provenBoth, rebuild.tasks.size());
    gate.ok = false;
  }
  return gate;
}

/// Base-build economy gate (obs builds): a session pass builds exactly one
/// base graph+model per clip; a rebuild pass builds none (it never touches
/// ClipSession at all).
bool checkBaseBuilds(const PassStat& pass, std::size_t numClips) {
  if (!kObsEnabled) return true;
  std::int64_t want =
      pass.mode == "session" ? static_cast<std::int64_t>(numClips) : 0;
  if (pass.registry.baseBuilds != want) {
    std::fprintf(stderr,
                 "FAIL: %s pass at mip.threads=%d: session.base_build %lld != "
                 "expected %lld\n",
                 pass.mode.c_str(), pass.mipThreads,
                 static_cast<long long>(pass.registry.baseBuilds),
                 static_cast<long long>(want));
    return false;
  }
  return true;
}

void emitJson(const std::string& path, int threads, std::size_t numClips,
              std::size_t numRules, const std::vector<PassStat>& passes) {
  std::ofstream out(path);
  out << "{\n  \"benchmark\": \"bench_sweep\",\n  \"threads\": " << threads
      << ",\n  \"clips\": " << numClips << ",\n  \"rules\": " << numRules
      << ",\n  \"passes\": [\n";
  for (std::size_t p = 0; p < passes.size(); ++p) {
    const PassStat& pass = passes[p];
    out << "    {\"mode\": \"" << pass.mode
        << "\", \"mipThreads\": " << pass.mipThreads
        << ", \"wallMs\": " << pass.wallMs << ",\n     \"registry\": {"
        << "\"baseBuilds\": " << pass.registry.baseBuilds
        << ", \"ruleOverlays\": " << pass.registry.ruleOverlays
        << ", \"warmCrossRule\": " << pass.registry.warmCrossRule
        << ", \"warmMaze\": " << pass.registry.warmMaze
        << ", \"warmNone\": " << pass.registry.warmNone << "},\n"
        << "     \"tasks\": [\n";
    for (std::size_t i = 0; i < pass.tasks.size(); ++i) {
      const TaskStat& t = pass.tasks[i];
      out << "       {\"clip\": \"" << t.clipId << "\", \"rule\": \"" << t.rule
          << "\", \"wallMs\": " << t.wallMs << ", \"cost\": " << t.cost
          << ", \"bestBound\": " << t.bestBound << ", \"status\": \""
          << core::toString(t.status) << "\", \"provenance\": \""
          << core::toString(t.provenance) << "\", \"warmStart\": \""
          << core::toString(t.warmStart) << "\", \"nodes\": " << t.nodes
          << "}" << (i + 1 < pass.tasks.size() ? "," : "") << "\n";
    }
    out << "     ]}" << (p + 1 < passes.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 4;
  std::string clipsPath = "examples/example.clips";
  std::string outPath = "BENCH_sweep.json";
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--threads") == 0 && a + 1 < argc) {
      threads = std::atoi(argv[++a]);
    } else if (std::strcmp(argv[a], "--clips") == 0 && a + 1 < argc) {
      clipsPath = argv[++a];
    } else if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc) {
      outPath = argv[++a];
    } else {
      std::fprintf(stderr,
                   "usage: bench_sweep [--threads N] [--clips path] "
                   "[--out path.json]\n");
      return 2;
    }
  }
  if (threads < 1) threads = 1;

  auto loaded = clip::loadClips(clipsPath);
  if (!loaded.isOk()) {
    std::fprintf(stderr, "cannot load %s: %s\n", clipsPath.c_str(),
                 loaded.status().message().c_str());
    return 2;
  }
  std::vector<clip::Clip> clips = std::move(loaded).value();
  if (clips.empty()) {
    std::fprintf(stderr, "no clips in %s\n", clipsPath.c_str());
    return 2;
  }
  for (const clip::Clip& c : clips) {
    if (c.techName != clips.front().techName) {
      std::fprintf(stderr, "mixed technologies in %s (%s vs %s)\n",
                   clipsPath.c_str(), c.techName.c_str(),
                   clips.front().techName.c_str());
      return 2;
    }
  }
  auto techOr = tech::Technology::byName(clips.front().techName);
  if (!techOr.isOk()) {
    std::fprintf(stderr, "unknown technology %s\n",
                 clips.front().techName.c_str());
    return 2;
  }
  tech::Technology techn = std::move(techOr).value();

  std::vector<tech::RuleConfig> rules;
  for (const tech::RuleConfig& rc : tech::table3Rules()) {
    if (tech::ruleApplicable(rc, techn)) rules.push_back(rc);
  }
  std::printf("sweep: %zu clips x %zu rules (%s)\n", clips.size(),
              rules.size(), techn.name.c_str());

  // Rebuild first at each thread count so the session pass's warm-start
  // economics never leak backwards into its baseline.
  std::vector<PassStat> passes;
  passes.push_back(runPass(clips, techn, rules, /*useSessions=*/false, 1));
  passes.push_back(runPass(clips, techn, rules, /*useSessions=*/true, 1));
  if (threads > 1) {
    passes.push_back(
        runPass(clips, techn, rules, /*useSessions=*/false, threads));
    passes.push_back(
        runPass(clips, techn, rules, /*useSessions=*/true, threads));
  }

  bool failed = false;
  for (const PassStat& pass : passes) {
    if (!checkBaseBuilds(pass, clips.size())) failed = true;
  }
  for (std::size_t p = 0; p + 1 < passes.size(); p += 2) {
    GateResult gate = checkEquivalence(passes[p], passes[p + 1]);
    if (!gate.ok) failed = true;
    std::printf(
        "mip.threads=%d: rebuild %.0f ms vs session %.0f ms -> speedup "
        "%.2fx (%d tasks proven-and-equal, %d deadline-undecided)\n",
        passes[p].mipThreads, passes[p].wallMs, passes[p + 1].wallMs,
        passes[p].wallMs / passes[p + 1].wallMs, gate.provenBoth,
        gate.undecided);
  }
  if (kObsEnabled) {
    for (const PassStat& pass : passes) {
      if (pass.mode != "session") continue;
      std::printf(
          "session pass (mip.threads=%d): %lld base builds, %lld overlays, "
          "warm starts cross-rule/maze/none = %lld/%lld/%lld\n",
          pass.mipThreads, static_cast<long long>(pass.registry.baseBuilds),
          static_cast<long long>(pass.registry.ruleOverlays),
          static_cast<long long>(pass.registry.warmCrossRule),
          static_cast<long long>(pass.registry.warmMaze),
          static_cast<long long>(pass.registry.warmNone));
    }
  }

  emitJson(outPath, threads, clips.size(), rules.size(), passes);
  std::printf("wrote %s\n", outPath.c_str());
  if (failed) {
    std::fprintf(stderr, "FAIL: session reuse is not result-equivalent\n");
    return 1;
  }
  std::printf(
      "sweep OK: session results byte-equal rebuild results on every "
      "proven task\n");
  return 0;
}
