// Reproduces Figure 10 (the paper's headline result): sorted per-clip
// delta-cost of each BEOL rule configuration relative to RULE1, for
// N28-12T, N28-8T and N7-9T, plus per-rule infeasible-clip counts.
//
// Protocol (paper Section 4.1), implemented by core::RuleEvaluator:
//   * harvest clips from all design versions of a technology;
//   * rank by pin cost, keep the top K ("difficult-to-route");
//   * solve each clip under every applicable rule configuration with
//     OptRouter; delta-cost = cost(RULE) - cost(RULE1);
//   * unroutable clips plot at +infinity (the paper uses 500 as a plotting
//     sentinel; we print "infeasible=" counts instead).
//
// Usage: bench_fig10_deltacost [topK] [timeLimitSec] [tech]
//   defaults: topK=3, timeLimitSec=10, all technologies. The paper uses
//   top-100 with ~15-minute CPLEX solves; defaults here keep the whole
//   bench suite laptop-runnable (see EXPERIMENTS.md).
#include <cstdio>
#include <cstring>

#include "common/strings.h"
#include "core/evaluator.h"
#include "report/table.h"
#include "testbed.h"

using namespace optr;

int main(int argc, char** argv) {
  int topK = argc > 1 ? std::atoi(argv[1]) : 3;
  double timeLimit = argc > 2 ? std::atof(argv[2]) : 10.0;
  const char* onlyTech = argc > 3 ? argv[3] : nullptr;

  bench::TestbedOptions opt;

  std::printf("=== Figure 10: delta-cost per rule configuration ===\n");
  std::printf("top-%d clips per technology, %.0fs time limit per solve\n\n",
              topK, timeLimit);
  {
    report::Table t3({"Name", "SADP rules", "Blocked via sites"});
    for (const tech::RuleConfig& rc : tech::table3Rules()) {
      t3.addRow({rc.name,
                 rc.hasSadp() ? "SADP >= M" + std::to_string(rc.sadpFromMetal)
                              : "No SADP",
                 std::to_string(blockedNeighbors(rc.viaRestriction))});
    }
    std::printf("Table 3 rule configurations:\n%s\n", t3.render().c_str());
  }

  for (const tech::Technology& techn : tech::Technology::all()) {
    if (onlyTech && techn.name != onlyTech) continue;
    std::vector<clip::Clip> clips = bench::topClips(techn, topK, opt);
    std::printf("--- %s: %zu clips ---\n", techn.name.c_str(), clips.size());

    core::EvaluationOptions eo;
    eo.router.mip.timeLimitSec = timeLimit;
    eo.router.formulation.netBBoxMargin = 3;
    eo.router.formulation.netLayerMargin = 1;
    core::RuleEvaluator evaluator(techn, eo);
    core::EvaluationResult res = evaluator.evaluate(clips);

    report::Series fig("Figure 10 " + techn.name, "clip (sorted)",
                       "delta cost vs RULE1");
    report::Table summary({"Rule", "feasible", "infeasible", "unresolved",
                           "mean dCost", "max dCost", "proven/incumb/maze"});
    for (const core::RuleOutcome& ro : res.rules) {
      if (!ro.applicable) {
        summary.addRow(
            {ro.rule.name, "-", "-", "-", "skipped (pins)", "-", "-"});
        continue;
      }
      fig.add(ro.rule.name, ro.sortedDelta);
      summary.addRow(
          {ro.rule.name, std::to_string(ro.feasible),
           std::to_string(ro.infeasible), std::to_string(ro.unresolved),
           strFormat("%.2f", ro.meanDelta), strFormat("%.1f", ro.maxDelta),
           strFormat(
               "%d/%d/%d",
               ro.provenance[static_cast<int>(core::Provenance::kIlpProven)],
               ro.provenance[static_cast<int>(
                   core::Provenance::kIlpIncumbent)],
               ro.provenance[static_cast<int>(
                   core::Provenance::kMazeFallback)])});
    }
    std::printf("%s\n%s\n", summary.render().c_str(),
                fig.render(32).c_str());
  }

  std::printf(
      "Shape checks vs paper Figure 10:\n"
      " * RULE1 is the zero baseline; delta-cost is never negative;\n"
      " * more SADP layers => higher delta (RULE2 >= RULE3 >= RULE4 >= "
      "RULE5);\n"
      " * 4- vs 8-neighbor via blocking nearly coincide once SADP is also\n"
      "   applied (RULE7 vs 10, RULE8 vs 11);\n"
      " * the 8-track technology is more sensitive to SADP layer count than\n"
      "   the 12-track one; N7-9T grows infeasible clips when SADP reaches "
      "M3.\n");
  return 0;
}
