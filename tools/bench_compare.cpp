// bench_compare — bench-trajectory regression tracker. Diffs two BENCH_*.json
// snapshots (bench_runtime / bench_lp / bench_sweep / bench_fleet) and fails
// on pivot/wall/cost regressions, replacing the python gate that used to live
// inline in run_perf_smoke.sh.
//
//   bench_compare <baseline.json> <candidate.json>
//                 [--max-pivot-regress=F] [--max-wall-regress=F]
//   bench_compare --self <bench.json> [--min-hot-speedup=F]
//
// --max-pivot-regress defaults to 0.10 (10% growth fails); negative disables.
// --max-wall-regress is disabled by default (CI wall clocks are noisy).
// --self runs the snapshot's intra-file invariants instead of a diff (for
// bench_runtime: the serial / clip-parallel / mip-parallel work-conservation
// contract; for bench_service: the cold-vs-cached replay byte gate, hit
// rate, and typed saturation rejects). --min-hot-speedup opts in to the
// bench_service latency gate (cache hits at least F x faster than solves);
// it is off by default because wall clocks are machine noise.
//
// Exit status: 0 no regression, 1 regression or broken invariant, 2 usage /
// I/O / parse error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "report/bench_diff.h"

using namespace optr;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_compare <baseline.json> <candidate.json>\n"
               "         [--max-pivot-regress=F] [--max-wall-regress=F]\n"
               "       bench_compare --self <bench.json> "
               "[--min-hot-speedup=F]\n");
  return 2;
}

int printResult(const report::BenchCompareResult& res, const char* what) {
  for (const std::string& n : res.notes) {
    std::printf("note: %s\n", n.c_str());
  }
  for (const std::string& f : res.failures) {
    std::printf("FAIL: %s\n", f.c_str());
  }
  std::printf("%s: %d unit(s), %d task(s) compared: %s\n", what,
              res.unitsCompared, res.tasksCompared,
              res.ok() ? "OK" : "REGRESSION");
  return res.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool self = false;
  report::BenchCompareOptions opt;
  std::vector<std::string> files;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--self") {
      self = true;
    } else if (arg.rfind("--max-pivot-regress=", 0) == 0) {
      opt.maxPivotRegress =
          std::atof(arg.c_str() + std::strlen("--max-pivot-regress="));
    } else if (arg.rfind("--max-wall-regress=", 0) == 0) {
      opt.maxWallRegress =
          std::atof(arg.c_str() + std::strlen("--max-wall-regress="));
    } else if (arg.rfind("--min-hot-speedup=", 0) == 0) {
      opt.minHotSpeedup =
          std::atof(arg.c_str() + std::strlen("--min-hot-speedup="));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage();
    } else {
      files.push_back(arg);
    }
  }

  if (self) {
    if (files.size() != 1) return usage();
    auto docOr = report::loadJsonFile(files[0]);
    if (!docOr.isOk()) {
      std::fprintf(stderr, "%s: %s\n", files[0].c_str(),
                   docOr.status().message().c_str());
      return 2;
    }
    return printResult(report::selfCheckBench(docOr.value(), opt),
                       "self-check");
  }

  if (files.size() != 2) return usage();
  auto baseOr = report::loadJsonFile(files[0]);
  if (!baseOr.isOk()) {
    std::fprintf(stderr, "%s: %s\n", files[0].c_str(),
                 baseOr.status().message().c_str());
    return 2;
  }
  auto candOr = report::loadJsonFile(files[1]);
  if (!candOr.isOk()) {
    std::fprintf(stderr, "%s: %s\n", files[1].c_str(),
                 candOr.status().message().c_str());
    return 2;
  }
  return printResult(report::compareBench(baseOr.value(), candOr.value(), opt),
                "compare");
}
