// bench_compare — bench-trajectory regression tracker. Diffs two BENCH_*.json
// snapshots (bench_runtime / bench_lp / bench_sweep / bench_fleet) and fails
// on pivot/wall/cost regressions, replacing the python gate that used to live
// inline in run_perf_smoke.sh.
//
//   bench_compare <baseline.json> <candidate.json>
//                 [--max-pivot-regress=F] [--max-wall-regress=F]
//   bench_compare --self <bench.json> [--min-hot-speedup=F]
//   bench_compare --append-trajectory=FILE [--label=STR] <bench.json...>
//
// --append-trajectory consolidates one run's BENCH_*.json snapshots into a
// single JSONL row (timestamp, optional label, per-benchmark unit summaries
// and headline metrics) appended to FILE -- the long-term bench trajectory
// that snapshot diffs are anchored to. Appending never rewrites history:
// one row per smoke run.
//
// --max-pivot-regress defaults to 0.10 (10% growth fails); negative disables.
// --max-wall-regress is disabled by default (CI wall clocks are noisy).
// --self runs the snapshot's intra-file invariants instead of a diff (for
// bench_runtime: the serial / clip-parallel / mip-parallel work-conservation
// contract; for bench_service: the cold-vs-cached replay byte gate, hit
// rate, and typed saturation rejects). --min-hot-speedup opts in to the
// bench_service latency gate (cache hits at least F x faster than solves);
// it is off by default because wall clocks are machine noise.
//
// Exit status: 0 no regression, 1 regression or broken invariant, 2 usage /
// I/O / parse error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "common/jsonl.h"
#include "report/bench_diff.h"

using namespace optr;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_compare <baseline.json> <candidate.json>\n"
               "         [--max-pivot-regress=F] [--max-wall-regress=F]\n"
               "       bench_compare --self <bench.json> "
               "[--min-hot-speedup=F]\n"
               "       bench_compare --append-trajectory=FILE [--label=STR]\n"
               "         <bench.json...>\n");
  return 2;
}

/// One unit's (pass/config) summary for the trajectory row: key, wall time,
/// and the deterministic pivot total when the snapshot carries one.
void appendUnitSummary(std::string& out, const report::JsonValue& unit) {
  std::string key = unit.text("mode", unit.text("config", "?"));
  double pivots = unit.num("pivots", -1.0);
  if (pivots < 0 && unit.find("registry")) {
    pivots = unit.find("registry")->num("lpPivots", -1.0);
  }
  char buf[160];
  if (pivots >= 0) {
    std::snprintf(buf, sizeof buf,
                  "{\"key\":\"%s\",\"wallMs\":%.3f,\"pivots\":%.0f}",
                  jsonl::escape(key).c_str(), unit.num("wallMs"), pivots);
  } else {
    std::snprintf(buf, sizeof buf, "{\"key\":\"%s\",\"wallMs\":%.3f}",
                  jsonl::escape(key).c_str(), unit.num("wallMs"));
  }
  out += buf;
}

/// Consolidates one run's snapshots into a single trajectory JSONL row.
/// Headline metrics (cache hit rate, hot speedup, traced-daemon/fleet gate
/// bits) ride along so the trajectory answers "did the run hold the line"
/// without re-opening the per-run snapshots.
int appendTrajectory(const std::string& trajPath, const std::string& label,
                     const std::vector<std::string>& files) {
  std::string row = "{\"t\":\"bench\",\"ts\":" +
                    std::to_string(static_cast<long long>(time(nullptr)));
  if (!label.empty()) {
    row += ",\"label\":\"" + jsonl::escape(label) + "\"";
  }
  row += ",\"benches\":[";
  bool firstBench = true;
  for (const std::string& path : files) {
    auto docOr = report::loadJsonFile(path);
    if (!docOr.isOk()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   docOr.status().message().c_str());
      return 2;
    }
    const report::JsonValue& doc = docOr.value();
    if (!firstBench) row += ",";
    firstBench = false;
    row += "{\"name\":\"" +
           jsonl::escape(doc.text("benchmark", path)) + "\"";
    for (const char* key : {"cacheHitRate", "hotSpeedup"}) {
      if (doc.has(key)) {
        char buf[64];
        std::snprintf(buf, sizeof buf, ",\"%s\":%.6g", key, doc.num(key));
        row += buf;
      }
    }
    // Gate bits from the cross-process trace legs, when present.
    for (const char* key : {"tracedDaemon", "tracedFleet"}) {
      const report::JsonValue* t = doc.find(key);
      if (!t) continue;
      char buf[96];
      std::snprintf(buf, sizeof buf, ",\"%s\":{\"ran\":%d,\"ok\":%d}", key,
                    t->num("ran") != 0 ? 1 : 0,
                    (t->num("ran") != 0 &&
                     (key[6] == 'D' ? t->num("stitched") != 0 &&
                                          t->num("workConserved") != 0 &&
                                          t->num("pingPercentilesOk") != 0
                                    : t->num("singleTree") != 0 &&
                                          t->num("workConserved") != 0))
                        ? 1
                        : 0);
      row += buf;
    }
    const report::JsonValue* units = doc.find("passes");
    if (!units) units = doc.find("configs");
    row += ",\"units\":[";
    if (units) {
      for (std::size_t i = 0; i < units->items.size(); ++i) {
        if (i) row += ",";
        appendUnitSummary(row, units->items[i]);
      }
    }
    row += "]}";
  }
  row += "]}";

  std::FILE* f = std::fopen(trajPath.c_str(), "a");
  if (!f) {
    std::fprintf(stderr, "--append-trajectory: cannot open %s\n",
                 trajPath.c_str());
    return 2;
  }
  std::fprintf(f, "%s\n", row.c_str());
  std::fclose(f);
  std::printf("appended %zu bench summar%s to %s\n", files.size(),
              files.size() == 1 ? "y" : "ies", trajPath.c_str());
  return 0;
}

int printResult(const report::BenchCompareResult& res, const char* what) {
  for (const std::string& n : res.notes) {
    std::printf("note: %s\n", n.c_str());
  }
  for (const std::string& f : res.failures) {
    std::printf("FAIL: %s\n", f.c_str());
  }
  std::printf("%s: %d unit(s), %d task(s) compared: %s\n", what,
              res.unitsCompared, res.tasksCompared,
              res.ok() ? "OK" : "REGRESSION");
  return res.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool self = false;
  report::BenchCompareOptions opt;
  std::string trajPath;
  std::string label;
  std::vector<std::string> files;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--self") {
      self = true;
    } else if (arg.rfind("--append-trajectory=", 0) == 0) {
      trajPath = arg.substr(std::strlen("--append-trajectory="));
    } else if (arg.rfind("--label=", 0) == 0) {
      label = arg.substr(std::strlen("--label="));
    } else if (arg.rfind("--max-pivot-regress=", 0) == 0) {
      opt.maxPivotRegress =
          std::atof(arg.c_str() + std::strlen("--max-pivot-regress="));
    } else if (arg.rfind("--max-wall-regress=", 0) == 0) {
      opt.maxWallRegress =
          std::atof(arg.c_str() + std::strlen("--max-wall-regress="));
    } else if (arg.rfind("--min-hot-speedup=", 0) == 0) {
      opt.minHotSpeedup =
          std::atof(arg.c_str() + std::strlen("--min-hot-speedup="));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage();
    } else {
      files.push_back(arg);
    }
  }

  if (!trajPath.empty()) {
    if (files.empty() || self) return usage();
    return appendTrajectory(trajPath, label, files);
  }

  if (self) {
    if (files.size() != 1) return usage();
    auto docOr = report::loadJsonFile(files[0]);
    if (!docOr.isOk()) {
      std::fprintf(stderr, "%s: %s\n", files[0].c_str(),
                   docOr.status().message().c_str());
      return 2;
    }
    return printResult(report::selfCheckBench(docOr.value(), opt),
                       "self-check");
  }

  if (files.size() != 2) return usage();
  auto baseOr = report::loadJsonFile(files[0]);
  if (!baseOr.isOk()) {
    std::fprintf(stderr, "%s: %s\n", files[0].c_str(),
                 baseOr.status().message().c_str());
    return 2;
  }
  auto candOr = report::loadJsonFile(files[1]);
  if (!candOr.isOk()) {
    std::fprintf(stderr, "%s: %s\n", files[1].c_str(),
                 candOr.status().message().c_str());
    return 2;
  }
  return printResult(report::compareBench(baseOr.value(), candOr.value(), opt),
                "compare");
}
