// optrouter — command-line driver for the BEOL rule-evaluation flow.
//
// Subcommands:
//   info                                    list technologies and rules
//   gen   <tech> <out.clips> [n] [seed]     synthesize a design, extract and
//                                           rank clips, save the top n
//   lefdef <tech> <out.lef> <out.def>       dump the synthetic enablement
//   route <clips> <rule> [index]            route one clip, print the layout
//   sweep <clips> <rule...>                 route all clips under each rule
//   batch <clips> <ckpt.jsonl> <rule...>    hardened sweep: fork-isolated
//                                           tasks, watchdog, resumable via
//                                           the JSONL checkpoint file;
//                                           --isolation=thread --threads N
//                                           trades crash containment for an
//                                           in-process worker pool, and
//                                           --mip-threads N parallelizes
//                                           each solve's tree search
//   improve <clips> <rule> [threads]        local improvement report
//   serve --listen unix:PATH|HOST:PORT      routing-as-a-service daemon:
//                                           content-addressed result cache,
//                                           shared session pool, bounded
//                                           admission queues; SIGTERM drains
//                                           and exits cleanly; --metrics-out
//                                           streams snapshot-delta rows live
//   top <address>                           live daemon monitor: polls ping
//                                           stats and renders queue/solve
//                                           latency percentiles
//   sweep-coordinator <clips> <ckpt> <rule...>  fleet sweep: lease-based
//                                           coordinator sharding the matrix
//                                           across worker processes with
//                                           failure detection, re-assignment
//                                           and crash-consistent resume
//   sweep-worker <clips> [rule...]          one fleet worker speaking the
//                                           protocol on stdin/stdout (what
//                                           --worker-cmd / SSH runs)
//   trace-report <trace.jsonl...>           trace analytics: phase/rule
//                                           breakdown with latency
//                                           percentiles; --table5 adds the
//                                           paper's rule-impact attribution
//
// Example session:
//   optrouter gen N28-12T top.clips 10
//   optrouter route top.clips RULE3 0
//   optrouter sweep top.clips RULE1 RULE3 RULE6
//   optrouter sweep-coordinator top.clips run.jsonl --workers 4 RULE1 RULE3
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#if !defined(_WIN32)
#include <time.h>  // nanosleep, for the `top` refresh cadence
#endif

#include "clip/clip_io.h"
#include "common/stop_signal.h"
#include "common/strings.h"
#include "core/improver.h"
#include "core/opt_router.h"
#include "harness/batch_runner.h"
#include "harness/checkpoint_io.h"
#include "harness/sweep_coordinator.h"
#include "harness/sweep_worker.h"
#include "layout/clip_extract.h"
#include "layout/def_io.h"
#include "layout/global_route.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/service_client.h"
#include "service/service_server.h"
#include "trace_report_main.h"
#include "report/table.h"
#include "route/render.h"
#include "route/sadp_decompose.h"

using namespace optr;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: optrouter <info|gen|lefdef|route|sweep|batch|improve|\n"
               "                  serve|sweep-coordinator|sweep-worker|\n"
               "                  trace-report> ...\n"
               "  info\n"
               "  gen <tech> <out.clips> [numClips=10] [seed=1]\n"
               "  lefdef <tech> <out.lef> <out.def>\n"
               "  route <clips> <rule> [index=0]\n"
               "  sweep <clips> <rule...>\n"
               "  batch <clips> <checkpoint.jsonl> [--threads N]\n"
               "        [--isolation=fork|thread] [--mip-threads N]\n"
               "        [--no-session-reuse] [--trace=out.jsonl] [--metrics]\n"
               "        [--metrics-out=FILE]\n"
               "        [--lp-pricing=dantzig|devex] [--lp-dual-restart=on|off]\n"
               "        <rule...>\n"
               "        (--threads needs --isolation=thread: the in-process\n"
               "         pool; fork isolation stays serial but crash-proof;\n"
               "         --no-session-reuse rebuilds graph+model per rule\n"
               "         instead of reusing the per-clip session;\n"
               "         --trace writes a span/event JSONL for trace_report,\n"
               "         --metrics prints the batch's counter deltas)\n"
               "  improve <clips> <rule> [threads=1]\n"
               "  serve --listen unix:PATH|HOST:PORT [--workers N]\n"
               "        [--queue-depth N] [--client-queue N] [--cache-cap N]\n"
               "        [--session-pool N] [--time-limit S] [--mip-threads N]\n"
               "        [--lp-pricing=...] [--lp-dual-restart=on|off]\n"
               "        [--trace=out.jsonl] [--metrics-out=FILE]\n"
               "        [--telemetry-interval S] [rule...]\n"
               "        (routing-as-a-service daemon: line-delimited JSON\n"
               "         requests over a unix or TCP socket, content-\n"
               "         addressed result cache + shared session pool;\n"
               "         rules default to the full Table-3 universe;\n"
               "         SIGTERM drains in-flight work and exits 0;\n"
               "         --metrics-out appends timestamped snapshot-delta\n"
               "         rows on a cadence via atomic rename, so the file\n"
               "         is complete even after SIGKILL;\n"
               "         use tools' service_client to talk to it)\n"
               "  top <address> [--interval=S] [--count=N]\n"
               "        (polls the daemon's ping/stats frame and renders\n"
               "         live queue-wait / lease / solve / reply-write\n"
               "         percentiles; --count=0 polls until interrupted)\n"
               "  sweep-coordinator <clips> <checkpoint.jsonl>\n"
               "        [--workers N] [--lease-sec S] [--task-timeout S]\n"
               "        [--max-attempts N] [--worker-cmd 'CMD']\n"
               "        [--chaos-kills N] [--chaos-prob P] [--chaos-seed S]\n"
               "        [--trace=out.jsonl] [--metrics] [--metrics-out=FILE]\n"
               "        [--telemetry-interval S] <rule...>\n"
               "        (fleet sweep with lease-based failure detection;\n"
               "         --metrics-out=FILE streams snapshot-delta rows on\n"
               "         the telemetry cadence like `serve`; '-' prints one\n"
               "         end-of-run delta to stdout instead;\n"
               "         --worker-cmd spawns each worker as `sh -c CMD`\n"
               "         speaking the protocol on stdin/stdout -- wrap it\n"
               "         in ssh to spread across machines; default forks\n"
               "         in-process workers; chaos flags SIGKILL random\n"
               "         busy workers to drill the recovery machinery)\n"
               "  sweep-worker <clips> [--checkpoint ckpt.jsonl]\n"
               "        [--checkpoint-base merged.jsonl] [--heartbeat-sec S]\n"
               "        [--trace=out.jsonl] [--metrics-out=FILE] [rule...]\n"
               "        (serves the fleet protocol on stdin/stdout; rules\n"
               "         default to the full Table-3 set; --checkpoint-base\n"
               "         derives the per-worker file from $OPTR_SWEEP_SLOT;\n"
               "         --trace/--metrics-out write to files, never stdout:\n"
               "         stdout is the protocol channel)\n"
               "  trace-report <trace.jsonl...> [--table5] [--baseline=RULE]\n"
               "        [--json=FILE] [--verify-join=checkpoint.jsonl]\n"
               "        [--stitch]\n"
               "        (phase/rule analytics with p50/p95/p99 latencies;\n"
               "         several files merge into one fleet-wide trace;\n"
               "         --table5 joins route.solve spans into the paper's\n"
               "         per-rule impact table, --verify-join proves the\n"
               "         join lossless against the sweep's JSONL results)\n");
  return 2;
}

/// Writes the metrics delta since `before` as JSON to `path` ("-" = stdout).
/// Used by --metrics-out so scripts can collect counters/histograms without
/// scraping the human-readable report.
int writeMetricsDelta(const std::string& path,
                      const obs::MetricsSnapshot& before) {
  obs::MetricsSnapshot after = obs::metrics().snapshot();
  std::string doc = obs::MetricsSnapshot::delta(after, before).toJson();
  if (path == "-") {
    std::printf("%s\n", doc.c_str());
    return 0;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "--metrics-out: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return 0;
}

/// Shared LP-kernel flags (batch, sweep-coordinator): --lp-pricing=
/// dantzig|devex and --lp-dual-restart=on|off. Returns 1 when consumed,
/// -1 on a malformed value (message printed), 0 when `arg` is not an LP flag.
int parseLpFlag(const std::string& arg, lp::SimplexOptions& lpOpt) {
  if (arg.rfind("--lp-pricing=", 0) == 0) {
    std::string v = arg.substr(std::strlen("--lp-pricing="));
    if (v == "dantzig") {
      lpOpt.pricing = lp::PricingRule::kDantzig;
      return 1;
    }
    if (v == "devex") {
      lpOpt.pricing = lp::PricingRule::kDevex;
      return 1;
    }
    std::fprintf(stderr, "--lp-pricing must be 'dantzig' or 'devex'\n");
    return -1;
  }
  if (arg.rfind("--lp-dual-restart=", 0) == 0) {
    std::string v = arg.substr(std::strlen("--lp-dual-restart="));
    if (v == "on") {
      lpOpt.dualRestart = true;
      return 1;
    }
    if (v == "off") {
      lpOpt.dualRestart = false;
      return 1;
    }
    std::fprintf(stderr, "--lp-dual-restart must be 'on' or 'off'\n");
    return -1;
  }
  return 0;
}

int cmdInfo() {
  report::Table techs({"Technology", "cell height", "clip tracks",
                       "pin style", "diag-via rules"});
  for (const tech::Technology& t : tech::Technology::all()) {
    techs.addRow({t.name, std::to_string(t.cellHeightTracks) + "T",
                  strFormat("%dx%d", t.clipTracksX, t.clipTracksY),
                  t.pinStyle == tech::PinStyle::kWide ? "wide" : "compact",
                  t.supportsDiagonalViaRules ? "yes" : "no"});
  }
  std::printf("%s\n", techs.render().c_str());
  report::Table rules({"Rule", "SADP", "blocked via sites"});
  for (const tech::RuleConfig& rc : tech::table3Rules()) {
    rules.addRow({rc.name,
                  rc.hasSadp() ? "M" + std::to_string(rc.sadpFromMetal) + "+"
                               : "-",
                  std::to_string(blockedNeighbors(rc.viaRestriction))});
  }
  std::printf("%s", rules.render().c_str());
  return 0;
}

StatusOr<std::vector<clip::Clip>> loadOrFail(const char* path) {
  auto clips = clip::loadClips(path);
  if (!clips) std::fprintf(stderr, "%s\n", clips.status().message().c_str());
  return clips;
}

int cmdGen(int argc, char** argv) {
  if (argc < 4) return usage();
  auto techOr = tech::Technology::byName(argv[2]);
  if (!techOr) {
    std::fprintf(stderr, "%s\n", techOr.status().message().c_str());
    return 1;
  }
  int numClips = argc > 4 ? std::atoi(argv[4]) : 10;
  std::uint64_t seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;

  auto lib = layout::CellLibrary::forTechnology(techOr.value());
  layout::DesignSpec spec;
  spec.name = "GEN";
  spec.targetInstances = 420;
  spec.utilization = 0.93;
  spec.seed = seed;
  layout::Design design = layout::generateDesign(lib, spec);
  layout::GlobalRoute gr = layout::globalRoute(design, lib);
  layout::ClipExtractOptions eo;
  eo.maxNets = 6;
  eo.maxLayers = 4;
  auto clips = layout::extractClips(design, lib, gr, eo);
  std::sort(clips.begin(), clips.end(),
            [](const clip::Clip& a, const clip::Clip& b) {
              return clip::pinCost(a).total() > clip::pinCost(b).total();
            });
  if (static_cast<int>(clips.size()) > numClips) clips.resize(numClips);
  Status s = clip::saveClips(argv[3], clips);
  if (!s) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  std::printf("design: %zu instances, %zu nets; saved %zu clips to %s\n",
              design.instances.size(), design.nets.size(), clips.size(),
              argv[3]);
  return 0;
}

int cmdLefDef(int argc, char** argv) {
  if (argc < 5) return usage();
  auto techOr = tech::Technology::byName(argv[2]);
  if (!techOr) {
    std::fprintf(stderr, "%s\n", techOr.status().message().c_str());
    return 1;
  }
  auto lib = layout::CellLibrary::forTechnology(techOr.value());
  layout::DesignSpec spec;
  spec.name = "GEN";
  spec.targetInstances = 420;
  layout::Design design = layout::generateDesign(lib, spec);
  Status s = layout::saveDesign(argv[3], argv[4], design, lib);
  if (!s) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  std::printf("wrote %s and %s\n", argv[3], argv[4]);
  return 0;
}

int cmdRoute(int argc, char** argv) {
  if (argc < 4) return usage();
  auto clips = loadOrFail(argv[2]);
  if (!clips) return 1;
  auto ruleOr = tech::ruleByName(argv[3]);
  if (!ruleOr) {
    std::fprintf(stderr, "%s\n", ruleOr.status().message().c_str());
    return 1;
  }
  std::size_t index = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 0;
  if (index >= clips.value().size()) {
    std::fprintf(stderr, "clip index out of range (%zu clips)\n",
                 clips.value().size());
    return 1;
  }
  const clip::Clip& c = clips.value()[index];
  auto techn = tech::Technology::byName(c.techName).value();

  core::OptRouterOptions o;
  o.mip.timeLimitSec = 60;
  o.formulation.netBBoxMargin = 3;
  o.formulation.netLayerMargin = 1;
  core::OptRouter router(techn, ruleOr.value(), o);
  core::RouteResult r = router.route(c);
  std::printf("clip %s under %s: %s", c.id.c_str(),
              ruleOr.value().name.c_str(), core::toString(r.status));
  if (r.hasSolution()) {
    std::printf("  cost=%.0f (WL %d + %d vias)  [%s]", r.cost, r.wirelength,
                r.vias, core::toString(r.provenance));
    std::printf("\n  search: %lld nodes, %lld LP iterations, warm start %s",
                static_cast<long long>(r.nodes),
                static_cast<long long>(r.lpIterations),
                core::toString(r.warmStartKind));
  }
  if (!r.error.isOk()) {
    std::printf("\n  degraded: [%s] %s", toString(r.error.code()),
                r.error.message().c_str());
  }
  std::printf("\n\n");
  if (r.hasSolution()) {
    grid::RoutingGraph g(c, techn, ruleOr.value());
    std::printf("%s", route::renderClip(c, g, &r.solution).c_str());
    if (ruleOr.value().hasSadp()) {
      auto masks = route::decomposeSadp(c, g, r.solution);
      for (const auto& layer : masks.layers)
        std::printf("\n%s", route::renderMasks(c, g, layer).c_str());
    }
  }
  return r.status == core::RouteStatus::kError ? 1 : 0;
}

int cmdSweep(int argc, char** argv) {
  if (argc < 4) return usage();
  auto clips = loadOrFail(argv[2]);
  if (!clips) return 1;
  report::Table table(
      {"Clip", "Rule", "status", "cost", "WL", "vias", "provenance", "error"});
  for (const clip::Clip& c : clips.value()) {
    auto techn = tech::Technology::byName(c.techName).value();
    for (int a = 3; a < argc; ++a) {
      auto ruleOr = tech::ruleByName(argv[a]);
      if (!ruleOr) {
        std::fprintf(stderr, "%s\n", ruleOr.status().message().c_str());
        return 1;
      }
      core::OptRouterOptions o;
      o.mip.timeLimitSec = 20;
      o.formulation.netBBoxMargin = 3;
      o.formulation.netLayerMargin = 1;
      core::OptRouter router(techn, ruleOr.value(), o);
      core::RouteResult r = router.route(c);
      table.addRow({c.id, argv[a], core::toString(r.status),
                    r.hasSolution() ? strFormat("%.0f", r.cost) : "-",
                    r.hasSolution() ? std::to_string(r.wirelength) : "-",
                    r.hasSolution() ? std::to_string(r.vias) : "-",
                    core::toString(r.provenance),
                    r.error.isOk() ? "-" : toString(r.error.code())});
    }
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmdBatch(int argc, char** argv) {
  if (argc < 5) return usage();
  auto clips = loadOrFail(argv[2]);
  if (!clips) return 1;

  harness::BatchOptions opt;
  opt.router.mip.timeLimitSec = 20;
  opt.router.formulation.netBBoxMargin = 3;
  opt.router.formulation.netLayerMargin = 1;
  opt.checkpointPath = argv[3];

  std::string tracePath;
  std::string metricsOutPath;
  bool wantMetrics = false;
  std::vector<tech::RuleConfig> rules;
  for (int a = 4; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg.rfind("--trace=", 0) == 0) {
      tracePath = arg.substr(std::strlen("--trace="));
      if (tracePath.empty()) {
        std::fprintf(stderr, "--trace needs a path: --trace=out.jsonl\n");
        return 2;
      }
      continue;
    }
    if (arg == "--metrics") {
      wantMetrics = true;
      continue;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      metricsOutPath = arg.substr(std::strlen("--metrics-out="));
      if (metricsOutPath.empty()) {
        std::fprintf(stderr, "--metrics-out needs a path or '-'\n");
        return 2;
      }
      continue;
    }
    if (arg == "--threads" && a + 1 < argc) {
      opt.threads = std::atoi(argv[++a]);
      if (opt.threads < 1) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return 2;
      }
      continue;
    }
    if (arg.rfind("--isolation=", 0) == 0) {
      std::string mode = arg.substr(std::strlen("--isolation="));
      if (mode == "fork") {
        opt.isolateTasks = true;
      } else if (mode == "thread") {
        opt.isolateTasks = false;
      } else {
        std::fprintf(stderr,
                     "--isolation must be 'fork' (crash-contained, serial) "
                     "or 'thread' (in-process pool)\n");
        return 2;
      }
      continue;
    }
    if (arg == "--mip-threads" && a + 1 < argc) {
      opt.router.mip.threads = std::atoi(argv[++a]);
      if (opt.router.mip.threads < 1) {
        std::fprintf(stderr, "--mip-threads must be >= 1\n");
        return 2;
      }
      continue;
    }
    if (arg == "--no-session-reuse") {
      opt.sessionReuse = false;
      continue;
    }
    if (int lpf = parseLpFlag(arg, opt.router.mip.lpOptions); lpf != 0) {
      if (lpf < 0) return 2;
      continue;
    }
    auto ruleOr = tech::ruleByName(argv[a]);
    if (!ruleOr) {
      std::fprintf(stderr, "%s\n", ruleOr.status().message().c_str());
      return 1;
    }
    rules.push_back(ruleOr.value());
  }
  if (rules.empty()) return usage();
  if (opt.threads > 1 && opt.isolateTasks) {
    std::fprintf(stderr,
                 "note: --threads applies only with --isolation=thread; "
                 "fork isolation runs tasks serially (crash containment "
                 "over speed)\n");
  }
  if (!tracePath.empty()) {
    Status ts = obs::TraceSession::start(tracePath);
    if (!ts) {
      std::fprintf(stderr, "--trace: %s\n", ts.message().c_str());
      return 1;
    }
  }
  obs::MetricsSnapshot before = obs::metrics().snapshot();

  // SIGTERM/SIGINT stop the batch at the next task boundary: everything
  // finished is checkpointed, the trace is flushed, and we exit 0 so a
  // supervisor restart resumes instead of treating the stop as a failure.
  common::installStopSignals();

  harness::BatchReport report =
      harness::BatchRunner(opt).run(clips.value(), rules);

  if (!tracePath.empty()) obs::TraceSession::stop();

  report::Table table({"Clip", "Rule", "status", "provenance", "error",
                       "cost", "nodes", "LP iters", "warm", "seconds"});
  for (const harness::BatchRow& row : report.rows) {
    bool solved = row.status == core::RouteStatus::kOptimal ||
                  row.status == core::RouteStatus::kFeasible;
    table.addRow({row.clipId, row.ruleName, core::toString(row.status),
                  core::toString(row.provenance),
                  row.errorCode == ErrorCode::kOk ? "-"
                                                  : toString(row.errorCode),
                  solved ? strFormat("%.0f", row.cost) : "-",
                  std::to_string(row.nodes), std::to_string(row.lpIterations),
                  row.warmStartUsed ? "yes" : "-",
                  strFormat("%.1f", row.seconds)});
  }
  std::printf("%s", table.render().c_str());
  auto prov = report.provenanceCounts();
  std::printf(
      "\ntasks: %d run, %d resumed from checkpoint, %d crashed, %d timed "
      "out\nprovenance: %d ilp-proven, %d ilp-incumbent, %d maze-fallback\n",
      report.executed, report.resumed, report.crashed, report.timedOut,
      prov[static_cast<int>(core::Provenance::kIlpProven)],
      prov[static_cast<int>(core::Provenance::kIlpIncumbent)],
      prov[static_cast<int>(core::Provenance::kMazeFallback)]);
  if (report.interrupted) {
    std::printf(
        "interrupted by signal %d after draining in-flight work; rerun the "
        "same command to resume from the checkpoint\n",
        common::stopSignal());
  }
  if (wantMetrics) {
    // Delta over this batch only, so a long-lived process (or resumed
    // checkpoint) doesn't leak earlier solves into the numbers. Note that
    // fork-isolated solves run in child processes: their solver counters
    // die with the child, so only harness-level metrics move in that mode.
    obs::MetricsSnapshot after = obs::metrics().snapshot();
    std::printf("\nmetrics (this batch):\n%s\n",
                obs::MetricsSnapshot::delta(after, before).toJson().c_str());
  }
  if (!metricsOutPath.empty() && writeMetricsDelta(metricsOutPath, before)) {
    return 1;
  }
  if (!tracePath.empty()) {
    std::printf("trace written to %s\n", tracePath.c_str());
  }
  return report.crashed > 0 ? 1 : 0;
}

int cmdSweepCoordinator(int argc, char** argv) {
  if (argc < 5) return usage();
  auto clips = loadOrFail(argv[2]);
  if (!clips) return 1;

  harness::SweepCoordinatorOptions opt;
  opt.router.mip.timeLimitSec = 20;
  opt.router.formulation.netBBoxMargin = 3;
  opt.router.formulation.netLayerMargin = 1;
  opt.checkpointPath = argv[3];

  std::string tracePath;
  std::string metricsOutPath;
  bool wantMetrics = false;
  std::vector<tech::RuleConfig> rules;
  for (int a = 4; a < argc; ++a) {
    std::string arg = argv[a];
    auto needValue = [&](const char* flag) -> const char* {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++a];
    };
    if (arg == "--workers") {
      const char* v = needValue("--workers");
      if (!v) return 2;
      opt.workers = std::atoi(v);
      if (opt.workers < 1) {
        std::fprintf(stderr, "--workers must be >= 1\n");
        return 2;
      }
      continue;
    }
    if (arg == "--lease-sec") {
      const char* v = needValue("--lease-sec");
      if (!v) return 2;
      opt.leaseSec = std::atof(v);
      continue;
    }
    if (arg == "--task-timeout") {
      const char* v = needValue("--task-timeout");
      if (!v) return 2;
      opt.taskTimeoutSec = std::atof(v);
      continue;
    }
    if (arg == "--max-attempts") {
      const char* v = needValue("--max-attempts");
      if (!v) return 2;
      opt.maxAttempts = std::atoi(v);
      continue;
    }
    if (arg == "--worker-cmd") {
      const char* v = needValue("--worker-cmd");
      if (!v) return 2;
      opt.workerCommand = v;
      continue;
    }
    if (arg == "--chaos-kills") {
      const char* v = needValue("--chaos-kills");
      if (!v) return 2;
      opt.chaosMaxKills = std::atoi(v);
      if (opt.chaosKillProb <= 0.0) opt.chaosKillProb = 0.05;
      continue;
    }
    if (arg == "--chaos-prob") {
      const char* v = needValue("--chaos-prob");
      if (!v) return 2;
      opt.chaosKillProb = std::atof(v);
      continue;
    }
    if (arg == "--chaos-seed") {
      const char* v = needValue("--chaos-seed");
      if (!v) return 2;
      opt.chaosSeed = static_cast<std::uint64_t>(std::atoll(v));
      continue;
    }
    if (arg == "--telemetry-interval") {
      const char* v = needValue("--telemetry-interval");
      if (!v) return 2;
      opt.telemetryIntervalSec = std::atof(v);
      if (opt.telemetryIntervalSec <= 0) {
        std::fprintf(stderr, "--telemetry-interval must be > 0\n");
        return 2;
      }
      continue;
    }
    if (arg.rfind("--trace=", 0) == 0) {
      tracePath = arg.substr(std::strlen("--trace="));
      continue;
    }
    if (arg == "--metrics") {
      wantMetrics = true;
      continue;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      metricsOutPath = arg.substr(std::strlen("--metrics-out="));
      if (metricsOutPath.empty()) {
        std::fprintf(stderr, "--metrics-out needs a path or '-'\n");
        return 2;
      }
      continue;
    }
    if (int lpf = parseLpFlag(arg, opt.router.mip.lpOptions); lpf != 0) {
      if (lpf < 0) return 2;
      continue;
    }
    auto ruleOr = tech::ruleByName(argv[a]);
    if (!ruleOr) {
      std::fprintf(stderr, "%s\n", ruleOr.status().message().c_str());
      return 1;
    }
    rules.push_back(ruleOr.value());
  }
  if (rules.empty()) return usage();

  // A file path streams live snapshot-delta rows from the coordinator's
  // poll loop (same exporter as `serve`); "-" keeps the single-shot delta
  // on stdout, which cannot be atomically renamed.
  if (!metricsOutPath.empty() && metricsOutPath != "-") {
    opt.metricsOutPath = metricsOutPath;
  }

  if (!tracePath.empty()) {
    Status ts = obs::TraceSession::start(tracePath);
    if (!ts) {
      std::fprintf(stderr, "--trace: %s\n", ts.message().c_str());
      return 1;
    }
  }
  obs::MetricsSnapshot before = obs::metrics().snapshot();

  harness::FleetReport report =
      harness::SweepCoordinator(opt).run(clips.value(), rules);

  if (!tracePath.empty()) obs::TraceSession::stop();
  if (!report.status.isOk()) {
    std::fprintf(stderr, "fleet: %s\n", report.status.message().c_str());
  }

  report::Table table({"Clip", "Rule", "status", "provenance", "error",
                       "cost", "nodes", "seconds"});
  for (const harness::BatchRow& row : report.rows) {
    bool solved = row.status == core::RouteStatus::kOptimal ||
                  row.status == core::RouteStatus::kFeasible;
    table.addRow({row.clipId, row.ruleName, core::toString(row.status),
                  core::toString(row.provenance),
                  row.errorCode == ErrorCode::kOk ? "-"
                                                  : toString(row.errorCode),
                  solved ? strFormat("%.0f", row.cost) : "-",
                  std::to_string(row.nodes), strFormat("%.1f", row.seconds)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\ntasks: %d run, %d resumed (%d recovered from worker files), "
      "%d quarantined\nfleet: %d leases (%d reassigned, %d expired), "
      "%d workers spawned, %d deaths (%d chaos), %d duplicate / %d stale "
      "results, %d nacks, %d garbled lines\n",
      report.executed, report.resumed, report.recoveredFromWorkerFiles,
      report.quarantined, report.leasesGranted, report.leasesReassigned,
      report.leasesExpired, report.workersSpawned, report.workerDeaths,
      report.chaosKills, report.duplicateResults, report.staleResults,
      report.nacks, report.garbledMessages);
  if (wantMetrics) {
    obs::MetricsSnapshot after = obs::metrics().snapshot();
    std::printf("\nmetrics (this run):\n%s\n",
                obs::MetricsSnapshot::delta(after, before).toJson().c_str());
  }
  if (metricsOutPath == "-" && writeMetricsDelta(metricsOutPath, before)) {
    return 1;
  }
  if (!tracePath.empty()) {
    std::printf("trace written to %s\n", tracePath.c_str());
  }
  if (!report.status.isOk()) return 1;
  return report.quarantined > 0 ? 1 : 0;
}

int cmdSweepWorker(int argc, char** argv) {
  if (argc < 3) return usage();
  auto clips = loadOrFail(argv[2]);
  if (!clips) return 1;

  harness::SweepWorkerOptions wo;
  // Router defaults must match the coordinator's: the equivalence contract
  // assumes every process solves with identical options.
  wo.router.mip.timeLimitSec = 20;
  wo.router.formulation.netBBoxMargin = 3;
  wo.router.formulation.netLayerMargin = 1;
  const char* slotEnv = std::getenv("OPTR_SWEEP_SLOT");
  wo.workerId = slotEnv ? "w" + std::string(slotEnv)
                        : "pid" + std::to_string(getpid());

  std::string tracePath;
  std::string metricsOutPath;
  std::vector<tech::RuleConfig> rules;
  for (int a = 3; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--checkpoint" && a + 1 < argc) {
      wo.checkpointPath = argv[++a];
      continue;
    }
    if (arg.rfind("--trace=", 0) == 0) {
      tracePath = arg.substr(std::strlen("--trace="));
      continue;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      metricsOutPath = arg.substr(std::strlen("--metrics-out="));
      if (metricsOutPath.empty() || metricsOutPath == "-") {
        // stdout is the protocol channel: a file is mandatory here.
        std::fprintf(stderr, "sweep-worker --metrics-out needs a file path\n");
        return 2;
      }
      continue;
    }
    if (arg == "--checkpoint-base" && a + 1 < argc) {
      // Derive the per-worker file the coordinator merges on restart.
      int slot = slotEnv ? std::atoi(slotEnv) : 0;
      wo.checkpointPath = harness::workerCheckpointPath(argv[++a], slot);
      continue;
    }
    if (arg == "--heartbeat-sec" && a + 1 < argc) {
      wo.heartbeatSec = std::atof(argv[++a]);
      continue;
    }
    auto ruleOr = tech::ruleByName(argv[a]);
    if (!ruleOr) {
      std::fprintf(stderr, "%s\n", ruleOr.status().message().c_str());
      return 1;
    }
    rules.push_back(ruleOr.value());
  }
  if (rules.empty()) rules = tech::table3Rules();

  if (!tracePath.empty()) {
    Status ts = obs::TraceSession::start(tracePath);
    if (!ts) {
      std::fprintf(stderr, "--trace: %s\n", ts.message().c_str());
      return 1;
    }
  }
  obs::MetricsSnapshot before = obs::metrics().snapshot();

  // stdout IS the protocol channel: nothing above may have printed to it.
  Status st = harness::SweepWorker(wo).serve(/*inFd=*/0, /*outFd=*/1,
                                             clips.value(), rules);

  if (!tracePath.empty()) obs::TraceSession::stop();
  if (!metricsOutPath.empty() && writeMetricsDelta(metricsOutPath, before)) {
    return 1;
  }
  if (!st.isOk()) {
    std::fprintf(stderr, "sweep-worker: %s\n", st.message().c_str());
    return 1;
  }
  return 0;
}

int cmdImprove(int argc, char** argv) {
  if (argc < 4) return usage();
  auto clips = loadOrFail(argv[2]);
  if (!clips) return 1;
  auto ruleOr = tech::ruleByName(argv[3]);
  if (!ruleOr) {
    std::fprintf(stderr, "%s\n", ruleOr.status().message().c_str());
    return 1;
  }
  int threads = argc > 4 ? std::atoi(argv[4]) : 1;
  if (clips.value().empty()) {
    std::fprintf(stderr, "no clips in %s\n", argv[2]);
    return 1;
  }
  auto techn =
      tech::Technology::byName(clips.value()[0].techName).value();
  core::ImproverOptions opt;
  opt.threads = threads;
  opt.router.mip.timeLimitSec = 30;
  opt.router.formulation.netBBoxMargin = 3;
  opt.router.formulation.netLayerMargin = 1;
  core::LocalImprover improver(techn, ruleOr.value(), opt);
  core::ImprovementReport report = improver.improve(clips.value());
  report::Table table({"clip", "baseline", "after", "status"});
  for (const auto& ci : report.clips) {
    table.addRow({ci.clipId,
                  ci.baselineRouted ? strFormat("%.0f", ci.baselineCost)
                                    : "unrouted",
                  strFormat("%.0f", ci.optimalCost),
                  core::toString(ci.status)});
  }
  std::printf("%s\nimproved %d of %d routed clips; total cost %g -> %g\n",
              table.render().c_str(), report.improved, report.attempted,
              report.costBefore, report.costAfter);
  return 0;
}

}  // namespace

#if !defined(_WIN32)

int cmdServe(int argc, char** argv) {
  service::ServerOptions opt;
  // Same solver defaults the batch harness uses, so a served answer matches
  // the corresponding batch row.
  opt.broker.router.mip.timeLimitSec = 20;
  opt.broker.router.formulation.netBBoxMargin = 3;
  opt.broker.router.formulation.netLayerMargin = 1;

  std::string tracePath;
  std::vector<tech::RuleConfig> rules;
  for (int a = 2; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--listen" && a + 1 < argc) {
      opt.listen = argv[++a];
      continue;
    }
    if (arg == "--telemetry-interval" && a + 1 < argc) {
      opt.telemetryIntervalSec = std::atof(argv[++a]);
      if (opt.telemetryIntervalSec <= 0) {
        std::fprintf(stderr, "--telemetry-interval must be > 0\n");
        return 2;
      }
      continue;
    }
    if (arg == "--workers" && a + 1 < argc) {
      opt.broker.workers = std::atoi(argv[++a]);
      if (opt.broker.workers < 1) {
        std::fprintf(stderr, "--workers must be >= 1\n");
        return 2;
      }
      continue;
    }
    if (arg == "--queue-depth" && a + 1 < argc) {
      opt.broker.queueDepth =
          static_cast<std::size_t>(std::atoi(argv[++a]));
      continue;
    }
    if (arg == "--client-queue" && a + 1 < argc) {
      opt.broker.clientQueueDepth =
          static_cast<std::size_t>(std::atoi(argv[++a]));
      continue;
    }
    if (arg == "--cache-cap" && a + 1 < argc) {
      opt.broker.cache.capacity =
          static_cast<std::size_t>(std::atoi(argv[++a]));
      continue;
    }
    if (arg == "--session-pool" && a + 1 < argc) {
      opt.broker.sessionPool.capacity =
          static_cast<std::size_t>(std::atoi(argv[++a]));
      continue;
    }
    if (arg == "--time-limit" && a + 1 < argc) {
      opt.broker.router.mip.timeLimitSec = std::atof(argv[++a]);
      continue;
    }
    if (arg == "--mip-threads" && a + 1 < argc) {
      opt.broker.router.mip.threads = std::atoi(argv[++a]);
      if (opt.broker.router.mip.threads < 1) {
        std::fprintf(stderr, "--mip-threads must be >= 1\n");
        return 2;
      }
      continue;
    }
    if (arg.rfind("--trace=", 0) == 0) {
      tracePath = arg.substr(std::strlen("--trace="));
      if (tracePath.empty()) {
        std::fprintf(stderr, "--trace needs a path: --trace=out.jsonl\n");
        return 2;
      }
      continue;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      // Unlike batch's single-shot delta, serve streams periodic rows to
      // this file for the daemon's whole lifetime (live_export.h).
      opt.metricsOutPath = arg.substr(std::strlen("--metrics-out="));
      if (opt.metricsOutPath.empty()) {
        std::fprintf(stderr, "--metrics-out needs a path\n");
        return 2;
      }
      continue;
    }
    if (int lpf = parseLpFlag(arg, opt.broker.router.mip.lpOptions);
        lpf != 0) {
      if (lpf < 0) return 2;
      continue;
    }
    auto ruleOr = tech::ruleByName(argv[a]);
    if (!ruleOr) {
      std::fprintf(stderr, "%s\n", ruleOr.status().message().c_str());
      return 1;
    }
    rules.push_back(ruleOr.value());
  }
  if (opt.listen.empty()) {
    std::fprintf(stderr, "serve needs --listen unix:PATH or HOST:PORT\n");
    return 2;
  }
  if (!rules.empty()) opt.broker.universe = rules;

  if (!tracePath.empty()) {
    Status ts = obs::TraceSession::start(tracePath);
    if (!ts) {
      std::fprintf(stderr, "--trace: %s\n", ts.message().c_str());
      return 1;
    }
  }
  service::ServiceServer server(std::move(opt));
  Status st = server.start();
  if (!st) {
    std::fprintf(stderr, "serve: %s\n", st.message().c_str());
    return 1;
  }
  std::printf("optrouter serve: listening on %s (workers=%d, rules=%zu)\n",
              server.boundAddress().c_str(), server.broker().options().workers,
              server.broker().options().universe.size());
  std::fflush(stdout);

  int rc = server.run();

  service::RequestBroker::Stats bs = server.broker().stats();
  service::ResultCache::Stats cs = server.broker().cache().stats();
  core::SessionPool::Stats ps = server.broker().sessionPool().stats();
  std::printf(
      "served: %llu accepted, %llu completed (%llu from cache), "
      "%llu saturated-rejects, %llu shutdown-rejects\n"
      "result cache: %llu hits / %llu misses, %llu evictions; "
      "session pool: %llu hits / %llu misses\n",
      static_cast<unsigned long long>(bs.accepted),
      static_cast<unsigned long long>(bs.completed),
      static_cast<unsigned long long>(bs.cacheHits),
      static_cast<unsigned long long>(bs.rejectedSaturated),
      static_cast<unsigned long long>(bs.rejectedShutdown),
      static_cast<unsigned long long>(cs.hits),
      static_cast<unsigned long long>(cs.misses),
      static_cast<unsigned long long>(cs.evictions),
      static_cast<unsigned long long>(ps.hits),
      static_cast<unsigned long long>(ps.misses));

  // The drain already happened inside run(), and run() wrote the final
  // metrics row; flush the trace last so it captures the full lifetime.
  if (!tracePath.empty()) obs::TraceSession::stop();
  return rc;
}

/// `optrouter top <address>`: polls the daemon's ping/stats frame and
/// renders the broker counters plus request-lifecycle percentiles as a
/// refreshing table. A lightweight `watch`-style monitor for a live daemon.
int cmdTop(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: optrouter top <address> [--interval=S] [--count=N]\n");
    return 2;
  }
  std::string address = argv[2];
  double intervalSec = 2.0;
  int count = 0;  // 0 = until interrupted
  for (int a = 3; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg.rfind("--interval=", 0) == 0) {
      intervalSec = std::atof(arg.c_str() + std::strlen("--interval="));
      if (intervalSec <= 0) {
        std::fprintf(stderr, "--interval must be > 0\n");
        return 2;
      }
      continue;
    }
    if (arg.rfind("--count=", 0) == 0) {
      count = std::atoi(arg.c_str() + std::strlen("--count="));
      continue;
    }
    std::fprintf(stderr, "top: unknown flag %s\n", arg.c_str());
    return 2;
  }

  common::installStopSignals();
  service::ServiceClient client;
  Status st = client.connect(address);
  if (!st) {
    std::fprintf(stderr, "top: %s\n", st.message().c_str());
    return 1;
  }

  auto row = [](const char* name, const service::StatsQuad& q) {
    std::printf("  %-11s %8lld  %9.3f  %9.3f  %9.3f\n", name,
                static_cast<long long>(q.count), q.p50Ms, q.p95Ms, q.p99Ms);
  };
  for (int iter = 0; count == 0 || iter < count; ++iter) {
    if (common::stopRequested()) break;
    auto statsOr = client.ping();
    if (!statsOr) {
      std::fprintf(stderr, "top: %s\n", statsOr.status().message().c_str());
      return 1;
    }
    const service::ServiceStats& s = statsOr.value();
    std::printf(
        "optrouter top %s  up %.1fs\n"
        "  pending %lld  accepted %lld  completed %lld  cacheHits %lld  "
        "saturated %lld\n"
        "  %-11s %8s  %9s  %9s  %9s\n",
        address.c_str(), s.uptimeSec, static_cast<long long>(s.pending),
        static_cast<long long>(s.accepted),
        static_cast<long long>(s.completed),
        static_cast<long long>(s.cacheHits),
        static_cast<long long>(s.rejectedSaturated), "stage", "count",
        "p50 ms", "p95 ms", "p99 ms");
    row("queueWait", s.queueWait);
    row("lease", s.lease);
    row("solveCold", s.solveCold);
    row("solveHit", s.solveHit);
    row("replyWrite", s.replyWrite);
    std::fflush(stdout);
    if (count != 0 && iter + 1 >= count) break;
    // Sleep in small slices so Ctrl-C / SIGTERM exits promptly.
    for (double slept = 0; slept < intervalSec && !common::stopRequested();
         slept += 0.1) {
      struct timespec ts = {0, 100000000};
      nanosleep(&ts, nullptr);
    }
    if (common::stopRequested()) break;
  }
  return 0;
}

#endif  // !_WIN32

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (!std::strcmp(argv[1], "info")) return cmdInfo();
  if (!std::strcmp(argv[1], "gen")) return cmdGen(argc, argv);
  if (!std::strcmp(argv[1], "lefdef")) return cmdLefDef(argc, argv);
  if (!std::strcmp(argv[1], "route")) return cmdRoute(argc, argv);
  if (!std::strcmp(argv[1], "sweep")) return cmdSweep(argc, argv);
  if (!std::strcmp(argv[1], "batch")) return cmdBatch(argc, argv);
  if (!std::strcmp(argv[1], "improve")) return cmdImprove(argc, argv);
#if !defined(_WIN32)
  if (!std::strcmp(argv[1], "serve")) return cmdServe(argc, argv);
  if (!std::strcmp(argv[1], "top")) return cmdTop(argc, argv);
#endif
  if (!std::strcmp(argv[1], "sweep-coordinator")) {
    return cmdSweepCoordinator(argc, argv);
  }
  if (!std::strcmp(argv[1], "sweep-worker")) return cmdSweepWorker(argc, argv);
  if (!std::strcmp(argv[1], "trace-report")) {
    // Shift past "optrouter": traceReportMain expects its own argv[0].
    return tools::traceReportMain(argc - 1, argv + 1);
  }
  return usage();
}
