#!/usr/bin/env bash
# Perf smoke test: a cheap CORRECTNESS gate for the parallel solve paths,
# not a timing gate.
#
# Builds Release into build-perf/, then runs bench_runtime twice:
#   * --threads 1 : every pass is effectively serial; sanity-checks that the
#     thread plumbing at N=1 reproduces the plain serial pass exactly;
#   * --threads N : serial vs mip-parallel vs clip-parallel on the same
#     clip set. bench_runtime itself exits nonzero if any clip proven
#     optimal by both a serial and a parallel pass disagrees on the
#     objective -- that is the gate this script enforces.
#
# Speedups are printed for information only: they depend on available
# hardware parallelism (on a single-core machine the expected clip-parallel
# speedup is ~1.0x), so this script never fails on timing.
#
# Usage: tools/run_perf_smoke.sh [N]     (default N=4)
set -euo pipefail

cd "$(dirname "$0")/.."

threads="${1:-4}"
if ! [[ "${threads}" =~ ^[0-9]+$ ]] || [[ "${threads}" -lt 1 ]]; then
  echo "usage: tools/run_perf_smoke.sh [N >= 1]" >&2
  exit 2
fi

echo "=== configuring Release into build-perf/ ==="
cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build build-perf -j --target bench_runtime > /dev/null

cores="$(nproc 2> /dev/null || echo 1)"
if [[ "${cores}" -lt "${threads}" ]]; then
  echo "note: ${cores} CPU core(s) available but --threads ${threads} requested;"
  echo "      wall-clock speedups below will not reflect true parallel scaling."
  echo "      The objective-determinism gate is unaffected."
fi

echo "=== bench_runtime --threads 1 (serial reproduction check) ==="
build-perf/bench/bench_runtime --threads 1 --out build-perf/BENCH_runtime_t1.json

echo "=== bench_runtime --threads ${threads} (determinism gate) ==="
build-perf/bench/bench_runtime --threads "${threads}" \
  --out build-perf/BENCH_runtime.json

# Cross-run check: the serial pass must report identical objectives in both
# runs (solves are deterministic; wall times of course differ).
python3 - build-perf/BENCH_runtime_t1.json build-perf/BENCH_runtime.json <<'EOF'
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
sa = next(p for p in a["passes"] if p["mode"] == "serial")
sb = next(p for p in b["passes"] if p["mode"] == "serial")
bad = 0
for ca, cb in zip(sa["clips"], sb["clips"]):
    if (ca["name"], ca["rule"]) != (cb["name"], cb["rule"]):
        print(f"FAIL: clip order differs: {ca['name']} vs {cb['name']}")
        bad = 1
        continue
    if ca["status"] != cb["status"] or ca["cost"] != cb["cost"]:
        print(f"FAIL: serial pass not reproducible for {ca['name']}/{ca['rule']}:"
              f" {ca['status']}/{ca['cost']} vs {cb['status']}/{cb['cost']}")
        bad = 1
sys.exit(bad)
EOF

echo "=== perf smoke OK: no parallel/serial objective divergence ==="
echo "    trajectory: build-perf/BENCH_runtime.json"
