#!/usr/bin/env bash
# Perf smoke test: a cheap CORRECTNESS gate for the parallel solve paths
# and for ClipSession reuse, not a timing gate.
#
# Builds Release into build-perf/, then runs bench_runtime twice:
#   * --threads 1 : every pass is effectively serial; sanity-checks that the
#     thread plumbing at N=1 reproduces the plain serial pass exactly;
#   * --threads N : serial vs mip-parallel vs clip-parallel on the same
#     clip set. bench_runtime itself exits nonzero if any clip proven
#     optimal by both a serial and a parallel pass disagrees on the
#     objective -- that is the gate this script enforces.
#
# It then runs bench_fleet, the distributed-sweep chaos gate: the
# lease-based coordinator/worker fleet (with workers SIGKILLed mid-solve)
# must produce byte-identical proven results to the in-process BatchRunner,
# lose no tasks, duplicate no tasks, and resume entirely from its merged
# checkpoint after a simulated coordinator restart. bench_fleet exits
# nonzero on any violation.
#
# It then runs bench_sweep, the session-reuse correctness gate: over the
# full example-clip x Table 3 rule sweep at mip.threads 1 and N, every task
# that BOTH the ClipSession-reuse path and the per-(clip, rule) rebuild
# path prove (optimal or infeasible) must report byte-identical
# status/cost/bestBound; deadline-truncated solves are undecided but a
# proven infeasibility may never coexist with a validated solution, and at
# least half the tasks must prove on both paths so the gate cannot pass
# vacuously. Obs builds must show exactly one base model per clip.
# bench_sweep exits nonzero on any divergence.
#
# Speedups are printed for information only: they depend on available
# hardware parallelism (on a single-core machine the expected clip-parallel
# speedup is ~1.0x), so this script never fails on timing.
#
# Usage: tools/run_perf_smoke.sh [N]     (default N=4)
set -euo pipefail

cd "$(dirname "$0")/.."

threads="${1:-4}"
if ! [[ "${threads}" =~ ^[0-9]+$ ]] || [[ "${threads}" -lt 1 ]]; then
  echo "usage: tools/run_perf_smoke.sh [N >= 1]" >&2
  exit 2
fi

echo "=== configuring Release into build-perf/ ==="
cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build build-perf -j --target bench_runtime bench_sweep bench_fleet > /dev/null

cores="$(nproc 2> /dev/null || echo 1)"
if [[ "${cores}" -lt "${threads}" ]]; then
  echo "note: ${cores} CPU core(s) available but --threads ${threads} requested;"
  echo "      wall-clock speedups below will not reflect true parallel scaling."
  echo "      The objective-determinism gate is unaffected."
fi

echo "=== bench_runtime --threads 1 (serial reproduction check) ==="
build-perf/bench/bench_runtime --threads 1 --out build-perf/BENCH_runtime_t1.json

echo "=== bench_runtime --threads ${threads} (determinism gate) ==="
build-perf/bench/bench_runtime --threads "${threads}" \
  --out build-perf/BENCH_runtime.json

# Cross-run check: the serial pass must report identical objectives in both
# runs (solves are deterministic; wall times of course differ). The committed
# BENCH_runtime.json (third arg) additionally gates LP pivot count: pricing
# work may move pivots around, but a >10% total-pivot regression at equal
# proven costs means the kernel got slower, not just different.
python3 - build-perf/BENCH_runtime_t1.json build-perf/BENCH_runtime.json \
  BENCH_runtime.json <<'EOF'
import json, os, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
sa = next(p for p in a["passes"] if p["mode"] == "serial")
sb = next(p for p in b["passes"] if p["mode"] == "serial")
bad = 0
for ca, cb in zip(sa["clips"], sb["clips"]):
    if (ca["name"], ca["rule"]) != (cb["name"], cb["rule"]):
        print(f"FAIL: clip order differs: {ca['name']} vs {cb['name']}")
        bad = 1
        continue
    if ca["status"] != cb["status"] or ca["cost"] != cb["cost"]:
        print(f"FAIL: serial pass not reproducible for {ca['name']}/{ca['rule']}:"
              f" {ca['status']}/{ca['cost']} vs {cb['status']}/{cb['cost']}")
        bad = 1

# Work-conservation gate over the metrics registry (bench_runtime already
# checked registry == sum-of-result-stats within each pass; this checks
# *across* passes). Per-task solves are deterministic and independent, so the
# clip-parallel pass must do exactly the serial pass's work -- clip threading
# changes scheduling between tasks, never inside one. The mip-parallel pass
# explores a scheduling-dependent tree, so its totals only get a generous
# ratio bound; its solve count is still exact.
passes = {p["mode"]: p for p in b["passes"]}
ser, clip, mip = (passes[m]["registry"]
                  for m in ("serial", "clip-parallel", "mip-parallel"))
for key in ("lpPivots", "ilpPivots", "nodes", "routeSolves"):
    if clip[key] != ser[key]:
        print(f"FAIL: clip-parallel {key} {clip[key]} != serial {ser[key]}"
              f" (threading must not change per-task work)")
        bad = 1
if mip["routeSolves"] != ser["routeSolves"]:
    print(f"FAIL: mip-parallel routeSolves {mip['routeSolves']}"
          f" != serial {ser['routeSolves']}")
    bad = 1
for key in ("lpPivots", "nodes"):
    if ser[key] > 0 and not (ser[key] / 4 <= mip[key] <= ser[key] * 4):
        print(f"FAIL: mip-parallel {key} {mip[key]} outside 4x of"
              f" serial {ser[key]} -- parallel B&B doing pathological work")
        bad = 1
if ser["routeSolves"] == 0 and ser["lpPivots"] == 0:
    # Registry deltas all zero means the build compiled obs out; the gate
    # would pass vacuously, so say so instead of silently degrading.
    print("note: metrics registry empty (OPTR_OBS disabled build);"
          " work-conservation gate skipped")

# Pivot-regression gate vs the committed baseline. Only comparable when the
# serial pass proves the same clip set to the same costs (otherwise the work
# being counted differs, not the kernel doing it).
if os.path.exists(sys.argv[3]) and ser["lpPivots"] > 0:
    base = json.load(open(sys.argv[3]))
    bser = next((p for p in base["passes"] if p["mode"] == "serial"), None)
    comparable = (bser is not None and bser["registry"]["lpPivots"] > 0 and
                  [(c["name"], c["rule"], c["status"], c["cost"])
                   for c in bser["clips"]] ==
                  [(c["name"], c["rule"], c["status"], c["cost"])
                   for c in sb["clips"]])
    if not comparable:
        print("note: committed BENCH_runtime.json serial pass not comparable"
              " (different clip set / costs / obs-disabled);"
              " pivot-regression gate skipped")
    else:
        limit = bser["registry"]["lpPivots"] * 1.10
        if ser["lpPivots"] > limit:
            print(f"FAIL: serial lp.pivots {ser['lpPivots']} exceeds committed"
                  f" baseline {bser['registry']['lpPivots']} by >10% at equal"
                  f" proven costs -- LP kernel pivot regression")
            bad = 1
        else:
            print(f"pivot gate OK: serial lp.pivots {ser['lpPivots']}"
                  f" <= 1.10 x committed {bser['registry']['lpPivots']}")
else:
    print("note: no committed BENCH_runtime.json baseline;"
          " pivot-regression gate skipped")
sys.exit(bad)
EOF

echo "=== bench_fleet (distributed-sweep chaos equivalence gate) ==="
build-perf/bench/bench_fleet --out build-perf/BENCH_fleet.json

echo "=== bench_sweep --threads ${threads} (session-reuse equivalence gate) ==="
build-perf/bench/bench_sweep --threads "${threads}" \
  --out build-perf/BENCH_sweep.json

echo "=== perf smoke OK: no objective divergence, work conserved, ==="
echo "=== fleet chaos-equivalent, session reuse result-equivalent ==="
echo "    trajectories: build-perf/BENCH_runtime.json build-perf/BENCH_fleet.json build-perf/BENCH_sweep.json"
