#!/usr/bin/env bash
# Perf smoke test: a cheap CORRECTNESS gate for the parallel solve paths,
# ClipSession reuse, and the trace/attribution pipeline -- not a timing gate.
#
# Builds Release into build-perf/, then:
#   * bench_runtime --threads 1 and --threads N, diffed with bench_compare:
#     the serial pass must reproduce byte-identical proven costs across the
#     two runs, and the in-file work-conservation contract (clip-parallel ==
#     serial exactly; mip-parallel within 4x) is checked with
#     bench_compare --self;
#   * bench_compare BENCH_runtime.json (the committed trajectory baseline)
#     vs the fresh snapshot: proven-cost changes always fail; a >10% LP
#     pivot regression at equal proven costs fails the deterministic units
#     (parallel B&B pivots are scheduling noise and are skipped, exactly as
#     the old inline python gate treated them);
#   * a traced full example-clip x Table 3 batch: trace_report must parse
#     its own trace, and `optrouter trace-report --table5 --verify-join`
#     must reproduce the sweep's checkpoint JSONL from route.solve spans
#     byte-for-byte (the lossless-join acceptance gate);
#   * the same verify-join over a forked sweep-coordinator fleet, whose
#     workers append to one trace file under distinct pid<<32 id spaces;
#   * bench_fleet (distributed-sweep chaos gate + stitched cross-process
#     trace gate) and bench_sweep (session-reuse equivalence gate), both
#     self-failing on divergence;
#   * a live daemon round-trip: cold route, cached route, `ping` live
#     percentiles, `optrouter top`, graceful shutdown, and the --metrics-out
#     stream's final row;
#   * one consolidated row per run appended to BENCH_trajectory.jsonl via
#     bench_compare --append-trajectory.
#
# Speedups are printed for information only: they depend on available
# hardware parallelism (on a single-core machine the expected clip-parallel
# speedup is ~1.0x), so this script never fails on timing.
#
# Usage: tools/run_perf_smoke.sh [N]     (default N=4)
set -euo pipefail

cd "$(dirname "$0")/.."

threads="${1:-4}"
if ! [[ "${threads}" =~ ^[0-9]+$ ]] || [[ "${threads}" -lt 1 ]]; then
  echo "usage: tools/run_perf_smoke.sh [N >= 1]" >&2
  exit 2
fi

echo "=== configuring Release into build-perf/ ==="
cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build build-perf -j --target bench_runtime bench_sweep bench_fleet \
  bench_service bench_compare trace_report optrouter service_client > /dev/null

cores="$(nproc 2> /dev/null || echo 1)"
if [[ "${cores}" -lt "${threads}" ]]; then
  echo "note: ${cores} CPU core(s) available but --threads ${threads} requested;"
  echo "      wall-clock speedups below will not reflect true parallel scaling."
  echo "      The objective-determinism gate is unaffected."
fi

echo "=== bench_runtime --threads 1 (serial reproduction check) ==="
build-perf/bench/bench_runtime --threads 1 --out build-perf/BENCH_runtime_t1.json

echo "=== bench_runtime --threads ${threads} (determinism gate) ==="
build-perf/bench/bench_runtime --threads "${threads}" \
  --out build-perf/BENCH_runtime.json

echo "=== bench_compare: t1 vs t${threads} (cross-run reproducibility) ==="
# Proven costs must be byte-identical run to run; the pivot gate applies to
# the deterministic (serial) units only.
build-perf/tools/bench_compare build-perf/BENCH_runtime_t1.json \
  build-perf/BENCH_runtime.json

echo "=== bench_compare --self (work-conservation gate) ==="
build-perf/tools/bench_compare --self build-perf/BENCH_runtime.json

if [[ -f BENCH_runtime.json ]]; then
  echo "=== bench_compare: committed BENCH_runtime.json vs fresh (trajectory gate) ==="
  build-perf/tools/bench_compare BENCH_runtime.json \
    build-perf/BENCH_runtime.json
else
  echo "note: no committed BENCH_runtime.json baseline; trajectory gate skipped"
fi

all_rules="RULE1 RULE2 RULE3 RULE4 RULE5 RULE6 RULE7 RULE8 RULE9 RULE10 RULE11"

echo "=== traced batch: example clips x Table 3, Table 5 lossless-join gate ==="
rm -f build-perf/smoke_batch.ckpt build-perf/smoke_trace.jsonl \
  build-perf/smoke_metrics.json build-perf/smoke_table5.json
build-perf/tools/optrouter batch examples/example.clips \
  build-perf/smoke_batch.ckpt --isolation=thread --threads "${threads}" \
  --trace=build-perf/smoke_trace.jsonl \
  --metrics-out=build-perf/smoke_metrics.json \
  ${all_rules} > /dev/null
# The analyzer half: phases/rules/coverage/drop accounting on the real trace.
build-perf/tools/trace_report build-perf/smoke_trace.jsonl
# The attribution half: the Table 5 join must reproduce the checkpoint's
# results byte-for-byte from trace spans alone (exit 1 on any mismatch).
build-perf/tools/optrouter trace-report build-perf/smoke_trace.jsonl \
  --table5 --json=build-perf/smoke_table5.json \
  --verify-join=build-perf/smoke_batch.ckpt

echo "=== traced fleet: forked workers, one trace, same lossless-join gate ==="
rm -f build-perf/smoke_fleet.ckpt* build-perf/smoke_fleet_trace.jsonl
build-perf/tools/optrouter sweep-coordinator examples/example.clips \
  build-perf/smoke_fleet.ckpt --workers 2 \
  --trace=build-perf/smoke_fleet_trace.jsonl RULE1 RULE3 RULE6 > /dev/null
# --stitch additionally gates the cross-process causal tree: every worker
# fleet.task span must resolve under the coordinator's fleet.run root via
# the lease-frame trace context, with no descendant outlasting its root.
build-perf/tools/optrouter trace-report build-perf/smoke_fleet_trace.jsonl \
  --table5 --verify-join=build-perf/smoke_fleet.ckpt --stitch

echo "=== bench_fleet (distributed-sweep chaos equivalence gate) ==="
build-perf/bench/bench_fleet --out build-perf/BENCH_fleet.json

echo "=== bench_sweep --threads ${threads} (session-reuse equivalence gate) ==="
build-perf/bench/bench_sweep --threads "${threads}" \
  --out build-perf/BENCH_sweep.json

echo "=== bench_service (cache replay byte gate + saturation rejects) ==="
build-perf/bench/bench_service --out build-perf/BENCH_service.json
# Re-check the snapshot's own invariants, opting in to the latency gate the
# bench already enforced (cache hits >= 10x faster than cold solves).
build-perf/tools/bench_compare --self build-perf/BENCH_service.json \
  --min-hot-speedup=10
if [[ -f BENCH_service.json ]]; then
  echo "=== bench_compare: committed BENCH_service.json vs fresh ==="
  build-perf/tools/bench_compare BENCH_service.json \
    build-perf/BENCH_service.json
else
  echo "note: no committed BENCH_service.json baseline; trajectory gate skipped"
fi

echo "=== routing service: daemon round-trip (cold -> cached -> ping -> shutdown) ==="
service_sock="build-perf/smoke_service.sock"
rm -f "${service_sock}" build-perf/smoke_service_metrics.jsonl
build-perf/tools/optrouter serve --listen "unix:${service_sock}" \
  --workers 2 --metrics-out=build-perf/smoke_service_metrics.jsonl \
  --telemetry-interval 0.2 > build-perf/smoke_service.log &
service_pid=$!
for _ in $(seq 1 100); do
  [[ -S "${service_sock}" ]] && break
  sleep 0.1
done
build-perf/tools/service_client "unix:${service_sock}" \
  route examples/example.clips RULE1
# The same request again must come back from the result cache.
build-perf/tools/service_client "unix:${service_sock}" \
  route examples/example.clips RULE1 | tee /dev/stderr | grep -q cached
# Live stats over the wire: the daemon's own histograms must show the two
# requests with non-zero queue-wait and solve percentiles.
build-perf/tools/service_client "unix:${service_sock}" ping \
  | tee /dev/stderr | grep -q 'solveCold count=1'
# The `top` monitor renders the same frame.
build-perf/tools/optrouter top "unix:${service_sock}" --count=1 > /dev/null
build-perf/tools/service_client "unix:${service_sock}" shutdown
wait "${service_pid}"
# The live metrics export must end with the exporter's final row.
tail -n 1 build-perf/smoke_service_metrics.jsonl | grep -q '"final":true'

echo "=== bench trajectory: appending one consolidated row per run ==="
build-perf/tools/bench_compare \
  --append-trajectory=BENCH_trajectory.jsonl \
  --label="$(git rev-parse --short HEAD 2> /dev/null || echo unversioned)" \
  build-perf/BENCH_runtime.json build-perf/BENCH_fleet.json \
  build-perf/BENCH_sweep.json build-perf/BENCH_service.json

echo "=== perf smoke OK: no objective divergence, work conserved, ==="
echo "=== trace join lossless, fleet chaos-equivalent, session reuse ==="
echo "=== result-equivalent ==="
echo "    trajectories: build-perf/BENCH_runtime.json build-perf/BENCH_fleet.json build-perf/BENCH_sweep.json build-perf/BENCH_service.json"
echo "    trajectory log: BENCH_trajectory.jsonl (one row per run)"
echo "    attribution:  build-perf/smoke_table5.json"
